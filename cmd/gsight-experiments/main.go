// Command gsight-experiments regenerates the paper's tables and
// figures on the simulated testbed and prints paper-vs-measured notes.
//
// Usage:
//
//	gsight-experiments [-scale 1.0] [-seed 42] [-run fig3a,fig9|all] [-list]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gsight/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "effort scale: 1.0 = paper-size runs, 0.2 = quick")
	seed := flag.Uint64("seed", 42, "experiment seed (all results reproduce bit-identically per seed)")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text or markdown")
	out := flag.String("o", "", "write output to this file instead of stdout")
	flag.Parse()

	sink := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*run, ",")
	}
	opt := experiments.Options{Seed: *seed, Scale: *scale}
	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		t0 := time.Now()
		rep, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", id, err)
			failed++
			continue
		}
		took := time.Since(t0).Round(time.Millisecond)
		if *format == "markdown" {
			fmt.Fprintf(sink, "%s\n*(regenerated in %v at scale %.2f, seed %d)*\n\n", rep.Markdown(), took, *scale, *seed)
		} else {
			fmt.Fprintf(sink, "%s\n(%s took %v)\n\n", rep.String(), id, took)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
