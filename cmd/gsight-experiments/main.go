// Command gsight-experiments regenerates the paper's tables and
// figures on the simulated testbed and prints paper-vs-measured notes.
// Progress goes to stderr; the reports on stdout (or -o) stay pipeable.
// SIGINT/SIGTERM cancel the remaining experiments cleanly: finished
// reports are still emitted and open files flushed before exiting.
//
// Usage:
//
//	gsight-experiments [-scale 1.0] [-seed 42] [-run fig3a,fig9|all]
//	                   [-parallel] [-list] [-v|-quiet]
//	                   [-debug-addr :6060] [-report run.json]
//	                   [-decision-log run.jsonl]
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"gsight/internal/experiments"
	"gsight/internal/logx"
	"gsight/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 1.0, "effort scale: 1.0 = paper-size runs, 0.2 = quick")
	seed := flag.Uint64("seed", 42, "experiment seed (all results reproduce bit-identically per seed)")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text or markdown")
	out := flag.String("o", "", "write output to this file instead of stdout")
	parallel := flag.Bool("parallel", false, "run the selected experiments concurrently (output order and contents unchanged)")
	verbose := flag.Bool("v", false, "verbose progress")
	quiet := flag.Bool("quiet", false, "errors only")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	reportPath := flag.String("report", "", "write a JSON run report to this file")
	decisionPath := flag.String("decision-log", "", "write the JSONL decision log to this file")
	servers := flag.Int("servers", 0, "ext-scale: run a single server-count rung instead of the 8/256/1k/10k ladder")
	shards := flag.Int("shards", 0, "ext-scale: scheduler-state shard count (0 = auto; outcomes are shard-independent)")
	placers := flag.Int("placers", 0, "ext-scale: concurrent placer workers (0 = auto; results identical at any count)")
	topk := flag.Int("topk", 0, "ext-twotier: run a single top-K rung instead of the 4/8/16/32/\u221e sweep (0 = full sweep)")
	flag.Parse()

	log := logx.Default(*verbose, *quiet)

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ok := runAll(ctx, log, config{
		scale: *scale, seed: *seed, run: *run, format: *format, out: *out,
		parallel: *parallel, debugAddr: *debugAddr, reportPath: *reportPath,
		decisionPath: *decisionPath,
		servers: *servers, shards: *shards, placers: *placers,
		topk: *topk,
	})
	if !ok {
		os.Exit(1)
	}
}

type config struct {
	scale      float64
	seed       uint64
	run        string
	format     string
	out        string
	parallel     bool
	debugAddr    string
	reportPath   string
	decisionPath string
	servers      int
	shards       int
	placers      int
	topk         int
}

// runAll executes the selected experiments and emits their reports; it
// returns false when any experiment failed (cancellation included).
// Deferred cleanups (output file close) run before main decides the
// exit code.
func runAll(ctx context.Context, log *logx.Logger, cfg config) bool {
	tel := telemetry.New()
	if cfg.decisionPath != "" {
		f, err := os.Create(cfg.decisionPath)
		if err != nil {
			log.Errorf("decision log: %v", err)
			return false
		}
		bw := bufio.NewWriter(f)
		defer func() {
			bw.Flush()
			f.Close()
		}()
		tel.WithDecisions(bw)
	}
	experiments.SetTelemetry(tel)
	if cfg.debugAddr != "" {
		addr, err := telemetry.ServeDebug(cfg.debugAddr, tel.Registry)
		if err != nil {
			log.Errorf("debug server: %v", err)
			return false
		}
		log.Infof("debug server on http://%s (metrics, expvar, pprof)", addr)
	}

	sink := io.Writer(os.Stdout)
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			log.Errorf("%v", err)
			return false
		}
		defer f.Close()
		sink = f
	}

	var ids []string
	if cfg.run == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(cfg.run, ",")
	}
	opt := experiments.Options{
		Seed: cfg.seed, Scale: cfg.scale,
		Servers: cfg.servers, Shards: cfg.shards, Placers: cfg.placers,
		TopK: cfg.topk,
	}
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}

	// Each experiment builds its own model and generator, so runs are
	// independent; -parallel fans them out and reports are still emitted
	// in id order with per-seed bit-identical contents.
	type outcome struct {
		rep  *experiments.Report
		err  error
		took time.Duration
	}
	log.Infof("running %d experiments at scale %.2f (seed %d)...", len(ids), cfg.scale, cfg.seed)
	tAll := time.Now()
	results := make([]outcome, len(ids))
	runOne := func(i int) {
		log.Debugf("running %s...", ids[i])
		t0 := time.Now()
		rep, err := experiments.Run(ctx, ids[i], opt)
		results[i] = outcome{rep, err, time.Since(t0).Round(time.Millisecond)}
		log.Debugf("%s done in %v", ids[i], results[i].took)
	}
	if cfg.parallel {
		var wg sync.WaitGroup
		for i := range ids {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range ids {
			if ctx.Err() != nil {
				results[i] = outcome{nil, ctx.Err(), 0}
				continue
			}
			runOne(i)
		}
	}
	log.Infof("all experiments finished in %v", time.Since(tAll).Round(time.Millisecond))

	failed, cancelled := 0, 0
	var drev telemetry.ExperimentRun
	logOutcome := func(id, status string) {
		drev = telemetry.ExperimentRun{ID: id, Status: status}
		tel.Decisions.Experiment(&drev)
	}
	for i, id := range ids {
		res := results[i]
		if errors.Is(res.err, context.Canceled) {
			logOutcome(id, "cancelled")
			cancelled++
			continue
		}
		if res.err != nil {
			log.Errorf("%s: %v", id, res.err)
			logOutcome(id, "failed")
			failed++
			continue
		}
		logOutcome(id, "ok")
		if cfg.format == "markdown" {
			fmt.Fprintf(sink, "%s\n*(regenerated in %v at scale %.2f, seed %d)*\n\n", res.rep.Markdown(), res.took, cfg.scale, cfg.seed)
		} else {
			fmt.Fprintf(sink, "%s\n(%s took %v)\n\n", res.rep.String(), id, res.took)
		}
	}
	if cancelled > 0 {
		log.Errorf("interrupted: %d experiments cancelled", cancelled)
	}

	if cfg.reportPath != "" {
		rep := tel.Report("gsight-experiments",
			map[string]interface{}{
				"run":      strings.Join(ids, ","),
				"scale":    cfg.scale,
				"seed":     cfg.seed,
				"parallel": cfg.parallel,
			},
			map[string]interface{}{
				"experiments": len(ids),
				"failed":      failed,
				"cancelled":   cancelled,
			})
		if err := telemetry.WriteRunReport(cfg.reportPath, rep); err != nil {
			log.Errorf("run report: %v", err)
			return false
		}
		log.Infof("run report written to %s", cfg.reportPath)
	}
	return failed == 0 && cancelled == 0
}
