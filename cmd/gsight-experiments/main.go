// Command gsight-experiments regenerates the paper's tables and
// figures on the simulated testbed and prints paper-vs-measured notes.
//
// Usage:
//
//	gsight-experiments [-scale 1.0] [-seed 42] [-run fig3a,fig9|all] [-parallel] [-list]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"gsight/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "effort scale: 1.0 = paper-size runs, 0.2 = quick")
	seed := flag.Uint64("seed", 42, "experiment seed (all results reproduce bit-identically per seed)")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text or markdown")
	out := flag.String("o", "", "write output to this file instead of stdout")
	parallel := flag.Bool("parallel", false, "run the selected experiments concurrently (output order and contents unchanged)")
	flag.Parse()

	sink := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*run, ",")
	}
	opt := experiments.Options{Seed: *seed, Scale: *scale}
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}

	// Each experiment builds its own model and generator, so runs are
	// independent; -parallel fans them out and reports are still emitted
	// in id order with per-seed bit-identical contents.
	type outcome struct {
		rep  *experiments.Report
		err  error
		took time.Duration
	}
	results := make([]outcome, len(ids))
	runOne := func(i int) {
		t0 := time.Now()
		rep, err := experiments.Run(ids[i], opt)
		results[i] = outcome{rep, err, time.Since(t0).Round(time.Millisecond)}
	}
	if *parallel {
		var wg sync.WaitGroup
		for i := range ids {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range ids {
			runOne(i)
		}
	}

	failed := 0
	for i, id := range ids {
		res := results[i]
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", id, res.err)
			failed++
			continue
		}
		if *format == "markdown" {
			fmt.Fprintf(sink, "%s\n*(regenerated in %v at scale %.2f, seed %d)*\n\n", res.rep.Markdown(), res.took, *scale, *seed)
		} else {
			fmt.Fprintf(sink, "%s\n(%s took %v)\n\n", res.rep.String(), id, res.took)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
