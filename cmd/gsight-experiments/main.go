// Command gsight-experiments regenerates the paper's tables and
// figures on the simulated testbed and prints paper-vs-measured notes.
// Progress goes to stderr; the reports on stdout (or -o) stay pipeable.
//
// Usage:
//
//	gsight-experiments [-scale 1.0] [-seed 42] [-run fig3a,fig9|all]
//	                   [-parallel] [-list] [-v|-quiet]
//	                   [-debug-addr :6060] [-report run.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"gsight/internal/experiments"
	"gsight/internal/logx"
	"gsight/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 1.0, "effort scale: 1.0 = paper-size runs, 0.2 = quick")
	seed := flag.Uint64("seed", 42, "experiment seed (all results reproduce bit-identically per seed)")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text or markdown")
	out := flag.String("o", "", "write output to this file instead of stdout")
	parallel := flag.Bool("parallel", false, "run the selected experiments concurrently (output order and contents unchanged)")
	verbose := flag.Bool("v", false, "verbose progress")
	quiet := flag.Bool("quiet", false, "errors only")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	reportPath := flag.String("report", "", "write a JSON run report to this file")
	flag.Parse()

	log := logx.Default(*verbose, *quiet)

	tel := telemetry.New()
	experiments.SetTelemetry(tel)
	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr, tel.Registry)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		log.Infof("debug server on http://%s (metrics, expvar, pprof)", addr)
	}

	sink := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("%v", err)
		}
		defer f.Close()
		sink = f
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*run, ",")
	}
	opt := experiments.Options{Seed: *seed, Scale: *scale}
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}

	// Each experiment builds its own model and generator, so runs are
	// independent; -parallel fans them out and reports are still emitted
	// in id order with per-seed bit-identical contents.
	type outcome struct {
		rep  *experiments.Report
		err  error
		took time.Duration
	}
	log.Infof("running %d experiments at scale %.2f (seed %d)...", len(ids), *scale, *seed)
	tAll := time.Now()
	results := make([]outcome, len(ids))
	runOne := func(i int) {
		log.Debugf("running %s...", ids[i])
		t0 := time.Now()
		rep, err := experiments.Run(ids[i], opt)
		results[i] = outcome{rep, err, time.Since(t0).Round(time.Millisecond)}
		log.Debugf("%s done in %v", ids[i], results[i].took)
	}
	if *parallel {
		var wg sync.WaitGroup
		for i := range ids {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range ids {
			runOne(i)
		}
	}
	log.Infof("all experiments finished in %v", time.Since(tAll).Round(time.Millisecond))

	failed := 0
	for i, id := range ids {
		res := results[i]
		if res.err != nil {
			log.Errorf("%s: %v", id, res.err)
			failed++
			continue
		}
		if *format == "markdown" {
			fmt.Fprintf(sink, "%s\n*(regenerated in %v at scale %.2f, seed %d)*\n\n", res.rep.Markdown(), res.took, *scale, *seed)
		} else {
			fmt.Fprintf(sink, "%s\n(%s took %v)\n\n", res.rep.String(), id, res.took)
		}
	}

	if *reportPath != "" {
		rep := tel.Report("gsight-experiments",
			map[string]interface{}{
				"run":      strings.Join(ids, ","),
				"scale":    *scale,
				"seed":     *seed,
				"parallel": *parallel,
			},
			map[string]interface{}{
				"experiments": len(ids),
				"failed":      failed,
			})
		if err := telemetry.WriteRunReport(*reportPath, rep); err != nil {
			log.Fatalf("run report: %v", err)
		}
		log.Infof("run report written to %s", *reportPath)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
