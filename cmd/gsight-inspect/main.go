// Command gsight-inspect reads the observability artifacts the other
// gsight tools produce — decision logs (-decision-log), lifecycle
// traces (-trace) and flight recordings (gsight-sim -record) — and
// answers questions about a run offline: what was scheduled where, how
// good the predictor was, which functions missed their SLA, how hot
// each server ran.
//
// Usage:
//
//	gsight-inspect summary  <recording>     run overview: decisions, jobs, SLA misses
//	gsight-inspect predq    <recording>     prediction quality: per-archetype MAPE, drift
//	gsight-inspect errors   <recording>     prediction error over time
//	gsight-inspect heat     <recording>     per-server utilization from the flight recording
//	gsight-inspect trace    <recording> [-o out.json]
//	                                        export a strict {"traceEvents":[...]} JSON file
//	gsight-inspect diff     <a> <b>         compare two recordings, locate first divergence
//
// <recording> is a -record directory (trace.json + flight.bin inside),
// or a single artifact file: a trace, a flight recording, or a JSONL
// decision log — the tool sniffs which. Every reader checks the
// format's schema version and rejects streams written by a newer,
// incompatible gsight rather than misparsing them. Torn final records
// — possible when a run crashed without a flush — are dropped, the
// same tolerance the resume path applies.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gsight/internal/obs"
	"gsight/internal/telemetry"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gsight-inspect <summary|predq|errors|heat|trace|diff> <recording> [args]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch verb, rest := args[0], args[1:]; verb {
	case "summary":
		err = withRecording(rest, cmdSummary)
	case "predq":
		err = withRecording(rest, cmdPredq)
	case "errors":
		err = withRecording(rest, cmdErrors)
	case "heat":
		err = withRecording(rest, cmdHeat)
	case "trace":
		err = cmdTrace(rest)
	case "diff":
		err = cmdDiff(rest)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsight-inspect: %v\n", err)
		os.Exit(1)
	}
}

// recording is one run's artifacts, any subset of which may be present.
type recording struct {
	path   string
	trace  []traceEvent
	flight *obs.FlightData
	log    []map[string]interface{}
}

// openRecording resolves path — a -record directory or a single
// artifact file — and loads whatever streams it holds.
func openRecording(path string) (*recording, error) {
	rec := &recording{path: path}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		loaded := false
		if tr := filepath.Join(path, "trace.json"); fileExists(tr) {
			if rec.trace, err = readTrace(tr); err != nil {
				return nil, err
			}
			loaded = true
		}
		if fl := filepath.Join(path, "flight.bin"); fileExists(fl) {
			if rec.flight, err = readFlightFile(fl); err != nil {
				return nil, err
			}
			loaded = true
		}
		if !loaded {
			return nil, fmt.Errorf("%s: no trace.json or flight.bin inside", path)
		}
		return rec, nil
	}
	switch kind, err := sniff(path); {
	case err != nil:
		return nil, err
	case kind == "flight":
		rec.flight, err = readFlightFile(path)
		return rec, err
	case kind == "trace":
		rec.trace, err = readTrace(path)
		return rec, err
	default:
		rec.log, err = readDecisionLog(path)
		return rec, err
	}
}

// withRecording runs fn on the single recording argument.
func withRecording(args []string, fn func(*recording) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one recording path, got %d args", len(args))
	}
	rec, err := openRecording(args[0])
	if err != nil {
		return err
	}
	return fn(rec)
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}

// sniff classifies a single artifact file by its first bytes.
func sniff(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	head := make([]byte, 4)
	n, _ := f.Read(head)
	head = head[:n]
	switch {
	case bytes.HasPrefix(head, []byte("GFR")):
		return "flight", nil
	case bytes.HasPrefix(head, []byte("[")):
		return "trace", nil
	case bytes.HasPrefix(head, []byte("{")):
		return "log", nil
	default:
		return "", fmt.Errorf("%s: not a gsight recording (unrecognized header)", path)
	}
}

// traceEvent is one decoded Chrome trace-event line.
type traceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"` // microseconds of simulated time
	ID   int                    `json:"id"`
	Args map[string]interface{} `json:"args"`
}

// simS returns the event time in simulated seconds.
func (e *traceEvent) simS() float64 { return e.Ts / 1e6 }

func (e *traceEvent) argStr(key string) string {
	s, _ := e.Args[key].(string)
	return s
}

func (e *traceEvent) argFloat(key string) float64 {
	f, _ := e.Args[key].(float64)
	return f
}

// argBool reports (value, present) for a boolean arg.
func (e *traceEvent) argBool(key string) (bool, bool) {
	b, ok := e.Args[key].(bool)
	return b, ok
}

// readTrace parses the line-oriented trace stream: the "[" opener,
// then one event object per line with a trailing comma. The metadata
// preamble must identify a schema this tool understands. A torn final
// line is dropped.
func readTrace(path string) ([]traceEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var events []traceEvent
	schema := -1
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		line = strings.TrimSuffix(line, ",")
		if first {
			first = false
			if line == "[" {
				continue
			}
			return nil, fmt.Errorf("%s: not a gsight trace (missing array opener)", path)
		}
		if line == "" || line == "]" {
			continue
		}
		var ev traceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Only the final line may be torn (crash without flush).
			if sc.Scan() {
				return nil, fmt.Errorf("%s: bad trace line: %v", path, err)
			}
			break
		}
		if ev.Ph == "M" && ev.Name == "gsight_trace" {
			schema = int(ev.argFloat("schema"))
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if schema == -1 {
		return nil, fmt.Errorf("%s: not a gsight trace (no gsight_trace metadata)", path)
	}
	if schema != obs.TraceSchema {
		return nil, fmt.Errorf("%s: trace schema %d not supported (want %d)", path, schema, obs.TraceSchema)
	}
	return events, nil
}

func readFlightFile(path string) (*obs.FlightData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fd, err := obs.ReadFlight(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return fd, nil
}

// readDecisionLog parses a JSONL decision log, enforcing the schema
// header. A torn final line is dropped.
func readDecisionLog(path string) ([]map[string]interface{}, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var events []map[string]interface{}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev map[string]interface{}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			if sc.Scan() {
				return nil, fmt.Errorf("%s: bad log line: %v", path, err)
			}
			break
		}
		if first {
			first = false
			if kind, _ := ev["event"].(string); kind != "header" {
				return nil, fmt.Errorf("%s: not a gsight decision log (no schema header)", path)
			}
			schema, _ := ev["schema"].(float64)
			if int(schema) != telemetry.DecisionLogSchema {
				return nil, fmt.Errorf("%s: decision-log schema %d not supported (want %d)",
					path, int(schema), telemetry.DecisionLogSchema)
			}
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, fmt.Errorf("%s: empty decision log", path)
	}
	return events, nil
}

// ---- summary ----

func cmdSummary(rec *recording) error {
	if rec.log != nil {
		summarizeLog(rec.log)
	}
	if rec.trace != nil {
		summarizeTrace(rec.trace)
	}
	if rec.flight != nil {
		summarizeFlight(rec.flight)
	}
	return nil
}

func summarizeLog(events []map[string]interface{}) {
	kinds := map[string]int{}
	outcomes := map[string]int{}
	rejected := map[string]int{}
	tier0Decisions, tier0Kept, tier0Pruned := 0, 0.0, 0.0
	var drifts []map[string]interface{}
	for _, ev := range events {
		kind, _ := ev["event"].(string)
		kinds[kind]++
		if kind == "placement" {
			out, _ := ev["outcome"].(string)
			outcomes[out]++
			if out == "rejected" {
				w, _ := ev["workload"].(string)
				rejected[w]++
			}
			if _, ok := ev["tier0_kept"]; ok {
				tier0Decisions++
				tier0Kept += num(ev["tier0_kept"])
				tier0Pruned += num(ev["tier0_pruned"])
			}
		}
		if kind == "predictor_drift" {
			drifts = append(drifts, ev)
		}
	}
	fmt.Printf("decision log: %d events\n", len(events))
	for _, k := range sortedKeys(kinds) {
		fmt.Printf("  %-18s %d\n", k, kinds[k])
	}
	if len(outcomes) > 0 {
		fmt.Println("placement outcomes:")
		for _, k := range sortedKeys(outcomes) {
			fmt.Printf("  %-18s %d\n", k, outcomes[k])
		}
	}
	if len(rejected) > 0 {
		fmt.Println("top rejected workloads:")
		printTopCounts(rejected, 5)
	}
	if tier0Decisions > 0 {
		scanned := tier0Kept + tier0Pruned
		rate := 0.0
		if scanned > 0 {
			rate = tier0Pruned / scanned
		}
		fmt.Printf("two-tier pruning: %d decisions, %.0f candidates pruned of %.0f scanned (%.1f%%)\n",
			tier0Decisions, tier0Pruned, scanned, 100*rate)
	}
	for _, d := range drifts {
		fmt.Printf("predictor drift at t=%.0fs: qos=%s archetype=%s mape=%.3f ph=%.2f\n",
			num(d["sim_time_s"]), d["qos"], d["archetype"], num(d["mape"]), num(d["ph"]))
	}
	fmt.Println()
}

// jobOutcome aggregates completed job spans per archetype.
type jobOutcome struct {
	completed   int
	checked     int
	violations  int
	sumSlowdown float64
}

func summarizeTrace(events []traceEvent) {
	began, placements, faults, reactive := 0, 0, 0, 0
	outcomes := map[string]int{}
	jobs := map[string]*jobOutcome{}
	var drifts []traceEvent
	for i := range events {
		ev := &events[i]
		switch {
		case ev.Cat == "job" && ev.Ph == "b":
			began++
		case ev.Cat == "job" && ev.Ph == "e":
			jo := jobs[ev.Name]
			if jo == nil {
				jo = &jobOutcome{}
				jobs[ev.Name] = jo
			}
			jo.completed++
			jo.sumSlowdown += ev.argFloat("slowdown")
			if ok, present := ev.argBool("sla_ok"); present {
				jo.checked++
				if !ok {
					jo.violations++
				}
			}
		case ev.Cat == "sched":
			placements++
			outcomes[ev.argStr("outcome")]++
		case ev.Cat == "fault" && ev.Name == "degraded":
			// counted via decision log when present; still a fault event
			faults++
		case ev.Cat == "fault":
			faults++
		case ev.Cat == "reactive":
			reactive++
		case ev.Cat == "predq" && ev.Name == "predictor_drift":
			drifts = append(drifts, *ev)
		}
	}
	completed, violations := 0, 0
	for _, jo := range jobs {
		completed += jo.completed
		violations += jo.violations
	}
	fmt.Printf("trace: %d events — %d jobs begun, %d completed, %d placements, %d fault events, %d reactive actions\n",
		len(events), began, completed, placements, faults, reactive)
	if len(outcomes) > 0 {
		fmt.Println("placement outcomes:")
		for _, k := range sortedKeys(outcomes) {
			fmt.Printf("  %-18s %d\n", k, outcomes[k])
		}
	}
	if violations > 0 {
		fmt.Println("top SLA-violating functions:")
		type viol struct {
			name string
			jo   *jobOutcome
		}
		var vs []viol
		for name, jo := range jobs {
			if jo.violations > 0 {
				vs = append(vs, viol{name, jo})
			}
		}
		sort.Slice(vs, func(i, j int) bool {
			if vs[i].jo.violations != vs[j].jo.violations {
				return vs[i].jo.violations > vs[j].jo.violations
			}
			return vs[i].name < vs[j].name
		})
		for i, v := range vs {
			if i == 5 {
				break
			}
			fmt.Printf("  %-18s %d/%d checked jobs violated, mean slowdown %.2fx\n",
				v.name, v.jo.violations, v.jo.checked, v.jo.sumSlowdown/float64(v.jo.completed))
		}
	}
	for i := range drifts {
		d := &drifts[i]
		fmt.Printf("predictor drift at t=%.0fs: qos=%s archetype=%s mape=%.3f ph=%.2f\n",
			d.simS(), d.argStr("qos"), d.argStr("archetype"), d.argFloat("mape"), d.argFloat("ph"))
	}
	fmt.Println()
}

func summarizeFlight(fd *obs.FlightData) {
	if len(fd.Frames) == 0 {
		fmt.Println("flight recording: empty")
		return
	}
	degraded, predDown := 0, 0
	var cpu, density float64
	for i := range fd.Frames {
		fr := &fd.Frames[i]
		if fr.Flags&obs.FrameDegraded != 0 {
			degraded++
		}
		if fr.Flags&obs.FramePredictorDown != 0 {
			predDown++
		}
		cpu += float64(fr.CPUUtil)
		density += float64(fr.Density)
	}
	n := float64(len(fd.Frames))
	last := &fd.Frames[len(fd.Frames)-1]
	fmt.Printf("flight recording: %d frames over %d servers, step %.0fs, t=[%.0fs, %.0fs]\n",
		len(fd.Frames), fd.Servers, fd.StepS, fd.Frames[0].SimTimeS, last.SimTimeS)
	fmt.Printf("  mean density %.3f, mean CPU util %.3f\n", density/n, cpu/n)
	fmt.Printf("  degraded steps %d, predictor-down steps %d\n", degraded, predDown)
}

// ---- predq ----

func cmdPredq(rec *recording) error {
	if rec.trace == nil {
		return fmt.Errorf("%s: prediction-quality analysis needs a trace (gsight-sim -trace or -record)", rec.path)
	}
	byQoS := map[string][]*traceEvent{}
	var recorded []*traceEvent
	for i := range rec.trace {
		ev := &rec.trace[i]
		if ev.Cat != "predq" {
			continue
		}
		if ev.Name == "predictor_drift" {
			recorded = append(recorded, ev)
			continue
		}
		qos := ev.argStr("qos")
		byQoS[qos] = append(byQoS[qos], ev)
	}
	if len(byQoS) == 0 {
		fmt.Println("no prediction-quality samples in trace")
		return nil
	}
	for _, qos := range sortedKeys(byQoS) {
		samples := byQoS[qos]
		// Replay the samples through the same online tracker the
		// platform runs, so the reported rolling stats match what the
		// live run saw.
		q := obs.NewPredQ(0, 0)
		archetypes := map[string]bool{}
		for _, ev := range samples {
			arch := ev.argStr("archetype")
			archetypes[arch] = true
			q.Track(arch, qos, ev.argFloat("pred"), ev.argFloat("obs"))
		}
		ov := q.Overall()
		fmt.Printf("prediction quality qos=%s: %d samples\n", qos, ov.Count)
		fmt.Printf("  %-18s %8s %8s %9s %8s\n", "archetype", "samples", "window", "mean_err", "MAPE")
		fmt.Printf("  %-18s %8d %8d %+9.3f %8.3f\n", "overall", ov.Count, ov.Window(), ov.MeanErr(), ov.MAPE())
		for _, arch := range sortedKeys(archetypes) {
			st := q.Archetype(arch)
			if st == nil {
				continue
			}
			fmt.Printf("  %-18s %8d %8d %+9.3f %8.3f\n", arch, st.Count, st.Window(), st.MeanErr(), st.MAPE())
		}
		fmt.Println()
	}
	if len(recorded) == 0 {
		fmt.Println("no drift events recorded")
		return nil
	}
	fmt.Printf("drift events recorded: %d\n", len(recorded))
	for _, d := range recorded {
		fmt.Printf("  t=%.0fs qos=%s archetype=%s window=%d mean_err=%+.3f mape=%.3f ph=%.2f\n",
			d.simS(), d.argStr("qos"), d.argStr("archetype"), int(d.argFloat("window")),
			d.argFloat("mean_err"), d.argFloat("mape"), d.argFloat("ph"))
	}
	return nil
}

// ---- errors ----

// errorBuckets is the number of time buckets the errors view renders.
const errorBuckets = 12

func cmdErrors(rec *recording) error {
	if rec.trace == nil {
		return fmt.Errorf("%s: error-over-time needs a trace (gsight-sim -trace or -record)", rec.path)
	}
	type sample struct {
		t, pred, obs float64
	}
	byQoS := map[string][]sample{}
	minT, maxT := 0.0, 0.0
	n := 0
	for i := range rec.trace {
		ev := &rec.trace[i]
		if ev.Cat != "predq" || ev.Name != "sample" {
			continue
		}
		s := sample{t: ev.simS(), pred: ev.argFloat("pred"), obs: ev.argFloat("obs")}
		if s.obs <= 0 {
			continue
		}
		if n == 0 || s.t < minT {
			minT = s.t
		}
		if n == 0 || s.t > maxT {
			maxT = s.t
		}
		n++
		qos := ev.argStr("qos")
		byQoS[qos] = append(byQoS[qos], s)
	}
	if n == 0 {
		fmt.Println("no prediction-quality samples in trace")
		return nil
	}
	span := maxT - minT
	if span <= 0 {
		span = 1
	}
	for _, qos := range sortedKeys(byQoS) {
		counts := make([]int, errorBuckets)
		sumAbs := make([]float64, errorBuckets)
		sumSigned := make([]float64, errorBuckets)
		for _, s := range byQoS[qos] {
			b := int((s.t - minT) / span * errorBuckets)
			if b >= errorBuckets {
				b = errorBuckets - 1
			}
			rel := (s.pred - s.obs) / s.obs
			counts[b]++
			sumSigned[b] += rel
			if rel < 0 {
				rel = -rel
			}
			sumAbs[b] += rel
		}
		fmt.Printf("prediction error over time qos=%s (%d samples)\n", qos, len(byQoS[qos]))
		fmt.Printf("  %12s %8s %9s %8s\n", "t_start", "samples", "mean_err", "MAPE")
		for b := 0; b < errorBuckets; b++ {
			t := minT + span*float64(b)/errorBuckets
			if counts[b] == 0 {
				fmt.Printf("  %11.0fs %8d %9s %8s\n", t, 0, "-", "-")
				continue
			}
			c := float64(counts[b])
			fmt.Printf("  %11.0fs %8d %+9.3f %8.3f\n", t, counts[b], sumSigned[b]/c, sumAbs[b]/c)
		}
		fmt.Println()
	}
	return nil
}

// ---- heat ----

func cmdHeat(rec *recording) error {
	if rec.flight == nil {
		return fmt.Errorf("%s: per-server heat needs a flight recording (gsight-sim -record)", rec.path)
	}
	fd := rec.flight
	if len(fd.Frames) == 0 {
		fmt.Println("flight recording: empty")
		return nil
	}
	sumCPU := make([]float64, fd.Servers)
	maxCPU := make([]float64, fd.Servers)
	sumMem := make([]float64, fd.Servers)
	down := make([]int, fd.Servers)
	slow := make([]int, fd.Servers)
	for i := range fd.Frames {
		fr := &fd.Frames[i]
		for s := 0; s < fd.Servers; s++ {
			c := float64(fr.CPUDemand[s])
			sumCPU[s] += c
			if c > maxCPU[s] {
				maxCPU[s] = c
			}
			sumMem[s] += float64(fr.MemUsed[s])
			if fr.ServerFlags[s]&obs.ServerDown != 0 {
				down[s]++
			}
			if fr.ServerFlags[s]&obs.ServerSlow != 0 {
				slow[s]++
			}
		}
	}
	n := float64(len(fd.Frames))
	fmt.Printf("per-server heat over %d frames (step %.0fs)\n", len(fd.Frames), fd.StepS)
	fmt.Printf("%6s %9s %9s %9s %6s %6s  %s\n", "server", "cpu_mean", "cpu_max", "mem_mean", "down", "slow", "load")
	for s := 0; s < fd.Servers; s++ {
		fmt.Printf("%6d %9.2f %9.2f %9.2f %6d %6d  %s\n",
			s, sumCPU[s]/n, maxCPU[s], sumMem[s]/n, down[s], slow[s], heatBar(sumCPU[s]/n, maxAll(maxCPU)))
	}
	return nil
}

// heatBar renders mean load as a proportional bar against the cluster
// peak, so relative imbalance is visible at a glance.
func heatBar(v, peak float64) string {
	const width = 30
	if peak <= 0 {
		return ""
	}
	n := int(v / peak * width)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

func maxAll(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// ---- trace export ----

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "", "write the strict-JSON trace to this file instead of stdout")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one recording path")
	}
	rec, err := openRecording(fs.Arg(0))
	if err != nil {
		return err
	}
	if rec.trace == nil {
		return fmt.Errorf("%s: no trace stream", fs.Arg(0))
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	// Re-emit as a strict JSON object for tools that reject the
	// truncation-tolerant array-body stream.
	bw.WriteString("{\"traceEvents\":[\n")
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for i := range rec.trace {
		if i > 0 {
			bw.WriteString(",")
		}
		if err := enc.Encode(rec.trace[i]); err != nil {
			return err
		}
	}
	bw.WriteString("]}\n")
	return nil
}

// ---- diff ----

func cmdDiff(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("diff expects exactly two recording paths")
	}
	a, err := openRecording(args[0])
	if err != nil {
		return err
	}
	b, err := openRecording(args[1])
	if err != nil {
		return err
	}
	identical := true
	compared := false
	if a.trace != nil && b.trace != nil {
		compared = true
		if i := diffTraces(a.trace, b.trace); i >= 0 {
			identical = false
			reportTraceDiff(a.trace, b.trace, i)
		} else {
			fmt.Printf("traces identical: %d events\n", len(a.trace))
		}
	}
	if a.flight != nil && b.flight != nil {
		compared = true
		if i := diffFlights(a.flight, b.flight); i >= 0 {
			identical = false
			reportFlightDiff(a.flight, b.flight, i)
		} else {
			fmt.Printf("flight recordings identical: %d frames\n", len(a.flight.Frames))
		}
	}
	if a.log != nil && b.log != nil {
		compared = true
		if i := diffLogs(a.log, b.log); i >= 0 {
			identical = false
			fmt.Printf("decision logs diverge at event %d:\n  a: %s\n  b: %s\n",
				i, jsonLine(at(a.log, i)), jsonLine(at(b.log, i)))
		} else {
			fmt.Printf("decision logs identical: %d events\n", len(a.log))
		}
	}
	if !compared {
		return fmt.Errorf("recordings share no comparable stream")
	}
	if !identical {
		os.Exit(1)
	}
	return nil
}

// diffTraces returns the first diverging event index, or -1.
func diffTraces(a, b []traceEvent) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if jsonLine(a[i]) != jsonLine(b[i]) {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

func reportTraceDiff(a, b []traceEvent, i int) {
	fmt.Printf("traces diverge at event %d (of %d vs %d):\n", i, len(a), len(b))
	if i < len(a) {
		fmt.Printf("  a: %s\n", jsonLine(a[i]))
	} else {
		fmt.Printf("  a: <ended>\n")
	}
	if i < len(b) {
		fmt.Printf("  b: %s\n", jsonLine(b[i]))
	} else {
		fmt.Printf("  b: <ended>\n")
	}
}

// diffFlights returns the first diverging frame index, or -1.
func diffFlights(a, b *obs.FlightData) int {
	if a.Servers != b.Servers || a.StepS != b.StepS {
		return 0
	}
	n := len(a.Frames)
	if len(b.Frames) < n {
		n = len(b.Frames)
	}
	for i := 0; i < n; i++ {
		if jsonLine(a.Frames[i]) != jsonLine(b.Frames[i]) {
			return i
		}
	}
	if len(a.Frames) != len(b.Frames) {
		return n
	}
	return -1
}

func reportFlightDiff(a, b *obs.FlightData, i int) {
	fmt.Printf("flight recordings diverge at frame %d (of %d vs %d)", i, len(a.Frames), len(b.Frames))
	if i < len(a.Frames) {
		fmt.Printf(" — t=%.0fs step %d", a.Frames[i].SimTimeS, a.Frames[i].Step)
	}
	fmt.Println()
}

// diffLogs returns the first diverging event index, or -1.
func diffLogs(a, b []map[string]interface{}) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if jsonLine(a[i]) != jsonLine(b[i]) {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

func at(evs []map[string]interface{}, i int) interface{} {
	if i < len(evs) {
		return evs[i]
	}
	return "<ended>"
}

// ---- small helpers ----

// jsonLine renders v canonically (sorted keys) for comparison and
// divergence reports.
func jsonLine(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return string(b)
}

func num(v interface{}) float64 {
	f, _ := v.(float64)
	return f
}

// sortedKeys returns the keys of a string-keyed map in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func printTopCounts(m map[string]int, top int) {
	type kv struct {
		k string
		v int
	}
	var kvs []kv
	for k, v := range m {
		kvs = append(kvs, kv{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].v != kvs[j].v {
			return kvs[i].v > kvs[j].v
		}
		return kvs[i].k < kvs[j].k
	})
	for i, e := range kvs {
		if i == top {
			break
		}
		fmt.Printf("  %-18s %d\n", e.k, e.v)
	}
}
