// Command gsight-loadgen drives open-loop Poisson load against a
// gsight-serve daemon and reports placement latency percentiles.
//
//	gsight-loadgen -addr http://127.0.0.1:7070 -rate 200 -n 2000
//
// Arrivals fire on a Poisson clock that does not wait for responses,
// so the offered rate holds even when the daemon slows down — the
// reported p99 includes the queueing the daemon actually caused
// (no coordinated omission). -ordered stamps requests with global
// order numbers for byte-replayable runs (the failover gate's mode).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gsight/internal/serve"
)

func main() {
	var (
		addrs     = flag.String("addr", "http://127.0.0.1:7070", "daemon base URLs, comma-separated (active first)")
		rate      = flag.Float64("rate", 0, "offered arrival rate in requests/s (0 = closed loop)")
		workers   = flag.Int("workers", 32, "max in-flight requests (open loop) / client count (closed loop)")
		n         = flag.Int("n", 1000, "measured requests")
		warmup    = flag.Int("warmup", 100, "warmup requests (excluded from percentiles)")
		seed      = flag.Uint64("seed", 1, "arrival clock and workload mix seed")
		mix       = flag.String("mix", "", "workload mix, comma-separated (default: the daemon's full catalog)")
		release   = flag.Float64("release", 0.5, "probability of releasing each placed instance immediately")
		observe   = flag.Float64("observe", 0.2, "probability of feeding back a QoS observation per placement")
		ordered   = flag.Bool("ordered", false, "stamp requests with global order numbers (byte-replayable run)")
		startOrder = flag.Uint64("start-order", 1, "first order number for -ordered runs")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON")
		timeout   = flag.Duration("timeout", 10*time.Minute, "overall run timeout")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	addrList := strings.Split(*addrs, ",")
	cl := serve.NewClient(addrList...)
	if err := cl.WaitReady(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gsight-loadgen: daemon not ready: %v\n", err)
		os.Exit(1)
	}

	var workloads []string
	if *mix != "" {
		workloads = strings.Split(*mix, ",")
	} else {
		st, err := cl.State(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsight-loadgen: fetch catalog: %v\n", err)
			os.Exit(1)
		}
		workloads = st.Catalog
	}

	res, err := serve.RunLoad(ctx, serve.LoadConfig{
		Addrs:       addrList,
		RateQPS:     *rate,
		Workers:     *workers,
		Requests:    *n,
		Warmup:      *warmup,
		Seed:        *seed,
		Workloads:   workloads,
		ReleaseFrac: *release,
		ObserveFrac: *observe,
		Ordered:     *ordered,
		StartOrder:  *startOrder,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsight-loadgen: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		json.NewEncoder(os.Stdout).Encode(res)
	} else {
		fmt.Println(res)
	}
	if res.Errors > 0 {
		os.Exit(2)
	}
}
