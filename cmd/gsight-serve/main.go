// Command gsight-serve runs the placement daemon: an HTTP/JSON API
// over the live Gsight controller with write-ahead-logged
// acknowledgements, admission control and active/standby failover.
//
//	gsight-serve -data /var/lib/gsight -addr :7070            # active
//	gsight-serve -data /var/lib/gsight -addr :7071 -standby   # hot standby
//
// The standby tails the shared data dir and takes over the moment the
// active's lease lapses; every acknowledged decision survives the
// handoff (see DESIGN.md §16).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsight/internal/serve"
	"gsight/internal/telemetry"
)

func main() {
	var (
		dataDir  = flag.String("data", "", "data directory (snapshots, WAL, decision log, lease) — required")
		addr     = flag.String("addr", "127.0.0.1:7070", "API listen address")
		servers  = flag.Int("servers", 0, "cluster size (0 = the paper's 8-node testbed)")
		shards   = flag.Int("shards", 0, "state shards (0 = auto)")
		placers  = flag.Int("placers", 4, "placement workers")
		seed     = flag.Uint64("seed", 42, "catalog / training seed (must match across active and standby)")
		train    = flag.Int("train", 40, "bootstrap training scenarios (0 = start untrained, serve degraded)")
		topk     = flag.Int("topk", 0, "tier-0 candidate pruning (0 = off)")
		queueCap = flag.Int("queue", 256, "admission queue capacity (overflow sheds with 429)")
		snapEvery = flag.Int("snapshot-every", 1024, "records between snapshots")
		keep     = flag.Int("keep", 3, "checkpoint generations retained")
		window   = flag.Duration("flush-window", 0, "group-commit coalescing window (0 = flush immediately)")
		standby  = flag.Bool("standby", false, "start as hot standby: wait for the active's lease to lapse")
		ttl      = flag.Duration("lease-ttl", 2*time.Second, "leadership lease duration")
		owner    = flag.String("owner", "", "lease owner name (default host:pid)")
	)
	flag.Parse()
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "gsight-serve: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "gsight-serve: ", log.LstdFlags|log.Lmicroseconds)
	logf := logger.Printf
	if *owner == "" {
		host, _ := os.Hostname()
		*owner = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Leadership first: a standby parks here until the active dies; an
	// active refuses to start over a live lease (split brain guard).
	var lease *serve.Lease
	if *standby {
		logf("standby: waiting for lease on %s", serve.LeasePath(*dataDir))
		l, err := serve.WaitForLease(ctx, serve.StandbyConfig{
			DataDir: *dataDir, Owner: *owner, TTL: *ttl, Logf: logf,
		})
		if err != nil {
			logf("standby: %v", err)
			os.Exit(1)
		}
		lease = l
	} else {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			logger.Fatalf("data dir: %v", err)
		}
		lease = serve.NewLease(serve.LeasePath(*dataDir), *owner, *ttl)
		if err := lease.Acquire(); err != nil {
			logger.Fatalf("lease: %v (another active is serving; start with -standby to wait)", err)
		}
	}
	logf("serving as %s at lease epoch %d", *owner, lease.Epoch())

	health := telemetry.NewHealth()
	srv, err := serve.New(serve.Config{
		DataDir:       *dataDir,
		Servers:       *servers,
		Shards:        *shards,
		Placers:       *placers,
		Seed:          *seed,
		Train:         *train,
		TopK:          *topk,
		QueueCap:      *queueCap,
		SnapshotEvery: *snapEvery,
		Keep:          *keep,
		FlushWindow:   *window,
		Health:        health,
		Logf:          logf,
	})
	if err != nil {
		lease.Release()
		logger.Fatalf("start: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		lease.Release()
		logger.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			logf("http: %v", err)
		}
	}()
	logf("listening on %s (applied seq %d)", ln.Addr(), srv.Applied())

	// Renew until shutdown; a failed renewal means another process took
	// the lease — fence hard (exit non-zero, no drain: our successor
	// already owns the decision stream).
	renewErr := make(chan error, 1)
	go func() {
		renewErr <- serve.RenewLoop(ctx, lease, func(err error) {
			health.Down(err.Error())
		})
	}()

	select {
	case <-ctx.Done():
		logf("shutdown: draining")
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Stop(dctx); err != nil {
			logf("drain: %v", err)
		}
		hs.Shutdown(dctx)
		lease.Release()
		logf("drained cleanly")
	case err := <-renewErr:
		if err != nil {
			logf("FENCED: %v", err)
			hs.Close()
			os.Exit(3)
		}
	}
}
