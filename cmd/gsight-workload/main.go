// Command gsight-workload validates a JSON workload definition and
// reports how the system will see it: the call-path structure, critical
// path, solo-run profile, default replica sizing, and — optionally — a
// quick interference characterization against the catalog
// micro-benchmarks (a one-workload Figure 3(a)).
//
// Usage:
//
//	gsight-workload -file app.json [-characterize]
//	gsight-workload -catalog social-network [-characterize]
//	gsight-workload -export social-network      # print a catalog entry as JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"gsight/internal/logx"
	"gsight/internal/metrics"
	"gsight/internal/perfmodel"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/telemetry"
	"gsight/internal/trace"
	"gsight/internal/workload"
)

var log *logx.Logger

func main() {
	file := flag.String("file", "", "JSON workload definition to validate")
	catalogName := flag.String("catalog", "", "inspect a catalog workload instead")
	export := flag.String("export", "", "print a catalog workload as JSON and exit")
	characterize := flag.Bool("characterize", false, "run the micro-benchmark interference sweep")
	rateScale := flag.Float64("rate-scale", 1, "project invocation volume with rates multiplied by this factor")
	timeScale := flag.Float64("time-scale", 1, "project invocation volume with the trace clock compressed by this factor")
	verbose := flag.Bool("v", false, "verbose progress")
	quiet := flag.Bool("quiet", false, "errors only")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address")
	flag.Parse()

	log = logx.Default(*verbose, *quiet)
	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr, nil)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		log.Infof("debug server on http://%s (expvar, pprof)", addr)
	}

	if *export != "" {
		w, ok := workload.Catalog()[*export]
		if !ok {
			fatal("unknown catalog workload %q", *export)
		}
		if err := workload.WriteJSON(os.Stdout, w); err != nil {
			fatal("%v", err)
		}
		return
	}

	var w *workload.Workload
	switch {
	case *file != "":
		var err error
		w, err = workload.LoadJSONFile(*file)
		if err != nil {
			fatal("invalid workload: %v", err)
		}
	case *catalogName != "":
		var ok bool
		w, ok = workload.Catalog()[*catalogName]
		if !ok {
			fatal("unknown catalog workload %q", *catalogName)
		}
	default:
		fatal("pass -file <def.json>, -catalog <name> or -export <name>")
	}

	fmt.Printf("workload %q (%s) — valid\n", w.Name, w.Class)
	if w.Class == workload.LS {
		fmt.Printf("  SLA: p99 <= %.0f ms at up to %.0f qps\n", w.SLAp99Ms, w.MaxQPS)
	} else {
		fmt.Printf("  solo duration %.0f s x %d instances\n", w.SoloDurationS, w.Instances)
	}
	fmt.Printf("  %d functions, critical path:", w.NumFunctions())
	for _, i := range w.CriticalPath() {
		fmt.Printf(" %s", w.Functions[i].Name)
	}
	fmt.Println()

	spec := resources.DefaultServerSpec("validator")
	ps := profile.WorkloadProfiles(w, spec, nil)
	fmt.Println("\nsolo-run profile (16 model inputs):")
	fmt.Printf("  %-22s", "function")
	for _, id := range []metrics.ID{metrics.IPC, metrics.CPUUtil, metrics.LLCOcc, metrics.L3MPKI, metrics.NetBW, metrics.DiskIO} {
		fmt.Printf("  %10s", id)
	}
	fmt.Println()
	for _, p := range ps {
		fmt.Printf("  %-22s", p.Function)
		for _, id := range []metrics.ID{metrics.IPC, metrics.CPUUtil, metrics.LLCOcc, metrics.L3MPKI, metrics.NetBW, metrics.DiskIO} {
			fmt.Printf("  %10.3f", p.Metrics[id])
		}
		fmt.Println()
	}

	if w.Class == workload.LS {
		sc := trace.Scaling{RateFactor: *rateScale, TimeFactor: *timeScale}
		p := sc.Apply(trace.DefaultPattern(w.MaxQPS * 0.6))
		daily := 0.0
		const stepS = 60.0
		for t := 0.0; t < 86400; t += stepS {
			daily += p.RateAt(t) * stepS
		}
		if sc.IsZero() {
			fmt.Printf("\nprojected volume under the default diurnal pattern: %.2fM invocations/day\n", daily/1e6)
		} else {
			fmt.Printf("\nprojected volume at rate x%.1f, time x%.1f: %.2fM invocations/day\n",
				sc.Rate(), sc.Time(), daily/1e6)
		}

		fmt.Println("\nreplica sizing at max load:")
		total := 0
		for f := range w.Functions {
			n := perfmodel.LSReplicasFor(w, f, w.MaxQPS)
			total += n
			fmt.Printf("  %-22s %d instances\n", w.Functions[f].Name, n)
		}
		fmt.Printf("  total: %d instances\n", total)
	}

	if *characterize {
		fmt.Println("\ninterference characterization (micro-benchmark beside each function):")
		m := perfmodel.New(resources.DefaultTestbed())
		solo := deploy(w, m)
		base, err := m.Evaluate(&perfmodel.Scenario{Deployments: []*perfmodel.Deployment{solo}}, nil)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("  %-22s", "beside")
		for _, mb := range workload.MicroBenchmarks() {
			fmt.Printf("  %16s", mb.Name)
		}
		fmt.Println()
		for f := range w.Functions {
			fmt.Printf("  %-22s", w.Functions[f].Name)
			for _, mb := range workload.MicroBenchmarks() {
				d := deploy(w, m)
				c := perfmodel.NewDeployment(mb.Clone())
				for cf := range c.Placement {
					c.Placement[cf] = d.Placement[f]
					c.Socket[cf] = d.Socket[f]
				}
				res, err := m.Evaluate(&perfmodel.Scenario{Deployments: []*perfmodel.Deployment{d, c}}, nil)
				if err != nil {
					fatal("%v", err)
				}
				if w.Class == workload.LS {
					fmt.Printf("  %15.1fms", res.Deployments[0].E2EP99Ms)
				} else {
					fmt.Printf("  %15.1fs ", res.Deployments[0].JCTS)
				}
			}
			fmt.Println()
		}
		if w.Class == workload.LS {
			fmt.Printf("  (solo: %.1f ms p99)\n", base.Deployments[0].E2EP99Ms)
		} else {
			fmt.Printf("  (solo: %.1f s JCT)\n", base.Deployments[0].JCTS)
		}
	}
}

func deploy(w *workload.Workload, m *perfmodel.Model) *perfmodel.Deployment {
	d := perfmodel.SpreadDeployment(w, m.Testbed)
	if w.Class == workload.LS {
		d.QPS = w.MaxQPS / 2
	}
	return d
}

func fatal(format string, args ...interface{}) {
	log.Fatalf(format, args...)
}
