// Command gsight-sim runs the trace-driven serverless platform
// simulation under a chosen scheduler and prints density, utilization
// and SLA statistics — the §6.3 case study as a tool. Progress goes to
// stderr; the report on stdout stays pipeable. SIGINT/SIGTERM cancel
// the run cleanly: open files are flushed before exiting.
//
// Usage:
//
//	gsight-sim [-scheduler gsight|bestfit|worstfit] [-hours 24]
//	           [-train 800] [-seed 42] [-v|-quiet]
//	           [-faults chaos|node-crash|...|schedule.json]
//	           [-checkpoint-dir ckpt] [-checkpoint-interval 1800] [-resume]
//	           [-debug-addr :6060] [-report run.json] [-decision-log run.jsonl]
//	           [-trace trace.json] [-record dir]
//
// With -checkpoint-dir the controller snapshots its full state
// periodically and logs every decision to a write-ahead log between
// snapshots. A run killed at any point (including by an injected
// controller-crash fault, exit code 3) can be rerun with -resume and
// the same flags: it picks up from the newest valid snapshot and the
// final report and decision log are byte-identical to an uninterrupted
// run.
//
// -trace writes an invocation-lifecycle trace in Chrome trace-event
// JSON (loadable in Perfetto or chrome://tracing). -record captures the
// full observability bundle into a directory — trace.json plus
// flight.bin, the step-sampled flight recording gsight-inspect reads.
// Both streams are simulation-time only (same-seed runs are
// byte-identical) and checkpoint-aware: on -resume they are truncated
// to the snapshot's offsets and continued seamlessly.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"gsight/internal/baselines"
	"gsight/internal/core"
	"gsight/internal/faults"
	"gsight/internal/logx"
	"gsight/internal/obs"
	"gsight/internal/perfmodel"
	"gsight/internal/persist"
	"gsight/internal/platform"
	"gsight/internal/resources"
	"gsight/internal/scenario"
	"gsight/internal/sched"
	"gsight/internal/stats"
	"gsight/internal/telemetry"
	"gsight/internal/trace"
	"gsight/internal/workload"
)

func main() {
	schedName := flag.String("scheduler", "gsight", "gsight, bestfit (Pythia), worstfit")
	hours := flag.Float64("hours", 24, "simulated duration")
	trainScen := flag.Int("train", 800, "bootstrap scenarios for the predictor")
	seed := flag.Uint64("seed", 42, "seed")
	verbose := flag.Bool("v", false, "verbose progress")
	quiet := flag.Bool("quiet", false, "errors only")
	faultsFlag := flag.String("faults", "", "fault schedule: a named scenario ("+strings.Join(faults.Names(), ", ")+") or a JSON schedule file")
	checkpointDir := flag.String("checkpoint-dir", "", "write crash-consistent checkpoints to this directory")
	checkpointInterval := flag.Float64("checkpoint-interval", 1800, "seconds of simulated time between snapshots")
	resume := flag.Bool("resume", false, "resume from the newest valid checkpoint in -checkpoint-dir (fresh start if none)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	reportPath := flag.String("report", "", "write a JSON run report to this file")
	decisionPath := flag.String("decision-log", "", "write the JSONL decision log to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace-event (Perfetto) lifecycle trace to this file")
	recordDir := flag.String("record", "", "record the observability bundle (trace.json, flight.bin) into this directory")
	rateScale := flag.Float64("rate-scale", 1, "multiply every service's invocation rate (and its MaxQPS ceiling) for soak runs")
	timeScale := flag.Float64("time-scale", 1, "compress the diurnal/weekly trace clock: k replays k days of rate structure per simulated day")
	servers := flag.Int("servers", 0, "cluster size (0 = the paper's 8-node testbed)")
	shards := flag.Int("shards", 0, "scheduler-state shards (0 = 1; placement outcomes are shard-independent)")
	placers := flag.Int("placers", 0, "concurrent placer workers for initial deployment (0 = serial; results identical)")
	topk := flag.Int("topk", 0, "two-tier placement: tier-0 score prunes candidates to the top K before full prediction (0 = K=∞, pruning off)")
	flag.Parse()

	log := logx.Default(*verbose, *quiet)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// run (not main) owns the deferred cleanups, so a failure exits
	// through them — buffered decision logs land on disk either way.
	if err := run(ctx, log, options{
		scheduler:     *schedName,
		hours:         *hours,
		trainScen:     *trainScen,
		seed:          *seed,
		faults:        *faultsFlag,
		checkpointDir: *checkpointDir,
		checkpointInt: *checkpointInterval,
		resume:        *resume,
		debugAddr:     *debugAddr,
		reportPath:    *reportPath,
		decisionPath:  *decisionPath,
		tracePath:     *tracePath,
		recordDir:     *recordDir,
		scaling:       trace.Scaling{RateFactor: *rateScale, TimeFactor: *timeScale},
		servers:       *servers,
		shards:        *shards,
		placers:       *placers,
		topk:          *topk,
	}); err != nil {
		log.Errorf("%v", err)
		// A deliberate controller crash is distinguishable from real
		// failures so retry loops can rerun with -resume.
		if errors.Is(err, platform.ErrControllerCrashed) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// simStepS is the platform step interval; the flight recorder stamps
// it into its header so recordings are self-describing.
const simStepS = 30

type options struct {
	scheduler     string
	hours         float64
	trainScen     int
	seed          uint64
	faults        string
	checkpointDir string
	checkpointInt float64
	resume        bool
	debugAddr     string
	reportPath    string
	decisionPath  string
	tracePath     string
	recordDir     string
	scaling       trace.Scaling
	servers       int
	shards        int
	placers       int
	topk          int
}

func run(ctx context.Context, log *logx.Logger, opt options) error {
	// Resuming? Peek at the newest valid snapshot before touching the
	// decision log or the predictor: it decides whether the log is
	// truncated-and-continued and whether bootstrap training is skipped
	// (the restored predictor state supersedes it).
	var resumeMeta *platform.CheckpointMeta
	if opt.resume {
		if opt.checkpointDir == "" {
			return fmt.Errorf("-resume requires -checkpoint-dir")
		}
		meta, err := platform.PeekCheckpoint(opt.checkpointDir)
		switch {
		case err == nil:
			resumeMeta = meta
			log.Infof("resuming from checkpoint seq %d (sim t=%.0fs, step %d)",
				meta.Seq, meta.SimTimeS, meta.Step)
		case errors.Is(err, persist.ErrNoSnapshot):
			log.Infof("no checkpoint in %s; starting fresh", opt.checkpointDir)
		default:
			return fmt.Errorf("checkpoint: %w", err)
		}
	}

	sink := telemetry.New()
	// Every checkpoint-aware stream (decision log, trace, flight
	// recording) registers its flush here; the composed function runs
	// before each snapshot so the on-disk bytes cover the recorded
	// offsets.
	var flushFns []func() error
	// openStream (re)opens one output stream: truncate-and-append on
	// resume, fresh otherwise. The returned writer is flushed and closed
	// when run returns.
	openStream := func(path string, resumeBytes int64) (*bufio.Writer, func(), error) {
		var f *os.File
		var err error
		if resumeMeta != nil {
			f, err = persist.OpenAppendTruncated(path, resumeBytes)
		} else {
			f, err = os.Create(path)
		}
		if err != nil {
			return nil, nil, err
		}
		bw := bufio.NewWriter(f)
		flushFns = append(flushFns, bw.Flush)
		return bw, func() { bw.Flush(); f.Close() }, nil
	}
	// Observability recording paths: -trace writes the lifecycle trace
	// alone, -record captures the full bundle (trace + flight recording)
	// into a directory gsight-inspect can read back. The directory is
	// created first so other outputs (like -decision-log) can point
	// into it.
	tracePath, flightPath := opt.tracePath, ""
	if opt.recordDir != "" {
		if err := os.MkdirAll(opt.recordDir, 0o755); err != nil {
			return fmt.Errorf("record dir: %w", err)
		}
		if tracePath == "" {
			tracePath = filepath.Join(opt.recordDir, "trace.json")
		}
		flightPath = filepath.Join(opt.recordDir, "flight.bin")
	}
	if opt.decisionPath != "" {
		// Continue the interrupted log: drop everything after the
		// snapshot's offset, then append. The platform re-emits the
		// replayed window so the bytes line up exactly.
		var resumeBytes int64
		if resumeMeta != nil {
			resumeBytes = resumeMeta.LogBytes
		}
		bw, closeLog, err := openStream(opt.decisionPath, resumeBytes)
		if err != nil {
			return fmt.Errorf("decision log: %w", err)
		}
		defer closeLog()
		sink.WithDecisions(bw)
	}
	if opt.debugAddr != "" {
		addr, err := telemetry.ServeDebug(opt.debugAddr, sink.Registry)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		log.Infof("debug server on http://%s (metrics, expvar, pprof)", addr)
	}

	// The platform runs on the (possibly scaled) testbed; bootstrap
	// training and SLA-curve calibration stay on the paper's 8-node lab
	// — the interference code layout is 8-row, and profiles/curves are
	// per-server-spec, not per-cluster-size.
	tb := resources.DefaultTestbed()
	if opt.servers > 0 {
		tb = resources.NewTestbed(opt.servers)
	}
	m := perfmodel.New(tb)
	scenario.FastConfig(m)
	lab := m
	if tb.NumServers() != resources.DefaultTestbed().NumServers() {
		lab = perfmodel.New(resources.DefaultTestbed())
		scenario.FastConfig(lab)
	}
	g := scenario.NewGenerator(lab, opt.seed)

	var recorder *obs.Recorder
	if tracePath != "" || flightPath != "" {
		obsCfg := obs.Config{Servers: m.Testbed.NumServers(), StepS: simStepS}
		if tracePath != "" {
			var resumeBytes int64
			if resumeMeta != nil {
				resumeBytes = resumeMeta.TraceBytes
			}
			bw, closeTrace, err := openStream(tracePath, resumeBytes)
			if err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			defer closeTrace()
			obsCfg.Trace = bw
		}
		if flightPath != "" {
			var resumeBytes int64
			if resumeMeta != nil {
				resumeBytes = resumeMeta.FlightBytes
			}
			bw, closeFlight, err := openStream(flightPath, resumeBytes)
			if err != nil {
				return fmt.Errorf("flight recording: %w", err)
			}
			defer closeFlight()
			obsCfg.Flight = bw
		}
		recorder = obs.New(obsCfg)
	}

	var pred core.QoSPredictor
	var scheduler sched.Scheduler
	var factory func() sched.Scheduler
	needTraining := true
	switch opt.scheduler {
	case "gsight":
		p := core.NewPredictor(core.Config{Seed: opt.seed})
		pred = p
		twoTier := func(g *sched.Gsight) *sched.Gsight {
			if opt.topk > 0 {
				g.Tier0 = p.Tier0()
				g.TopK = opt.topk
			}
			return g
		}
		scheduler = twoTier(sched.NewGsight(p))
		// Pool workers share the (read-only at placement time)
		// predictor but get private scheduler scratch.
		factory = func() sched.Scheduler { return twoTier(sched.NewGsight(p)) }
	case "bestfit":
		p := baselines.NewPythia(opt.seed)
		pred = p
		scheduler = sched.NewBestFit(p)
		factory = func() sched.Scheduler { return sched.NewBestFit(p) }
	case "worstfit":
		scheduler = sched.NewWorstFit()
		factory = func() sched.Scheduler { return sched.NewWorstFit() }
		needTraining = false
	default:
		return fmt.Errorf("unknown scheduler %q", opt.scheduler)
	}
	if in, ok := scheduler.(interface{ Instrument(*telemetry.Sink) }); ok {
		in.Instrument(sink)
	}
	if in, ok := pred.(interface{ Instrument(*telemetry.Sink) }); ok {
		in.Instrument(sink)
	}
	// Gsight learns online (§5): attach its predictor so step-boundary
	// observations flow into the incremental forest — and so checkpoints
	// carry the full learning state. The baselines stay offline; on
	// resume they re-train, which is deterministic and reproduces the
	// exact pre-crash state.
	var onlinePred core.QoSPredictor
	if _, ok := pred.(core.Checkpointable); ok {
		onlinePred = pred
	}

	durationS := opt.hours * 3600
	var schedule *faults.Schedule
	if opt.faults != "" {
		var err error
		if strings.HasSuffix(opt.faults, ".json") {
			schedule, err = faults.LoadFile(opt.faults)
		} else {
			schedule, err = faults.Scenario(opt.faults, opt.seed, durationS, m.Testbed.NumServers())
		}
		if err != nil {
			return err // faults package errors are self-describing
		}
		log.Infof("fault schedule %q: %d events", schedule.Name, len(schedule.Events))
	}

	if resumeMeta != nil && onlinePred != nil {
		// The snapshot carries the predictor's full online-learning
		// state; bootstrap training would be discarded by the restore.
		needTraining = false
	}
	if needTraining {
		log.Infof("bootstrapping %s's predictor on %d scenarios...", scheduler.Name(), opt.trainScen)
		t0 := time.Now()
		var ipcObs, jctObs []core.Observation
		for i := 0; i < opt.trainScen; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			sc := g.Colocation(core.LSSC, 2+g.Rand().Intn(2))
			samples, err := g.Label(sc)
			if err != nil {
				return fmt.Errorf("labeling: %w", err)
			}
			for _, s := range samples {
				o := core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label}
				switch s.Kind {
				case core.IPCQoS:
					ipcObs = append(ipcObs, o)
				case core.JCTQoS:
					jctObs = append(jctObs, o)
				}
			}
		}
		if err := pred.TrainObservations(core.IPCQoS, ipcObs); err != nil {
			return fmt.Errorf("training: %w", err)
		}
		if len(jctObs) > 0 {
			if err := pred.TrainObservations(core.JCTQoS, jctObs); err != nil {
				return fmt.Errorf("training: %w", err)
			}
		}
		log.Infof("trained in %v", time.Since(t0).Round(time.Millisecond))
	}

	var services []platform.LSService
	for i, w := range []*workload.Workload{
		workload.SocialNetwork(), workload.ECommerce(), workload.MLServing(),
	} {
		curve := sched.BuildCurve(lab, w, 250, opt.seed+uint64(i))
		minIPC, _ := curve.MinIPCFor(w.SLAp99Ms)
		p := trace.DefaultPattern(w.MaxQPS * 0.6)
		p.PhaseShift = float64(i) * 7200
		if !opt.scaling.IsZero() {
			// Soak mode: scale the offered rate and the clamp it is
			// capped against together, so the scaled diurnal shape
			// survives instead of flattening at the old ceiling.
			p = opt.scaling.Apply(p)
			w = w.Clone()
			w.MaxQPS *= opt.scaling.Rate()
		}
		services = append(services, platform.LSService{W: w, Pattern: p, SLA: sched.SLA{MinIPC: minIPC}})
	}
	if !opt.scaling.IsZero() {
		log.Infof("trace scaling: rate x%.1f, time x%.1f", opt.scaling.Rate(), opt.scaling.Time())
	}

	// One flush function covering every open stream: the checkpointer
	// calls it before each snapshot so the on-disk bytes reach the
	// offsets the snapshot records.
	var flushLog func() error
	if len(flushFns) > 0 {
		fns := flushFns
		flushLog = func() error {
			for _, fn := range fns {
				if err := fn(); err != nil {
					return err
				}
			}
			return nil
		}
	}

	log.Infof("running %.0fh trace-driven simulation under %s...", opt.hours, scheduler.Name())
	t0 := time.Now()
	st, err := platform.Run(ctx, platform.Config{
		Model:     perfmodel.New(m.Testbed),
		Scheduler: scheduler,
		Services:  services,
		SCPool: []*workload.Workload{
			workload.MatMul(), workload.DD(), workload.Iperf(),
			workload.VideoProcessing(), workload.FloatOp(),
			workload.FeatureGeneration(), workload.DataPipeline(),
			workload.IoTCollector(), workload.Monitor(),
		},
		SCMeanIntervalS: 150,
		DurationS:       durationS,
		StepS:           simStepS,
		Seed:            opt.seed,
		Telemetry:       sink,
		Faults:          schedule,
		Predictor:       onlinePred,
		Obs:             recorder,
		Checkpoint: platform.CheckpointConfig{
			Dir:       opt.checkpointDir,
			IntervalS: opt.checkpointInt,
			Resume:    opt.resume,
			FlushLog:  flushLog,
		},
		Shards:           opt.shards,
		Placers:          opt.placers,
		SchedulerFactory: factory,
	})
	if err != nil {
		if errors.Is(err, platform.ErrControllerCrashed) {
			return fmt.Errorf("simulation: %w (rerun with -resume to continue)", err)
		}
		return fmt.Errorf("simulation: %w", err)
	}
	log.Infof("simulated in %v (%d steps)", time.Since(t0).Round(time.Millisecond), st.Steps)
	if recorder != nil {
		if err := recorder.Err(); err != nil {
			return fmt.Errorf("observability recording: %w", err)
		}
		log.Infof("recorded %d trace events, %d flight frames",
			recorder.Trace().Events(), recorder.Flight().Frames())
	}

	fmt.Printf("function density (inst/core): mean %.3f, p50 %.3f, p90 %.3f\n",
		stats.Mean(st.Density), stats.Median(st.Density), stats.Percentile(st.Density, 90))
	fmt.Printf("CPU utilization:              mean %.3f, p50 %.3f, p90 %.3f\n",
		stats.Mean(st.CPUUtil), stats.Median(st.CPUUtil), stats.Percentile(st.CPUUtil, 90))
	fmt.Printf("memory utilization:           mean %.3f, p50 %.3f, p90 %.3f\n",
		stats.Mean(st.MemUtil), stats.Median(st.MemUtil), stats.Percentile(st.MemUtil, 90))
	fmt.Println()
	var names []string
	for n := range st.SLAOK {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("SLA guarantee %-16s %.2f%% of the time\n", n+":", 100*st.SLARatio(n))
	}
	fmt.Printf("\ncold starts %d, reactive migrations %d, scale-out reschedules %d, jobs rejected %d\n",
		st.ColdStarts, st.Migrations, st.Reschedules, st.RejectedJobs)
	fmt.Printf("scheduling wall-clock: %v over %d placements\n",
		st.SchedulingTime.Round(time.Millisecond), st.Placements)
	totalJobs := 0
	for _, jcts := range st.JCTs {
		totalJobs += len(jcts)
	}
	fmt.Printf("batch jobs completed: %d\n", totalJobs)
	if st.FaultEvents > 0 || len(st.Degraded) > 0 {
		fmt.Printf("\nfaults: %d events, %d services displaced, %d jobs displaced\n",
			st.FaultEvents, st.DisplacedServices, st.DisplacedJobs)
		fmt.Printf("degraded: %d placements via fallback, %d/%d steps in degraded mode, %d retries\n",
			st.DegradedPlacements, st.DegradedSteps, st.Steps, st.PlacementRetries)
		for _, d := range st.Degraded {
			fmt.Printf("degraded window [%.0fs, %.0fs): %s\n", d.StartS, d.EndS, d.Reason)
		}
	}

	if opt.reportPath != "" {
		degraded := make([]map[string]interface{}, 0, len(st.Degraded))
		for _, d := range st.Degraded {
			degraded = append(degraded, map[string]interface{}{
				"start_s": d.StartS, "end_s": d.EndS, "reason": d.Reason,
			})
		}
		config := map[string]interface{}{
			"scheduler": scheduler.Name(),
			"hours":     opt.hours,
			"train":     opt.trainScen,
			"seed":      opt.seed,
			"faults":    opt.faults,
		}
		if opt.topk > 0 {
			// Recorded only when set so K=∞ reports stay byte-identical
			// to the pre-two-tier format.
			config["topk"] = opt.topk
		}
		rep := sink.Report("gsight-sim", config,
			map[string]interface{}{
				"steps":               st.Steps,
				"mean_density":        stats.Mean(st.Density),
				"mean_cpu_util":       stats.Mean(st.CPUUtil),
				"cold_starts":         st.ColdStarts,
				"migrations":          st.Migrations,
				"reschedules":         st.Reschedules,
				"rejected_jobs":       st.RejectedJobs,
				"placements":          st.Placements,
				"jobs_completed":      totalJobs,
				"fault_events":        st.FaultEvents,
				"displaced_services":  st.DisplacedServices,
				"displaced_jobs":      st.DisplacedJobs,
				"degraded_placements": st.DegradedPlacements,
				"degraded_steps":      st.DegradedSteps,
				"placement_retries":   st.PlacementRetries,
				"degraded_intervals":  degraded,
			})
		if err := telemetry.WriteRunReport(opt.reportPath, rep); err != nil {
			return fmt.Errorf("run report: %w", err)
		}
		log.Infof("run report written to %s", opt.reportPath)
	}
	return nil
}
