// Command gsight-sim runs the trace-driven serverless platform
// simulation under a chosen scheduler and prints density, utilization
// and SLA statistics — the §6.3 case study as a tool. Progress goes to
// stderr; the report on stdout stays pipeable.
//
// Usage:
//
//	gsight-sim [-scheduler gsight|bestfit|worstfit] [-hours 24]
//	           [-train 800] [-seed 42] [-v|-quiet]
//	           [-debug-addr :6060] [-report run.json] [-decision-log run.jsonl]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"gsight/internal/baselines"
	"gsight/internal/core"
	"gsight/internal/logx"
	"gsight/internal/perfmodel"
	"gsight/internal/platform"
	"gsight/internal/resources"
	"gsight/internal/scenario"
	"gsight/internal/sched"
	"gsight/internal/stats"
	"gsight/internal/telemetry"
	"gsight/internal/trace"
	"gsight/internal/workload"
)

func main() {
	schedName := flag.String("scheduler", "gsight", "gsight, bestfit (Pythia), worstfit")
	hours := flag.Float64("hours", 24, "simulated duration")
	trainScen := flag.Int("train", 800, "bootstrap scenarios for the predictor")
	seed := flag.Uint64("seed", 42, "seed")
	verbose := flag.Bool("v", false, "verbose progress")
	quiet := flag.Bool("quiet", false, "errors only")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	reportPath := flag.String("report", "", "write a JSON run report to this file")
	decisionPath := flag.String("decision-log", "", "write the JSONL decision log to this file")
	flag.Parse()

	log := logx.Default(*verbose, *quiet)

	sink := telemetry.New()
	if *decisionPath != "" {
		f, err := os.Create(*decisionPath)
		if err != nil {
			log.Fatalf("decision log: %v", err)
		}
		bw := bufio.NewWriter(f)
		defer func() {
			bw.Flush()
			f.Close()
		}()
		sink.WithDecisions(bw)
	}
	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr, sink.Registry)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		log.Infof("debug server on http://%s (metrics, expvar, pprof)", addr)
	}

	m := perfmodel.New(resources.DefaultTestbed())
	scenario.FastConfig(m)
	g := scenario.NewGenerator(m, *seed)

	var pred core.QoSPredictor
	var scheduler sched.Scheduler
	needTraining := true
	switch *schedName {
	case "gsight":
		pred = core.NewPredictor(core.Config{Seed: *seed})
		scheduler = sched.NewGsight(pred)
	case "bestfit":
		pred = baselines.NewPythia(*seed)
		scheduler = sched.NewBestFit(pred)
	case "worstfit":
		scheduler = sched.NewWorstFit()
		needTraining = false
	default:
		log.Fatalf("unknown scheduler %q", *schedName)
	}
	if in, ok := scheduler.(interface{ Instrument(*telemetry.Sink) }); ok {
		in.Instrument(sink)
	}
	if in, ok := pred.(interface{ Instrument(*telemetry.Sink) }); ok {
		in.Instrument(sink)
	}

	if needTraining {
		log.Infof("bootstrapping %s's predictor on %d scenarios...", scheduler.Name(), *trainScen)
		t0 := time.Now()
		var ipcObs, jctObs []core.Observation
		for i := 0; i < *trainScen; i++ {
			sc := g.Colocation(core.LSSC, 2+g.Rand().Intn(2))
			samples, err := g.Label(sc)
			if err != nil {
				log.Fatalf("labeling: %v", err)
			}
			for _, s := range samples {
				o := core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label}
				switch s.Kind {
				case core.IPCQoS:
					ipcObs = append(ipcObs, o)
				case core.JCTQoS:
					jctObs = append(jctObs, o)
				}
			}
		}
		if err := pred.TrainObservations(core.IPCQoS, ipcObs); err != nil {
			log.Fatalf("training: %v", err)
		}
		if len(jctObs) > 0 {
			if err := pred.TrainObservations(core.JCTQoS, jctObs); err != nil {
				log.Fatalf("training: %v", err)
			}
		}
		log.Infof("trained in %v", time.Since(t0).Round(time.Millisecond))
	}

	var services []platform.LSService
	for i, w := range []*workload.Workload{
		workload.SocialNetwork(), workload.ECommerce(), workload.MLServing(),
	} {
		curve := sched.BuildCurve(m, w, 250, *seed+uint64(i))
		minIPC, _ := curve.MinIPCFor(w.SLAp99Ms)
		p := trace.DefaultPattern(w.MaxQPS * 0.6)
		p.PhaseShift = float64(i) * 7200
		services = append(services, platform.LSService{W: w, Pattern: p, SLA: sched.SLA{MinIPC: minIPC}})
	}

	log.Infof("running %.0fh trace-driven simulation under %s...", *hours, scheduler.Name())
	t0 := time.Now()
	st, err := platform.Run(platform.Config{
		Model:     perfmodel.New(m.Testbed),
		Scheduler: scheduler,
		Services:  services,
		SCPool: []*workload.Workload{
			workload.MatMul(), workload.DD(), workload.Iperf(),
			workload.VideoProcessing(), workload.FloatOp(),
			workload.FeatureGeneration(), workload.DataPipeline(),
			workload.IoTCollector(), workload.Monitor(),
		},
		SCMeanIntervalS: 150,
		DurationS:       *hours * 3600,
		StepS:           30,
		Seed:            *seed,
		Telemetry:       sink,
	})
	if err != nil {
		log.Fatalf("simulation: %v", err)
	}
	log.Infof("simulated in %v (%d steps)", time.Since(t0).Round(time.Millisecond), st.Steps)

	fmt.Printf("function density (inst/core): mean %.3f, p50 %.3f, p90 %.3f\n",
		stats.Mean(st.Density), stats.Median(st.Density), stats.Percentile(st.Density, 90))
	fmt.Printf("CPU utilization:              mean %.3f, p50 %.3f, p90 %.3f\n",
		stats.Mean(st.CPUUtil), stats.Median(st.CPUUtil), stats.Percentile(st.CPUUtil, 90))
	fmt.Printf("memory utilization:           mean %.3f, p50 %.3f, p90 %.3f\n",
		stats.Mean(st.MemUtil), stats.Median(st.MemUtil), stats.Percentile(st.MemUtil, 90))
	fmt.Println()
	var names []string
	for n := range st.SLAOK {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("SLA guarantee %-16s %.2f%% of the time\n", n+":", 100*st.SLARatio(n))
	}
	fmt.Printf("\ncold starts %d, reactive migrations %d, scale-out reschedules %d, jobs rejected %d\n",
		st.ColdStarts, st.Migrations, st.Reschedules, st.RejectedJobs)
	fmt.Printf("scheduling wall-clock: %v over %d placements\n",
		st.SchedulingTime.Round(time.Millisecond), st.Placements)
	totalJobs := 0
	for _, jcts := range st.JCTs {
		totalJobs += len(jcts)
	}
	fmt.Printf("batch jobs completed: %d\n", totalJobs)

	if *reportPath != "" {
		rep := sink.Report("gsight-sim",
			map[string]interface{}{
				"scheduler": scheduler.Name(),
				"hours":     *hours,
				"train":     *trainScen,
				"seed":      *seed,
			},
			map[string]interface{}{
				"steps":          st.Steps,
				"mean_density":   stats.Mean(st.Density),
				"mean_cpu_util":  stats.Mean(st.CPUUtil),
				"cold_starts":    st.ColdStarts,
				"migrations":     st.Migrations,
				"reschedules":    st.Reschedules,
				"rejected_jobs":  st.RejectedJobs,
				"placements":     st.Placements,
				"jobs_completed": totalJobs,
			})
		if err := telemetry.WriteRunReport(*reportPath, rep); err != nil {
			log.Fatalf("run report: %v", err)
		}
		log.Infof("run report written to %s", *reportPath)
	}
}
