// Command gsight-sim runs the trace-driven serverless platform
// simulation under a chosen scheduler and prints density, utilization
// and SLA statistics — the §6.3 case study as a tool.
//
// Usage:
//
//	gsight-sim [-scheduler gsight|bestfit|worstfit] [-hours 24]
//	           [-train 800] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"gsight/internal/baselines"
	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/platform"
	"gsight/internal/resources"
	"gsight/internal/scenario"
	"gsight/internal/sched"
	"gsight/internal/stats"
	"gsight/internal/trace"
	"gsight/internal/workload"
)

func main() {
	schedName := flag.String("scheduler", "gsight", "gsight, bestfit (Pythia), worstfit")
	hours := flag.Float64("hours", 24, "simulated duration")
	trainScen := flag.Int("train", 800, "bootstrap scenarios for the predictor")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	m := perfmodel.New(resources.DefaultTestbed())
	scenario.FastConfig(m)
	g := scenario.NewGenerator(m, *seed)

	var pred core.QoSPredictor
	var scheduler sched.Scheduler
	needTraining := true
	switch *schedName {
	case "gsight":
		pred = core.NewPredictor(core.Config{Seed: *seed})
		scheduler = sched.NewGsight(pred)
	case "bestfit":
		pred = baselines.NewPythia(*seed)
		scheduler = sched.NewBestFit(pred)
	case "worstfit":
		scheduler = sched.NewWorstFit()
		needTraining = false
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *schedName)
		os.Exit(1)
	}

	if needTraining {
		fmt.Printf("bootstrapping %s's predictor on %d scenarios...\n", scheduler.Name(), *trainScen)
		t0 := time.Now()
		var ipcObs, jctObs []core.Observation
		for i := 0; i < *trainScen; i++ {
			sc := g.Colocation(core.LSSC, 2+g.Rand().Intn(2))
			samples, err := g.Label(sc)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, s := range samples {
				o := core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label}
				switch s.Kind {
				case core.IPCQoS:
					ipcObs = append(ipcObs, o)
				case core.JCTQoS:
					jctObs = append(jctObs, o)
				}
			}
		}
		if err := pred.TrainObservations(core.IPCQoS, ipcObs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(jctObs) > 0 {
			if err := pred.TrainObservations(core.JCTQoS, jctObs); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("trained in %v\n", time.Since(t0).Round(time.Millisecond))
	}

	var services []platform.LSService
	for i, w := range []*workload.Workload{
		workload.SocialNetwork(), workload.ECommerce(), workload.MLServing(),
	} {
		curve := sched.BuildCurve(m, w, 250, *seed+uint64(i))
		minIPC, _ := curve.MinIPCFor(w.SLAp99Ms)
		p := trace.DefaultPattern(w.MaxQPS * 0.6)
		p.PhaseShift = float64(i) * 7200
		services = append(services, platform.LSService{W: w, Pattern: p, SLA: sched.SLA{MinIPC: minIPC}})
	}

	fmt.Printf("running %.0fh trace-driven simulation under %s...\n", *hours, scheduler.Name())
	t0 := time.Now()
	st, err := platform.Run(platform.Config{
		Model:     perfmodel.New(m.Testbed),
		Scheduler: scheduler,
		Services:  services,
		SCPool: []*workload.Workload{
			workload.MatMul(), workload.DD(), workload.Iperf(),
			workload.VideoProcessing(), workload.FloatOp(),
			workload.FeatureGeneration(), workload.DataPipeline(),
			workload.IoTCollector(), workload.Monitor(),
		},
		SCMeanIntervalS: 150,
		DurationS:       *hours * 3600,
		StepS:           30,
		Seed:            *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("simulated in %v (%d steps)\n\n", time.Since(t0).Round(time.Millisecond), st.Steps)

	fmt.Printf("function density (inst/core): mean %.3f, p50 %.3f, p90 %.3f\n",
		stats.Mean(st.Density), stats.Median(st.Density), stats.Percentile(st.Density, 90))
	fmt.Printf("CPU utilization:              mean %.3f, p50 %.3f, p90 %.3f\n",
		stats.Mean(st.CPUUtil), stats.Median(st.CPUUtil), stats.Percentile(st.CPUUtil, 90))
	fmt.Printf("memory utilization:           mean %.3f, p50 %.3f, p90 %.3f\n",
		stats.Mean(st.MemUtil), stats.Median(st.MemUtil), stats.Percentile(st.MemUtil, 90))
	fmt.Println()
	var names []string
	for n := range st.SLAOK {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("SLA guarantee %-16s %.2f%% of the time\n", n+":", 100*st.SLARatio(n))
	}
	fmt.Printf("\ncold starts %d, reactive migrations %d, scale-out reschedules %d, jobs rejected %d\n",
		st.ColdStarts, st.Migrations, st.Reschedules, st.RejectedJobs)
	fmt.Printf("scheduling wall-clock: %v over %d placements\n",
		st.SchedulingTime.Round(time.Millisecond), st.Placements)
	total := 0
	for _, jcts := range st.JCTs {
		total += len(jcts)
	}
	fmt.Printf("batch jobs completed: %d\n", total)
}
