// Command gsight-train generates a labeled colocation dataset on the
// simulated testbed, trains a chosen predictor incrementally, and
// reports its error curve — the paper's Figure 10 pipeline as a tool.
// Progress goes to stderr; the error curve on stdout stays pipeable.
//
// Usage:
//
//	gsight-train [-model irfr|iknn|ilr|isvr|imlp|pythia|esp]
//	             [-colocation lssc|lsls|scsc] [-qos ipc|p99|jct]
//	             [-scenarios 1000] [-seed 42] [-v|-quiet]
//	             [-save model.ckpt] [-load model.ckpt]
//	             [-debug-addr :6060] [-report run.json] [-decision-log run.jsonl]
//
// -save writes the trained predictor's full online-learning state to a
// checksummed checkpoint file; -load restores one (the predictor must
// be the same model and configuration) and continues training
// incrementally on the newly labeled data instead of fitting from
// scratch. Only checkpointable models (irfr) support either.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"gsight/internal/baselines"
	"gsight/internal/core"
	"gsight/internal/logx"
	"gsight/internal/perfmodel"
	"gsight/internal/persist"
	"gsight/internal/resources"
	"gsight/internal/scenario"
	"gsight/internal/telemetry"
)

func main() {
	model := flag.String("model", "irfr", "predictor: irfr, iknn, ilr, isvr, imlp, pythia, esp")
	colo := flag.String("colocation", "lssc", "colocation kind: lsls, lssc, scsc")
	qosName := flag.String("qos", "ipc", "QoS target: ipc, p99, jct")
	scenarios := flag.Int("scenarios", 1000, "number of colocation scenarios to label")
	seed := flag.Uint64("seed", 42, "seed")
	savePath := flag.String("save", "", "write the trained predictor's checkpoint to this file")
	loadPath := flag.String("load", "", "restore a predictor checkpoint before training")
	verbose := flag.Bool("v", false, "verbose progress")
	quiet := flag.Bool("quiet", false, "errors only")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	reportPath := flag.String("report", "", "write a JSON run report to this file")
	decisionPath := flag.String("decision-log", "", "write the JSONL decision log to this file")
	flag.Parse()

	log := logx.Default(*verbose, *quiet)

	sink := telemetry.New()
	if *decisionPath != "" {
		f, err := os.Create(*decisionPath)
		if err != nil {
			log.Fatalf("decision log: %v", err)
		}
		bw := bufio.NewWriter(f)
		defer func() {
			bw.Flush()
			f.Close()
		}()
		sink.WithDecisions(bw)
	}
	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr, sink.Registry)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		log.Infof("debug server on http://%s (metrics, expvar, pprof)", addr)
	}

	kinds := map[string]core.ColocationKind{"lsls": core.LSLS, "lssc": core.LSSC, "scsc": core.SCSC}
	colocation, ok := kinds[*colo]
	if !ok {
		log.Fatalf("unknown colocation %q", *colo)
	}
	qosKinds := map[string]core.QoSKind{"ipc": core.IPCQoS, "p99": core.TailLatencyQoS, "jct": core.JCTQoS}
	qos, ok := qosKinds[*qosName]
	if !ok {
		log.Fatalf("unknown qos %q", *qosName)
	}
	var pred core.QoSPredictor
	switch *model {
	case "irfr":
		pred = core.NewPredictor(core.Config{Seed: *seed})
	case "iknn":
		pred = baselines.NewGsightVariant("Gsight-IKNN", baselines.IKNNFactory, *seed)
	case "ilr":
		pred = baselines.NewGsightVariant("Gsight-ILR", baselines.ILRFactory, *seed)
	case "isvr":
		pred = baselines.NewGsightVariant("Gsight-ISVR", baselines.ISVRFactory, *seed)
	case "imlp":
		pred = baselines.NewGsightVariant("Gsight-IMLP", baselines.IMLPFactory, *seed)
	case "pythia":
		pred = baselines.NewPythia(*seed)
	case "esp":
		pred = baselines.NewESP(*seed)
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if in, ok := pred.(interface{ Instrument(*telemetry.Sink) }); ok {
		in.Instrument(sink)
	}

	ckpt, checkpointable := pred.(core.Checkpointable)
	if (*savePath != "" || *loadPath != "") && !checkpointable {
		log.Fatalf("model %q does not support checkpoints (-save/-load need irfr)", pred.Name())
	}
	loaded := false
	if *loadPath != "" {
		data, err := os.ReadFile(*loadPath)
		if err != nil {
			log.Fatalf("load checkpoint: %v", err)
		}
		_, payload, err := persist.DecodeSnapshot(data)
		if err != nil {
			log.Fatalf("load checkpoint %s: %v", *loadPath, err)
		}
		if err := ckpt.RestoreCheckpoint(payload); err != nil {
			log.Fatalf("load checkpoint %s: %v", *loadPath, err)
		}
		loaded = true
		log.Infof("restored predictor state from %s", *loadPath)
	}

	m := perfmodel.New(resources.DefaultTestbed())
	scenario.FastConfig(m)
	g := scenario.NewGenerator(m, *seed)

	log.Infof("generating %d %s scenarios on the simulated testbed...", *scenarios, colocation)
	t0 := time.Now()
	var obs []core.Observation
	for i := 0; i < *scenarios; i++ {
		k := 2 + g.Rand().Intn(2)
		sc := g.Colocation(colocation, k)
		samples, err := g.Label(sc)
		if err != nil {
			log.Fatalf("labeling: %v", err)
		}
		for _, s := range samples {
			if s.Kind == qos {
				obs = append(obs, core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label})
			}
		}
	}
	log.Infof("labeled %d observations in %v", len(obs), time.Since(t0).Round(time.Millisecond))

	var train, test []core.Observation
	for i, o := range obs {
		if (i+1)%5 == 0 {
			test = append(test, o)
		} else {
			train = append(train, o)
		}
	}

	// Incremental training in quarters, reporting the error trajectory.
	log.Infof("training %s incrementally (%d train, %d test)", pred.Name(), len(train), len(test))
	const stages = 4
	finalErr := 0.0
	for s := 0; s < stages; s++ {
		lo, hi := s*len(train)/stages, (s+1)*len(train)/stages
		t0 = time.Now()
		// A restored predictor keeps learning incrementally: a batch Fit
		// would discard the loaded state.
		if s == 0 && !loaded {
			if err := pred.TrainObservations(qos, train[lo:hi]); err != nil {
				log.Fatalf("train: %v", err)
			}
		} else {
			for _, o := range train[lo:hi] {
				if err := pred.Observe(qos, o.Target, o.Inputs, o.Label); err != nil {
					log.Fatalf("observe: %v", err)
				}
			}
			if err := pred.Flush(qos); err != nil {
				log.Fatalf("flush: %v", err)
			}
		}
		trainDur := time.Since(t0)
		sum, n := 0.0, 0
		for _, o := range test {
			if o.Label == 0 {
				continue
			}
			got, err := pred.Predict(qos, o.Target, o.Inputs)
			if err != nil {
				log.Fatalf("predict: %v", err)
			}
			e := (got - o.Label) / o.Label
			if e < 0 {
				e = -e
			}
			sum += e
			n++
		}
		finalErr = 100 * sum / float64(n)
		fmt.Printf("  after %4d samples: error %.2f%% (stage took %v)\n",
			hi, finalErr, trainDur.Round(time.Millisecond))
	}

	if *savePath != "" {
		raw, err := ckpt.CheckpointState()
		if err != nil {
			log.Fatalf("save checkpoint: %v", err)
		}
		data, err := persist.EncodeSnapshot(1, raw)
		if err != nil {
			log.Fatalf("save checkpoint: %v", err)
		}
		if err := persist.WriteFileAtomic(*savePath, data, 0o644); err != nil {
			log.Fatalf("save checkpoint %s: %v", *savePath, err)
		}
		log.Infof("predictor checkpoint written to %s", *savePath)
	}

	if *reportPath != "" {
		rep := sink.Report("gsight-train",
			map[string]interface{}{
				"model":      pred.Name(),
				"colocation": *colo,
				"qos":        *qosName,
				"scenarios":  *scenarios,
				"seed":       *seed,
			},
			map[string]interface{}{
				"observations":        len(obs),
				"train_samples":       len(train),
				"test_samples":        len(test),
				"final_error_percent": finalErr,
			})
		if err := telemetry.WriteRunReport(*reportPath, rep); err != nil {
			log.Fatalf("run report: %v", err)
		}
		log.Infof("run report written to %s", *reportPath)
	}
}
