// Command gsight-train generates a labeled colocation dataset on the
// simulated testbed, trains a chosen predictor incrementally, and
// reports its error curve — the paper's Figure 10 pipeline as a tool.
//
// Usage:
//
//	gsight-train [-model irfr|iknn|ilr|isvr|imlp|pythia|esp]
//	             [-colocation lssc|lsls|scsc] [-qos ipc|p99|jct]
//	             [-scenarios 1000] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gsight/internal/baselines"
	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/resources"
	"gsight/internal/scenario"
)

func main() {
	model := flag.String("model", "irfr", "predictor: irfr, iknn, ilr, isvr, imlp, pythia, esp")
	colo := flag.String("colocation", "lssc", "colocation kind: lsls, lssc, scsc")
	qosName := flag.String("qos", "ipc", "QoS target: ipc, p99, jct")
	scenarios := flag.Int("scenarios", 1000, "number of colocation scenarios to label")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	kinds := map[string]core.ColocationKind{"lsls": core.LSLS, "lssc": core.LSSC, "scsc": core.SCSC}
	colocation, ok := kinds[*colo]
	if !ok {
		fatal("unknown colocation %q", *colo)
	}
	qosKinds := map[string]core.QoSKind{"ipc": core.IPCQoS, "p99": core.TailLatencyQoS, "jct": core.JCTQoS}
	qos, ok := qosKinds[*qosName]
	if !ok {
		fatal("unknown qos %q", *qosName)
	}
	var pred core.QoSPredictor
	switch *model {
	case "irfr":
		pred = core.NewPredictor(core.Config{Seed: *seed})
	case "iknn":
		pred = baselines.NewGsightVariant("Gsight-IKNN", baselines.IKNNFactory, *seed)
	case "ilr":
		pred = baselines.NewGsightVariant("Gsight-ILR", baselines.ILRFactory, *seed)
	case "isvr":
		pred = baselines.NewGsightVariant("Gsight-ISVR", baselines.ISVRFactory, *seed)
	case "imlp":
		pred = baselines.NewGsightVariant("Gsight-IMLP", baselines.IMLPFactory, *seed)
	case "pythia":
		pred = baselines.NewPythia(*seed)
	case "esp":
		pred = baselines.NewESP(*seed)
	default:
		fatal("unknown model %q", *model)
	}

	m := perfmodel.New(resources.DefaultTestbed())
	scenario.FastConfig(m)
	g := scenario.NewGenerator(m, *seed)

	fmt.Printf("generating %d %s scenarios on the simulated testbed...\n", *scenarios, colocation)
	t0 := time.Now()
	var obs []core.Observation
	for i := 0; i < *scenarios; i++ {
		k := 2 + g.Rand().Intn(2)
		sc := g.Colocation(colocation, k)
		samples, err := g.Label(sc)
		if err != nil {
			fatal("labeling: %v", err)
		}
		for _, s := range samples {
			if s.Kind == qos {
				obs = append(obs, core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label})
			}
		}
	}
	fmt.Printf("labeled %d observations in %v\n", len(obs), time.Since(t0).Round(time.Millisecond))

	var train, test []core.Observation
	for i, o := range obs {
		if (i+1)%5 == 0 {
			test = append(test, o)
		} else {
			train = append(train, o)
		}
	}

	// Incremental training in quarters, reporting the error trajectory.
	fmt.Printf("training %s incrementally (%d train, %d test)\n", pred.Name(), len(train), len(test))
	const stages = 4
	for s := 0; s < stages; s++ {
		lo, hi := s*len(train)/stages, (s+1)*len(train)/stages
		t0 = time.Now()
		if s == 0 {
			if err := pred.TrainObservations(qos, train[lo:hi]); err != nil {
				fatal("train: %v", err)
			}
		} else {
			for _, o := range train[lo:hi] {
				if err := pred.Observe(qos, o.Target, o.Inputs, o.Label); err != nil {
					fatal("observe: %v", err)
				}
			}
			if err := pred.Flush(qos); err != nil {
				fatal("flush: %v", err)
			}
		}
		trainDur := time.Since(t0)
		sum, n := 0.0, 0
		for _, o := range test {
			if o.Label == 0 {
				continue
			}
			got, err := pred.Predict(qos, o.Target, o.Inputs)
			if err != nil {
				fatal("predict: %v", err)
			}
			e := (got - o.Label) / o.Label
			if e < 0 {
				e = -e
			}
			sum += e
			n++
		}
		fmt.Printf("  after %4d samples: error %.2f%% (stage took %v)\n",
			hi, 100*sum/float64(n), trainDur.Round(time.Millisecond))
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
