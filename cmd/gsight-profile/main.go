// Command gsight-profile runs the solo-run profiler over a catalog
// workload and prints its per-function 16-metric table — what the
// paper's perf/pqos collector would report (§3.2).
//
// Usage:
//
//	gsight-profile [-workload social-network] [-all]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gsight/internal/logx"
	"gsight/internal/metrics"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/telemetry"
	"gsight/internal/workload"
)

func main() {
	name := flag.String("workload", "social-network", "catalog workload to profile")
	all := flag.Bool("all", false, "profile every catalog workload")
	verbose := flag.Bool("v", false, "verbose progress")
	quiet := flag.Bool("quiet", false, "errors only")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address")
	flag.Parse()

	log := logx.Default(*verbose, *quiet)
	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr, nil)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		log.Infof("debug server on http://%s (expvar, pprof)", addr)
	}

	cat := workload.Catalog()
	var names []string
	if *all {
		for n := range cat {
			names = append(names, n)
		}
		sort.Strings(names)
	} else {
		if _, ok := cat[*name]; !ok {
			for n := range cat {
				fmt.Fprintf(os.Stderr, "  %s\n", n)
			}
			log.Fatalf("unknown workload %q (available listed above)", *name)
		}
		names = []string{*name}
	}

	spec := resources.DefaultServerSpec("profiler")
	for _, n := range names {
		w := cat[n]
		fmt.Printf("== %s (%s", w.Name, w.Class)
		if w.Class == workload.LS {
			fmt.Printf(", SLA p99 %.0f ms, max %.0f qps", w.SLAp99Ms, w.MaxQPS)
		} else {
			fmt.Printf(", solo %.0f s x %d instances", w.SoloDurationS, w.Instances)
		}
		fmt.Println(") ==")
		ps := profile.WorkloadProfiles(w, spec, nil)
		fmt.Printf("%-22s", "metric")
		for _, p := range ps {
			fmt.Printf("  %12s", trunc(p.Function, 12))
		}
		fmt.Println()
		for _, id := range metrics.Selected() {
			fmt.Printf("%-22s", id)
			for _, p := range ps {
				fmt.Printf("  %12.3f", p.Metrics[id])
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
