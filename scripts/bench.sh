#!/usr/bin/env sh
# bench.sh — run the §6.4 operational micro-benchmarks with -benchmem
# and record ns/op + allocs/op in BENCH_gsight.json so the performance
# trajectory is tracked across PRs.
#
# Usage: scripts/bench.sh [benchtime] [out.json]
#   benchtime  go test -benchtime value (default 200x: fixed iteration
#              count keeps incremental-update window growth bounded)
#   out.json   output path (default BENCH_gsight.json in the repo root)
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-200x}"
OUT="${2:-BENCH_gsight.json}"

BENCHES='BenchmarkInference$|BenchmarkInferenceBatch$|BenchmarkIncrementalUpdate$|BenchmarkEncode$|BenchmarkForestTraining$|BenchmarkBinarySearchScheduling$|BenchmarkSchedulingInstrumented$|BenchmarkFaultyPlatform$'

RAW="$(go test -run '^$' -bench "$BENCHES" -benchmem -benchtime "$BENCHTIME" .)"
echo "$RAW"

echo "$RAW" | awk -v benchtime="$BENCHTIME" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)         # strip -GOMAXPROCS suffix
    ns[name] = $3
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")     bytes[name]  = $(i - 1)
        if ($(i) == "allocs/op") allocs[name] = $(i - 1)
    }
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, ns[name], bytes[name], allocs[name], (i < n ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' > "$OUT"

echo "wrote $OUT"
