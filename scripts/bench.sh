#!/usr/bin/env sh
# bench.sh — run the §6.4 operational micro-benchmarks with -benchmem
# and append a dated entry to the BENCH_gsight.json history, so the
# performance trajectory accumulates across PRs instead of each run
# overwriting the last.
#
# Usage: scripts/bench.sh [benchtime] [out.json] [label]
#   benchtime  go test -benchtime value (default 200x: fixed iteration
#              count keeps incremental-update window growth bounded)
#   out.json   history path (default BENCH_gsight.json in the repo root)
#   label      optional label recorded on the new history entry
#
#        scripts/bench.sh check [out.json]
#   Alloc-regression smoke gate (run from `make check`): re-measures
#   the low-alloc benchmarks at a reduced iteration count and fails if
#   any of them allocates more per op than the latest history entry
#   recorded. ns/op is deliberately not gated — it needs a quiet
#   machine — but allocs/op is deterministic and catches
#   escape-analysis regressions the test suite cannot see.
set -eu

cd "$(dirname "$0")/.."

BENCHES='BenchmarkInference$|BenchmarkInferenceBatch$|BenchmarkIncrementalUpdate$|BenchmarkEncode$|BenchmarkForestTraining$|BenchmarkForestTrainingParallel$|BenchmarkBinarySearchScheduling$|BenchmarkSchedulingInstrumented$|BenchmarkShardedScheduling$|BenchmarkShardedPlacement$|BenchmarkTwoTierPlacement$|BenchmarkFaultyPlatform$|BenchmarkTracedPlatform$|BenchmarkEngineStep$|BenchmarkPlatformStep$|BenchmarkServePlacement$'
ML_BENCHES='BenchmarkWindowAbsorb$'
PERSIST_BENCHES='BenchmarkCheckpointSnapshot$|BenchmarkWALAppend$|BenchmarkWALAppendGroup$|BenchmarkWALAppendSyncEach$'

if [ "${1:-}" = "check" ]; then
    OUT="${2:-BENCH_gsight.json}"
    # The low-alloc subset: steady-state alloc-free (or near-free)
    # paths whose budgets the history pins. 50 iterations amortize
    # one-time pool warm-up below the integer allocs/op truncation.
    # BenchmarkTwoTierPlacement's K=∞ rows allocate past lowAllocMax
    # (the legacy ladder), so the gate automatically pins only the
    # pruned rows' 1 alloc/op.
    SMOKE='BenchmarkInference$|BenchmarkInferenceBatch$|BenchmarkEncode$|BenchmarkBinarySearchScheduling$|BenchmarkSchedulingInstrumented$|BenchmarkShardedScheduling$|BenchmarkTwoTierPlacement$|BenchmarkEngineStep$'
    RAW="$(go test -run '^$' -bench "$SMOKE" -benchmem -benchtime 50x .)
$(go test -run '^$' -bench "$ML_BENCHES" -benchmem -benchtime 50x ./internal/ml)"
    echo "$RAW"
    echo "$RAW" | go run ./scripts/benchhist -out "$OUT" -check
    exit 0
fi

BENCHTIME="${1:-200x}"
OUT="${2:-BENCH_gsight.json}"
LABEL="${3:-}"

RAW="$(go test -run '^$' -bench "$BENCHES" -benchmem -benchtime "$BENCHTIME" .)
$(go test -run '^$' -bench "$ML_BENCHES" -benchmem -benchtime "$BENCHTIME" ./internal/ml)
$(go test -run '^$' -bench "$PERSIST_BENCHES" -benchmem -benchtime "$BENCHTIME" ./internal/persist)"
echo "$RAW"

echo "$RAW" | go run ./scripts/benchhist \
    -out "$OUT" -date "$(date +%F)" -benchtime "$BENCHTIME" -label "$LABEL"
