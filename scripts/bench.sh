#!/usr/bin/env sh
# bench.sh — run the §6.4 operational micro-benchmarks with -benchmem
# and append a dated entry to the BENCH_gsight.json history, so the
# performance trajectory accumulates across PRs instead of each run
# overwriting the last.
#
# Usage: scripts/bench.sh [benchtime] [out.json] [label]
#   benchtime  go test -benchtime value (default 200x: fixed iteration
#              count keeps incremental-update window growth bounded)
#   out.json   history path (default BENCH_gsight.json in the repo root)
#   label      optional label recorded on the new history entry
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-200x}"
OUT="${2:-BENCH_gsight.json}"
LABEL="${3:-}"

BENCHES='BenchmarkInference$|BenchmarkInferenceBatch$|BenchmarkIncrementalUpdate$|BenchmarkEncode$|BenchmarkForestTraining$|BenchmarkForestTrainingParallel$|BenchmarkBinarySearchScheduling$|BenchmarkSchedulingInstrumented$|BenchmarkFaultyPlatform$'
ML_BENCHES='BenchmarkWindowAbsorb$'
PERSIST_BENCHES='BenchmarkCheckpointSnapshot$|BenchmarkWALAppend$'

RAW="$(go test -run '^$' -bench "$BENCHES" -benchmem -benchtime "$BENCHTIME" .)
$(go test -run '^$' -bench "$ML_BENCHES" -benchmem -benchtime "$BENCHTIME" ./internal/ml)
$(go test -run '^$' -bench "$PERSIST_BENCHES" -benchmem -benchtime "$BENCHTIME" ./internal/persist)"
echo "$RAW"

echo "$RAW" | go run ./scripts/benchhist \
    -out "$OUT" -date "$(date +%F)" -benchtime "$BENCHTIME" -label "$LABEL"
