#!/usr/bin/env sh
# servecheck.sh — SIGKILL-under-load failover gate for gsight-serve.
#
# Runs the same ordered placement load twice: once against a single
# uninterrupted daemon, once against an active/standby pair sharing a
# data dir where the active is SIGKILLed mid-load and the standby takes
# over through the lease. The merged decision log of the crashed run
# must be byte-identical to the uninterrupted run's — every
# acknowledged placement survives the kill (WAL fsync before ack) and
# the takeover resumes the exact decision stream (DESIGN.md §16).
#
# Usage: scripts/servecheck.sh [requests] [seed]
set -eu

cd "$(dirname "$0")/.."
REQUESTS="${1:-200}"
SEED="${2:-7}"

WORK="$(mktemp -d)"
cleanup() {
    [ -z "${ACTIVE_PID:-}" ] || kill -9 "$ACTIVE_PID" 2>/dev/null || true
    [ -z "${STANDBY_PID:-}" ] || kill -9 "$STANDBY_PID" 2>/dev/null || true
    [ -z "${REF_PID:-}" ] || kill -9 "$REF_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/gsight-serve" ./cmd/gsight-serve
go build -o "$WORK/gsight-loadgen" ./cmd/gsight-loadgen

REF_ADDR=127.0.0.1:7461
ACT_ADDR=127.0.0.1:7462
STB_ADDR=127.0.0.1:7463
MIX='matmul,social-network,dd,e-commerce,kmeans'
SERVE_FLAGS="-seed $SEED -train 4 -placers 2 -snapshot-every 64 -lease-ttl 500ms"
LOAD_FLAGS="-n $REQUESTS -warmup 0 -seed 11 -mix $MIX -ordered -release 0 -observe 0 -workers 8"

wait_exit() { # pid timeout_s
    i=0
    while kill -0 "$1" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -lt $(( $2 * 10 )) ] || return 1
        sleep 0.1
    done
    return 0
}

wait_log() { # file pattern timeout_s
    i=0
    while ! grep -q "$2" "$1" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -lt $(( $3 * 10 )) ] || return 1
        sleep 0.1
    done
    return 0
}

echo "servecheck: reference run (uninterrupted)..."
"$WORK/gsight-serve" -data "$WORK/ref" -addr "$REF_ADDR" $SERVE_FLAGS \
    > "$WORK/ref.log" 2>&1 &
REF_PID=$!
"$WORK/gsight-loadgen" -addr "http://$REF_ADDR" $LOAD_FLAGS > "$WORK/ref-load.out"
kill -TERM "$REF_PID"
wait_exit "$REF_PID" 30 || { echo "servecheck: FAIL (reference daemon did not drain)" >&2; exit 1; }
REF_PID=

echo "servecheck: crash run (active + standby, SIGKILL mid-load)..."
"$WORK/gsight-serve" -data "$WORK/crash" -addr "$ACT_ADDR" $SERVE_FLAGS \
    > "$WORK/active.log" 2>&1 &
ACTIVE_PID=$!
# The active must hold the lease before the standby starts, or the
# standby wins the initial acquisition and the roles invert.
wait_log "$WORK/active.log" 'listening on' 30 || {
    echo "servecheck: FAIL (active never came up)" >&2
    cat "$WORK/active.log" >&2
    exit 1
}
"$WORK/gsight-serve" -data "$WORK/crash" -addr "$STB_ADDR" -standby $SERVE_FLAGS \
    > "$WORK/standby.log" 2>&1 &
STANDBY_PID=$!

# Kill the active once the decision log shows real progress.
(
    i=0
    while [ "$i" -lt 600 ]; do
        if [ -f "$WORK/crash/decisions.jsonl" ]; then
            sz=$(wc -c < "$WORK/crash/decisions.jsonl")
        else
            sz=0
        fi
        if [ "$sz" -gt 3000 ]; then
            kill -9 "$ACTIVE_PID"
            exit 0
        fi
        i=$((i + 1))
        sleep 0.05
    done
) &
KILLER_PID=$!

"$WORK/gsight-loadgen" -addr "http://$ACT_ADDR,http://$STB_ADDR" $LOAD_FLAGS \
    > "$WORK/crash-load.out" || {
        echo "servecheck: FAIL (load generator errored during failover)" >&2
        cat "$WORK/crash-load.out" "$WORK/active.log" "$WORK/standby.log" >&2
        exit 1
    }
wait "$KILLER_PID" || { echo "servecheck: FAIL (active was never killed — load too small?)" >&2; exit 1; }
ACTIVE_PID=

grep -q 'lease acquired' "$WORK/standby.log" || {
    echo "servecheck: FAIL (standby never took over)" >&2
    cat "$WORK/standby.log" >&2
    exit 1
}
kill -TERM "$STANDBY_PID"
wait_exit "$STANDBY_PID" 30 || { echo "servecheck: FAIL (standby did not drain)" >&2; exit 1; }
STANDBY_PID=

if ! cmp -s "$WORK/ref/decisions.jsonl" "$WORK/crash/decisions.jsonl"; then
    echo "servecheck: FAIL (decision logs differ after SIGKILL takeover)" >&2
    cmp "$WORK/ref/decisions.jsonl" "$WORK/crash/decisions.jsonl" >&2 || true
    diff "$WORK/ref/decisions.jsonl" "$WORK/crash/decisions.jsonl" | head -8 >&2 || true
    exit 1
fi
lines=$(wc -l < "$WORK/ref/decisions.jsonl")
echo "servecheck: crash-run load: $(cat "$WORK/crash-load.out")"
echo "servecheck: OK ($lines decisions byte-identical across SIGKILL + takeover)"
