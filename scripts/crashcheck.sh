#!/usr/bin/env sh
# crashcheck.sh — end-to-end kill-and-resume equivalence gate.
#
# Runs gsight-sim twice over the same seeded hour: once uninterrupted,
# once with two injected controller crashes, checkpointing enabled and
# a resume loop (exit code 3 = deliberate crash, rerun with -resume).
# The crashed-and-resumed run must produce a byte-identical decision
# log, lifecycle trace and flight recording (-record bundle), and an
# identical report (wall-clock timing lines filtered) — the repo's
# headline recovery guarantee, checked on the real binary rather than
# in-process test harnesses.
#
# Usage: scripts/crashcheck.sh [hours] [train] [seed] [shards] [topk]
#   shards defaults to 4 so the gate exercises the sharded scheduling
#   state's epoch serialization (DESIGN.md §14), not just the legacy
#   single-shard path. topk defaults to 4 so two-tier placement (the
#   tier-0 score cache and its checkpointed ridge state, DESIGN.md §15)
#   is part of the resume-equivalence guarantee; pass 0 to disable.
set -eu

cd "$(dirname "$0")/.."
HOURS="${1:-1}"
TRAIN="${2:-64}"
SEED="${3:-42}"
SHARDS="${4:-4}"
TOPK="${5:-4}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT INT TERM

go build -o "$WORK/gsight-sim" ./cmd/gsight-sim

cat > "$WORK/crash.json" <<EOF
{"name":"crashcheck","events":[
 {"at_s":1000,"kind":"controller-crash"},
 {"at_s":2600,"kind":"controller-crash"}]}
EOF

common="-hours $HOURS -train $TRAIN -seed $SEED -shards $SHARDS -topk $TOPK -quiet"

echo "crashcheck: baseline run (no faults, no checkpoints)..."
"$WORK/gsight-sim" $common -record "$WORK/rec-base" \
    -decision-log "$WORK/base.jsonl" > "$WORK/base.out"

echo "crashcheck: crashing run (2 controller crashes, 600s snapshots)..."
rc=0
"$WORK/gsight-sim" $common -faults "$WORK/crash.json" \
    -checkpoint-dir "$WORK/ck" -checkpoint-interval 600 \
    -record "$WORK/rec-crash" \
    -decision-log "$WORK/crashed.jsonl" > "$WORK/crashed.out" || rc=$?
tries=1
while [ "$rc" -eq 3 ]; do
    [ "$tries" -lt 10 ] || { echo "crashcheck: FAIL (no convergence after $tries attempts)" >&2; exit 1; }
    tries=$((tries + 1))
    echo "crashcheck: crashed (expected), resuming (attempt $tries)..."
    rc=0
    "$WORK/gsight-sim" $common -faults "$WORK/crash.json" \
        -checkpoint-dir "$WORK/ck" -checkpoint-interval 600 -resume \
        -record "$WORK/rec-crash" \
        -decision-log "$WORK/crashed.jsonl" > "$WORK/crashed.out" || rc=$?
done
[ "$rc" -eq 0 ] || { echo "crashcheck: FAIL (unexpected exit code $rc)" >&2; exit 1; }
[ "$tries" -eq 3 ] || { echo "crashcheck: FAIL (expected 3 incarnations, got $tries)" >&2; exit 1; }

if ! cmp -s "$WORK/base.jsonl" "$WORK/crashed.jsonl"; then
    echo "crashcheck: FAIL (decision logs differ)" >&2
    cmp "$WORK/base.jsonl" "$WORK/crashed.jsonl" >&2 || true
    exit 1
fi
# The observability bundle must also survive the crashes unchanged:
# controller crashes are invisible in every recorded stream.
for f in trace.json flight.bin; do
    if ! cmp -s "$WORK/rec-base/$f" "$WORK/rec-crash/$f"; then
        echo "crashcheck: FAIL ($f differs between baseline and resumed run)" >&2
        cmp "$WORK/rec-base/$f" "$WORK/rec-crash/$f" >&2 || true
        exit 1
    fi
done
# The report is deterministic except for wall-clock timing lines.
grep -v 'wall-clock' "$WORK/base.out" > "$WORK/base.flt"
grep -v 'wall-clock' "$WORK/crashed.out" > "$WORK/crashed.flt"
if ! diff "$WORK/base.flt" "$WORK/crashed.flt" >&2; then
    echo "crashcheck: FAIL (reports differ)" >&2
    exit 1
fi
echo "crashcheck: OK (resumed run byte-identical across $tries incarnations)"
