// Command benchhist appends one dated entry to a benchmark history
// file. It reads `go test -bench` output on stdin — several runs may be
// concatenated — parses the Benchmark lines, and rewrites the JSON
// history in place. Past entries are never overwritten, so the
// performance trajectory across PRs stays reviewable in one file.
//
// A pre-history file (top-level "benchmarks" object) is folded into the
// history as its first entry before the new one is appended.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"
)

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// PlacementsPerSec records the sharded-placement benchmarks'
	// custom throughput metric (b.ReportMetric "placements/s").
	PlacementsPerSec float64 `json:"placements_per_sec,omitempty"`
	// P99Ms records the serving benchmark's tail-latency metric
	// (b.ReportMetric "p99_ms"): placement p99 at 32 concurrent
	// clients against the in-process daemon.
	P99Ms float64 `json:"p99_ms,omitempty"`
}

type entry struct {
	Date       string            `json:"date"`
	Label      string            `json:"label,omitempty"`
	Benchtime  string            `json:"benchtime"`
	Benchmarks map[string]result `json:"benchmarks"`
}

type histFile struct {
	Goos    string  `json:"goos"`
	Goarch  string  `json:"goarch"`
	CPU     string  `json:"cpu"`
	History []entry `json:"history"`
}

// legacy is the flat pre-history layout bench.sh used to overwrite.
type legacy struct {
	Benchtime  string            `json:"benchtime"`
	Goos       string            `json:"goos"`
	Goarch     string            `json:"goarch"`
	CPU        string            `json:"cpu"`
	Benchmarks map[string]result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_gsight.json", "history file to append to")
	date := flag.String("date", "", "entry date (YYYY-MM-DD)")
	benchtime := flag.String("benchtime", "", "go test -benchtime value the entry was run at")
	label := flag.String("label", "", "optional entry label")
	check := flag.Bool("check", false, "compare stdin results against the latest history entry instead of appending: fail if any low-alloc benchmark regressed allocs_per_op")
	flag.Parse()
	if *date == "" && !*check {
		fatal(errors.New("-date is required"))
	}

	e := entry{Date: *date, Label: *label, Benchtime: *benchtime, Benchmarks: map[string]result{}}
	var goos, goarch, cpu string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, r, ok := parseBenchLine(line)
			if ok {
				e.Benchmarks[name] = r
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(e.Benchmarks) == 0 {
		fatal(errors.New("no Benchmark result lines on stdin"))
	}

	h, err := load(*out)
	if err != nil {
		fatal(err)
	}
	if *check {
		if err := checkAllocs(h, e.Benchmarks); err != nil {
			fatal(err)
		}
		return
	}
	if goos != "" {
		h.Goos, h.Goarch, h.CPU = goos, goarch, cpu
	}
	h.History = append(h.History, e)

	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchhist: %s now holds %d entries (%d benchmarks in %s)\n",
		*out, len(h.History), len(e.Benchmarks), *date)
}

// lowAllocMax bounds which benchmarks the -check smoke gate covers:
// only those the latest history entry records at or below this many
// allocs/op. Zero/low-alloc paths are where escape-analysis
// regressions land silently (an interface call heap-promoting a
// caller's buffer shows up as a few allocs/op, invisible in ns/op
// noise); high-alloc benchmarks drift with workload shape and are
// judged by the recorded history instead.
const lowAllocMax = 10

// nsWarnFactor is the ns/op ratio over the recorded history that makes
// -check print a warning. Wall-clock timings need a quiet machine, so
// the warning is advisory (never fails the check) — it flags likely
// regressions for a human to re-measure, it does not gate.
const nsWarnFactor = 1.25

// checkAllocs compares fresh results against the latest history entry
// and errors if any benchmark that was low-alloc regressed its
// allocs/op. Benchmarks absent from either side are skipped — the
// gate guards known-good paths, it does not enforce coverage. ns/op
// drifting past nsWarnFactor prints a non-fatal warning.
func checkAllocs(h *histFile, fresh map[string]result) error {
	if len(h.History) == 0 {
		return errors.New("-check needs an existing history entry to compare against")
	}
	last := h.History[len(h.History)-1]
	var regressions []string
	checked := 0
	for name, old := range last.Benchmarks {
		now, ok := fresh[name]
		if !ok || old.AllocsPerOp > lowAllocMax {
			continue
		}
		checked++
		if now.AllocsPerOp > old.AllocsPerOp {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op, history has %d", name, now.AllocsPerOp, old.AllocsPerOp))
		}
		if old.NsPerOp > 0 && now.NsPerOp > old.NsPerOp*nsWarnFactor {
			fmt.Fprintf(os.Stderr, "benchhist: warning: %s at %.0f ns/op, >%.0f%% over the %.0f ns/op history (advisory — re-measure on a quiet machine)\n",
				name, now.NsPerOp, (nsWarnFactor-1)*100, old.NsPerOp)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("alloc regressions vs %q entry:\n  %s",
			last.Date+" "+last.Label, strings.Join(regressions, "\n  "))
	}
	if checked == 0 {
		return errors.New("-check matched no low-alloc benchmarks; wrong -bench filter?")
	}
	fmt.Printf("benchhist: %d low-alloc benchmarks at or below their recorded allocs/op\n", checked)
	return nil
}

// parseBenchLine extracts "BenchmarkName-8  N  123 ns/op  45 B/op  6 allocs/op".
func parseBenchLine(line string) (string, result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return "", result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip -GOMAXPROCS suffix
		}
	}
	var r result
	seen := false
	for i := 2; i+1 < len(f); i++ {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp, seen = v, true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		case "placements/s":
			r.PlacementsPerSec = v
		case "p99_ms":
			r.P99Ms = v
		}
	}
	return name, r, seen
}

// load reads the history file, converting a legacy flat snapshot into
// the first history entry. A missing file starts an empty history.
func load(path string) (*histFile, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &histFile{}, nil
	}
	if err != nil {
		return nil, err
	}
	var h histFile
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if h.History != nil {
		return &h, nil
	}
	var l legacy
	if err := json.Unmarshal(data, &l); err != nil || len(l.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s is neither a history file nor a legacy snapshot", path)
	}
	return &histFile{
		Goos:   l.Goos,
		Goarch: l.Goarch,
		CPU:    l.CPU,
		History: []entry{{
			Date:       "",
			Label:      "baseline (pre-history snapshot)",
			Benchtime:  l.Benchtime,
			Benchmarks: l.Benchmarks,
		}},
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchhist:", err)
	os.Exit(1)
}
