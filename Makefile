# Development targets. `make check` is the tier-1 gate; `make race`
# covers the goroutine fan-out paths (ml batch prediction, sched batch
# checks, experiment worker pools); `make bench` records the §6.4
# micro-benchmark trajectory in BENCH_gsight.json.

GO ?= go

.PHONY: check race bench build vet vuln test fuzzsmoke crashcheck servecheck benchcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# govulncheck is optional locally (skipped when not installed); CI
# installs it and fails on findings.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

test:
	$(GO) test ./...

# Run every fuzz target over its seed corpus (no random exploration;
# `go test -fuzz` does that — see ci.yml's fuzz job).
fuzzsmoke:
	$(GO) test -run '^Fuzz' ./internal/persist ./internal/faults

# Kill-and-resume equivalence on the real gsight-sim binary: a run
# crashed twice and resumed from checkpoints must reproduce the
# uninterrupted run byte-for-byte.
crashcheck:
	scripts/crashcheck.sh

# SIGKILL-under-load failover on the real gsight-serve binary: the
# active is killed mid-load, the standby takes over through the lease,
# and the merged decision log must match an uninterrupted run
# byte-for-byte.
servecheck:
	scripts/servecheck.sh

# Alloc-regression smoke gate: low-alloc benchmarks must not allocate
# more per op than the latest BENCH_gsight.json entry records.
benchcheck:
	scripts/bench.sh check

check: build vet vuln test fuzzsmoke crashcheck servecheck benchcheck

race:
	$(GO) test -race ./internal/ml ./internal/core ./internal/sched ./internal/experiments ./internal/telemetry ./internal/persist ./internal/serve

bench:
	scripts/bench.sh
