# Development targets. `make check` is the tier-1 gate; `make race`
# covers the goroutine fan-out paths (ml batch prediction, sched batch
# checks, experiment worker pools); `make bench` records the §6.4
# micro-benchmark trajectory in BENCH_gsight.json.

GO ?= go

.PHONY: check race bench build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

race:
	$(GO) test -race ./internal/ml ./internal/core ./internal/sched ./internal/experiments ./internal/telemetry

bench:
	scripts/bench.sh
