package gsight

// One benchmark per table and figure of the paper's evaluation: each
// regenerates the artifact via the experiments harness at a reduced
// scale and reports headline metrics. Run the full-size reproduction
// with cmd/gsight-experiments (-scale 1.0); these benches keep the
// whole pipeline exercised and timed under `go test -bench`.

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gsight/internal/core"
	"gsight/internal/experiments"
	"gsight/internal/ml"
	"gsight/internal/perfmodel"
	"gsight/internal/resources"
	"gsight/internal/scenario"
	"gsight/internal/sched"
	"gsight/internal/serve"
	"gsight/internal/sim"
	"gsight/internal/telemetry"
)

// benchOptions keeps bench iterations affordable while preserving every
// experiment's structure.
func benchOptions() experiments.Options {
	return experiments.Options{Seed: 42, Scale: 0.05}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(nil, id, benchOptions())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s: empty report", id)
		}
		if i == 0 && testing.Verbose() {
			b.Logf("\n%s", rep.String())
		}
	}
}

// BenchmarkTable1Survey regenerates Table 1 (workload taxonomy).
func BenchmarkTable1Survey(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable3Correlations regenerates Table 3 (metric screening).
func BenchmarkTable3Correlations(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4Testbed regenerates Table 4 (testbed configuration).
func BenchmarkTable4Testbed(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig3aVolatility regenerates Figure 3(a): the 36
// partial-interference scenarios.
func BenchmarkFig3aVolatility(b *testing.B) { runExperiment(b, "fig3a") }

// BenchmarkFig3bTemporal regenerates Figure 3(b): LR+KMeans start-delay
// sweep.
func BenchmarkFig3bTemporal(b *testing.B) { runExperiment(b, "fig3b") }

// BenchmarkFig4Propagation regenerates Figure 4: hotspot and restoring
// propagation.
func BenchmarkFig4Propagation(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5ProfilingLevel regenerates Figure 5: function-level vs
// workload-level profiling.
func BenchmarkFig5ProfilingLevel(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig7Knee regenerates Figure 7: the latency-IPC curve.
func BenchmarkFig7Knee(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Importance regenerates Figure 8: IRFR metric importance.
func BenchmarkFig8Importance(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9PredictionError regenerates Figure 9: the model/baseline
// error comparison across colocation kinds.
func BenchmarkFig9PredictionError(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10aConvergence regenerates Figure 10(a): serverless vs
// serverful convergence.
func BenchmarkFig10aConvergence(b *testing.B) { runExperiment(b, "fig10a") }

// BenchmarkFig10bStability regenerates Figure 10(b): post-convergence
// stability.
func BenchmarkFig10bStability(b *testing.B) { runExperiment(b, "fig10b") }

// BenchmarkFig10cMultiWorkload regenerates Figure 10(c): error vs the
// number of colocated workloads.
func BenchmarkFig10cMultiWorkload(b *testing.B) { runExperiment(b, "fig10c") }

// BenchmarkFig11Scheduling regenerates Figure 11: density/utilization
// under the three schedulers.
func BenchmarkFig11Scheduling(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12SLA regenerates Figure 12: SLA guarantee ratios.
func BenchmarkFig12SLA(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13Recovery regenerates Figure 13: concept-shift recovery.
func BenchmarkFig13Recovery(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14Overhead regenerates Figure 14: online running cost.
func BenchmarkFig14Overhead(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkExtPCA runs the §6.4 PCA ablation.
func BenchmarkExtPCA(b *testing.B) { runExperiment(b, "ext-pca") }

// BenchmarkExtHierarchy runs the §6.4 hierarchical-scheduling ablation.
func BenchmarkExtHierarchy(b *testing.B) { runExperiment(b, "ext-hierarchy") }

// BenchmarkExtColdStart runs the §5.2 cold-start-aware prediction study.
func BenchmarkExtColdStart(b *testing.B) { runExperiment(b, "ext-coldstart") }

// BenchmarkExtIsolation runs the §6.3 isolation-orthogonality study.
func BenchmarkExtIsolation(b *testing.B) { runExperiment(b, "ext-isolation") }

// BenchmarkExtResilience runs the fault-injection study: the platform
// under every named fault scenario vs the healthy baseline.
func BenchmarkExtResilience(b *testing.B) { runExperiment(b, "ext-resilience") }

// BenchmarkExtSoak runs the long-horizon soak: scaled trace replay
// (rate and time factors) through the allocation-free step loop.
func BenchmarkExtSoak(b *testing.B) { runExperiment(b, "ext-soak") }

// BenchmarkExtScale runs the sharded-state scale ladder (8 to 10k
// servers) under Gsight and the baselines — the placements/sec column
// in its report is the headline number.
func BenchmarkExtScale(b *testing.B) { runExperiment(b, "ext-scale") }

// BenchmarkExtTwoTier runs the prune-depth sweep: QoS-density lost vs
// placement throughput gained as tier-0 pruning tightens K.
func BenchmarkExtTwoTier(b *testing.B) { runExperiment(b, "ext-twotier") }

// ---- micro-benchmarks of the paper's operational costs (§6.4) ----

func trainedPredictor(b testing.TB) (*core.Predictor, []core.Observation) {
	b.Helper()
	m := perfmodel.New(resources.DefaultTestbed())
	scenario.FastConfig(m)
	g := scenario.NewGenerator(m, 42)
	var obs []core.Observation
	for i := 0; i < 120; i++ {
		sc := g.Colocation(core.LSSC, 2)
		samples, err := g.Label(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range samples {
			if s.Kind == core.IPCQoS {
				obs = append(obs, core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label})
			}
		}
	}
	p := core.NewPredictor(core.Config{Seed: 1, UpdateEvery: 1 << 30})
	if err := p.TrainObservations(core.IPCQoS, obs); err != nil {
		b.Fatal(err)
	}
	return p, obs
}

// BenchmarkInference measures one QoS inference — the paper reports
// 3.48 ms per inference on its testbed.
func BenchmarkInference(b *testing.B) {
	p, obs := trainedPredictor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := obs[i%len(obs)]
		if _, err := p.Predict(core.IPCQoS, o.Target, o.Inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferenceBatch measures batched QoS inference over 16
// queries at a time — the scheduler's per-candidate check shape.
func BenchmarkInferenceBatch(b *testing.B) {
	p, obs := trainedPredictor(b)
	const batch = 16
	queries := make([]core.Query, batch)
	out := make([]float64, batch)
	for i := range queries {
		o := obs[i%len(obs)]
		queries[i] = core.Query{Target: o.Target, Inputs: o.Inputs}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.PredictBatchInto(core.IPCQoS, queries, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalUpdate measures one batched incremental model
// update — the paper reports 24.784 ms per update.
func BenchmarkIncrementalUpdate(b *testing.B) {
	p, obs := trainedPredictor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 20; j++ {
			o := obs[(i*20+j)%len(obs)]
			if err := p.Observe(core.IPCQoS, o.Target, o.Inputs, o.Label); err != nil {
				b.Fatal(err)
			}
		}
		if err := p.Flush(core.IPCQoS); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncode measures the spatial-temporal interference coding.
func BenchmarkEncode(b *testing.B) {
	_, obs := trainedPredictor(b)
	coder := core.DefaultCoder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := obs[i%len(obs)]
		if _, err := coder.Encode(o.Target, o.Inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioEvaluation measures one ground-truth evaluation of a
// two-workload colocation on the simulated testbed.
func BenchmarkScenarioEvaluation(b *testing.B) {
	m := perfmodel.New(resources.DefaultTestbed())
	scenario.FastConfig(m)
	g := scenario.NewGenerator(m, 42)
	scenarios := make([]*perfmodel.Scenario, 16)
	for i := range scenarios {
		scenarios[i] = g.Colocation(core.LSSC, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Evaluate(scenarios[i%len(scenarios)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchForestDataset encodes the observation set once into a
// paper-shaped design matrix (2580-dimensional codes).
func benchForestDataset(b *testing.B) ml.Dataset {
	b.Helper()
	_, obs := trainedPredictor(b)
	coder := core.DefaultCoder()
	var ds ml.Dataset
	for _, o := range obs {
		x, err := coder.Encode(o.Target, o.Inputs)
		if err != nil {
			b.Fatal(err)
		}
		ds.Append(x, o.Label)
	}
	return ds
}

// BenchmarkForestTraining measures IRFR training on a paper-shaped
// dataset with a single worker — the raw single-thread kernel, pinned
// to Workers:1 so the number is comparable across machines.
func BenchmarkForestTraining(b *testing.B) {
	ds := benchForestDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := ml.NewForest(ml.ForestConfig{Trees: 8, Seed: uint64(i), Workers: 1, Tree: ml.TreeConfig{MTry: 96}})
		if err := f.Fit(ds.X, ds.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestTrainingParallel is the same training load with the
// default worker pool (GOMAXPROCS-wide), measuring the parallel-growth
// speedup over BenchmarkForestTraining. The grown forest is
// byte-identical to the serial one (TestForestParallelFitByteIdentical).
func BenchmarkForestTrainingParallel(b *testing.B) {
	ds := benchForestDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := ml.NewForest(ml.ForestConfig{Trees: 8, Seed: uint64(i), Tree: ml.TreeConfig{MTry: 96}})
		if err := f.Fit(ds.X, ds.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBinarySearchScheduling measures one placement decision of
// the §4 scheduler (the paper reports "a few milliseconds").
func BenchmarkBinarySearchScheduling(b *testing.B) {
	p, obs := trainedPredictor(b)
	spec := resources.DefaultServerSpec("bench")
	scheduler := NewScheduler(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := schedState(spec)
		o := obs[i%len(obs)]
		req := &PlacementRequest{Input: o.Inputs[o.Target], SLA: SLA{MinIPC: 0.5}}
		if _, err := scheduler.Place(st, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulingInstrumented is BenchmarkBinarySearchScheduling
// with a live telemetry sink and decision log attached: same placements,
// and the alloc-neutrality contract (pinned by TestSchedulingAllocNeutral)
// keeps allocs/op identical to the uninstrumented baseline.
func BenchmarkSchedulingInstrumented(b *testing.B) {
	p, obs := trainedPredictor(b)
	spec := resources.DefaultServerSpec("bench")
	scheduler := NewScheduler(p)
	scheduler.Instrument(NewTelemetry().WithDecisions(io.Discard))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := schedState(spec)
		o := obs[i%len(obs)]
		req := &PlacementRequest{Input: o.Inputs[o.Target], SLA: SLA{MinIPC: 0.5}}
		if _, err := scheduler.Place(st, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedScheduling measures one placement proposal through
// the sharded state's transaction path at testbed size (single shard —
// exact legacy behavior). The sealed ClusterView keeps the snapshot
// from escaping, so the budget is the same 1 alloc/op (the returned
// placement slice) as direct Place; benchhist -check gates it against
// the history alongside BenchmarkBinarySearchScheduling.
func BenchmarkShardedScheduling(b *testing.B) {
	p, obs := trainedPredictor(b)
	spec := resources.DefaultServerSpec("bench")
	scheduler := NewScheduler(p)
	ss := sched.ShardedStateFromProfiles(spec, 8, 1)
	// One reusable request: inside propose the scheduler is an
	// interface, so a per-iteration literal would escape and charge
	// the caller's allocation to the propose path under test.
	req := &PlacementRequest{SLA: SLA{MinIPC: 0.5}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := obs[i%len(obs)]
		req.Input = o.Inputs[o.Target]
		if _, err := ss.Propose(scheduler, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedPlacement measures the full propose/commit/release
// cycle at cluster scale: 1k and 10k servers, shards 1 vs 16. Requests
// hash to a fixed-size home window, so ns/op is bounded by window size
// rather than server count; the shard axis isolates the epoch
// bookkeeping cost and placements/s is the headline throughput number
// recorded in BENCH_gsight.json.
func BenchmarkShardedPlacement(b *testing.B) {
	p, obs := trainedPredictor(b)
	spec := resources.DefaultServerSpec("bench")
	for _, n := range []int{1000, 10000} {
		for _, shards := range []int{1, 16} {
			b.Run(fmt.Sprintf("servers=%d/shards=%d", n, shards), func(b *testing.B) {
				scheduler := NewScheduler(p)
				ss := sched.ShardedStateFromProfiles(spec, n, shards)
				names := make([]string, 256)
				for i := range names {
					names[i] = fmt.Sprintf("bench-%03d", i)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					o := obs[i%len(obs)]
					in := o.Inputs[o.Target]
					in.Name = names[i%len(names)]
					req := &PlacementRequest{Input: in, SLA: SLA{MinIPC: 0.5}}
					pl, err := ss.Propose(scheduler, req)
					if err != nil {
						b.Fatal(err)
					}
					in.Placement = pl
					ss.Commit(in, req.SLA)
					if !ss.Release(in.Name) {
						b.Fatal("release failed")
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "placements/s")
			})
		}
	}
}

// contendedState builds an n-server cluster where every server except
// each idleEvery-th holds one latency-sensitive antagonist workload —
// the worst case for the spread ladder, and the scenario the two-tier
// prune exists for (DESIGN.md §15).
func contendedState(n, idleEvery int, obs []core.Observation, spec resources.ServerSpec) *DirectState {
	caps := make([]resources.Vector, n)
	for i := range caps {
		caps[i] = spec.Capacity
	}
	st := &DirectState{Caps: caps, Used: make([]resources.Vector, n)}
	for i := 0; i < n; i++ {
		if i%idleEvery == 0 {
			continue
		}
		o := obs[i%len(obs)]
		ant := o.Inputs[o.Target]
		ant.Name = fmt.Sprintf("bg-%d", i)
		ant.Placement = make([]int, len(ant.Profiles))
		for f := range ant.Placement {
			ant.Placement[f] = i
		}
		st.Commit(ant, SLA{})
	}
	return st
}

// BenchmarkTwoTierPlacement measures two-tier pruned placement against
// the legacy K=∞ ladder on a contended cluster: 7 of every 8 servers
// hold a latency-sensitive antagonist and the request carries a tight
// MinIPC, so the legacy spread ladder pays 10+ levels of candidate
// scans and inference before it finds a fit, while the pruned path
// places among the tier-0 finalists at level one. Steady state must
// stay within the low-alloc budget (see scripts/bench.sh check).
func BenchmarkTwoTierPlacement(b *testing.B) {
	p, obs := trainedPredictor(b)
	spec := resources.DefaultServerSpec("bench")
	o := obs[0]
	target := o.Inputs[o.Target]
	for _, n := range []int{1000, 10000} {
		st := contendedState(n, 8, obs, spec)
		for _, k := range []int{8, 32, 0} {
			name := fmt.Sprintf("%d", k)
			if k == 0 {
				name = "inf"
			}
			b.Run(fmt.Sprintf("servers=%d/topk=%s", n, name), func(b *testing.B) {
				opts := []Option{}
				if k > 0 {
					opts = append(opts, WithTopK(k))
				}
				scheduler := NewScheduler(p, opts...)
				req := &PlacementRequest{Input: target, SLA: SLA{MinIPC: 0.98}}
				if _, err := scheduler.Place(st, req); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := scheduler.Place(st, req); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "placements/s")
			})
		}
	}
}

// BenchmarkFaultyPlatform measures the platform's fault path: a short
// trace-driven run under the "chaos" scenario (crash + straggler +
// cold-start storm + predictor outage), exercising evacuation, capacity
// rescaling and degraded-mode placement end to end.
func BenchmarkFaultyPlatform(b *testing.B) {
	cat := Catalog()
	const durationS = 2 * 3600
	chaos, err := FaultScenario("chaos", 42, durationS, 8)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		st, err := RunPlatform(nil, PlatformConfig{
			Model:     NewTestbedModel(),
			Scheduler: NewWorstFit(),
			Services: []PlatformService{
				{W: cat["social-network"], Pattern: DefaultTracePattern(250), SLA: SLA{MinIPC: 0.9}},
				{W: cat["e-commerce"], Pattern: DefaultTracePattern(350), SLA: SLA{MinIPC: 1.0}},
			},
			SCPool:          []*Workload{cat["matmul"], cat["dd"], cat["float-op"]},
			SCMeanIntervalS: 200,
			DurationS:       durationS,
			StepS:           30,
			Seed:            42,
			Faults:          chaos,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.FaultEvents == 0 {
			b.Fatal("chaos run injected no faults")
		}
	}
}

// BenchmarkTracedPlatform is BenchmarkFaultyPlatform with the full
// observability recorder attached (lifecycle trace + flight recorder +
// prediction-quality tracking, all draining to io.Discard): the same
// chaos run, so the ns/op delta against BenchmarkFaultyPlatform is the
// whole-run cost of enabled recording. The contract is <15% overhead;
// scripts/bench.sh runs both so the pair lands in the history file.
func BenchmarkTracedPlatform(b *testing.B) {
	cat := Catalog()
	const durationS = 2 * 3600
	chaos, err := FaultScenario("chaos", 42, durationS, 8)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rec := NewRecorder(RecorderConfig{
			Trace: io.Discard, Flight: io.Discard, Servers: 8, StepS: 30,
		})
		st, err := RunPlatform(nil, PlatformConfig{
			Model:     NewTestbedModel(),
			Scheduler: NewWorstFit(),
			Services: []PlatformService{
				{W: cat["social-network"], Pattern: DefaultTracePattern(250), SLA: SLA{MinIPC: 0.9}},
				{W: cat["e-commerce"], Pattern: DefaultTracePattern(350), SLA: SLA{MinIPC: 1.0}},
			},
			SCPool:          []*Workload{cat["matmul"], cat["dd"], cat["float-op"]},
			SCMeanIntervalS: 200,
			DurationS:       durationS,
			StepS:           30,
			Seed:            42,
			Faults:          chaos,
			Obs:             rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.FaultEvents == 0 {
			b.Fatal("chaos run injected no faults")
		}
		if rec.Trace().Events() == 0 || rec.Flight().Frames() == 0 {
			b.Fatal("recorder captured nothing")
		}
	}
}

// BenchmarkEngineStep measures one event dispatch through the
// time-wheel engine at a steady population of self-rescheduling timers
// — the event-queue half of the platform step loop. Expected 0
// allocs/op: fired events recycle through the engine's free list.
func BenchmarkEngineStep(b *testing.B) {
	var e sim.Engine
	const timers = 64
	for i := 0; i < timers; i++ {
		// Incommensurate periods keep the wheel slots churning instead
		// of batching every timer into one slot.
		d := 1.0 + float64(i)*0.37
		var fn func()
		fn = func() { e.After(d, fn) }
		e.After(d, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("engine ran dry")
		}
	}
}

// BenchmarkPlatformStep measures the per-step cost of the platform
// loop on a healthy (fault-free) two-service run — autoscaling, the
// incremental stepper, SLA monitoring and batch-job turnover, without
// the fault-path work BenchmarkFaultyPlatform adds. The headline
// number is the ns/step metric; ns/op times the whole run.
func BenchmarkPlatformStep(b *testing.B) {
	cat := Catalog()
	const durationS = 2 * 3600
	totalSteps := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := RunPlatform(nil, PlatformConfig{
			Model:     NewTestbedModel(),
			Scheduler: NewWorstFit(),
			Services: []PlatformService{
				{W: cat["social-network"], Pattern: DefaultTracePattern(250), SLA: SLA{MinIPC: 0.9}},
				{W: cat["e-commerce"], Pattern: DefaultTracePattern(350), SLA: SLA{MinIPC: 1.0}},
			},
			SCPool:          []*Workload{cat["matmul"], cat["dd"]},
			SCMeanIntervalS: 200,
			DurationS:       durationS,
			StepS:           30,
			Seed:            42,
		})
		if err != nil {
			b.Fatal(err)
		}
		totalSteps += st.Steps
	}
	b.StopTimer()
	if totalSteps > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalSteps), "ns/step")
	}
}

// schedState builds a flat 8-server state. The composite literal stays
// stack-allocatable inside benchmark loops (the sealed ClusterView
// keeps Place from leaking it), which the alloc-budget tests rely on.
func schedState(spec resources.ServerSpec) *DirectState {
	caps := make([]resources.Vector, 8)
	for i := range caps {
		caps[i] = spec.Capacity
	}
	return &DirectState{Caps: caps, Used: make([]resources.Vector, 8)}
}

// benchedIDs is the static list of experiment ids with a Benchmark*
// runExperiment wrapper above. Adding an experiment to the registry
// without benchmarking it (or removing one and leaving a stale bench)
// fails TestBenchRegistryCoverage — keep this list in lockstep with the
// Benchmark functions.
var benchedIDs = []string{
	"table1", "table3", "table4",
	"fig3a", "fig3b", "fig4", "fig5", "fig7", "fig8", "fig9",
	"fig10a", "fig10b", "fig10c", "fig11", "fig12", "fig13", "fig14",
	"ext-pca", "ext-hierarchy", "ext-coldstart", "ext-isolation",
	"ext-resilience", "ext-soak", "ext-scale", "ext-twotier",
}

// TestBenchRegistryCoverage pins the registry and the bench list to
// each other: every registered experiment must have a Benchmark*
// wrapper (tracked in benchedIDs) and every benched id must still be
// registered.
func TestBenchRegistryCoverage(t *testing.T) {
	benched := map[string]bool{}
	for _, id := range benchedIDs {
		if benched[id] {
			t.Errorf("duplicate benched id %q", id)
		}
		benched[id] = true
	}
	registered := map[string]bool{}
	for _, id := range experiments.IDs() {
		registered[id] = true
		if !benched[id] {
			t.Errorf("experiment %q has no Benchmark* wrapper: add one and list it in benchedIDs", id)
		}
	}
	for _, id := range benchedIDs {
		if !registered[id] {
			t.Errorf("benched id %q is no longer registered: remove its Benchmark* wrapper", id)
		}
	}
	if _, err := experiments.Run(nil, "nope-bogus", benchOptions()); err == nil {
		t.Fatal("bogus id resolved")
	}
	for _, id := range experiments.IDs() {
		if !strings.HasPrefix(id, "table") && !strings.HasPrefix(id, "fig") && !strings.HasPrefix(id, "ext-") {
			t.Errorf("unexpected experiment id %q", id)
		}
	}
}

// BenchmarkServePlacement measures end-to-end placement latency
// through the gsight-serve daemon — HTTP decode, admission, the
// committer's PlaceAll round, the group-commit WAL fsync — under 32
// concurrent closed-loop clients. Reports the p99 in milliseconds
// (the ISSUE's serving SLO metric) alongside throughput; each placed
// instance is released immediately so the cluster never fills.
func BenchmarkServePlacement(b *testing.B) {
	srv, err := serve.New(serve.Config{
		DataDir: b.TempDir(),
		Seed:    7,
		Train:   4,
		Placers: 2,
		Health:  telemetry.NewHealth(),
	})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Stop(ctx)
	}()

	b.ResetTimer()
	res, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		Addrs:       []string{hs.URL},
		Workers:     32,
		Requests:    b.N,
		Warmup:      0,
		Seed:        11,
		Workloads:   []string{"matmul", "social-network", "dd", "e-commerce", "kmeans"},
		ReleaseFrac: 1,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Errors > 0 {
		b.Fatalf("%d errors: %s", res.Errors, res)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "placements/s")
	b.ReportMetric(res.P99Ms, "p99_ms")
}
