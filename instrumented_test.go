// Alloc-neutrality tests for the telemetry subsystem: instrumented hot
// paths must add zero allocations per operation over the Nop baseline.
// testing.AllocsPerRun is exact only without the race runtime's shadow
// allocations, so this file is excluded from -race runs; the functional
// equivalence tests in internal/sched cover the race configuration.

//go:build !race

package gsight

import (
	"io"
	"runtime/debug"
	"testing"

	"gsight/internal/core"
	"gsight/internal/resources"
	"gsight/internal/telemetry"
)

// pauseGC disables the collector for the duration of an AllocsPerRun
// measurement so pool evictions cannot masquerade as hot-path allocs.
func pauseGC(t *testing.T) {
	t.Helper()
	old := debug.SetGCPercent(-1)
	t.Cleanup(func() { debug.SetGCPercent(old) })
}

// TestSchedulingAllocNeutral pins the acceptance criterion for the
// scheduler: Place with a live sink and decision log allocates exactly
// what the Nop-instrumented scheduler does.
func TestSchedulingAllocNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor bootstrap is slow")
	}
	pauseGC(t)
	p, obs := trainedPredictor(t)
	spec := resources.DefaultServerSpec("alloc")

	measure := func(sink *telemetry.Sink) float64 {
		scheduler := NewScheduler(p)
		scheduler.Instrument(sink)
		st := schedState(spec)
		o := obs[0]
		req := &PlacementRequest{Input: o.Inputs[o.Target], SLA: SLA{MinIPC: 0.5}}
		return testing.AllocsPerRun(200, func() {
			if _, err := scheduler.Place(st, req); err != nil {
				t.Fatal(err)
			}
		})
	}

	nop := measure(telemetry.Nop)
	live := measure(telemetry.New().WithDecisions(io.Discard))
	if live > nop {
		t.Fatalf("instrumented Place allocates more than Nop: %.1f > %.1f allocs/op", live, nop)
	}
}

// TestSchedulingAllocBudget pins the absolute allocation budget of one
// placement decision — state construction, request and Place together,
// exactly the BenchmarkBinarySearchScheduling loop body — at 1
// alloc/op (the returned placement slice). Neutrality alone cannot
// catch escape-analysis regressions such as an interface call that
// forces the caller's State onto the heap; this budget does.
func TestSchedulingAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor bootstrap is slow")
	}
	pauseGC(t)
	p, obs := trainedPredictor(t)
	spec := resources.DefaultServerSpec("alloc")
	scheduler := NewScheduler(p)
	o := obs[0]
	allocs := testing.AllocsPerRun(200, func() {
		st := schedState(spec)
		req := &PlacementRequest{Input: o.Inputs[o.Target], SLA: SLA{MinIPC: 0.5}}
		if _, err := scheduler.Place(st, req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("placement decision allocates %.1f allocs/op, budget is 1", allocs)
	}
}

// TestTwoTierAllocBudget pins the tier-0 prune path to the same 1
// alloc/op budget as the legacy path: ranking, the score-cache lookup
// and the top-K truncation must all run on pooled scratch.
// AllocsPerRun's warm-up call absorbs the one-time cache-entry fill.
func TestTwoTierAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor bootstrap is slow")
	}
	pauseGC(t)
	p, obs := trainedPredictor(t)
	spec := resources.DefaultServerSpec("alloc")
	scheduler := NewScheduler(p, WithTopK(4))
	o := obs[0]
	allocs := testing.AllocsPerRun(200, func() {
		st := schedState(spec)
		req := &PlacementRequest{Input: o.Inputs[o.Target], SLA: SLA{MinIPC: 0.5}}
		if _, err := scheduler.Place(st, req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("two-tier placement decision allocates %.1f allocs/op, budget is 1", allocs)
	}
}

// TestInferenceAllocNeutral pins the predictor side: single and batched
// inference stay allocation-free with telemetry enabled (matching the
// BENCH_gsight.json baseline of 0 allocs/op).
func TestInferenceAllocNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor bootstrap is slow")
	}
	pauseGC(t)
	p, obs := trainedPredictor(t)
	p.Instrument(telemetry.New().WithDecisions(io.Discard))
	o := obs[0]

	single := testing.AllocsPerRun(200, func() {
		if _, err := p.Predict(core.IPCQoS, o.Target, o.Inputs); err != nil {
			t.Fatal(err)
		}
	})
	if single != 0 {
		t.Fatalf("instrumented Predict allocates %.1f allocs/op, want 0", single)
	}

	queries := make([]core.Query, 8)
	out := make([]float64, len(queries))
	for i := range queries {
		q := obs[i%len(obs)]
		queries[i] = core.Query{Target: q.Target, Inputs: q.Inputs}
	}
	batched := testing.AllocsPerRun(200, func() {
		if err := p.PredictBatchInto(core.IPCQoS, queries, out); err != nil {
			t.Fatal(err)
		}
	})
	if batched != 0 {
		t.Fatalf("instrumented PredictBatchInto allocates %.1f allocs/op, want 0", batched)
	}
}

// TestInstrumentedOutputsIdentical pins bit-identity end to end at the
// root API: predictions from an instrumented predictor equal the
// uninstrumented ones exactly.
func TestInstrumentedOutputsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor bootstrap is slow")
	}
	plain, obs := trainedPredictor(t)
	inst, _ := trainedPredictor(t)
	inst.Instrument(NewTelemetry().WithDecisions(io.Discard))
	for i := 0; i < 25; i++ {
		o := obs[i%len(obs)]
		a, err := plain.Predict(core.IPCQoS, o.Target, o.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := inst.Predict(core.IPCQoS, o.Target, o.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("obs %d: instrumented prediction %v != %v", i, b, a)
		}
	}
}
