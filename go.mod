module gsight

go 1.22
