package gsight_test

import (
	"fmt"

	"gsight"
)

// ExampleNewTestbedModel evaluates the paper's canonical partial
// interference scenario — matmul beside the social network's most
// sensitive function — and shows the end-to-end degradation.
func ExampleNewTestbedModel() {
	model := gsight.NewTestbedModel()
	cat := gsight.Catalog()

	sn := cat["social-network"]
	d := gsight.SpreadDeployment(sn, model.Testbed)
	d.QPS = sn.MaxQPS / 2

	solo, err := model.Evaluate(&gsight.Scenario{Deployments: []*gsight.Deployment{d}}, nil)
	if err != nil {
		panic(err)
	}

	d2 := gsight.SpreadDeployment(sn, model.Testbed)
	d2.QPS = sn.MaxQPS / 2
	mm := gsight.NewDeployment(cat["matmul"].Clone())
	mm.Placement[0] = d2.Placement[8] // beside get-followers
	mm.Socket[0] = d2.Socket[8]
	co, err := model.Evaluate(&gsight.Scenario{Deployments: []*gsight.Deployment{d2, mm}}, nil)
	if err != nil {
		panic(err)
	}

	fmt.Printf("interference beside get-followers inflates p99: %v\n",
		co.Deployments[0].E2EP99Ms > 2*solo.Deployments[0].E2EP99Ms)
	fmt.Printf("and reduces IPC: %v\n", co.Deployments[0].IPC < solo.Deployments[0].IPC)
	// Output:
	// interference beside get-followers inflates p99: true
	// and reduces IPC: true
}

// ExampleNewPredictor trains Gsight on labeled colocations and predicts
// a held-out one.
func ExampleNewPredictor() {
	model := gsight.NewTestbedModel()
	gen := gsight.NewGenerator(model, 7)

	var obs []gsight.Observation
	for i := 0; i < 150; i++ {
		sc := gen.Colocation(gsight.LSSC, 2)
		samples, err := gen.Label(sc)
		if err != nil {
			panic(err)
		}
		for _, s := range samples {
			if s.Kind == gsight.IPCQoS {
				obs = append(obs, gsight.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label})
			}
		}
	}
	hold := 20
	pred := gsight.NewPredictor(gsight.PredictorConfig{Seed: 7})
	if err := pred.TrainObservations(gsight.IPCQoS, obs[:len(obs)-hold]); err != nil {
		panic(err)
	}
	sum := 0.0
	for _, o := range obs[len(obs)-hold:] {
		got, err := pred.Predict(gsight.IPCQoS, o.Target, o.Inputs)
		if err != nil {
			panic(err)
		}
		rel := (got - o.Label) / o.Label
		if rel < 0 {
			rel = -rel
		}
		sum += rel
	}
	fmt.Printf("mean held-out error under 15%%: %v\n", sum/float64(hold) < 0.15)
	// Output:
	// mean held-out error under 15%: true
}
