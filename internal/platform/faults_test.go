package platform

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"gsight/internal/core"
	"gsight/internal/faults"
	"gsight/internal/resources"
	"gsight/internal/sched"
	"gsight/internal/telemetry"
)

// untrainedPredictor always reports it has not been trained yet.
type untrainedPredictor struct{}

func (untrainedPredictor) TrainObservations(core.QoSKind, []core.Observation) error { return nil }
func (untrainedPredictor) Predict(core.QoSKind, int, []core.WorkloadInput) (float64, error) {
	return 0, fmt.Errorf("%w: ipc", core.ErrNotTrained)
}
func (untrainedPredictor) Observe(core.QoSKind, int, []core.WorkloadInput, float64) error { return nil }
func (untrainedPredictor) Flush(core.QoSKind) error                                       { return nil }
func (untrainedPredictor) Name() string                                                   { return "untrained" }

// flakyScheduler fails every Place with a transient error.
type flakyScheduler struct{ calls int }

func (f *flakyScheduler) Place(sched.ClusterView, *sched.Request) ([]int, error) {
	f.calls++
	return nil, errors.New("transient RPC failure")
}
func (f *flakyScheduler) Name() string { return "flaky" }

func TestCrashDisplacesServices(t *testing.T) {
	cfg := shortConfig(sched.NewGsight(&fixedPredictor{ipc: 99}), 11)
	// The packing scheduler concentrates both services on few nodes;
	// crashing the first half of the cluster in sequence guarantees at
	// least one crash lands on a populated node.
	var evs []faults.Event
	for n := 0; n < 4; n++ {
		evs = append(evs, faults.Event{AtS: 200 + 150*float64(n), Kind: faults.NodeCrash, Node: n, DurationS: 300})
	}
	cfg.Faults = &faults.Schedule{Name: "crashes", Events: evs}
	st, err := Run(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultEvents != 8 {
		t.Fatalf("fault events = %d, want 8 (4 crashes + 4 recoveries)", st.FaultEvents)
	}
	if st.DisplacedServices == 0 {
		t.Fatal("no services displaced by four crashes under a packing scheduler")
	}
	if st.Steps != 60 {
		t.Fatalf("faulty run did not complete: %d steps", st.Steps)
	}
	for name, oks := range st.SLAOK {
		if len(oks) != st.Steps {
			t.Fatalf("%s SLA series truncated: %d/%d", name, len(oks), st.Steps)
		}
	}
}

func TestPredictorOutageDegradesAndRecovers(t *testing.T) {
	cfg := shortConfig(sched.NewGsight(&fixedPredictor{ipc: 99}), 4)
	cfg.Faults = &faults.Schedule{Name: "outage", Events: []faults.Event{
		{AtS: 300, Kind: faults.PredictorDown, DurationS: 600},
	}}
	st, err := Run(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Degraded) != 1 {
		t.Fatalf("degraded intervals = %+v, want exactly one", st.Degraded)
	}
	iv := st.Degraded[0]
	if iv.StartS != 300 || iv.EndS != 900 || iv.Reason != reasonUnavailable {
		t.Fatalf("interval = %+v, want [300,900) %s", iv, reasonUnavailable)
	}
	if st.DegradedSteps == 0 {
		t.Fatal("no steps counted as degraded during the outage")
	}
	if st.DegradedPlacements == 0 {
		t.Fatal("no placements served by the fallback during the outage")
	}
	if st.Steps != 60 {
		t.Fatalf("outage run did not complete: %d steps", st.Steps)
	}
}

func TestUntrainedPredictorDegradesWholeRun(t *testing.T) {
	cfg := shortConfig(sched.NewGsight(untrainedPredictor{}), 6)
	st, err := Run(nil, cfg)
	if err != nil {
		t.Fatalf("untrained predictor must degrade, not fail the run: %v", err)
	}
	if len(st.Degraded) != 1 {
		t.Fatalf("degraded intervals = %+v, want one spanning the run", st.Degraded)
	}
	iv := st.Degraded[0]
	if iv.Reason != reasonUntrained || iv.EndS != cfg.DurationS {
		t.Fatalf("interval = %+v, want %s closed at horizon %v", iv, reasonUntrained, cfg.DurationS)
	}
	if st.DegradedPlacements == 0 {
		t.Fatal("fallback served no placements")
	}
	if st.Steps != 60 {
		t.Fatalf("run did not complete: %d steps", st.Steps)
	}
}

func TestTransientErrorsRetryThenFallback(t *testing.T) {
	flaky := &flakyScheduler{}
	cfg := shortConfig(flaky, 2)
	cfg.DurationS = 600
	cfg.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond}
	st, err := Run(nil, cfg)
	if err != nil {
		t.Fatalf("persistent transient errors must degrade, not fail: %v", err)
	}
	if st.PlacementRetries == 0 {
		t.Fatal("no retries recorded against a flaky scheduler")
	}
	if st.DegradedPlacements == 0 {
		t.Fatal("fallback never took over after retries were exhausted")
	}
	if flaky.calls < 2 {
		t.Fatalf("flaky scheduler called %d times, want >= MaxAttempts", flaky.calls)
	}
}

// TestFaultyRunsByteIdentical is the PR's acceptance criterion: the same
// seed with the same fault schedule must emit byte-identical decision
// logs, backoff sleeps and wall-clock timing notwithstanding.
func TestFaultyRunsByteIdentical(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		sink := telemetry.New().WithDecisions(&buf)
		cfg := shortConfig(sched.NewWorstFit(), 9)
		sch, err := faults.Scenario("chaos", 9, cfg.DurationS, resources.DefaultTestbed().NumServers())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = sch
		cfg.Telemetry = sink
		if _, err := Run(nil, cfg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := emit(), emit()
	if len(a) == 0 {
		t.Fatal("decision log empty under the chaos scenario")
	}
	if !bytes.Contains(a, []byte(`"event":"fault"`)) {
		t.Fatal("no fault events in the decision log")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed + same fault schedule produced different decision logs")
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, shortConfig(sched.NewWorstFit(), 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
