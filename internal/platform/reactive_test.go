package platform

import (
	"testing"

	"gsight/internal/perfmodel"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/sched"
	"gsight/internal/workload"
)

// testbedSpec is the single server spec the unit fixtures run on.
func testbedSpec() resources.ServerSpec { return resources.DefaultTestbed().Servers[0] }

// lsFixture builds a deployed service with every function on `on`.
func lsFixture(w *workload.Workload, on int) *serviceState {
	ps := profile.WorkloadProfiles(w, testbedSpec(), rng.Stream(1, "reactive-test"))
	dep := perfmodel.NewDeployment(w)
	for f := range dep.Socket {
		dep.Socket[f] = -1
	}
	dep.QPS = 100
	for f := range dep.Replicas {
		dep.Replicas[f] = 1
		dep.Placement[f] = on
	}
	return &serviceState{svc: LSService{W: w, SLA: sched.SLA{MinIPC: 0.5}}, dep: dep, profiles: ps}
}

// scFixture builds an active batch job with every function on `on`.
func scFixture(id int, w *workload.Workload, on int) *scActive {
	ps := profile.WorkloadProfiles(w, testbedSpec(), rng.Stream(2, "reactive-test-sc"))
	dep := perfmodel.NewDeployment(w)
	for f := range dep.Placement {
		dep.Placement[f] = on
	}
	in := inputFor(w, dep, ps)
	return &scActive{id: id, input: in, sla: sched.SLA{}, dep: dep}
}

// resultWorstLast builds an LSResult whose last function has the worst
// local p99, so worstFuncs returns indices in descending order.
func resultWorstLast(n int) perfmodel.LSResult {
	r := perfmodel.LSResult{PerFunc: make([]perfmodel.FuncPerf, n)}
	for f := range r.PerFunc {
		r.PerFunc[f].LocalP99Ms = float64(f + 1)
	}
	return r
}

func TestRefreshStateRebuildsBookkeeping(t *testing.T) {
	sst := sched.ShardedStateFromProfiles(testbedSpec(), 4, 1)
	st := sst.Base()
	ss := lsFixture(workload.SocialNetwork(), 0)
	jobs := []*scActive{scFixture(7, workload.DD(), 1)}
	refreshState(sst, []*serviceState{ss}, jobs)
	if len(st.Running) != 2 {
		t.Fatalf("running = %d, want service + job", len(st.Running))
	}
	if st.Used[0].IsZero() || st.Used[1].IsZero() {
		t.Fatal("commit left populated servers empty")
	}
	if !st.Used[2].IsZero() || !st.Used[3].IsZero() {
		t.Fatal("unpopulated servers carry allocation")
	}
	// Crash-displacement path: after moving everything off node 0, a
	// refresh must drop node 0's allocation entirely (no leaks from the
	// pre-crash placement).
	for f := range ss.dep.Placement {
		ss.dep.Placement[f] = 2
	}
	refreshState(sst, []*serviceState{ss}, jobs)
	if !st.Used[0].IsZero() {
		t.Fatal("stale allocation on evacuated server after refresh")
	}
	if st.Used[2].IsZero() {
		t.Fatal("moved service not accounted on its new server")
	}
	if len(st.Running) != 2 {
		t.Fatalf("running = %d after refresh, want 2", len(st.Running))
	}
}

func TestMigrateWorstSpreadsOffHotServer(t *testing.T) {
	sst := sched.ShardedStateFromProfiles(testbedSpec(), 4, 1)
	st := sst.Base()
	m := perfmodel.New(resources.DefaultTestbed())
	ss := lsFixture(workload.SocialNetwork(), 0)
	refreshState(sst, []*serviceState{ss}, nil)
	lr := resultWorstLast(len(ss.dep.Placement))
	moved := migrateWorst(m, st, ss, lr, 3)
	if moved != 3 {
		t.Fatalf("moved = %d, want 3", moved)
	}
	// The three worst functions are the last three; each must now sit on
	// a distinct server away from the hotspot.
	seen := map[int]bool{}
	n := len(ss.dep.Placement)
	for _, f := range []int{n - 1, n - 2, n - 3} {
		s := ss.dep.Placement[f]
		if s == 0 {
			t.Fatalf("worst function %d still on the hot server", f)
		}
		if seen[s] {
			t.Fatalf("two migrated functions landed on server %d", s)
		}
		seen[s] = true
	}
}

func TestMigrateWorstSkipsOfflineServers(t *testing.T) {
	sst := sched.ShardedStateFromProfiles(testbedSpec(), 3, 1)
	st := sst.Base()
	m := perfmodel.New(resources.DefaultTestbed())
	ss := lsFixture(workload.SocialNetwork(), 0)
	refreshState(sst, []*serviceState{ss}, nil)
	st.SetOffline(1, true)
	lr := resultWorstLast(len(ss.dep.Placement))
	moved := migrateWorst(m, st, ss, lr, 2)
	if moved == 0 {
		t.Fatal("nothing moved despite an online target")
	}
	for f, s := range ss.dep.Placement {
		if s == 1 {
			t.Fatalf("function %d migrated onto the offline server", f)
		}
	}
}

func TestMigrateWorstAllOffline(t *testing.T) {
	sst := sched.ShardedStateFromProfiles(testbedSpec(), 2, 1)
	st := sst.Base()
	m := perfmodel.New(resources.DefaultTestbed())
	ss := lsFixture(workload.SocialNetwork(), 0)
	refreshState(sst, []*serviceState{ss}, nil)
	st.SetOffline(1, true)
	// Only the hot server itself is online: there is nowhere to go.
	if moved := migrateWorst(m, st, ss, resultWorstLast(len(ss.dep.Placement)), 2); moved != 0 {
		t.Fatalf("moved = %d with no alternative server", moved)
	}
}

func TestEvictSCMovesLargestCorunner(t *testing.T) {
	sst := sched.ShardedStateFromProfiles(testbedSpec(), 4, 1)
	st := sst.Base()
	small := scFixture(1, workload.DD(), 0)
	big := scFixture(2, workload.MatMul(), 0)
	elsewhere := scFixture(3, workload.FloatOp(), 2)
	jobs := []*scActive{small, big, elsewhere}
	refreshState(sst, nil, jobs)
	if !evictSC(st, jobs, 0) {
		t.Fatal("no corunner evicted from the hot server")
	}
	// Exactly one of the two co-located jobs moved, wholesale, off the
	// hot server; the job on server 2 stays put.
	movedJobs := 0
	for _, a := range []*scActive{small, big} {
		on, off := 0, 0
		for _, s := range a.dep.Placement {
			if s == 0 {
				on++
			} else {
				off++
			}
		}
		if on > 0 && off > 0 {
			t.Fatalf("job %d split across servers: %v", a.id, a.dep.Placement)
		}
		if on == 0 {
			movedJobs++
		}
	}
	if movedJobs != 1 {
		t.Fatalf("moved %d jobs, want exactly one", movedJobs)
	}
	for _, s := range elsewhere.dep.Placement {
		if s != 2 {
			t.Fatalf("uninvolved job moved: %v", elsewhere.dep.Placement)
		}
	}
}

func TestEvictSCRespectsOffline(t *testing.T) {
	sst := sched.ShardedStateFromProfiles(testbedSpec(), 3, 1)
	st := sst.Base()
	job := scFixture(1, workload.DD(), 0)
	jobs := []*scActive{job}
	refreshState(sst, nil, jobs)
	st.SetOffline(1, true)
	if !evictSC(st, jobs, 0) {
		t.Fatal("eviction failed with server 2 still online")
	}
	for _, s := range job.dep.Placement {
		if s != 2 {
			t.Fatalf("victim landed on %d, want the only online alternative 2", s)
		}
	}
}

func TestEvictSCNowhereToGo(t *testing.T) {
	sst := sched.ShardedStateFromProfiles(testbedSpec(), 2, 1)
	st := sst.Base()
	job := scFixture(1, workload.DD(), 0)
	jobs := []*scActive{job}
	refreshState(sst, nil, jobs)
	st.SetOffline(1, true)
	if evictSC(st, jobs, 0) {
		t.Fatal("evicted a job with every other server offline")
	}
}

func TestEvictSCNoCorunner(t *testing.T) {
	sst := sched.ShardedStateFromProfiles(testbedSpec(), 4, 1)
	st := sst.Base()
	jobs := []*scActive{scFixture(1, workload.DD(), 3)}
	refreshState(sst, nil, jobs)
	if evictSC(st, jobs, 0) {
		t.Fatal("evicted a job that was not on the hot server")
	}
}
