package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"gsight/internal/core"
	"gsight/internal/faults"
	"gsight/internal/obs"
	"gsight/internal/persist"
	"gsight/internal/sched"
	"gsight/internal/telemetry"
)

// ckptConfig builds a run exercising the full checkpoint surface: a
// real (checkpointable) predictor learning online behind the Gsight
// scheduler, batch arrivals, and dense observations so forest training
// fires mid-horizon.
func ckptConfig(seed uint64) Config {
	pred := core.NewPredictor(core.Config{Seed: seed})
	cfg := shortConfig(sched.NewGsight(pred), seed)
	cfg.Predictor = pred
	cfg.ObserveEvery = 1
	return cfg
}

// statsJSON serializes stats with the one legitimately wall-clock
// (non-deterministic) field zeroed.
func statsJSON(t *testing.T, st *Stats) []byte {
	t.Helper()
	c := *st
	c.SchedulingTime = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// obsFor attaches a fresh observability recorder writing to the given
// stream buffers, mirroring how a process (re)start reopens its trace
// and flight-recorder files.
func obsFor(cfg *Config, trace, flight *bytes.Buffer) {
	cfg.Obs = obs.New(obs.Config{
		Trace:   trace,
		Flight:  flight,
		Servers: cfg.Model.Testbed.NumServers(),
		StepS:   cfg.StepS,
	})
}

// ckptRun is what a crash/resume sequence produced: the final stats and
// the accumulated decision-log, trace and flight-recorder streams.
type ckptRun struct {
	stats        *Stats
	log          []byte
	trace        []byte
	flight       []byte
	incarnations int
}

// runToCompletion drives a checkpointed run through every injected
// controller crash, rebuilding predictor, scheduler, sink, decision
// log and observability recorder per incarnation exactly like a process
// restart would, truncating every stream to each resumed snapshot's
// recorded offsets. between, when set, runs after each crashed
// incarnation (fault injection on the checkpoint files themselves).
func runToCompletion(t *testing.T, seed uint64, dir string, schedule *faults.Schedule, intervalS float64, between func(incarnation int)) ckptRun {
	t.Helper()
	var logBytes, traceBytes, flightBytes []byte
	for incarnation := 1; ; incarnation++ {
		if incarnation > 20 {
			t.Fatal("resume loop did not converge")
		}
		cfg := ckptConfig(seed)
		cfg.Faults = schedule
		cfg.Checkpoint = CheckpointConfig{Dir: dir, IntervalS: intervalS, Resume: incarnation > 1}
		if incarnation > 1 {
			meta, err := PeekCheckpoint(dir)
			if err != nil {
				t.Fatalf("incarnation %d: %v", incarnation, err)
			}
			if int64(len(logBytes)) < meta.LogBytes {
				t.Fatalf("incarnation %d: decision log has %d bytes, snapshot records %d",
					incarnation, len(logBytes), meta.LogBytes)
			}
			if int64(len(traceBytes)) < meta.TraceBytes || int64(len(flightBytes)) < meta.FlightBytes {
				t.Fatalf("incarnation %d: trace/flight have %d/%d bytes, snapshot records %d/%d",
					incarnation, len(traceBytes), len(flightBytes), meta.TraceBytes, meta.FlightBytes)
			}
			logBytes = logBytes[:meta.LogBytes]
			traceBytes = traceBytes[:meta.TraceBytes]
			flightBytes = flightBytes[:meta.FlightBytes]
		}
		buf := bytes.NewBuffer(logBytes)
		tbuf := bytes.NewBuffer(traceBytes)
		fbuf := bytes.NewBuffer(flightBytes)
		cfg.Telemetry = telemetry.New().WithDecisions(buf)
		obsFor(&cfg, tbuf, fbuf)
		st, err := Run(context.Background(), cfg)
		logBytes = append([]byte(nil), buf.Bytes()...)
		traceBytes = append([]byte(nil), tbuf.Bytes()...)
		flightBytes = append([]byte(nil), fbuf.Bytes()...)
		if errors.Is(err, ErrControllerCrashed) {
			if between != nil {
				between(incarnation)
			}
			continue
		}
		if err != nil {
			t.Fatalf("incarnation %d: %v", incarnation, err)
		}
		return ckptRun{stats: st, log: logBytes, trace: traceBytes, flight: flightBytes, incarnations: incarnation}
	}
}

// TestCrashResumeByteIdentity is the headline guarantee: kill the
// controller at three different points of the horizon — inside the
// first snapshot interval, mid-run, and near the end — resume each time
// from disk, and the final stats and decision log are byte-identical to
// the uninterrupted same-seed run that never had a crash scheduled.
func TestCrashResumeByteIdentity(t *testing.T) {
	const seed = 11
	base := ckptConfig(seed)
	var baseLog, baseTrace, baseFlight bytes.Buffer
	base.Telemetry = telemetry.New().WithDecisions(&baseLog)
	obsFor(&base, &baseTrace, &baseFlight)
	baseStats, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if baseTrace.Len() == 0 || baseFlight.Len() == 0 {
		t.Fatal("baseline recorded no trace or flight data")
	}

	crashes := &faults.Schedule{Name: "controller-crashes", Events: []faults.Event{
		{AtS: 95, Kind: faults.ControllerCrash},   // before the first periodic snapshot
		{AtS: 910, Kind: faults.ControllerCrash},  // mid-horizon
		{AtS: 1730, Kind: faults.ControllerCrash}, // near the end
	}}
	res := runToCompletion(t, seed, t.TempDir(), crashes, 300, nil)
	if res.incarnations != 4 {
		t.Fatalf("incarnations = %d, want 4 (three crashes + final)", res.incarnations)
	}
	if a, b := statsJSON(t, baseStats), statsJSON(t, res.stats); !bytes.Equal(a, b) {
		t.Fatalf("stats diverged after crash-resume:\nbase    %s\nresumed %s", a, b)
	}
	if !bytes.Equal(baseLog.Bytes(), res.log) {
		t.Fatalf("decision log diverged after crash-resume:\nbase    %d bytes\nresumed %d bytes\nbase    %q\nresumed %q",
			baseLog.Len(), len(res.log), truncStr(baseLog.String()), truncStr(string(res.log)))
	}
	if !bytes.Equal(baseTrace.Bytes(), res.trace) {
		t.Fatalf("trace diverged after crash-resume: base %d bytes, resumed %d bytes",
			baseTrace.Len(), len(res.trace))
	}
	if !bytes.Equal(baseFlight.Bytes(), res.flight) {
		t.Fatalf("flight recording diverged after crash-resume: base %d bytes, resumed %d bytes",
			baseFlight.Len(), len(res.flight))
	}
}

func truncStr(s string) string {
	if len(s) > 600 {
		return s[:600] + "..."
	}
	return s
}

// cancelAfter wraps a scheduler and cancels a context after n Place
// calls — a hard kill landing at an arbitrary scheduling decision, not
// at a fault event or step boundary.
type cancelAfter struct {
	sched.Scheduler
	cancel context.CancelFunc
	n      int
}

func (c *cancelAfter) Place(st sched.ClusterView, req *sched.Request) ([]int, error) {
	c.n--
	if c.n == 0 {
		c.cancel()
	}
	return c.Scheduler.Place(st, req)
}

// TestCancelMidRunResumesByteIdentical kills the run via context
// cancellation mid-decision; the checkpoint directory must hold a fully
// valid snapshot (never a partial one) and the resumed run must land
// byte-identical to the uninterrupted baseline.
func TestCancelMidRunResumesByteIdentical(t *testing.T) {
	const seed = 23
	base := ckptConfig(seed)
	var baseLog bytes.Buffer
	base.Telemetry = telemetry.New().WithDecisions(&baseLog)
	baseStats, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := ckptConfig(seed)
	killed.Scheduler = &cancelAfter{Scheduler: killed.Scheduler, cancel: cancel, n: 25}
	killed.Checkpoint = CheckpointConfig{Dir: dir, IntervalS: 300}
	var killedLog bytes.Buffer
	killed.Telemetry = telemetry.New().WithDecisions(&killedLog)
	if _, err := Run(ctx, killed); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run returned %v, want context.Canceled", err)
	}
	// Whatever the kill interrupted, a complete snapshot generation must
	// be loadable.
	if _, _, err := persist.LatestSnapshot(dir); err != nil {
		t.Fatalf("no valid snapshot after mid-run kill: %v", err)
	}

	meta, err := PeekCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed := ckptConfig(seed)
	resumed.Checkpoint = CheckpointConfig{Dir: dir, IntervalS: 300, Resume: true}
	resLog := bytes.NewBuffer(append([]byte(nil), killedLog.Bytes()[:meta.LogBytes]...))
	resumed.Telemetry = telemetry.New().WithDecisions(resLog)
	st, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := statsJSON(t, baseStats), statsJSON(t, st); !bytes.Equal(a, b) {
		t.Fatalf("stats diverged after cancel-resume:\nbase    %s\nresumed %s", a, b)
	}
	if !bytes.Equal(baseLog.Bytes(), resLog.Bytes()) {
		t.Fatal("decision log diverged after cancel-resume")
	}
}

// TestCorruptSnapshotFallsBack flips a byte in the newest snapshot after
// a crash: resume must detect the corruption by checksum, reject that
// generation cleanly, fall back to the previous valid snapshot, and
// still finish byte-identical. The crash re-fires once (its durable
// marker lived in the discarded generation's WAL) before the run gets
// past it.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	const seed = 13
	base := ckptConfig(seed)
	var baseLog, baseTrace, baseFlight bytes.Buffer
	base.Telemetry = telemetry.New().WithDecisions(&baseLog)
	obsFor(&base, &baseTrace, &baseFlight)
	baseStats, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	crashes := &faults.Schedule{Events: []faults.Event{{AtS: 1000, Kind: faults.ControllerCrash}}}
	res := runToCompletion(t, seed, dir, crashes, 300, func(incarnation int) {
		if incarnation != 1 {
			return
		}
		snaps, err := persist.Snapshots(dir)
		if err != nil || len(snaps) == 0 {
			t.Fatalf("no snapshots to corrupt: %v", err)
		}
		path := snaps[len(snaps)-1].Path
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if res.incarnations != 3 {
		t.Fatalf("incarnations = %d, want 3 (crash, re-fired crash after fallback, final)", res.incarnations)
	}
	if a, b := statsJSON(t, baseStats), statsJSON(t, res.stats); !bytes.Equal(a, b) {
		t.Fatalf("stats diverged after corrupt-snapshot fallback:\nbase    %s\nresumed %s", a, b)
	}
	if !bytes.Equal(baseLog.Bytes(), res.log) {
		t.Fatal("decision log diverged after corrupt-snapshot fallback")
	}
}

// TestResumeRejectsMismatchedConfig: a snapshot from one seed must not
// silently resume a run configured with another.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	crashes := &faults.Schedule{Events: []faults.Event{{AtS: 500, Kind: faults.ControllerCrash}}}
	cfg := ckptConfig(29)
	cfg.Faults = crashes
	cfg.Checkpoint = CheckpointConfig{Dir: dir, IntervalS: 300}
	if _, err := Run(context.Background(), cfg); !errors.Is(err, ErrControllerCrashed) {
		t.Fatalf("got %v, want ErrControllerCrashed", err)
	}
	bad := ckptConfig(30) // different seed
	bad.Checkpoint = CheckpointConfig{Dir: dir, Resume: true}
	_, err := Run(context.Background(), bad)
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("resume with mismatched seed returned %v, want seed error", err)
	}
}

// TestCheckpointRequiresCheckpointablePredictor: enabling checkpointing
// with a predictor that cannot snapshot its learning state is a
// configuration error, not a silent fork of the learning stream.
func TestCheckpointRequiresCheckpointablePredictor(t *testing.T) {
	cfg := shortConfig(sched.NewGsight(&fixedPredictor{ipc: 99}), 5)
	cfg.Predictor = &fixedPredictor{ipc: 99}
	cfg.Checkpoint = CheckpointConfig{Dir: t.TempDir()}
	if _, err := Run(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "checkpointable") {
		t.Fatalf("got %v, want checkpointable-predictor error", err)
	}
}

// TestResumeEmptyDirStartsFresh: Resume against an empty directory runs
// the horizon from scratch (so retry loops can always pass Resume).
func TestResumeEmptyDirStartsFresh(t *testing.T) {
	cfg := ckptConfig(31)
	cfg.Checkpoint = CheckpointConfig{Dir: t.TempDir(), IntervalS: 600, Resume: true}
	st, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 60 {
		t.Fatalf("steps = %d, want 60", st.Steps)
	}
}
