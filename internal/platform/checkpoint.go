package platform

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"gsight/internal/core"
	"gsight/internal/faults"
	"gsight/internal/obs"
	"gsight/internal/perfmodel"
	"gsight/internal/persist"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/sched"
	"gsight/internal/telemetry"
	"gsight/internal/workload"
)

// Crash-consistent checkpointing (DESIGN.md §12). The platform's whole
// simulation is deterministic given its seed, so recovery does not need
// to replay effects — it re-executes them. A snapshot captures the full
// controller state at a step boundary (learned models, training
// buffers, scheduler state, RNG cursors); the WAL records every
// placement and observation made after it. Resume restores the
// snapshot and re-runs the simulation from that boundary, verifying
// each regenerated record against the WAL byte-for-byte: matching
// records prove the resumed run walks the exact path of the crashed
// one, and the first un-logged event switches the WAL to append mode.
// The result is byte-identical to the uninterrupted same-seed run no
// matter where (or how often) the controller died.

// ErrControllerCrashed reports a run killed by an injected
// controller-crash fault. When checkpointing is enabled the run can be
// resumed from disk with Config.Checkpoint.Resume.
var ErrControllerCrashed = errors.New("platform: controller crashed")

// CheckpointConfig configures crash-consistent checkpointing of a run.
type CheckpointConfig struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// IntervalS is the simulated time between snapshots; <= 0 means
	// 1800 s. Snapshots land on step boundaries.
	IntervalS float64
	// Resume continues from the latest valid snapshot in Dir (replaying
	// its WAL) instead of starting fresh. With no valid snapshot the
	// run starts fresh — so a retry loop can pass Resume
	// unconditionally.
	Resume bool
	// Keep bounds retained snapshot generations; <= 0 means 2 (the
	// newest plus one fallback).
	Keep int
	// FlushLog, when set, is called right before each snapshot so the
	// decision log's on-disk bytes cover the offset the snapshot
	// records (the caller owns the log file and its buffering).
	FlushLog func() error
}

func (c CheckpointConfig) withDefaults() CheckpointConfig {
	if c.IntervalS <= 0 {
		c.IntervalS = 1800
	}
	if c.Keep <= 0 {
		c.Keep = 2
	}
	return c
}

// deploymentCkpt is a perfmodel.Deployment's checkpoint form; the
// workload itself is rebuilt from config.
type deploymentCkpt struct {
	Placement     []int   `json:"placement"`
	Socket        []int   `json:"socket"`
	Replicas      []int   `json:"replicas"`
	QPS           float64 `json:"qps,omitempty"`
	StartDelayS   float64 `json:"start_delay_s,omitempty"`
	ColdStartFrac float64 `json:"cold_start_frac,omitempty"`
	Protected     bool    `json:"protected,omitempty"`
}

func deploymentState(d *perfmodel.Deployment) deploymentCkpt {
	return deploymentCkpt{
		Placement:     d.Placement,
		Socket:        d.Socket,
		Replicas:      d.Replicas,
		QPS:           d.QPS,
		StartDelayS:   d.StartDelayS,
		ColdStartFrac: d.ColdStartFrac,
		Protected:     d.Protected,
	}
}

func (c *deploymentCkpt) restoreInto(d *perfmodel.Deployment) error {
	n := len(d.Placement)
	if len(c.Placement) != n || len(c.Socket) != n || len(c.Replicas) != n {
		return fmt.Errorf("platform: checkpoint deployment for %s has wrong arity", d.W.Name)
	}
	copy(d.Placement, c.Placement)
	copy(d.Socket, c.Socket)
	copy(d.Replicas, c.Replicas)
	d.QPS = c.QPS
	d.StartDelayS = c.StartDelayS
	d.ColdStartFrac = c.ColdStartFrac
	d.Protected = c.Protected
	return nil
}

type serviceCkpt struct {
	Name       string            `json:"name"`
	Dep        deploymentCkpt    `json:"dep"`
	Violations int               `json:"violations"`
	Cooldown   int               `json:"cooldown"`
	Profiles   []profile.Profile `json:"profiles"`
}

type jobCkpt struct {
	ID       int            `json:"id"`
	Workload string         `json:"workload"` // SCPool workload name
	Name     string         `json:"name"`     // unique run name
	Dep      deploymentCkpt `json:"dep"`
	SLA      sched.SLA      `json:"sla"`
	QPSFrac  float64        `json:"qps_frac,omitempty"`
	// InPlacement/InReplicas are the scheduler-visible input's slices:
	// same values as the deployment's but a distinct array, preserved
	// as such.
	InPlacement []int `json:"in_placement"`
	InReplicas  []int `json:"in_replicas"`
	// PredJCTS is the admission-time JCT estimate feeding the job's
	// completion quality sample (obs; 0 when untracked).
	PredJCTS float64 `json:"pred_jct_s,omitempty"`
}

type runningCkpt struct {
	Name        string    `json:"name"`
	Class       int       `json:"class"`
	QPSFrac     float64   `json:"qps_frac,omitempty"`
	StartDelayS float64   `json:"start_delay_s,omitempty"`
	LifetimeS   float64   `json:"lifetime_s,omitempty"`
	Placement   []int     `json:"placement"`
	Replicas    []int     `json:"replicas"`
	SLA         sched.SLA `json:"sla"`
}

// stateCkpt serializes the scheduler state verbatim. Used is never
// rebuilt from Running on restore: the live vectors are the result of
// an exact sequence of adds, subtracts and clamps whose floating-point
// outcome a fresh rebuild would not reproduce bit-for-bit.
type stateCkpt struct {
	Caps    []resources.Vector `json:"caps"`
	Used    []resources.Vector `json:"used"`
	Offline []bool             `json:"offline,omitempty"`
	Running []runningCkpt      `json:"running"`
	// Sharded-state bookkeeping (DESIGN.md §14). Epochs holds the
	// per-shard commit stamps; SchedSeq the global sequence counter.
	// Absent on pre-sharding snapshots — restore then resets every
	// epoch, which is always sound (no transaction survives a restore).
	// The placer queue has no field: snapshots are taken at step
	// boundaries, where the queue is provably drained.
	Epochs   []uint64 `json:"epochs,omitempty"`
	SchedSeq uint64   `json:"sched_seq,omitempty"`
}

// ckptPayload is the platform's snapshot schema, carried opaquely by
// the persist envelope.
type ckptPayload struct {
	Seed      uint64  `json:"seed"`
	Scheduler string  `json:"scheduler"`
	DurationS float64 `json:"duration_s"`
	StepS     float64 `json:"step_s"`
	// FiredUpToS is the sim time through which events have executed;
	// -1 marks the pre-loop snapshot (nothing fired yet). The resumed
	// loop starts at FiredUpToS+StepS (or 0).
	FiredUpToS float64 `json:"fired_up_to_s"`
	Step       int     `json:"step"`

	Rnd      [4]uint64 `json:"rnd"`
	Noise    [4]uint64 `json:"noise"`
	Arrivals []float64 `json:"arrivals,omitempty"` // submissions still ahead

	Services   []serviceCkpt                `json:"services"`
	Jobs       []jobCkpt                    `json:"jobs,omitempty"`
	SCProfiles map[string][]profile.Profile `json:"sc_profiles,omitempty"`

	Stepper  perfmodel.StepperState `json:"stepper"`
	State    stateCkpt              `json:"state"`
	Injector faults.InjectorState   `json:"injector"`

	Degraded       bool    `json:"degraded,omitempty"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	DegradedSinceS float64 `json:"degraded_since_s,omitempty"`

	Stats     *Stats          `json:"stats"`
	Predictor json.RawMessage `json:"predictor,omitempty"`

	LogSeq   uint64 `json:"log_seq"`
	LogBytes int64  `json:"log_bytes"`

	// Obs is the observability recorder's position (stream offsets plus
	// the prediction-quality tracker), absent when obs is disabled.
	Obs json.RawMessage `json:"obs,omitempty"`
}

// walRecord is one WAL entry: a placement decision, an online-learning
// observation, or the marker a controller-crash leaves behind so the
// resumed run knows the crash was already taken.
type walRecord struct {
	T         string  `json:"t"` // "place", "obs", "crash"
	SimS      float64 `json:"sim_s"`
	Name      string  `json:"name,omitempty"`
	Placement []int   `json:"placement,omitempty"`
	Rejected  bool    `json:"rejected,omitempty"`
	Kind      string  `json:"kind,omitempty"`
	Target    int     `json:"target,omitempty"`
	Label     float64 `json:"label,omitempty"`
}

// checkpointer drives snapshots, the WAL, and replay verification for
// one runner.
type checkpointer struct {
	r   *runner
	cfg CheckpointConfig

	seq       uint64 // generation of the newest snapshot on disk
	lastSnapS float64
	wal       *persist.WAL
	// queue holds the crashed incarnation's surviving WAL records; while
	// non-empty the run is replaying and every regenerated record is
	// verified against the head instead of appended.
	queue [][]byte
}

// newCheckpointer validates the configuration and prepares dir.
func newCheckpointer(r *runner) (*checkpointer, error) {
	cfg := r.cfg.Checkpoint.withDefaults()
	if r.cfg.Predictor != nil {
		if _, ok := r.cfg.Predictor.(core.Checkpointable); !ok {
			return nil, fmt.Errorf("platform: checkpointing requires a checkpointable predictor, %T is not", r.cfg.Predictor)
		}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("platform: checkpoint dir: %w", err)
	}
	return &checkpointer{r: r, cfg: cfg}, nil
}

// close releases the WAL handle, preserving the first error.
func (c *checkpointer) close() {
	if c.wal != nil {
		c.wal.Close()
		c.wal = nil
	}
}

// replaying reports whether crashed-incarnation records remain to be
// verified.
func (c *checkpointer) replaying() bool { return len(c.queue) > 0 }

// fail aborts the run with a checkpoint/replay error.
func (c *checkpointer) fail(err error) {
	if c.r.ckErr == nil {
		c.r.ckErr = err
	}
	c.r.cancel()
}

// note verifies rec against the replay queue, or appends it to the WAL
// once the queue has drained. Any mismatch means the resumed run
// diverged from the crashed one — a corrupt snapshot the checksum
// missed, or changed config — and aborts rather than silently forking
// history.
func (c *checkpointer) note(rec *walRecord) {
	data, err := json.Marshal(rec)
	if err != nil {
		c.fail(fmt.Errorf("platform: wal record: %w", err))
		return
	}
	if c.replaying() {
		if !bytes.Equal(c.queue[0], data) {
			c.fail(fmt.Errorf("platform: resume diverged from WAL at sim time %g: logged %s, regenerated %s",
				rec.SimS, c.queue[0], data))
			return
		}
		c.queue = c.queue[1:]
		return
	}
	if c.wal == nil {
		return // fresh run before the first snapshot: nothing to log yet
	}
	if err := c.wal.Append(data); err != nil {
		c.fail(fmt.Errorf("platform: wal append: %w", err))
		return
	}
	c.r.ins.WALRecords.Inc()
}

func (c *checkpointer) notePlacement(simS float64, name string, placement []int, rejected bool) {
	c.note(&walRecord{T: "place", SimS: simS, Name: name, Placement: placement, Rejected: rejected})
}

func (c *checkpointer) noteObservation(simS float64, kind string, target int, label float64) {
	c.note(&walRecord{T: "obs", SimS: simS, Kind: kind, Target: target, Label: label})
}

// consumeCrash handles a controller-crash fault op during replay: the
// crashed incarnation's WAL ends with a crash marker, and popping it
// here is what stops the resumed run from dying at the same event
// forever. It reports whether the crash was already taken.
func (c *checkpointer) consumeCrash(simS float64) bool {
	if !c.replaying() {
		return false
	}
	data, err := json.Marshal(&walRecord{T: "crash", SimS: simS})
	if err != nil || !bytes.Equal(c.queue[0], data) {
		c.fail(fmt.Errorf("platform: resume diverged from WAL at controller-crash, sim time %g", simS))
		return true // aborting; do not crash again
	}
	c.queue = c.queue[1:]
	return true
}

// recordCrash durably marks a crash being taken: the marker is the last
// record the dying incarnation writes, fsynced before the run unwinds.
func (c *checkpointer) recordCrash(simS float64) {
	if c.wal == nil {
		return
	}
	data, err := json.Marshal(&walRecord{T: "crash", SimS: simS})
	if err == nil {
		err = c.wal.Append(data)
	}
	if err == nil {
		err = c.wal.Sync()
	}
	if err != nil {
		c.fail(fmt.Errorf("platform: crash marker: %w", err))
	}
}

// maybeSnapshot writes a snapshot when the interval has elapsed. It
// never snapshots mid-replay: the WAL generation on disk still
// describes spans the resumed run has not re-verified.
func (c *checkpointer) maybeSnapshot(now float64, step int) error {
	if c.replaying() || now-c.lastSnapS < c.cfg.IntervalS {
		return nil
	}
	return c.snapshot(now, step)
}

// snapshot captures the runner at a boundary (firedUpTo = -1 before the
// loop), writes generation seq+1 atomically, rotates the WAL and prunes
// old generations.
func (c *checkpointer) snapshot(firedUpTo float64, step int) error {
	span := telemetry.StartSpan(c.r.ins.CheckpointSeconds)
	if c.cfg.FlushLog != nil {
		if err := c.cfg.FlushLog(); err != nil {
			return fmt.Errorf("platform: checkpoint flush log: %w", err)
		}
	}
	payload, err := c.r.capturePayload(firedUpTo, step)
	if err != nil {
		return err
	}
	if c.wal != nil {
		if err := c.wal.Close(); err != nil {
			return fmt.Errorf("platform: wal close: %w", err)
		}
		c.wal = nil
	}
	next := c.seq + 1
	if _, err := persist.WriteSnapshot(c.cfg.Dir, next, payload); err != nil {
		return fmt.Errorf("platform: checkpoint: %w", err)
	}
	wal, err := persist.CreateWAL(persist.WALPath(c.cfg.Dir, next))
	if err != nil {
		return fmt.Errorf("platform: checkpoint: %w", err)
	}
	c.wal = wal
	c.seq = next
	if c.seq > uint64(c.cfg.Keep) {
		if err := persist.PruneCheckpoints(c.cfg.Dir, c.seq-uint64(c.cfg.Keep)+1); err != nil {
			return err
		}
	}
	if firedUpTo > 0 {
		c.lastSnapS = firedUpTo
	}
	c.r.ins.Checkpoints.Inc()
	span.End()
	return nil
}

// capturePayload serializes the runner's full state at a boundary.
func (r *runner) capturePayload(firedUpTo float64, step int) ([]byte, error) {
	// The profile cache serializes in its historical map form: JSON
	// object keys marshal sorted, so the snapshot bytes stay identical
	// to the map-backed cache's.
	var scp map[string][]profile.Profile
	for i := range r.scPool {
		if r.scPool[i].ps == nil {
			continue
		}
		if scp == nil {
			scp = make(map[string][]profile.Profile, len(r.scPool))
		}
		scp[r.scPool[i].w.Name] = r.scPool[i].ps
	}
	p := ckptPayload{
		Seed:       r.cfg.Seed,
		Scheduler:  r.cfg.Scheduler.Name(),
		DurationS:  r.cfg.DurationS,
		StepS:      r.cfg.StepS,
		FiredUpToS: firedUpTo,
		Step:       step,
		Rnd:        r.rnd.State(),
		Noise:      r.noise.State(),
		Stepper:    r.stepper.ExportState(),
		Injector:   r.inj.ExportState(),
		SCProfiles: scp,
		Degraded:   r.degraded,
		Stats:      r.stats,
	}
	if r.degraded {
		p.DegradedReason = r.degradedReason
		p.DegradedSinceS = r.degradedSince
	}
	for _, t := range r.arrivals {
		if t > firedUpTo {
			p.Arrivals = append(p.Arrivals, t)
		}
	}
	for _, ss := range r.services {
		p.Services = append(p.Services, serviceCkpt{
			Name:       ss.svc.W.Name,
			Dep:        deploymentState(ss.dep),
			Violations: ss.violations,
			Cooldown:   ss.cooldown,
			Profiles:   ss.profiles,
		})
	}
	for _, a := range r.activeSC {
		p.Jobs = append(p.Jobs, jobCkpt{
			ID:          a.id,
			Workload:    a.dep.W.Name,
			Name:        a.input.Name,
			Dep:         deploymentState(a.dep),
			SLA:         a.sla,
			QPSFrac:     a.input.QPSFrac,
			InPlacement: a.input.Placement,
			InReplicas:  a.input.Replicas,
			PredJCTS:    a.predJCTS,
		})
	}
	p.State = stateCkpt{
		Caps:     r.state.Base().Caps,
		Used:     r.state.Base().Used,
		Offline:  r.state.Base().Offline,
		Epochs:   r.state.RawEpochs(),
		SchedSeq: r.state.Seq(),
	}
	for _, d := range r.state.Base().Running {
		p.State.Running = append(p.State.Running, runningCkpt{
			Name:        d.Input.Name,
			Class:       int(d.Input.Class),
			QPSFrac:     d.Input.QPSFrac,
			StartDelayS: d.Input.StartDelayS,
			LifetimeS:   d.Input.LifetimeS,
			Placement:   d.Input.Placement,
			Replicas:    d.Input.Replicas,
			SLA:         d.SLA,
		})
	}
	if r.cfg.Predictor != nil {
		raw, err := r.cfg.Predictor.(core.Checkpointable).CheckpointState()
		if err != nil {
			return nil, fmt.Errorf("platform: checkpoint predictor: %w", err)
		}
		p.Predictor = raw
	}
	if r.ins.Decisions != nil {
		p.LogSeq, p.LogBytes = r.ins.Decisions.Offset()
	}
	if r.obs != nil {
		raw, err := r.obs.CheckpointState()
		if err != nil {
			return nil, fmt.Errorf("platform: checkpoint obs: %w", err)
		}
		p.Obs = raw
	}
	return json.Marshal(&p)
}

// resume loads the latest valid snapshot and WAL from the checkpoint
// directory and rebuilds the runner mid-horizon. It reports
// persist.ErrNoSnapshot when the directory has nothing to resume from.
func (r *runner) resume() error {
	c := r.ck
	payload, seq, err := persist.LatestSnapshot(c.cfg.Dir)
	if err != nil {
		return err
	}
	var p ckptPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return fmt.Errorf("platform: checkpoint payload: %w", err)
	}
	if err := r.restorePayload(&p); err != nil {
		return err
	}
	walPath := persist.WALPath(c.cfg.Dir, seq)
	records, validLen, err := persist.ReplayWAL(walPath)
	if err != nil {
		return err
	}
	wal, err := persist.OpenWALAppend(walPath, validLen)
	if err != nil {
		return err
	}
	c.wal = wal
	c.queue = records
	c.seq = seq
	if p.FiredUpToS > 0 {
		c.lastSnapS = p.FiredUpToS
	}
	r.ins.Resumes.Inc()
	return nil
}

// restorePayload rebuilds the runner from a snapshot payload: every
// structure the step loop reads is either restored verbatim or
// reconstructed deterministically, so the next step computes exactly
// what the uninterrupted run's would have.
func (r *runner) restorePayload(p *ckptPayload) error {
	cfg := &r.cfg
	if p.Seed != cfg.Seed {
		return fmt.Errorf("platform: checkpoint seed %d, run configured with %d", p.Seed, cfg.Seed)
	}
	if p.Scheduler != cfg.Scheduler.Name() {
		return fmt.Errorf("platform: checkpoint scheduler %q, run configured with %q", p.Scheduler, cfg.Scheduler.Name())
	}
	if p.StepS != cfg.StepS || p.DurationS != cfg.DurationS {
		return fmt.Errorf("platform: checkpoint horizon (%g/%g s) does not match config (%g/%g s)",
			p.StepS, p.DurationS, cfg.StepS, cfg.DurationS)
	}
	numServers := r.m.Testbed.NumServers()
	if len(p.State.Caps) != numServers || len(p.State.Used) != numServers {
		return fmt.Errorf("platform: checkpoint cluster size %d, testbed has %d servers", len(p.State.Caps), numServers)
	}
	if p.Stats == nil {
		return fmt.Errorf("platform: checkpoint has no stats")
	}
	rnd, err := rng.FromState(p.Rnd)
	if err != nil {
		return fmt.Errorf("platform: checkpoint rng: %w", err)
	}
	noise, err := rng.FromState(p.Noise)
	if err != nil {
		return fmt.Errorf("platform: checkpoint noise rng: %w", err)
	}
	r.rnd, r.noise = rnd, noise

	// Resident services: order and identity must match the config.
	if len(p.Services) != len(cfg.Services) {
		return fmt.Errorf("platform: checkpoint has %d services, config has %d", len(p.Services), len(cfg.Services))
	}
	r.services = make([]*serviceState, 0, len(cfg.Services))
	for i := range cfg.Services {
		svc := cfg.Services[i]
		sc := &p.Services[i]
		if sc.Name != svc.W.Name {
			return fmt.Errorf("platform: checkpoint service %d is %q, config has %q", i, sc.Name, svc.W.Name)
		}
		if len(sc.Profiles) != len(svc.W.Functions) {
			return fmt.Errorf("platform: checkpoint service %q has %d profiles for %d functions",
				sc.Name, len(sc.Profiles), len(svc.W.Functions))
		}
		dep := perfmodel.NewDeployment(svc.W)
		if err := sc.Dep.restoreInto(dep); err != nil {
			return err
		}
		if err := r.stepper.AddLS(dep); err != nil {
			return err
		}
		r.services = append(r.services, &serviceState{
			svc: svc, dep: dep, profiles: sc.Profiles,
			violations: sc.Violations, cooldown: sc.Cooldown,
		})
	}

	// Batch jobs: rebuilt from the SC pool's workload definitions. The
	// cached profiles land back in their pool entries; jobs were
	// serialized ascending by id, so appends restore the activeSC order
	// invariant.
	pool := map[string]int{}
	for i, w := range cfg.SCPool {
		pool[w.Name] = i
	}
	for name, ps := range p.SCProfiles {
		if pi, ok := pool[name]; ok {
			r.scPool[pi].ps = ps
		}
	}
	deps := make(map[int]*perfmodel.Deployment, len(p.Jobs))
	for i := range p.Jobs {
		jc := &p.Jobs[i]
		pi, ok := pool[jc.Workload]
		if !ok {
			return fmt.Errorf("platform: checkpoint job %q uses workload %q not in the SC pool", jc.Name, jc.Workload)
		}
		pe := &r.scPool[pi]
		if pe.ps == nil {
			return fmt.Errorf("platform: checkpoint job %q has no cached profiles", jc.Name)
		}
		dep := perfmodel.NewDeployment(pe.w)
		if err := jc.Dep.restoreInto(dep); err != nil {
			return err
		}
		in := core.WorkloadInput{
			Name:      jc.Name,
			Class:     pe.w.Class,
			Profiles:  pe.ps,
			Placement: jc.InPlacement,
			Replicas:  jc.InReplicas,
			QPSFrac:   jc.QPSFrac,
			LifetimeS: pe.w.SoloDurationS,
		}
		r.activeSC = append(r.activeSC, &scActive{id: jc.ID, pool: pi, input: in, sla: jc.SLA, dep: dep, predJCTS: jc.PredJCTS})
		deps[jc.ID] = dep
	}
	if err := r.stepper.RestoreState(p.Stepper, deps); err != nil {
		return err
	}

	// Scheduler state, verbatim.
	st := r.state.Base()
	copy(st.Caps, p.State.Caps)
	copy(st.Used, p.State.Used)
	if p.State.Offline != nil {
		if len(p.State.Offline) != numServers {
			return fmt.Errorf("platform: checkpoint offline mask has %d entries for %d servers", len(p.State.Offline), numServers)
		}
		st.Offline = append([]bool(nil), p.State.Offline...)
	}
	st.Running = st.Running[:0]
	for i := range p.State.Running {
		rc := &p.State.Running[i]
		var ps []profile.Profile
		if ss := r.serviceByName(rc.Name); ss != nil {
			ps = ss.profiles
		} else if base, ok := core.BaseName(rc.Name); ok {
			for pi := range r.scPool {
				if r.scPool[pi].w.Name == base {
					ps = r.scPool[pi].ps
					break
				}
			}
		}
		if ps == nil {
			return fmt.Errorf("platform: checkpoint running workload %q has no profiles", rc.Name)
		}
		st.Running = append(st.Running, sched.Deployed{
			Input: core.WorkloadInput{
				Name:        rc.Name,
				Class:       workload.Class(rc.Class),
				Profiles:    ps,
				Placement:   rc.Placement,
				Replicas:    rc.Replicas,
				QPSFrac:     rc.QPSFrac,
				StartDelayS: rc.StartDelayS,
				LifetimeS:   rc.LifetimeS,
			},
			SLA: rc.SLA,
		})
	}

	// The surgery above bypassed the counted caches; rebuild them, then
	// put the shard epochs back exactly as captured (nil Epochs — a
	// pre-sharding snapshot — degrades to a reset, which is sound).
	st.Recount()
	r.state.RestoreEpochs(p.State.Epochs, p.State.SchedSeq)

	// Fault state: the injector's live view, plus its side effects on
	// the model and the (already restored) capacity vectors.
	if err := r.inj.RestoreState(p.Injector); err != nil {
		return err
	}
	for s, f := range p.Injector.Slow {
		r.m.SetCapacityScale(s, f)
	}
	r.degraded = p.Degraded
	r.degradedReason = p.DegradedReason
	r.degradedSince = p.DegradedSinceS
	r.stats = p.Stats
	if r.stats.SLAOK == nil {
		r.stats.SLAOK = make(map[string][]bool)
	}
	if r.stats.JCTs == nil {
		r.stats.JCTs = make(map[string][]float64)
	}

	// Event timeline: set the clock past everything already fired, then
	// re-register what is still ahead — faults before arrivals, exactly
	// like the fresh path, so simultaneous events keep their order.
	if p.FiredUpToS >= 0 {
		r.engine.RunUntil(p.FiredUpToS)
	}
	r.arrivals = p.Arrivals
	r.scheduleFaults(p.FiredUpToS)
	r.registerArrivals(p.FiredUpToS)

	if r.ins.Decisions != nil {
		r.ins.Decisions.Rewind(p.LogSeq, p.LogBytes)
	}
	if r.obs != nil {
		// The caller owns the stream files and truncated them to the
		// offsets PeekCheckpoint reported; rewinding the counters makes
		// the resumed streams continue byte-identically.
		if err := r.obs.RestoreCheckpoint(p.Obs); err != nil {
			return fmt.Errorf("platform: checkpoint obs: %w", err)
		}
	}
	if cfg.Predictor != nil {
		if len(p.Predictor) == 0 {
			return fmt.Errorf("platform: checkpoint has no predictor state but a predictor is attached")
		}
		if err := cfg.Predictor.(core.Checkpointable).RestoreCheckpoint(p.Predictor); err != nil {
			return err
		}
	}
	if p.FiredUpToS >= 0 {
		r.startS = p.FiredUpToS + cfg.StepS
	}
	r.startStep = p.Step
	return nil
}

// serviceByName finds a resident service's runtime state.
func (r *runner) serviceByName(name string) *serviceState {
	for _, ss := range r.services {
		if ss.svc.W.Name == name {
			return ss
		}
	}
	return nil
}

// CheckpointMeta is the latest resumable position in a checkpoint
// directory. Callers use it before a resume to decide whether to skip
// bootstrap work and to truncate an external decision-log file to the
// recorded offset.
type CheckpointMeta struct {
	Seq       uint64
	SimTimeS  float64 // sim time through which the snapshot's events ran
	Step      int
	Seed      uint64
	Scheduler string
	LogSeq    uint64
	LogBytes  int64
	// Observability stream offsets (zero when the snapshot carried no
	// obs state): resuming truncates the trace file to TraceBytes and
	// the flight recording to FlightBytes before reopening them.
	TraceEvents  uint64
	TraceBytes   int64
	FlightFrames uint64
	FlightBytes  int64
}

// PeekCheckpoint reads the latest valid snapshot's metadata.
func PeekCheckpoint(dir string) (*CheckpointMeta, error) {
	payload, seq, err := persist.LatestSnapshot(dir)
	if err != nil {
		return nil, err
	}
	var p ckptPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("platform: checkpoint payload: %w", err)
	}
	ost, err := obs.DecodeState(p.Obs)
	if err != nil {
		return nil, fmt.Errorf("platform: checkpoint obs state: %w", err)
	}
	return &CheckpointMeta{
		Seq:          seq,
		SimTimeS:     p.FiredUpToS,
		Step:         p.Step,
		Seed:         p.Seed,
		Scheduler:    p.Scheduler,
		LogSeq:       p.LogSeq,
		LogBytes:     p.LogBytes,
		TraceEvents:  ost.TraceEvents,
		TraceBytes:   ost.TraceBytes,
		FlightFrames: ost.FlightFrames,
		FlightBytes:  ost.FlightBytes,
	}, nil
}

// controllerCrash takes (or replays) an injected controller-crash: on
// the first encounter it durably marks the crash and kills the run with
// ErrControllerCrashed; when the resumed run re-reaches the event, the
// WAL marker turns it into a no-op. The op is invisible in every output
// (no counters, no decision events, no RNG draws), so a crashed-and-
// resumed run stays byte-identical to one that never crashed.
func (r *runner) controllerCrash() {
	if r.ck != nil {
		if r.ck.consumeCrash(r.engine.Now()) {
			return
		}
		r.ck.recordCrash(r.engine.Now())
	}
	r.crashed = true
	r.cancel()
}
