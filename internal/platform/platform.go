// Package platform simulates an OpenFaaS-style serverless platform over
// the model testbed for the paper's scheduling case study (§6.3):
// trace-driven latency-sensitive services with autoscaling, arriving
// SC/BG jobs, a pluggable scheduler, ground-truth QoS from the
// performance model, and SLA monitoring with reactive spreading on
// persistent violations. It produces the density/utilization series of
// Figure 11, the SLA guarantee ratios of Figure 12 and the operational
// counters behind Figure 14.
//
// The platform is resilient by construction (DESIGN.md §11): an
// optional fault schedule injects node crashes, stragglers, cold-start
// storms and predictor outages; placement calls get bounded retries
// with capped backoff; services displaced by a crash are re-placed
// through the scheduler; and when the predictor is unavailable or
// untrained the platform degrades to a capacity-based fallback policy
// and records the degraded interval instead of failing the run.
package platform

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"gsight/internal/core"
	"gsight/internal/faults"
	"gsight/internal/obs"
	"gsight/internal/perfmodel"
	"gsight/internal/persist"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/sched"
	"gsight/internal/sim"
	"gsight/internal/telemetry"
	"gsight/internal/trace"
	"gsight/internal/workload"
)

// LSService describes one long-running latency-sensitive service.
type LSService struct {
	W       *workload.Workload
	Pattern trace.Pattern
	// SLA is the admission contract (IPC floor from the Figure 7
	// transform); the runtime check still uses the raw p99 target.
	SLA sched.SLA
}

// RetryPolicy bounds the platform's placement retries on transient
// scheduler errors. Deterministic rejections (sched.ErrNoPlacement)
// and predictor-degradation signals (core.ErrNotTrained,
// core.ErrUnavailable) are never retried — the former cannot change,
// the latter route to the fallback policy. Backoff is wall clock only
// and never enters the decision log, so retries cannot break same-seed
// byte-identity.
type RetryPolicy struct {
	// MaxAttempts per placement call; <= 0 means 3.
	MaxAttempts int
	// BaseBackoff doubles per failed attempt up to MaxBackoff;
	// <= 0 means 1ms base and 16ms cap.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Timeout caps one placement call's total wall clock including
	// retries; <= 0 means 500ms.
	Timeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 16 * time.Millisecond
	}
	if p.Timeout <= 0 {
		p.Timeout = 500 * time.Millisecond
	}
	return p
}

// Config parameterizes a platform run.
type Config struct {
	Model     *perfmodel.Model
	Scheduler sched.Scheduler
	// Services are the resident LS workloads.
	Services []LSService
	// SCPool are the batch jobs submitted over time.
	SCPool []*workload.Workload
	// SCMeanIntervalS is the mean seconds between job submissions.
	SCMeanIntervalS float64
	// DurationS and StepS control the simulated horizon.
	DurationS float64
	StepS     float64
	// ViolationPatience is how many consecutive SLA-violating steps
	// trigger a reactive spread of the worst function.
	ViolationPatience int
	Seed              uint64
	// Predictor, when set, receives online observations (incremental
	// learning during operation).
	Predictor core.QoSPredictor
	// ObserveEvery throttles online observations (steps).
	ObserveEvery int
	// Telemetry, when set, receives runtime metrics and reactive-control
	// decision events. telemetry.Nop (nil) leaves the run bit-identical.
	Telemetry *telemetry.Sink
	// Obs, when set, records the run's observability streams:
	// invocation-lifecycle trace, flight recording and prediction-quality
	// tracking (DESIGN.md §13). nil disables all of it and keeps the
	// steady-state step loop allocation-free.
	Obs *obs.Recorder
	// Faults injects a deterministic fault schedule (crashes,
	// stragglers, cold-start storms, predictor outages); nil runs a
	// healthy cluster.
	Faults *faults.Schedule
	// Fallback serves placements while degraded (predictor unavailable
	// or untrained, or persistent scheduler failure); nil means
	// sched.NewWorstFit().
	Fallback sched.Scheduler
	// Retry bounds placement retries on transient scheduler errors.
	Retry RetryPolicy
	// Checkpoint enables crash-consistent snapshots and recovery
	// (DESIGN.md §12); the zero value disables it.
	Checkpoint CheckpointConfig
	// Shards partitions the scheduler state's epoch bookkeeping
	// (DESIGN.md §14). <= 1 is a single shard — exact legacy behavior.
	// Placement outcomes are shard-count-independent either way; shards
	// only change conflict-detection granularity under concurrent
	// placers.
	Shards int
	// Placers drains the initial service deployment through a
	// concurrent placer pool when > 1. Requires SchedulerFactory (each
	// worker needs its own scheduler instance); results are
	// byte-identical to the serial path at any worker count.
	Placers int
	// SchedulerFactory builds per-worker schedulers for the placer
	// pool. Ignored when Placers <= 1.
	SchedulerFactory func() sched.Scheduler
}

// DegradedInterval is a [StartS, EndS) window of simulation time the
// platform spent placing through the fallback policy.
type DegradedInterval struct {
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	Reason string  `json:"reason"`
}

// Stats aggregates a run's outcomes.
type Stats struct {
	SchedulerName string
	// Per-step series (Figure 11 CDFs are built from these).
	Density []float64 // function instances per active core
	CPUUtil []float64 // demand / capacity over active servers
	MemUtil []float64 // allocated memory / capacity over active servers
	// GoodDensity discounts each step's density by the fraction of LS
	// services inside their SLA — density is only worth what it does
	// not cost in QoS ("improve function density while guaranteeing
	// the QoS", the paper's abstract).
	GoodDensity []float64
	// ActiveServers is the per-step count of servers with any load.
	ActiveServers []float64
	// SLAOK[name] marks the steps whose measured p99 honoured the SLA
	// (Figure 12).
	SLAOK map[string][]bool
	// JCTs of completed batch jobs by workload name.
	JCTs map[string][]float64
	// Operational counters (Figure 14 inputs).
	ColdStarts     int
	Migrations     int // reactive moves after persistent SLA violations
	Reschedules    int // placement changes during scale-out
	Placements     int
	RejectedJobs   int
	SchedulingTime time.Duration // wall-clock spent in Place()
	Steps          int
	// Invocations is the total LS invocation volume replayed: the
	// per-step sampled QPS of every service integrated over step
	// widths. Soak runs report it in millions per simulated day.
	Invocations float64
	// Resilience counters (zero on healthy runs).
	FaultEvents        int // injected fault transitions applied
	DisplacedServices  int // services re-placed off crashed nodes
	DisplacedJobs      int // batch jobs moved off crashed nodes
	DegradedPlacements int // placements served by the fallback policy
	DegradedSteps      int // steps spent in degraded mode
	PlacementRetries   int // placement attempts retried
	// Degraded lists the degraded-mode windows of the run.
	Degraded []DegradedInterval
}

// SLARatio returns the fraction of steps within SLA for a service.
func (s *Stats) SLARatio(name string) float64 {
	oks := s.SLAOK[name]
	if len(oks) == 0 {
		return 0
	}
	n := 0
	for _, ok := range oks {
		if ok {
			n++
		}
	}
	return float64(n) / float64(len(oks))
}

// serviceState is the platform's runtime record of one LS service.
type serviceState struct {
	svc      LSService
	dep      *perfmodel.Deployment
	profiles []profile.Profile
	// in is the persistent scheduler-visible input, re-synced from the
	// deployment at every site that used to build a fresh one; obsIn is
	// a second persistent copy handed to the online learner, kept
	// separate so feeding the predictor mid-step cannot retro-mutate
	// the values committed to the scheduler state.
	in         core.WorkloadInput
	obsIn      core.WorkloadInput
	violations int
	// cooldown pins the placement for a while after a reactive
	// spread, so a scheduler whose predictions caused the violation
	// cannot immediately re-pack into the same hotspot. Accurate
	// predictors rarely violate and therefore keep their packing
	// freedom — the mechanism that turns prediction quality into
	// density (Figure 11).
	cooldown int
}

// Degradation reasons recorded on intervals and transition events.
const (
	reasonUnavailable = "predictor-unavailable"
	reasonUntrained   = "predictor-untrained"
)

// runner is the mutable state of one platform run. Run builds it,
// drives the step loop, and returns its stats.
type runner struct {
	cfg      Config
	ctx      context.Context
	m        *perfmodel.Model
	stepper  *perfmodel.Stepper
	state    *sched.ShardedState
	baseCaps []resources.Vector
	spec     resources.ServerSpec
	noise    *rng.Rand
	rnd      *rng.Rand

	services []*serviceState
	// activeSC is the running batch jobs in ascending submission id —
	// the iteration order every deterministic consumer needs, held as
	// an invariant instead of re-sorting a map per step (ids only grow,
	// so appends keep it sorted).
	activeSC []*scActive
	// scPool caches one run-local workload clone + lazily computed
	// profiles per SC pool entry, indexed by pool position.
	scPool []scPoolEntry
	// jobFree recycles completed jobs' records (deployment + input
	// arrays) per pool entry, so steady-state submission allocates only
	// the unique run name.
	jobFree [][]*scActive

	engine   sim.Engine
	inj      *faults.Injector
	fallback sched.Scheduler
	retry    RetryPolicy

	// Checkpointing state: cancel kills the run from inside an event
	// (controller crash, replay divergence); arrivals keeps the full
	// submission timeline so snapshots can record what is still ahead;
	// startS/startStep relocate the loop after a resume.
	ck        *checkpointer
	cancel    context.CancelFunc
	crashed   bool
	ckErr     error
	arrivals  []float64
	startS    float64
	startStep int

	degraded       bool
	degradedReason string
	degradedSince  float64

	stats *Stats
	ins   telemetry.PlatformInstruments
	rev   telemetry.ReactiveAction     // reusable reactive decision event
	fev   telemetry.FaultEvent         // reusable fault decision event
	dev   telemetry.DegradedTransition // reusable degraded decision event
	drev  telemetry.DriftEvent         // reusable drift decision event

	// Observability (nil when disabled): obsDetail is the reusable
	// placement-detail out-parameter wired into requests, viaFallback
	// marks the last placement as fallback-served for outcome labeling,
	// and flFrame is the reusable flight-recorder frame.
	obs         *obs.Recorder
	obsDetail   sched.PlacementDetail
	viaFallback bool
	flFrame     obs.Frame

	// Per-step scratch, reused so the steady-state loop allocates
	// nothing: the noise child generator, the online-learning input
	// snapshot, and the cached submit callback.
	noiseChild rng.Rand
	snapBuf    []core.WorkloadInput
	submitFn   func()
	reqBuf     sched.Request // schedulers never retain the request
}

// scPoolEntry is the runner's per-pool-workload cache: a run-local
// clone of the workload (so concurrent runs never share state with the
// caller's catalog) and its lazily computed profiles. Profiling stays
// lazy — the rng split happens at the first submission of the entry,
// exactly where the map-keyed cache drew it.
type scPoolEntry struct {
	w  *workload.Workload
	ps []profile.Profile
	// proto is a pristine NewDeployment of w, the reset template for
	// recycled job records.
	proto *perfmodel.Deployment
}

// Run executes the simulation and returns its stats. A nil ctx means
// context.Background(); cancellation returns the context's error with
// the run's partial state discarded. With Config.Checkpoint enabled,
// an injected controller-crash returns ErrControllerCrashed and a
// subsequent Run with Checkpoint.Resume continues the horizon from
// disk, byte-identical to the uninterrupted same-seed run.
func Run(ctx context.Context, cfg Config) (*Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.StepS <= 0 {
		cfg.StepS = 30
	}
	if cfg.DurationS <= 0 {
		cfg.DurationS = 86400
	}
	if cfg.ViolationPatience <= 0 {
		cfg.ViolationPatience = 3
	}
	if cfg.ObserveEvery <= 0 {
		cfg.ObserveEvery = 10
	}
	fallback := cfg.Fallback
	if fallback == nil {
		fallback = sched.NewWorstFit()
	}
	m := cfg.Model
	inj, err := faults.NewInjector(cfg.Faults, m.Testbed.NumServers())
	if err != nil {
		return nil, err
	}
	state := sched.ShardedStateFromProfiles(m.Testbed.Servers[0], m.Testbed.NumServers(), cfg.Shards)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &runner{
		cfg:      cfg,
		ctx:      runCtx,
		cancel:   cancel,
		m:        m,
		stepper:  m.NewStepper(),
		state:    state,
		baseCaps: append([]resources.Vector(nil), state.Base().Caps...),
		spec:     m.Testbed.Servers[0],
		noise:    rng.Stream(cfg.Seed, "platform-noise"),
		rnd:      rng.Stream(cfg.Seed, "platform"),
		inj:      inj,
		fallback: fallback,
		retry:    cfg.Retry.withDefaults(),
		stats: &Stats{
			SchedulerName: cfg.Scheduler.Name(),
			SLAOK:         make(map[string][]bool),
			JCTs:          make(map[string][]float64),
		},
		ins: cfg.Telemetry.Platform(),
		obs: cfg.Obs,
	}
	r.engine.Instrument(cfg.Telemetry)
	r.submitFn = r.submitJob
	r.scPool = make([]scPoolEntry, len(cfg.SCPool))
	r.jobFree = make([][]*scActive, len(cfg.SCPool))
	for i, w := range cfg.SCPool {
		wc := w.Clone()
		r.scPool[i] = scPoolEntry{w: wc, proto: perfmodel.NewDeployment(wc)}
	}
	if cfg.Checkpoint.Dir != "" {
		ck, err := newCheckpointer(r)
		if err != nil {
			return nil, err
		}
		r.ck = ck
		defer ck.close()
	}
	resumed := false
	if r.ck != nil && cfg.Checkpoint.Resume {
		switch err := r.resume(); {
		case err == nil:
			resumed = true
		case errors.Is(err, persist.ErrNoSnapshot):
			// Nothing to resume from yet: start fresh, so retry loops
			// can pass Resume unconditionally.
		default:
			return nil, err
		}
	}
	if !resumed {
		if err := r.deployServices(); err != nil {
			return nil, err
		}
		r.scheduleFaults(-1)
		r.scheduleArrivals()
		if r.ck != nil {
			// The pre-loop snapshot makes even a crash in the very first
			// interval resumable.
			if err := r.ck.snapshot(-1, 0); err != nil {
				return nil, err
			}
		}
	}
	if err := r.loop(); err != nil {
		return nil, err
	}
	return r.stats, nil
}

// deployServices places the resident services through the scheduler —
// serially by default, or through a concurrent placer pool when
// Config.Placers > 1 (byte-identical results either way; see
// DESIGN.md §14).
func (r *runner) deployServices() error {
	r.services = make([]*serviceState, 0, len(r.cfg.Services))
	for _, svc := range r.cfg.Services {
		ps := profile.WorkloadProfiles(svc.W, r.spec, r.rnd.Split())
		dep := perfmodel.NewDeployment(svc.W)
		for f := range dep.Socket {
			dep.Socket[f] = -1
		}
		dep.QPS = svc.Pattern.RateAt(0)
		for f := range dep.Replicas {
			dep.Replicas[f] = perfmodel.LSReplicasFor(svc.W, f, dep.QPS*1.1)
		}
		r.services = append(r.services, &serviceState{svc: svc, dep: dep, profiles: ps})
	}
	// The pool commits internally, bypassing the per-placement WAL,
	// the decision log and the trace — streams that record serial
	// per-placement events (and whose proposal-time details would be
	// placer-count-dependent). Any such observer pins the serial path;
	// the placements themselves are identical either way.
	if r.cfg.Placers > 1 && r.cfg.SchedulerFactory != nil &&
		r.ck == nil && r.ins.Decisions == nil && r.obs == nil {
		return r.deployServicesPooled()
	}
	for _, ss := range r.services {
		in := ss.syncInput()
		req := &sched.Request{Input: *in, SLA: ss.svc.SLA}
		placement, err := r.place(req)
		if err != nil {
			return fmt.Errorf("platform: deploying %s: %w", ss.svc.W.Name, err)
		}
		copy(ss.dep.Placement, placement)
		copy(in.Placement, placement)
		r.state.Commit(*in, ss.svc.SLA)
		if err := r.stepper.AddLS(ss.dep); err != nil {
			return err
		}
		for _, rep := range ss.dep.Replicas {
			r.stats.ColdStarts += rep
		}
	}
	return nil
}

// deployServicesPooled drains the initial deployment through K
// concurrent placer workers. The pool commits winning placements
// itself; this only copies results back and registers the deployments
// in config order.
func (r *runner) deployServicesPooled() error {
	reqs := make([]*sched.Request, len(r.services))
	for i, ss := range r.services {
		reqs[i] = &sched.Request{Input: *ss.syncInput(), SLA: ss.svc.SLA}
	}
	pool := sched.NewPlacerPool(r.state, r.cfg.Placers, r.cfg.SchedulerFactory)
	t0 := time.Now()
	results := pool.PlaceAll(reqs)
	r.stats.SchedulingTime += time.Since(t0)
	for i, res := range results {
		ss := r.services[i]
		r.stats.Placements++
		r.stats.PlacementRetries += res.Retries
		if res.Err != nil {
			return fmt.Errorf("platform: deploying %s: %w", ss.svc.W.Name, res.Err)
		}
		copy(ss.dep.Placement, res.Placement)
		copy(ss.in.Placement, res.Placement)
		if err := r.stepper.AddLS(ss.dep); err != nil {
			return err
		}
		for _, rep := range ss.dep.Replicas {
			r.stats.ColdStarts += rep
		}
	}
	return nil
}

// scheduleFaults registers the fault timeline on the event engine,
// before job arrivals so a fault and an arrival at the same instant
// resolve in a fixed order. Only transitions after `after` are
// registered (-1 for all; a resume re-registers the remainder).
func (r *runner) scheduleFaults(after float64) {
	for _, c := range r.inj.Changes() {
		if c.AtS <= after {
			continue
		}
		c := c
		r.engine.At(c.AtS, func() { r.applyFault(c) })
	}
}

// scheduleArrivals draws the batch-job submission times and registers
// them. The times are kept on the runner so snapshots can record what
// is still ahead.
func (r *runner) scheduleArrivals() {
	if len(r.cfg.SCPool) == 0 || r.cfg.SCMeanIntervalS <= 0 {
		return
	}
	r.arrivals = trace.JobArrivals(r.cfg.SCMeanIntervalS, 0, r.cfg.DurationS, r.rnd.Split())
	r.registerArrivals(-1)
}

// registerArrivals registers the submissions after `after` on the
// engine.
func (r *runner) registerArrivals(after float64) {
	for _, t := range r.arrivals {
		if t <= after {
			continue
		}
		r.engine.At(t, r.submitFn)
	}
}

// takeJobRecord pops a recycled job record for pool entry pi (or
// builds a fresh one) and resets its deployment to pristine
// NewDeployment state, so a recycled record is indistinguishable from
// a fresh one everywhere the scheduler or the model can look.
func (r *runner) takeJobRecord(pi int) *scActive {
	pe := &r.scPool[pi]
	if free := r.jobFree[pi]; len(free) > 0 {
		a := free[len(free)-1]
		free[len(free)-1] = nil
		r.jobFree[pi] = free[:len(free)-1]
		dep, proto := a.dep, pe.proto
		copy(dep.Placement, proto.Placement)
		copy(dep.Socket, proto.Socket)
		copy(dep.Replicas, proto.Replicas)
		dep.QPS = proto.QPS
		dep.StartDelayS = proto.StartDelayS
		dep.ColdStartFrac = proto.ColdStartFrac
		dep.Protected = proto.Protected
		return a
	}
	dep := perfmodel.NewDeployment(pe.w)
	return &scActive{pool: pi, dep: dep, input: core.WorkloadInput{
		Class:     pe.w.Class,
		Placement: make([]int, len(dep.Placement)),
		Replicas:  make([]int, len(dep.Replicas)),
	}}
}

// submitJob admits one batch job through the scheduler.
func (r *runner) submitJob() {
	cfg := &r.cfg
	pi := r.rnd.Intn(len(cfg.SCPool))
	pe := &r.scPool[pi]
	w := pe.w
	if pe.ps == nil {
		pe.ps = profile.WorkloadProfiles(w, r.spec, r.rnd.Split())
	}
	a := r.takeJobRecord(pi)
	dep := a.dep
	for f := range dep.Socket {
		dep.Socket[f] = -1
	}
	dep.ColdStartFrac = r.inj.ColdStartFrac() // active storm hits new jobs
	in := &a.input
	in.Name = w.Name
	in.Profiles = pe.ps
	copy(in.Placement, dep.Placement)
	copy(in.Replicas, dep.Replicas)
	in.LifetimeS = w.SoloDurationS
	a.sla = sched.SLA{}
	if w.Class == workload.SC {
		a.sla.MaxJCTFactor = 2.0
	}
	req := &r.reqBuf
	*req = sched.Request{Input: *in, SLA: a.sla, SoloDurationS: w.SoloDurationS}
	placement, err := r.place(req)
	if err != nil {
		r.stats.RejectedJobs++
		r.jobFree[pi] = append(r.jobFree[pi], a)
		return
	}
	copy(dep.Placement, placement)
	copy(in.Placement, placement)
	// unique run name for release bookkeeping
	in.Name = fmt.Sprintf("%s#%d", w.Name, r.stats.Placements)
	r.state.Commit(*in, a.sla)
	id, err := r.stepper.AddSC(dep)
	if err != nil {
		r.state.Release(in.Name)
		r.stats.RejectedJobs++
		r.jobFree[pi] = append(r.jobFree[pi], a)
		return
	}
	for _, rep := range dep.Replicas {
		r.stats.ColdStarts += rep
	}
	a.id = id
	a.predJCTS = 0
	if r.obs != nil {
		// The scheduler's accepted-candidate JCT estimate anchors both
		// the job's trace span and its completion-time quality sample.
		a.predJCTS = r.obsDetail.PredJCTS
		r.obs.Trace().JobBegin(id, w.Name, in.Name, r.engine.Now(), placement, a.predJCTS)
	}
	r.activeSC = append(r.activeSC, a)
}

// removeJob splices the job with the given id out of the active list,
// returning it for recycling (nil when unknown).
func (r *runner) removeJob(id int) *scActive {
	for i, a := range r.activeSC {
		if a.id == id {
			r.activeSC = append(r.activeSC[:i], r.activeSC[i+1:]...)
			return a
		}
	}
	return nil
}

// predictorOut reports whether an injected outage makes the predictor
// unreachable right now.
func (r *runner) predictorOut() bool { return !r.inj.PredictorAvailable() }

// placeWith times one Place call against the given policy.
func (r *runner) placeWith(s sched.Scheduler, req *sched.Request) ([]int, error) {
	t0 := time.Now()
	placement, err := r.state.Propose(s, req)
	r.stats.SchedulingTime += time.Since(t0)
	r.stats.Placements++
	return placement, err
}

// placeFallback serves one request through the fallback policy,
// counting it as a degraded placement.
func (r *runner) placeFallback(req *sched.Request) ([]int, error) {
	placement, err := r.placeWith(r.fallback, req)
	if err != nil {
		return nil, err
	}
	r.stats.DegradedPlacements++
	r.ins.DegradedPlacements.Inc()
	r.viaFallback = true
	return placement, nil
}

// place is the platform's single placement entry point: primary
// scheduler with bounded retry on transient errors, immediate
// degradation to the fallback policy on predictor errors (or during an
// injected predictor outage), and no retry on deterministic
// rejections. The final outcome (not the internal attempts) is
// WAL-logged when checkpointing is on.
func (r *runner) place(req *sched.Request) ([]int, error) {
	if r.obs != nil {
		r.obsDetail = sched.PlacementDetail{}
		req.Detail = &r.obsDetail
		r.viaFallback = false
	}
	placement, err := r.placeInner(req)
	if r.ck != nil {
		r.ck.notePlacement(r.engine.Now(), req.Input.Name, placement, err != nil)
	}
	if r.obs != nil {
		r.tracePlacement(req, placement, err)
		req.Detail = nil
	}
	return placement, err
}

// tracePlacement records the final decision of one place call as a
// trace instant, folding the fallback/degraded path into the outcome
// label (the scheduler that served the request only knows its own
// verdict).
func (r *runner) tracePlacement(req *sched.Request, placement []int, err error) {
	d := &r.obsDetail
	pi := obs.PlacementInfo{
		Workload:     req.Input.Name,
		Outcome:      d.Outcome,
		Reason:       d.Reason,
		SpreadLevels: d.SpreadLevels,
		SLAChecks:    d.SLAChecks,
		Placement:    placement,
		PredIPC:      d.PredIPC,
		PredJCTS:     d.PredJCTS,
	}
	if err != nil {
		if pi.Outcome == "" || pi.Outcome == "placed" {
			pi.Outcome = "error"
		}
	} else if r.viaFallback {
		pi.Outcome = "degraded"
		if pi.Reason == "" {
			if r.degradedReason != "" {
				pi.Reason = r.degradedReason
			} else {
				pi.Reason = reasonUnavailable
			}
		}
	}
	r.obs.Trace().Placement(r.engine.Now(), &pi)
}

func (r *runner) placeInner(req *sched.Request) ([]int, error) {
	if r.predictorOut() {
		// The predictor (and with it the primary scheduler's SLA
		// vetting) is unreachable: serve capacity-based placements
		// until the outage ends.
		return r.placeFallback(req)
	}
	backoff := r.retry.BaseBackoff
	deadline := time.Now().Add(r.retry.Timeout)
	var placement []int
	var err error
	for attempt := 1; ; attempt++ {
		placement, err = r.placeWith(r.cfg.Scheduler, req)
		if err == nil {
			if r.degraded && r.degradedReason == reasonUntrained {
				// The predictor has caught up (trained or recovered):
				// leave degraded mode.
				r.exitDegraded()
			}
			return placement, nil
		}
		if errors.Is(err, sched.ErrNoPlacement) {
			return nil, err // deterministic: retrying cannot help
		}
		if errors.Is(err, core.ErrNotTrained) {
			r.enterDegraded(reasonUntrained)
			return r.placeFallback(req)
		}
		if errors.Is(err, core.ErrUnavailable) {
			r.enterDegraded(reasonUnavailable)
			return r.placeFallback(req)
		}
		if attempt >= r.retry.MaxAttempts || r.ctx.Err() != nil || !time.Now().Before(deadline) {
			break
		}
		r.stats.PlacementRetries++
		r.ins.PlacementRetries.Inc()
		sleepCtx(r.ctx, backoff)
		backoff *= 2
		if backoff > r.retry.MaxBackoff {
			backoff = r.retry.MaxBackoff
		}
	}
	// Persistent unexpected failure: degrade rather than fail the run.
	if out, ferr := r.placeFallback(req); ferr == nil {
		return out, nil
	}
	return nil, err
}

// sleepCtx sleeps for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// enterDegraded opens a degraded interval (idempotent while open).
func (r *runner) enterDegraded(reason string) {
	if r.degraded {
		return
	}
	r.degraded = true
	r.degradedReason = reason
	r.degradedSince = r.engine.Now()
	if r.ins.Decisions != nil {
		r.dev = telemetry.DegradedTransition{SimTimeS: r.engine.Now(), Entered: true, Reason: reason, Fallback: r.fallback.Name()}
		r.ins.Decisions.Degraded(&r.dev)
	}
	if r.obs != nil {
		r.obs.Trace().Degraded(r.engine.Now(), true, reason)
	}
}

// exitDegraded closes the open degraded interval at the current time.
func (r *runner) exitDegraded() { r.closeDegraded(r.engine.Now()) }

// closeDegraded closes the open degraded interval at endS.
func (r *runner) closeDegraded(endS float64) {
	if !r.degraded {
		return
	}
	r.stats.Degraded = append(r.stats.Degraded, DegradedInterval{
		StartS: r.degradedSince, EndS: endS, Reason: r.degradedReason,
	})
	if r.ins.Decisions != nil {
		r.dev = telemetry.DegradedTransition{SimTimeS: endS, Entered: false, Reason: r.degradedReason, Fallback: r.fallback.Name()}
		r.ins.Decisions.Degraded(&r.dev)
	}
	if r.obs != nil {
		r.obs.Trace().Degraded(endS, false, r.degradedReason)
	}
	r.degraded = false
	r.degradedReason = ""
}

// applyFault transitions the injector state and makes the platform
// react: crashed nodes are cordoned and evacuated, stragglers lose
// schedulable and modeled capacity, storms force cold starts, outages
// flip degraded mode.
func (r *runner) applyFault(c faults.Change) {
	if c.Op == faults.OpControllerCrash {
		// Handled before any counter or decision event: the crash is
		// invisible in every output, so a crashed-and-resumed run stays
		// byte-identical to one that never crashed.
		r.controllerCrash()
		return
	}
	r.inj.Apply(c)
	r.stats.FaultEvents++
	r.ins.FaultEvents.Inc()
	displacedSvc, displacedJobs := 0, 0
	switch c.Op {
	case faults.OpNodeDown:
		r.state.SetOffline(c.Node, true)
		displacedSvc, displacedJobs = r.evacuate(c.Node)
		r.stats.DisplacedServices += displacedSvc
		r.stats.DisplacedJobs += displacedJobs
		r.ins.DisplacedServices.Add(uint64(displacedSvc))
		r.ins.DisplacedJobs.Add(uint64(displacedJobs))
	case faults.OpNodeUp:
		r.state.SetOffline(c.Node, false)
	case faults.OpSlowSet:
		r.state.SetCap(c.Node, r.baseCaps[c.Node].Scale(c.Factor))
		r.m.SetCapacityScale(c.Node, c.Factor)
		r.stepper.MarkDirty()
	case faults.OpSlowClear:
		r.state.SetCap(c.Node, r.baseCaps[c.Node])
		r.m.SetCapacityScale(c.Node, 1)
		r.stepper.MarkDirty()
	case faults.OpStormStart, faults.OpStormEnd:
		frac := r.inj.ColdStartFrac()
		for _, ss := range r.services {
			ss.dep.ColdStartFrac = frac
		}
		for _, a := range r.activeSC {
			a.dep.ColdStartFrac = frac
		}
		r.stepper.MarkDirty()
	case faults.OpPredictorDown:
		r.enterDegraded(reasonUnavailable)
	case faults.OpPredictorUp:
		if r.inj.PredictorAvailable() {
			r.exitDegraded()
		}
	}
	if r.ins.Decisions != nil {
		r.fev = telemetry.FaultEvent{
			SimTimeS:          r.engine.Now(),
			Kind:              c.Op.String(),
			Node:              c.Node,
			Factor:            c.Factor,
			DisplacedServices: displacedSvc,
			DisplacedJobs:     displacedJobs,
		}
		r.ins.Decisions.Fault(&r.fev)
	}
	if r.obs != nil {
		r.obs.Trace().Fault(r.engine.Now(), c.Op.String(), c.Node, displacedSvc+displacedJobs)
	}
}

// placedOn reports whether any function sits on the node.
func placedOn(placement []int, node int) bool {
	for _, s := range placement {
		if s == node {
			return true
		}
	}
	return false
}

// emptiestOnline returns the online server (never `not`) with the most
// free CPU, or -1 when every other server is offline.
func emptiestOnline(state *sched.State, not int) int {
	best, bestFree := -1, -1.0
	for s := range state.Caps {
		if s == not || !state.Online(s) {
			continue
		}
		if free := state.Free(s)[resources.CPU]; free > bestFree {
			best, bestFree = s, free
		}
	}
	return best
}

// evacuate re-places every workload with functions on a crashed node.
// Services go back through the scheduler (full re-placement, so the
// survivors land SLA-vetted); if even the fallback cannot host one,
// its stranded functions are force-moved to the emptiest online server
// — liveness over placement quality. Batch jobs keep their surviving
// functions and only the stranded ones move.
func (r *runner) evacuate(node int) (displacedSvc, displacedJobs int) {
	for _, ss := range r.services {
		if !placedOn(ss.dep.Placement, node) {
			continue
		}
		displacedSvc++
		r.state.Release(ss.svc.W.Name)
		req := &sched.Request{Input: *ss.syncInput(), SLA: ss.svc.SLA}
		if placement, err := r.place(req); err == nil {
			for f := range placement {
				if placement[f] != ss.dep.Placement[f] {
					r.stats.ColdStarts += ss.dep.Replicas[f]
				}
			}
			copy(ss.dep.Placement, placement)
		} else if alt := emptiestOnline(r.state.Base(), node); alt != -1 {
			for f, s := range ss.dep.Placement {
				if s == node {
					ss.dep.Placement[f] = alt
					r.stats.ColdStarts += ss.dep.Replicas[f]
				}
			}
		}
		// Re-commit immediately so the next displaced workload sees a
		// consistent cluster view.
		refreshState(r.state, r.services, r.activeSC)
	}
	for _, a := range r.activeSC {
		if !placedOn(a.dep.Placement, node) {
			continue
		}
		displacedJobs++
		alt := emptiestOnline(r.state.Base(), node)
		if alt == -1 {
			continue // whole cluster down; nowhere to go
		}
		for f, s := range a.dep.Placement {
			if s == node {
				a.dep.Placement[f] = alt
				a.input.Placement[f] = alt
			}
		}
		refreshState(r.state, r.services, r.activeSC)
	}
	r.stepper.MarkDirty()
	refreshState(r.state, r.services, r.activeSC)
	return displacedSvc, displacedJobs
}

// runErr maps an engine interruption to its cause: a checkpoint/replay
// failure, an injected controller crash, or the caller's cancellation.
func (r *runner) runErr(err error) error {
	if r.ckErr != nil {
		return r.ckErr
	}
	if r.crashed {
		return ErrControllerCrashed
	}
	return err
}

// loop drives the step loop to the configured horizon.
func (r *runner) loop() error {
	cfg := &r.cfg
	stats := r.stats
	ins := r.ins
	coresPerServer := r.spec.Capacity[resources.CPU]
	// Pre-size the per-step series so steady-state appends never regrow
	// their backing arrays (values are unchanged; capacity only).
	if nSteps := int(cfg.DurationS/cfg.StepS) + 1; nSteps > 0 {
		for _, ss := range r.services {
			name := ss.svc.W.Name
			if cap(stats.SLAOK[name]) < nSteps {
				grown := make([]bool, len(stats.SLAOK[name]), nSteps)
				copy(grown, stats.SLAOK[name])
				stats.SLAOK[name] = grown
			}
		}
		growF := func(s []float64) []float64 {
			if cap(s) >= nSteps {
				return s
			}
			grown := make([]float64, len(s), nSteps)
			copy(grown, s)
			return grown
		}
		stats.Density = growF(stats.Density)
		stats.CPUUtil = growF(stats.CPUUtil)
		stats.MemUtil = growF(stats.MemUtil)
		stats.GoodDensity = growF(stats.GoodDensity)
		stats.ActiveServers = growF(stats.ActiveServers)
	}
	step := r.startStep
	for now := r.startS; now < cfg.DurationS; now += cfg.StepS {
		span := telemetry.StartSpan(ins.StepSeconds)
		// Fire job submissions and fault transitions due by now;
		// cancellation is checked between events so SIGINT lands
		// between decisions, never inside one.
		if err := r.engine.RunUntilCtx(r.ctx, now); err != nil {
			return r.runErr(err)
		}
		step++
		if r.degraded {
			stats.DegradedSteps++
			ins.DegradedSteps.Inc()
		}

		// Autoscaling: track the trace. Scale-out re-places the
		// workload through the scheduler — the paper's trigger
		// ("whenever ... a previously submitted workload scales
		// beyond the current function instances").
		for _, ss := range r.services {
			qps := ss.svc.Pattern.Sample(now, r.rnd)
			if qps > ss.svc.W.MaxQPS {
				qps = ss.svc.W.MaxQPS
			}
			ss.dep.QPS = qps
			stats.Invocations += qps * cfg.StepS
			changed := false
			for f := range ss.dep.Replicas {
				want := perfmodel.LSReplicasFor(ss.svc.W, f, qps*1.1)
				if want != ss.dep.Replicas[f] {
					if want > ss.dep.Replicas[f] {
						stats.ColdStarts += want - ss.dep.Replicas[f]
					}
					ss.dep.Replicas[f] = want
					changed = true
				}
			}
			if ss.cooldown > 0 {
				ss.cooldown--
			}
			// Any replica change triggers a re-placement pass (the
			// paper reschedules on scale-out, and notes load drops
			// "can further optimize resource efficiency by
			// rescheduling the existing instances") unless the
			// service is pinned after a reactive spread.
			if changed && ss.cooldown == 0 {
				// Release our own allocation before asking for a
				// placement so the scheduler sees the true headroom.
				r.state.Release(ss.svc.W.Name)
				req := &r.reqBuf
				*req = sched.Request{Input: *ss.syncInput(), SLA: ss.svc.SLA}
				placement, err := r.place(req)
				if err == nil {
					for f := range placement {
						if placement[f] != ss.dep.Placement[f] {
							stats.Reschedules++
							stats.ColdStarts += ss.dep.Replicas[f]
						}
					}
					copy(ss.dep.Placement, placement)
				}
			}
			if changed {
				r.stepper.MarkDirty()
				refreshState(r.state, r.services, r.activeSC)
			}
		}

		r.noise.SplitInto(&r.noiseChild)
		rep := r.stepper.Step(cfg.StepS, &r.noiseChild)

		// SLA monitoring + reactive spreading.
		for i, ss := range r.services {
			lr := rep.LS[i]
			ok := ss.svc.W.SLAp99Ms <= 0 || lr.E2EP99Ms <= ss.svc.W.SLAp99Ms
			stats.SLAOK[ss.svc.W.Name] = append(stats.SLAOK[ss.svc.W.Name], ok)
			if !ok {
				ins.SLAViolations.Inc()
			}
			// The reactive controller tolerates a 5% band over the SLA
			// so measurement noise cannot trigger spreads by itself.
			controlOK := ss.svc.W.SLAp99Ms <= 0 || lr.E2EP99Ms <= ss.svc.W.SLAp99Ms*1.05
			if controlOK {
				ss.violations = 0
			} else {
				ss.violations++
				if ss.violations >= cfg.ViolationPatience {
					// Reactive control, in the paper's Observation 5
					// shape: first move the corunner — evict a batch
					// job sharing the hottest function's server —
					// and only spread the service itself when no
					// corunner is to blame. Either way the move is
					// the density price of crossing the SLA, paid
					// most often by inaccurate predictors.
					hot := ss.dep.Placement[worstFuncs(lr, 1)[0]]
					if evictSC(r.state.Base(), r.activeSC, hot) {
						stats.Migrations++
						moved := 1
						if n := migrateWorst(r.m, r.state.Base(), ss, lr, 1); n > 0 {
							stats.Migrations += n
							stats.ColdStarts += n
							moved += n
						}
						ss.cooldown = 20
						r.stepper.MarkDirty()
						refreshState(r.state, r.services, r.activeSC)
						if ins.Decisions != nil {
							r.rev = telemetry.ReactiveAction{SimTimeS: now, Action: "evict-corunner", Service: ss.svc.W.Name, Moved: moved}
							ins.Decisions.Reactive(&r.rev)
						}
						if r.obs != nil {
							r.obs.Trace().Reactive(now, "evict-corunner", ss.svc.W.Name, moved)
						}
					} else if n := migrateWorst(r.m, r.state.Base(), ss, lr, 3); n > 0 {
						stats.Migrations += n
						stats.ColdStarts += n
						ss.cooldown = 40
						r.stepper.MarkDirty()
						refreshState(r.state, r.services, r.activeSC)
						if ins.Decisions != nil {
							r.rev = telemetry.ReactiveAction{SimTimeS: now, Action: "spread-service", Service: ss.svc.W.Name, Moved: n}
							ins.Decisions.Reactive(&r.rev)
						}
						if r.obs != nil {
							r.obs.Trace().Reactive(now, "spread-service", ss.svc.W.Name, n)
						}
					}
					ss.violations = 0
				}
			}
			// Online learning feedback — paused while an injected
			// outage makes the predictor unreachable.
			if cfg.Predictor != nil && step%cfg.ObserveEvery == 0 && !r.predictorOut() {
				inputs := r.snapshotInputs()
				if r.obs != nil {
					// Predict-then-observe: score the model on the label
					// it is about to learn from. Predict is pure, so the
					// extra call cannot perturb the run.
					if pred, perr := cfg.Predictor.Predict(core.IPCQoS, i, inputs); perr == nil {
						r.trackPrediction(now, ss.svc.W.Name, "ipc", pred, lr.IPC)
					}
				}
				_ = cfg.Predictor.Observe(core.IPCQoS, i, inputs, lr.IPC)
				if r.ck != nil {
					r.ck.noteObservation(now, "ipc", i, lr.IPC)
				}
			}
		}

		// Completed jobs leave the cluster; their records go back to
		// the pool for the next submission of the same workload.
		for _, done := range rep.Completed {
			if a := r.removeJob(done.ID); a != nil {
				if r.obs != nil {
					solo := a.dep.W.SoloDurationS
					slowdown := 0.0
					if solo > 0 {
						slowdown = done.JCTS / solo
					}
					checked := a.sla.MaxJCTFactor > 0 && solo > 0
					slaOK := checked && done.JCTS <= solo*a.sla.MaxJCTFactor
					r.obs.Trace().JobEnd(done.ID, done.Name, now, done.JCTS, slowdown, checked, slaOK)
					if a.predJCTS > 0 {
						r.trackPrediction(now, done.Name, "jct", a.predJCTS, done.JCTS)
					}
				}
				r.state.Release(a.input.Name)
				r.jobFree[a.pool] = append(r.jobFree[a.pool], a)
			}
			stats.JCTs[done.Name] = append(stats.JCTs[done.Name], done.JCTS)
		}

		// Metrics.
		instances := 0
		for _, ss := range r.services {
			for _, rep := range ss.dep.Replicas {
				instances += rep
			}
		}
		instances += countSCInstances(r.activeSC)
		activeServers, cpuDem, memAlloc := 0, 0.0, 0.0
		for s, d := range rep.ServerDemand {
			if d.IsZero() && r.state.Allocated(s).IsZero() {
				continue
			}
			activeServers++
			cpuDem += d[resources.CPU]
			memAlloc += r.state.Allocated(s)[resources.Memory]
		}
		density, goodDensity, cpuUtil, memUtil := 0.0, 0.0, 0.0, 0.0
		if activeServers > 0 {
			activeCores := float64(activeServers) * coresPerServer
			density = float64(instances) / activeCores
			cpuUtil = cpuDem / activeCores
			memUtil = memAlloc / (float64(activeServers) * r.spec.Capacity[resources.Memory])
			stats.Density = append(stats.Density, density)
			stats.CPUUtil = append(stats.CPUUtil, cpuUtil)
			stats.MemUtil = append(stats.MemUtil, memUtil)
			okFrac, nSLA := 0.0, 0
			for i, ss := range r.services {
				if ss.svc.W.SLAp99Ms <= 0 {
					continue
				}
				nSLA++
				if rep.LS[i].E2EP99Ms <= ss.svc.W.SLAp99Ms {
					okFrac++
				}
			}
			if nSLA > 0 {
				okFrac /= float64(nSLA)
			} else {
				okFrac = 1
			}
			goodDensity = density * okFrac
			stats.GoodDensity = append(stats.GoodDensity, goodDensity)
			stats.ActiveServers = append(stats.ActiveServers, float64(activeServers))
		}
		ins.Steps.Inc()
		ins.ActiveServers.SetInt(activeServers)
		if r.obs != nil {
			r.recordFrame(now, step, rep.ServerDemand, activeServers, density, goodDensity, cpuUtil, memUtil)
		}
		span.End()
		if r.ck != nil {
			if r.ckErr != nil {
				return r.ckErr
			}
			if err := r.ck.maybeSnapshot(now, step); err != nil {
				return err
			}
		}
	}
	stats.Steps = step
	// A degraded window still open at the horizon closes there so the
	// run report always shows complete intervals.
	r.closeDegraded(cfg.DurationS)
	// Operational totals mirror the Stats counters so an exported
	// snapshot is self-contained.
	ins.Migrations.Add(uint64(stats.Migrations))
	ins.Reschedules.Add(uint64(stats.Reschedules))
	ins.ColdStarts.Add(uint64(stats.ColdStarts))
	ins.RejectedJobs.Add(uint64(stats.RejectedJobs))
	return nil
}

// trackPrediction folds one predicted/observed QoS pair into the
// quality tracker and escalates a drift detection into the decision
// log. Callers gate on r.obs != nil.
func (r *runner) trackPrediction(simS float64, archetype, qos string, pred, observed float64) {
	d, fired := r.obs.TrackPrediction(simS, archetype, qos, pred, observed)
	if !fired {
		return
	}
	if r.ins.Decisions != nil {
		r.drev = telemetry.DriftEvent{
			SimTimeS:  simS,
			QoS:       d.QoS,
			Archetype: d.Archetype,
			Window:    d.Window,
			MeanErr:   d.MeanErr,
			MAPE:      d.MAPE,
			PH:        d.PH,
		}
		r.ins.Decisions.Drift(&r.drev)
	}
}

// recordFrame appends one flight-recorder frame for the step that just
// computed its metrics. Callers gate on r.obs != nil; the frame buffer
// is reused so enabled recording allocates only on the first step.
func (r *runner) recordFrame(now float64, step int, demand []resources.Vector, active int, density, goodDensity, cpuUtil, memUtil float64) {
	fl := r.obs.Flight()
	if fl == nil {
		return
	}
	fr := &r.flFrame
	if fr.CPUDemand == nil {
		n := r.state.NumServers()
		fr.CPUDemand = make([]float32, n)
		fr.MemUsed = make([]float32, n)
		fr.ServerFlags = make([]uint8, n)
	}
	fr.SimTimeS = now
	fr.Step = uint32(step)
	fr.Flags = 0
	if r.degraded {
		fr.Flags |= obs.FrameDegraded
	}
	if r.predictorOut() {
		fr.Flags |= obs.FramePredictorDown
	}
	fr.ActiveServers = uint16(active)
	// Arrivals still ahead: computed from the (sorted) submission
	// timeline, never the engine queue — queued controller-crash events
	// must stay invisible so crash/resume recordings stay identical.
	fr.Pending = uint32(len(r.arrivals) - sort.Search(len(r.arrivals), func(i int) bool {
		return r.arrivals[i] > now
	}))
	fr.Density = float32(density)
	fr.GoodDensity = float32(goodDensity)
	fr.CPUUtil = float32(cpuUtil)
	fr.MemUtil = float32(memUtil)
	for s := range fr.CPUDemand {
		fr.CPUDemand[s] = float32(demand[s][resources.CPU])
		fr.MemUsed[s] = float32(r.state.Allocated(s)[resources.Memory])
		var sf uint8
		if r.inj.NodeDown(s) {
			sf |= obs.ServerDown
		}
		if r.inj.CapacityFactor(s) != 1 {
			sf |= obs.ServerSlow
		}
		fr.ServerFlags[s] = sf
	}
	fl.Record(fr)
}

// inputFor builds the scheduler-visible input of a deployment.
func inputFor(w *workload.Workload, dep *perfmodel.Deployment, ps []profile.Profile) core.WorkloadInput {
	in := core.WorkloadInput{
		Name:      w.Name,
		Class:     w.Class,
		Profiles:  ps,
		Placement: append([]int(nil), dep.Placement...),
		Replicas:  append([]int(nil), dep.Replicas...),
	}
	if w.Class == workload.LS {
		in.QPSFrac = perfmodel.LoadFactor(dep)
	} else {
		in.LifetimeS = w.SoloDurationS
	}
	return in
}

// syncInput refreshes the service's persistent scheduler input from
// its deployment — the allocation-free replacement for building a
// fresh input per call. The returned pointer is ss.in itself.
func (ss *serviceState) syncInput() *core.WorkloadInput { return ss.syncInto(&ss.in) }

// syncInto fills in with the service's current scheduler-visible view
// (same values inputFor would produce), allocating the backing arrays
// only on first use.
func (ss *serviceState) syncInto(in *core.WorkloadInput) *core.WorkloadInput {
	if in.Placement == nil {
		in.Placement = make([]int, len(ss.dep.Placement))
		in.Replicas = make([]int, len(ss.dep.Replicas))
	}
	in.Name = ss.svc.W.Name
	in.Class = ss.svc.W.Class
	in.Profiles = ss.profiles
	copy(in.Placement, ss.dep.Placement)
	copy(in.Replicas, ss.dep.Replicas)
	if ss.svc.W.Class == workload.LS {
		in.QPSFrac = perfmodel.LoadFactor(ss.dep)
	} else {
		in.LifetimeS = ss.svc.W.SoloDurationS
	}
	return in
}

// refreshState rebuilds the scheduler state's bookkeeping after replica
// or placement changes. Services re-sync their persistent inputs first;
// job inputs are kept current at their mutation sites. The fold order —
// services in config order, then jobs ascending by submission id — is
// the fixed order the map-era sortedSC sort produced, which float
// accumulation into Used depends on.
func refreshState(state *sched.ShardedState, services []*serviceState, activeSC []*scActive) {
	st := state.Base()
	for s := range st.Used {
		st.Used[s] = resources.Vector{}
	}
	st.Running = st.Running[:0]
	for _, ss := range services {
		st.Commit(*ss.syncInput(), ss.svc.SLA)
	}
	for _, a := range activeSC {
		st.Commit(a.input, a.sla)
	}
	// The surgery above bypassed epoch bookkeeping; Recount restores the
	// counted-mode caches and conservatively re-stamps every epoch.
	state.Recount()
}

type scActive struct {
	id    int
	pool  int // SCPool index, the record's free-list on completion
	input core.WorkloadInput
	sla   sched.SLA
	dep   *perfmodel.Deployment
	// predJCTS is the scheduler's JCT estimate at admission (0 when the
	// decision used no prediction); checkpointed so a resumed run's
	// quality samples match the uninterrupted run's byte-for-byte.
	predJCTS float64
}

func countSCInstances(activeSC []*scActive) int {
	n := 0
	for _, a := range activeSC {
		if a.input.Replicas == nil {
			n += len(a.input.Profiles)
			continue
		}
		for _, r := range a.input.Replicas {
			n += r
		}
	}
	return n
}

// snapshotInputs assembles the online learner's cluster view into the
// runner's reusable buffer: services synced into their observation-only
// inputs (never the committed ones — retro-mutating a committed input's
// QPSFrac mid-step would change what the scheduler sees), then jobs in
// ascending submission order.
func (r *runner) snapshotInputs() []core.WorkloadInput {
	r.snapBuf = r.snapBuf[:0]
	for _, ss := range r.services {
		r.snapBuf = append(r.snapBuf, *ss.syncInto(&ss.obsIn))
	}
	for _, a := range r.activeSC {
		r.snapBuf = append(r.snapBuf, a.input)
	}
	return r.snapBuf
}

// worstFuncs returns up to n function indices ordered by local p99,
// worst first — the migration candidates.
func worstFuncs(r perfmodel.LSResult, n int) []int {
	idx := make([]int, len(r.PerFunc))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.PerFunc[idx[a]].LocalP99Ms > r.PerFunc[idx[b]].LocalP99Ms
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

// migrateWorst spreads the n worst functions of a violating service to
// the emptiest online servers — the platform's reactive control. It
// returns how many functions moved.
func migrateWorst(m *perfmodel.Model, state *sched.State, ss *serviceState, r perfmodel.LSResult, n int) int {
	moved := 0
	taken := map[int]bool{}
	// Prefer relieving pressure within the already-active fleet: waking
	// a dormant server is the last resort, so reactive control does not
	// silently destroy consolidation.
	pick := func(activeOnly bool) int {
		best, bestFree := -1, -1.0
		for s := range state.Caps {
			if taken[s] || !state.Online(s) {
				continue
			}
			if activeOnly && state.Used[s].IsZero() {
				continue
			}
			free := state.Free(s)[resources.CPU]
			if free > bestFree {
				best, bestFree = s, free
			}
		}
		return best
	}
	for _, f := range worstFuncs(r, n) {
		best := pick(true)
		if best == -1 || best == ss.dep.Placement[f] {
			if alt := pick(false); alt != -1 && alt != ss.dep.Placement[f] {
				best = alt
			}
		}
		if best == -1 {
			continue
		}
		taken[best] = true
		if best == ss.dep.Placement[f] {
			continue
		}
		ss.dep.Placement[f] = best
		moved++
	}
	return moved
}

// evictSC moves one batch job off the hot server onto the emptiest
// other online server — the paper's "move the corunner to another
// socket" control at cluster granularity. It reports whether a job
// moved.
func evictSC(state *sched.State, activeSC []*scActive, hot int) bool {
	// Pick the largest co-located batch job (by CPU allocation); ties
	// break by first-seen, i.e. ascending submission id.
	var victim *scActive
	victimCPU := 0.0
	for _, a := range activeSC {
		onHot := false
		cpu := 0.0
		for f := range a.input.Profiles {
			if a.dep.Placement[f] == hot {
				onHot = true
			}
			cpu += sched.AllocOf(&a.input, f)[resources.CPU]
		}
		if onHot && cpu > victimCPU {
			victim, victimCPU = a, cpu
		}
	}
	if victim == nil {
		return false
	}
	best := emptiestOnline(state, hot)
	if best == -1 {
		return false
	}
	for f := range victim.dep.Placement {
		victim.dep.Placement[f] = best
		victim.input.Placement[f] = best
	}
	return true
}
