// Package platform simulates an OpenFaaS-style serverless platform over
// the model testbed for the paper's scheduling case study (§6.3):
// trace-driven latency-sensitive services with autoscaling, arriving
// SC/BG jobs, a pluggable scheduler, ground-truth QoS from the
// performance model, and SLA monitoring with reactive spreading on
// persistent violations. It produces the density/utilization series of
// Figure 11, the SLA guarantee ratios of Figure 12 and the operational
// counters behind Figure 14.
package platform

import (
	"fmt"
	"sort"
	"time"

	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/sched"
	"gsight/internal/sim"
	"gsight/internal/telemetry"
	"gsight/internal/trace"
	"gsight/internal/workload"
)

// LSService describes one long-running latency-sensitive service.
type LSService struct {
	W       *workload.Workload
	Pattern trace.Pattern
	// SLA is the admission contract (IPC floor from the Figure 7
	// transform); the runtime check still uses the raw p99 target.
	SLA sched.SLA
}

// Config parameterizes a platform run.
type Config struct {
	Model     *perfmodel.Model
	Scheduler sched.Scheduler
	// Services are the resident LS workloads.
	Services []LSService
	// SCPool are the batch jobs submitted over time.
	SCPool []*workload.Workload
	// SCMeanIntervalS is the mean seconds between job submissions.
	SCMeanIntervalS float64
	// DurationS and StepS control the simulated horizon.
	DurationS float64
	StepS     float64
	// ViolationPatience is how many consecutive SLA-violating steps
	// trigger a reactive spread of the worst function.
	ViolationPatience int
	Seed              uint64
	// Predictor, when set, receives online observations (incremental
	// learning during operation).
	Predictor core.QoSPredictor
	// ObserveEvery throttles online observations (steps).
	ObserveEvery int
	// Telemetry, when set, receives runtime metrics and reactive-control
	// decision events. telemetry.Nop (nil) leaves the run bit-identical.
	Telemetry *telemetry.Sink
}

// Stats aggregates a run's outcomes.
type Stats struct {
	SchedulerName string
	// Per-step series (Figure 11 CDFs are built from these).
	Density []float64 // function instances per active core
	CPUUtil []float64 // demand / capacity over active servers
	MemUtil []float64 // allocated memory / capacity over active servers
	// GoodDensity discounts each step's density by the fraction of LS
	// services inside their SLA — density is only worth what it does
	// not cost in QoS ("improve function density while guaranteeing
	// the QoS", the paper's abstract).
	GoodDensity []float64
	// ActiveServers is the per-step count of servers with any load.
	ActiveServers []float64
	// SLAOK[name] marks the steps whose measured p99 honoured the SLA
	// (Figure 12).
	SLAOK map[string][]bool
	// JCTs of completed batch jobs by workload name.
	JCTs map[string][]float64
	// Operational counters (Figure 14 inputs).
	ColdStarts     int
	Migrations     int // reactive moves after persistent SLA violations
	Reschedules    int // placement changes during scale-out
	Placements     int
	RejectedJobs   int
	SchedulingTime time.Duration // wall-clock spent in Place()
	Steps          int
}

// SLARatio returns the fraction of steps within SLA for a service.
func (s *Stats) SLARatio(name string) float64 {
	oks := s.SLAOK[name]
	if len(oks) == 0 {
		return 0
	}
	n := 0
	for _, ok := range oks {
		if ok {
			n++
		}
	}
	return float64(n) / float64(len(oks))
}

// serviceState is the platform's runtime record of one LS service.
type serviceState struct {
	svc        LSService
	dep        *perfmodel.Deployment
	profiles   []profile.Profile
	violations int
	// cooldown pins the placement for a while after a reactive
	// spread, so a scheduler whose predictions caused the violation
	// cannot immediately re-pack into the same hotspot. Accurate
	// predictors rarely violate and therefore keep their packing
	// freedom — the mechanism that turns prediction quality into
	// density (Figure 11).
	cooldown int
}

// Run executes the simulation and returns its stats.
func Run(cfg Config) (*Stats, error) {
	if cfg.StepS <= 0 {
		cfg.StepS = 30
	}
	if cfg.DurationS <= 0 {
		cfg.DurationS = 86400
	}
	if cfg.ViolationPatience <= 0 {
		cfg.ViolationPatience = 3
	}
	if cfg.ObserveEvery <= 0 {
		cfg.ObserveEvery = 10
	}
	ins := cfg.Telemetry.Platform()
	var rev telemetry.ReactiveAction // reusable reactive decision event
	m := cfg.Model
	stepper := m.NewStepper()
	noise := rng.Stream(cfg.Seed, "platform-noise")
	rnd := rng.Stream(cfg.Seed, "platform")
	spec := m.Testbed.Servers[0]

	stats := &Stats{
		SchedulerName: cfg.Scheduler.Name(),
		SLAOK:         make(map[string][]bool),
		JCTs:          make(map[string][]float64),
	}

	state := sched.StateFromProfiles(spec, m.Testbed.NumServers())

	// Deploy the resident services through the scheduler.
	services := make([]*serviceState, 0, len(cfg.Services))
	for _, svc := range cfg.Services {
		ps := profile.WorkloadProfiles(svc.W, spec, rnd.Split())
		dep := perfmodel.NewDeployment(svc.W)
		for f := range dep.Socket {
			dep.Socket[f] = -1
		}
		dep.QPS = svc.Pattern.RateAt(0)
		for f := range dep.Replicas {
			dep.Replicas[f] = perfmodel.LSReplicasFor(svc.W, f, dep.QPS*1.1)
		}
		in := inputFor(svc.W, dep, ps)
		req := &sched.Request{Input: in, SLA: svc.SLA}
		t0 := time.Now()
		placement, err := cfg.Scheduler.Place(state, req)
		stats.SchedulingTime += time.Since(t0)
		stats.Placements++
		if err != nil {
			return nil, fmt.Errorf("platform: deploying %s: %w", svc.W.Name, err)
		}
		copy(dep.Placement, placement)
		in.Placement = placement
		state.Commit(in, svc.SLA)
		if err := stepper.AddLS(dep); err != nil {
			return nil, err
		}
		for _, r := range dep.Replicas {
			stats.ColdStarts += r
		}
		services = append(services, &serviceState{svc: svc, dep: dep, profiles: ps})
	}

	// Batch job arrival schedule on the event engine.
	var engine sim.Engine
	engine.Instrument(cfg.Telemetry)
	activeSC := map[int]*scActive{}
	scProfiles := map[string][]profile.Profile{}
	submitJob := func() {
		w := cfg.SCPool[rnd.Intn(len(cfg.SCPool))].Clone()
		ps, ok := scProfiles[w.Name]
		if !ok {
			ps = profile.WorkloadProfiles(w, spec, rnd.Split())
			scProfiles[w.Name] = ps
		}
		dep := perfmodel.NewDeployment(w)
		for f := range dep.Socket {
			dep.Socket[f] = -1
		}
		in := inputFor(w, dep, ps)
		sla := sched.SLA{}
		if w.Class == workload.SC {
			sla.MaxJCTFactor = 2.0
		}
		req := &sched.Request{Input: in, SLA: sla, SoloDurationS: w.SoloDurationS}
		t0 := time.Now()
		placement, err := cfg.Scheduler.Place(state, req)
		stats.SchedulingTime += time.Since(t0)
		stats.Placements++
		if err != nil {
			stats.RejectedJobs++
			return
		}
		copy(dep.Placement, placement)
		in.Placement = placement
		// unique run name for release bookkeeping
		in.Name = fmt.Sprintf("%s#%d", w.Name, stats.Placements)
		state.Commit(in, sla)
		id, err := stepper.AddSC(dep)
		if err != nil {
			state.Release(in.Name)
			stats.RejectedJobs++
			return
		}
		for _, r := range dep.Replicas {
			stats.ColdStarts += r
		}
		activeSC[id] = &scActive{id: id, input: in, sla: sla, dep: dep}
	}
	if len(cfg.SCPool) > 0 && cfg.SCMeanIntervalS > 0 {
		for _, t := range trace.JobArrivals(cfg.SCMeanIntervalS, 0, cfg.DurationS, rnd.Split()) {
			engine.At(t, submitJob)
		}
	}

	coresPerServer := spec.Capacity[resources.CPU]
	step := 0
	for now := 0.0; now < cfg.DurationS; now += cfg.StepS {
		span := telemetry.StartSpan(ins.StepSeconds)
		engine.RunUntil(now) // fire job submissions due by now
		step++

		// Autoscaling: track the trace. Scale-out re-places the
		// workload through the scheduler — the paper's trigger
		// ("whenever ... a previously submitted workload scales
		// beyond the current function instances").
		for _, ss := range services {
			qps := ss.svc.Pattern.Sample(now, rnd)
			if qps > ss.svc.W.MaxQPS {
				qps = ss.svc.W.MaxQPS
			}
			ss.dep.QPS = qps
			changed := false
			for f := range ss.dep.Replicas {
				want := perfmodel.LSReplicasFor(ss.svc.W, f, qps*1.1)
				if want != ss.dep.Replicas[f] {
					if want > ss.dep.Replicas[f] {
						stats.ColdStarts += want - ss.dep.Replicas[f]
					}
					ss.dep.Replicas[f] = want
					changed = true
				}
			}
			if ss.cooldown > 0 {
				ss.cooldown--
			}
			// Any replica change triggers a re-placement pass (the
			// paper reschedules on scale-out, and notes load drops
			// "can further optimize resource efficiency by
			// rescheduling the existing instances") unless the
			// service is pinned after a reactive spread.
			if changed && ss.cooldown == 0 {
				// Release our own allocation before asking for a
				// placement so the scheduler sees the true headroom.
				state.Release(ss.svc.W.Name)
				in := inputFor(ss.svc.W, ss.dep, ss.profiles)
				req := &sched.Request{Input: in, SLA: ss.svc.SLA}
				t0 := time.Now()
				placement, err := cfg.Scheduler.Place(state, req)
				stats.SchedulingTime += time.Since(t0)
				stats.Placements++
				if err == nil {
					for f := range placement {
						if placement[f] != ss.dep.Placement[f] {
							stats.Reschedules++
							stats.ColdStarts += ss.dep.Replicas[f]
						}
					}
					copy(ss.dep.Placement, placement)
				}
			}
			if changed {
				stepper.MarkDirty()
				refreshState(state, services, activeSC)
			}
		}

		rep := stepper.Step(cfg.StepS, noise.Split())

		// SLA monitoring + reactive spreading.
		for i, ss := range services {
			r := rep.LS[i]
			ok := ss.svc.W.SLAp99Ms <= 0 || r.E2EP99Ms <= ss.svc.W.SLAp99Ms
			stats.SLAOK[ss.svc.W.Name] = append(stats.SLAOK[ss.svc.W.Name], ok)
			if !ok {
				ins.SLAViolations.Inc()
			}
			// The reactive controller tolerates a 5% band over the SLA
			// so measurement noise cannot trigger spreads by itself.
			controlOK := ss.svc.W.SLAp99Ms <= 0 || r.E2EP99Ms <= ss.svc.W.SLAp99Ms*1.05
			if controlOK {
				ss.violations = 0
			} else {
				ss.violations++
				if ss.violations >= cfg.ViolationPatience {
					// Reactive control, in the paper's Observation 5
					// shape: first move the corunner — evict a batch
					// job sharing the hottest function's server —
					// and only spread the service itself when no
					// corunner is to blame. Either way the move is
					// the density price of crossing the SLA, paid
					// most often by inaccurate predictors.
					hot := ss.dep.Placement[worstFuncs(r, 1)[0]]
					if evictSC(state, activeSC, hot) {
						stats.Migrations++
						moved := 1
						if n := migrateWorst(m, state, ss, r, 1); n > 0 {
							stats.Migrations += n
							stats.ColdStarts += n
							moved += n
						}
						ss.cooldown = 20
						stepper.MarkDirty()
						refreshState(state, services, activeSC)
						if ins.Decisions != nil {
							rev = telemetry.ReactiveAction{SimTimeS: now, Action: "evict-corunner", Service: ss.svc.W.Name, Moved: moved}
							ins.Decisions.Reactive(&rev)
						}
					} else if n := migrateWorst(m, state, ss, r, 3); n > 0 {
						stats.Migrations += n
						stats.ColdStarts += n
						ss.cooldown = 40
						stepper.MarkDirty()
						refreshState(state, services, activeSC)
						if ins.Decisions != nil {
							rev = telemetry.ReactiveAction{SimTimeS: now, Action: "spread-service", Service: ss.svc.W.Name, Moved: n}
							ins.Decisions.Reactive(&rev)
						}
					}
					ss.violations = 0
				}
			}
			// Online learning feedback.
			if cfg.Predictor != nil && step%cfg.ObserveEvery == 0 {
				inputs := snapshotInputs(services, activeSC)
				_ = cfg.Predictor.Observe(core.IPCQoS, i, inputs, r.IPC)
			}
		}

		// Completed jobs leave the cluster.
		for _, done := range rep.Completed {
			if a, ok := activeSC[done.ID]; ok {
				state.Release(a.input.Name)
				delete(activeSC, done.ID)
			}
			stats.JCTs[done.Name] = append(stats.JCTs[done.Name], done.JCTS)
		}

		// Metrics.
		instances := 0
		for _, ss := range services {
			for _, r := range ss.dep.Replicas {
				instances += r
			}
		}
		instances += countSCInstances(activeSC)
		activeServers, cpuDem, memAlloc := 0, 0.0, 0.0
		for s, d := range rep.ServerDemand {
			if d.IsZero() && state.Used[s].IsZero() {
				continue
			}
			activeServers++
			cpuDem += d[resources.CPU]
			memAlloc += state.Used[s][resources.Memory]
		}
		if activeServers > 0 {
			activeCores := float64(activeServers) * coresPerServer
			density := float64(instances) / activeCores
			stats.Density = append(stats.Density, density)
			stats.CPUUtil = append(stats.CPUUtil, cpuDem/activeCores)
			stats.MemUtil = append(stats.MemUtil,
				memAlloc/(float64(activeServers)*spec.Capacity[resources.Memory]))
			okFrac, nSLA := 0.0, 0
			for i, ss := range services {
				if ss.svc.W.SLAp99Ms <= 0 {
					continue
				}
				nSLA++
				if rep.LS[i].E2EP99Ms <= ss.svc.W.SLAp99Ms {
					okFrac++
				}
			}
			if nSLA > 0 {
				okFrac /= float64(nSLA)
			} else {
				okFrac = 1
			}
			stats.GoodDensity = append(stats.GoodDensity, density*okFrac)
			stats.ActiveServers = append(stats.ActiveServers, float64(activeServers))
		}
		ins.Steps.Inc()
		ins.ActiveServers.SetInt(activeServers)
		span.End()
	}
	stats.Steps = step
	// Operational totals mirror the Stats counters so an exported
	// snapshot is self-contained.
	ins.Migrations.Add(uint64(stats.Migrations))
	ins.Reschedules.Add(uint64(stats.Reschedules))
	ins.ColdStarts.Add(uint64(stats.ColdStarts))
	ins.RejectedJobs.Add(uint64(stats.RejectedJobs))
	return stats, nil
}

// inputFor builds the scheduler-visible input of a deployment.
func inputFor(w *workload.Workload, dep *perfmodel.Deployment, ps []profile.Profile) core.WorkloadInput {
	in := core.WorkloadInput{
		Name:      w.Name,
		Class:     w.Class,
		Profiles:  ps,
		Placement: append([]int(nil), dep.Placement...),
		Replicas:  append([]int(nil), dep.Replicas...),
	}
	if w.Class == workload.LS {
		in.QPSFrac = perfmodel.LoadFactor(dep)
	} else {
		in.LifetimeS = w.SoloDurationS
	}
	return in
}

// refreshState rebuilds the scheduler state's bookkeeping after replica
// or placement changes.
func refreshState(state *sched.State, services []*serviceState, activeSC map[int]*scActive) {
	for s := range state.Used {
		state.Used[s] = resources.Vector{}
	}
	state.Running = state.Running[:0]
	for _, ss := range services {
		in := inputFor(ss.svc.W, ss.dep, ss.profiles)
		state.Commit(in, ss.svc.SLA)
	}
	for _, a := range sortedSC(activeSC) {
		state.Commit(a.input, a.sla)
	}
}

type scActive struct {
	id    int
	input core.WorkloadInput
	sla   sched.SLA
	dep   *perfmodel.Deployment
}

// sortedSC returns the active batch jobs in ascending submission order.
// activeSC is a map; consumers that fold float allocations in iteration
// order (refreshState), break ties by first-seen (evictSC) or feed the
// online learner (snapshotInputs) must not see Go's randomized map
// order, or same-seed runs diverge.
func sortedSC(activeSC map[int]*scActive) []*scActive {
	out := make([]*scActive, 0, len(activeSC))
	for _, a := range activeSC {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func countSCInstances(activeSC map[int]*scActive) int {
	n := 0
	for _, a := range activeSC {
		if a.input.Replicas == nil {
			n += len(a.input.Profiles)
			continue
		}
		for _, r := range a.input.Replicas {
			n += r
		}
	}
	return n
}

func snapshotInputs(services []*serviceState, activeSC map[int]*scActive) []core.WorkloadInput {
	inputs := make([]core.WorkloadInput, 0, len(services)+len(activeSC))
	for _, ss := range services {
		inputs = append(inputs, inputFor(ss.svc.W, ss.dep, ss.profiles))
	}
	for _, a := range sortedSC(activeSC) {
		inputs = append(inputs, a.input)
	}
	return inputs
}

// worstFuncs returns up to n function indices ordered by local p99,
// worst first — the migration candidates.
func worstFuncs(r perfmodel.LSResult, n int) []int {
	idx := make([]int, len(r.PerFunc))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.PerFunc[idx[a]].LocalP99Ms > r.PerFunc[idx[b]].LocalP99Ms
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

// migrateWorst spreads the n worst functions of a violating service to
// the emptiest servers — the platform's reactive control. It returns
// how many functions moved.
func migrateWorst(m *perfmodel.Model, state *sched.State, ss *serviceState, r perfmodel.LSResult, n int) int {
	moved := 0
	taken := map[int]bool{}
	// Prefer relieving pressure within the already-active fleet: waking
	// a dormant server is the last resort, so reactive control does not
	// silently destroy consolidation.
	pick := func(activeOnly bool) int {
		best, bestFree := -1, -1.0
		for s := range state.Caps {
			if taken[s] {
				continue
			}
			if activeOnly && state.Used[s].IsZero() {
				continue
			}
			free := state.Free(s)[resources.CPU]
			if free > bestFree {
				best, bestFree = s, free
			}
		}
		return best
	}
	for _, f := range worstFuncs(r, n) {
		best := pick(true)
		if best == -1 || best == ss.dep.Placement[f] {
			if alt := pick(false); alt != -1 && alt != ss.dep.Placement[f] {
				best = alt
			}
		}
		if best == -1 {
			continue
		}
		taken[best] = true
		if best == ss.dep.Placement[f] {
			continue
		}
		ss.dep.Placement[f] = best
		moved++
	}
	return moved
}

// evictSC moves one batch job off the hot server onto the emptiest
// other server — the paper's "move the corunner to another socket"
// control at cluster granularity. It reports whether a job moved.
func evictSC(state *sched.State, activeSC map[int]*scActive, hot int) bool {
	// Pick the largest co-located batch job (by CPU allocation).
	var victim *scActive
	victimCPU := 0.0
	for _, a := range sortedSC(activeSC) {
		onHot := false
		cpu := 0.0
		for f := range a.input.Profiles {
			if a.dep.Placement[f] == hot {
				onHot = true
			}
			cpu += sched.AllocOf(&a.input, f)[resources.CPU]
		}
		if onHot && cpu > victimCPU {
			victim, victimCPU = a, cpu
		}
	}
	if victim == nil {
		return false
	}
	best, bestFree := -1, -1.0
	for s := range state.Caps {
		if s == hot {
			continue
		}
		free := state.Free(s)[resources.CPU]
		if free > bestFree {
			best, bestFree = s, free
		}
	}
	if best == -1 {
		return false
	}
	for f := range victim.dep.Placement {
		victim.dep.Placement[f] = best
		victim.input.Placement[f] = best
	}
	return true
}
