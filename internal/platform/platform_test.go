package platform

import (
	"testing"

	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/resources"
	"gsight/internal/sched"
	"gsight/internal/trace"
	"gsight/internal/workload"
)

// fixedPredictor always reports a healthy IPC, so the Gsight scheduler
// packs maximally.
type fixedPredictor struct{ ipc float64 }

func (f *fixedPredictor) TrainObservations(core.QoSKind, []core.Observation) error { return nil }
func (f *fixedPredictor) Predict(core.QoSKind, int, []core.WorkloadInput) (float64, error) {
	return f.ipc, nil
}
func (f *fixedPredictor) Observe(core.QoSKind, int, []core.WorkloadInput, float64) error { return nil }
func (f *fixedPredictor) Flush(core.QoSKind) error                                       { return nil }
func (f *fixedPredictor) Name() string                                                   { return "fixed" }

func shortConfig(s sched.Scheduler, seed uint64) Config {
	return Config{
		Model:     perfmodel.New(resources.DefaultTestbed()),
		Scheduler: s,
		Services: []LSService{
			{
				W:       workload.SocialNetwork(),
				Pattern: trace.DefaultPattern(250),
				SLA:     sched.SLA{MinIPC: 0.9},
			},
			{
				W:       workload.ECommerce(),
				Pattern: trace.DefaultPattern(350),
				SLA:     sched.SLA{MinIPC: 1.0},
			},
		},
		SCPool:          []*workload.Workload{workload.MatMul(), workload.DD(), workload.FloatOp()},
		SCMeanIntervalS: 200,
		DurationS:       1800,
		StepS:           30,
		Seed:            seed,
	}
}

func TestRunProducesSeries(t *testing.T) {
	st, err := Run(nil, shortConfig(sched.NewWorstFit(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 60 {
		t.Fatalf("steps = %d, want 60", st.Steps)
	}
	if len(st.Density) == 0 || len(st.CPUUtil) == 0 || len(st.MemUtil) == 0 {
		t.Fatal("metric series empty")
	}
	for _, d := range st.Density {
		if d <= 0 {
			t.Fatal("non-positive density")
		}
	}
	for _, u := range append(append([]float64{}, st.CPUUtil...), st.MemUtil...) {
		if u < 0 || u > 2 {
			t.Fatalf("implausible utilization %v", u)
		}
	}
	if len(st.SLAOK["social-network"]) != st.Steps {
		t.Fatalf("SLA series length %d, want %d", len(st.SLAOK["social-network"]), st.Steps)
	}
	if st.ColdStarts == 0 {
		t.Fatal("no cold starts recorded")
	}
	if st.Placements == 0 {
		t.Fatal("no placements recorded")
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(nil, shortConfig(sched.NewWorstFit(), 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(nil, shortConfig(sched.NewWorstFit(), 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Density) != len(b.Density) {
		t.Fatal("series lengths differ")
	}
	for i := range a.Density {
		if a.Density[i] != b.Density[i] {
			t.Fatalf("density diverged at step %d", i)
		}
	}
	if a.ColdStarts != b.ColdStarts || a.Migrations != b.Migrations {
		t.Fatal("counters diverged")
	}
}

func TestPackingBeatsSpreadingOnDensity(t *testing.T) {
	packed, err := Run(nil, shortConfig(sched.NewGsight(&fixedPredictor{ipc: 99}), 3))
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Run(nil, shortConfig(sched.NewWorstFit(), 3))
	if err != nil {
		t.Fatal(err)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(packed.Density) <= mean(spread.Density) {
		t.Fatalf("packing density %v not above spreading %v",
			mean(packed.Density), mean(spread.Density))
	}
}

func TestSLARatio(t *testing.T) {
	st := &Stats{SLAOK: map[string][]bool{"x": {true, true, false, true}}}
	if got := st.SLARatio("x"); got != 0.75 {
		t.Fatalf("SLARatio = %v", got)
	}
	if got := st.SLARatio("ghost"); got != 0 {
		t.Fatalf("missing workload ratio = %v", got)
	}
}

func TestJCTsRecorded(t *testing.T) {
	cfg := shortConfig(sched.NewWorstFit(), 5)
	cfg.DurationS = 3600
	cfg.SCMeanIntervalS = 120
	st, err := Run(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, jcts := range st.JCTs {
		total += len(jcts)
		for _, j := range jcts {
			if j <= 0 {
				t.Fatal("non-positive JCT")
			}
		}
	}
	if total == 0 {
		t.Fatal("no batch jobs completed in an hour")
	}
}
