package profile

import (
	"testing"

	"gsight/internal/metrics"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/workload"
)

var spec = resources.DefaultServerSpec("test")

func TestSoloProfileDeterministicWithoutNoise(t *testing.T) {
	sn := workload.SocialNetwork()
	a := SoloProfile(sn, 0, spec, nil)
	b := SoloProfile(sn, 0, spec, nil)
	if a.Metrics != b.Metrics {
		t.Fatal("noiseless profiles must be identical")
	}
	if a.Workload != "social-network" || a.Function != "compose-post" {
		t.Fatalf("profile identity wrong: %s/%s", a.Workload, a.Function)
	}
}

func TestSoloProfileReflectsArchetype(t *testing.T) {
	ip := workload.Iperf()
	mm := workload.MatMul()
	pIperf := SoloProfile(ip, 0, spec, nil)
	pMM := SoloProfile(mm, 0, spec, nil)
	if pIperf.Metrics[metrics.NetBW] <= pMM.Metrics[metrics.NetBW] {
		t.Fatal("iperf must show more network bandwidth than matmul")
	}
	if pMM.Metrics[metrics.LLCOcc] <= pIperf.Metrics[metrics.LLCOcc] {
		t.Fatal("matmul must show a larger cache footprint than iperf")
	}
	if pMM.Metrics[metrics.IPC] <= pIperf.Metrics[metrics.IPC] {
		t.Fatal("matmul must show higher IPC than iperf")
	}
	dd := SoloProfile(workload.DD(), 0, spec, nil)
	if dd.Metrics[metrics.DiskIO] <= pMM.Metrics[metrics.DiskIO] {
		t.Fatal("dd must show more disk IO than matmul")
	}
}

func TestProfileNoiseIsSmallAndSeeded(t *testing.T) {
	sn := workload.SocialNetwork()
	a := SoloProfile(sn, 0, spec, rng.New(1))
	b := SoloProfile(sn, 0, spec, rng.New(1))
	if a.Metrics != b.Metrics {
		t.Fatal("same seed must reproduce")
	}
	clean := SoloProfile(sn, 0, spec, nil)
	for i := range a.Metrics {
		if clean.Metrics[i] == 0 {
			continue
		}
		rel := a.Metrics[i]/clean.Metrics[i] - 1
		if rel > 0.1 || rel < -0.1 {
			t.Fatalf("metric %v noise = %v, too large", metrics.ID(i), rel)
		}
	}
}

func TestAllocFor(t *testing.T) {
	a := AllocFor(resources.Vector{1.1, 0.3, 2, 1, 0.5, 10})
	// Requests are conservative: ~2x CPU usage in quarter cores,
	// ~1.5x memory in 128 MB steps.
	if a[resources.CPU] != 2.25 {
		t.Fatalf("CPU alloc = %v, want 2.25", a[resources.CPU])
	}
	if a[resources.Memory] != 0.5 {
		t.Fatalf("memory alloc = %v, want 0.5", a[resources.Memory])
	}
	if a[resources.LLC] != 2.5 {
		t.Fatalf("LLC alloc = %v, want 2.5", a[resources.LLC])
	}
	zero := AllocFor(resources.Vector{})
	if zero[resources.CPU] != 0.25 || zero[resources.Memory] != 0.125 {
		t.Fatalf("zero demand alloc = %v", zero)
	}
}

func TestWorkloadProfiles(t *testing.T) {
	sn := workload.SocialNetwork()
	ps := WorkloadProfiles(sn, spec, nil)
	if len(ps) != 9 {
		t.Fatalf("profiles = %d, want 9", len(ps))
	}
	for f, p := range ps {
		if p.Function != sn.Functions[f].Name {
			t.Fatalf("profile %d names %q", f, p.Function)
		}
	}
}

func TestMergedLosesStructure(t *testing.T) {
	sn := workload.SocialNetwork()
	ps := WorkloadProfiles(sn, spec, nil)
	m := Merged(ps)
	if m.Function != "merged" {
		t.Fatalf("merged name = %q", m.Function)
	}
	// Demands sum.
	want := sn.TotalDemand()
	if m.Demand != want {
		t.Fatalf("merged demand = %v, want %v", m.Demand, want)
	}
	// The merged IPC must sit inside the per-function range — an
	// average cannot preserve the extremes, which is exactly the
	// information loss Figure 5 demonstrates.
	var lo, hi float64 = 1e9, 0
	for _, p := range ps {
		if v := p.Metrics[metrics.IPC]; v < lo {
			lo = v
		}
		if v := p.Metrics[metrics.IPC]; v > hi {
			hi = v
		}
	}
	if m.Metrics[metrics.IPC] <= lo || m.Metrics[metrics.IPC] >= hi {
		t.Fatalf("merged IPC %v outside (%v, %v)", m.Metrics[metrics.IPC], lo, hi)
	}
	if Merged(nil).Workload != "" {
		t.Fatal("Merged(nil) should be zero")
	}
}

func TestScaleLoad(t *testing.T) {
	sn := workload.SocialNetwork()
	p := SoloProfile(sn, 0, spec, nil)
	half := ScaleLoad(p.Metrics, 0.5)
	if half[metrics.CPUUtil] != p.Metrics[metrics.CPUUtil]*0.5 {
		t.Fatal("CPU utilization must scale with load")
	}
	if half[metrics.IPC] != p.Metrics[metrics.IPC] {
		t.Fatal("IPC must not scale with load")
	}
	if half[metrics.LLCOcc] != p.Metrics[metrics.LLCOcc] {
		t.Fatal("LLC occupancy must not scale with load")
	}
	if neg := ScaleLoad(p.Metrics, -1); neg[metrics.CPUUtil] != 0 {
		t.Fatal("negative load clamps to zero")
	}
}

func TestCoRun(t *testing.T) {
	sn := workload.SocialNetwork()
	solo := SoloProfile(sn, 0, spec, nil).Metrics
	co := CoRun(solo, 1.5, 1.2, 0.8)
	if co[metrics.IPC] >= solo[metrics.IPC] {
		t.Fatal("co-run IPC must drop")
	}
	if co[metrics.L3MPKI] <= solo[metrics.L3MPKI] {
		t.Fatal("co-run L3 MPKI must rise")
	}
	if co[metrics.NetBW] >= solo[metrics.NetBW] {
		t.Fatal("co-run throughput must follow rate ratio")
	}
	// No interference: identical.
	same := CoRun(solo, 1, 1, 1)
	if same != solo {
		t.Fatal("sigma=1 rate=1 must be identity")
	}
	// Slowdowns below 1 are clamped.
	clamped := CoRun(solo, 0.5, 0.5, 1)
	if clamped[metrics.IPC] != solo[metrics.IPC] {
		t.Fatal("sub-1 slowdowns must clamp to 1")
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	sn := workload.SocialNetwork()
	ps := s.ProfileWorkload(sn, spec, nil)
	if len(ps) != 9 || s.Len() != 1 {
		t.Fatalf("store state wrong: %d profiles, %d workloads", len(ps), s.Len())
	}
	got, ok := s.Get("social-network")
	if !ok || len(got) != 9 {
		t.Fatal("Get failed")
	}
	if _, ok := s.Get("ghost"); ok {
		t.Fatal("ghost workload found")
	}
	// Put copies its input.
	ps[0].Function = "mutated"
	got, _ = s.Get("social-network")
	if got[0].Function == "mutated" {
		t.Fatal("store aliases caller slice")
	}
}

func TestProfileString(t *testing.T) {
	p := SoloProfile(workload.SocialNetwork(), 0, spec, nil)
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}
