// Package profile implements Gsight's solo-run profiling (§3.2): each
// function of each workload is characterized once on a dedicated
// server, producing a vector of system-layer and microarchitecture-layer
// metrics (Table 3). Profiles are non-intrusive — they are what perf and
// pqos-msr would report — and feed the prediction model together with
// the partial interference codes.
//
// In this reproduction the metrics are synthesized deterministically
// from the function archetypes, standing in for hardware counters: the
// synthesis is monotone in the underlying resource demands, so the
// learned model faces the same inference problem the paper's does
// (profiles in, QoS out), without ever seeing the ground-truth
// interference model.
package profile

import (
	"fmt"
	"math"

	"gsight/internal/metrics"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/workload"
)

// Profile is the solo-run characterization of one function.
type Profile struct {
	Workload string
	Function string
	// Metrics are the 19 candidate solo-run metrics at the reference
	// load (MaxQPS for LS entry-load, full-rate for SC).
	Metrics metrics.Vector
	// Demand is the measured solo resource consumption (the paper's
	// utilization vector U source).
	Demand resources.Vector
	// Alloc is the configured resource allocation (the paper's R
	// vector): demands rounded up to allocation granularity.
	Alloc resources.Vector
}

// AllocFor derives the configured resource request from a measured
// demand: requests are deliberately conservative, as production
// serverless deployments are — roughly twice the observed CPU usage
// rounded to quarter cores, 1.5x memory rounded to 128 MB steps, and a
// 25% headroom on the I/O resources. The gap between requests and
// true usage is precisely the capacity a request-based packer strands
// and an interference-predicting scheduler can safely reclaim
// (Figure 11's density argument).
func AllocFor(d resources.Vector) resources.Vector {
	var a resources.Vector
	a[resources.CPU] = math.Ceil(d[resources.CPU]*2*4) / 4
	a[resources.Memory] = math.Ceil(d[resources.Memory]*1.5*8) / 8
	for _, k := range []resources.Kind{resources.LLC, resources.MemBW, resources.Network, resources.Disk} {
		a[k] = d[k] * 1.25
	}
	if a[resources.CPU] == 0 {
		a[resources.CPU] = 0.25
	}
	if a[resources.Memory] == 0 {
		a[resources.Memory] = 0.125
	}
	return a
}

// SoloProfile characterizes function f of w under a solo run on a
// server of the given spec. A non-nil rnd adds the measurement noise a
// real 5-minute, 1 Hz collection exhibits.
func SoloProfile(w *workload.Workload, f int, spec resources.ServerSpec, rnd *rng.Rand) Profile {
	fn := &w.Functions[f]
	d := fn.Demand
	alloc := AllocFor(d)

	var v metrics.Vector
	v[metrics.IPC] = fn.SoloIPC
	v[metrics.CPUUtil] = clamp01(d[resources.CPU] / alloc[resources.CPU])
	v[metrics.MemUtil] = clamp01(d[resources.Memory] / alloc[resources.Memory])
	v[metrics.LLCOcc] = d[resources.LLC]
	v[metrics.NetBW] = d[resources.Network]
	v[metrics.RX] = 0.55 * d[resources.Network]
	// TX is a retransmission-rate proxy that carries almost no signal
	// (screened out by the Table 3 threshold).
	v[metrics.TX] = 0.02
	v[metrics.DiskIO] = d[resources.Disk]
	// MemIO and MemLP saturate on this platform and barely vary —
	// the paper's |corr| < 0.1 rejects.
	v[metrics.MemIO] = 11.5 + 0.02*d[resources.MemBW]
	v[metrics.MemLP] = 4.0 + 0.01*d[resources.MemBW]
	// Miss rates grow with working set and bandwidth appetite.
	v[metrics.L1DMPKI] = 6 + 1.8*d[resources.LLC]
	v[metrics.L1IMPKI] = 0.8 + 0.05*fn.BaseServiceMs
	v[metrics.L2MPKI] = 2.5 + 0.7*d[resources.LLC] + 0.35*d[resources.MemBW]
	v[metrics.L3MPKI] = 0.2 + 0.22*d[resources.MemBW]/maxf(0.5, fn.SoloIPC)
	v[metrics.DTLBMPKI] = 0.25 + 0.12*d[resources.Memory]
	v[metrics.ITLBMPKI] = 0.08 + 0.015*fn.BaseServiceMs
	v[metrics.BranchMPKI] = clampLo(2.0+4.0*(2.2-fn.SoloIPC), 0.3)
	// Context switches (thousands/s) rise with I/O appetite and, for
	// LS functions, with invocation handling.
	ctx := 0.4 + 1.5*d[resources.Network] + 0.01*d[resources.Disk]
	if w.Class == workload.LS && fn.BaseServiceMs > 0 {
		ctx += 2.5
	}
	v[metrics.ContextSwitches] = ctx
	v[metrics.CPUFreq] = spec.BaseFreqGHz * (1 - 0.06*v[metrics.CPUUtil])

	if rnd != nil {
		for i := range v {
			v[i] = rnd.Jitter(v[i], 0.015)
		}
	}
	return Profile{
		Workload: w.Name,
		Function: fn.Name,
		Metrics:  v,
		Demand:   d,
		Alloc:    alloc,
	}
}

// WorkloadProfiles profiles every function of w (one dedicated solo run
// each, §3.2's cost of M+N solo runs).
func WorkloadProfiles(w *workload.Workload, spec resources.ServerSpec, rnd *rng.Rand) []Profile {
	ps := make([]Profile, len(w.Functions))
	for f := range w.Functions {
		ps[f] = SoloProfile(w, f, spec, rnd)
	}
	return ps
}

// Merged aggregates function profiles into a single workload-level
// profile — the monolithic profiling baseline of Figure 5, which
// deliberately discards the per-function structure. Demands and rate
// metrics sum; intensive metrics average weighted by CPU demand.
func Merged(ps []Profile) Profile {
	if len(ps) == 0 {
		return Profile{}
	}
	out := Profile{Workload: ps[0].Workload, Function: "merged"}
	var vs []metrics.Vector
	var weights []float64
	for _, p := range ps {
		out.Demand = out.Demand.Add(p.Demand)
		vs = append(vs, p.Metrics)
		weights = append(weights, maxf(p.Demand[resources.CPU], 1e-6))
	}
	out.Alloc = AllocFor(out.Demand)
	out.Metrics = metrics.Mix(vs, weights)
	// Rate metrics add rather than average across functions.
	for _, id := range []metrics.ID{metrics.NetBW, metrics.RX, metrics.DiskIO, metrics.ContextSwitches, metrics.LLCOcc} {
		sum := 0.0
		for _, p := range ps {
			sum += p.Metrics[id]
		}
		out.Metrics[id] = sum
	}
	return out
}

// ScaleLoad returns the profile metrics at a load factor l relative to
// the profiling reference (the paper's "actual utilization ratios"):
// rate-like metrics scale with load, intensive metrics do not.
func ScaleLoad(v metrics.Vector, l float64) metrics.Vector {
	if l < 0 {
		l = 0
	}
	// TX (retransmission proxy) and MemIO saturate on this platform and
	// deliberately do not track load — they are the Table 3 rejects.
	for _, id := range []metrics.ID{
		metrics.CPUUtil, metrics.NetBW, metrics.RX,
		metrics.DiskIO, metrics.ContextSwitches,
	} {
		v[id] *= l
	}
	// Frequency droop follows utilization.
	v[metrics.CPUFreq] /= 1 + 0.02*(l-1)
	return v
}

// CoRun synthesizes the metrics a colocated run would report, given the
// solo profile and the model's compute/IO slowdowns and rate ratio.
// Used by the Table 3 correlation study, where metrics are collected
// under interference and correlated with performance.
func CoRun(solo metrics.Vector, sigmaC, sigmaIO, rateRatio float64) metrics.Vector {
	v := solo
	if sigmaC < 1 {
		sigmaC = 1
	}
	if sigmaIO < 1 {
		sigmaIO = 1
	}
	v[metrics.IPC] = solo[metrics.IPC] / sigmaC
	pc := sigmaC - 1
	v[metrics.L3MPKI] = solo[metrics.L3MPKI] * (1 + 1.8*pc)
	v[metrics.L2MPKI] = solo[metrics.L2MPKI] * (1 + 0.9*pc)
	v[metrics.L1DMPKI] = solo[metrics.L1DMPKI] * (1 + 0.25*pc)
	v[metrics.DTLBMPKI] = solo[metrics.DTLBMPKI] * (1 + 0.5*pc)
	v[metrics.BranchMPKI] = solo[metrics.BranchMPKI] * (1 + 0.15*pc)
	v[metrics.CPUFreq] = solo[metrics.CPUFreq] * (1 - 0.03*pc)
	// Rates follow the achieved throughput.
	for _, id := range []metrics.ID{
		metrics.NetBW, metrics.RX, metrics.DiskIO, metrics.ContextSwitches,
	} {
		v[id] = solo[id] * rateRatio
	}
	v[metrics.CPUUtil] = clamp01(solo[metrics.CPUUtil] * rateRatio * sigmaC)
	return v
}

// WithStartup returns the startup-inclusive profile of §5.2: when an
// invocation experiences a cold start, the predictor uses function
// profiles that contain the startup phase. frac is the cold-start rate
// the deployment experiences; the warm profile blends with the
// cold-cache startup characteristics in that proportion.
func WithStartup(p Profile, frac float64) Profile {
	if frac <= 0 {
		return p
	}
	if frac > 1 {
		frac = 1
	}
	out := p
	v := p.Metrics
	blend := func(id metrics.ID, coldFactor float64) {
		v[id] = v[id] * (1 + (coldFactor-1)*frac)
	}
	blend(metrics.IPC, 0.70)       // cold caches retire slowly
	blend(metrics.BranchMPKI, 1.5) // untrained predictors
	blend(metrics.L1IMPKI, 2.0)    // cold instruction cache
	blend(metrics.L1DMPKI, 1.6)    // cold data cache
	blend(metrics.L2MPKI, 1.6)
	blend(metrics.L3MPKI, 1.8)
	blend(metrics.ITLBMPKI, 1.8)
	blend(metrics.DTLBMPKI, 1.6)
	blend(metrics.ContextSwitches, 1.4) // runtime bootstrap chatter
	blend(metrics.CPUUtil, 1.15)        // startup work on top of serving
	out.Metrics = v
	return out
}

// Store holds solo-run profiles keyed by workload name.
type Store struct {
	byWorkload map[string][]Profile
}

// NewStore returns an empty profile store.
func NewStore() *Store {
	return &Store{byWorkload: make(map[string][]Profile)}
}

// Put stores the profiles of one workload, replacing earlier ones.
func (s *Store) Put(name string, ps []Profile) {
	cp := make([]Profile, len(ps))
	copy(cp, ps)
	s.byWorkload[name] = cp
}

// Get returns the stored profiles for a workload.
func (s *Store) Get(name string) ([]Profile, bool) {
	ps, ok := s.byWorkload[name]
	return ps, ok
}

// ProfileWorkload profiles w solo and stores the result.
func (s *Store) ProfileWorkload(w *workload.Workload, spec resources.ServerSpec, rnd *rng.Rand) []Profile {
	ps := WorkloadProfiles(w, spec, rnd)
	s.Put(w.Name, ps)
	return ps
}

// Len returns the number of profiled workloads.
func (s *Store) Len() int { return len(s.byWorkload) }

// String summarizes a profile for logs.
func (p Profile) String() string {
	return fmt.Sprintf("%s/%s ipc=%.2f cpu=%.0f%% llc=%.1fMB",
		p.Workload, p.Function, p.Metrics[metrics.IPC],
		100*p.Metrics[metrics.CPUUtil], p.Metrics[metrics.LLCOcc])
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clampLo(x, lo float64) float64 {
	if x < lo {
		return lo
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
