package experiments

import (
	"context"
	"fmt"
	"time"

	"gsight/internal/baselines"
	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/platform"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/sched"
	"gsight/internal/stats"
	"gsight/internal/trace"
	"gsight/internal/workload"
)

// scheduleStudy runs the trace-driven platform under the three
// schedulers of §6.3 — Gsight (binary-search, Gsight predictor), Best
// Fit (Pythia's policy and predictor), and Worst Fit — and returns the
// per-scheduler stats.
func scheduleStudy(ctx context.Context, opt Options) (map[string]*platform.Stats, error) {
	m, g := newLab(opt)

	// Train the two predictors on the same bootstrap dataset.
	obs, err := collectObs(ctx, g, core.LSSC, core.IPCQoS, opt.n(1200, 180), 3)
	if err != nil {
		return nil, err
	}
	jctObs, err := collectObs(ctx, g, core.SCSC, core.JCTQoS, opt.n(500, 80), 2)
	if err != nil {
		return nil, err
	}
	gsightP := core.NewPredictor(core.Config{Seed: opt.Seed})
	if err := gsightP.TrainObservations(core.IPCQoS, obs); err != nil {
		return nil, err
	}
	if err := gsightP.TrainObservations(core.JCTQoS, jctObs); err != nil {
		return nil, err
	}
	pythiaP := baselines.NewPythia(opt.Seed + 1)
	if err := pythiaP.TrainObservations(core.IPCQoS, obs); err != nil {
		return nil, err
	}
	if err := pythiaP.TrainObservations(core.JCTQoS, jctObs); err != nil {
		return nil, err
	}

	// SLAs via the Figure 7 latency->IPC transform.
	services := func() []platform.LSService {
		var out []platform.LSService
		for i, w := range []*workload.Workload{
			workload.SocialNetwork(), workload.ECommerce(), workload.MLServing(),
		} {
			curve := sched.BuildCurve(m, w, opt.n(250, 60), opt.Seed+uint64(i))
			minIPC, ok := curve.MinIPCFor(w.SLAp99Ms)
			if !ok {
				minIPC = 0
			}

			p := trace.DefaultPattern(w.MaxQPS * 0.42)
			// Softer diurnal swing than the default: the paper's
			// cluster keeps headroom at peak; saturating all eight
			// nodes would flatten every scheduler into full spread.
			p.DiurnalAmp = 0.30
			p.PhaseShift = float64(i) * 7200
			out = append(out, platform.LSService{
				W:       w,
				Pattern: p,
				SLA:     sched.SLA{MinIPC: minIPC},
			})
		}
		return out
	}

	scPool := []*workload.Workload{
		workload.MatMul(), workload.DD(), workload.Iperf(),
		workload.VideoProcessing(), workload.FloatOp(),
		workload.FeatureGeneration(), workload.DataPipeline(),
		workload.IoTCollector(), workload.Monitor(),
	}

	duration := 86400 * opt.Scale
	if duration < 7200 {
		duration = 7200
	}
	// The three scheduler runs are independent: each gets its own model,
	// scheduler (placement scratch is per-scheduler) and service set, all
	// built sequentially, and platform.Run derives its randomness from
	// Seed. They fan out across the worker pool with no shared mutable
	// state — the per-run predictors are only read during placement.
	entries := []struct {
		name string
		s    sched.Scheduler
	}{
		{"Gsight", sched.NewGsight(gsightP)},
		{"Pythia", sched.NewBestFit(pythiaP)},
		{"WorstFit", sched.NewWorstFit()},
	}
	svcSets := make([][]platform.LSService, len(entries))
	for i := range entries {
		svcSets[i] = services()
	}
	results := make([]*platform.Stats, len(entries))
	err = forEach(ctx, len(entries), func(i int) error {
		st, err := platform.Run(ctx, platform.Config{
			Model:           perfmodel.New(m.Testbed),
			Scheduler:       entries[i].s,
			Services:        svcSets[i],
			SCPool:          scPool,
			SCMeanIntervalS: 180,
			DurationS:       duration,
			StepS:           30,
			Seed:            opt.Seed,
		})
		if err != nil {
			return fmt.Errorf("experiments: %s run: %w", entries[i].name, err)
		}
		st.SchedulerName = entries[i].name
		results[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string]*platform.Stats{}
	for i, entry := range entries {
		out[entry.name] = results[i]
	}
	return out, nil
}

// cdfRow summarizes a series for the Figure 11 CDFs.
func cdfRow(name string, xs []float64) []string {
	if len(xs) == 0 {
		return []string{name, "-", "-", "-", "-", "-"}
	}
	s := stats.Summarize(xs)
	return []string{name, f2(s.Mean), f2(stats.Percentile(xs, 10)), f2(s.Median), f2(stats.Percentile(xs, 90)), f2(s.Max)}
}

// Fig11Scheduling regenerates Figure 11: function density, CPU
// utilization and memory utilization under the three schedulers.
func Fig11Scheduling(ctx context.Context, opt Options) (*Report, error) {
	runs, err := scheduleStudy(ctx, opt)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "fig11",
		Title:   "Scheduling results: density and utilization (per-step series summary)",
		Columns: []string{"series", "mean", "p10", "median", "p90", "max"},
	}
	for _, name := range []string{"Gsight", "Pythia", "WorstFit"} {
		st := runs[name]
		r.AddRow(cdfRow(name+" density (inst/core)", st.Density)...)
	}
	for _, name := range []string{"Gsight", "Pythia", "WorstFit"} {
		st := runs[name]
		r.AddRow(cdfRow(name+" CPU util", st.CPUUtil)...)
	}
	for _, name := range []string{"Gsight", "Pythia", "WorstFit"} {
		st := runs[name]
		r.AddRow(cdfRow(name+" mem util", st.MemUtil)...)
	}
	for _, name := range []string{"Gsight", "Pythia", "WorstFit"} {
		st := runs[name]
		r.AddRow(cdfRow(name+" QoS-compliant density", st.GoodDensity)...)
	}
	gg, pg, wg := stats.Mean(runs["Gsight"].GoodDensity), stats.Mean(runs["Pythia"].GoodDensity), stats.Mean(runs["WorstFit"].GoodDensity)
	r.AddNote("QoS-compliant density (density x in-SLA fraction): Gsight +%.1f%% vs Pythia, +%.1f%% vs WorstFit — the abstract's \"improve density while guaranteeing QoS\"",
		100*(gg/pg-1), 100*(gg/wg-1))
	gd, pd, wd := stats.Mean(runs["Gsight"].Density), stats.Mean(runs["Pythia"].Density), stats.Mean(runs["WorstFit"].Density)
	gc, pc, wc := stats.Mean(runs["Gsight"].CPUUtil), stats.Mean(runs["Pythia"].CPUUtil), stats.Mean(runs["WorstFit"].CPUUtil)
	gm, pm, wm := stats.Mean(runs["Gsight"].MemUtil), stats.Mean(runs["Pythia"].MemUtil), stats.Mean(runs["WorstFit"].MemUtil)
	r.AddNote("density: Gsight +%.1f%% vs Pythia, +%.1f%% vs WorstFit (paper: +18.79%% / +48.48%%)",
		100*(gd/pd-1), 100*(gd/wd-1))
	r.AddNote("CPU util: Gsight +%.1f%% vs Pythia, +%.1f%% vs WorstFit (paper: +30.02%% / +67.51%%)",
		100*(gc/pc-1), 100*(gc/wc-1))
	r.AddNote("memory util: Gsight +%.1f%% vs Pythia, +%.1f%% vs WorstFit (paper: +31.04%% / +76.91%%)",
		100*(gm/pm-1), 100*(gm/wm-1))
	r.AddNote("mean active servers: Gsight %.1f, Pythia %.1f, WorstFit %.1f (of 8)",
		stats.Mean(runs["Gsight"].ActiveServers), stats.Mean(runs["Pythia"].ActiveServers),
		stats.Mean(runs["WorstFit"].ActiveServers))
	r.AddNote("migrations: Gsight %d, Pythia %d, WorstFit %d; cold starts: %d/%d/%d",
		runs["Gsight"].Migrations, runs["Pythia"].Migrations, runs["WorstFit"].Migrations,
		runs["Gsight"].ColdStarts, runs["Pythia"].ColdStarts, runs["WorstFit"].ColdStarts)
	return r, nil
}

// Fig12SLA regenerates Figure 12: the fraction of time each LS service
// stays within its SLA under Gsight scheduling.
func Fig12SLA(ctx context.Context, opt Options) (*Report, error) {
	runs, err := scheduleStudy(ctx, opt)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "fig12",
		Title:   "SLA guarantee ratio over the trace-driven run",
		Columns: []string{"scheduler", "workload", "SLA p99 (ms)", "within-SLA time"},
	}
	slaOf := map[string]float64{
		"social-network": workload.SocialNetwork().SLAp99Ms,
		"e-commerce":     workload.ECommerce().SLAp99Ms,
	}
	for _, name := range []string{"Gsight", "Pythia", "WorstFit"} {
		st := runs[name]
		for _, w := range []string{"social-network", "e-commerce"} {
			r.AddRow(name, w, f0(slaOf[w]), pct(st.SLARatio(w)))
		}
	}
	r.AddNote("paper (Gsight): social network within SLA 95.39%% of the time, e-commerce 93.33%%")
	r.AddNote("measured Gsight: social network %s, e-commerce %s",
		pct(runs["Gsight"].SLARatio("social-network")), pct(runs["Gsight"].SLARatio("e-commerce")))
	return r, nil
}

// Fig14Overhead regenerates Figure 14: the online running cost —
// inference and incremental-update wall-clock, and the per-component
// breakdown of scheduling operations as the instance count grows.
func Fig14Overhead(ctx context.Context, opt Options) (*Report, error) {
	m, g := newLab(opt)

	obs, err := collectObs(ctx, g, core.LSSC, core.IPCQoS, opt.n(600, 120), 3)
	if err != nil {
		return nil, err
	}
	p := core.NewPredictor(core.Config{Seed: opt.Seed, UpdateEvery: 100})
	train, test := trainTest(obs, 5)
	if err := p.TrainObservations(core.IPCQoS, train); err != nil {
		return nil, err
	}

	// Inference latency.
	iter := opt.n(300, 60)
	t0 := time.Now()
	count := 0
	for count < iter {
		for _, o := range test {
			_, err := p.Predict(core.IPCQoS, o.Target, o.Inputs)
			if err != nil {
				return nil, err
			}
			count++
			if count >= iter {
				break
			}
		}
	}
	inferMs := float64(time.Since(t0).Microseconds()) / 1000 / float64(iter)

	// Incremental update latency (per batched update of 100).
	t0 = time.Now()
	updates := 0
	for _, o := range train {
		if err := p.Observe(core.IPCQoS, o.Target, o.Inputs, o.Label); err != nil {
			return nil, err
		}
		if p.SamplesSeen(core.IPCQoS)%100 == 0 {
			updates++
		}
		if updates >= 3 {
			break
		}
	}
	updateTotal := time.Since(t0)
	if updates == 0 {
		updates = 1
	}
	updateMs := float64(updateTotal.Microseconds()) / 1000 / float64(updates)

	r := &Report{
		ID:    "fig14",
		Title: "Online running cost and scalability",
		Columns: []string{"instances", "forwarding (ms)", "scheduling (ms)", "instance start (ms)",
			"resource alloc (ms)"},
	}

	// Component breakdown vs instance count: forwarding through the
	// gateway model, scheduling decision wall-clock, cold-start time,
	// and per-instance resource-allocation actuation (~2 ms of cgroup
	// + RDT programming per instance).
	sn := workload.SocialNetwork()
	spec := m.Testbed.Servers[0]
	for _, instances := range []int{10, 40, 80, 110, 140, 170} {
		// forwarding: per-invocation gateway latency at this scale
		gwBase := m.Cfg.GatewayBaseMs
		ex := (float64(instances) - m.Cfg.GatewayKneeInst) / m.Cfg.GatewayInstSlope
		gw := gwBase
		if ex > 0 {
			gw *= 1 + ex*ex
		}
		// scheduling decision: place a workload onto a cluster with
		// that many instances resident, measured.
		st := sched.StateFromProfiles(spec, m.Testbed.NumServers())
		seedIn := platformInput(sn, instances, spec)
		st.Commit(seedIn, sched.SLA{})
		gs := sched.NewGsight(p)
		req := &sched.Request{Input: platformInput(workload.ECommerce(), 6, spec), SLA: sched.SLA{MinIPC: 0.5}}
		t0 := time.Now()
		if _, err := gs.Place(st, req); err != nil {
			return nil, err
		}
		schedMs := float64(time.Since(t0).Microseconds()) / 1000
		// instance start: mean cold start across the workload's functions
		var cold float64
		for _, f := range sn.Functions {
			cold += f.ColdStartMs
		}
		cold /= float64(len(sn.Functions))
		r.AddRow(fmt.Sprintf("%d", instances), f2(gw), f2(schedMs), f0(cold), f2(2.0))
	}
	r.AddNote("measured inference %.2f ms (paper: 3.48 ms), incremental update %.1f ms per batch (paper: 24.78 ms)", inferMs, updateMs)
	r.AddNote("forwarding degrades sharply past ~%d instances — the paper's gateway bottleneck at ~120", int(m.Cfg.GatewayKneeInst))
	return r, nil
}

// platformInput builds a scheduler input whose replica counts sum to
// roughly the requested instance total.
func platformInput(w *workload.Workload, instances int, spec resources.ServerSpec) core.WorkloadInput {
	in := core.WorkloadInput{
		Name:      w.Name,
		Class:     w.Class,
		Profiles:  profile.WorkloadProfiles(w, spec, nil),
		Placement: make([]int, len(w.Functions)),
		Replicas:  make([]int, len(w.Functions)),
		QPSFrac:   0.5,
	}
	per := instances / len(w.Functions)
	if per < 1 {
		per = 1
	}
	for f := range w.Functions {
		in.Replicas[f] = per
	}
	return in
}
