package experiments

import (
	"context"
	"fmt"
	"time"

	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/platform"
	"gsight/internal/sched"
	"gsight/internal/stats"
	"gsight/internal/trace"
	"gsight/internal/workload"
)

// ExtSoak is the long-horizon soak: the trace-driven platform replays
// multi-day horizons with the trace.Scaling knob turned up — the rate
// factor multiplies every service's offered load (and its MaxQPS
// ceiling, so the diurnal shape survives the clamp) and the time
// factor compresses the trace clock so each simulated day carries
// several days of diurnal/weekly structure. The scaled variants push
// hundreds of millions of invocations per simulated day through the
// step loop, which only stays affordable because the loop is
// allocation-free; wall-clock steps/s is reported alongside SLA and
// density so throughput regressions surface as experiment output.
func ExtSoak(ctx context.Context, opt Options) (*Report, error) {
	m, g := newLab(opt)

	obs, err := collectObs(ctx, g, core.LSSC, core.IPCQoS, opt.n(900, 150), 3)
	if err != nil {
		return nil, err
	}
	jctObs, err := collectObs(ctx, g, core.SCSC, core.JCTQoS, opt.n(400, 70), 2)
	if err != nil {
		return nil, err
	}
	p := core.NewPredictor(core.Config{Seed: opt.Seed})
	if err := p.TrainObservations(core.IPCQoS, obs); err != nil {
		return nil, err
	}
	if err := p.TrainObservations(core.JCTQoS, jctObs); err != nil {
		return nil, err
	}

	// The rate factor is bounded by placement feasibility: the initial
	// deployment sizes replicas at RateAt(0)*1.1 and each function's
	// replica block must fit one server, so services designed near
	// MaxQPS tolerate roughly a 2x rate before deployment fails. Extra
	// volume beyond that comes from time compression, which raises the
	// trace-days replayed per simulated day without touching the
	// instantaneous load.
	variants := []struct {
		name string
		sc   trace.Scaling
	}{
		{"baseline", trace.Scaling{}},
		{"rate x2", trace.Scaling{RateFactor: 2}},
		{"rate x2, time x8", trace.Scaling{RateFactor: 2, TimeFactor: 8}},
	}

	duration := 172800 * opt.Scale // two simulated days at full scale
	if duration < 7200 {
		duration = 7200
	}
	days := duration / 86400

	r := &Report{
		ID:    "ext-soak",
		Title: "Long-horizon soak: scaled trace replay through the allocation-free step loop",
		Columns: []string{"scenario", "Minv/day", "steps", "steps/s wall",
			"SLA ratio", "density"},
	}

	// Variants run sequentially — parallel runs would share cores and
	// make the wall-clock steps/s column meaningless.
	for _, v := range variants {
		var services []platform.LSService
		for i, w := range []*workload.Workload{
			workload.SocialNetwork(), workload.ECommerce(), workload.MLServing(),
		} {
			curve := sched.BuildCurve(m, w, opt.n(250, 60), opt.Seed+uint64(i))
			minIPC, ok := curve.MinIPCFor(w.SLAp99Ms)
			if !ok {
				minIPC = 0
			}
			pat := trace.DefaultPattern(w.MaxQPS * 0.6)
			pat.PhaseShift = float64(i) * 7200
			if !v.sc.IsZero() {
				pat = v.sc.Apply(pat)
				w = w.Clone()
				w.MaxQPS *= v.sc.Rate()
			}
			services = append(services, platform.LSService{W: w, Pattern: pat, SLA: sched.SLA{MinIPC: minIPC}})
		}
		t0 := time.Now()
		st, err := platform.Run(ctx, platform.Config{
			Model:           perfmodel.New(m.Testbed),
			Scheduler:       sched.NewGsight(p),
			Services:        services,
			SCPool:          []*workload.Workload{workload.MatMul(), workload.DD()},
			SCMeanIntervalS: 300,
			DurationS:       duration,
			StepS:           30,
			Seed:            opt.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: soak %s run: %w", v.name, err)
		}
		wall := time.Since(t0).Seconds()
		sps := 0.0
		if wall > 0 {
			sps = float64(st.Steps) / wall
		}
		r.AddRow(v.name, f1(st.Invocations/1e6/days), fmt.Sprintf("%d", st.Steps),
			f0(sps), pct(meanSLARatio(st)), f2(stats.Mean(st.Density)))
		if !v.sc.IsZero() {
			r.AddNote("%s: %.1fM invocations replayed over %.2f simulated days (%.1f trace-days of diurnal structure)",
				v.name, st.Invocations/1e6, days, days*v.sc.Time())
		}
	}
	r.AddNote("rate scaling multiplies both the offered load and MaxQPS, so autoscaling tracks the scaled diurnal curve instead of saturating at the unscaled ceiling")
	return r, nil
}

// meanSLARatio averages the per-service SLA-guarantee ratio of a run.
func meanSLARatio(st *platform.Stats) float64 {
	sum, n := 0.0, 0
	for name := range st.SLAOK {
		sum += st.SLARatio(name)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
