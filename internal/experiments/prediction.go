package experiments

import (
	"context"
	"fmt"

	"gsight/internal/baselines"
	"gsight/internal/core"
	"gsight/internal/metrics"
	"gsight/internal/perfmodel"
	"gsight/internal/profile"
	"gsight/internal/rng"
	"gsight/internal/scenario"
	"gsight/internal/sched"
	"gsight/internal/stats"
	"gsight/internal/workload"
)

// Table3Correlations regenerates Table 3: the Pearson and Spearman
// correlations between each candidate metric (collected under
// colocation) and the workload's performance, which drive the
// 16-metric feature screening of §3.2.
func Table3Correlations(ctx context.Context, opt Options) (*Report, error) {
	m, g := newLab(opt)
	nScen := opt.n(400, 80)

	// Collect (co-run metric vector, performance) pairs per deployed
	// LS workload: performance is the IPC ratio to solo.
	series := make([][]float64, metrics.NumCandidates)
	var perf []float64
	for i := 0; i < nScen; i++ {
		sc := g.Colocation(core.LSSC, 2+g.Rand().Intn(2))
		res, err := m.Evaluate(sc, g.Rand().Split())
		if err != nil {
			return nil, err
		}
		for di, d := range sc.Deployments {
			if d.W.Class != workload.LS {
				continue
			}
			r := res.Deployments[di]
			ps, ok := g.Store.Get(d.W.Name)
			if !ok {
				continue
			}
			merged := profile.Merged(ps)
			// aggregate slowdown from the per-function results
			var sigmaC, rate float64
			for _, pf := range r.PerFunc {
				sigmaC += pf.Slowdown
			}
			sigmaC /= float64(len(r.PerFunc))
			if d.QPS > 0 {
				rate = r.EffQPS / d.QPS
			} else {
				rate = 1
			}
			load := 1.0
			if d.W.MaxQPS > 0 {
				load = d.QPS / d.W.MaxQPS
			}
			co := profile.CoRun(profile.ScaleLoad(merged.Metrics, load), sigmaC, 1, rate)
			noise := g.Rand().Split()
			for mi := 0; mi < int(metrics.NumCandidates); mi++ {
				// per-window collection noise, as a real 1 Hz perf
				// sampling run exhibits
				series[mi] = append(series[mi], noise.Jitter(co[metrics.ID(mi)], 0.03))
			}
			solo := merged.Metrics[metrics.IPC]
			perf = append(perf, r.IPC/solo)
		}
	}

	r := &Report{
		ID:      "table3",
		Title:   "Correlation between metrics and performance",
		Columns: []string{"metric", "Pearson", "Spearman", "screened"},
	}
	selected := map[metrics.ID]bool{}
	for _, id := range metrics.Selected() {
		selected[id] = true
	}
	for mi := 0; mi < int(metrics.NumCandidates); mi++ {
		id := metrics.ID(mi)
		pear, err := stats.Pearson(series[mi], perf)
		if err != nil {
			return nil, err
		}
		spear, err := stats.Spearman(series[mi], perf)
		if err != nil {
			return nil, err
		}
		mark := "kept"
		if !selected[id] {
			mark = "dropped (|corr|<0.1)"
		}
		r.AddRow(id.String(), f2(pear), f2(spear), mark)
	}
	r.AddNote("the paper keeps 16 of 19 candidates, dropping those with |corr| < 0.1 (our screening drops mlp, memory-io, tx)")
	return r, nil
}

// trainVariants builds the five Gsight model variants of Figures 5
// and 9.
func trainVariants(seed uint64) []core.QoSPredictor {
	return []core.QoSPredictor{
		baselines.NewGsightVariant("IKNN", baselines.IKNNFactory, seed+1),
		baselines.NewGsightVariant("ILR", baselines.ILRFactory, seed+2),
		core.NewPredictor(core.Config{Seed: seed + 3}), // IRFR
		baselines.NewGsightVariant("ISVR", baselines.ISVRFactory, seed+4),
		baselines.NewGsightVariant("IMLP", baselines.IMLPFactory, seed+5),
	}
}

// Fig5ProfilingLevel regenerates Figure 5: prediction error
// distributions under function-level vs workload-level profiling,
// trained on the multi-function feature-generation and e-commerce
// workloads and evaluated on the social network, across five learning
// models.
func Fig5ProfilingLevel(ctx context.Context, opt Options) (*Report, error) {
	_, g := newLab(opt)
	// Restrict the generator's LS pool so training never sees the
	// social network.
	g.LSPool = []*workload.Workload{workload.ECommerce()}
	// Strong interferers: the which-function attribution is the signal
	// under study, so the corunners must matter when they land.
	g.SCPool = []*workload.Workload{
		workload.FeatureGeneration(), workload.MatMul(), workload.VideoProcessing(),
	}
	nTrain := opt.n(900, 150)
	nTest := opt.n(200, 40)

	type labeled struct {
		fn core.Observation // function-level encoding inputs
		wl core.Observation // workload-level encoding inputs
	}
	// Targeted-colocation scenarios: the corunner lands exactly beside
	// one randomly chosen function of the LS target — the paper's
	// spatially-varied partial interference, where workload-level
	// profiling cannot tell which function is being squeezed.
	m := g.Model
	collect := func(scenarios int, ls *workload.Workload) ([]labeled, error) {
		var out []labeled
		for i := 0; i < scenarios; i++ {
			d := perfmodel.SpreadDeployment(ls, m.Testbed)
			d.QPS = ls.MaxQPS * g.Rand().Range(0.45, 0.65)
			co := g.SCPool[g.Rand().Intn(len(g.SCPool))].Clone()
			c := perfmodel.NewDeployment(co)
			target := g.Rand().Intn(len(ls.Functions))
			for cf := range c.Placement {
				c.Placement[cf] = d.Placement[target]
				c.Socket[cf] = d.Socket[target]
			}
			sc := &perfmodel.Scenario{Deployments: []*perfmodel.Deployment{d, c}}
			samples, err := g.Label(sc)
			if err != nil {
				return nil, err
			}
			for _, s := range samples {
				if s.Kind != core.IPCQoS || s.Inputs[s.Target].Class != workload.LS {
					continue
				}
				// workload-level twin: every input merged
				wlInputs := make([]core.WorkloadInput, len(s.Inputs))
				for j, in := range s.Inputs {
					ps, _ := g.Store.Get(in.Name)
					dep := sc.Deployments[j]
					wlInputs[j] = scenario.InputWorkloadLevel(dep, profile.Merged(ps))
				}
				out = append(out, labeled{
					fn: core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label},
					wl: core.Observation{Target: s.Target, Inputs: wlInputs, Label: s.Label},
				})
			}
		}
		return out, nil
	}

	// The paper trains on multi-function workload traces (its
	// feature-generation and e-commerce) and evaluates on the unseen
	// social network: generalization rides on the function-level
	// profiles. Two multi-function training targets give the model
	// enough distinct function archetypes to learn the
	// profile -> degradation mapping it must transfer.
	train, err := collect(nTrain/2, workload.ECommerce())
	if err != nil {
		return nil, err
	}
	trainML, err := collect(nTrain/2, workload.MLServing())
	if err != nil {
		return nil, err
	}
	train = append(train, trainML...)
	test, err := collect(nTest, workload.SocialNetwork())
	if err != nil {
		return nil, err
	}
	split := func(ls []labeled, fn bool) []core.Observation {
		out := make([]core.Observation, len(ls))
		for i, l := range ls {
			if fn {
				out[i] = l.fn
			} else {
				out[i] = l.wl
			}
		}
		return out
	}

	r := &Report{
		ID:      "fig5",
		Title:   "Function-level vs workload-level profiling (IPC error on unseen social network)",
		Columns: []string{"model", "fn-level median", "fn-level mean", "wl-level median", "wl-level mean", "wl/fn median"},
	}
	var fnMedians, wlMedians []float64
	for i, mk := range []func() core.QoSPredictor{
		func() core.QoSPredictor { return baselines.NewGsightVariant("IKNN", baselines.IKNNFactory, opt.Seed+1) },
		func() core.QoSPredictor { return baselines.NewGsightVariant("ILR", baselines.ILRFactory, opt.Seed+2) },
		func() core.QoSPredictor { return core.NewPredictor(core.Config{Seed: opt.Seed + 3}) },
		func() core.QoSPredictor { return baselines.NewGsightVariant("ISVR", baselines.ISVRFactory, opt.Seed+4) },
		func() core.QoSPredictor { return baselines.NewGsightVariant("IMLP", baselines.IMLPFactory, opt.Seed+5) },
	} {
		names := []string{"IKNN", "ILR", "IRFR", "ISVR", "IMLP"}
		pf := mk()
		if err := pf.TrainObservations(core.IPCQoS, split(train, true)); err != nil {
			return nil, err
		}
		fnErrs, err := errsOf(pf, core.IPCQoS, split(test, true))
		if err != nil {
			return nil, err
		}
		pw := mk()
		if err := pw.TrainObservations(core.IPCQoS, split(train, false)); err != nil {
			return nil, err
		}
		wlErrs, err := errsOf(pw, core.IPCQoS, split(test, false))
		if err != nil {
			return nil, err
		}
		fnMed, wlMed := stats.Median(fnErrs), stats.Median(wlErrs)
		fnMedians = append(fnMedians, fnMed)
		wlMedians = append(wlMedians, wlMed)
		r.AddRow(names[i], pct(fnMed), pct(stats.Mean(fnErrs)), pct(wlMed), pct(stats.Mean(wlErrs)),
			f2(wlMed/fnMed))
	}
	r.AddNote("paper: function-level medians are ~2x lower (up to 4x) than workload-level; measured mean ratio %.1fx",
		stats.Mean(wlMedians)/stats.Mean(fnMedians))
	return r, nil
}

// Fig7Knee regenerates Figure 7: the latency-IPC correlation curve of
// an LS service, with its knee.
func Fig7Knee(ctx context.Context, opt Options) (*Report, error) {
	m, _ := newLab(opt)
	sn := workload.SocialNetwork()
	curve := sched.BuildCurve(m, sn, opt.n(400, 80), opt.Seed)
	pts := curve.Points()

	r := &Report{
		ID:      "fig7",
		Title:   "Latency-IPC curve for the social network (bucketed)",
		Columns: []string{"IPC bucket", "samples", "mean p99 (ms)", "p99 CoV"},
	}
	lo, hi := pts[0].IPC, pts[len(pts)-1].IPC
	const buckets = 8
	width := (hi - lo) / buckets
	for b := 0; b < buckets; b++ {
		var lats []float64
		for _, p := range pts {
			if p.IPC >= lo+float64(b)*width && p.IPC < lo+float64(b+1)*width+1e-12 {
				lats = append(lats, p.P99Ms)
			}
		}
		if len(lats) == 0 {
			continue
		}
		r.AddRow(fmt.Sprintf("%.2f-%.2f", lo+float64(b)*width, lo+float64(b+1)*width),
			fmt.Sprintf("%d", len(lats)), f1(stats.Mean(lats)), f2(stats.CoV(lats)))
	}
	minIPC, ok := curve.MinIPCFor(sn.SLAp99Ms)
	if ok {
		r.AddNote("SLA transform: p99 <= %.0f ms maps to IPC >= %.2f (§6.3's latency->IPC conversion)", sn.SLAp99Ms, minIPC)
	}
	// Knee: the lowest IPC quartile lives in an exploded, volatile
	// latency regime; the highest quartile sits in a tight band that
	// the SLA transform can invert (Figure 7's message).
	q := len(pts) / 4
	if q > 0 {
		var loLat, hiLat []float64
		for i := 0; i < q; i++ {
			loLat = append(loLat, pts[i].P99Ms)
			hiLat = append(hiLat, pts[len(pts)-1-i].P99Ms)
		}
		r.AddNote("knee: mean p99 %.0f ms (CoV %.2f) in the lowest IPC quartile vs %.0f ms (CoV %.2f) in the highest",
			stats.Mean(loLat), stats.CoV(loLat), stats.Mean(hiLat), stats.CoV(hiLat))
	}
	return r, nil
}

// Fig8Importance regenerates Figure 8: the impurity-based importance of
// the 16 input metrics in the trained IRFR model.
func Fig8Importance(ctx context.Context, opt Options) (*Report, error) {
	_, g := newLab(opt)
	all, err := collectObs(ctx, g, core.LSSC, core.IPCQoS, opt.n(700, 120), 3)
	if err != nil {
		return nil, err
	}
	// The scheduling model predicts LS QoS; importance is reported for
	// it (SC-target samples would make disk contention look
	// informative through dd's own JCT).
	var obs []core.Observation
	for _, o := range all {
		if o.Inputs[o.Target].Class == workload.LS {
			obs = append(obs, o)
		}
	}
	p := core.NewPredictor(core.Config{Seed: opt.Seed})
	if err := p.TrainObservations(core.IPCQoS, obs); err != nil {
		return nil, err
	}
	imp := p.MetricImportance(core.IPCQoS)
	r := &Report{
		ID:      "fig8",
		Title:   "Impurity-based importance of the 16 metrics (IRFR, IPC model)",
		Columns: []string{"metric", "importance"},
	}
	sel := metrics.Selected()
	minIdx := 0
	for i, id := range sel {
		r.AddRow(id.String(), fmt.Sprintf("%.4f", imp[i]))
		if imp[i] < imp[minIdx] {
			minIdx = i
		}
	}
	r.AddNote("least informative input: %s (paper: disk IO is the one uninformative metric)", sel[minIdx])
	return r, nil
}

// Fig9PredictionError regenerates Figure 9: IPC and tail-latency (JCT
// for SC+SC/BG) prediction errors of the five Gsight model variants and
// the Pythia/ESP baselines across the three colocation forms.
func Fig9PredictionError(ctx context.Context, opt Options) (*Report, error) {
	_, g := newLab(opt)
	r := &Report{
		ID:      "fig9",
		Title:   "Prediction error by model and colocation",
		Columns: []string{"colocation", "QoS", "IKNN", "ILR", "IRFR", "ISVR", "IMLP", "Pythia", "ESP"},
	}
	nScen := opt.n(2500, 250)
	kinds := []struct {
		colo core.ColocationKind
		qos  []core.QoSKind
	}{
		{core.LSLS, []core.QoSKind{core.IPCQoS, core.TailLatencyQoS}},
		{core.LSSC, []core.QoSKind{core.IPCQoS, core.TailLatencyQoS}},
		{core.SCSC, []core.QoSKind{core.IPCQoS, core.JCTQoS}},
	}
	var irfrLSSC float64
	for _, k := range kinds {
		for _, qos := range k.qos {
			obs, err := collectObs(ctx, g, k.colo, qos, nScen, 3)
			if err != nil {
				return nil, err
			}
			// The paper's Figure 9 predicts the latency-sensitive
			// workload's QoS in LS-bearing colocations (SC corunners
			// are judged by JCT, the SC+SC/BG row).
			if k.colo != core.SCSC {
				filtered := obs[:0]
				for _, o := range obs {
					if o.Inputs[o.Target].Class == workload.LS {
						filtered = append(filtered, o)
					}
				}
				obs = filtered
			}
			train, test := trainTest(obs, 5)
			preds := trainVariants(opt.Seed)
			preds = append(preds, baselines.NewPythia(opt.Seed+10), baselines.NewESP(opt.Seed+11))
			row := []string{k.colo.String(), qos.String()}
			for pi, p := range preds {
				if err := p.TrainObservations(qos, train); err != nil {
					return nil, err
				}
				e, err := mapeOf(p, qos, test)
				if err != nil {
					return nil, err
				}
				row = append(row, pct(e))
				if pi == 2 && k.colo == core.LSSC && qos == core.IPCQoS {
					irfrLSSC = e
					errs, err := errsOf(p, qos, test)
					if err != nil {
						return nil, err
					}
					lo, hi, err := stats.BootstrapCI(errs, 1000, 0.95, rng.Stream(opt.Seed, "fig9-ci"))
					if err == nil {
						r.AddNote("IRFR LS+SC/BG IPC error 95%% bootstrap CI: [%s, %s]", pct(lo), pct(hi))
					}
				}
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("IRFR IPC error under LS+SC/BG: %s (paper: 1.71%%); paper finds IRFR best, Pythia/ESP clearly worse, tail latency hardest", pct(irfrLSSC))
	return r, nil
}

// convergenceTrack trains a fresh IRFR predictor incrementally in
// batches and records the test error after each cumulative sample
// count.
func convergenceTrack(p core.QoSPredictor, train, test []core.Observation, checkpoints []int) ([]float64, error) {
	var errs []float64
	prev := 0
	for _, cp := range checkpoints {
		if cp > len(train) {
			cp = len(train)
		}
		batch := train[prev:cp]
		prev = cp
		if len(batch) > 0 {
			for _, o := range batch {
				if err := p.Observe(core.IPCQoS, o.Target, o.Inputs, o.Label); err != nil {
					return nil, err
				}
			}
			if err := p.Flush(core.IPCQoS); err != nil {
				return nil, err
			}
		}
		e, err := mapeOf(p, core.IPCQoS, test)
		if err != nil {
			return nil, err
		}
		errs = append(errs, e)
	}
	return errs, nil
}

// Fig10aConvergence regenerates Figure 10(a): incremental-learning
// convergence with serverless (function-level) vs serverful
// (workload-level) samples.
func Fig10aConvergence(ctx context.Context, opt Options) (*Report, error) {
	m, g := newLab(opt)
	nScen := opt.n(2500, 260)
	checkFracs := []float64{1. / 8, 2. / 8, 3. / 8, 4. / 8, 5. / 8, 6. / 8, 7. / 8, 1}

	var fnObs, wlObs []core.Observation
	for i := 0; i < nScen; i++ {
		sc := g.Colocation(core.LSSC, 2)
		samples, err := g.Label(sc)
		if err != nil {
			return nil, err
		}
		for _, s := range samples {
			if s.Kind != core.IPCQoS {
				continue
			}
			fnObs = append(fnObs, core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label})
			wl := make([]core.WorkloadInput, len(s.Inputs))
			for j, in := range s.Inputs {
				ps, _ := g.Store.Get(in.Name)
				wl[j] = scenario.InputWorkloadLevel(sc.Deployments[j], profile.Merged(ps))
			}
			wlObs = append(wlObs, core.Observation{Target: s.Target, Inputs: wl, Label: s.Label})
		}
	}
	_ = m
	fnTrain, fnTest := trainTest(fnObs, 6)
	wlTrain, wlTest := trainTest(wlObs, 6)
	var checkpoints []int
	for _, f := range checkFracs {
		checkpoints = append(checkpoints, int(f*float64(len(fnTrain))))
	}

	fnErrs, err := convergenceTrack(core.NewPredictor(core.Config{Seed: opt.Seed, UpdateEvery: 1 << 30}), fnTrain, fnTest, checkpoints)
	if err != nil {
		return nil, err
	}
	wlErrs, err := convergenceTrack(core.NewPredictor(core.Config{Seed: opt.Seed + 1, UpdateEvery: 1 << 30}), wlTrain, wlTest, checkpoints)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:      "fig10a",
		Title:   "Incremental convergence: serverless (function-level) vs serverful (workload-level)",
		Columns: []string{"samples", "serverless error", "serverful error"},
	}
	for i, cp := range checkpoints {
		r.AddRow(fmt.Sprintf("%d", cp), pct(fnErrs[i]), pct(wlErrs[i]))
	}
	// Convergence speedup: samples the serverful track needs to reach
	// the serverless error at the first checkpoint.
	speedup := float64(len(wlTrain)) / float64(checkpoints[0])
	for i, e := range wlErrs {
		if e <= fnErrs[0] {
			speedup = float64(checkpoints[i]) / float64(checkpoints[0])
			break
		}
	}
	r.AddNote("paper: serverless errors 3.41/2.55/2.09%% at 1k/2k/3k vs serverful 6.5/4.74/3.75%%; convergence >=3x faster")
	r.AddNote("measured convergence advantage: serverful needs >=%.1fx the samples to match the first serverless checkpoint", speedup)
	return r, nil
}

// Fig10bStability regenerates Figure 10(b): error stability of IRFR as
// samples accumulate.
func Fig10bStability(ctx context.Context, opt Options) (*Report, error) {
	_, g := newLab(opt)
	obs, err := collectObs(ctx, g, core.LSSC, core.IPCQoS, opt.n(3600, 350), 2)
	if err != nil {
		return nil, err
	}
	train, test := trainTest(obs, 6)
	var checkpoints []int
	for f := 1; f <= 6; f++ {
		checkpoints = append(checkpoints, len(train)*f/6)
	}
	errs, err := convergenceTrack(core.NewPredictor(core.Config{Seed: opt.Seed, UpdateEvery: 1 << 30}), train, test, checkpoints)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "fig10b",
		Title:   "IRFR stability after convergence",
		Columns: []string{"samples", "error"},
	}
	for i, cp := range checkpoints {
		r.AddRow(fmt.Sprintf("%d", cp), pct(errs[i]))
	}
	last, first := errs[len(errs)-1], errs[0]
	r.AddNote("paper: error stays below 2.09%% after 3k samples, approaching 1%% at 9k; measured %.2f%% -> %.2f%%", 100*first, 100*last)
	if last > first {
		r.AddNote("warning: error did not improve with more samples")
	}
	return r, nil
}

// Fig10cMultiWorkload regenerates Figure 10(c): prediction error vs the
// number of colocated workloads.
func Fig10cMultiWorkload(ctx context.Context, opt Options) (*Report, error) {
	_, g := newLab(opt)
	nScen := opt.n(1800, 150)

	byK := map[int][]core.Observation{}
	var all []core.Observation
	for _, k := range []int{2, 4, 6, 8, 10} {
		for i := 0; i < nScen/5+1; i++ {
			sc := g.Colocation(core.LSLS, k)
			samples, err := g.Label(sc)
			if err != nil {
				return nil, err
			}
			for _, s := range samples {
				if s.Kind != core.IPCQoS {
					continue
				}
				o := core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label}
				byK[k] = append(byK[k], o)
				all = append(all, o)
			}
		}
	}
	var train []core.Observation
	test := map[int][]core.Observation{}
	for k, obs := range byK {
		tr, te := trainTest(obs, 5)
		train = append(train, tr...)
		test[k] = te
	}
	p := core.NewPredictor(core.Config{Seed: opt.Seed})
	if err := p.TrainObservations(core.IPCQoS, train); err != nil {
		return nil, err
	}

	r := &Report{
		ID:      "fig10c",
		Title:   "Prediction error vs number of colocated workloads (LS+LS, IPC)",
		Columns: []string{"workloads", "test samples", "error"},
	}
	var worst float64
	for _, k := range []int{2, 4, 6, 8, 10} {
		e, err := mapeOf(p, core.IPCQoS, test[k])
		if err != nil {
			return nil, err
		}
		if e > worst {
			worst = e
		}
		r.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", len(test[k])), pct(e))
	}
	r.AddNote("paper: error stays below 3%% for any number of colocated workloads; measured worst %.2f%%", 100*worst)
	return r, nil
}

// Fig13Recovery regenerates Figure 13: the predictor trained only on
// I/O-intensive workloads mispredicts CPU-intensive ones badly, then
// recovers after ~1k incremental samples.
func Fig13Recovery(ctx context.Context, opt Options) (*Report, error) {
	m, _ := newLab(opt)
	ioGen := scenario.NewGenerator(m, opt.Seed)
	ioGen.LSPool = []*workload.Workload{workload.SocialNetwork(), workload.ECommerce()}
	ioGen.SCPool = []*workload.Workload{workload.DD(), workload.Iperf(), workload.DataPipeline()}
	cpuGen := scenario.NewGenerator(m, opt.Seed+1)
	cpuGen.LSPool = []*workload.Workload{workload.MLServing()}
	cpuGen.SCPool = []*workload.Workload{workload.MatMul(), workload.FloatOp(), workload.VideoProcessing()}

	ioObs, err := collectObs(ctx, ioGen, core.LSSC, core.IPCQoS, opt.n(900, 150), 2)
	if err != nil {
		return nil, err
	}
	cpuObs, err := collectObs(ctx, cpuGen, core.LSSC, core.IPCQoS, opt.n(900, 200), 2)
	if err != nil {
		return nil, err
	}
	cpuTrain, cpuTest := trainTest(cpuObs, 4)

	// Two arms: the paper's absolute-target model (its 43.9% shift is
	// exactly the 1.6x IPC scale difference between the regimes), and
	// this reproduction's default ratio-normalized model, which
	// largely absorbs the shift — an ablation of the normalization.
	abs := core.NewPredictor(core.Config{Seed: opt.Seed, UpdateEvery: 1 << 30, AbsoluteTargets: true})
	norm := core.NewPredictor(core.Config{Seed: opt.Seed, UpdateEvery: 1 << 30})
	for _, p := range []*core.Predictor{abs, norm} {
		if err := p.TrainObservations(core.IPCQoS, ioObs); err != nil {
			return nil, err
		}
	}
	absBefore, err := mapeOf(abs, core.IPCQoS, cpuTest)
	if err != nil {
		return nil, err
	}
	normBefore, err := mapeOf(norm, core.IPCQoS, cpuTest)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:      "fig13",
		Title:   "Concept-shift recovery: trained on I/O-intensive, predicting CPU-intensive",
		Columns: []string{"incremental samples", "absolute targets (paper's model)", "ratio-normalized (this repo's default)"},
	}
	r.AddRow("0", pct(absBefore), pct(normBefore))
	var absAfter float64
	batches := 4
	for b := 0; b < batches; b++ {
		lo, hi := b*len(cpuTrain)/batches, (b+1)*len(cpuTrain)/batches
		for _, o := range cpuTrain[lo:hi] {
			if err := abs.Observe(core.IPCQoS, o.Target, o.Inputs, o.Label); err != nil {
				return nil, err
			}
			if err := norm.Observe(core.IPCQoS, o.Target, o.Inputs, o.Label); err != nil {
				return nil, err
			}
		}
		for _, p := range []*core.Predictor{abs, norm} {
			if err := p.Flush(core.IPCQoS); err != nil {
				return nil, err
			}
		}
		absAfter, err = mapeOf(abs, core.IPCQoS, cpuTest)
		if err != nil {
			return nil, err
		}
		normAfter, err := mapeOf(norm, core.IPCQoS, cpuTest)
		if err != nil {
			return nil, err
		}
		r.AddRow(fmt.Sprintf("%d", hi), pct(absAfter), pct(normAfter))
	}
	r.AddNote("paper: 43.9%% error before the update, 4.6%% after ~1k samples; measured (absolute mode) %.1f%% -> %.1f%%", 100*absBefore, 100*absAfter)
	r.AddNote("ablation: ratio normalization absorbs most of the regime shift up front (%.1f%% before any update)", 100*normBefore)
	return r, nil
}
