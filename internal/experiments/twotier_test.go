package experiments

import (
	"reflect"
	"testing"
)

// twotierDecisionRows strips the wall-clock columns (placements/s and
// speedup), leaving only the deterministic decision columns.
func twotierDecisionRows(r *Report) [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row[:len(row)-2]
	}
	return out
}

// TestExtTwoTierSweep checks the default prune-depth sweep shape: the
// K=∞ baseline row comes first per rung, and only pruned rows carry
// delta columns.
func TestExtTwoTierSweep(t *testing.T) {
	opt := tiny()
	opt.Servers = 256 // one rung keeps the sweep affordable
	rep, err := ExtTwoTier(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantK := []string{"∞", "4", "8", "16", "32"}
	if len(rep.Rows) != len(wantK) {
		t.Fatalf("rows = %d, want %d prune depths", len(rep.Rows), len(wantK))
	}
	for i, row := range rep.Rows {
		if row[1] != wantK[i] {
			t.Fatalf("row %d: topk %s, want %s", i, row[1], wantK[i])
		}
		isBase := wantK[i] == "∞"
		if (row[8] == "-") != isBase || (row[10] == "-") != isBase {
			t.Fatalf("row %d (K=%s): delta columns %q/%q mismatch baseline=%v",
				i, wantK[i], row[8], row[10], isBase)
		}
	}
}

// TestExtTwoTierDeterminism re-runs the sweep with the same seed and
// requires byte-identical decision rows — pruning must not introduce
// any wall-clock or iteration-order dependence into placements.
func TestExtTwoTierDeterminism(t *testing.T) {
	run := func() [][]string {
		opt := tiny()
		opt.Servers = 256
		rep, err := ExtTwoTier(nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		return twotierDecisionRows(rep)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs diverged:\n%v\nvs\n%v", a, b)
	}
}

// TestExtTwoTierSingleRung honors Options.TopK by running only the K=∞
// baseline plus the requested prune depth.
func TestExtTwoTierSingleRung(t *testing.T) {
	opt := tiny()
	opt.Servers = 256
	opt.TopK = 8
	rep, err := ExtTwoTier(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 || rep.Rows[0][1] != "∞" || rep.Rows[1][1] != "8" {
		t.Fatalf("TopK=8 rows = %v, want [∞, 8]", rep.Rows)
	}
}
