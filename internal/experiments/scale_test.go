package experiments

import (
	"reflect"
	"testing"
)

// scaleDecisionRows strips the wall-clock placements/s column, leaving
// only the deterministic decision columns.
func scaleDecisionRows(r *Report) [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row[:len(row)-1]
	}
	return out
}

// TestExtScaleShardPlacerIdentity is the tentpole acceptance check at
// the experiment level: the same seed produces byte-identical decision
// rows at every shard x placer combination, including the shards=1,
// placers=1 legacy-equivalent configuration.
func TestExtScaleShardPlacerIdentity(t *testing.T) {
	run := func(shards, placers int) [][]string {
		opt := tiny()
		opt.Servers = 256 // one rung keeps the matrix affordable
		opt.Shards = shards
		opt.Placers = placers
		rep, err := ExtScale(nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		return scaleDecisionRows(rep)
	}
	ref := run(1, 1)
	if len(ref) == 0 {
		t.Fatal("empty report")
	}
	for _, c := range []struct{ shards, placers int }{{4, 1}, {1, 8}, {16, 8}} {
		got := run(c.shards, c.placers)
		// The shards/placers columns themselves differ by construction;
		// blank them before comparing.
		blank := func(rows [][]string) [][]string {
			out := make([][]string, len(rows))
			for i, row := range rows {
				cp := append([]string(nil), row...)
				cp[2], cp[3] = "-", "-"
				out[i] = cp
			}
			return out
		}
		if !reflect.DeepEqual(blank(got), blank(ref)) {
			t.Fatalf("shards=%d placers=%d decisions diverged from shards=1 placers=1:\n%v\nvs\n%v",
				c.shards, c.placers, got, ref)
		}
	}
}

// TestExtScaleLadder checks the default ladder covers 8 through 10k
// servers for all three schedulers.
func TestExtScaleLadder(t *testing.T) {
	rep, err := ExtScale(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4*3 {
		t.Fatalf("rows = %d, want 4 rungs x 3 schedulers", len(rep.Rows))
	}
	wantServers := []string{"8", "256", "1000", "10000"}
	for i, row := range rep.Rows {
		if row[0] != wantServers[i/3] {
			t.Fatalf("row %d: servers %s, want %s", i, row[0], wantServers[i/3])
		}
	}
}
