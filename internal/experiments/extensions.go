package experiments

import (
	"context"
	"fmt"
	"time"

	"gsight/internal/core"
	"gsight/internal/isolation"
	"gsight/internal/ml"
	"gsight/internal/perfmodel"
	"gsight/internal/resources"
	"gsight/internal/scenario"
	"gsight/internal/sched"
	"gsight/internal/workload"
)

// The ext-* experiments implement the paper's forward-looking material:
// PCA dimensionality reduction and hierarchical scheduling (§6.4,
// future work), cold-start-aware prediction (§5.2), and the claimed
// orthogonality to reactive isolation control (§6.3).

// ExtPCA quantifies the §6.4 dimensionality-reduction proposal: IRFR on
// the raw 32nS+2n code vs IRFR behind PCA projections of decreasing
// rank — error and inference latency per configuration.
func ExtPCA(ctx context.Context, opt Options) (*Report, error) {
	_, g := newLab(opt)
	obs, err := collectObs(ctx, g, core.LSSC, core.IPCQoS, opt.n(1200, 200), 3)
	if err != nil {
		return nil, err
	}
	train, test := trainTest(obs, 5)

	r := &Report{
		ID:      "ext-pca",
		Title:   "PCA dimensionality reduction (paper §6.4 future work)",
		Columns: []string{"model", "dims", "IPC error", "inference"},
	}
	run := func(name string, factory core.ModelFactory, dims string) error {
		p := core.NewPredictor(core.Config{Seed: opt.Seed, Factory: factory})
		if err := p.TrainObservations(core.IPCQoS, train); err != nil {
			return err
		}
		e, err := mapeOf(p, core.IPCQoS, test)
		if err != nil {
			return err
		}
		t0 := time.Now()
		const iters = 200
		for i := 0; i < iters; i++ {
			o := test[i%len(test)]
			if _, err := p.Predict(core.IPCQoS, o.Target, o.Inputs); err != nil {
				return err
			}
		}
		per := time.Since(t0) / iters
		r.AddRow(name, dims, pct(e), per.Round(time.Microsecond).String())
		return nil
	}
	if err := run("IRFR (raw code)", nil, fmt.Sprintf("%d", core.DefaultCoder().Dim())); err != nil {
		return nil, err
	}
	for _, k := range []int{128, 64, 32, 16} {
		k := k
		factory := func(seed uint64) ml.Incremental {
			return ml.NewPCAWrap(k, ml.NewForest(ml.ForestConfig{Trees: 40, Seed: seed, Tree: ml.TreeConfig{MTry: 96}}))
		}
		if err := run(fmt.Sprintf("PCA(%d)+IRFR", k), factory, fmt.Sprintf("%d", k)); err != nil {
			return nil, err
		}
	}
	r.AddNote("the paper proposes PCA to keep the 32nS+2n code tractable when workflows span hundreds of servers (§6.4)")
	return r, nil
}

// ExtHierarchy quantifies the §6.4 hierarchy-scheduling proposal:
// placement decision latency of the flat binary-search scheduler vs the
// zone-hierarchical wrapper as the cluster grows.
func ExtHierarchy(ctx context.Context, opt Options) (*Report, error) {
	_, g := newLab(opt)
	obs, err := collectObs(ctx, g, core.LSSC, core.IPCQoS, opt.n(400, 100), 2)
	if err != nil {
		return nil, err
	}
	p := core.NewPredictor(core.Config{Seed: opt.Seed})
	if err := p.TrainObservations(core.IPCQoS, obs); err != nil {
		return nil, err
	}
	spec := resources.DefaultServerSpec("ext")
	sn := workload.SocialNetwork()

	r := &Report{
		ID:      "ext-hierarchy",
		Title:   "Hierarchical scheduling (paper §6.4 future work): decision latency vs cluster size",
		Columns: []string{"servers", "flat decision", "hierarchical decision", "speedup"},
	}
	for _, servers := range []int{8, 32, 128, 512} {
		st := sched.StateFromProfiles(spec, servers)
		// pre-load a third of the servers so zone selection has work
		for s := 0; s < servers; s += 3 {
			seed := platformInput(workload.MatMul(), 1, spec)
			seed.Name = fmt.Sprintf("seed-%d", s)
			seed.Placement = []int{s}
			st.Commit(seed, sched.SLA{})
		}
		req := func() *sched.Request {
			in := platformInput(sn, 12, spec)
			in.QPSFrac = 0.5
			return &sched.Request{Input: in, SLA: sched.SLA{MinIPC: 0.8}}
		}
		const iters = 20
		flat := sched.NewGsight(p)
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := flat.Place(st, req()); err != nil {
				return nil, err
			}
		}
		flatPer := time.Since(t0) / iters
		hier := sched.NewHierarchical(sched.NewGsight(p), 8)
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := hier.Place(st, req()); err != nil {
				return nil, err
			}
		}
		hierPer := time.Since(t0) / iters
		speedup := float64(flatPer) / float64(hierPer)
		r.AddRow(fmt.Sprintf("%d", servers),
			flatPer.Round(time.Microsecond).String(),
			hierPer.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", speedup))
	}
	r.AddNote("the coder caps spatial rows at 8 servers, so the flat scheduler's prediction cost is per-candidate; hierarchy also bounds the candidate search itself")
	return r, nil
}

// ExtColdStart quantifies §5.2: predicting under cold starts with
// startup-inclusive profiles vs naively reusing warm profiles.
func ExtColdStart(ctx context.Context, opt Options) (*Report, error) {
	m, g := newLab(opt)
	nScen := opt.n(900, 200)

	type twin struct {
		aware core.Observation
		naive core.Observation
	}
	var data []twin
	for i := 0; i < nScen; i++ {
		sc := g.Colocation(core.LSSC, 2)
		// Impose a cold-start rate on the LS deployments (the paper
		// observes ~8 cold starts per minute as load rises).
		for _, d := range sc.Deployments {
			if d.W.Class == workload.LS {
				d.ColdStartFrac = g.Rand().Range(0, 0.35)
			}
		}
		res, err := m.Evaluate(sc, g.Rand().Split())
		if err != nil {
			return nil, err
		}
		for di, d := range sc.Deployments {
			if d.W.Class != workload.LS {
				continue
			}
			ps, _ := g.Store.Get(d.W.Name)
			aware := scenario.InputFrom(d, ps) // blends startup profiles
			warmDep := *d
			warmDep.ColdStartFrac = 0
			naive := scenario.InputFrom(&warmDep, ps)
			inputsAware := []core.WorkloadInput{aware}
			inputsNaive := []core.WorkloadInput{naive}
			for dj, other := range sc.Deployments {
				if dj == di {
					continue
				}
				ops, _ := g.Store.Get(other.W.Name)
				oin := scenario.InputFrom(other, ops)
				inputsAware = append(inputsAware, oin)
				inputsNaive = append(inputsNaive, oin)
			}
			label := res.Deployments[di].IPC
			data = append(data, twin{
				aware: core.Observation{Target: 0, Inputs: inputsAware, Label: label},
				naive: core.Observation{Target: 0, Inputs: inputsNaive, Label: label},
			})
		}
	}
	split := func(aware bool, test bool) []core.Observation {
		var out []core.Observation
		for i, t := range data {
			isTest := (i+1)%5 == 0
			if isTest != test {
				continue
			}
			if aware {
				out = append(out, t.aware)
			} else {
				out = append(out, t.naive)
			}
		}
		return out
	}

	r := &Report{
		ID:      "ext-coldstart",
		Title:   "Cold-start-aware prediction (§5.2): startup-inclusive vs warm profiles",
		Columns: []string{"profiles", "IPC error"},
	}
	var errAware, errNaive float64
	for _, aware := range []bool{true, false} {
		p := core.NewPredictor(core.Config{Seed: opt.Seed})
		if err := p.TrainObservations(core.IPCQoS, split(aware, false)); err != nil {
			return nil, err
		}
		e, err := mapeOf(p, core.IPCQoS, split(aware, true))
		if err != nil {
			return nil, err
		}
		name := "startup-inclusive (§5.2)"
		if !aware {
			name = "warm-only (naive)"
			errNaive = e
		} else {
			errAware = e
		}
		r.AddRow(name, pct(e))
	}
	r.AddNote("startup-inclusive profiles cut the error %.1fx under cold starts — §5.2's claim that QoS \"can still be predicted accurately under the startup interference\"", errNaive/errAware)
	return r, nil
}

// ExtIsolation quantifies §6.3's orthogonality claim: Gsight prediction
// plus reactive CAT/MBA-style partitioning yields a stronger SLA than
// either alone, at a measured cost to best-effort corunners.
func ExtIsolation(ctx context.Context, opt Options) (*Report, error) {
	m, _ := newLab(opt)
	sn := workload.SocialNetwork()
	trials := opt.n(60, 20)

	r := &Report{
		ID:      "ext-isolation",
		Title:   "Reactive isolation control beside Gsight (§6.3 orthogonality claim)",
		Columns: []string{"configuration", "within-SLA trials", "mean LS p99 (ms)", "mean corunner JCT (s)"},
	}
	run := func(mode string) (float64, float64, float64, error) {
		model := perfmodel.New(m.Testbed)
		ctrl := isolation.NewController(model)
		if mode == "static" {
			if err := isolation.StaticPartition(model, 0.7); err != nil {
				return 0, 0, 0, err
			}
		}
		okCount, p99Sum, jctSum := 0.0, 0.0, 0.0
		for t := 0; t < trials; t++ {
			d := perfmodel.SpreadDeployment(sn, model.Testbed)
			d.QPS = sn.MaxQPS * 0.55
			d.Protected = true
			co := workload.MicroBenchmarks()[t%4].Clone()
			c := perfmodel.NewDeployment(co)
			target := t % len(sn.Functions)
			c.Placement[0] = d.Placement[target]
			c.Socket[0] = d.Socket[target]
			sc := &perfmodel.Scenario{Deployments: []*perfmodel.Deployment{d, c}}

			if mode == "reactive" {
				// Let the controller converge over a few rounds of
				// monitoring, as the online system would.
				for round := 0; round < 5; round++ {
					res, err := model.Evaluate(sc, nil)
					if err != nil {
						return 0, 0, 0, err
					}
					changes := ctrl.Decide([]isolation.Observation{{
						Servers: d.Placement,
						P99Ms:   res.Deployments[0].E2EP99Ms,
						SLAMs:   sn.SLAp99Ms,
					}})
					if changes == 0 {
						break
					}
				}
			}
			res, err := model.Evaluate(sc, nil)
			if err != nil {
				return 0, 0, 0, err
			}
			p99 := res.Deployments[0].E2EP99Ms
			if p99 <= sn.SLAp99Ms {
				okCount++
			}
			p99Sum += p99
			jctSum += res.Deployments[1].JCTS
		}
		n := float64(trials)
		return okCount / n, p99Sum / n, jctSum / n, nil
	}
	for _, mode := range []string{"shared (no isolation)", "static", "reactive"} {
		key := mode
		if mode == "shared (no isolation)" {
			key = "shared"
		}
		ok, p99, jct, err := run(key)
		if err != nil {
			return nil, err
		}
		r.AddRow(mode, pct(ok), f1(p99), f1(jct))
	}
	r.AddNote("the paper: \"a stronger SLA guarantee can be achieved when integrating them together\" — reactive partitioning shields the LS workload and charges the best-effort corunner")
	return r, nil
}
