package experiments

import (
	"context"
	"fmt"

	"gsight/internal/perfmodel"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/stats"
	"gsight/internal/workload"
)

// Table1Survey regenerates Table 1: the serverless workload taxonomy
// with the catalog's representatives per class.
func Table1Survey(ctx context.Context, opt Options) (*Report, error) {
	r := &Report{
		ID:      "table1",
		Title:   "Serverless workload survey (BG / SC / LS)",
		Columns: []string{"class", "description", "catalog workloads"},
	}
	desc := map[workload.Class]string{
		workload.BG: "triggered or scheduled intermittently; no latency requirements",
		workload.SC: "minute-level processing times; millisecond changes are trivial",
		workload.LS: "frequent invocations; millisecond latency increases degrade UX",
	}
	for _, c := range []workload.Class{workload.BG, workload.SC, workload.LS} {
		var names []string
		for _, w := range workload.ByClass(c) {
			names = append(names, w.Name)
		}
		r.AddRow(c.String(), desc[c], fmt.Sprintf("%v", names))
	}
	r.AddNote("paper examples — BG: IoT collection, monitoring; SC: bigdata, linear algebra; LS: web search, e-commerce, social networks")
	return r, nil
}

// Table4Testbed regenerates Table 4: the simulated testbed
// configuration.
func Table4Testbed(ctx context.Context, _ Options) (*Report, error) {
	tb := resources.DefaultTestbed()
	s := tb.Servers[0]
	r := &Report{
		ID:      "table4",
		Title:   "Experimental testbed configuration",
		Columns: []string{"component", "specification"},
	}
	r.AddRow("CPU model", "Intel Xeon E7-4820v4 (simulated)")
	r.AddRow("Number of sockets", fmt.Sprintf("%d", s.Sockets))
	r.AddRow("Processor base freq.", fmt.Sprintf("%.2f GHz", s.BaseFreqGHz))
	r.AddRow("Physical cores", f0(s.Capacity[resources.CPU]))
	r.AddRow("Shared LLC size", fmt.Sprintf("%.0f MB per socket", s.Capacity[resources.LLC]))
	r.AddRow("Memory capacity", fmt.Sprintf("%.0f GB", s.Capacity[resources.Memory]))
	r.AddRow("Memory bandwidth", fmt.Sprintf("%.0f GB/s", s.Capacity[resources.MemBW]))
	r.AddRow("Network", fmt.Sprintf("%.0f Gb/s", s.Capacity[resources.Network]))
	r.AddRow("Disk throughput", fmt.Sprintf("%.0f MB/s (SSD)", s.Capacity[resources.Disk]))
	r.AddRow("Number of nodes", fmt.Sprintf("%d", tb.NumServers()))
	return r, nil
}

// Fig3aVolatility regenerates Figure 3(a): the 99th-percentile latency,
// latency CoV and IPC of the social-network message-posting workflow
// under the 36 partial-interference scenarios (4 micro-benchmarks x 9
// functions).
func Fig3aVolatility(ctx context.Context, opt Options) (*Report, error) {
	m, _ := newLab(opt)
	sn := workload.SocialNetwork()
	trials := opt.n(20, 6)

	r := &Report{
		ID:      "fig3a",
		Title:   "Partial-interference volatility: micro-benchmark x function",
		Columns: []string{"corunner", "beside", "p99 (ms)", "CoV", "IPC"},
	}
	evalRepeated := func(deps func() []*perfmodel.Deployment, seedOff uint64) (p99, cov, ipc float64) {
		var p99s, ipcs []float64
		for t := 0; t < trials; t++ {
			res, err := m.Evaluate(&perfmodel.Scenario{Deployments: deps()},
				rng.Stream(opt.Seed+seedOff, fmt.Sprintf("fig3a-%d", t)))
			if err != nil {
				continue
			}
			p99s = append(p99s, res.Deployments[0].E2EP99Ms)
			ipcs = append(ipcs, res.Deployments[0].IPC)
		}
		return stats.Mean(p99s), stats.CoV(p99s), stats.Mean(ipcs)
	}

	soloP99, soloCoV, soloIPC := evalRepeated(func() []*perfmodel.Deployment {
		d := perfmodel.SpreadDeployment(sn, m.Testbed)
		d.QPS = sn.MaxQPS / 2
		return []*perfmodel.Deployment{d}
	}, 0)
	r.AddRow("(solo)", "-", f1(soloP99), f2(soloCoV), f2(soloIPC))

	// The 36 grid cells draw from per-cell seed-derived streams and the
	// shared model is read-only under Evaluate, so they fan out freely;
	// rows are assembled in grid order afterwards.
	micros := workload.MicroBenchmarks()
	nFn := sn.NumFunctions()
	type cell struct{ p99, cov, ipc float64 }
	cells := make([]cell, len(micros)*nFn)
	if err := forEach(ctx, len(cells), func(idx int) error {
		mi, f := idx/nFn, idx%nFn
		p99, cov, ipc := evalRepeated(func() []*perfmodel.Deployment {
			d := perfmodel.SpreadDeployment(sn, m.Testbed)
			d.QPS = sn.MaxQPS / 2
			c := perfmodel.NewDeployment(workload.MicroBenchmarks()[mi].Clone())
			for cf := range c.Placement {
				c.Placement[cf] = d.Placement[f]
				c.Socket[cf] = d.Socket[f]
			}
			return []*perfmodel.Deployment{d, c}
		}, uint64(100+mi*16+f))
		cells[idx] = cell{p99, cov, ipc}
		return nil
	}); err != nil {
		return nil, err
	}
	var minP99, maxP99 = soloP99, soloP99
	var entryP99, followP99 float64
	for mi, micro := range micros {
		for f := 0; f < nFn; f++ {
			c := cells[mi*nFn+f]
			r.AddRow(micro.Name, fmt.Sprintf("fn%d %s", f+1, sn.Functions[f].Name),
				f1(c.p99), f2(c.cov), f2(c.ipc))
			if c.p99 < minP99 {
				minP99 = c.p99
			}
			if c.p99 > maxP99 {
				maxP99 = c.p99
			}
			if micro.Name == "matmul" && f == 0 {
				entryP99 = c.p99
			}
			if micro.Name == "matmul" && f == 8 {
				followP99 = c.p99
			}
		}
	}
	r.AddNote("p99 spread across scenarios: %.1fx (paper reports up to 7x)", maxP99/minP99)
	r.AddNote("matmul beside get-followers vs compose-post: %.1fx (paper: ~3x)", followP99/entryP99)
	return r, nil
}

// Fig3bTemporal regenerates Figure 3(b): LR and KMeans JCTs when KMeans
// starts with delays g1..g7 = 0..360 s in 60 s steps, both bound to one
// server socket.
func Fig3bTemporal(ctx context.Context, opt Options) (*Report, error) {
	m, _ := newLab(opt)
	m.Cfg.StepS = 2 // fine-grained phases matter here
	r := &Report{
		ID:      "fig3b",
		Title:   "Temporal overlap: LR + KMeans JCT vs start delay",
		Columns: []string{"config", "delay (s)", "LR JCT (s)", "KMeans JCT (s)"},
	}
	var lrJCTs []float64
	for g := 0; g < 7; g++ {
		lr := perfmodel.NewDeployment(workload.LogisticRegression())
		km := perfmodel.NewDeployment(workload.KMeans())
		km.StartDelayS = float64(g * 60)
		res, err := m.Evaluate(&perfmodel.Scenario{Deployments: []*perfmodel.Deployment{lr, km}},
			rng.Stream(opt.Seed, fmt.Sprintf("fig3b-%d", g)))
		if err != nil {
			return nil, err
		}
		lrJCT := res.Deployments[0].JCTS
		lrJCTs = append(lrJCTs, lrJCT)
		r.AddRow(fmt.Sprintf("g%d", g+1), f0(km.StartDelayS), f1(lrJCT), f1(res.Deployments[1].JCTS))
	}
	peak, peakAt := lrJCTs[0], 0
	for g, v := range lrJCTs {
		if v > peak {
			peak, peakAt = v, g
		}
	}
	r.AddNote("LR solo JCT: 429 s; measured peak at g%d with %.0f s, min %.0f s (paper: rises 429->785 to g4, then falls)",
		peakAt+1, peak, stats.Min(lrJCTs))
	return r, nil
}

// Fig4Propagation regenerates Figure 4: per-function p99 under
// interference at fn1 (compose-post) and fn6 (compose-and-upload), and
// after local control moves the corunner to another socket.
func Fig4Propagation(ctx context.Context, opt Options) (*Report, error) {
	m, _ := newLab(opt)
	sn := workload.SocialNetwork()
	qps := sn.MaxQPS / 2

	base := perfmodel.SpreadDeployment(sn, m.Testbed)
	base.QPS = qps
	bres, err := m.Evaluate(&perfmodel.Scenario{Deployments: []*perfmodel.Deployment{base}}, nil)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:      "fig4",
		Title:   "Hotspot and restoring propagation (p99 per function, ms)",
		Columns: []string{"function", "baseline", "interf@fn1", "control@fn1", "interf@fn6", "control@fn6"},
	}
	run := func(target, socket int) (*perfmodel.DeploymentResult, error) {
		d := perfmodel.SpreadDeployment(sn, m.Testbed)
		d.QPS = qps
		c := perfmodel.NewDeployment(workload.MatMul())
		c.Placement[0] = d.Placement[target]
		if socket < 0 {
			c.Socket[0] = d.Socket[target]
		} else {
			c.Socket[0] = socket
		}
		res, err := m.Evaluate(&perfmodel.Scenario{Deployments: []*perfmodel.Deployment{d, c}}, nil)
		if err != nil {
			return nil, err
		}
		return &res.Deployments[0], nil
	}
	i1, err := run(0, -1)
	if err != nil {
		return nil, err
	}
	c1, err := run(0, 2) // empty socket: local control
	if err != nil {
		return nil, err
	}
	i6, err := run(5, -1)
	if err != nil {
		return nil, err
	}
	c6, err := run(5, 2)
	if err != nil {
		return nil, err
	}
	for f := 0; f < sn.NumFunctions(); f++ {
		r.AddRow(fmt.Sprintf("fn%d %s", f+1, sn.Functions[f].Name),
			f1(bres.Deployments[0].PerFunc[f].LocalP99Ms),
			f1(i1.PerFunc[f].LocalP99Ms), f1(c1.PerFunc[f].LocalP99Ms),
			f1(i6.PerFunc[f].LocalP99Ms), f1(c6.PerFunc[f].LocalP99Ms))
	}
	relief := 0
	for f := 1; f < sn.NumFunctions(); f++ {
		if i1.PerFunc[f].LocalP99Ms < bres.Deployments[0].PerFunc[f].LocalP99Ms {
			relief++
		}
	}
	r.AddNote("interference at fn1 raised its p99 %.1fx while %d/8 other functions dropped (paper: all others drop)",
		i1.PerFunc[0].LocalP99Ms/bres.Deployments[0].PerFunc[0].LocalP99Ms, relief)
	r.AddNote("local control restores fn1 to %.2fx baseline and lifts the others back (restoring propagation)",
		c1.PerFunc[0].LocalP99Ms/bres.Deployments[0].PerFunc[0].LocalP99Ms)
	return r, nil
}
