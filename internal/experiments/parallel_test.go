package experiments

import (
	"errors"
	"sync/atomic"
	"testing"

	"gsight/internal/core"
)

func TestForEachRunsAll(t *testing.T) {
	const n = 100
	var hits [n]int32
	if err := forEach(nil, n, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
	if err := forEach(nil, 0, func(int) error { t.Fatal("fn called for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := forEach(nil, 50, func(i int) error {
		switch i {
		case 7:
			return errA
		case 31:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want lowest-index error %v", err, errA)
	}
}

// TestFig3aDeterministic guards the parallel-replica contract: the
// fanned-out grid must render byte-identically across runs at the same
// seed.
func TestFig3aDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated fig3a run is slow")
	}
	opt := Options{Seed: 42, Scale: 0.02}
	a, err := Fig3aVolatility(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3aVolatility(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("fig3a not deterministic across parallel runs:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestCollectObsDeterministic: parallel labeling with pre-split noise
// streams must reproduce the sequential draw order exactly.
func TestCollectObsDeterministic(t *testing.T) {
	run := func() []float64 {
		_, g := newLab(Options{Seed: 7, Scale: 0.02})
		obs, err := collectObs(nil, g, core.LSSC, core.IPCQoS, 12, 3)
		if err != nil {
			t.Fatal(err)
		}
		labels := make([]float64, len(obs))
		for i, o := range obs {
			labels[i] = o.Label
		}
		return labels
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("label counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("label %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
