package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// tiny returns the smallest options that keep experiments sound.
func tiny() Options { return Options{Seed: 42, Scale: 0.02} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table3", "table4",
		"fig3a", "fig3b", "fig4", "fig5", "fig7", "fig8", "fig9",
		"fig10a", "fig10b", "fig10c", "fig11", "fig12", "fig13", "fig14",
		"ext-pca", "ext-hierarchy", "ext-coldstart", "ext-isolation",
		"ext-resilience", "ext-soak", "ext-scale", "ext-twotier",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	set := map[string]bool{}
	for _, id := range got {
		set[id] = true
	}
	for _, id := range want {
		if !set[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(nil, "fig99", tiny()); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Columns: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("hello %d", 7)
	s := r.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("report output missing %q:\n%s", want, s)
		}
	}
}

func TestStaticExperiments(t *testing.T) {
	for _, id := range []string{"table1", "table4"} {
		rep, err := Run(nil, id, tiny())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			t.Fatalf("%s: empty report", id)
		}
	}
}

func TestTable1CoversAllClasses(t *testing.T) {
	rep, err := Table1Survey(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 classes", len(rep.Rows))
	}
}

func TestFig3bShape(t *testing.T) {
	rep, err := Fig3bTemporal(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 delay configs", len(rep.Rows))
	}
}

func TestFig4Shape(t *testing.T) {
	rep, err := Fig4Propagation(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 functions", len(rep.Rows))
	}
}

func TestFig3aShape(t *testing.T) {
	rep, err := Fig3aVolatility(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 1 solo row + 4 micro-benchmarks x 9 functions.
	if len(rep.Rows) != 1+36 {
		t.Fatalf("rows = %d, want 37", len(rep.Rows))
	}
}

func TestTable3Shape(t *testing.T) {
	rep, err := Table3Correlations(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 19 {
		t.Fatalf("rows = %d, want 19 candidate metrics", len(rep.Rows))
	}
	dropped := 0
	for _, row := range rep.Rows {
		if strings.Contains(row[3], "dropped") {
			dropped++
		}
	}
	if dropped != 3 {
		t.Fatalf("dropped = %d metrics, want 3 (16 kept)", dropped)
	}
}

func TestFig7Runs(t *testing.T) {
	rep, err := Fig7Knee(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 || len(rep.Notes) == 0 {
		t.Fatal("fig7 report empty")
	}
}

func TestFig8Shape(t *testing.T) {
	rep, err := Fig8Importance(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 16 {
		t.Fatalf("rows = %d, want 16 metrics", len(rep.Rows))
	}
}

func TestFig13Recovers(t *testing.T) {
	rep, err := Fig13Recovery(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 2 {
		t.Fatal("fig13 needs before/after rows")
	}
	first := rep.Rows[0][1]
	last := rep.Rows[len(rep.Rows)-1][1]
	fv := parsePct(t, first)
	lv := parsePct(t, last)
	if lv >= fv {
		t.Fatalf("error did not recover: %v -> %v", first, last)
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscanf(s, &v); err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func fmtSscanf(s string, v *float64) (int, error) {
	return sscanf(s, v)
}

func TestFig14Runs(t *testing.T) {
	rep, err := Fig14Overhead(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 instance counts", len(rep.Rows))
	}
}

func TestSchedulingStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three platform simulations")
	}
	rep, err := Fig11Scheduling(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (3 schedulers x 4 metrics)", len(rep.Rows))
	}
	rep12, err := Fig12SLA(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep12.Rows) != 6 {
		t.Fatalf("fig12 rows = %d, want 6", len(rep12.Rows))
	}
}

func sscanf(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f%%", v)
}

func TestExtColdStartAwareWins(t *testing.T) {
	rep, err := ExtColdStart(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	aware := parsePct(t, rep.Rows[0][1])
	naive := parsePct(t, rep.Rows[1][1])
	if aware >= naive {
		t.Fatalf("startup-inclusive profiles (%v%%) should beat warm-only (%v%%)", aware, naive)
	}
}

func TestExtIsolationReactiveWins(t *testing.T) {
	rep, err := ExtIsolation(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}
	shared := parsePct(t, rep.Rows[0][1])
	reactive := parsePct(t, rep.Rows[2][1])
	if reactive < shared {
		t.Fatalf("reactive isolation (%v%%) should not be below shared (%v%%)", reactive, shared)
	}
}

func TestExtSoakScalesVolume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three platform simulations")
	}
	rep, err := ExtSoak(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 variants", len(rep.Rows))
	}
	var base, scaled float64
	if _, err := fmt.Sscanf(rep.Rows[0][1], "%f", &base); err != nil {
		t.Fatalf("cannot parse baseline volume %q: %v", rep.Rows[0][1], err)
	}
	if _, err := fmt.Sscanf(rep.Rows[1][1], "%f", &scaled); err != nil {
		t.Fatalf("cannot parse scaled volume %q: %v", rep.Rows[1][1], err)
	}
	if scaled <= base {
		t.Fatalf("rate-scaled soak replays %vM inv/day, baseline %vM — scaling had no effect", scaled, base)
	}
}

func TestExtHierarchyRuns(t *testing.T) {
	rep, err := ExtHierarchy(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 cluster sizes", len(rep.Rows))
	}
}

func TestReportMarkdown(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	r.AddRow("1", "va|lue")
	r.AddNote("note %d", 3)
	md := r.Markdown()
	for _, want := range []string{"### x — t", "| a | b |", "va\\|lue", "> note 3"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
