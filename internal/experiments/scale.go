package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"gsight/internal/baselines"
	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/sched"
	"gsight/internal/workload"
)

// scaleRungs is the ext-scale server-count ladder: the paper's 8-node
// testbed, then three orders of magnitude past it.
var scaleRungs = []int{8, 256, 1000, 10000}

// scaleMix is the deterministic request mix: batch jobs with a JCT SLA
// and, every fifth request, an LS service with an IPC floor.
var scaleMix = []func() *workload.Workload{
	workload.MatMul, workload.DD, workload.FloatOp,
	workload.VideoProcessing, workload.ECommerce,
}

// ExtScale measures placement at cluster scale: the sharded-state
// placer pool (DESIGN.md §14) drains a request stream at 8, 256, 1k
// and 10k servers under Gsight and the baselines, reporting density,
// SLA-vetted admission, QoS-compliant density and placements/sec.
// Every column except placements/sec is deterministic — byte-identical
// at any shard or placer count (TestExtScaleShardPlacerIdentity).
func ExtScale(ctx context.Context, opt Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	_, g := newLab(opt)
	obs, err := collectObs(ctx, g, core.LSSC, core.IPCQoS, opt.n(600, 90), 3)
	if err != nil {
		return nil, err
	}
	jctObs, err := collectObs(ctx, g, core.SCSC, core.JCTQoS, opt.n(300, 60), 2)
	if err != nil {
		return nil, err
	}
	gsightP := core.NewPredictor(core.Config{Seed: opt.Seed})
	if err := gsightP.TrainObservations(core.IPCQoS, obs); err != nil {
		return nil, err
	}
	if err := gsightP.TrainObservations(core.JCTQoS, jctObs); err != nil {
		return nil, err
	}
	pythiaP := baselines.NewPythia(opt.Seed + 1)
	if err := pythiaP.TrainObservations(core.IPCQoS, obs); err != nil {
		return nil, err
	}
	if err := pythiaP.TrainObservations(core.JCTQoS, jctObs); err != nil {
		return nil, err
	}

	// Per-workload profiles, shared across rungs (the profile spec is
	// identical on every node of the scaled testbeds).
	spec := resources.DefaultServerSpec("scale")
	prnd := rng.Stream(opt.Seed, "ext-scale-profiles")
	mix := make([]*workload.Workload, len(scaleMix))
	profs := make([][]profile.Profile, len(scaleMix))
	for i, wf := range scaleMix {
		mix[i] = wf()
		profs[i] = profile.WorkloadProfiles(mix[i], spec, prnd.Split())
	}

	rungs := scaleRungs
	if opt.Servers > 0 {
		rungs = []int{opt.Servers}
	}
	r := &Report{
		ID:    "ext-scale",
		Title: "Sharded-state scheduling at scale: density, SLA admission and throughput",
		Columns: []string{
			"servers", "scheduler", "shards", "placers",
			"placed", "density", "SLA-admit", "QoS-density", "placements/s",
		},
	}
	for _, n := range rungs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		shards := opt.Shards
		if shards <= 0 {
			// Auto: one shard per 64 servers, capped — testbed size stays
			// single-shard (exact legacy behavior).
			if shards = n / 64; shards < 1 {
				shards = 1
			} else if shards > 16 {
				shards = 16
			}
		}
		placers := opt.Placers
		if placers <= 0 {
			if placers = runtime.GOMAXPROCS(0); placers > 8 {
				placers = 8
			}
		}
		reqs := scaleRequests(opt, n, mix, profs)
		for _, e := range []struct {
			name    string
			factory func() sched.Scheduler
		}{
			{"Gsight", func() sched.Scheduler { return sched.NewGsight(gsightP) }},
			{"BestFit", func() sched.Scheduler { return sched.NewBestFit(pythiaP) }},
			{"WorstFit", func() sched.Scheduler { return sched.NewWorstFit() }},
		} {
			ss := sched.ShardedStateFromProfiles(spec, n, shards)
			pool := sched.NewPlacerPool(ss, placers, e.factory)
			t0 := time.Now()
			results := pool.PlaceAll(reqs)
			elapsed := time.Since(t0)
			placed, vetted, instances := 0, 0, 0
			for i, res := range results {
				if res.Err != nil {
					continue
				}
				placed++
				if res.Outcome == "placed" {
					vetted++
				}
				in := &reqs[i].Input
				for f := range in.Profiles {
					if in.Replicas != nil {
						instances += in.Replicas[f]
					} else {
						instances++
					}
				}
			}
			density, active := 0.0, ss.ActiveServers()
			if active > 0 {
				density = float64(instances) / (float64(active) * spec.Capacity[resources.CPU])
			}
			slaFrac := 0.0
			if placed > 0 {
				slaFrac = float64(vetted) / float64(placed)
			}
			perSec := float64(len(reqs)) / elapsed.Seconds()
			r.AddRow(
				fmt.Sprintf("%d", n), e.name,
				fmt.Sprintf("%d", shards), fmt.Sprintf("%d", placers),
				fmt.Sprintf("%d/%d", placed, len(reqs)),
				f2(density), pct(slaFrac), f2(density*slaFrac), f0(perSec),
			)
		}
	}
	r.AddNote("requests hash to an 8-server home window and spill outward on rejection, so per-placement cost is bounded by window size, not cluster size")
	r.AddNote("all columns except placements/s are byte-identical at any shard x placer combination (commit order is (epoch, request-seq)-deterministic)")
	return r, nil
}

// scaleRequests synthesizes the deterministic request stream for an
// n-server rung: ~2 requests per server at full scale, floored so even
// tiny scales exercise every workload in the mix.
func scaleRequests(opt Options, n int, mix []*workload.Workload, profs [][]profile.Profile) []*sched.Request {
	total := opt.n(2*n, min(n, 64))
	if total > 20000 {
		total = 20000
	}
	reqs := make([]*sched.Request, total)
	for i := range reqs {
		k := i % len(mix)
		w, ps := mix[k], profs[k]
		in := core.WorkloadInput{
			Name:      fmt.Sprintf("scale-%s-%d", w.Name, i),
			Class:     w.Class,
			Profiles:  ps,
			Placement: make([]int, len(ps)),
		}
		var sla sched.SLA
		switch w.Class {
		case workload.LS:
			in.QPSFrac = 0.35
			in.Replicas = make([]int, len(ps))
			for f := range in.Replicas {
				in.Replicas[f] = perfmodel.LSReplicasFor(w, f, in.QPSFrac*w.MaxQPS)
			}
			sla.MinIPC = 0.9
		default:
			in.LifetimeS = w.SoloDurationS
			sla.MaxJCTFactor = 2.0
		}
		reqs[i] = &sched.Request{Input: in, SLA: sla, SoloDurationS: w.SoloDurationS}
	}
	return reqs
}
