package experiments

import (
	"context"
	"fmt"

	"gsight/internal/core"
	"gsight/internal/faults"
	"gsight/internal/perfmodel"
	"gsight/internal/platform"
	"gsight/internal/sched"
	"gsight/internal/stats"
	"gsight/internal/trace"
	"gsight/internal/workload"
)

// ExtResilience quantifies how the platform behaves under injected
// faults: the same Gsight-scheduled trace-driven run is repeated under
// each named fault scenario (node crashes, stragglers, cold-start
// storms, predictor outages and their combination) and compared to the
// healthy baseline on SLA-guarantee ratio, density, QoS-compliant
// density and the resilience counters. The paper evaluates scheduling
// on a healthy cluster; this extension measures how far prediction-led
// packing degrades — and how gracefully — when the cluster misbehaves.
func ExtResilience(ctx context.Context, opt Options) (*Report, error) {
	m, g := newLab(opt)

	obs, err := collectObs(ctx, g, core.LSSC, core.IPCQoS, opt.n(900, 150), 3)
	if err != nil {
		return nil, err
	}
	jctObs, err := collectObs(ctx, g, core.SCSC, core.JCTQoS, opt.n(400, 70), 2)
	if err != nil {
		return nil, err
	}
	p := core.NewPredictor(core.Config{Seed: opt.Seed})
	if err := p.TrainObservations(core.IPCQoS, obs); err != nil {
		return nil, err
	}
	if err := p.TrainObservations(core.JCTQoS, jctObs); err != nil {
		return nil, err
	}

	services := func() []platform.LSService {
		var out []platform.LSService
		for i, w := range []*workload.Workload{
			workload.SocialNetwork(), workload.ECommerce(), workload.MLServing(),
		} {
			curve := sched.BuildCurve(m, w, opt.n(250, 60), opt.Seed+uint64(i))
			minIPC, ok := curve.MinIPCFor(w.SLAp99Ms)
			if !ok {
				minIPC = 0
			}
			pat := trace.DefaultPattern(w.MaxQPS * 0.42)
			pat.DiurnalAmp = 0.30
			pat.PhaseShift = float64(i) * 7200
			out = append(out, platform.LSService{W: w, Pattern: pat, SLA: sched.SLA{MinIPC: minIPC}})
		}
		return out
	}
	scPool := []*workload.Workload{
		workload.MatMul(), workload.DD(), workload.VideoProcessing(),
		workload.FeatureGeneration(), workload.DataPipeline(),
	}

	duration := 43200 * opt.Scale
	if duration < 7200 {
		duration = 7200
	}
	scenarios := append([]string{"baseline"}, faults.Names()...)
	schedules := make([]*faults.Schedule, len(scenarios))
	for i, name := range scenarios {
		if name == "baseline" {
			continue
		}
		fs, err := faults.Scenario(name, opt.Seed, duration, m.Testbed.NumServers())
		if err != nil {
			return nil, err
		}
		schedules[i] = fs
	}
	svcSets := make([][]platform.LSService, len(scenarios))
	for i := range scenarios {
		svcSets[i] = services()
	}
	results := make([]*platform.Stats, len(scenarios))
	err = forEach(ctx, len(scenarios), func(i int) error {
		st, err := platform.Run(ctx, platform.Config{
			Model:           perfmodel.New(m.Testbed),
			Scheduler:       sched.NewGsight(p),
			Services:        svcSets[i],
			SCPool:          scPool,
			SCMeanIntervalS: 180,
			DurationS:       duration,
			StepS:           30,
			Seed:            opt.Seed,
			Faults:          schedules[i],
		})
		if err != nil {
			return fmt.Errorf("experiments: resilience %s run: %w", scenarios[i], err)
		}
		results[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:    "ext-resilience",
		Title: "Fault injection: SLA and density under partial cluster failures (Gsight scheduler)",
		Columns: []string{"scenario", "SLA ratio", "density", "QoS density",
			"degraded steps", "displaced", "rejected", "faults"},
	}
	slaRatio := meanSLARatio
	base := results[0]
	for i, name := range scenarios {
		st := results[i]
		r.AddRow(name, pct(slaRatio(st)), f2(stats.Mean(st.Density)), f2(stats.Mean(st.GoodDensity)),
			fmt.Sprintf("%d/%d", st.DegradedSteps, st.Steps),
			fmt.Sprintf("%d", st.DisplacedServices+st.DisplacedJobs),
			fmt.Sprintf("%d", st.RejectedJobs), fmt.Sprintf("%d", st.FaultEvents))
	}
	for i, name := range scenarios {
		if name == "baseline" {
			continue
		}
		st := results[i]
		dSLA := 100 * (slaRatio(st) - slaRatio(base))
		dDen := 0.0
		if b := stats.Mean(base.Density); b > 0 {
			dDen = 100 * (stats.Mean(st.Density)/b - 1)
		}
		r.AddNote("%s: SLA ratio %+.1f pp, density %+.1f%% vs healthy baseline", name, dSLA, dDen)
	}
	for i, name := range scenarios {
		for _, d := range results[i].Degraded {
			r.AddNote("%s: degraded [%.0fs, %.0fs) (%s)", name, d.StartS, d.EndS, d.Reason)
		}
	}
	r.AddNote("every faulty run completed: crashes displace services through the scheduler, predictor outages degrade to WorstFit placements instead of failing the run")
	return r, nil
}
