package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gsight/internal/telemetry"
)

// poolIns is the worker pool's instrument set, swapped atomically so
// replica tasks already in flight never race a SetTelemetry call.
var poolIns atomic.Pointer[telemetry.PoolInstruments]

// SetTelemetry attaches the experiments worker pool to a sink; nil (or
// telemetry.Nop) detaches it. Instrumentation is observation-only: the
// fan-out order, worker count and replica results are unchanged.
func SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		poolIns.Store(nil)
		return
	}
	ins := s.Pool()
	poolIns.Store(&ins)
}

// forEach runs fn(0) … fn(n-1) on a bounded worker pool (GOMAXPROCS
// wide) and returns the lowest-index error, matching what a sequential
// loop would have surfaced. Cancelling ctx stops dispatching new
// indices; tasks already running finish (they are pure computations),
// and the call returns ctx.Err() when no task error outranks it.
//
// Determinism contract: fn(i) must write only to index i of pre-sized
// result slices, and any randomness it consumes must come from streams
// split sequentially BEFORE the fan-out (scenario.Generator.NoiseSplit,
// rng.Split). Under that contract a parallel run is byte-identical to
// the sequential one — assembly order is the index order, and each
// stream's draw sequence is fixed at split time.
func forEach(ctx context.Context, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	ins := poolIns.Load()
	run := fn
	var busy atomic.Int64 // summed task nanoseconds across workers
	var t0 time.Time
	if ins != nil {
		t0 = time.Now()
		ins.Runs.Inc()
		ins.Tasks.Add(uint64(n))
		ins.Workers.SetInt(workers)
		run = func(i int) error {
			ts := time.Now()
			err := fn(i)
			d := time.Since(ts)
			ins.TaskSeconds.Observe(d.Seconds())
			busy.Add(int64(d))
			return err
		}
	}
	err := forEachOn(ctx, workers, n, run)
	if ins != nil {
		if wall := time.Since(t0).Seconds(); wall > 0 {
			ins.Utilization.Observe(time.Duration(busy.Load()).Seconds() / (float64(workers) * wall))
		}
	}
	return err
}

// forEachOn is forEach's scheduling core over a fixed worker count.
func forEachOn(ctx context.Context, workers, n int, fn func(i int) error) error {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	// Lowest-index error first — the sequential contract — then the
	// cancellation itself.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
