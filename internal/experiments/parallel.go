package experiments

import (
	"runtime"
	"sync"
)

// forEach runs fn(0) … fn(n-1) on a bounded worker pool (GOMAXPROCS
// wide) and returns the lowest-index error, matching what a sequential
// loop would have surfaced.
//
// Determinism contract: fn(i) must write only to index i of pre-sized
// result slices, and any randomness it consumes must come from streams
// split sequentially BEFORE the fan-out (scenario.Generator.NoiseSplit,
// rng.Split). Under that contract a parallel run is byte-identical to
// the sequential one — assembly order is the index order, and each
// stream's draw sequence is fixed at split time.
func forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
