package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/sched"
	"gsight/internal/workload"
)

// twotierRungs is the ext-twotier cluster ladder: the two cluster sizes
// where full-view placements get expensive.
var twotierRungs = []int{1000, 10000}

// twotierKs is the prune-depth sweep. 0 means K=∞ (pruning disabled,
// exact legacy placements) and runs first so every other row can report
// its QoS-density loss and wall-clock gain against it.
var twotierKs = []int{0, 4, 8, 16, 32}

// ExtTwoTier measures the two-tier placement tradeoff: the tier-0
// interference score prunes each request's candidate servers to the
// top K before full IRFR prediction vets the finalists, and the sweep
// reports how much QoS-compliant density is given up for how much
// placement throughput as K shrinks. All columns except placements/s
// and speedup are deterministic per seed; the K=∞ row is byte-identical
// to running without the two-tier path at all.
func ExtTwoTier(ctx context.Context, opt Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	_, g := newLab(opt)
	obs, err := collectObs(ctx, g, core.LSSC, core.IPCQoS, opt.n(600, 90), 3)
	if err != nil {
		return nil, err
	}
	jctObs, err := collectObs(ctx, g, core.SCSC, core.JCTQoS, opt.n(300, 60), 2)
	if err != nil {
		return nil, err
	}
	gsightP := core.NewPredictor(core.Config{Seed: opt.Seed})
	if err := gsightP.TrainObservations(core.IPCQoS, obs); err != nil {
		return nil, err
	}
	if err := gsightP.TrainObservations(core.JCTQoS, jctObs); err != nil {
		return nil, err
	}

	spec := resources.DefaultServerSpec("twotier")
	prnd := rng.Stream(opt.Seed, "ext-twotier-profiles")
	mix := make([]*workload.Workload, len(scaleMix))
	profs := make([][]profile.Profile, len(scaleMix))
	for i, wf := range scaleMix {
		mix[i] = wf()
		profs[i] = profile.WorkloadProfiles(mix[i], spec, prnd.Split())
	}

	rungs := twotierRungs
	if opt.Servers > 0 {
		rungs = []int{opt.Servers}
	}
	ks := twotierKs
	if opt.TopK > 0 {
		ks = []int{0, opt.TopK} // K=∞ baseline stays, for the delta columns
	}
	r := &Report{
		ID:    "ext-twotier",
		Title: "Two-tier placement: QoS-density lost vs wall-clock gained as K shrinks",
		Columns: []string{
			"servers", "topk", "shards", "placers", "placed",
			"density", "SLA-admit", "QoS-density", "QoSd-loss", "placements/s", "speedup",
		},
	}
	for _, n := range rungs {
		shards := opt.Shards
		if shards <= 0 {
			if shards = n / 64; shards < 1 {
				shards = 1
			} else if shards > 16 {
				shards = 16
			}
		}
		placers := opt.Placers
		if placers <= 0 {
			if placers = runtime.GOMAXPROCS(0); placers > 8 {
				placers = 8
			}
		}
		reqs := twotierRequests(opt, n, mix, profs)
		baseQoSd, basePerSec := 0.0, 0.0
		for _, k := range ks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			factory := func() sched.Scheduler {
				s := sched.NewGsight(gsightP)
				if k > 0 {
					s.Tier0 = gsightP.Tier0()
					s.TopK = k
				}
				return s
			}
			ss := sched.ShardedStateFromProfiles(spec, n, shards)
			pool := sched.NewPlacerPool(ss, placers, factory)
			t0 := time.Now()
			results := pool.PlaceAll(reqs)
			elapsed := time.Since(t0)
			placed, vetted, instances := 0, 0, 0
			for i, res := range results {
				if res.Err != nil {
					continue
				}
				placed++
				if res.Outcome == "placed" {
					vetted++
				}
				in := &reqs[i].Input
				for f := range in.Profiles {
					if in.Replicas != nil {
						instances += in.Replicas[f]
					} else {
						instances++
					}
				}
			}
			density, active := 0.0, ss.ActiveServers()
			if active > 0 {
				density = float64(instances) / (float64(active) * spec.Capacity[resources.CPU])
			}
			slaFrac := 0.0
			if placed > 0 {
				slaFrac = float64(vetted) / float64(placed)
			}
			qosd := density * slaFrac
			perSec := float64(len(reqs)) / elapsed.Seconds()
			kLabel, loss, speedup := "∞", "-", "-"
			if k == 0 {
				baseQoSd, basePerSec = qosd, perSec
			} else {
				kLabel = fmt.Sprintf("%d", k)
				if baseQoSd > 0 {
					loss = pct((baseQoSd - qosd) / baseQoSd)
				}
				if basePerSec > 0 {
					speedup = fmt.Sprintf("%.2fx", perSec/basePerSec)
				}
			}
			r.AddRow(
				fmt.Sprintf("%d", n), kLabel,
				fmt.Sprintf("%d", shards), fmt.Sprintf("%d", placers),
				fmt.Sprintf("%d/%d", placed, len(reqs)),
				f2(density), pct(slaFrac), f2(qosd), loss, f0(perSec), speedup,
			)
		}
	}
	r.AddNote("K=∞ disables pruning and reproduces the legacy placements byte-for-byte; finite K runs the binary-search ladder over only the top-K tier-0-ranked candidates")
	r.AddNote("QoSd-loss and speedup are relative to the same rung's K=∞ row; every column except placements/s and speedup is deterministic per seed")
	return r, nil
}

// twotierRequests mirrors scaleRequests but stamps archetype run names
// ("twotier-matmul#17"), so tier-0 score caching keys to the five
// archetypes instead of one entry per request — the access pattern a
// real platform produces.
func twotierRequests(opt Options, n int, mix []*workload.Workload, profs [][]profile.Profile) []*sched.Request {
	total := opt.n(2*n, min(n, 64))
	if total > 20000 {
		total = 20000
	}
	reqs := make([]*sched.Request, total)
	for i := range reqs {
		k := i % len(mix)
		w, ps := mix[k], profs[k]
		in := core.WorkloadInput{
			Name:      fmt.Sprintf("twotier-%s#%d", w.Name, i),
			Class:     w.Class,
			Profiles:  ps,
			Placement: make([]int, len(ps)),
		}
		var sla sched.SLA
		switch w.Class {
		case workload.LS:
			in.QPSFrac = 0.35
			in.Replicas = make([]int, len(ps))
			for f := range in.Replicas {
				in.Replicas[f] = perfmodel.LSReplicasFor(w, f, in.QPSFrac*w.MaxQPS)
			}
			sla.MinIPC = 0.9
		default:
			in.LifetimeS = w.SoloDurationS
			sla.MaxJCTFactor = 2.0
		}
		reqs[i] = &sched.Request{Input: in, SLA: sla, SoloDurationS: w.SoloDurationS}
	}
	return reqs
}
