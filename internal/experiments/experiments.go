// Package experiments regenerates every table and figure of the
// paper's evaluation on the simulated testbed. Each experiment returns
// a Report — the same rows/series the paper plots — plus notes that put
// the measured values beside the paper's. cmd/gsight-experiments and
// the repository-root benchmarks are thin wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/scenario"
)

// Options scales experiment effort. Scale 1.0 reproduces the paper-size
// runs; smaller values shrink sample counts proportionally (tests and
// benches use ~0.2).
type Options struct {
	Seed  uint64
	Scale float64
	// Servers restricts ext-scale to one server-count rung (> 0); the
	// default runs the full 8/256/1k/10k ladder.
	Servers int
	// Shards and Placers override ext-scale's sharded-state geometry
	// (<= 0 auto-sizes). Placement outcomes are identical either way —
	// they only trade off conflict granularity and concurrency.
	Shards  int
	Placers int
	// TopK restricts ext-twotier to one prune-depth rung (> 0); the
	// default sweeps K over 4/8/16/32/∞.
	TopK int
}

// DefaultOptions returns full-scale, seed-42 options.
func DefaultOptions() Options { return Options{Seed: 42, Scale: 1.0} }

// n scales a full-size count, with a floor to keep experiments sound.
func (o Options) n(full, floor int) int {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	v := int(float64(full) * o.Scale)
	if v < floor {
		v = floor
	}
	return v
}

// Report is one regenerated table or figure.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes record paper-vs-measured comparisons and caveats.
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as aligned text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	writeRow(separators(widths))
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the report as a GitHub-flavoured markdown section.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	b.WriteString("| " + strings.Join(r.Columns, " | ") + " |\n")
	seps := make([]string, len(r.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range r.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	if len(r.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "> %s\n>\n", n)
		}
	}
	return b.String()
}

func separators(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Runner is one experiment entry point. Cancelling ctx stops the
// experiment between units of work and surfaces ctx.Err().
type Runner func(ctx context.Context, opt Options) (*Report, error)

// Registry maps experiment ids (table1, fig3a, ...) to runners, in the
// paper's order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table1", Table1Survey},
		{"table3", Table3Correlations},
		{"table4", Table4Testbed},
		{"fig3a", Fig3aVolatility},
		{"fig3b", Fig3bTemporal},
		{"fig4", Fig4Propagation},
		{"fig5", Fig5ProfilingLevel},
		{"fig7", Fig7Knee},
		{"fig8", Fig8Importance},
		{"fig9", Fig9PredictionError},
		{"fig10a", Fig10aConvergence},
		{"fig10b", Fig10bStability},
		{"fig10c", Fig10cMultiWorkload},
		{"fig11", Fig11Scheduling},
		{"fig12", Fig12SLA},
		{"fig13", Fig13Recovery},
		{"fig14", Fig14Overhead},
		// Extensions: the paper's §5.2 / §6.3 / §6.4 forward-looking
		// material, implemented and measured.
		{"ext-pca", ExtPCA},
		{"ext-hierarchy", ExtHierarchy},
		{"ext-coldstart", ExtColdStart},
		{"ext-isolation", ExtIsolation},
		{"ext-resilience", ExtResilience},
		{"ext-soak", ExtSoak},
		{"ext-scale", ExtScale},
		{"ext-twotier", ExtTwoTier},
	}
}

// Run executes the experiment with the given id. A nil ctx means
// context.Background().
func Run(ctx context.Context, id string, opt Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(ctx, opt)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists the registered experiment ids.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// newLab builds the shared testbed model + scenario generator.
func newLab(opt Options) (*perfmodel.Model, *scenario.Generator) {
	m := perfmodel.New(resources.DefaultTestbed())
	scenario.FastConfig(m)
	g := scenario.NewGenerator(m, opt.Seed)
	return m, g
}

// f2 formats a float with 2 decimals; f1/f0 likewise.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// sortedKeys returns a map's keys in order.
func sortedKeys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// trainTest splits observations into train/test by holding out every
// holdEvery-th item — deterministic and stratified over generation
// order.
func trainTest(obs []core.Observation, holdEvery int) (train, test []core.Observation) {
	for i, o := range obs {
		if (i+1)%holdEvery == 0 {
			test = append(test, o)
		} else {
			train = append(train, o)
		}
	}
	return train, test
}

// batchQoSPredictor is the optional batched inference fast path
// (core.Predictor has it; the baselines do not). Batched predictions
// are bit-identical to per-query Predict, so results don't depend on
// which path runs.
type batchQoSPredictor interface {
	core.QoSPredictor
	PredictBatch(kind core.QoSKind, queries []core.Query) ([]float64, error)
}

// mapeOf evaluates a predictor's mean relative error on observations.
func mapeOf(p core.QoSPredictor, kind core.QoSKind, obs []core.Observation) (float64, error) {
	errs, err := errsOf(p, kind, obs)
	if err != nil {
		return 0, err
	}
	if len(errs) == 0 {
		return 0, fmt.Errorf("experiments: no evaluable observations")
	}
	sum := 0.0
	for _, e := range errs {
		sum += e
	}
	return sum / float64(len(errs)), nil
}

// errsOf returns per-sample relative errors, using the predictor's
// batched path when it has one.
func errsOf(p core.QoSPredictor, kind core.QoSKind, obs []core.Observation) ([]float64, error) {
	kept := make([]core.Observation, 0, len(obs))
	for _, o := range obs {
		if o.Label != 0 {
			kept = append(kept, o)
		}
	}
	if len(kept) == 0 {
		return nil, nil
	}
	preds := make([]float64, len(kept))
	if bp, ok := p.(batchQoSPredictor); ok {
		queries := make([]core.Query, len(kept))
		for i, o := range kept {
			queries[i] = core.Query{Target: o.Target, Inputs: o.Inputs}
		}
		got, err := bp.PredictBatch(kind, queries)
		if err != nil {
			return nil, err
		}
		preds = got
	} else {
		for i, o := range kept {
			got, err := p.Predict(kind, o.Target, o.Inputs)
			if err != nil {
				return nil, err
			}
			preds[i] = got
		}
	}
	out := make([]float64, len(kept))
	for i, o := range kept {
		e := (preds[i] - o.Label) / o.Label
		if e < 0 {
			e = -e
		}
		out[i] = e
	}
	return out, nil
}

// collectObs draws labeled observations of one QoS kind from randomized
// colocations. Scenario and noise-stream draws happen sequentially (the
// generator's RNG order is the determinism anchor); the expensive
// testbed evaluations then fan out over the worker pool and results are
// assembled in draw order, so the observation list is byte-identical to
// a sequential run.
func collectObs(ctx context.Context, g *scenario.Generator, colocation core.ColocationKind, kind core.QoSKind, scenarios, maxWorkloads int) ([]core.Observation, error) {
	type draw struct {
		sc    *perfmodel.Scenario
		noise *rng.Rand
	}
	draws := make([]draw, scenarios)
	for i := range draws {
		k := 2
		if maxWorkloads > 2 {
			k = 2 + g.Rand().Intn(maxWorkloads-1)
		}
		draws[i] = draw{g.Colocation(colocation, k), g.NoiseSplit()}
	}
	perScenario := make([][]core.Observation, scenarios)
	err := forEach(ctx, scenarios, func(i int) error {
		samples, err := g.LabelWith(draws[i].sc, draws[i].noise)
		if err != nil {
			return err
		}
		for _, s := range samples {
			if s.Kind == kind {
				perScenario[i] = append(perScenario[i], core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var obs []core.Observation
	for _, part := range perScenario {
		obs = append(obs, part...)
	}
	return obs, nil
}
