package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gsight/internal/telemetry"
)

// testServer builds a daemon in a temp dir plus an httptest listener.
func testServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server, *Client) {
	t.Helper()
	cfg := Config{
		DataDir: t.TempDir(),
		Seed:    7,
		Train:   4,
		Placers: 2,
		Health:  telemetry.NewHealth(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Stop(ctx)
	})
	return srv, hs, NewClient(hs.URL)
}

func TestServePlaceObserveRelease(t *testing.T) {
	srv, _, cl := testServer(t, nil)
	ctx := context.Background()

	ack, err := cl.Place(ctx, PlaceRequest{Workload: "social-network"})
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	if ack.Outcome != "placed" || len(ack.Placement) == 0 {
		t.Fatalf("place ack = %+v, want placed with servers", ack)
	}
	if ack.Seq != 1 {
		t.Fatalf("first record seq = %d, want 1", ack.Seq)
	}

	obs, err := cl.Observe(ctx, ObserveRequest{Name: ack.Name, QoS: "ipc", Value: ack.PredIPC})
	if err != nil {
		t.Fatalf("observe: %v", err)
	}
	if !obs.Applied {
		t.Fatalf("observation of running instance %s not applied", ack.Name)
	}

	rel, err := cl.Release(ctx, ReleaseRequest{Name: ack.Name})
	if err != nil {
		t.Fatalf("release: %v", err)
	}
	if !rel.Released {
		t.Fatal("release of running instance reported false")
	}
	if rel2, _ := cl.Release(ctx, ReleaseRequest{Name: ack.Name}); rel2.Released {
		t.Fatal("double release reported true")
	}

	// The decision log carries one line per acknowledged record.
	data, err := os.ReadFile(srv.logPath())
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("decision log has %d lines, want 4:\n%s", len(lines), data)
	}
	for _, line := range lines {
		if _, err := decodeRecord(line); err != nil {
			t.Fatalf("decision line %q: %v", line, err)
		}
	}
}

func TestServeUnknownWorkloadAndQoS(t *testing.T) {
	_, hs, _ := testServer(t, nil)
	for _, tc := range []struct{ path, body string }{
		{"/v1/place", `{"workload":"no-such-thing"}`},
		{"/v1/observe", `{"name":"x#1","qos":"nope","value":1}`},
	} {
		resp, err := http.Post(hs.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %s = %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
}

// TestServeDegradedUntrained: -train 0 starts with an untrained
// predictor; placements fall back to the degraded path instead of
// failing.
func TestServeDegradedUntrained(t *testing.T) {
	_, _, cl := testServer(t, func(c *Config) { c.Train = 0 })
	ack, err := cl.Place(context.Background(), PlaceRequest{Workload: "matmul"})
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	if ack.Outcome != "degraded" {
		t.Fatalf("untrained placement outcome = %q (reason %q), want degraded", ack.Outcome, ack.Reason)
	}
	if len(ack.Placement) == 0 {
		t.Fatal("degraded placement returned no servers")
	}
}

// TestServeShedding: the reorder buffer is bounded; a flood of future
// orders (their predecessor never arrives) fills it and overflow is
// answered 429 + Retry-After rather than queued forever.
func TestServeShedding(t *testing.T) {
	_, hs, _ := testServer(t, func(c *Config) { c.QueueCap = 8 })

	var wg sync.WaitGroup
	codes := make([]int, 64)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Orders 2..65: order 1 never arrives, so every one parks.
			body := fmt.Sprintf(`{"workload":"matmul","order":%d}`, i+2)
			req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/place", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			hc := &http.Client{Timeout: 2 * time.Second}
			resp, err := hc.Do(req)
			if err != nil {
				codes[i] = -1
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}(i)
	}
	wg.Wait()
	shed := 0
	for _, c := range codes {
		if c == http.StatusTooManyRequests {
			shed++
		}
	}
	if shed == 0 {
		t.Fatalf("no 429s among %d stalled ordered requests with QueueCap 8 (codes: %v)", len(codes), codes)
	}
}

// TestServeDuplicateOrder: a retried acknowledged order gets the
// original response bytes from the cache, not a re-execution.
func TestServeDuplicateOrder(t *testing.T) {
	_, hs, _ := testServer(t, nil)
	post := func() (int, string) {
		resp, err := http.Post(hs.URL+"/v1/place", "application/json",
			strings.NewReader(`{"workload":"dd","order":1}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	c1, b1 := post()
	c2, b2 := post()
	if c1 != 200 || c2 != 200 {
		t.Fatalf("codes %d, %d", c1, c2)
	}
	if b1 != b2 {
		t.Fatalf("duplicate order answered differently:\n%s\n%s", b1, b2)
	}
}

// TestServeBatchPlace: the batch form answers one result per request,
// coalesced through shared fsync rounds.
func TestServeBatchPlace(t *testing.T) {
	_, hs, _ := testServer(t, nil)
	body := `{"batch":[{"workload":"matmul"},{"workload":"dd"},{"workload":"social-network"}]}`
	resp, err := http.Post(hs.URL+"/v1/place", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Results []PlaceAck `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(out.Results))
	}
	for i, r := range out.Results {
		if r.Seq == 0 || r.Name == "" {
			t.Fatalf("batch result %d incomplete: %+v", i, r)
		}
	}
}

// TestServeRestartContinuesStream: stop after K ordered requests,
// restart in the same dir, run the rest — the decision log must be
// byte-identical to an uninterrupted run of the same ordered load.
func TestServeRestartContinuesStream(t *testing.T) {
	mix := []string{"matmul", "social-network", "dd", "e-commerce"}
	run := func(dir string, from, to int) {
		cfg := Config{DataDir: dir, Seed: 7, Train: 4, Placers: 2, Health: telemetry.NewHealth()}
		srv, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		hs := httptest.NewServer(srv.Handler())
		cl := NewClient(hs.URL)
		ctx := context.Background()
		for i := from; i < to; i++ {
			if _, err := cl.Place(ctx, PlaceRequest{
				Workload: mix[i%len(mix)], Order: uint64(i + 1)}); err != nil {
				t.Fatalf("place %d: %v", i, err)
			}
		}
		hs.Close()
		sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if err := srv.Stop(sctx); err != nil {
			t.Fatalf("stop: %v", err)
		}
	}

	const total = 24
	split := t.TempDir()
	run(split, 0, 9)
	run(split, 9, total)
	whole := t.TempDir()
	run(whole, 0, total)

	a, err := os.ReadFile(filepath.Join(split, "decisions.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(whole, "decisions.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("restarted decision log diverged from uninterrupted run:\n--- split (%d bytes)\n%s\n--- whole (%d bytes)\n%s",
			len(a), a, len(b), b)
	}
}

// TestServeSnapshotEndpoint: a forced snapshot rotates the generation
// and a restore from it continues the applied sequence.
func TestServeSnapshotEndpoint(t *testing.T) {
	srv, hs, cl := testServer(t, nil)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := cl.Place(ctx, PlaceRequest{Workload: "matmul"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Snapshot(ctx); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	st, err := cl.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 3 {
		t.Fatalf("applied = %d, want 3", st.Applied)
	}
	if st.Snapshots < 2 {
		t.Fatalf("snapshot gen = %d, want >= 2 after a forced rotation", st.Snapshots)
	}
	_ = srv
	_ = hs
}

// TestServeReadyLifecycle: readiness is false until New returns and
// false again once draining.
func TestServeReadyLifecycle(t *testing.T) {
	h := telemetry.NewHealth()
	srv, err := New(Config{DataDir: t.TempDir(), Seed: 7, Train: 0, Health: h})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := h.Ready(); !ok {
		t.Fatal("not ready after New returned")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if ok, reason := h.Ready(); ok || reason != "draining" {
		t.Fatalf("after Stop: ready=%v reason=%q, want draining", ok, reason)
	}
}
