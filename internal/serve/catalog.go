// Package serve implements the long-running placement daemon: an
// HTTP/JSON API over the live Gsight controller with write-ahead-logged
// acknowledgements, admission control and active/standby failover
// (DESIGN.md §16).
package serve

import (
	"fmt"
	"sort"

	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/scenario"
	"gsight/internal/sched"
	"gsight/internal/workload"
)

// scJCTFactor is the SC-job admission bound: predicted JCT at most
// this factor over the solo duration — the same contract the platform
// applies (platform.MaxJCTFactor).
const scJCTFactor = 2.0

// defaultQPSFrac is the load an LS placement request is admitted at
// when the caller does not say: 60% of the workload's MaxQPS, the
// steady-state operating point the §6.3 case study runs services at.
const defaultQPSFrac = 0.6

// Archetype is one deployable workload template: profiles from the
// solo-run phase plus the resolved SLA.
type Archetype struct {
	W        *workload.Workload
	Profiles []profile.Profile
	// MinIPC is the LS admission floor from the Figure 7 latency→IPC
	// curve; 0 for SC/BG archetypes.
	MinIPC float64
	// MaxJCTFactor bounds an SC job's predicted JCT; 0 for LS.
	MaxJCTFactor float64
}

// Catalog is the daemon's workload universe: every archetype a
// placement request may name, profiled once at startup on the paper's
// 8-node lab model. Construction is deterministic in the seed, which
// the failover gate leans on — active, standby and the uninterrupted
// reference run all derive the identical catalog.
type Catalog struct {
	gen    *scenario.Generator
	byName map[string]*Archetype
	names  []string
}

// NewCatalog profiles the generator's LS and SC/BG pools and resolves
// each archetype's SLA. lab must be the 8-node testbed model —
// profiles and SLA curves are per-server-spec, not per-cluster-size.
func NewCatalog(lab *perfmodel.Model, seed uint64) *Catalog {
	g := scenario.NewGenerator(lab, seed)
	c := &Catalog{gen: g, byName: map[string]*Archetype{}}
	for i, w := range g.LSPool {
		ps, _ := g.Store.Get(w.Name)
		curve := sched.BuildCurve(lab, w, 250, seed+uint64(i))
		minIPC, _ := curve.MinIPCFor(w.SLAp99Ms)
		c.add(&Archetype{W: w, Profiles: ps, MinIPC: minIPC})
	}
	for _, w := range g.SCPool {
		ps, _ := g.Store.Get(w.Name)
		c.add(&Archetype{W: w, Profiles: ps, MaxJCTFactor: scJCTFactor})
	}
	sort.Strings(c.names)
	return c
}

func (c *Catalog) add(a *Archetype) {
	c.byName[a.W.Name] = a
	c.names = append(c.names, a.W.Name)
}

// Names lists the archetypes, sorted.
func (c *Catalog) Names() []string { return c.names }

// Get resolves an archetype by name (also accepting instance names
// like "matmul#17" via the BaseName convention).
func (c *Catalog) Get(name string) (*Archetype, bool) {
	if a, ok := c.byName[name]; ok {
		return a, true
	}
	base, hashed := core.BaseName(name)
	if hashed {
		a, ok := c.byName[base]
		return a, ok
	}
	return nil, false
}

// Spec returns the lab server spec (capacity vector source for
// cluster construction).
func (c *Catalog) Spec() resources.ServerSpec { return c.gen.Spec() }

// Request builds the scheduler request for placing an instance of the
// named archetype. qpsFrac > 0 overrides the LS load (ignored for
// SC/BG). The instance name must be unique in the running set; the
// daemon derives it from the record's order or sequence number so the
// decision stream is replay-deterministic.
func (c *Catalog) Request(arch, instance string, qpsFrac float64) (*sched.Request, error) {
	a, ok := c.byName[arch]
	if !ok {
		return nil, fmt.Errorf("serve: unknown archetype %q", arch)
	}
	in := core.WorkloadInput{
		Name:     instance,
		Class:    a.W.Class,
		Profiles: a.Profiles,
	}
	req := &sched.Request{Input: in}
	if a.W.Class == workload.LS {
		if qpsFrac <= 0 {
			qpsFrac = defaultQPSFrac
		}
		req.Input.QPSFrac = qpsFrac
		req.SLA = sched.SLA{MinIPC: a.MinIPC}
	} else {
		req.Input.LifetimeS = a.W.SoloDurationS
		req.SLA = sched.SLA{MaxJCTFactor: a.MaxJCTFactor}
		req.SoloDurationS = a.W.SoloDurationS
	}
	return req, nil
}

// Train bootstraps the predictor on n labeled colocation scenarios —
// the same loop gsight-sim runs before a simulation. n == 0 leaves
// the predictor untrained (every placement takes the degraded-mode
// fallback path until observations arrive).
func (c *Catalog) Train(pred core.QoSPredictor, n int) error {
	if n <= 0 {
		return nil
	}
	g := c.gen
	var ipcObs, jctObs []core.Observation
	for i := 0; i < n; i++ {
		sc := g.Colocation(core.LSSC, 2+g.Rand().Intn(2))
		samples, err := g.Label(sc)
		if err != nil {
			return fmt.Errorf("serve: labeling: %w", err)
		}
		for _, s := range samples {
			o := core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label}
			switch s.Kind {
			case core.IPCQoS:
				ipcObs = append(ipcObs, o)
			case core.JCTQoS:
				jctObs = append(jctObs, o)
			}
		}
	}
	if err := pred.TrainObservations(core.IPCQoS, ipcObs); err != nil {
		return fmt.Errorf("serve: training: %w", err)
	}
	if len(jctObs) > 0 {
		if err := pred.TrainObservations(core.JCTQoS, jctObs); err != nil {
			return fmt.Errorf("serve: training: %w", err)
		}
	}
	return nil
}
