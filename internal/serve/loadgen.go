package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gsight/internal/rng"
	"gsight/internal/stats"
)

// Open-loop load generator: arrivals fire on a Poisson clock that does
// NOT wait for responses, so a slow daemon accumulates in-flight work
// instead of silently throttling the offered rate (the coordinated-
// omission trap a closed loop falls into). Used by cmd/gsight-loadgen,
// the serving benchmark, and the failover gate's driver.

// LoadConfig configures one load run.
type LoadConfig struct {
	// Addrs are the daemon base URLs (active first).
	Addrs []string
	// RateQPS is the offered arrival rate. <= 0 means closed-loop: each
	// worker fires its next request as soon as the previous returns.
	RateQPS float64
	// Workers bounds in-flight requests (open loop) or sets the client
	// count (closed loop). Default 32.
	Workers int
	// Requests is the measured-phase request count.
	Requests int
	// Warmup requests run (and are discarded) before measurement.
	Warmup int
	// Seed drives the arrival clock and workload mix.
	Seed uint64
	// Workloads is the archetype mix to draw from uniformly.
	Workloads []string
	// ReleaseFrac releases each placed instance with this probability
	// right after placement, keeping the cluster from filling up over a
	// long run. Default 0 (never release).
	ReleaseFrac float64
	// ObserveFrac follows a successful placement with a synthetic QoS
	// observation (exercises the online-learning path). Default 0.
	ObserveFrac float64
	// Ordered stamps every request with a global order number, making
	// the run byte-replayable for the failover gate. Ordered runs
	// serialize admission; keep rates moderate.
	Ordered bool
	// StartOrder is the first order number an ordered run uses
	// (continuing a numbered stream across phases). Default 1.
	StartOrder uint64
	// MaxAttempts overrides the per-request retry budget (0 = client
	// default). Failover runs need enough budget to outlast a lease
	// expiry + standby restore.
	MaxAttempts int
}

// LoadResult summarizes one load run.
type LoadResult struct {
	Requests  int           `json:"requests"`
	Errors    int           `json:"errors"`
	Shed      int           `json:"shed"` // 429s absorbed by retries
	Placed    int           `json:"placed"`
	Rejected  int           `json:"rejected"`
	Degraded  int           `json:"degraded"`
	Elapsed   time.Duration `json:"-"`
	ElapsedS  float64       `json:"elapsed_s"`
	Throughputs float64     `json:"throughput_rps"`
	MeanMs    float64       `json:"mean_ms"`
	P50Ms     float64       `json:"p50_ms"`
	P95Ms     float64       `json:"p95_ms"`
	P99Ms     float64       `json:"p99_ms"`
	MaxMs     float64       `json:"max_ms"`
	// NextOrder continues an ordered stream in a follow-up run.
	NextOrder uint64 `json:"-"`
}

func (r *LoadResult) String() string {
	return fmt.Sprintf("%d reqs in %.2fs (%.0f rps): placed %d, rejected %d, degraded %d, errors %d, shed-retries %d | latency ms mean %.2f p50 %.2f p95 %.2f p99 %.2f max %.2f",
		r.Requests, r.ElapsedS, r.Throughputs, r.Placed, r.Rejected, r.Degraded,
		r.Errors, r.Shed, r.MeanMs, r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs)
}

// RunLoad drives one load run against a daemon and reports latency
// percentiles over the measured phase.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs at least one address")
	}
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs a workload mix")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 32
	}
	order := cfg.StartOrder
	if order == 0 {
		order = 1
	}

	type job struct {
		arch    string
		order   uint64
		measure bool
	}
	total := cfg.Warmup + cfg.Requests
	jobs := make(chan job, workers)
	mixRand := rng.Stream(cfg.Seed, "loadgen-mix")
	clock := rng.Stream(cfg.Seed, "loadgen-arrivals")

	var (
		mu        sync.Mutex
		latencies []float64
		res       LoadResult
		shed      uint64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Per-worker client: Client.cur is not goroutine-safe.
			cl := NewClient(cfg.Addrs...)
			if cfg.MaxAttempts > 0 {
				cl.MaxAttempts = cfg.MaxAttempts
			}
			obsRand := rng.Stream(cfg.Seed, fmt.Sprintf("loadgen-obs-%d", id))
			for j := range jobs {
				t0 := time.Now()
				ack, err := cl.Place(ctx, PlaceRequest{Workload: j.arch, Order: j.order})
				lat := time.Since(t0)
				mu.Lock()
				if j.measure {
					if err != nil {
						res.Errors++
					} else {
						latencies = append(latencies, lat.Seconds()*1000)
						switch ack.Outcome {
						case "rejected":
							res.Rejected++
						case "degraded":
							res.Degraded++
							res.Placed++
						default:
							res.Placed++
						}
					}
				}
				mu.Unlock()
				if err != nil || ack == nil || len(ack.Placement) == 0 {
					continue
				}
				if cfg.ObserveFrac > 0 && obsRand.Float64() < cfg.ObserveFrac {
					// Feed back the daemon's own prediction as the
					// measurement: harmless for learning, exercises the
					// observe → WAL → flush path end to end.
					if ack.PredIPC > 0 {
						cl.Observe(ctx, ObserveRequest{Name: ack.Name, QoS: "ipc", Value: ack.PredIPC})
					}
				}
				if cfg.ReleaseFrac > 0 && obsRand.Float64() < cfg.ReleaseFrac {
					cl.Release(ctx, ReleaseRequest{Name: ack.Name})
				}
			}
			atomic.AddUint64(&shed, cl.Shed)
		}(w)
	}

	start := time.Now()
	var measStart time.Time
	next := start
	for i := 0; i < total; i++ {
		if cfg.RateQPS > 0 {
			// Open loop: sleep to the precomputed arrival instant
			// regardless of how the previous requests are doing.
			next = next.Add(time.Duration(clock.Exp(cfg.RateQPS) * float64(time.Second)))
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
		}
		if ctx.Err() != nil {
			break
		}
		measure := i >= cfg.Warmup
		if measure && measStart.IsZero() {
			measStart = time.Now()
		}
		j := job{arch: cfg.Workloads[mixRand.Intn(len(cfg.Workloads))], measure: measure}
		if cfg.Ordered {
			j.order = order
			order++
		}
		jobs <- j
	}
	close(jobs)
	wg.Wait()

	if measStart.IsZero() {
		measStart = start
	}
	res.Elapsed = time.Since(measStart)
	res.ElapsedS = res.Elapsed.Seconds()
	res.Requests = len(latencies) + res.Errors
	res.Shed = int(atomic.LoadUint64(&shed))
	res.NextOrder = order
	if res.ElapsedS > 0 {
		res.Throughputs = float64(res.Requests) / res.ElapsedS
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		res.MeanMs = stats.Mean(latencies)
		res.P50Ms = stats.PercentileSorted(latencies, 50)
		res.P95Ms = stats.PercentileSorted(latencies, 95)
		res.P99Ms = stats.PercentileSorted(latencies, 99)
		res.MaxMs = latencies[len(latencies)-1]
	}
	return &res, nil
}
