package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks to a gsight-serve deployment: one or more base URLs
// (active first, standbys after). Retryable failures — connection
// refused, 429, 503, mid-flight daemon death — back off and rotate to
// the next address, so a takeover is invisible to the caller beyond
// latency. Idempotency across the retry boundary comes from order
// numbers: a retried ordered request that was already acknowledged is
// answered from the daemon's response cache with the original bytes.
type Client struct {
	addrs []string
	hc    *http.Client
	// cur is the index of the address that last worked (not
	// goroutine-safe; loadgen gives each worker its own Client).
	cur int
	// Backoff bounds. Defaults: 10ms initial, 1s cap.
	BackoffMin, BackoffMax time.Duration
	// MaxAttempts bounds tries per call across all addresses (default 8).
	MaxAttempts int
	// Shed counts 429 answers absorbed by retries (same goroutine as
	// the calls; read after the client goes quiet).
	Shed uint64
}

// NewClient builds a client for the given base URLs
// (e.g. "http://127.0.0.1:7070").
func NewClient(addrs ...string) *Client {
	return &Client{
		addrs:       addrs,
		hc:          &http.Client{Timeout: 10 * time.Second},
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  time.Second,
		MaxAttempts: 8,
	}
}

// apiError is a non-2xx daemon answer.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string { return fmt.Sprintf("serve: %d: %s", e.Status, e.Msg) }

// retryable reports whether an error may succeed on another attempt
// (possibly against another address).
func retryable(err error) bool {
	var ae *apiError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable,
			http.StatusConflict, http.StatusBadGateway:
			return true
		}
		return false
	}
	return err != nil // transport errors (refused, reset, EOF) retry
}

// post sends one JSON request, rotating addresses and backing off on
// retryable failures until ctx expires or attempts run out.
func (c *Client) post(ctx context.Context, path string, body, out interface{}) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	backoff := c.BackoffMin
	var lastErr error
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		addr := c.addrs[c.cur]
		lastErr = c.postOnce(ctx, addr+path, payload, out)
		if lastErr == nil {
			return nil
		}
		if !retryable(lastErr) {
			return lastErr
		}
		var ae *apiError
		if errors.As(lastErr, &ae) && ae.Status == http.StatusTooManyRequests {
			c.Shed++
		}
		c.cur = (c.cur + 1) % len(c.addrs)
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w (last: %v)", ctx.Err(), lastErr)
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > c.BackoffMax {
			backoff = c.BackoffMax
		}
	}
	return fmt.Errorf("serve: %d attempts exhausted: %w", c.MaxAttempts, lastErr)
}

func (c *Client) postOnce(ctx context.Context, url string, payload []byte, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		msg := string(data)
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &apiError{Status: resp.StatusCode, Msg: msg}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// PlaceAck is the decoded acknowledgement for one placement.
type PlaceAck struct {
	Seq       uint64  `json:"seq"`
	Order     uint64  `json:"order,omitempty"`
	Name      string  `json:"name"`
	Outcome   string  `json:"outcome"`
	Placement []int   `json:"placement,omitempty"`
	Reason    string  `json:"reason,omitempty"`
	PredIPC   float64 `json:"pred_ipc,omitempty"`
	PredJCTS  float64 `json:"pred_jct_s,omitempty"`
}

// Place requests one placement.
func (c *Client) Place(ctx context.Context, req PlaceRequest) (*PlaceAck, error) {
	var ack PlaceAck
	if err := c.post(ctx, "/v1/place", req, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// Observe feeds one QoS measurement back.
func (c *Client) Observe(ctx context.Context, req ObserveRequest) (*observeResponse, error) {
	var ack observeResponse
	if err := c.post(ctx, "/v1/observe", req, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// Release frees a placed instance.
func (c *Client) Release(ctx context.Context, req ReleaseRequest) (*releaseResponse, error) {
	var ack releaseResponse
	if err := c.post(ctx, "/v1/release", req, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// Snapshot forces a checkpoint rotation.
func (c *Client) Snapshot(ctx context.Context) error {
	return c.post(ctx, "/v1/snapshot", struct{}{}, nil)
}

// State fetches the daemon status.
func (c *Client) State(ctx context.Context) (*stateResponse, error) {
	addr := c.addrs[c.cur]
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/state", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st stateResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitReady polls /readyz until the daemon (any address) reports
// ready or ctx expires.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		for _, addr := range c.addrs {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/readyz", nil)
			if err != nil {
				return err
			}
			if resp, err := c.hc.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return nil
				}
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: not ready: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}
