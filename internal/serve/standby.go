package serve

import (
	"context"
	"fmt"
	"os"
	"time"
)

// Standby watches a shared data dir, waiting for the active's lease to
// lapse. Warm state is the data dir itself — snapshot + WAL + decision
// log — so takeover is a restore from the latest durable prefix: every
// acknowledged record survives (fsynced before its ack), every
// unacknowledged one is gone, and the decision log continues
// byte-identically. The standby tracks file sizes only as a liveness
// signal for operators; correctness never depends on tailing speed.
type StandbyConfig struct {
	// DataDir is the dir shared with the active.
	DataDir string
	// Owner names this process in the lease file.
	Owner string
	// TTL is the lease duration the standby will serve with.
	TTL time.Duration
	// Poll is the lease check interval (default TTL/4).
	Poll time.Duration
	// Logf receives progress lines.
	Logf func(string, ...interface{})
}

// WaitForLease blocks until the active's lease expires (or ctx ends),
// then acquires it with a bumped fencing epoch and returns the held
// lease. The caller then builds the Server (New restores from the
// data dir) and starts renewing.
func WaitForLease(ctx context.Context, cfg StandbyConfig) (*Lease, error) {
	if cfg.TTL <= 0 {
		cfg.TTL = 2 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.TTL / 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	l := NewLease(LeasePath(cfg.DataDir), cfg.Owner, cfg.TTL)
	var lastLog int64
	for {
		err := l.Acquire()
		if err == nil {
			cfg.Logf("lease acquired at epoch %d", l.Epoch())
			return l, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Heartbeat line: decision-log growth shows the active is alive.
		if sz := dirProgress(cfg.DataDir); sz != lastLog {
			cfg.Logf("standing by: active holds lease (%v); decision log at %d bytes", err, sz)
			lastLog = sz
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(cfg.Poll):
		}
	}
}

// dirProgress reports the decision log size (0 if absent).
func dirProgress(dir string) int64 {
	fi, err := os.Stat(dir + "/decisions.jsonl")
	if err != nil {
		return 0
	}
	return fi.Size()
}

// RenewLoop renews the lease until ctx ends or renewal fails; on
// failure it calls fence (exactly once) and returns the error. Run it
// in its own goroutine next to a serving daemon.
func RenewLoop(ctx context.Context, l *Lease, fence func(error)) error {
	interval := l.TTL() / 3
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	for {
		select {
		case <-ctx.Done():
			return l.Release()
		case <-time.After(interval):
		}
		if err := l.Renew(); err != nil {
			fence(fmt.Errorf("serve: lease renewal: %w", err))
			return err
		}
	}
}
