package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gsight/internal/core"
)

// HTTP/JSON wire schema. Every mutating endpoint answers only after
// its WAL record is fsynced; overload answers 429 + Retry-After so
// clients back off instead of queueing into a timeout.

// PlaceRequest asks for one placement.
type PlaceRequest struct {
	// Workload names a catalog archetype (e.g. "matmul",
	// "social-network").
	Workload string `json:"workload"`
	// QPSFrac overrides the LS operating point (0 = default 0.6).
	QPSFrac float64 `json:"qps_frac,omitempty"`
	// Order, when > 0, is the client-assigned global sequence number:
	// the daemon admits orders strictly in sequence, making the
	// decision stream independent of network interleaving (the
	// failover gate's replayable-load mode). 0 = unordered.
	Order uint64 `json:"order,omitempty"`
}

// placeResponse is the acknowledgement for one placement.
type placeResponse struct {
	Seq       uint64  `json:"seq"`
	Order     uint64  `json:"order,omitempty"`
	Name      string  `json:"name"`
	Outcome   string  `json:"outcome"`
	Placement []int   `json:"placement,omitempty"`
	Reason    string  `json:"reason,omitempty"`
	PredIPC   float64 `json:"pred_ipc,omitempty"`
	PredJCTS  float64 `json:"pred_jct_s,omitempty"`
}

// ObserveRequest feeds one QoS measurement back to the online learner.
type ObserveRequest struct {
	// Name is the instance name a placement acknowledgement returned.
	Name string `json:"name"`
	// QoS is "ipc", "p99" or "jct".
	QoS string `json:"qos"`
	// Value is the measured QoS.
	Value float64 `json:"value"`
	Order uint64  `json:"order,omitempty"`
}

type observeResponse struct {
	Seq     uint64 `json:"seq"`
	Order   uint64 `json:"order,omitempty"`
	Applied bool   `json:"applied"`
}

// ReleaseRequest frees a placed instance.
type ReleaseRequest struct {
	Name  string `json:"name"`
	Order uint64 `json:"order,omitempty"`
}

type releaseResponse struct {
	Seq      uint64 `json:"seq"`
	Order    uint64 `json:"order,omitempty"`
	Released bool   `json:"released"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies (a batch of a few hundred
// placements fits with room to spare).
const maxBodyBytes = 1 << 20

// defaultRequestTimeout bounds one request's wait on the committer.
const defaultRequestTimeout = 5 * time.Second

// Handler mounts the serving API on a fresh mux:
//
//	POST /v1/place     one placement (or {"batch": [...]} for many)
//	POST /v1/observe   QoS feedback → online learning
//	POST /v1/release   free an instance
//	POST /v1/snapshot  force a checkpoint rotation
//	GET  /v1/state     cluster + daemon status
//	GET  /healthz      liveness
//	GET  /readyz       readiness (false until replay done, false again while draining)
//	GET  /metrics      Prometheus text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/place", s.handlePlace)
	mux.HandleFunc("/v1/observe", s.handleObserve)
	mux.HandleFunc("/v1/release", s.handleRelease)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/state", s.handleState)
	s.health.Handle(mux)
	reg := s.cfg.Sink.Registry
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	return mux
}

// reqTimeout resolves the per-request deadline.
func (s *Server) reqTimeout() time.Duration { return defaultRequestTimeout }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeResp translates a committer answer to HTTP. 429s carry
// Retry-After so well-behaved clients back off.
func writeResp(w http.ResponseWriter, r pendingResp) {
	if r.err != nil {
		status := r.status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, errorResponse{Error: r.err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(r.payload)
	w.Write([]byte("\n"))
}

func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return false
	}
	return true
}

// placeBody accepts either a single PlaceRequest or {"batch": [...]}.
type placeBody struct {
	PlaceRequest
	Batch []PlaceRequest `json:"batch,omitempty"`
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	var body placeBody
	if !decodeBody(w, r, &body) {
		return
	}
	reqs := body.Batch
	if len(reqs) == 0 {
		reqs = []PlaceRequest{body.PlaceRequest}
	}
	for _, pr := range reqs {
		if _, ok := s.cat.Get(pr.Workload); !ok {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("unknown workload %q (see /v1/state for the catalog)", pr.Workload)})
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout())
	defer cancel()
	t0 := time.Now()
	if len(body.Batch) == 0 {
		resp := s.enqueue(ctx, &pending{kind: kindPlace, order: reqs[0].Order,
			arch: reqs[0].Workload, qps: reqs[0].QPSFrac, reply: make(chan pendingResp, 1)})
		s.met.placeLatency.Observe(time.Since(t0).Seconds())
		writeResp(w, resp)
		return
	}
	// Batch mode: enqueue every request, then gather. Items keep their
	// client order numbers; the committer coalesces whatever lands in
	// the same batch window into single PlaceAll/fsync rounds.
	ps := make([]*pending, len(reqs))
	answers := make([]pendingResp, len(reqs))
	for i, pr := range reqs {
		ps[i] = &pending{kind: kindPlace, order: pr.Order, arch: pr.Workload,
			qps: pr.QPSFrac, reply: make(chan pendingResp, 1)}
	}
	for i, p := range ps {
		answers[i] = s.enqueue(ctx, p)
	}
	s.met.placeLatency.Observe(time.Since(t0).Seconds())
	out := make([]json.RawMessage, 0, len(answers))
	for _, a := range answers {
		if a.err != nil {
			writeResp(w, a) // first failure fails the batch call
			return
		}
		out = append(out, a.payload)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"results": out})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var body ObserveRequest
	if !decodeBody(w, r, &body) {
		return
	}
	if _, ok := qosKind(body.QoS); !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("unknown qos kind %q (want ipc, p99 or jct)", body.QoS)})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout())
	defer cancel()
	writeResp(w, s.enqueue(ctx, &pending{kind: kindObserve, order: body.Order,
		name: body.Name, qos: body.QoS, value: body.Value, reply: make(chan pendingResp, 1)}))
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var body ReleaseRequest
	if !decodeBody(w, r, &body) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout())
	defer cancel()
	writeResp(w, s.enqueue(ctx, &pending{kind: kindRelease, order: body.Order,
		name: body.Name, reply: make(chan pendingResp, 1)}))
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
	defer cancel()
	writeResp(w, s.enqueue(ctx, &pending{kind: ctlSnapshot, reply: make(chan pendingResp, 1)}))
}

// stateResponse is the GET /v1/state body.
type stateResponse struct {
	Applied   uint64   `json:"applied"`
	Servers   int      `json:"servers"`
	Running   int      `json:"running"`
	Catalog   []string `json:"catalog"`
	Snapshots uint64   `json:"snapshot_gen"`
	UptimeS   float64  `json:"uptime_s"`
	Trained   bool     `json:"trained"`
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	// Reads committer-owned values without the committer: advisory
	// numbers for operators, not a linearizable view.
	writeJSON(w, http.StatusOK, stateResponse{
		Applied:   s.applied,
		Servers:   s.state.NumServers(),
		Running:   s.state.NumRunning(),
		Catalog:   s.cat.Names(),
		Snapshots: s.gen,
		UptimeS:   time.Since(s.started).Seconds(),
		Trained:   s.pred.SamplesSeen(core.IPCQoS) > 0,
	})
}

// parseOrder is a small helper shared with the load generator.
func parseOrder(s string) uint64 {
	v, _ := strconv.ParseUint(s, 10, 64)
	return v
}
