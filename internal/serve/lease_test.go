package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives lease expiry without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                 { return &fakeClock{t: time.Unix(1000, 0)} }
func leaseAt(dir string, owner string, clk *fakeClock) *Lease {
	l := NewLease(filepath.Join(dir, "lease.json"), owner, time.Second)
	l.SetClock(clk.now)
	return l
}

func TestLeaseAcquireRenewRelease(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := leaseAt(dir, "a", clk)

	if err := a.Acquire(); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if a.Epoch() != 1 {
		t.Fatalf("first epoch = %d, want 1", a.Epoch())
	}

	// A live lease repels another owner.
	b := leaseAt(dir, "b", clk)
	if err := b.Acquire(); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire over live lease = %v, want ErrLeaseHeld", err)
	}

	// Renewal extends expiry: still held later than the original TTL.
	clk.advance(800 * time.Millisecond)
	if err := a.Renew(); err != nil {
		t.Fatalf("renew: %v", err)
	}
	clk.advance(800 * time.Millisecond)
	if err := b.Acquire(); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire after renewal = %v, want ErrLeaseHeld", err)
	}

	// Release hands off immediately; the successor bumps the epoch.
	if err := a.Release(); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if b.Epoch() != 2 {
		t.Fatalf("successor epoch = %d, want 2", b.Epoch())
	}
}

func TestLeaseExpiryTakeoverFencesOldOwner(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	active := leaseAt(dir, "active", clk)
	standby := leaseAt(dir, "standby", clk)

	if err := active.Acquire(); err != nil {
		t.Fatal(err)
	}
	// Active goes silent; lease lapses; standby takes over.
	clk.advance(1500 * time.Millisecond)
	if err := standby.Acquire(); err != nil {
		t.Fatalf("takeover after expiry: %v", err)
	}
	if standby.Epoch() != active.Epoch()+1 {
		t.Fatalf("takeover epoch = %d, want %d", standby.Epoch(), active.Epoch()+1)
	}
	// The deposed active's next renewal must self-fence.
	if err := active.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("deposed renew = %v, want ErrLeaseLost", err)
	}
	// And its release must not clobber the successor's lease.
	if err := active.Release(); err != nil {
		t.Fatal(err)
	}
	if err := standby.Renew(); err != nil {
		t.Fatalf("successor renew after deposed release: %v", err)
	}
}

// A free lease raced by many acquirers must elect exactly one winner.
// Before the flock critical section, two racers could both read "no
// holder" and both write epoch 1; the loser then self-fenced on its
// first renewal even though no takeover happened.
func TestLeaseConcurrentAcquireSingleWinner(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lease.json")
	const racers = 16
	var wins atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		l := NewLease(path, fmt.Sprintf("proc-%d", i), time.Minute)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			switch err := l.Acquire(); {
			case err == nil:
				wins.Add(1)
			case !errors.Is(err, ErrLeaseHeld):
				t.Errorf("racing acquire: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d acquirers won a free lease, want exactly 1", wins.Load())
	}
}

func TestLeaseCorruptFileCountsAsExpired(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lease.json")
	if err := os.WriteFile(path, []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	l := NewLease(path, "x", time.Second)
	l.SetClock(clk.now)
	if err := l.Acquire(); err != nil {
		t.Fatalf("acquire over corrupt lease: %v", err)
	}
	if err := l.Renew(); err != nil {
		t.Fatalf("renew after recovery: %v", err)
	}
}
