package serve

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// End-to-end failover: real gsight-serve processes, a real SIGKILL
// mid-load, a hot standby taking over through the lease, and a
// byte-identity check of the merged decision log against an
// uninterrupted reference run. This is the in-tree twin of
// scripts/servecheck.sh.

const failoverRequests = 90

func buildServeBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gsight-serve")
	cmd := exec.Command("go", "build", "-o", bin, "gsight/cmd/gsight-serve")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build gsight-serve: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

type daemon struct {
	cmd  *exec.Cmd
	addr string
	logs *bytes.Buffer
}

func startDaemon(t *testing.T, bin, dir, addr string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{
		"-data", dir, "-addr", addr,
		"-seed", "7", "-train", "4", "-placers", "2",
		"-snapshot-every", "32", "-lease-ttl", "500ms",
	}, extra...)
	d := &daemon{addr: addr, logs: &bytes.Buffer{}}
	d.cmd = exec.Command(bin, args...)
	d.cmd.Stdout = d.logs
	d.cmd.Stderr = d.logs
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	t.Cleanup(func() {
		if d.cmd.Process != nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	return d
}

func (d *daemon) stopGracefully(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain within 30s\n%s", d.logs)
	}
}

func failoverLoad(addrs []string) LoadConfig {
	return LoadConfig{
		Addrs:     addrs,
		Workers:   8,
		Requests:  failoverRequests,
		Warmup:    0,
		Seed:      11,
		Workloads: []string{"matmul", "social-network", "dd", "e-commerce", "kmeans"},
		Ordered:   true,
		// No releases/observations: the gate compares pure ordered
		// placement streams, and those extras are unordered.
		ReleaseFrac: 0,
		ObserveFrac: 0,
		MaxAttempts: 60,
	}
}

func TestFailoverSIGKILLByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level failover test")
	}
	bin := buildServeBinary(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Reference: one daemon, uninterrupted ordered load, clean drain.
	refDir := t.TempDir()
	refAddr := freeAddr(t)
	ref := startDaemon(t, bin, refDir, refAddr)
	refURL := "http://" + refAddr
	if err := NewClient(refURL).WaitReady(ctx); err != nil {
		t.Fatalf("reference daemon not ready: %v\n%s", err, ref.logs)
	}
	refRes, err := RunLoad(ctx, failoverLoad([]string{refURL}))
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Errors > 0 {
		t.Fatalf("reference run had %d errors: %s", refRes.Errors, refRes)
	}
	ref.stopGracefully(t)

	// Crash run: active + hot standby over a shared data dir; SIGKILL
	// the active once the decision log shows progress.
	crashDir := t.TempDir()
	activeAddr, standbyAddr := freeAddr(t), freeAddr(t)
	active := startDaemon(t, bin, crashDir, activeAddr)
	activeURL, standbyURL := "http://"+activeAddr, "http://"+standbyAddr
	if err := NewClient(activeURL).WaitReady(ctx); err != nil {
		t.Fatalf("active not ready: %v\n%s", err, active.logs)
	}
	standby := startDaemon(t, bin, crashDir, standbyAddr, "-standby")

	logPath := filepath.Join(crashDir, "decisions.jsonl")
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(time.Minute)
		for time.Now().Before(deadline) {
			if fi, err := os.Stat(logPath); err == nil && fi.Size() > 2000 {
				active.cmd.Process.Signal(syscall.SIGKILL)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	crashRes, err := RunLoad(ctx, failoverLoad([]string{activeURL, standbyURL}))
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	if crashRes.Errors > 0 {
		t.Fatalf("crash run had %d errors: %s\nactive:\n%s\nstandby:\n%s",
			crashRes.Errors, crashRes, active.logs, standby.logs)
	}
	active.cmd.Wait() // reap the SIGKILLed active
	standby.stopGracefully(t)

	if !bytes.Contains(standby.logs.Bytes(), []byte("lease acquired")) {
		t.Fatalf("standby never took over:\n%s", standby.logs)
	}

	refLog, err := os.ReadFile(filepath.Join(refDir, "decisions.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	crashLog, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refLog, crashLog) {
		t.Fatalf("decision log diverged after SIGKILL takeover:\nreference %d bytes, crash run %d bytes\n%s",
			len(refLog), len(crashLog), firstDiff(refLog, crashLog))
	}
	t.Logf("byte-identical decision logs (%d bytes) across SIGKILL + takeover; crash-run: %s",
		len(refLog), crashRes)
}

// TestFailoverFencedActiveExits: a deposed active (its lease stolen
// while it was stalled) must exit non-zero instead of serving on.
func TestFailoverFencedActiveExits(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level failover test")
	}
	bin := buildServeBinary(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	dir := t.TempDir()
	addr := freeAddr(t)
	active := startDaemon(t, bin, dir, addr)
	if err := NewClient("http://" + addr).WaitReady(ctx); err != nil {
		t.Fatalf("active not ready: %v\n%s", err, active.logs)
	}

	// Steal the lease out from under it: SIGSTOP the active so it
	// misses renewals, let the lease lapse, take it at a higher epoch,
	// then resume the active.
	active.cmd.Process.Signal(syscall.SIGSTOP)
	time.Sleep(700 * time.Millisecond) // > lease TTL
	thief := NewLease(LeasePath(dir), "thief", time.Hour)
	if err := thief.Acquire(); err != nil {
		t.Fatalf("steal lease: %v", err)
	}
	active.cmd.Process.Signal(syscall.SIGCONT)

	done := make(chan error, 1)
	go func() { done <- active.cmd.Wait() }()
	select {
	case err := <-done:
		var ee *exec.ExitError
		if err == nil {
			t.Fatalf("deposed active exited 0:\n%s", active.logs)
		} else if asExit(err, &ee) && ee.ExitCode() != 3 {
			t.Fatalf("deposed active exit code %d, want 3:\n%s", ee.ExitCode(), active.logs)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("deposed active kept running past a lost lease:\n%s", active.logs)
	}
	if !bytes.Contains(active.logs.Bytes(), []byte("FENCED")) {
		t.Fatalf("no fence line in deposed active's log:\n%s", active.logs)
	}
}

func asExit(err error, out **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*out = ee
	}
	return ok
}

// firstDiff renders the first divergent line pair for the failure
// message.
func firstDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("first divergence at line %d:\n  ref:   %s\n  crash: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("one log is a prefix of the other (lines %d vs %d)", len(al), len(bl))
}
