package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"syscall"
	"time"

	"gsight/internal/persist"
)

// Expiry-based leadership lease over a shared file. Exactly one
// process serves at a time: the active holds the lease and renews it
// at a fraction of its TTL; a standby polls, and the moment the lease
// expires it acquires with a bumped fencing epoch and takes over. A
// deposed active discovers the epoch change on its next renewal and
// self-fences — it stops acknowledging before it can fork the decision
// stream. Writes go through WriteFileAtomic so a torn lease file is
// impossible; clock injection keeps the unit tests instant.

// ErrLeaseLost reports a renewal that found the lease held by someone
// else (or at a different epoch): the holder must fence immediately.
var ErrLeaseLost = errors.New("serve: lease lost")

// ErrLeaseHeld reports an acquisition attempt against a live lease.
var ErrLeaseHeld = errors.New("serve: lease held")

// leaseFile is the on-disk schema.
type leaseFile struct {
	Epoch   uint64 `json:"epoch"`
	Owner   string `json:"owner"`
	Expires int64  `json:"expires_unix_ns"`
}

// Lease is one process's handle on the lease file.
type Lease struct {
	path  string
	owner string
	ttl   time.Duration
	epoch uint64
	now   func() time.Time
}

// NewLease builds a handle (no acquisition yet). owner must be unique
// per process — pid-qualified names work.
func NewLease(path, owner string, ttl time.Duration) *Lease {
	return &Lease{path: path, owner: owner, ttl: ttl, now: time.Now}
}

// SetClock injects a clock for tests.
func (l *Lease) SetClock(now func() time.Time) { l.now = now }

// Epoch returns the fencing epoch of the currently-held lease.
func (l *Lease) Epoch() uint64 { return l.epoch }

// TTL returns the lease duration.
func (l *Lease) TTL() time.Duration { return l.ttl }

// withLock runs fn holding an exclusive flock on a sidecar lock file,
// serializing the read-check-write critical sections across processes.
// Without it, two processes racing a free lease can both read "no
// holder" and both write epoch 1 — the loser then self-fences on its
// first renewal even though no takeover happened. The kernel drops a
// flock when its holder dies, so a crash mid-acquire cannot wedge the
// lease the way a lock *file* would.
func (l *Lease) withLock(fn func() error) error {
	f, err := os.OpenFile(l.path+".lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("serve: lease lock %s: %w", l.path, err)
	}
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("serve: lease lock %s: %w", l.path, err)
	}
	defer syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return fn()
}

// read parses the lease file; a missing file is a zero lease (never
// held).
func (l *Lease) read() (leaseFile, error) {
	var lf leaseFile
	data, err := os.ReadFile(l.path)
	if os.IsNotExist(err) {
		return lf, nil
	}
	if err != nil {
		return lf, fmt.Errorf("serve: lease %s: %w", l.path, err)
	}
	if err := json.Unmarshal(data, &lf); err != nil {
		// A corrupt lease file counts as expired: the fencing epoch
		// restarts above any epoch a live holder could hold, because
		// acquire bumps from 0 only when the file is unreadable, and a
		// live holder's renewal will then fence on the owner mismatch.
		return leaseFile{}, nil
	}
	return lf, nil
}

// write stores the lease atomically.
func (l *Lease) write(lf leaseFile) error {
	data, err := json.Marshal(lf)
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(l.path, data, 0o644)
}

// Acquire takes the lease if it is free or expired, bumping the
// fencing epoch. It returns ErrLeaseHeld while another owner's lease
// is live.
func (l *Lease) Acquire() error {
	return l.withLock(func() error {
		cur, err := l.read()
		if err != nil {
			return err
		}
		now := l.now()
		if cur.Owner != "" && cur.Owner != l.owner && now.UnixNano() < cur.Expires {
			return fmt.Errorf("%w by %s for %s", ErrLeaseHeld, cur.Owner,
				time.Duration(cur.Expires-now.UnixNano()).Round(time.Millisecond))
		}
		next := leaseFile{Epoch: cur.Epoch + 1, Owner: l.owner, Expires: now.Add(l.ttl).UnixNano()}
		if err := l.write(next); err != nil {
			return err
		}
		l.epoch = next.Epoch
		return nil
	})
}

// Renew extends the held lease. A changed owner or epoch means the
// lease was taken over — the caller must stop serving immediately
// (ErrLeaseLost).
func (l *Lease) Renew() error {
	return l.withLock(func() error {
		cur, err := l.read()
		if err != nil {
			return err
		}
		if cur.Owner != l.owner || cur.Epoch != l.epoch {
			return fmt.Errorf("%w: now held by %s at epoch %d (we held epoch %d)",
				ErrLeaseLost, cur.Owner, cur.Epoch, l.epoch)
		}
		cur.Expires = l.now().Add(l.ttl).UnixNano()
		return l.write(cur)
	})
}

// Release expires the held lease immediately (clean shutdown handoff).
// Losing a race with a takeover is fine — the successor's lease is
// left untouched.
func (l *Lease) Release() error {
	return l.withLock(func() error {
		cur, err := l.read()
		if err != nil {
			return err
		}
		if cur.Owner != l.owner || cur.Epoch != l.epoch {
			return nil // already taken over; nothing of ours to release
		}
		cur.Expires = 0
		return l.write(cur)
	})
}
