package serve

import (
	"encoding/json"
	"fmt"
)

// The daemon's durability schema. Every acknowledged request is one
// WAL record carrying BOTH the request and the decision, appended and
// group-commit fsynced BEFORE the acknowledgement leaves the process.
// That ordering is the whole failover story: the decision log the
// daemon emits is the WAL payloads verbatim, so a standby that replays
// the WAL regenerates the exact acknowledged byte stream — takeover
// cannot lose or reinvent an acked decision, and the servecheck gate
// can demand byte identity with an uninterrupted run.
//
// Replay applies records without re-running the scheduler: placements
// commit the stored server assignment into the cluster state, and
// observations re-feed the online learner in record order (the
// predictor's flush cadence is a pure function of the observation
// count, so the learner state converges to the active's exactly).

// Record kinds.
const (
	kindPlace   = "place"
	kindObserve = "observe"
	kindRelease = "release"
)

// walRecord is one acknowledged API request with its decision. The
// JSON field order is fixed by this struct — the byte-identity gate
// compares marshaled lines directly.
type walRecord struct {
	Seq   uint64 `json:"seq"`
	Kind  string `json:"kind"`
	Order uint64 `json:"order,omitempty"`

	Place *placeRecord   `json:"place,omitempty"`
	Obs   *observeRecord `json:"observe,omitempty"`
	Rel   *releaseRecord `json:"release,omitempty"`
}

// placeRecord is a placement request and its decision.
type placeRecord struct {
	Workload string  `json:"workload"`
	QPSFrac  float64 `json:"qps_frac,omitempty"`

	Name      string  `json:"name"`
	Outcome   string  `json:"outcome"`
	Placement []int   `json:"placement,omitempty"`
	Reason    string  `json:"reason,omitempty"`
	PredIPC   float64 `json:"pred_ipc,omitempty"`
	PredJCTS  float64 `json:"pred_jct_s,omitempty"`
	// Commit retry counts and view widths are deliberately absent:
	// they depend on batch boundaries and worker interleaving, and the
	// record must be a pure function of the admitted request order
	// (the byte-identity gate compares these lines directly). They go
	// to metrics instead.
}

// observeRecord is one QoS observation fed to the online learner.
type observeRecord struct {
	Name    string  `json:"name"`
	QoS     string  `json:"qos"`
	Value   float64 `json:"value"`
	Applied bool    `json:"applied"`
}

// releaseRecord frees a placed instance's capacity.
type releaseRecord struct {
	Name     string `json:"name"`
	Released bool   `json:"released"`
}

// encodeRecord marshals a record to its canonical WAL payload (also
// the decision-log line, newline excluded).
func encodeRecord(r *walRecord) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("serve: encode wal record %d: %w", r.Seq, err)
	}
	return b, nil
}

// decodeRecord parses one WAL payload.
func decodeRecord(payload []byte) (*walRecord, error) {
	var r walRecord
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, fmt.Errorf("serve: corrupt wal record: %w", err)
	}
	return &r, nil
}

// placedOutcome reports whether a place record committed capacity
// (i.e. replay must re-commit its placement).
func placedOutcome(outcome string) bool {
	switch outcome {
	case "placed", "fallback", "degraded":
		return true
	}
	return false
}

// snapshotState is the daemon's checkpoint payload: everything needed
// to continue the decision stream byte-identically — cluster running
// set, predictor learning state, the applied high-water marks, and
// the response cache that answers duplicate retries after takeover.
type snapshotState struct {
	Version int `json:"version"`
	// Applied is the last applied record sequence number; WAL records
	// with Seq <= Applied are already folded into this snapshot.
	Applied uint64 `json:"applied"`
	// NextOrder is the next client order number the reorder buffer
	// admits; orders below it are duplicates.
	NextOrder uint64 `json:"next_order"`
	// LogBytes is the decision log's byte length at snapshot time (the
	// file is flushed+fsynced first). Takeover truncates the log here
	// and re-emits the replayed WAL records after it.
	LogBytes int64 `json:"log_bytes"`
	// SchedSeq / Epochs restore the sharded state's commit clock.
	SchedSeq uint64   `json:"sched_seq"`
	Epochs   []uint64 `json:"epochs,omitempty"`
	// Running is the deployed set (profiles rehydrate from the catalog
	// by archetype).
	Running []deployedState `json:"running,omitempty"`
	// Predictor is the online learner's full checkpoint (forests,
	// windows, pending observation buffers).
	Predictor json.RawMessage `json:"predictor,omitempty"`
	// Responses is the duplicate-answer cache: order → response JSON
	// for recently acknowledged ordered requests.
	Responses []cachedResponse `json:"responses,omitempty"`
}

const snapshotStateVersion = 1

// deployedState serializes one running deployment.
type deployedState struct {
	Name      string  `json:"name"`
	Archetype string  `json:"archetype"`
	QPSFrac   float64 `json:"qps_frac,omitempty"`
	Placement []int   `json:"placement"`
	MinIPC    float64 `json:"min_ipc,omitempty"`
	MaxJCT    float64 `json:"max_jct_factor,omitempty"`
}

// cachedResponse is one retained duplicate answer.
type cachedResponse struct {
	Order uint64          `json:"order"`
	Resp  json.RawMessage `json:"resp"`
}
