package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/persist"
	"gsight/internal/resources"
	"gsight/internal/scenario"
	"gsight/internal/sched"
	"gsight/internal/telemetry"
)

// Server is the crash-tolerant placement daemon: a single committer
// goroutine serializes every state mutation, batching contiguous
// placements through the PlacerPool (concurrent propose, serial
// commit) and acknowledging nothing before its WAL record is
// group-commit fsynced.
//
// Determinism contract (what the servecheck gate proves): the decision
// stream is a pure function of the admitted record order. Ordered
// requests (client-stamped order numbers) are admitted strictly in
// order through a reorder buffer, so the stream is independent of
// network interleaving, batch boundaries and crash/takeover timing:
//
//   - PlaceAll batches are serial-equivalent — a proposal only reads
//     its placement window, and a commit validates those exact epoch
//     stamps, so any request affected by an earlier commit re-proposes
//     against the refreshed state. Splitting a run of placements
//     across batches cannot change any decision.
//   - The online learner's flush cadence is a function of the
//     observation count, and observations apply in record order.
//   - Replay applies stored decisions (no re-scheduling), so a resumed
//     or taken-over daemon continues from exactly the acknowledged
//     prefix; duplicate retries of acknowledged orders are answered
//     from a response cache instead of re-executed.
type Server struct {
	cfg   Config
	cat   *Catalog
	pred  *core.Predictor
	state *sched.ShardedState
	pool  *sched.PlacerPool

	intake  chan *pending
	stopC   chan struct{}
	doneC   chan struct{}
	stopped bool

	// Committer-owned state (single goroutine; no locks).
	gen       uint64 // current checkpoint generation
	wal       *persist.GroupWAL
	logF      *os.File
	logBytes  int64
	applied   uint64 // last applied record seq
	snapSeq   uint64 // applied seq at the last snapshot
	nextOrder uint64 // next client order the reorder buffer admits
	parked    map[uint64]*pending
	resp      map[uint64]json.RawMessage // order → response (dup answers)
	respRing  []uint64                   // eviction order for resp

	met     serveMetrics
	health  *telemetry.Health
	logf    func(string, ...interface{})
	started time.Time
}

// Config configures a Server.
type Config struct {
	// DataDir holds snapshots, WAL generations, decisions.jsonl and
	// lease.json. Required.
	DataDir string
	// Servers is the cluster size (0 = the paper's 8-node testbed).
	Servers int
	// Shards / Placers configure the sharded state and placer pool.
	Shards  int
	Placers int
	// Seed drives the catalog, SLA curves and bootstrap training.
	Seed uint64
	// Train is the bootstrap scenario count; 0 starts untrained, so
	// every placement takes the degraded fallback path until
	// observations accumulate.
	Train int
	// TopK enables two-tier placement (0 = off).
	TopK int
	// QueueCap bounds the admission queue; a full queue sheds with
	// 429 + Retry-After instead of queueing unboundedly. Default 256.
	QueueCap int
	// MaxBatch bounds records per commit batch. Default 64.
	MaxBatch int
	// SnapshotEvery snapshots after this many records. Default 1024.
	SnapshotEvery int
	// Keep is the checkpoint generations retained. Default 3.
	Keep int
	// FlushWindow is the group-commit coalescing window (0 = flush as
	// soon as the WAL flusher is free).
	FlushWindow time.Duration
	// Sink receives serving metrics; nil allocates a private one.
	Sink *telemetry.Sink
	// Health, when set, tracks readiness through restore and drain.
	Health *telemetry.Health
	// Logf, when set, receives progress lines.
	Logf func(string, ...interface{})
}

func (c *Config) fill() error {
	if c.DataDir == "" {
		return errors.New("serve: Config.DataDir is required")
	}
	if c.Servers <= 0 {
		c.Servers = resources.DefaultTestbed().NumServers()
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 1024
	}
	if c.Keep <= 0 {
		c.Keep = 3
	}
	if c.Sink == nil {
		c.Sink = telemetry.New()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return nil
}

// respCacheCap bounds the duplicate-answer cache. It must exceed any
// client's retry window; evicted orders answer 410 Gone.
const respCacheCap = 4096

// serveMetrics are the serving-path instruments.
type serveMetrics struct {
	place, observe, release *telemetry.Counter
	rejected, degraded      *telemetry.Counter
	shed, dups, timeouts    *telemetry.Counter
	walRecords, snapshots   *telemetry.Counter
	replayed, takeovers     *telemetry.Counter
	conflicts               *telemetry.Counter
	batchSize               *telemetry.Histogram
	placeLatency            *telemetry.Histogram
}

func newServeMetrics(reg *telemetry.Registry) serveMetrics {
	return serveMetrics{
		place:        reg.Counter("serve_place_total", "placement requests acknowledged"),
		observe:      reg.Counter("serve_observe_total", "observations acknowledged"),
		release:      reg.Counter("serve_release_total", "releases acknowledged"),
		rejected:     reg.Counter("serve_rejected_total", "placements rejected (no feasible placement)"),
		degraded:     reg.Counter("serve_degraded_total", "placements served by the degraded fallback"),
		shed:         reg.Counter("serve_shed_total", "requests shed with 429 (queue or reorder buffer full)"),
		dups:         reg.Counter("serve_duplicate_total", "duplicate ordered requests answered from cache"),
		timeouts:     reg.Counter("serve_timeout_total", "requests that timed out waiting for the committer"),
		walRecords:   reg.Counter("serve_wal_records_total", "records group-committed to the WAL"),
		snapshots:    reg.Counter("serve_snapshots_total", "snapshots written"),
		replayed:     reg.Counter("serve_replayed_records_total", "WAL records replayed at startup"),
		takeovers:    reg.Counter("serve_takeovers_total", "restores from an existing snapshot (restart or takeover)"),
		conflicts:    reg.Counter("serve_commit_conflicts_total", "placement commit retries (stale-epoch re-proposals)"),
		batchSize:    reg.Histogram("serve_batch_records", "records per commit batch", telemetry.ExpBuckets(1, 2, 12)),
		placeLatency: reg.Histogram("serve_place_seconds", "placement request latency", telemetry.DurationBuckets()),
	}
}

// pending is one request waiting for the committer.
type pending struct {
	kind  string // kindPlace, kindObserve, kindRelease, ctlSnapshot
	order uint64
	arch  string  // place: archetype
	qps   float64 // place: LS load override
	name  string  // observe/release: instance name
	qos   string  // observe: QoS kind ("ipc", "p99", "jct")
	value float64 // observe: measured value
	reply chan pendingResp
}

// ctlSnapshot is the admin snapshot control message (no WAL record).
const ctlSnapshot = "snapshot-ctl"

// pendingResp is the committer's answer. status 0 means 200.
type pendingResp struct {
	payload json.RawMessage
	status  int
	err     error
}

// New builds the daemon: construct the catalog, restore from the
// newest snapshot + WAL (or bootstrap-train on a fresh data dir),
// regenerate the decision log to the acknowledged prefix, and start
// the committer. On return the server is ready (Config.Health flipped
// true); mount Handler on a listener to serve.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: data dir: %w", err)
	}
	cfg.Health.SetReady(false, "starting")

	lab := perfmodel.New(resources.DefaultTestbed())
	scenario.FastConfig(lab)
	cat := NewCatalog(lab, cfg.Seed)
	pred := core.NewPredictor(core.Config{Seed: cfg.Seed})

	s := &Server{
		cfg:     cfg,
		cat:     cat,
		pred:    pred,
		state:   sched.ShardedStateFromProfiles(cat.Spec(), cfg.Servers, cfg.Shards),
		intake:  make(chan *pending, cfg.QueueCap),
		stopC:   make(chan struct{}),
		doneC:   make(chan struct{}),
		parked:  map[uint64]*pending{},
		resp:    map[uint64]json.RawMessage{},
		met:     newServeMetrics(cfg.Sink.Registry),
		health:  cfg.Health,
		logf:    cfg.Logf,
		started: time.Now(),
	}
	s.nextOrder = 1
	placers := cfg.Placers
	if placers < 1 {
		placers = 1
	}
	factory := func() sched.Scheduler {
		g := sched.NewGsight(pred)
		g.Fallback = sched.NewWorstFit()
		if cfg.TopK > 0 {
			g.Tier0 = pred.Tier0()
			g.TopK = cfg.TopK
		}
		return g
	}
	s.pool = sched.NewPlacerPool(s.state, placers, factory)

	if err := s.restore(); err != nil {
		return nil, err
	}
	go s.committerLoop()
	cfg.Health.SetReady(true, "")
	return s, nil
}

func (s *Server) logPath() string { return filepath.Join(s.cfg.DataDir, "decisions.jsonl") }

// LeasePath returns the lease file shared by active and standby for
// a data dir.
func LeasePath(dir string) string { return filepath.Join(dir, "lease.json") }

// Applied returns the last applied record sequence number (for tests
// and the state endpoint; reads a committer-owned value, so it is
// advisory under load).
func (s *Server) Applied() uint64 { return s.applied }

// Catalog exposes the archetype catalog.
func (s *Server) Catalog() *Catalog { return s.cat }

// restore loads the newest snapshot, replays its WAL generation and
// regenerates the decision log to exactly the acknowledged prefix. A
// directory without a snapshot is a fresh start: bootstrap-train and
// write the genesis generation, so every later incarnation (restart,
// standby takeover) restores the same trained lineage instead of
// re-training divergently.
func (s *Server) restore() error {
	payload, gen, err := persist.LatestSnapshot(s.cfg.DataDir)
	if errors.Is(err, persist.ErrNoSnapshot) {
		return s.bootstrap()
	}
	if err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	s.met.takeovers.Inc()

	var snap snapshotState
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("serve: snapshot payload: %w", err)
	}
	if snap.Version != snapshotStateVersion {
		return fmt.Errorf("serve: unsupported snapshot version %d", snap.Version)
	}
	// Rebuild the running set through Commit (restores Used vectors),
	// then pin the commit clock to the snapshot's.
	for _, d := range snap.Running {
		req, err := s.cat.Request(d.Archetype, d.Name, d.QPSFrac)
		if err != nil {
			return fmt.Errorf("serve: snapshot running set: %w", err)
		}
		in := req.Input
		in.Placement = append([]int(nil), d.Placement...)
		s.state.Commit(in, sched.SLA{MinIPC: d.MinIPC, MaxJCTFactor: d.MaxJCT})
	}
	s.state.Recount()
	s.state.RestoreEpochs(snap.Epochs, snap.SchedSeq)
	if len(snap.Predictor) > 0 {
		if err := s.pred.RestoreCheckpoint(snap.Predictor); err != nil {
			return fmt.Errorf("serve: predictor restore: %w", err)
		}
	}
	s.applied = snap.Applied
	s.snapSeq = snap.Applied
	s.nextOrder = snap.NextOrder
	if s.nextOrder == 0 {
		s.nextOrder = 1
	}
	for _, cr := range snap.Responses {
		s.cacheResponse(cr.Order, cr.Resp)
	}

	// Continue the decision log from the snapshot's recorded offset,
	// re-emitting the replayed records so the bytes line up exactly
	// with an uninterrupted run.
	logF, err := persist.OpenAppendTruncated(s.logPath(), snap.LogBytes)
	if err != nil {
		return fmt.Errorf("serve: decision log: %w", err)
	}
	s.logF = logF
	s.logBytes = snap.LogBytes

	walPath := persist.WALPath(s.cfg.DataDir, gen)
	records, validLen, err := persist.ReplayWAL(walPath)
	if err != nil {
		return fmt.Errorf("serve: wal replay: %w", err)
	}
	for _, raw := range records {
		rec, err := decodeRecord(raw)
		if err != nil {
			return err
		}
		if err := s.applyRecord(rec); err != nil {
			return fmt.Errorf("serve: wal replay seq %d: %w", rec.Seq, err)
		}
		if err := s.emitLog(raw); err != nil {
			return err
		}
		s.met.replayed.Inc()
	}
	w, err := persist.OpenWALAppend(walPath, validLen)
	if err != nil {
		return fmt.Errorf("serve: wal: %w", err)
	}
	s.wal = persist.NewGroupWAL(w, s.cfg.FlushWindow)
	s.gen = gen
	s.logf("restored snapshot gen %d, replayed %d wal records (applied seq %d, next order %d)",
		gen, len(records), s.applied, s.nextOrder)
	// Compact immediately: the takeover (or restart) starts its own
	// generation, so the replayed window is never replayed twice.
	return s.snapshot()
}

// bootstrap initializes a fresh data dir: train, open a fresh decision
// log, write the genesis snapshot and its WAL.
func (s *Server) bootstrap() error {
	t0 := time.Now()
	if err := s.cat.Train(s.pred, s.cfg.Train); err != nil {
		return err
	}
	if s.cfg.Train > 0 {
		s.logf("bootstrap-trained predictor on %d scenarios in %v",
			s.cfg.Train, time.Since(t0).Round(time.Millisecond))
	} else {
		s.logf("predictor untrained (-train 0): placements degrade to the fallback scheduler")
	}
	logF, err := os.Create(s.logPath())
	if err != nil {
		return fmt.Errorf("serve: decision log: %w", err)
	}
	s.logF = logF
	s.logBytes = 0
	return s.snapshot()
}

// emitLog appends one decision line (a WAL payload verbatim).
func (s *Server) emitLog(payload []byte) error {
	if _, err := s.logF.Write(append(payload, '\n')); err != nil {
		return fmt.Errorf("serve: decision log: %w", err)
	}
	s.logBytes += int64(len(payload)) + 1
	return nil
}

// snapshot writes the next generation: decision log fsynced first (so
// LogBytes is durable), then the snapshot envelope, then a fresh WAL;
// old generations are pruned.
func (s *Server) snapshot() error {
	if err := s.logF.Sync(); err != nil {
		return fmt.Errorf("serve: decision log sync: %w", err)
	}
	predState, err := s.pred.CheckpointState()
	if err != nil {
		return fmt.Errorf("serve: predictor checkpoint: %w", err)
	}
	st := s.state.Base()
	snap := snapshotState{
		Version:   snapshotStateVersion,
		Applied:   s.applied,
		NextOrder: s.nextOrder,
		LogBytes:  s.logBytes,
		SchedSeq:  s.state.Seq(),
		Epochs:    s.state.RawEpochs(),
		Predictor: predState,
	}
	for i := range st.Running {
		d := &st.Running[i]
		base, _ := core.BaseName(d.Input.Name)
		snap.Running = append(snap.Running, deployedState{
			Name:      d.Input.Name,
			Archetype: base,
			QPSFrac:   d.Input.QPSFrac,
			Placement: d.Input.Placement,
			MinIPC:    d.SLA.MinIPC,
			MaxJCT:    d.SLA.MaxJCTFactor,
		})
	}
	orders := append([]uint64(nil), s.respRing...)
	sort.Slice(orders, func(i, j int) bool { return orders[i] < orders[j] })
	for _, o := range orders {
		snap.Responses = append(snap.Responses, cachedResponse{Order: o, Resp: s.resp[o]})
	}
	payload, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	newGen := s.gen + 1
	if s.wal != nil {
		if err := s.wal.Close(); err != nil && !errors.Is(err, persist.ErrWALClosed) {
			return fmt.Errorf("serve: wal rotate: %w", err)
		}
	}
	if _, err := persist.WriteSnapshot(s.cfg.DataDir, newGen, payload); err != nil {
		return err
	}
	w, err := persist.CreateWAL(persist.WALPath(s.cfg.DataDir, newGen))
	if err != nil {
		return err
	}
	s.wal = persist.NewGroupWAL(w, s.cfg.FlushWindow)
	s.gen = newGen
	s.snapSeq = s.applied
	s.met.snapshots.Inc()
	if newGen > uint64(s.cfg.Keep) {
		if err := persist.PruneCheckpoints(s.cfg.DataDir, newGen-uint64(s.cfg.Keep)+1); err != nil {
			return err
		}
	}
	return nil
}

// applyRecord folds one replayed WAL record into the daemon state —
// the stored decision, never a re-run of the scheduler. Mismatches
// between the stored effect and the replayed one (an observation that
// applied then but not now, a release of a workload that is not
// running) mean the snapshot and WAL disagree; refusing to serve beats
// silently forking the decision stream.
func (s *Server) applyRecord(rec *walRecord) error {
	switch rec.Kind {
	case kindPlace:
		p := rec.Place
		if p == nil {
			return errors.New("serve: place record without body")
		}
		if placedOutcome(p.Outcome) {
			req, err := s.cat.Request(p.Workload, p.Name, p.QPSFrac)
			if err != nil {
				return err
			}
			in := req.Input
			in.Placement = append([]int(nil), p.Placement...)
			s.state.Commit(in, req.SLA)
		}
	case kindObserve:
		o := rec.Obs
		if o == nil {
			return errors.New("serve: observe record without body")
		}
		applied := s.applyObserve(o.Name, o.QoS, o.Value)
		if applied != o.Applied {
			return fmt.Errorf("serve: observation of %s replayed applied=%v, record says %v",
				o.Name, applied, o.Applied)
		}
	case kindRelease:
		r := rec.Rel
		if r == nil {
			return errors.New("serve: release record without body")
		}
		released := s.state.Release(r.Name)
		if released != r.Released {
			return fmt.Errorf("serve: release of %s replayed released=%v, record says %v",
				r.Name, released, r.Released)
		}
	default:
		return fmt.Errorf("serve: unknown record kind %q", rec.Kind)
	}
	s.applied = rec.Seq
	if rec.Order > 0 {
		if rec.Order >= s.nextOrder {
			s.nextOrder = rec.Order + 1
		}
		if resp, err := responseFor(rec); err == nil {
			s.cacheResponse(rec.Order, resp)
		}
	}
	return nil
}

// applyObserve feeds one QoS measurement to the online learner. The
// observation's colocation context is the target plus every running
// workload sharing at least one of its servers, in running-set order —
// a pure function of the applied record prefix, so replay rebuilds the
// identical learning stream.
func (s *Server) applyObserve(name, qos string, value float64) bool {
	kind, ok := qosKind(qos)
	if !ok {
		return false
	}
	st := s.state.Base()
	idx := -1
	for i := range st.Running {
		if st.Running[i].Input.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	target := &st.Running[idx]
	onTarget := map[int]bool{}
	for _, sv := range target.Input.Placement {
		onTarget[sv] = true
	}
	inputs := []core.WorkloadInput{target.Input}
	for i := range st.Running {
		if i == idx {
			continue
		}
		shares := false
		for _, sv := range st.Running[i].Input.Placement {
			if onTarget[sv] {
				shares = true
				break
			}
		}
		if shares {
			inputs = append(inputs, st.Running[i].Input)
		}
	}
	return s.pred.Observe(kind, 0, inputs, value) == nil
}

// qosKind parses the wire QoS kind names (core.QoSKind.String values).
func qosKind(s string) (core.QoSKind, bool) {
	switch s {
	case "ipc":
		return core.IPCQoS, true
	case "p99":
		return core.TailLatencyQoS, true
	case "jct":
		return core.JCTQoS, true
	}
	return 0, false
}

// cacheResponse retains one ordered answer for duplicate retries.
func (s *Server) cacheResponse(order uint64, resp json.RawMessage) {
	if _, ok := s.resp[order]; !ok {
		s.respRing = append(s.respRing, order)
		if len(s.respRing) > respCacheCap {
			evict := s.respRing[0]
			s.respRing = s.respRing[1:]
			delete(s.resp, evict)
		}
	}
	s.resp[order] = resp
}

// ---------------------------------------------------------------------
// Committer
// ---------------------------------------------------------------------

// committerLoop is the daemon's single mutation thread.
func (s *Server) committerLoop() {
	defer close(s.doneC)
	for {
		batch, stopped := s.nextBatch()
		if len(batch) > 0 {
			if err := s.commitBatch(batch); err != nil {
				s.fence(batch, err)
				return
			}
		}
		if stopped {
			s.failParked("draining")
			if err := s.snapshot(); err != nil {
				s.logf("final snapshot: %v", err)
			}
			if err := s.wal.Close(); err != nil && !errors.Is(err, persist.ErrWALClosed) {
				s.logf("wal close: %v", err)
			}
			s.logF.Sync()
			s.logF.Close()
			return
		}
	}
}

// nextBatch blocks for the first admissible request, then drains the
// intake queue opportunistically up to MaxBatch. stopped reports the
// drain signal; the returned batch is still committed.
func (s *Server) nextBatch() (batch []*pending, stopped bool) {
	for len(batch) == 0 {
		select {
		case p := <-s.intake:
			s.admit(p, &batch)
		case <-s.stopC:
			for {
				select {
				case p := <-s.intake:
					s.admit(p, &batch)
				default:
					return batch, true
				}
			}
		}
	}
	for len(batch) < s.cfg.MaxBatch {
		select {
		case p := <-s.intake:
			s.admit(p, &batch)
		default:
			return batch, false
		}
	}
	return batch, false
}

// admit routes one intake item through the reorder buffer: unordered
// items pass straight through; the expected order admits and unparks
// its successors; duplicates answer from the response cache; future
// orders park (bounded — overflow sheds).
func (s *Server) admit(p *pending, batch *[]*pending) {
	if p.order == 0 || p.kind == ctlSnapshot {
		*batch = append(*batch, p)
		return
	}
	switch {
	case p.order < s.nextOrder:
		s.met.dups.Inc()
		if cached, ok := s.resp[p.order]; ok {
			p.reply <- pendingResp{payload: cached}
		} else {
			p.reply <- pendingResp{status: 410,
				err: fmt.Errorf("serve: order %d acknowledged long ago; response evicted", p.order)}
		}
	case p.order == s.nextOrder:
		*batch = append(*batch, p)
		s.nextOrder++
		for {
			q, ok := s.parked[s.nextOrder]
			if !ok {
				break
			}
			delete(s.parked, s.nextOrder)
			*batch = append(*batch, q)
			s.nextOrder++
		}
	default: // future order: park
		if old, ok := s.parked[p.order]; ok {
			old.reply <- pendingResp{status: 409,
				err: fmt.Errorf("serve: order %d superseded by a retry", p.order)}
		} else if len(s.parked) >= s.cfg.QueueCap {
			s.met.shed.Inc()
			p.reply <- pendingResp{status: 429,
				err: fmt.Errorf("serve: reorder buffer full (%d parked)", len(s.parked))}
			return
		}
		s.parked[p.order] = p
	}
}

// failParked answers every parked request with a retryable error.
func (s *Server) failParked(reason string) {
	for order, p := range s.parked {
		p.reply <- pendingResp{status: 503, err: fmt.Errorf("serve: %s", reason)}
		delete(s.parked, order)
	}
}

// fence stops acknowledging after an unrecoverable commit error: the
// batch's waiters get the error, health goes down, and the committer
// exits — a standby's takeover is the recovery path.
func (s *Server) fence(batch []*pending, err error) {
	s.logf("FENCED: %v", err)
	s.health.Down(fmt.Sprintf("fenced: %v", err))
	for _, p := range batch {
		p.reply <- pendingResp{status: 503, err: err}
	}
	s.failParked("fenced")
}

// commitBatch processes one admitted batch: decide everything, append
// every record to the WAL under ONE group fsync, emit the decision
// lines, then acknowledge. Contiguous placements decide through the
// placer pool (concurrent propose, serial commit); observations and
// releases apply serially at their positions. Snapshot controls split
// the batch: records before the control are durable before the
// snapshot covers them.
func (s *Server) commitBatch(batch []*pending) error {
	s.met.batchSize.Observe(float64(len(batch)))
	var (
		records  []*walRecord
		waiters  []*pending
		placeRun []*pending
	)
	nextSeq := s.applied
	flushPlaces := func() error {
		if len(placeRun) == 0 {
			return nil
		}
		reqs := make([]*sched.Request, len(placeRun))
		details := make([]sched.PlacementDetail, len(placeRun))
		for i, p := range placeRun {
			name := fmt.Sprintf("%s#%d", p.arch, nextSeq+uint64(i)+1)
			if p.order > 0 {
				name = fmt.Sprintf("%s#o%d", p.arch, p.order)
			}
			req, err := s.cat.Request(p.arch, name, p.qps)
			if err != nil {
				return err // handler validates archetypes; this is a bug
			}
			req.Detail = &details[i]
			reqs[i] = req
		}
		results := s.pool.PlaceAll(reqs)
		for i, p := range placeRun {
			nextSeq++
			res := &results[i]
			s.met.conflicts.Add(uint64(res.Retries))
			pr := &placeRecord{
				Workload: p.arch,
				QPSFrac:  reqs[i].Input.QPSFrac,
				Name:     reqs[i].Input.Name,
				Outcome:  res.Outcome,
				Reason:   details[i].Reason,
			}
			if res.Err != nil {
				if pr.Outcome == "" {
					pr.Outcome = "error"
				}
				if pr.Reason == "" {
					pr.Reason = res.Err.Error()
				}
			} else {
				pr.Placement = res.Placement
				pr.PredIPC = details[i].PredIPC
				pr.PredJCTS = details[i].PredJCTS
			}
			records = append(records, &walRecord{Seq: nextSeq, Kind: kindPlace, Order: p.order, Place: pr})
			waiters = append(waiters, p)
		}
		placeRun = placeRun[:0]
		return nil
	}
	ack := func() error {
		if len(records) == 0 {
			return nil
		}
		payloads := make([][]byte, len(records))
		for i, rec := range records {
			b, err := encodeRecord(rec)
			if err != nil {
				return err
			}
			payloads[i] = b
		}
		if err := s.wal.AppendBatch(payloads); err != nil {
			return fmt.Errorf("serve: wal append: %w", err)
		}
		for _, b := range payloads {
			if err := s.emitLog(b); err != nil {
				return err
			}
		}
		s.met.walRecords.Add(uint64(len(records)))
		for i, rec := range records {
			s.applied = rec.Seq
			resp, err := responseFor(rec)
			if err != nil {
				return err
			}
			if rec.Order > 0 {
				s.cacheResponse(rec.Order, resp)
			}
			waiters[i].reply <- pendingResp{payload: resp}
		}
		records = records[:0]
		waiters = waiters[:0]
		return nil
	}

	for _, p := range batch {
		switch p.kind {
		case kindPlace:
			placeRun = append(placeRun, p)
		case kindObserve:
			if err := flushPlaces(); err != nil {
				return err
			}
			nextSeq++
			applied := s.applyObserve(p.name, p.qos, p.value)
			records = append(records, &walRecord{Seq: nextSeq, Kind: kindObserve, Order: p.order,
				Obs: &observeRecord{Name: p.name, QoS: p.qos, Value: p.value, Applied: applied}})
			waiters = append(waiters, p)
		case kindRelease:
			if err := flushPlaces(); err != nil {
				return err
			}
			nextSeq++
			released := s.state.Release(p.name)
			records = append(records, &walRecord{Seq: nextSeq, Kind: kindRelease, Order: p.order,
				Rel: &releaseRecord{Name: p.name, Released: released}})
			waiters = append(waiters, p)
		case ctlSnapshot:
			if err := flushPlaces(); err != nil {
				return err
			}
			if err := ack(); err != nil {
				return err
			}
			if err := s.snapshot(); err != nil {
				p.reply <- pendingResp{status: 500, err: err}
				return err
			}
			p.reply <- pendingResp{payload: json.RawMessage(
				fmt.Sprintf(`{"snapshot":%d,"applied":%d}`, s.gen, s.applied))}
		default:
			p.reply <- pendingResp{status: 400, err: fmt.Errorf("serve: unknown request kind %q", p.kind)}
		}
	}
	if err := flushPlaces(); err != nil {
		return err
	}
	if err := ack(); err != nil {
		return err
	}
	s.countKinds(batch)
	if s.applied-s.snapSeq >= uint64(s.cfg.SnapshotEvery) {
		return s.snapshot()
	}
	return nil
}

func (s *Server) countKinds(batch []*pending) {
	for _, p := range batch {
		switch p.kind {
		case kindPlace:
			s.met.place.Inc()
		case kindObserve:
			s.met.observe.Inc()
		case kindRelease:
			s.met.release.Inc()
		}
	}
}

// responseFor builds the canonical API response for a committed
// record — also used to rebuild the duplicate-answer cache on replay,
// so a retried order receives the exact bytes the original did.
func responseFor(rec *walRecord) (json.RawMessage, error) {
	switch rec.Kind {
	case kindPlace:
		return json.Marshal(placeResponse{
			Seq: rec.Seq, Order: rec.Order,
			Name: rec.Place.Name, Outcome: rec.Place.Outcome,
			Placement: rec.Place.Placement, Reason: rec.Place.Reason,
			PredIPC: rec.Place.PredIPC, PredJCTS: rec.Place.PredJCTS,
		})
	case kindObserve:
		return json.Marshal(observeResponse{Seq: rec.Seq, Order: rec.Order, Applied: rec.Obs.Applied})
	case kindRelease:
		return json.Marshal(releaseResponse{Seq: rec.Seq, Order: rec.Order, Released: rec.Rel.Released})
	}
	return nil, fmt.Errorf("serve: no response for record kind %q", rec.Kind)
}

// enqueue hands a request to the committer, shedding with 429 when
// the admission queue is full.
func (s *Server) enqueue(ctx context.Context, p *pending) pendingResp {
	select {
	case <-s.stopC:
		return pendingResp{status: 503, err: errors.New("serve: draining")}
	default:
	}
	select {
	case s.intake <- p:
	default:
		s.met.shed.Inc()
		return pendingResp{status: 429, err: errors.New("serve: admission queue full")}
	}
	select {
	case r := <-p.reply:
		return r
	case <-ctx.Done():
		s.met.timeouts.Inc()
		return pendingResp{status: 503, err: fmt.Errorf("serve: %w", ctx.Err())}
	}
}

// Stop drains the daemon: readiness flips false, the committer
// finishes the queued work, writes a final snapshot and closes the
// WAL and decision log. ctx bounds the wait.
func (s *Server) Stop(ctx context.Context) error {
	if s.stopped {
		<-s.doneC
		return nil
	}
	s.stopped = true
	s.health.SetReady(false, "draining")
	close(s.stopC)
	select {
	case <-s.doneC:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}
