package isolation

import (
	"testing"

	"gsight/internal/perfmodel"
	"gsight/internal/resources"
	"gsight/internal/workload"
)

func newModel() *perfmodel.Model {
	return perfmodel.New(resources.DefaultTestbed())
}

// colocated builds the canonical victim/aggressor pair: the social
// network's most sensitive function beside matmul on one socket.
func colocated(m *perfmodel.Model, protect bool) *perfmodel.Scenario {
	sn := perfmodel.SpreadDeployment(workload.SocialNetwork(), m.Testbed)
	sn.QPS = workload.SocialNetwork().MaxQPS / 2
	sn.Protected = protect
	mm := perfmodel.NewDeployment(workload.MatMul())
	mm.Placement[0] = sn.Placement[8]
	mm.Socket[0] = sn.Socket[8]
	return &perfmodel.Scenario{Deployments: []*perfmodel.Deployment{sn, mm}}
}

func TestPartitionShieldsProtectedClass(t *testing.T) {
	shared := newModel()
	baseRes, err := shared.Evaluate(colocated(shared, true), nil)
	if err != nil {
		t.Fatal(err)
	}

	part := newModel()
	if err := StaticPartition(part, 0.7); err != nil {
		t.Fatal(err)
	}
	partRes, err := part.Evaluate(colocated(part, true), nil)
	if err != nil {
		t.Fatal(err)
	}

	// The protected LS workload improves under partitioning...
	if partRes.Deployments[0].E2EP99Ms >= baseRes.Deployments[0].E2EP99Ms {
		t.Fatalf("partitioning did not shield the LS workload: %v -> %v",
			baseRes.Deployments[0].E2EP99Ms, partRes.Deployments[0].E2EP99Ms)
	}
	// ...at the best-effort corunner's expense (it now squeezes into
	// the 30% remainder).
	if partRes.Deployments[1].JCTS <= baseRes.Deployments[1].JCTS {
		t.Fatalf("best-effort job should pay for the partition: %v -> %v",
			baseRes.Deployments[1].JCTS, partRes.Deployments[1].JCTS)
	}
}

func TestPartitionSoloUnaffected(t *testing.T) {
	// A partition with only one class present must not slow that class
	// beyond its reserved share's pressure — and a solo protected
	// workload inside a generous partition behaves near-solo.
	m := newModel()
	sn := perfmodel.SpreadDeployment(workload.SocialNetwork(), m.Testbed)
	sn.QPS = 200
	sn.Protected = true
	base, err := m.Evaluate(&perfmodel.Scenario{Deployments: []*perfmodel.Deployment{sn}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := StaticPartition(m, 0.9); err != nil {
		t.Fatal(err)
	}
	sn2 := perfmodel.SpreadDeployment(workload.SocialNetwork(), m.Testbed)
	sn2.QPS = 200
	sn2.Protected = true
	part, err := m.Evaluate(&perfmodel.Scenario{Deployments: []*perfmodel.Deployment{sn2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := part.Deployments[0].E2EP99Ms / base.Deployments[0].E2EP99Ms
	if ratio > 1.1 {
		t.Fatalf("solo protected workload slowed %vx by its own partition", ratio)
	}
}

func TestStaticPartitionValidation(t *testing.T) {
	m := newModel()
	if err := StaticPartition(m, 0); err == nil {
		t.Fatal("frac 0 must error")
	}
	if err := StaticPartition(m, 1); err == nil {
		t.Fatal("frac 1 must error")
	}
	if err := StaticPartition(m, 0.5); err != nil {
		t.Fatal(err)
	}
	if len(m.Partitions) != 8 {
		t.Fatalf("partitions on %d servers, want 8", len(m.Partitions))
	}
	Clear(m)
	if len(m.Partitions) != 0 {
		t.Fatal("Clear left partitions behind")
	}
}

func TestControllerGrowsOnViolation(t *testing.T) {
	m := newModel()
	c := NewController(m)
	obs := []Observation{{Servers: []int{0, 1}, P99Ms: 400, SLAMs: 267}}
	if changes := c.Decide(obs); changes != 2 {
		t.Fatalf("changes = %d, want 2", changes)
	}
	f0 := c.Fraction(0)
	if f0 <= 0 {
		t.Fatal("no partition installed on violation")
	}
	// Repeated violations keep growing toward Max.
	for i := 0; i < 10; i++ {
		c.Decide(obs)
	}
	if got := c.Fraction(0); got != c.Max {
		t.Fatalf("fraction = %v, want capped at %v", got, c.Max)
	}
}

func TestControllerRelaxesOnSlack(t *testing.T) {
	m := newModel()
	c := NewController(m)
	violating := []Observation{{Servers: []int{3}, P99Ms: 400, SLAMs: 267}}
	c.Decide(violating)
	c.Decide(violating)
	before := c.Fraction(3)
	if before == 0 {
		t.Fatal("setup failed")
	}
	comfortable := []Observation{{Servers: []int{3}, P99Ms: 100, SLAMs: 267}}
	c.Decide(comfortable)
	after := c.Fraction(3)
	if after >= before {
		t.Fatalf("controller did not relax: %v -> %v", before, after)
	}
	// Relaxing far enough tears the partition down entirely.
	for i := 0; i < 10; i++ {
		c.Decide(comfortable)
	}
	if c.Fraction(3) != 0 {
		t.Fatalf("partition should be torn down, still %v", c.Fraction(3))
	}
}

func TestControllerIdleInBand(t *testing.T) {
	m := newModel()
	c := NewController(m)
	inBand := []Observation{{Servers: []int{2}, P99Ms: 230, SLAMs: 267}}
	if changes := c.Decide(inBand); changes != 0 {
		t.Fatalf("in-band observation caused %d changes", changes)
	}
	noSLA := []Observation{{Servers: []int{2}, P99Ms: 9999, SLAMs: 0}}
	if changes := c.Decide(noSLA); changes != 0 {
		t.Fatal("SLA-less workloads must not drive partitioning")
	}
}

func TestViolationDominatesSlackPerServer(t *testing.T) {
	m := newModel()
	c := NewController(m)
	// One tenant violating, another comfortable, sharing server 5:
	// grow must win.
	obs := []Observation{
		{Servers: []int{5}, P99Ms: 400, SLAMs: 267},
		{Servers: []int{5}, P99Ms: 50, SLAMs: 267},
	}
	c.Decide(obs)
	if c.Fraction(5) == 0 {
		t.Fatal("violation should dominate slack on a shared server")
	}
}
