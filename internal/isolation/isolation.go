// Package isolation implements the resource-partitioning control the
// paper's Gsight agents actuate (§5.1: "allocating resources (e.g.,
// CPU cores, LLC, memory bandwidth)" via cpusets and Intel RDT's
// CAT/MBA) and the reactive tail-latency controller the paper declares
// orthogonal to Gsight (§6.3: "Gsight is orthogonal to the buffer-based
// or reactive-control tail latency optimization approaches, which
// suggests that a stronger SLA guarantee can be achieved when
// integrating them together" — the PARTIES/Heracles/PerfIso line of
// work). The ext-isolation experiment quantifies exactly that
// integration claim.
package isolation

import (
	"fmt"

	"gsight/internal/perfmodel"
)

// Controller is a PARTIES-style reactive partitioner: it watches each
// protected (LS) workload's tail latency against its SLA and grows the
// protected partition of the servers hosting it when the SLA is
// violated, or returns resources to the best-effort class when there
// is comfortable slack.
type Controller struct {
	Model *perfmodel.Model
	// Step is the partition adjustment per decision (fraction of the
	// resource); <=0 means 0.10.
	Step float64
	// Min and Max bound the protected fraction; defaults 0.3 / 0.9.
	Min, Max float64
	// SlackRatio: below SLA*SlackRatio the controller gives resources
	// back; <=0 means 0.7.
	SlackRatio float64
	fractions  map[int]float64
}

// NewController returns a reactive partitioner over the model.
func NewController(m *perfmodel.Model) *Controller {
	return &Controller{
		Model:      m,
		Step:       0.10,
		Min:        0.3,
		Max:        0.9,
		SlackRatio: 0.7,
		fractions:  make(map[int]float64),
	}
}

// Fraction returns server s's current protected fraction (0 = no
// partition installed).
func (c *Controller) Fraction(s int) float64 { return c.fractions[s] }

// apply installs the fraction on the model as a symmetric CPU/LLC/MemBW
// partition.
func (c *Controller) apply(s int, frac float64) {
	if frac < c.Min {
		frac = 0 // below the floor: tear the partition down
	}
	if frac > c.Max {
		frac = c.Max
	}
	if frac == 0 {
		delete(c.fractions, s)
		c.Model.SetPartition(s, perfmodel.Partition{})
		return
	}
	c.fractions[s] = frac
	c.Model.SetPartition(s, perfmodel.Partition{CPUFrac: frac, LLCFrac: frac, MemBWFrac: frac})
}

// Observation is one protected workload's health signal.
type Observation struct {
	// Servers hosting the workload's functions.
	Servers []int
	// P99Ms is the measured end-to-end tail latency.
	P99Ms float64
	// SLAMs is the latency target.
	SLAMs float64
}

// Decide runs one control round over the protected workloads'
// observations and adjusts the partitions of the servers they occupy.
// It returns the number of partition changes actuated.
func (c *Controller) Decide(obs []Observation) int {
	if c.Step <= 0 {
		c.Step = 0.10
	}
	// Per server, find the strongest need among tenants: violation
	// dominates slack.
	type need int
	const (
		idle need = iota
		relax
		grow
	)
	wants := map[int]need{}
	for _, o := range obs {
		if o.SLAMs <= 0 {
			continue
		}
		var n need
		switch {
		case o.P99Ms > o.SLAMs:
			n = grow
		case o.P99Ms < o.SLAMs*c.SlackRatio:
			n = relax
		default:
			n = idle
		}
		for _, s := range o.Servers {
			if n > wants[s] {
				wants[s] = n
			}
		}
	}
	changes := 0
	for s, n := range wants {
		cur := c.fractions[s]
		switch n {
		case grow:
			next := cur + c.Step
			if cur == 0 {
				next = c.Min + c.Step
			}
			if next > c.Max {
				next = c.Max
			}
			if next != cur {
				c.apply(s, next)
				changes++
			}
		case relax:
			if cur > 0 {
				c.apply(s, cur-c.Step)
				changes++
			}
		}
	}
	return changes
}

// StaticPartition installs the same protected fraction on every server
// — the non-reactive baseline.
func StaticPartition(m *perfmodel.Model, frac float64) error {
	if frac <= 0 || frac >= 1 {
		return fmt.Errorf("isolation: static fraction %v out of (0,1)", frac)
	}
	for s := 0; s < m.Testbed.NumServers(); s++ {
		m.SetPartition(s, perfmodel.Partition{CPUFrac: frac, LLCFrac: frac, MemBWFrac: frac})
	}
	return nil
}

// Clear removes every partition.
func Clear(m *perfmodel.Model) {
	for s := 0; s < m.Testbed.NumServers(); s++ {
		m.SetPartition(s, perfmodel.Partition{})
	}
}
