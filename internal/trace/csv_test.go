package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gsight/internal/rng"
)

func TestArrivalsCSVRoundTrip(t *testing.T) {
	r := rng.New(1)
	arr := Arrivals(DefaultPattern(3), 0, 3600, r)
	var buf bytes.Buffer
	if err := WriteArrivalsCSV(&buf, arr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArrivalsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(arr) {
		t.Fatalf("round trip lost arrivals: %d vs %d", len(got), len(arr))
	}
	for i := range arr {
		if math.Abs(got[i]-arr[i]) > 1e-9 {
			t.Fatalf("arrival %d changed: %v vs %v", i, got[i], arr[i])
		}
	}
}

func TestReadArrivalsCSVValidation(t *testing.T) {
	if _, err := ReadArrivalsCSV(strings.NewReader("t_seconds\n1.5\n-2\n")); err == nil {
		t.Fatal("negative timestamp must error")
	}
	if _, err := ReadArrivalsCSV(strings.NewReader("t_seconds\n1.5\nzzz\n")); err == nil {
		t.Fatal("non-numeric body row must error")
	}
	got, err := ReadArrivalsCSV(strings.NewReader("3\n1\n2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("headerless read sorted wrong: %v", got)
	}
}

func TestEmpiricalPatternReplaysRates(t *testing.T) {
	// Arrivals concentrated in the second hour.
	var arr []float64
	for i := 0; i < 100; i++ {
		arr = append(arr, 3600+float64(i)*36)
	}
	p, err := NewEmpiricalPattern(arr, 7200, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.RateAt(1800); got != 0 {
		t.Fatalf("first-hour rate = %v, want 0", got)
	}
	want := 100.0 / 3600
	if got := p.RateAt(5400); math.Abs(got-want) > 1e-9 {
		t.Fatalf("second-hour rate = %v, want %v", got, want)
	}
	// Wrap-around replay.
	if got := p.RateAt(5400 + 7200 + 3600); math.Abs(got-p.RateAt(5400+3600)) > 1e-9 {
		t.Fatal("replay does not wrap consistently")
	}
	if p.MeanRate() <= 0 {
		t.Fatal("mean rate must be positive")
	}
}

func TestEmpiricalPatternValidation(t *testing.T) {
	if _, err := NewEmpiricalPattern(nil, 100, 10); err == nil {
		t.Fatal("empty series must error")
	}
	if _, err := NewEmpiricalPattern([]float64{1}, 0, 10); err == nil {
		t.Fatal("zero horizon must error")
	}
}

func FuzzReadArrivalsCSV(f *testing.F) {
	f.Add("t_seconds\n1\n2\n3\n")
	f.Add("")
	f.Add("1.5,")
	f.Add("a\nb\nc")
	f.Fuzz(func(t *testing.T, s string) {
		// Must never panic; errors are fine.
		arr, err := ReadArrivalsCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		for i := 1; i < len(arr); i++ {
			if arr[i] < arr[i-1] {
				t.Fatal("successful read must be sorted")
			}
		}
	})
}
