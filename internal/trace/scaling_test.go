package trace

import (
	"math"
	"testing"

	"gsight/internal/rng"
)

// TestTimeScaleCompressesClock pins the TimeScale contract: at factor
// k, the rate at simulated time t equals the unscaled rate at trace
// time k*t — one simulated day replays k days of diurnal structure.
func TestTimeScaleCompressesClock(t *testing.T) {
	base := DefaultPattern(100)
	base.PhaseShift = 3600
	for _, k := range []float64{2, 4, 24} {
		scaled := base
		scaled.TimeScale = k
		for _, tt := range []float64{0, 1800, 7 * 3600, 86400, 5 * 86400} {
			got := scaled.RateAt(tt)
			want := base.RateAt(k * tt)
			if got != want {
				t.Fatalf("TimeScale %v at t=%v: rate %v, want unscaled rate at %v = %v", k, tt, got, k*tt, want)
			}
		}
	}
}

// TestTimeScaleZeroAndOneAreRealTime pins bit-identity for unscaled
// patterns: the zero value and an explicit 1 must evaluate the exact
// float expression the field's introduction did not change.
func TestTimeScaleZeroAndOneAreRealTime(t *testing.T) {
	base := DefaultPattern(100)
	one := base
	one.TimeScale = 1
	for h := 0.0; h < 24*8; h += 0.25 {
		tt := h * 3600
		if base.RateAt(tt) != one.RateAt(tt) {
			t.Fatalf("TimeScale 1 diverges from zero value at t=%v", tt)
		}
	}
}

// TestScalingApply pins the knob semantics: rate factor multiplies
// BaseQPS, time factor composes into TimeScale, non-positive factors
// mean unscaled, and Apply is composable.
func TestScalingApply(t *testing.T) {
	p := DefaultPattern(50)
	s := Scaling{RateFactor: 3, TimeFactor: 4}
	q := s.Apply(p)
	if q.BaseQPS != 150 {
		t.Fatalf("BaseQPS = %v, want 150", q.BaseQPS)
	}
	if q.TimeScale != 4 {
		t.Fatalf("TimeScale = %v, want 4", q.TimeScale)
	}
	if q.PhaseShift != p.PhaseShift || q.DiurnalAmp != p.DiurnalAmp {
		t.Fatal("Apply must not touch shape fields")
	}
	// Composition: applying again multiplies both axes.
	q2 := s.Apply(q)
	if q2.BaseQPS != 450 || q2.TimeScale != 16 {
		t.Fatalf("composed = (%v qps, x%v), want (450, x16)", q2.BaseQPS, q2.TimeScale)
	}
	// Zero value and non-positive factors are no-ops.
	if !(Scaling{}).IsZero() || !(Scaling{RateFactor: -2, TimeFactor: 0}).IsZero() {
		t.Fatal("zero/non-positive scaling must be IsZero")
	}
	if (Scaling{RateFactor: 1, TimeFactor: 2}).IsZero() {
		t.Fatal("time-only scaling is not IsZero")
	}
	r := Scaling{}.Apply(p)
	if r.BaseQPS != p.BaseQPS || r.TimeScale != 1 {
		t.Fatalf("zero scaling changed the pattern: %+v", r)
	}
}

// TestEmpiricalPatternWrapsAtHorizon pins long-horizon replay: past
// HorizonS the trace repeats exactly, arbitrarily far out.
func TestEmpiricalPatternWrapsAtHorizon(t *testing.T) {
	arrivals := []float64{0.5, 1.5, 1.7, 2.5, 3.9}
	p, err := NewEmpiricalPattern(arrivals, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h := p.HorizonS(); h != 4 {
		t.Fatalf("HorizonS = %v, want 4", h)
	}
	for _, tt := range []float64{0, 0.25, 1.9, 3.999} {
		base := p.RateAt(tt)
		for _, laps := range []float64{1, 2, 250000} { // ~11 simulated days at horizon 4
			if got := p.RateAt(tt + laps*p.HorizonS()); got != base {
				t.Fatalf("RateAt(%v + %v laps) = %v, want %v", tt, laps, got, base)
			}
		}
	}
	if p.RateAt(-5) != p.RateAt(0) {
		t.Fatal("negative times must clamp to the first bin")
	}
}

// TestEmpiricalPatternScaled pins the derived-pattern semantics: rates
// multiply by the rate factor, the horizon shrinks by the time factor,
// and the receiver is untouched.
func TestEmpiricalPatternScaled(t *testing.T) {
	p, err := NewEmpiricalPattern([]float64{0.5, 1.5, 1.7, 2.5}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	origMean := p.MeanRate()
	s := p.Scaled(Scaling{RateFactor: 10, TimeFactor: 3})
	if h := s.HorizonS(); math.Abs(h-1) > 1e-12 {
		t.Fatalf("scaled horizon = %v, want 1 (3/3)", h)
	}
	if got, want := s.MeanRate(), 10*origMean; math.Abs(got-want) > 1e-9 {
		t.Fatalf("scaled mean rate = %v, want %v", got, want)
	}
	// Bin b of the scaled trace replays bin b of the original, 10x up.
	for b := 0; b < 3; b++ {
		orig := p.RateAt(float64(b) + 0.5)
		if got := s.RateAt((float64(b) + 0.5) / 3); got != 10*orig {
			t.Fatalf("bin %d: scaled rate %v, want %v", b, got, 10*orig)
		}
	}
	if p.MeanRate() != origMean || p.HorizonS() != 3 {
		t.Fatal("Scaled mutated its receiver")
	}
}

// TestScaledDeterminism pins same-seed reproducibility at scaled
// rates: two generations from equal seeds produce identical arrival
// sequences and identical noisy samples, scaled or not.
func TestScaledDeterminism(t *testing.T) {
	p := Scaling{RateFactor: 2, TimeFactor: 8}.Apply(DefaultPattern(40))
	a := Arrivals(p, 0, 600, rng.New(7))
	b := Arrivals(p, 0, 600, rng.New(7))
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	if len(a) != len(b) {
		t.Fatalf("same-seed runs generated %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	r1, r2 := rng.New(11), rng.New(11)
	for i := 0; i < 100; i++ {
		tt := float64(i) * 30
		if p.Sample(tt, r1) != p.Sample(tt, r2) {
			t.Fatalf("same-seed Sample diverges at t=%v", tt)
		}
	}
}
