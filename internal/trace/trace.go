// Package trace synthesizes production-like invocation traces in the
// image of the Azure Functions characterization (Shahrad et al., ATC'20)
// that the paper drives its evaluation with (§6.1): invocation rates
// with diurnal and weekly patterns, execution durations where 50% of
// invocations run under 1 s and 96% of functions average under 60 s,
// and memory allocations where 90% of functions stay at or below
// 400 MB.
package trace

import (
	"math"

	"gsight/internal/rng"
)

// Pattern modulates a base request rate over time.
type Pattern struct {
	// BaseQPS is the mean request rate.
	BaseQPS float64
	// DiurnalAmp in [0,1) scales the day/night swing.
	DiurnalAmp float64
	// WeeklyAmp in [0,1) damps weekends.
	WeeklyAmp float64
	// PeakHour is the local hour of the diurnal maximum.
	PeakHour float64
	// NoiseRel adds lognormal rate noise per query.
	NoiseRel float64
	// PhaseShift offsets the pattern (seconds), decorrelating
	// workloads.
	PhaseShift float64
	// TimeScale compresses the diurnal/weekly clock: at TimeScale k,
	// one simulated second advances k seconds of trace time, so a
	// whole day of rate structure replays in 86400/k simulated
	// seconds. Zero (the zero value) and 1 mean real time.
	TimeScale float64
}

// DefaultPattern returns a diurnal+weekly pattern around baseQPS,
// shaped like the Azure invocations-per-hour series.
func DefaultPattern(baseQPS float64) Pattern {
	return Pattern{
		BaseQPS:    baseQPS,
		DiurnalAmp: 0.55,
		WeeklyAmp:  0.25,
		PeakHour:   14,
		NoiseRel:   0.05,
	}
}

const (
	daySeconds  = 86400.0
	weekSeconds = 7 * daySeconds
)

// RateAt returns the expected request rate at time t (seconds since the
// trace epoch, a Monday midnight). It is deterministic; use Sample for
// the noisy instantaneous rate.
func (p Pattern) RateAt(t float64) float64 {
	// Guarded so unscaled patterns evaluate the exact expression they
	// always did (no spurious *1 in the float chain).
	if p.TimeScale != 0 && p.TimeScale != 1 {
		t *= p.TimeScale
	}
	t += p.PhaseShift
	hour := math.Mod(t, daySeconds) / 3600
	diurnal := 1 + p.DiurnalAmp*math.Cos((hour-p.PeakHour)/24*2*math.Pi)
	dow := int(math.Mod(t, weekSeconds) / daySeconds)
	weekly := 1.0
	if dow >= 5 { // weekend
		weekly = 1 - p.WeeklyAmp
	}
	r := p.BaseQPS * diurnal * weekly
	if r < 0 {
		return 0
	}
	return r
}

// Sample returns the instantaneous rate with multiplicative noise.
func (p Pattern) Sample(t float64, rnd *rng.Rand) float64 {
	r := p.RateAt(t)
	if rnd != nil && p.NoiseRel > 0 {
		r = rnd.Jitter(r, p.NoiseRel)
	}
	return r
}

// DurationSampler draws function execution durations matching the Azure
// distribution shape: lognormal with a median near 0.6 s, yielding
// roughly half of invocations under 1 s and ~96% under 60 s.
type DurationSampler struct {
	Mu    float64 // log-mean
	Sigma float64 // log-std
	MaxS  float64 // provider cap (AWS Lambda: 900 s)
}

// DefaultDurations returns the Azure-calibrated sampler.
func DefaultDurations() DurationSampler {
	return DurationSampler{Mu: math.Log(0.6), Sigma: 1.9, MaxS: 900}
}

// Sample draws one duration in seconds.
func (d DurationSampler) Sample(rnd *rng.Rand) float64 {
	v := rnd.LogNormal(d.Mu, d.Sigma)
	if d.MaxS > 0 && v > d.MaxS {
		v = d.MaxS
	}
	return v
}

// MemorySampler draws per-function memory allocations matching the
// Azure shape: 50% of runtimes at or below ~170 MB and 90% never above
// 400 MB, with a tail to the provider cap.
type MemorySampler struct {
	MedianMB float64
	Sigma    float64
	CapMB    float64
}

// DefaultMemory returns the Azure-calibrated sampler.
func DefaultMemory() MemorySampler {
	// lognormal: median 170 MB, sigma chosen so P90 ~= 400 MB
	// (400/170 = e^{1.2816*sigma} -> sigma ~= 0.667)
	return MemorySampler{MedianMB: 170, Sigma: 0.667, CapMB: 3072}
}

// Sample draws one allocation in MB.
func (m MemorySampler) Sample(rnd *rng.Rand) float64 {
	v := m.MedianMB * rnd.LogNormal(0, m.Sigma)
	if m.CapMB > 0 && v > m.CapMB {
		v = m.CapMB
	}
	return v
}

// Scaling stretches an invocation pattern along both axes: RateFactor
// multiplies every instantaneous rate (more invocations per simulated
// second), TimeFactor compresses the trace clock (more trace horizon
// per simulated second). Together they drive long-horizon soak runs —
// e.g. RateFactor 20 on a 50 QPS base replays ~86M invocations per
// simulated day. The zero value (and any factor <= 0) means unscaled.
type Scaling struct {
	RateFactor float64
	TimeFactor float64
}

// Rate returns the effective rate factor (1 when unset).
func (s Scaling) Rate() float64 {
	if s.RateFactor <= 0 {
		return 1
	}
	return s.RateFactor
}

// Time returns the effective time-compression factor (1 when unset).
func (s Scaling) Time() float64 {
	if s.TimeFactor <= 0 {
		return 1
	}
	return s.TimeFactor
}

// IsZero reports whether the scaling is a no-op.
func (s Scaling) IsZero() bool { return s.Rate() == 1 && s.Time() == 1 }

// Apply derives the scaled pattern: the base rate is multiplied by the
// rate factor and the diurnal/weekly clock compressed by the time
// factor. PhaseShift stays in trace time, so decorrelated services
// remain decorrelated under scaling.
func (s Scaling) Apply(p Pattern) Pattern {
	p.BaseQPS *= s.Rate()
	ts := p.TimeScale
	if ts == 0 {
		ts = 1
	}
	p.TimeScale = ts * s.Time()
	return p
}

// Arrivals generates Poisson arrival times over [start, end) for a
// time-varying rate by thinning against the pattern's maximum rate.
func Arrivals(p Pattern, start, end float64, rnd *rng.Rand) []float64 {
	maxRate := p.BaseQPS * (1 + p.DiurnalAmp) * 1.2
	if maxRate <= 0 {
		return nil
	}
	var out []float64
	t := start
	for {
		t += rnd.Exp(maxRate)
		if t >= end {
			return out
		}
		if rnd.Float64() < p.RateAt(t)/maxRate {
			out = append(out, t)
		}
	}
}

// JobArrivals generates Poisson arrival times of batch (SC/BG) job
// submissions at a constant mean interval.
func JobArrivals(meanIntervalS, start, end float64, rnd *rng.Rand) []float64 {
	if meanIntervalS <= 0 {
		return nil
	}
	var out []float64
	t := start
	for {
		t += rnd.Exp(1 / meanIntervalS)
		if t >= end {
			return out
		}
		out = append(out, t)
	}
}
