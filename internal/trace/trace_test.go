package trace

import (
	"math"
	"testing"

	"gsight/internal/rng"
)

func TestPatternDiurnalShape(t *testing.T) {
	p := DefaultPattern(100)
	peak := p.RateAt(14 * 3600)  // Monday 14:00
	trough := p.RateAt(2 * 3600) // Monday 02:00
	if peak <= trough {
		t.Fatalf("peak %v <= trough %v", peak, trough)
	}
	if peak < 100 || trough > 100 {
		t.Fatalf("base rate not between trough %v and peak %v", trough, peak)
	}
}

func TestPatternWeeklyDamping(t *testing.T) {
	p := DefaultPattern(100)
	monday := p.RateAt(14 * 3600)
	saturday := p.RateAt(5*86400 + 14*3600)
	if saturday >= monday {
		t.Fatalf("weekend rate %v >= weekday %v", saturday, monday)
	}
	ratio := saturday / monday
	if math.Abs(ratio-(1-p.WeeklyAmp)) > 1e-9 {
		t.Fatalf("weekend damping = %v, want %v", ratio, 1-p.WeeklyAmp)
	}
}

func TestPatternNonNegative(t *testing.T) {
	p := Pattern{BaseQPS: 1, DiurnalAmp: 0.99, WeeklyAmp: 0.99}
	for h := 0.0; h < 24*8; h++ {
		if r := p.RateAt(h * 3600); r < 0 {
			t.Fatalf("negative rate at hour %v", h)
		}
	}
}

func TestDurationDistributionMatchesAzure(t *testing.T) {
	d := DefaultDurations()
	r := rng.New(1)
	const n = 50000
	under1, under60 := 0, 0
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v <= 0 || v > d.MaxS {
			t.Fatalf("duration %v out of range", v)
		}
		if v < 1 {
			under1++
		}
		if v < 60 {
			under60++
		}
	}
	f1 := float64(under1) / n
	f60 := float64(under60) / n
	// Azure: ~50% of invocations < 1 s; ~96% < 60 s.
	if f1 < 0.40 || f1 > 0.70 {
		t.Fatalf("fraction under 1s = %v, want ~0.5", f1)
	}
	if f60 < 0.90 {
		t.Fatalf("fraction under 60s = %v, want >= 0.9", f60)
	}
}

func TestMemoryDistributionMatchesAzure(t *testing.T) {
	m := DefaultMemory()
	r := rng.New(2)
	const n = 50000
	var vals []float64
	for i := 0; i < n; i++ {
		vals = append(vals, m.Sample(r))
	}
	under400 := 0
	under170 := 0
	for _, v := range vals {
		if v <= 0 || v > m.CapMB {
			t.Fatalf("memory %v out of range", v)
		}
		if v <= 400 {
			under400++
		}
		if v <= 170 {
			under170++
		}
	}
	// Azure: 90% never above 400 MB; 50% of runtimes <= ~170 MB.
	if f := float64(under400) / n; f < 0.85 || f > 0.95 {
		t.Fatalf("fraction <= 400MB = %v, want ~0.9", f)
	}
	if f := float64(under170) / n; f < 0.45 || f > 0.55 {
		t.Fatalf("fraction <= 170MB = %v, want ~0.5", f)
	}
}

func TestArrivalsRateMatches(t *testing.T) {
	p := Pattern{BaseQPS: 5} // constant rate, no modulation
	r := rng.New(3)
	arr := Arrivals(p, 0, 10000, r)
	rate := float64(len(arr)) / 10000
	if math.Abs(rate-5) > 0.3 {
		t.Fatalf("arrival rate = %v, want ~5", rate)
	}
	prev := -1.0
	for _, a := range arr {
		if a <= prev || a < 0 || a >= 10000 {
			t.Fatal("arrivals not sorted within range")
		}
		prev = a
	}
	if Arrivals(Pattern{}, 0, 100, r) != nil {
		t.Fatal("zero-rate pattern should produce no arrivals")
	}
}

func TestArrivalsFollowDiurnal(t *testing.T) {
	p := DefaultPattern(2)
	r := rng.New(4)
	arr := Arrivals(p, 0, 86400, r)
	day, night := 0, 0
	for _, a := range arr {
		h := math.Mod(a, 86400) / 3600
		if h >= 10 && h < 18 {
			day++
		}
		if h >= 0 && h < 8 {
			night++
		}
	}
	if day <= night {
		t.Fatalf("diurnal arrivals: day %d <= night %d", day, night)
	}
}

func TestJobArrivals(t *testing.T) {
	r := rng.New(5)
	arr := JobArrivals(300, 0, 86400, r)
	want := 86400.0 / 300
	if math.Abs(float64(len(arr))-want) > want*0.4 {
		t.Fatalf("job arrivals = %d, want ~%v", len(arr), want)
	}
	if JobArrivals(0, 0, 100, r) != nil {
		t.Fatal("zero interval should produce nil")
	}
}

func TestSampleNoiseSeeded(t *testing.T) {
	p := DefaultPattern(50)
	a := p.Sample(1000, rng.New(6))
	b := p.Sample(1000, rng.New(6))
	if a != b {
		t.Fatal("seeded sample must reproduce")
	}
	if c := p.Sample(1000, nil); c != p.RateAt(1000) {
		t.Fatal("nil rnd should return deterministic rate")
	}
}
