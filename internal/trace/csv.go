package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// CSV interop: arrival series export for external analysis and import
// of production traces (e.g., a pre-processed Azure Functions dataset)
// so the platform can replay real invocation patterns instead of the
// synthetic generator.

// WriteArrivalsCSV writes one arrival timestamp (seconds) per row under
// a "t_seconds" header.
func WriteArrivalsCSV(w io.Writer, arrivals []float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_seconds"}); err != nil {
		return err
	}
	for _, t := range arrivals {
		if err := cw.Write([]string{strconv.FormatFloat(t, 'f', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadArrivalsCSV reads a one-column arrival CSV (header optional) and
// returns the timestamps sorted ascending. Negative timestamps are
// rejected.
func ReadArrivalsCSV(r io.Reader) ([]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 1
	var out []float64
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv: %w", err)
		}
		v, perr := strconv.ParseFloat(rec[0], 64)
		if perr != nil {
			if first {
				first = false
				continue // header row
			}
			return nil, fmt.Errorf("trace: csv row %q: %w", rec[0], perr)
		}
		first = false
		if v < 0 {
			return nil, fmt.Errorf("trace: negative timestamp %v", v)
		}
		out = append(out, v)
	}
	sort.Float64s(out)
	return out, nil
}

// EmpiricalPattern bins an arrival series into fixed windows and plays
// the measured per-window rate back through the Pattern interface shape
// (RateAt/Sample) — replaying a production trace where the synthetic
// diurnal generator would otherwise be used.
type EmpiricalPattern struct {
	binS  float64
	rates []float64
}

// NewEmpiricalPattern bins arrivals over [0, horizon) into windows of
// binS seconds. It returns an error for empty input or non-positive
// parameters.
func NewEmpiricalPattern(arrivals []float64, horizonS, binS float64) (*EmpiricalPattern, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("trace: empty arrival series")
	}
	if horizonS <= 0 || binS <= 0 {
		return nil, fmt.Errorf("trace: non-positive horizon/bin")
	}
	n := int(math.Ceil(horizonS / binS))
	if n < 1 {
		n = 1
	}
	rates := make([]float64, n)
	for _, t := range arrivals {
		b := int(t / binS)
		if b < 0 || b >= n {
			continue
		}
		rates[b]++
	}
	for i := range rates {
		rates[i] /= binS
	}
	return &EmpiricalPattern{binS: binS, rates: rates}, nil
}

// RateAt returns the measured rate of the window containing t; times
// past the horizon wrap around (the trace repeats).
func (p *EmpiricalPattern) RateAt(t float64) float64 {
	if t < 0 {
		t = 0
	}
	b := int(t/p.binS) % len(p.rates)
	return p.rates[b]
}

// MeanRate returns the average rate over the whole trace.
func (p *EmpiricalPattern) MeanRate() float64 {
	sum := 0.0
	for _, r := range p.rates {
		sum += r
	}
	return sum / float64(len(p.rates))
}

// HorizonS returns the trace horizon in simulated seconds — the period
// after which RateAt wraps around.
func (p *EmpiricalPattern) HorizonS() float64 {
	return p.binS * float64(len(p.rates))
}

// Scaled derives a new pattern with every windowed rate multiplied by
// the scaling's rate factor and the window width divided by its time
// factor, so a compressed trace replays its full horizon in
// HorizonS()/TimeFactor simulated seconds. The receiver is unchanged.
func (p *EmpiricalPattern) Scaled(s Scaling) *EmpiricalPattern {
	out := &EmpiricalPattern{
		binS:  p.binS / s.Time(),
		rates: make([]float64, len(p.rates)),
	}
	rf := s.Rate()
	for i, r := range p.rates {
		out.rates[i] = r * rf
	}
	return out
}
