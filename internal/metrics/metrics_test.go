package metrics

import (
	"testing"
	"testing/quick"
)

func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range All() {
		name := id.String()
		if name == "" || seen[name] {
			t.Fatalf("metric %d has bad/duplicate name %q", id, name)
		}
		seen[name] = true
	}
	if ID(99).String() != "ID(99)" {
		t.Fatal("invalid id name")
	}
}

func TestSelectedIs16(t *testing.T) {
	sel := Selected()
	if len(sel) != NumSelected || NumSelected != 16 {
		t.Fatalf("selected = %d, want 16 (§3.2)", len(sel))
	}
	// The paper's screening drops |corr| < 0.1: MemLP, MemIO, TX.
	dropped := map[ID]bool{MemLP: true, MemIO: true, TX: true}
	for _, id := range sel {
		if dropped[id] {
			t.Fatalf("screened-out metric %v in selection", id)
		}
	}
	// DiskIO is retained (the Figure 8 uninformative input).
	found := false
	for _, id := range sel {
		if id == DiskIO {
			found = true
		}
	}
	if !found {
		t.Fatal("DiskIO missing from selection")
	}
	if len(sel)+len(dropped) != int(NumCandidates) {
		t.Fatalf("selection + dropped != candidates")
	}
}

func TestSelectExtractsInOrder(t *testing.T) {
	var v Vector
	for i := range v {
		v[i] = float64(i)
	}
	out := v.Select()
	for i, id := range Selected() {
		if out[i] != float64(id) {
			t.Fatalf("Select[%d] = %v, want %v", i, out[i], float64(id))
		}
	}
}

func TestVectorOps(t *testing.T) {
	var a, b Vector
	for i := range a {
		a[i] = 1
		b[i] = 2
	}
	sum := a.Add(b)
	for i := range sum {
		if sum[i] != 3 {
			t.Fatal("Add wrong")
		}
	}
	sc := a.Scale(5)
	for i := range sc {
		if sc[i] != 5 {
			t.Fatal("Scale wrong")
		}
	}
}

func TestMixWeights(t *testing.T) {
	var a, b Vector
	a[IPC] = 1
	b[IPC] = 3
	m := Mix([]Vector{a, b}, []float64{1, 1})
	if m[IPC] != 2 {
		t.Fatalf("equal-weight mix = %v, want 2", m[IPC])
	}
	m = Mix([]Vector{a, b}, []float64{3, 1})
	if m[IPC] != 1.5 {
		t.Fatalf("weighted mix = %v, want 1.5", m[IPC])
	}
	if z := Mix(nil, nil); z != (Vector{}) {
		t.Fatal("Mix(nil) should be zero")
	}
	if z := Mix([]Vector{a}, []float64{0}); z != (Vector{}) {
		t.Fatal("zero-weight mix should be zero")
	}
}

func TestMixSingleIsIdentityProperty(t *testing.T) {
	if err := quick.Check(func(vals [NumCandidates]float64, w float64) bool {
		if w <= 0 || w != w {
			w = 1
		}
		for _, x := range vals {
			if x != x { // NaN input
				return true
			}
		}
		v := Vector(vals)
		m := Mix([]Vector{v}, []float64{w})
		for i := range m {
			d := m[i] - v[i]
			if d > 1e-9 || d < -1e-9 {
				abs := v[i]
				if abs < 0 {
					abs = -abs
				}
				if abs > 1e12 {
					return true
				}
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
