// Package metrics defines the system-layer and microarchitecture-layer
// metrics of the paper's Table 3. Nineteen candidate metrics are
// collected per function; the Table 3 screening drops those whose
// absolute Pearson/Spearman correlation with performance falls below
// 0.1, leaving the 16 model inputs of §3.2.
package metrics

import "fmt"

// ID identifies one candidate metric.
type ID int

// The 19 candidate metrics of Table 3, in a fixed order.
const (
	BranchMPKI ID = iota // branch misses per kilo-instruction
	ContextSwitches
	MemLP // memory-level parallelism (the paper's "MLP")
	L1DMPKI
	ITLBMPKI
	CPUUtil
	MemUtil
	NetBW
	TX // network transmit errors/retrans proxy
	RX // network receive pressure proxy
	L1IMPKI
	L2MPKI
	L3MPKI
	DTLBMPKI
	IPC
	LLCOcc // last-level-cache occupancy (pqos)
	MemIO  // memory I/O (bandwidth consumed)
	DiskIO
	CPUFreq
	NumCandidates // keep last
)

var names = [NumCandidates]string{
	BranchMPKI:      "branch-mpki",
	ContextSwitches: "context-switches",
	MemLP:           "mlp",
	L1DMPKI:         "l1d-mpki",
	ITLBMPKI:        "itlb-mpki",
	CPUUtil:         "cpu-utilization",
	MemUtil:         "memory-utilization",
	NetBW:           "network-bandwidth",
	TX:              "tx",
	RX:              "rx",
	L1IMPKI:         "l1i-mpki",
	L2MPKI:          "l2-mpki",
	L3MPKI:          "l3-mpki",
	DTLBMPKI:        "dtlb-mpki",
	IPC:             "ipc",
	LLCOcc:          "llc",
	MemIO:           "memory-io",
	DiskIO:          "disk-io",
	CPUFreq:         "cpu-frequency",
}

// String returns the metric's lowercase name.
func (id ID) String() string {
	if id < 0 || id >= NumCandidates {
		return fmt.Sprintf("ID(%d)", int(id))
	}
	return names[id]
}

// Selected returns the 16 metrics retained by the Table 3 screening
// (|correlation| >= 0.1). MemLP, MemIO and TX are screened out; DiskIO
// is retained — it is the one input Figure 8 finds uninformative.
func Selected() []ID {
	return []ID{
		BranchMPKI, ContextSwitches, L1DMPKI, ITLBMPKI,
		CPUUtil, MemUtil, NetBW, RX,
		L1IMPKI, L2MPKI, L3MPKI, DTLBMPKI,
		IPC, LLCOcc, DiskIO, CPUFreq,
	}
}

// NumSelected is the number of retained metrics: the paper's 16.
const NumSelected = 16

// Vector holds one value per candidate metric.
type Vector [NumCandidates]float64

// Select extracts the 16 retained metrics in Selected() order.
func (v Vector) Select() [NumSelected]float64 {
	var out [NumSelected]float64
	for i, id := range Selected() {
		out[i] = v[id]
	}
	return out
}

// Add returns v + w element-wise.
func (v Vector) Add(w Vector) Vector {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Scale returns v scaled by f.
func (v Vector) Scale(f float64) Vector {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Mix returns the weighted average of vs with the given weights. It is
// the paper's "virtual larger function" aggregation (§3.3): functions of
// one workload colocated on one server merge by averaging their metrics.
// Weights that sum to zero yield the zero vector.
func Mix(vs []Vector, weights []float64) Vector {
	var out Vector
	if len(vs) == 0 {
		return out
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return out
	}
	for i, v := range vs {
		out = out.Add(v.Scale(weights[i] / total))
	}
	return out
}

// All returns every candidate metric ID in order.
func All() []ID {
	ids := make([]ID, NumCandidates)
	for i := range ids {
		ids[i] = ID(i)
	}
	return ids
}
