// Package baselines implements the state-of-the-art comparison
// predictors of the paper's evaluation (§6.1, Table 2): ESP (Mishra et
// al., ICAC'17) and Pythia (Xu et al., Middleware'18). Both are honest
// reimplementations of the published designs' information diets —
// workload-level features with no spatial or temporal overlap coding —
// which is precisely why they trail Gsight on partial interference
// (Figure 9): neither can tell where functions overlap nor when, nor
// capture call-path propagation.
package baselines

import (
	"fmt"

	"gsight/internal/core"
	"gsight/internal/metrics"
	"gsight/internal/ml"
	"gsight/internal/resources"
	"gsight/internal/workload"
)

// featurePredictor is the shared skeleton: a feature extractor over the
// workload set plus one incremental model per QoS kind.
type featurePredictor struct {
	name    string
	encode  func(target int, ws []core.WorkloadInput) []float64
	models  [3]ml.Incremental
	pending [3]ml.Dataset
	trained [3]bool
	every   int
}

func (p *featurePredictor) Name() string { return p.name }

func (p *featurePredictor) TrainObservations(kind core.QoSKind, obs []core.Observation) error {
	var ds ml.Dataset
	for _, o := range obs {
		ds.Append(p.encode(o.Target, o.Inputs), o.Label)
	}
	if err := p.models[kind].Fit(ds.X, ds.Y); err != nil {
		return err
	}
	p.trained[kind] = true
	return nil
}

func (p *featurePredictor) Predict(kind core.QoSKind, target int, ws []core.WorkloadInput) (float64, error) {
	if !p.trained[kind] {
		return 0, fmt.Errorf("%s: %v model not trained", p.name, kind)
	}
	return p.models[kind].Predict(p.encode(target, ws)), nil
}

func (p *featurePredictor) Observe(kind core.QoSKind, target int, ws []core.WorkloadInput, actual float64) error {
	p.pending[kind].Append(p.encode(target, ws), actual)
	if p.pending[kind].Len() >= p.every {
		return p.Flush(kind)
	}
	return nil
}

func (p *featurePredictor) Flush(kind core.QoSKind) error {
	ds := &p.pending[kind]
	if ds.Len() == 0 {
		return nil
	}
	var err error
	if !p.trained[kind] {
		err = p.models[kind].Fit(ds.X, ds.Y)
		p.trained[kind] = err == nil
	} else {
		err = p.models[kind].Update(ds.X, ds.Y)
	}
	if err != nil {
		return err
	}
	*ds = ml.Dataset{}
	return nil
}

// mergeWorkload flattens a workload's per-function profiles into one
// CPU-demand-weighted metric vector — the workload-level view both
// baselines operate on.
func mergeWorkload(w core.WorkloadInput) metrics.Vector {
	var vs []metrics.Vector
	var weights []float64
	for f, p := range w.Profiles {
		m := p.Metrics
		weight := p.Demand[resources.CPU]
		if w.Replicas != nil {
			weight *= float64(w.Replicas[f])
		}
		if weight <= 0 {
			weight = 1e-6
		}
		vs = append(vs, m)
		weights = append(weights, weight)
	}
	v := metrics.Mix(vs, weights)
	if w.Class == workload.LS && w.QPSFrac > 0 {
		// rate metrics follow the offered load, as in Gsight's coder
		for _, id := range []metrics.ID{
			metrics.CPUUtil, metrics.NetBW, metrics.RX, metrics.TX,
			metrics.DiskIO, metrics.ContextSwitches, metrics.MemIO,
		} {
			v[id] *= w.QPSFrac
		}
	}
	return v
}

// NewESP builds the ESP baseline: a machine-learning predictor that
// only consumes four microarchitecture metrics per workload — IPC, L2
// and L3 access behaviour, and memory bandwidth — as the paper notes
// ("ESP only uses four microarchitecture metrics during model
// training"). Placement and timing are invisible to it.
func NewESP(seed uint64) core.QoSPredictor {
	espMetrics := []metrics.ID{metrics.IPC, metrics.L2MPKI, metrics.L3MPKI, metrics.MemIO}
	enc := func(target int, ws []core.WorkloadInput) []float64 {
		x := make([]float64, 2*len(espMetrics))
		for i, w := range ws {
			m := mergeWorkload(w)
			if i == target {
				for j, id := range espMetrics {
					x[j] = m[id]
				}
			} else {
				for j, id := range espMetrics {
					x[len(espMetrics)+j] += m[id]
				}
			}
		}
		return x
	}
	p := &featurePredictor{name: "ESP", encode: enc, every: 100}
	for k := range p.models {
		m := ml.Incremental(ml.NewForest(ml.ForestConfig{Trees: 40, Seed: seed + uint64(k)}))
		if core.QoSKind(k) != core.IPCQoS {
			m = ml.NewLogTarget(m)
		}
		p.models[k] = m
	}
	return p
}

// NewPythia builds the Pythia baseline: a lightweight linear regression
// over workload-level contention features — the published design's
// core. It cannot express the nonlinear, spatially-varied interference
// surface, and in the scheduling case study it pairs with Best Fit.
func NewPythia(seed uint64) core.QoSPredictor {
	enc := func(target int, ws []core.WorkloadInput) []float64 {
		x := make([]float64, 2*int(metrics.NumCandidates)+1)
		for i, w := range ws {
			m := mergeWorkload(w)
			if i == target {
				for j := 0; j < int(metrics.NumCandidates); j++ {
					x[j] = m[j]
				}
				x[2*int(metrics.NumCandidates)] = w.QPSFrac
			} else {
				for j := 0; j < int(metrics.NumCandidates); j++ {
					x[int(metrics.NumCandidates)+j] += m[j]
				}
			}
		}
		return x
	}
	p := &featurePredictor{name: "Pythia", encode: enc, every: 100}
	for k := range p.models {
		m := ml.Incremental(ml.NewLinear(seed + uint64(k)))
		if core.QoSKind(k) != core.IPCQoS {
			m = ml.NewLogTarget(m)
		}
		p.models[k] = m
	}
	return p
}

// NewGsightVariant wraps a Gsight predictor built on a non-default
// learning model — the IKNN/ILR/ISVR/IMLP rows of Figures 5 and 9.
func NewGsightVariant(name string, factory core.ModelFactory, seed uint64) core.QoSPredictor {
	return &named{
		QoSPredictor: core.NewPredictor(core.Config{Factory: factory, Seed: seed}),
		name:         name,
	}
}

type named struct {
	core.QoSPredictor
	name string
}

func (n *named) Name() string { return n.name }

// Factories for the model-comparison variants.
var (
	// IKNNFactory is the incremental k-nearest-neighbours variant.
	IKNNFactory core.ModelFactory = func(seed uint64) ml.Incremental { return ml.NewKNN(8) }
	// ILRFactory is the incremental linear-regression variant.
	ILRFactory core.ModelFactory = func(seed uint64) ml.Incremental { return ml.NewLinear(seed) }
	// ISVRFactory is the incremental support-vector-regression variant.
	ISVRFactory core.ModelFactory = func(seed uint64) ml.Incremental { return ml.NewSVR(seed) }
	// IMLPFactory is the incremental multilayer-perceptron variant.
	IMLPFactory core.ModelFactory = func(seed uint64) ml.Incremental { return ml.NewMLP(seed) }
)
