package baselines

import (
	"testing"

	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/resources"
	"gsight/internal/scenario"
)

// buildObs generates a small labeled observation set shared by the tests.
func buildObs(t *testing.T, kind core.QoSKind, n int) []core.Observation {
	t.Helper()
	m := perfmodel.New(resources.DefaultTestbed())
	scenario.FastConfig(m)
	g := scenario.NewGenerator(m, 7)
	var obs []core.Observation
	for len(obs) < n {
		sc := g.Colocation(core.LSSC, 2)
		samples, err := g.Label(sc)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samples {
			if s.Kind == kind {
				obs = append(obs, core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label})
			}
		}
	}
	return obs
}

func TestBaselineLifecycle(t *testing.T) {
	obs := buildObs(t, core.IPCQoS, 80)
	for _, p := range []core.QoSPredictor{NewESP(1), NewPythia(2)} {
		if _, err := p.Predict(core.IPCQoS, 0, obs[0].Inputs); err == nil {
			t.Fatalf("%s: untrained predict must error", p.Name())
		}
		if err := p.TrainObservations(core.IPCQoS, obs[:60]); err != nil {
			t.Fatalf("%s: train: %v", p.Name(), err)
		}
		got, err := p.Predict(core.IPCQoS, obs[60].Target, obs[60].Inputs)
		if err != nil {
			t.Fatalf("%s: predict: %v", p.Name(), err)
		}
		if got <= 0 || got > 10 {
			t.Fatalf("%s: implausible IPC prediction %v", p.Name(), got)
		}
		for i := 60; i < 70; i++ {
			if err := p.Observe(core.IPCQoS, obs[i].Target, obs[i].Inputs, obs[i].Label); err != nil {
				t.Fatalf("%s: observe: %v", p.Name(), err)
			}
		}
		if err := p.Flush(core.IPCQoS); err != nil {
			t.Fatalf("%s: flush: %v", p.Name(), err)
		}
	}
}

func TestBaselineNames(t *testing.T) {
	if NewESP(1).Name() != "ESP" {
		t.Fatal("ESP name")
	}
	if NewPythia(1).Name() != "Pythia" {
		t.Fatal("Pythia name")
	}
	v := NewGsightVariant("Gsight-IKNN", IKNNFactory, 3)
	if v.Name() != "Gsight-IKNN" {
		t.Fatal("variant name")
	}
}

func TestBaselinesAreWorseThanGsightOnPartialInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three predictors")
	}
	// The paper's central comparison: on spatially-varied partial
	// interference, workload-level baselines cannot tell where the
	// overlap happens, so their error exceeds Gsight's.
	obsAll := buildObs(t, core.IPCQoS, 900)
	train, test := obsAll[:800], obsAll[800:]

	gs := core.NewPredictor(core.Config{Seed: 1})
	esp := NewESP(2)
	pythia := NewPythia(3)
	mape := func(p core.QoSPredictor) float64 {
		if err := p.TrainObservations(core.IPCQoS, train); err != nil {
			t.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, o := range test {
			if o.Label == 0 {
				continue
			}
			got, err := p.Predict(core.IPCQoS, o.Target, o.Inputs)
			if err != nil {
				t.Fatal(err)
			}
			e := (got - o.Label) / o.Label
			if e < 0 {
				e = -e
			}
			sum += e
			n++
		}
		return sum / float64(n)
	}
	eGsight := mape(gs)
	eESP := mape(esp)
	ePythia := mape(pythia)
	t.Logf("IPC MAPE: Gsight=%.2f%% ESP=%.2f%% Pythia=%.2f%%", 100*eGsight, 100*eESP, 100*ePythia)
	if eGsight >= eESP {
		t.Errorf("Gsight (%.3f) should beat ESP (%.3f)", eGsight, eESP)
	}
	if eGsight >= ePythia {
		t.Errorf("Gsight (%.3f) should beat Pythia (%.3f)", eGsight, ePythia)
	}
}

func TestGsightVariantLifecycle(t *testing.T) {
	obs := buildObs(t, core.IPCQoS, 60)
	v := NewGsightVariant("Gsight-ILR", ILRFactory, 4)
	if err := v.TrainObservations(core.IPCQoS, obs[:50]); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Predict(core.IPCQoS, obs[50].Target, obs[50].Inputs); err != nil {
		t.Fatal(err)
	}
}
