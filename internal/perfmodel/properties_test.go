package perfmodel

import (
	"testing"
	"testing/quick"

	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/workload"
)

// Property-based checks of the ground-truth model's structural
// invariants: the learned predictor can only be as sane as the world
// it observes.

// TestMoreLoadNeverLowersLatency: solo LS latency is monotone
// non-decreasing in QPS.
func TestMoreLoadNeverLowersLatency(t *testing.T) {
	m := newModel()
	sn := workload.SocialNetwork()
	prevP99 := 0.0
	for _, frac := range []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.95} {
		d := SpreadDeployment(sn, m.Testbed)
		d.QPS = sn.MaxQPS * frac
		res := evalOne(t, m, d)
		p99 := res.Deployments[0].E2EP99Ms
		if p99 < prevP99*0.999 {
			t.Fatalf("p99 dropped with load: %v at %.0f%%, was %v", p99, frac*100, prevP99)
		}
		prevP99 = p99
	}
}

// TestCorunnerNeverHelpsJCT: adding a colocated corunner cannot speed
// an SC job up.
func TestCorunnerNeverHelpsJCT(t *testing.T) {
	m := newModel()
	r := rng.New(77)
	pool := []*workload.Workload{
		workload.MatMul(), workload.DD(), workload.Iperf(), workload.VideoProcessing(),
	}
	if err := quick.Check(func(ai, bi uint8, delayRaw uint16) bool {
		a := pool[int(ai)%len(pool)].Clone()
		b := pool[int(bi)%len(pool)].Clone()
		da := NewDeployment(a)
		solo, err := m.Evaluate(&Scenario{Deployments: []*Deployment{da}}, nil)
		if err != nil {
			return false
		}
		da2 := NewDeployment(a.Clone())
		db := NewDeployment(b)
		db.StartDelayS = float64(delayRaw % 200)
		co, err := m.Evaluate(&Scenario{Deployments: []*Deployment{da2, db}}, nil)
		if err != nil {
			return false
		}
		// one step of slack for time discretization
		return co.Deployments[0].JCTS >= solo.Deployments[0].JCTS-m.Cfg.StepS-1e-9
	}, &quick.Config{MaxCount: 25, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

// TestSeparateServersMeanNoComputeInterference: workloads on different
// servers cannot slow each other's IPC (network/disk are server-wide,
// so only compute resources are asserted).
func TestSeparateServersMeanNoComputeInterference(t *testing.T) {
	m := newModel()
	a := NewDeployment(workload.MatMul())
	a.Placement[0] = 0
	b := NewDeployment(workload.VideoProcessing())
	b.Placement[0] = 5
	res := evalOne(t, m, a, b)
	soloA := evalOne(t, m, NewDeployment(workload.MatMul()))
	if res.Deployments[0].IPC < soloA.Deployments[0].IPC*0.999 {
		t.Fatalf("cross-server IPC interference: %v vs solo %v",
			res.Deployments[0].IPC, soloA.Deployments[0].IPC)
	}
}

// TestProtectedPartitionMonotone: growing the protected fraction never
// hurts the protected workload while the aggressor stays fixed.
func TestProtectedPartitionMonotone(t *testing.T) {
	sn := workload.SocialNetwork()
	prev := 1e18
	for _, frac := range []float64{0.4, 0.55, 0.7, 0.85} {
		m := newModel()
		for s := 0; s < m.Testbed.NumServers(); s++ {
			m.SetPartition(s, Partition{CPUFrac: frac, LLCFrac: frac, MemBWFrac: frac})
		}
		d := SpreadDeployment(sn, m.Testbed)
		d.QPS = sn.MaxQPS * 0.5
		d.Protected = true
		c := NewDeployment(workload.MatMul())
		c.Placement[0] = d.Placement[8]
		c.Socket[0] = d.Socket[8]
		res := evalOne(t, m, d, c)
		p99 := res.Deployments[0].E2EP99Ms
		if p99 > prev*1.02 {
			t.Fatalf("larger protected fraction %.2f raised p99: %v > %v", frac, p99, prev)
		}
		prev = p99
	}
}

// TestColdStartFracMonotone: a higher cold-start rate never improves
// latency or IPC.
func TestColdStartFracMonotone(t *testing.T) {
	m := newModel()
	sn := workload.SocialNetwork()
	var prevP99, prevIPC float64
	prevIPC = 1e18
	for _, frac := range []float64{0, 0.1, 0.25, 0.5} {
		d := SpreadDeployment(sn, m.Testbed)
		d.QPS = sn.MaxQPS * 0.4
		d.ColdStartFrac = frac
		res := evalOne(t, m, d)
		if res.Deployments[0].E2EP99Ms < prevP99*0.999 {
			t.Fatalf("cold starts lowered p99 at frac %v", frac)
		}
		if res.Deployments[0].IPC > prevIPC*1.001 {
			t.Fatalf("cold starts raised IPC at frac %v", frac)
		}
		prevP99, prevIPC = res.Deployments[0].E2EP99Ms, res.Deployments[0].IPC
	}
}

// TestLoadFactorProperties pins the train/serve load normalization.
func TestLoadFactorProperties(t *testing.T) {
	sn := workload.SocialNetwork()
	// Autoscaled replicas: factor ~1 regardless of QPS.
	for _, frac := range []float64{0.3, 0.6, 0.9} {
		d := NewDeployment(sn)
		d.QPS = sn.MaxQPS * frac
		for f := range d.Replicas {
			d.Replicas[f] = LSReplicasFor(sn, f, d.QPS)
		}
		lf := LoadFactor(d)
		if lf < 0.6 || lf > 1.5 {
			t.Fatalf("autoscaled load factor = %v at %.0f%%, want ~1", lf, frac*100)
		}
	}
	// Max-sized replicas: factor equals the QPS fraction.
	d := NewDeployment(sn) // replicas sized for MaxQPS
	d.QPS = sn.MaxQPS * 0.5
	if lf := LoadFactor(d); lf < 0.45 || lf > 0.55 {
		t.Fatalf("pinned-replica load factor = %v, want ~0.5", lf)
	}
	// Non-LS: always 1.
	if lf := LoadFactor(NewDeployment(workload.MatMul())); lf != 1 {
		t.Fatalf("SC load factor = %v", lf)
	}
}

// TestStepperMatchesEvaluateForSoloSC: the dynamic stepper and the
// batch evaluator must agree on a solo job's completion time.
func TestStepperMatchesEvaluateForSoloSC(t *testing.T) {
	m := newModel()
	batch := evalOne(t, m, NewDeployment(workload.MatMul()))

	st := m.NewStepper()
	if _, err := st.AddSC(NewDeployment(workload.MatMul())); err != nil {
		t.Fatal(err)
	}
	var jct float64
	for i := 0; i < 1000 && jct == 0; i++ {
		rep := st.Step(m.Cfg.StepS, nil)
		for _, c := range rep.Completed {
			jct = c.JCTS
		}
	}
	if jct == 0 {
		t.Fatal("stepper never completed the job")
	}
	diff := jct - batch.Deployments[0].JCTS
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*m.Cfg.StepS {
		t.Fatalf("stepper JCT %v vs evaluate %v", jct, batch.Deployments[0].JCTS)
	}
}

// TestPartitionConservation: with both classes present, a partition
// cannot make BOTH classes faster than the shared baseline (resources
// are conserved).
func TestPartitionConservation(t *testing.T) {
	sn := workload.SocialNetwork()
	mk := func(part bool) (*Model, *Scenario) {
		m := newModel()
		if part {
			for s := 0; s < m.Testbed.NumServers(); s++ {
				m.SetPartition(s, Partition{CPUFrac: 0.7, LLCFrac: 0.7, MemBWFrac: 0.7})
			}
		}
		d := SpreadDeployment(sn, m.Testbed)
		d.QPS = sn.MaxQPS * 0.5
		d.Protected = true
		c := NewDeployment(workload.MatMul())
		c.Placement[0] = d.Placement[8]
		c.Socket[0] = d.Socket[8]
		return m, &Scenario{Deployments: []*Deployment{d, c}}
	}
	mShared, scShared := mk(false)
	shared, err := mShared.Evaluate(scShared, nil)
	if err != nil {
		t.Fatal(err)
	}
	mPart, scPart := mk(true)
	part, err := mPart.Evaluate(scPart, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsBetter := part.Deployments[0].E2EP99Ms < shared.Deployments[0].E2EP99Ms
	scBetter := part.Deployments[1].JCTS < shared.Deployments[1].JCTS-mPart.Cfg.StepS
	if lsBetter && scBetter {
		t.Fatal("partitioning made both classes faster — resources are not conserved")
	}
}

// TestVectorScaleInvariance: scaling all demands and capacities by the
// same factor leaves utilizations (and thus pressures) unchanged.
func TestVectorScaleInvariance(t *testing.T) {
	if err := quick.Check(func(seedRaw uint16) bool {
		c := DefaultConfig()
		u := float64(seedRaw%300) / 100 // 0..3
		for k := 0; k < int(resources.NumKinds); k++ {
			a := c.pressure(resources.Kind(k), u)
			b := c.pressure(resources.Kind(k), u) // same u, determinism
			if a != b {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
