package perfmodel

import (
	"gsight/internal/resources"
	"gsight/internal/workload"
)

// scState tracks one SC/BG job through the time-stepped co-execution.
type scState struct {
	dep      *Deployment
	progress float64 // [0, 1]
	started  bool
	done     bool
	jct      float64 // completion - start (seconds)
	// accumulators for the reported slowdown/IPC
	ipcSum  float64
	ipcTime float64
}

// stageOf maps overall job progress to the active function (SC
// pipelines execute their functions as sequential stages of equal
// share) and the progress within that stage.
func stageOf(w *workload.Workload, p float64) (fn int, local float64) {
	n := len(w.Functions)
	if n == 1 {
		return 0, p
	}
	scaled := p * float64(n)
	fn = int(scaled)
	if fn >= n {
		fn = n - 1
	}
	return fn, scaled - float64(fn)
}

// scDemand returns the demand job st exerts at its current progress,
// along with the active function index and phase.
func scDemand(st *scState) (fn int, ph workload.Phase, demand resources.Vector) {
	w := st.dep.W
	fn, local := stageOf(w, st.progress)
	f := &w.Functions[fn]
	ph, _ = f.PhaseAt(local)
	demand = f.Demand.Mul(ph.DemandScale).Scale(float64(st.dep.Replicas[fn]))
	return fn, ph, demand
}

// coExecute advances all SC/BG jobs (and samples the LS deployments)
// through time until every job completes or the horizon expires.
// It returns the SC states and the time-averaged LS results. The
// solver sv is borrowed scratch owned by the caller for the duration
// of the call.
func (m *Model) coExecute(sv *lsSolver, scDeps, lsDeps []*Deployment) ([]*scState, []LSResult) {
	states := make([]*scState, len(scDeps))
	horizon := m.Cfg.StepS
	for i, d := range scDeps {
		states[i] = &scState{dep: d}
		end := d.StartDelayS + d.W.SoloDurationS*6
		if end > horizon {
			horizon = end
		}
	}
	if horizon > m.Cfg.MaxHorizonS {
		horizon = m.Cfg.MaxHorizonS
	}

	extraInstances := 0
	for _, d := range scDeps {
		for _, r := range d.Replicas {
			extraInstances += r
		}
	}
	var lsRefs []float64
	if len(lsDeps) > 0 {
		lsRefs = m.idealRefsInto(sv, nil, lsDeps)
	}

	// LS accumulators (time averages over the co-execution window).
	type lsAcc struct {
		steps   float64
		effQPS  float64
		ipc     float64
		e2eMean float64
		e2eP99  float64
		gwMean  float64
		perFunc []FuncPerf
	}
	accs := make([]lsAcc, len(lsDeps))
	for i, d := range lsDeps {
		accs[i].perFunc = make([]FuncPerf, len(d.W.Functions))
	}

	bg := newDemandStore(m.Testbed)
	type active struct {
		st *scState
		fn int
		ph workload.Phase
		ex resources.Vector
	}
	var actives []active
	dt := m.Cfg.StepS
	for t := 0.0; t < horizon; t += dt {
		// 1. Demand exerted by active SC jobs.
		bg.reset()
		actives = actives[:0]
		allDone := true
		for _, st := range states {
			if st.done {
				continue
			}
			allDone = false
			if t+1e-9 < st.dep.StartDelayS {
				continue
			}
			st.started = true
			fn, ph, ex := scDemand(st)
			bg.add(st.dep.Placement[fn], m.resolveSocket(st.dep, fn), st.dep.Protected, &ex)
			actives = append(actives, active{st, fn, ph, ex})
		}
		if allDone {
			break
		}

		// 2. Solve the LS fixed point against this background; its
		// demand store feeds back into the SC slowdowns.
		var demand *demandStore
		if len(lsDeps) > 0 {
			sol := m.solveLSWithRefs(sv, lsDeps, bg, extraInstances, false, lsRefs)
			demand = sol.demand
			for i := range lsDeps {
				a := &accs[i]
				r := sol.results[i]
				a.steps++
				a.effQPS += r.EffQPS
				a.ipc += r.IPC
				a.e2eMean += r.E2EMeanMs
				a.e2eP99 += r.E2EP99Ms
				a.gwMean += r.GatewayMeanMs
				for f := range r.PerFunc {
					p := &a.perFunc[f]
					q := r.PerFunc[f]
					p.Name = q.Name
					p.IPC += q.IPC
					p.Slowdown += q.Slowdown
					p.LocalMeanMs += q.LocalMeanMs
					p.LocalP99Ms += q.LocalP99Ms
					p.ArrivalQPS += q.ArrivalQPS
					p.Rho += q.Rho
				}
			}
		} else {
			demand = bg
		}

		// 3. Advance each active SC job at 1/(D*sigma).
		for _, a := range actives {
			d := a.st.dep
			fn := &d.W.Functions[a.fn]
			sc, sio := m.slowdown(d.Placement[a.fn], m.resolveSocket(d, a.fn),
				d.Protected, demand, &a.ex, &fn.Sensitivity, a.ph.SensScale)
			sigma := totalSlowdown(sc, sio)
			a.st.ipcSum += fn.SoloIPC / sc * dt
			a.st.ipcTime += dt
			a.st.progress += dt / (d.W.SoloDurationS * sigma)
			if a.st.progress >= 1 {
				a.st.progress = 1
				a.st.done = true
				a.st.jct = t + dt - d.StartDelayS
			}
		}
	}
	// Jobs that never finished within the horizon report the horizon.
	for _, st := range states {
		if !st.done {
			st.jct = horizon - st.dep.StartDelayS
			if st.jct < 0 {
				st.jct = 0
			}
		}
	}

	results := make([]LSResult, len(lsDeps))
	for i := range lsDeps {
		a := &accs[i]
		if a.steps == 0 {
			// No SC step overlapped: fall back to a standalone solve.
			// The result's PerFunc aliases solver scratch; copy it so
			// the returned slice survives the solver's next solve.
			sol := m.solveLS(sv, lsDeps, nil, 0, false)
			results[i] = sol.results[i]
			results[i].PerFunc = append([]FuncPerf(nil), sol.results[i].PerFunc...)
			continue
		}
		n := a.steps
		r := LSResult{
			EffQPS:        a.effQPS / n,
			IPC:           a.ipc / n,
			E2EMeanMs:     a.e2eMean / n,
			E2EP99Ms:      a.e2eP99 / n,
			GatewayMeanMs: a.gwMean / n,
			PerFunc:       make([]FuncPerf, len(a.perFunc)),
		}
		for f := range a.perFunc {
			p := a.perFunc[f]
			r.PerFunc[f] = FuncPerf{
				Name:        p.Name,
				IPC:         p.IPC / n,
				Slowdown:    p.Slowdown / n,
				LocalMeanMs: p.LocalMeanMs / n,
				LocalP99Ms:  p.LocalP99Ms / n,
				ArrivalQPS:  p.ArrivalQPS / n,
				Rho:         p.Rho / n,
			}
		}
		results[i] = r
	}
	return states, results
}
