package perfmodel

import (
	"fmt"

	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/workload"
)

// DeploymentResult is the modelled QoS of one deployment in a scenario.
type DeploymentResult struct {
	Name  string
	Class workload.Class
	// IPC is the CPU-demand-weighted mean IPC across the workload's
	// functions (the paper's LS prediction target alongside tail
	// latency; also reported for SC).
	IPC float64
	// LS observables.
	EffQPS    float64
	E2EMeanMs float64
	E2EP99Ms  float64
	PerFunc   []FuncPerf
	// SC/BG observable: job completion time in seconds.
	JCTS float64
}

// Result is the outcome of evaluating a scenario.
type Result struct {
	Deployments []DeploymentResult
}

// ByName returns the result of the named deployment, or nil.
func (r *Result) ByName(name string) *DeploymentResult {
	for i := range r.Deployments {
		if r.Deployments[i].Name == name {
			return &r.Deployments[i]
		}
	}
	return nil
}

// Evaluate computes the QoS of every deployment in the scenario. When
// rnd is non-nil, lognormal measurement noise is applied — tail latency
// receives extra noise below the latency-IPC knee (Figure 7), which is
// why tail-latency prediction is inherently harder than IPC prediction.
func (m *Model) Evaluate(sc *Scenario, rnd *rng.Rand) (*Result, error) {
	var lsDeps, scDeps []*Deployment
	for _, d := range sc.Deployments {
		if err := d.Validate(m.Testbed.NumServers()); err != nil {
			return nil, err
		}
		if err := d.W.Validate(); err != nil {
			return nil, err
		}
		if d.W.Class == workload.LS {
			lsDeps = append(lsDeps, d)
		} else {
			scDeps = append(scDeps, d)
		}
	}

	sv := m.getSolver()
	defer m.putSolver(sv)

	var lsResults []LSResult
	var scStates []*scState
	if len(scDeps) > 0 {
		scStates, lsResults = m.coExecute(sv, scDeps, lsDeps)
	} else if len(lsDeps) > 0 {
		sol := m.solveLS(sv, lsDeps, nil, 0, false)
		// Detach the results from the pooled solver's scratch: noise
		// shaping mutates PerFunc in place and the result outlives the
		// borrow.
		lsResults = append([]LSResult(nil), sol.results...)
		for i := range lsResults {
			lsResults[i].PerFunc = append([]FuncPerf(nil), lsResults[i].PerFunc...)
		}
	}

	res := &Result{}
	li, si := 0, 0
	for _, d := range sc.Deployments {
		dr := DeploymentResult{Name: d.W.Name, Class: d.W.Class}
		if d.W.Class == workload.LS {
			r := lsResults[li]
			li++
			dr.IPC = r.IPC
			dr.EffQPS = r.EffQPS
			dr.E2EMeanMs = r.E2EMeanMs
			dr.E2EP99Ms = r.E2EP99Ms
			dr.PerFunc = r.PerFunc
			m.applyLSNoise(&dr, rnd)
		} else {
			st := scStates[si]
			si++
			dr.JCTS = st.jct
			if st.ipcTime > 0 {
				dr.IPC = st.ipcSum / st.ipcTime
			}
			m.applySCNoise(&dr, rnd, d.W)
		}
		res.Deployments = append(res.Deployments, dr)
	}
	return res, nil
}

// soloIPCOf returns the CPU-demand-weighted solo IPC of a workload,
// the reference for the knee ratio.
func soloIPCOf(w *workload.Workload) float64 {
	var sum, wsum float64
	for i := range w.Functions {
		f := &w.Functions[i]
		cw := f.Demand[resources.CPU]
		sum += f.SoloIPC * cw
		wsum += cw
	}
	if wsum == 0 {
		return 1
	}
	return sum / wsum
}

func (m *Model) applyLSNoise(dr *DeploymentResult, rnd *rng.Rand) {
	if rnd == nil {
		return
	}
	c := &m.Cfg
	solo := soloIPCOf(findWorkload(dr))
	ratio := 1.0
	if solo > 0 {
		ratio = dr.IPC / solo
	}
	p99Noise := c.NoiseP99
	if ratio < c.KneeIPCRatio {
		// Below the knee the latency-IPC correlation breaks down
		// (Figure 7): tail latency becomes far noisier.
		p99Noise += c.BelowKneeP99Noise * (c.KneeIPCRatio - ratio) / c.KneeIPCRatio
	}
	dr.IPC = rnd.Jitter(dr.IPC, c.NoiseIPC)
	dr.E2EMeanMs = rnd.Jitter(dr.E2EMeanMs, c.NoiseMean)
	dr.E2EP99Ms = rnd.Jitter(dr.E2EP99Ms, p99Noise)
	for f := range dr.PerFunc {
		p := &dr.PerFunc[f]
		p.IPC = rnd.Jitter(p.IPC, c.NoiseIPC)
		p.LocalMeanMs = rnd.Jitter(p.LocalMeanMs, c.NoiseMean)
		p.LocalP99Ms = rnd.Jitter(p.LocalP99Ms, p99Noise)
	}
}

func (m *Model) applySCNoise(dr *DeploymentResult, rnd *rng.Rand, _ *workload.Workload) {
	if rnd == nil {
		return
	}
	dr.JCTS = rnd.Jitter(dr.JCTS, m.Cfg.NoiseJCT)
	dr.IPC = rnd.Jitter(dr.IPC, m.Cfg.NoiseIPC)
}

// findWorkload resolves the catalog workload backing a result; results
// only carry the name, so noise shaping looks the reference IPC up from
// the per-function data instead when the name is unknown.
func findWorkload(dr *DeploymentResult) *workload.Workload {
	// Reconstruct a minimal workload holding just enough for
	// soloIPCOf: the per-function solo IPC is not retained in the
	// result, so approximate the solo reference by the max observed
	// per-function IPC weighted equally. To stay exact, Evaluate
	// callers who need the precise knee should consult the catalog;
	// for noise shaping this approximation suffices.
	w := &workload.Workload{Name: dr.Name}
	for _, p := range dr.PerFunc {
		w.Functions = append(w.Functions, workload.Function{
			Name:    p.Name,
			SoloIPC: p.IPC * p.Slowdown,
			Demand:  resources.Vector{resources.CPU: 1},
		})
	}
	if len(w.Functions) == 0 {
		w.Functions = []workload.Function{{SoloIPC: dr.IPC, Demand: resources.Vector{resources.CPU: 1}}}
	}
	return w
}

// String summarizes a deployment result for logs and CLIs.
func (dr *DeploymentResult) String() string {
	if dr.Class == workload.LS {
		return fmt.Sprintf("%s[LS] ipc=%.3f p99=%.1fms mean=%.1fms qps=%.0f",
			dr.Name, dr.IPC, dr.E2EP99Ms, dr.E2EMeanMs, dr.EffQPS)
	}
	return fmt.Sprintf("%s[%s] jct=%.1fs ipc=%.3f", dr.Name, dr.Class, dr.JCTS, dr.IPC)
}
