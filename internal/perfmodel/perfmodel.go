// Package perfmodel is the simulated testbed: a deterministic
// performance model of the paper's 8-node cluster (Table 4) that plays
// the role the physical OpenFaaS deployment played for the authors. It
// produces the observables the paper measures — per-function IPC, local
// and end-to-end tail latency for LS workloads, and job completion time
// for SC workloads — as a nonlinear function of where functions are
// placed (spatial overlap), when they run (temporal overlap, phases),
// and how loaded they are.
//
// The model deliberately reproduces the paper's six observations:
// volatility (archetype-dependent contention), spatial variation
// (per-socket/per-server contention domains and critical-path
// structure), temporal variation (phased SC co-execution), hotspot
// propagation and restoring propagation (throughput throttling along
// call paths, a shared gateway, and a closed request loop), and
// predictability (all behaviour is a deterministic function of the
// profiles and overlap codes that Gsight sees).
package perfmodel

import (
	"fmt"
	"math"
	"sync"

	"gsight/internal/resources"
	"gsight/internal/workload"
)

// Deployment places one workload onto the testbed.
type Deployment struct {
	W *workload.Workload
	// Placement[f] is the server index hosting function f's instances.
	Placement []int
	// Socket[f] is the CPU socket hosting function f on its server;
	// -1 spreads instances round-robin over sockets. CPU, LLC and
	// memory bandwidth contend per socket; memory capacity, network
	// and disk contend per server.
	Socket []int
	// Replicas[f] is the instance count of function f (nil means the
	// workload default: w.Instances for SC/BG, 1 for LS).
	Replicas []int
	// QPS is the external request load of an LS workload.
	QPS float64
	// StartDelayS delays an SC/BG job's start relative to scenario
	// time zero (the paper's temporal overlap code D).
	StartDelayS float64
	// Protected assigns the deployment to the protected resource
	// partition where one is configured (Intel CAT/MBA-style isolation
	// actuated by the paper's Gsight agents, §5.1). Unprotected
	// deployments share the remainder.
	Protected bool
	// ColdStartFrac is the fraction of invocations that hit a cold
	// start (§5.2): each adds the function's startup latency to its
	// service time and executes with cold-cache efficiency.
	ColdStartFrac float64
}

// DefaultLSRho is the per-instance utilization target used when sizing
// LS replica counts for a workload's maximum request load: enough
// instances that each runs at ~65% busy at MaxQPS under solo conditions.
const DefaultLSRho = 0.65

// LSReplicasFor returns the replica count that keeps function f of w at
// DefaultLSRho utilization while serving qps requests per second solo.
func LSReplicasFor(w *workload.Workload, f int, qps float64) int {
	need := qps * w.Functions[f].BaseServiceMs / 1000 / DefaultLSRho
	n := int(math.Ceil(need))
	if n < 1 {
		n = 1
	}
	return n
}

// LoadFactor returns the deployment's per-instance load relative to the
// profiling reference (each instance at ~DefaultLSRho busy). With
// replicas autoscaled to the offered QPS the factor sits near 1; with
// replicas pinned at MaxQPS sizing it equals QPS/MaxQPS. The predictor
// scales the rate-like profile metrics by this factor.
func LoadFactor(d *Deployment) float64 {
	w := d.W
	if w.Class != workload.LS || w.MaxQPS <= 0 {
		return 1
	}
	frac := 0.0
	n := 0
	for f := range w.Functions {
		atMax := LSReplicasFor(w, f, w.MaxQPS)
		if atMax <= 0 {
			continue
		}
		frac += float64(d.Replicas[f]) / float64(atMax)
		n++
	}
	if n == 0 || frac == 0 {
		return 1
	}
	frac /= float64(n)
	lf := (d.QPS / w.MaxQPS) / frac
	if lf < 0 {
		lf = 0
	}
	if lf > 2 {
		lf = 2
	}
	return lf
}

// NewDeployment returns a deployment of w with every function on
// server 0, socket 0 — the maximal-overlap default the paper's
// colocation studies use. LS deployments are sized for the workload's
// MaxQPS and offered half that load; SC/BG deployments get the
// workload's instance count.
func NewDeployment(w *workload.Workload) *Deployment {
	n := len(w.Functions)
	d := &Deployment{
		W:         w,
		Placement: make([]int, n),
		Socket:    make([]int, n),
		Replicas:  make([]int, n),
	}
	for i := range d.Replicas {
		if w.Class == workload.LS {
			d.Replicas[i] = LSReplicasFor(w, i, w.MaxQPS)
		} else if w.Instances > 1 {
			d.Replicas[i] = w.Instances
		} else {
			d.Replicas[i] = 1
		}
	}
	if w.Class == workload.LS {
		d.QPS = w.MaxQPS / 2
	}
	return d
}

// SpreadDeployment returns a deployment of w whose functions are spread
// round-robin across the testbed's servers (and across sockets once the
// servers wrap) — the balancedResourceAllocation-style placement the
// paper's characterization experiments start from.
func SpreadDeployment(w *workload.Workload, tb *resources.Testbed) *Deployment {
	d := NewDeployment(w)
	s := tb.NumServers()
	for f := range d.Placement {
		d.Placement[f] = f % s
		sockets := max(1, tb.Servers[d.Placement[f]].Sockets)
		d.Socket[f] = (f / s) % sockets
	}
	return d
}

// Validate checks that the deployment's per-function slices are
// consistent with its workload and the testbed size.
func (d *Deployment) Validate(numServers int) error {
	n := len(d.W.Functions)
	if len(d.Placement) != n {
		return fmt.Errorf("deployment %q: placement length %d, want %d", d.W.Name, len(d.Placement), n)
	}
	if len(d.Socket) != n {
		return fmt.Errorf("deployment %q: socket length %d, want %d", d.W.Name, len(d.Socket), n)
	}
	if len(d.Replicas) != n {
		return fmt.Errorf("deployment %q: replicas length %d, want %d", d.W.Name, len(d.Replicas), n)
	}
	for f, s := range d.Placement {
		if s < 0 || s >= numServers {
			return fmt.Errorf("deployment %q: function %d on invalid server %d", d.W.Name, f, s)
		}
		if d.Replicas[f] < 1 {
			return fmt.Errorf("deployment %q: function %d has %d replicas", d.W.Name, f, d.Replicas[f])
		}
	}
	return nil
}

// Scenario is a set of colocated deployments to evaluate together.
type Scenario struct {
	Deployments []*Deployment
}

// Config holds the model's calibration constants. DefaultConfig returns
// values calibrated so that the paper's motivating experiments
// reproduce in shape (see DESIGN.md §3); tests pin the qualitative
// behaviours, not these numbers.
type Config struct {
	// Knee, Quad and Over parameterize per-resource pressure:
	// pressure(u) = Quad*(u-Knee)^2 for Knee<u<=1, and
	// Quad*(1-Knee)^2 + Over*(u-1) beyond capacity.
	Knee [resources.NumKinds]float64
	Quad [resources.NumKinds]float64
	Over [resources.NumKinds]float64

	// QueueFactor scales the p99 queueing term (ln(100) for M/M/1).
	QueueFactor float64
	// MaxRho caps utilization inside the stable-queue formulas.
	MaxRho float64
	// OverloadPenalty scales the latency blow-up past saturation.
	OverloadPenalty float64
	// ClosedLoopGamma damps the offered load when end-to-end latency
	// inflates — the restoring/propagation mechanism of Observations
	// 4 and 5.
	ClosedLoopGamma float64

	// Gateway model (§2.1 reason 2 and Figure 14).
	GatewayBaseMs     float64 // per-invocation gateway service time
	GatewayWorkers    float64 // gateway service concurrency
	GatewayKneeInst   float64 // instance count where forwarding degrades
	GatewayInstSlope  float64 // quadratic degradation past the knee
	GatewaySatFactor  float64 // queue-management cost of saturated functions
	IdleDemandFloor   float64 // idle fraction of an LS instance's demand
	FixedPointIters   int     // fixed-point iterations for the LS solve
	StepS             float64 // co-execution time step for SC scenarios
	MaxHorizonS       float64 // co-execution safety horizon
	NoiseIPC          float64 // measurement noise levels (lognormal rel)
	NoiseMean         float64
	NoiseP99          float64
	NoiseJCT          float64
	KneeIPCRatio      float64 // IPC/solo ratio below which tail latency decouples (Figure 7)
	BelowKneeP99Noise float64 // extra tail noise below the knee
}

// DefaultConfig returns the calibrated model constants.
func DefaultConfig() Config {
	c := Config{
		QueueFactor:       math.Log(100),
		MaxRho:            0.97,
		OverloadPenalty:   3.0,
		ClosedLoopGamma:   0.35,
		GatewayBaseMs:     0.25,
		GatewayWorkers:    8,
		GatewayKneeInst:   110,
		GatewayInstSlope:  40,
		GatewaySatFactor:  0.2,
		IdleDemandFloor:   0.05,
		FixedPointIters:   16,
		StepS:             2.0,
		MaxHorizonS:       4000,
		NoiseIPC:          0.012,
		NoiseMean:         0.03,
		NoiseP99:          0.05,
		NoiseJCT:          0.02,
		KneeIPCRatio:      0.75,
		BelowKneeP99Noise: 0.45,
	}
	c.Knee = [resources.NumKinds]float64{
		resources.CPU:     0.72,
		resources.Memory:  0.85,
		resources.LLC:     0.60,
		resources.MemBW:   0.65,
		resources.Network: 0.70,
		resources.Disk:    0.65,
	}
	// Quad/Over are calibrated so that 2x oversubscription of a
	// fully-sensitive function roughly halves its speed (fair-share
	// timesharing), with I/O resources penalized a little harder.
	c.Quad = [resources.NumKinds]float64{
		resources.CPU:     3,
		resources.Memory:  2,
		resources.LLC:     4,
		resources.MemBW:   4,
		resources.Network: 5,
		resources.Disk:    5,
	}
	c.Over = [resources.NumKinds]float64{
		resources.CPU:     1.0,
		resources.Memory:  2.0,
		resources.LLC:     1.5,
		resources.MemBW:   1.5,
		resources.Network: 3.0,
		resources.Disk:    3.0,
	}
	return c
}

// Partition reserves a fraction of a server's partitionable resources
// (CPU cores via cpusets, LLC ways via CAT, memory bandwidth via MBA)
// for the protected class. The unprotected class gets the remainder.
// Fractions outside (0,1) disable partitioning of that resource.
type Partition struct {
	CPUFrac   float64
	LLCFrac   float64
	MemBWFrac float64
}

// frac returns the protected fraction for kind k, or 0 when the
// resource is unpartitioned.
func (p Partition) frac(k resources.Kind) float64 {
	var f float64
	switch k {
	case resources.CPU:
		f = p.CPUFrac
	case resources.LLC:
		f = p.LLCFrac
	case resources.MemBW:
		f = p.MemBWFrac
	}
	if f <= 0 || f >= 1 {
		return 0
	}
	return f
}

// Model evaluates scenarios on a testbed.
type Model struct {
	Testbed *resources.Testbed
	Cfg     Config
	// Partitions holds per-server resource partitions (nil/absent =
	// fully shared, the default the paper's characterization uses:
	// "functions must share limited cores, memory bandwidth and LLC").
	Partitions map[int]Partition
	// capScale holds per-server capacity multipliers (fault injection:
	// a straggler node contends as if every resource were
	// proportionally smaller). Absent means nominal capacity.
	capScale map[int]float64
	// solvers pools LS fixed-point scratch for Evaluate, which may run
	// concurrently on one model (experiment worker pools). The Stepper
	// owns a private solver instead.
	solvers sync.Pool
}

// getSolver borrows solver scratch from the pool; putSolver returns it.
func (m *Model) getSolver() *lsSolver {
	if v := m.solvers.Get(); v != nil {
		return v.(*lsSolver)
	}
	return m.newSolver()
}

func (m *Model) putSolver(sv *lsSolver) { m.solvers.Put(sv) }

// SetCapacityScale multiplies server s's effective capacity by f in
// every contention domain; f == 1 (or f <= 0) clears the override.
// Like a partition, the scale applies to contention, not to the
// solo-run reference — so a workload on a straggler slows down even
// when it runs alone there.
func (m *Model) SetCapacityScale(s int, f float64) {
	if f == 1 || f <= 0 {
		delete(m.capScale, s)
		return
	}
	if m.capScale == nil {
		m.capScale = make(map[int]float64)
	}
	m.capScale[s] = f
}

// CapacityScale returns server s's current capacity multiplier.
func (m *Model) CapacityScale(s int) float64 {
	if f, ok := m.capScale[s]; ok {
		return f
	}
	return 1
}

// New returns a model of the given testbed with default calibration.
func New(tb *resources.Testbed) *Model {
	return &Model{Testbed: tb, Cfg: DefaultConfig()}
}

// SetPartition installs (or, with a zero Partition, clears) server s's
// resource partition.
func (m *Model) SetPartition(s int, p Partition) {
	if m.Partitions == nil {
		m.Partitions = make(map[int]Partition)
	}
	if p.frac(resources.CPU) == 0 && p.frac(resources.LLC) == 0 && p.frac(resources.MemBW) == 0 {
		delete(m.Partitions, s)
		return
	}
	m.Partitions[s] = p
}

// socketScoped reports whether a resource contends per CPU socket
// rather than per server.
func socketScoped(k resources.Kind) bool { return sockScopedTab[k] }

// sockScopedTab tabulates socketScoped so hot per-kind loops pay an
// array load instead of a switch.
var sockScopedTab = [resources.NumKinds]bool{
	resources.CPU: true, resources.LLC: true, resources.MemBW: true,
}

// demandStore accumulates resource demand per contention domain in a
// dense array — the allocation-free replacement for the former
// map[domainKey]resources.Vector. Slots are indexed by
// (server, socket+1, protected): socket index 0 is the server-wide
// domain (the old socket == -1 key), so ascending slot order is
// exactly the sorted (server asc, socket asc with -1 first, prot
// false-first) iteration order PR 2 fixed the demand fold to — an
// ascending walk reproduces the map-era float accumulation bit for
// bit. Untouched slots read as zero, like absent map keys; touched
// slots are tracked so reset is O(touched).
type demandStore struct {
	sockStride int // max sockets across the testbed + 1 ("-1" domain first)
	vecs       []resources.Vector
	touched    []bool
	dirty      []int32
}

func newDemandStore(tb *resources.Testbed) *demandStore {
	maxSock := 1
	for _, s := range tb.Servers {
		if s.Sockets > maxSock {
			maxSock = s.Sockets
		}
	}
	n := tb.NumServers() * (maxSock + 1) * 2
	return &demandStore{
		sockStride: maxSock + 1,
		vecs:       make([]resources.Vector, n),
		touched:    make([]bool, n),
		dirty:      make([]int32, 0, n),
	}
}

// slot maps a domain to its dense index, growing the socket stride in
// the (never observed) case of a socket id beyond the testbed's specs.
func (ds *demandStore) slot(server, socket int, prot bool) int {
	si := socket + 1
	if si >= ds.sockStride {
		ds.grow(si + 1)
	}
	idx := (server*ds.sockStride + si) * 2
	if prot {
		idx++
	}
	return idx
}

// grow re-strides the store for a larger socket count, remapping the
// touched slots.
func (ds *demandStore) grow(stride int) {
	old := *ds
	servers := len(old.vecs) / (old.sockStride * 2)
	n := servers * stride * 2
	ds.sockStride = stride
	ds.vecs = make([]resources.Vector, n)
	ds.touched = make([]bool, n)
	ds.dirty = make([]int32, 0, n)
	for _, i := range old.dirty {
		prot := int(i) & 1
		si := (int(i) / 2) % old.sockStride
		server := (int(i) / 2) / old.sockStride
		j := (server*stride+si)*2 + prot
		ds.vecs[j] = old.vecs[i]
		ds.touched[j] = true
		ds.dirty = append(ds.dirty, int32(j))
	}
}

// touch marks a slot live and returns it for accumulation.
func (ds *demandStore) touch(idx int) *resources.Vector {
	if !ds.touched[idx] {
		ds.touched[idx] = true
		ds.dirty = append(ds.dirty, int32(idx))
	}
	return &ds.vecs[idx]
}

// reset zeroes the touched slots, returning the store to empty.
func (ds *demandStore) reset() {
	for _, i := range ds.dirty {
		ds.vecs[i] = resources.Vector{}
		ds.touched[i] = false
	}
	ds.dirty = ds.dirty[:0]
}

// copyFrom assigns src's touched slots into ds (which must be freshly
// reset) — the dense analogue of copying a demand map key by key.
func (ds *demandStore) copyFrom(src *demandStore) {
	if src == nil {
		return
	}
	if ds.sockStride == src.sockStride {
		// Equal strides make the slot mapping the identity — same
		// slots, same dirty order, minus the div/mod remapping. The
		// fixed-point loop hits this every iteration (the store is
		// pre-grown to the background stride before the solve).
		for _, i := range src.dirty {
			*ds.touch(int(i)) = src.vecs[i]
		}
		return
	}
	for _, i := range src.dirty {
		prot := int(i)&1 == 1
		si := (int(i) / 2) % src.sockStride
		server := (int(i) / 2) / src.sockStride
		*ds.touch(ds.slot(server, si-1, prot)) = src.vecs[i]
	}
}

func (ds *demandStore) add(server, socket int, prot bool, v *resources.Vector) {
	ds.addAt(ds.slot(server, socket, prot), ds.slot(server, -1, prot), v)
}

// addAt is add with the two slot indices already resolved (hot loops
// precompute them per function via slowCtx).
func (ds *demandStore) addAt(ski, svi int, v *resources.Vector) {
	sk := ds.touch(ski)
	sv := ds.touch(svi)
	// Unrolled over the fixed Kind order (ascending, socket-scoped
	// kinds to the socket slot): the exact additions the generic
	// socketScoped loop performed, minus the per-kind branch.
	sk[resources.CPU] += v[resources.CPU]
	sv[resources.Memory] += v[resources.Memory]
	sk[resources.LLC] += v[resources.LLC]
	sk[resources.MemBW] += v[resources.MemBW]
	sv[resources.Network] += v[resources.Network]
	sv[resources.Disk] += v[resources.Disk]
}

// classAndTotal returns a domain's demand for one class and for both
// classes combined, for resource index k. Reads never grow or touch:
// unknown domains are zero, as with the map.
func (ds *demandStore) classAndTotal(server, socket int, prot bool, k int) (class, total float64) {
	si := socket + 1
	if si >= ds.sockStride {
		return 0, 0
	}
	base := (server*ds.sockStride + si) * 2
	p := 0
	if prot {
		p = 1
	}
	class = ds.vecs[base+p][k]
	total = class + ds.vecs[base+1-p][k]
	return class, total
}

// pressure returns the contention pressure for utilization u of kind k.
func (c *Config) pressure(k resources.Kind, u float64) float64 {
	knee := c.Knee[k]
	if u <= knee {
		return 0
	}
	if u <= 1 {
		d := u - knee
		return c.Quad[k] * d * d
	}
	d := 1 - knee
	return c.Quad[k]*d*d + c.Over[k]*(u-1)
}

// domainCapacity returns the capacity of kind k in the given domain of
// server spec.
func domainCapacity(spec resources.ServerSpec, k resources.Kind) float64 {
	cap := spec.Capacity[k]
	if socketScoped(k) {
		if k == resources.LLC {
			// The E7-4820v4 carries a full 25 MB LLC per socket.
			return cap
		}
		return cap / float64(max(1, spec.Sockets))
	}
	return cap
}

// computeScoped reports whether contention on the resource stalls the
// pipeline (lowering IPC) rather than just stretching I/O waits. CPU,
// LLC and memory-bandwidth contention reduce IPC; memory capacity,
// network and disk contention inflate service time while the processor
// keeps retiring instructions efficiently — which is why iperf barely
// moves corunners' IPC in Figure 3(a) yet still costs latency.
func computeScoped(k resources.Kind) bool {
	switch k {
	case resources.CPU, resources.LLC, resources.MemBW:
		return true
	}
	return false
}

// slowdown computes function f's interference slowdown given the total
// demand in its domains and its own contribution, split into a compute
// component (degrades IPC and service time) and an I/O component
// (degrades service time only). Own demand is subtracted through the
// convexity trick pressure(total)-pressure(own), so a solo-run function
// experiences exactly zero interference.
func (m *Model) slowdown(server, socket int, prot bool, total *demandStore, own *resources.Vector,
	sens *resources.Vector, sensScale float64) (sigmaCompute, sigmaIO float64) {

	spec := &m.Testbed.Servers[server]
	partition, hasPart := m.Partitions[server]
	capF, hasCapScale := m.capScale[server]
	// Dense-store slot bases for the two domains the function occupies:
	// socket-scoped kinds read (server, socket), the rest (server, -1).
	// Precomputing them here replaces a classAndTotal slot computation
	// per kind with two array reads; the loads and float adds are the
	// same ones classAndTotal performs, in the same order.
	stride := total.sockStride
	svBase := server * stride * 2
	skBase := -1
	if si := socket + 1; si < stride {
		skBase = (server*stride + si) * 2
	}
	p0 := 0
	if prot {
		p0 = 1
	}
	sockets := float64(max(1, spec.Sockets))
	sigmaCompute, sigmaIO = 1.0, 1.0
	for k := 0; k < int(resources.NumKinds); k++ {
		kind := resources.Kind(k)
		ss := socketScoped(kind)
		// Inlined domainCapacity(spec, kind): identical branches and
		// the identical division.
		cap := spec.Capacity[k]
		if ss && kind != resources.LLC {
			cap /= sockets
		}
		if cap <= 0 {
			continue
		}
		base := svBase
		if ss {
			base = skBase
		}
		var class, tot float64
		if base >= 0 {
			class = total.vecs[base+p0][k]
			tot = class + total.vecs[base+1-p0][k]
		}
		demand := tot
		// The solo-run reference was profiled at full capacity, so the
		// own-demand subtraction always uses the unpartitioned
		// capacity: a job squeezed into a small partition slows down
		// even alone in it.
		capSolo := cap
		if hasPart {
			// Partitioned resource: the function contends only with
			// its own class, inside its class's reserved capacity.
			if f := partition.frac(kind); f > 0 {
				demand = class
				if prot {
					cap *= f
				} else {
					cap *= 1 - f
				}
			}
		}
		// Straggler nodes (fault injection) shrink the contended
		// capacity the same way a partition does: uo above stays
		// relative to the full-capacity solo reference. The lookup is
		// hoisted out of the kind loop — same multiply, same spot.
		if hasCapScale {
			cap *= capF
		}
		u := demand / cap
		p := m.Cfg.pressure(kind, u)
		if p == 0 {
			// pressure(uo) >= 0, so p - pressure(uo) <= 0 and the
			// kind contributes nothing — skip the solo-side work.
			continue
		}
		p -= m.Cfg.pressure(kind, own[k]/capSolo)
		if p <= 0 {
			continue
		}
		if computeScoped(kind) {
			sigmaCompute += sens[k] * sensScale * p
		} else {
			sigmaIO += sens[k] * sensScale * p
		}
	}
	return sigmaCompute, sigmaIO
}

// slowCtx caches the per-(function placement) constants of slowdown:
// the dense-store slot indices its domains live at and the contended /
// solo-reference capacities per kind with partition and capacity-scale
// multipliers already folded in (in slowdown's exact multiply order).
// A context is valid for one solve: placement, partitions, capacity
// scales and the demand store's stride must not change underneath it.
type slowCtx struct {
	capEff    [resources.NumKinds]float64
	capSolo   [resources.NumKinds]float64
	classOnly [resources.NumKinds]bool
	skip      [resources.NumKinds]bool
	p0        int32 // protected-slot offset
	ski, svi  int32 // add() slot indices (socket-scoped / server-wide)

	// Compact copies of the function constants the fixed-point loop
	// reads every iteration, so the hot path walks this small array
	// instead of the full Function structs (copies are exact; the
	// arithmetic consuming them is unchanged).
	dem     resources.Vector // fn.Demand
	sens    resources.Vector // fn.Sensitivity
	repF    float64          // float64(d.Replicas[f]) — exact conversion
	rep1000 float64          // repF * 1000, the capacity numerator
	baseMs  float64          // fn.BaseServiceMs
	coldMs  float64          // fn.ColdStartMs
}

// buildSlowCtx fills cx for a function placed on (server, socket, prot).
// The slot() calls may grow ds; callers must pre-grow ds to its final
// stride before building a batch of contexts (grow remaps indices).
func (m *Model) buildSlowCtx(cx *slowCtx, ds *demandStore, server, socket int, prot bool) {
	spec := &m.Testbed.Servers[server]
	partition, hasPart := m.Partitions[server]
	capF, hasCapScale := m.capScale[server]
	ski := ds.slot(server, socket, prot)
	svi := ds.slot(server, -1, prot)
	cx.ski, cx.svi = int32(ski), int32(svi)
	cx.p0 = 0
	if prot {
		cx.p0 = 1
	}
	sockets := float64(max(1, spec.Sockets))
	for k := 0; k < int(resources.NumKinds); k++ {
		kind := resources.Kind(k)
		ss := socketScoped(kind)
		// domainCapacity(spec, kind), inlined: same branches, same
		// division.
		cap := spec.Capacity[k]
		if ss && kind != resources.LLC {
			cap /= sockets
		}
		cx.skip[k] = cap <= 0
		cx.capSolo[k] = cap
		cx.classOnly[k] = false
		if hasPart {
			if f := partition.frac(kind); f > 0 {
				cx.classOnly[k] = true
				if prot {
					cap *= f
				} else {
					cap *= 1 - f
				}
			}
		}
		if hasCapScale {
			cap *= capF
		}
		cx.capEff[k] = cap
	}
}

// slowdownCtx is slowdown with the placement-derived constants taken
// from a prebuilt context — the float operations and their order are
// identical, so it returns bit-identical results.
func (m *Model) slowdownCtx(cx *slowCtx, total *demandStore, own *resources.Vector,
	sens *resources.Vector, sensScale float64) (sigmaCompute, sigmaIO float64) {

	p0 := int(cx.p0)
	// The context's two domains span four store rows (socket/server ×
	// own-class/other-class). Hoisting the row pointers replaces the
	// per-kind base[k] indexing — the loads and the class+other add
	// are unchanged, in the same per-kind order.
	skBase := int(cx.ski) - p0
	svBase := int(cx.svi) - p0
	skC, skO := &total.vecs[skBase+p0], &total.vecs[skBase+1-p0]
	svC, svO := &total.vecs[svBase+p0], &total.vecs[svBase+1-p0]
	sigmaCompute, sigmaIO = 1.0, 1.0
	for k := 0; k < int(resources.NumKinds); k++ {
		if cx.skip[k] {
			continue
		}
		kind := resources.Kind(k)
		var class, tot float64
		if sockScopedTab[k] {
			class = skC[k]
			tot = class + skO[k]
		} else {
			class = svC[k]
			tot = class + svO[k]
		}
		demand := tot
		if cx.classOnly[k] {
			demand = class
		}
		u := demand / cx.capEff[k]
		p := m.Cfg.pressure(kind, u)
		if p == 0 {
			// pressure(uo) >= 0, so p - pressure(uo) <= 0 and the
			// kind contributes nothing — skip the solo-side work.
			continue
		}
		uo := own[k] / cx.capSolo[k]
		p -= m.Cfg.pressure(kind, uo)
		if p <= 0 {
			continue
		}
		if computeScoped(kind) {
			sigmaCompute += sens[k] * sensScale * p
		} else {
			sigmaIO += sens[k] * sensScale * p
		}
	}
	return sigmaCompute, sigmaIO
}

// totalSlowdown is the combined service-time stretch.
func totalSlowdown(sigmaCompute, sigmaIO float64) float64 {
	return sigmaCompute * sigmaIO
}

// resolveSocket returns the effective socket of function f of
// deployment d; auto (-1) spreads functions round-robin over the
// server's sockets.
func (m *Model) resolveSocket(d *Deployment, f int) int {
	s := d.Socket[f]
	if s >= 0 {
		return s
	}
	return f % max(1, m.Testbed.Servers[d.Placement[f]].Sockets)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
