package perfmodel

import (
	"math"
	"testing"

	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/workload"
)

func newModel() *Model { return New(resources.DefaultTestbed()) }

func evalOne(t *testing.T, m *Model, deps ...*Deployment) *Result {
	t.Helper()
	res, err := m.Evaluate(&Scenario{Deployments: deps}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPressureProperties(t *testing.T) {
	c := DefaultConfig()
	for k := 0; k < int(resources.NumKinds); k++ {
		kind := resources.Kind(k)
		if got := c.pressure(kind, 0); got != 0 {
			t.Fatalf("%v: pressure(0) = %v", kind, got)
		}
		if got := c.pressure(kind, c.Knee[k]); got != 0 {
			t.Fatalf("%v: pressure at knee = %v", kind, got)
		}
		// monotone non-decreasing
		prev := -1.0
		for u := 0.0; u < 3; u += 0.05 {
			p := c.pressure(kind, u)
			if p < prev {
				t.Fatalf("%v: pressure not monotone at u=%v", kind, u)
			}
			prev = p
		}
		// continuous at u=1
		below := c.pressure(kind, 1-1e-9)
		above := c.pressure(kind, 1+1e-9)
		if math.Abs(above-below) > 1e-6 {
			t.Fatalf("%v: pressure discontinuous at 1: %v vs %v", kind, below, above)
		}
	}
}

func TestSoloRunHasNoInterference(t *testing.T) {
	m := newModel()
	sn := workload.SocialNetwork()
	d := SpreadDeployment(sn, m.Testbed)
	d.QPS = 200
	res := evalOne(t, m, d)
	r := res.Deployments[0]
	for f, p := range r.PerFunc {
		// Functions may interfere with their own workload's other
		// functions when they share a socket; the spread placement
		// keeps them apart, so slowdowns must be ~1.
		if p.Slowdown > 1.02 {
			t.Errorf("function %d slowdown = %v under solo spread run", f, p.Slowdown)
		}
		want := sn.Functions[f].SoloIPC
		if math.Abs(p.IPC-want) > 0.02*want {
			t.Errorf("function %d IPC = %v, want solo %v", f, p.IPC, want)
		}
	}
	if r.EffQPS < 195 {
		t.Errorf("solo effective QPS = %v, want ~200", r.EffQPS)
	}
}

func TestInterferenceDegradesTarget(t *testing.T) {
	m := newModel()
	sn := workload.SocialNetwork()
	solo := SpreadDeployment(sn, m.Testbed)
	solo.QPS = 300
	base := evalOne(t, m, solo).Deployments[0]

	d := SpreadDeployment(sn, m.Testbed)
	d.QPS = 300
	c := NewDeployment(workload.MatMul())
	c.Placement[0] = d.Placement[8] // beside get-followers
	c.Socket[0] = d.Socket[8]
	res := evalOne(t, m, d, c).Deployments[0]

	if res.E2EP99Ms <= base.E2EP99Ms {
		t.Fatalf("colocated p99 %v not worse than solo %v", res.E2EP99Ms, base.E2EP99Ms)
	}
	if res.IPC >= base.IPC {
		t.Fatalf("colocated IPC %v not worse than solo %v", res.IPC, base.IPC)
	}
	if res.PerFunc[8].Slowdown <= 1.2 {
		t.Fatalf("get-followers slowdown = %v, want substantial", res.PerFunc[8].Slowdown)
	}
}

// TestVolatilityObservation1 checks Figure 3(a)'s two headline facts:
// iperf barely perturbs IPC while matmul does, and interference beside
// get-followers is far worse than beside compose-post.
func TestVolatilityObservation1(t *testing.T) {
	m := newModel()
	sn := workload.SocialNetwork()

	run := func(corunner *workload.Workload, fn int) DeploymentResult {
		d := SpreadDeployment(sn, m.Testbed)
		d.QPS = 300
		c := NewDeployment(corunner)
		c.Placement[0] = d.Placement[fn]
		c.Socket[0] = d.Socket[fn]
		return evalOne(t, m, d, c).Deployments[0]
	}

	solo := SpreadDeployment(sn, m.Testbed)
	solo.QPS = 300
	base := evalOne(t, m, solo).Deployments[0]

	mmEntry := run(workload.MatMul(), 0)
	mmFollow := run(workload.MatMul(), 8)
	ipFollow := run(workload.Iperf(), 8)

	// Spatial variation: matmul beside get-followers much worse than
	// beside compose-post (paper: 3x).
	degEntry := mmEntry.E2EP99Ms / base.E2EP99Ms
	degFollow := mmFollow.E2EP99Ms / base.E2EP99Ms
	if degFollow < 2*degEntry {
		t.Errorf("get-followers degradation %.2fx vs compose-post %.2fx; want >=2x gap", degFollow, degEntry)
	}
	// Volatility: iperf leaves IPC nearly intact, matmul does not.
	ipcDropMM := 1 - mmFollow.IPC/base.IPC
	ipcDropIP := 1 - ipFollow.IPC/base.IPC
	if ipcDropIP > 0.10 {
		t.Errorf("iperf IPC drop = %.1f%%, want small", 100*ipcDropIP)
	}
	if ipcDropMM < 2*ipcDropIP {
		t.Errorf("matmul IPC drop %.3f not clearly above iperf %.3f", ipcDropMM, ipcDropIP)
	}
}

// TestTemporalVariationObservation3 reproduces Figure 3(b): the LR JCT
// rises as KMeans' start delay slides its heavy phase onto LR's
// sensitive shuffle window, then falls once the overlap shrinks.
func TestTemporalVariationObservation3(t *testing.T) {
	m := newModel()
	jcts := make([]float64, 7)
	for g := 0; g < 7; g++ {
		lr := NewDeployment(workload.LogisticRegression())
		km := NewDeployment(workload.KMeans())
		km.StartDelayS = float64(g * 60)
		res := evalOne(t, m, lr, km)
		jcts[g] = res.Deployments[0].JCTS
	}
	peak, peakAt := jcts[0], 0
	for g, v := range jcts {
		if v > peak {
			peak, peakAt = v, g
		}
	}
	if peakAt < 2 || peakAt > 5 {
		t.Errorf("LR JCT peak at g%d (%v), want mid-delay peak: %v", peakAt+1, peak, jcts)
	}
	if jcts[6] >= jcts[0] {
		t.Errorf("largest delay should shrink the overlap: g7=%v >= g1=%v", jcts[6], jcts[0])
	}
	if peak/jcts[6] < 1.2 {
		t.Errorf("temporal variation too weak: peak %v vs g7 %v", peak, jcts[6])
	}
	// All colocations must be slower than the solo run.
	soloRes := evalOne(t, m, NewDeployment(workload.LogisticRegression()))
	solo := soloRes.Deployments[0].JCTS
	for g, v := range jcts {
		if v < solo {
			t.Errorf("g%d JCT %v below solo %v", g+1, v, solo)
		}
	}
}

// TestHotspotPropagationObservation4 reproduces Figure 4: interference
// at one function raises its own local tail latency while every other
// function's local latency drops (starved arrivals + damped closed
// loop).
func TestHotspotPropagationObservation4(t *testing.T) {
	m := newModel()
	sn := workload.SocialNetwork()
	base := SpreadDeployment(sn, m.Testbed)
	base.QPS = 300
	bres := evalOne(t, m, base).Deployments[0]

	for _, target := range []int{0, 5} {
		d := SpreadDeployment(sn, m.Testbed)
		d.QPS = 300
		c := NewDeployment(workload.MatMul())
		c.Placement[0] = d.Placement[target]
		c.Socket[0] = d.Socket[target]
		res := evalOne(t, m, d, c).Deployments[0]
		for f := range res.PerFunc {
			ratio := res.PerFunc[f].LocalP99Ms / bres.PerFunc[f].LocalP99Ms
			if f == target {
				if ratio < 1.5 {
					t.Errorf("target fn%d p99 ratio = %v, want substantial increase", f+1, ratio)
				}
			} else if ratio > 1.0 {
				t.Errorf("interference at fn%d: fn%d p99 ratio = %v, want relief (<1)", target+1, f+1, ratio)
			}
		}
	}
}

// TestRestoringPropagationObservation5 checks the local-control
// experiment: moving the corunner to another socket restores the
// interfered function and raises the others back toward baseline.
func TestRestoringPropagationObservation5(t *testing.T) {
	m := newModel()
	sn := workload.SocialNetwork()
	base := SpreadDeployment(sn, m.Testbed)
	base.QPS = 300
	bres := evalOne(t, m, base).Deployments[0]

	interfered := func(socket int) DeploymentResult {
		d := SpreadDeployment(sn, m.Testbed)
		d.QPS = 300
		c := NewDeployment(workload.MatMul())
		c.Placement[0] = d.Placement[0]
		c.Socket[0] = socket
		return evalOne(t, m, d, c).Deployments[0]
	}
	// Server 0 hosts compose-post on socket 0 and get-followers on
	// socket 1; socket 2 is the empty socket local control moves the
	// corunner to.
	with := interfered(0)
	control := interfered(2)

	// Local control restores the interfered function...
	if control.PerFunc[0].LocalP99Ms >= with.PerFunc[0].LocalP99Ms {
		t.Fatalf("local control did not restore fn1: %v vs %v",
			control.PerFunc[0].LocalP99Ms, with.PerFunc[0].LocalP99Ms)
	}
	if r := control.PerFunc[0].LocalP99Ms / bres.PerFunc[0].LocalP99Ms; r > 1.3 {
		t.Errorf("fn1 after control = %.2fx baseline, want near 1", r)
	}
	// ...and the other functions' latencies rise back (restored
	// invocation rate).
	for f := 1; f < len(control.PerFunc); f++ {
		if control.PerFunc[f].LocalP99Ms < with.PerFunc[f].LocalP99Ms {
			t.Errorf("fn%d latency should rise after control: %v -> %v",
				f+1, with.PerFunc[f].LocalP99Ms, control.PerFunc[f].LocalP99Ms)
		}
	}
	if control.EffQPS <= with.EffQPS {
		t.Errorf("control should restore invocation rate: %v -> %v", with.EffQPS, control.EffQPS)
	}
}

func TestNoiseDeterminismAndMagnitude(t *testing.T) {
	m := newModel()
	sn := workload.SocialNetwork()
	mk := func() *Scenario {
		d := SpreadDeployment(sn, m.Testbed)
		d.QPS = 300
		return &Scenario{Deployments: []*Deployment{d}}
	}
	a, err := m.Evaluate(mk(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Evaluate(mk(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Deployments[0].E2EP99Ms != b.Deployments[0].E2EP99Ms {
		t.Fatal("same seed must reproduce identical noise")
	}
	clean, err := m.Evaluate(mk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(a.Deployments[0].E2EP99Ms-clean.Deployments[0].E2EP99Ms) / clean.Deployments[0].E2EP99Ms
	if rel > 0.5 {
		t.Fatalf("noise perturbation = %v, implausibly large", rel)
	}
}

func TestEvaluateValidates(t *testing.T) {
	m := newModel()
	d := NewDeployment(workload.SocialNetwork())
	d.Placement[0] = 99
	if _, err := m.Evaluate(&Scenario{Deployments: []*Deployment{d}}, nil); err == nil {
		t.Fatal("invalid placement must error")
	}
	d2 := NewDeployment(workload.SocialNetwork())
	d2.Replicas[3] = 0
	if _, err := m.Evaluate(&Scenario{Deployments: []*Deployment{d2}}, nil); err == nil {
		t.Fatal("zero replicas must error")
	}
}

func TestTopoOrder(t *testing.T) {
	sn := workload.SocialNetwork()
	order := topoOrder(sn)
	if len(order) != 9 {
		t.Fatalf("topo order covers %d functions, want 9", len(order))
	}
	pos := make(map[int]int)
	for i, f := range order {
		pos[f] = i
	}
	for f, fn := range sn.Functions {
		for _, c := range fn.Calls {
			if pos[f] >= pos[c.Callee] {
				t.Fatalf("caller %d not before callee %d in %v", f, c.Callee, order)
			}
		}
	}
}

func TestSpreadDeployment(t *testing.T) {
	tb := resources.DefaultTestbed()
	sn := workload.SocialNetwork()
	d := SpreadDeployment(sn, tb)
	seen := map[int]bool{}
	for f := 0; f < 8; f++ {
		if seen[d.Placement[f]] {
			t.Fatalf("first 8 functions share server: %v", d.Placement[:8])
		}
		seen[d.Placement[f]] = true
	}
	// the 9th function wraps onto server 0 but a different socket
	if d.Placement[8] != 0 || d.Socket[8] == d.Socket[0] {
		t.Fatalf("fn9 placement (%d,%d) should wrap to server 0, new socket", d.Placement[8], d.Socket[8])
	}
}

func TestLSReplicasFor(t *testing.T) {
	sn := workload.SocialNetwork()
	n := LSReplicasFor(sn, 0, sn.MaxQPS)
	// 600 qps * 9 ms / 0.65 target = ~8.3 -> 9
	if n != 9 {
		t.Fatalf("compose-post replicas = %d, want 9", n)
	}
	if got := LSReplicasFor(sn, 0, 0); got != 1 {
		t.Fatalf("zero qps replicas = %d, want 1", got)
	}
}

func TestStageOf(t *testing.T) {
	w := workload.FeatureGeneration() // 3 sequential functions
	if fn, _ := stageOf(w, 0); fn != 0 {
		t.Fatalf("stage at p=0 -> %d", fn)
	}
	if fn, local := stageOf(w, 0.5); fn != 1 || local < 0.49 || local > 0.51 {
		t.Fatalf("stage at p=0.5 -> fn=%d local=%v", fn, local)
	}
	if fn, _ := stageOf(w, 0.99); fn != 2 {
		t.Fatalf("stage at p=0.99 -> %d", fn)
	}
	if fn, _ := stageOf(w, 1.0); fn != 2 {
		t.Fatalf("stage at p=1.0 should clamp, got %d", fn)
	}
	single := workload.MatMul()
	if fn, local := stageOf(single, 0.7); fn != 0 || local != 0.7 {
		t.Fatalf("single-function stage = %d/%v", fn, local)
	}
}

func TestSCOnlyScenario(t *testing.T) {
	m := newModel()
	mm := NewDeployment(workload.MatMul())
	res := evalOne(t, m, mm)
	jct := res.Deployments[0].JCTS
	// Solo matmul: JCT within one step of its solo duration.
	if math.Abs(jct-180) > 2*m.Cfg.StepS+1 {
		t.Fatalf("solo matmul JCT = %v, want ~180", jct)
	}
	if res.Deployments[0].IPC < 1.9 {
		t.Fatalf("solo matmul IPC = %v, want ~1.95", res.Deployments[0].IPC)
	}
}

func TestSCColocationSlowsBoth(t *testing.T) {
	m := newModel()
	a := NewDeployment(workload.MatMul())
	b := NewDeployment(workload.VideoProcessing())
	res := evalOne(t, m, a, b)
	if res.Deployments[0].JCTS <= 180 {
		t.Fatalf("colocated matmul JCT = %v, want > solo 180", res.Deployments[0].JCTS)
	}
	if res.Deployments[1].JCTS <= 240 {
		t.Fatalf("colocated video JCT = %v, want > solo 240", res.Deployments[1].JCTS)
	}
	// Separate servers: back to solo behaviour.
	b2 := NewDeployment(workload.VideoProcessing())
	b2.Placement[0] = 1
	res2 := evalOne(t, m, NewDeployment(workload.MatMul()), b2)
	if math.Abs(res2.Deployments[0].JCTS-180) > 2*m.Cfg.StepS+1 {
		t.Fatalf("separated matmul JCT = %v, want ~180", res2.Deployments[0].JCTS)
	}
}

func TestMixedLSSCScenario(t *testing.T) {
	m := newModel()
	sn := SpreadDeployment(workload.SocialNetwork(), m.Testbed)
	sn.QPS = 300
	mm := NewDeployment(workload.MatMul())
	mm.Placement[0] = sn.Placement[8]
	mm.Socket[0] = sn.Socket[8]
	res := evalOne(t, m, sn, mm)
	if res.Deployments[0].Class != workload.LS || res.Deployments[1].Class != workload.SC {
		t.Fatal("classes misreported")
	}
	if res.Deployments[0].E2EP99Ms <= 0 || res.Deployments[1].JCTS <= 0 {
		t.Fatal("mixed scenario produced empty results")
	}
	// The matmul should also run slower beside the LS workload.
	if res.Deployments[1].JCTS <= 180 {
		t.Errorf("matmul JCT beside LS = %v, want > solo", res.Deployments[1].JCTS)
	}
}

func TestGatewayDegradesPastKnee(t *testing.T) {
	m := newModel()
	sn := workload.SocialNetwork()
	run := func(extra int) float64 {
		d := SpreadDeployment(sn, m.Testbed)
		d.QPS = 300
		for i := range d.Replicas {
			d.Replicas[i] += extra
		}
		res := evalOne(t, m, d)
		return res.Deployments[0].E2EP99Ms
	}
	few := run(0)
	many := run(30) // ~270 extra instances, far past the 110 knee
	if many <= few {
		t.Fatalf("gateway should slow down with instance count: %v vs %v", few, many)
	}
}

func TestResultByName(t *testing.T) {
	m := newModel()
	res := evalOne(t, m, NewDeployment(workload.MatMul()))
	if res.ByName("matmul") == nil {
		t.Fatal("ByName failed to find matmul")
	}
	if res.ByName("nope") != nil {
		t.Fatal("ByName found a ghost")
	}
}

func TestDeploymentString(t *testing.T) {
	m := newModel()
	res := evalOne(t, m, NewDeployment(workload.MatMul()))
	if s := res.Deployments[0].String(); s == "" {
		t.Fatal("empty String()")
	}
}
