package perfmodel

import (
	"fmt"

	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/workload"
)

// Stepper advances a mutable scenario through time: LS deployments can
// be added, resized and re-placed while SC/BG jobs arrive and complete.
// It is the ground-truth engine under the platform simulation (§6.3's
// trace-driven scheduling study), reusing the same contention model as
// Evaluate.
type Stepper struct {
	m      *Model
	now    float64
	ls     []*Deployment
	lsRefs []float64
	dirty  bool
	sc     []*scRun
	nextID int

	// Per-step scratch: the solver, the SC background demand store,
	// the active-job list and the report are all reused, so a
	// steady-state Step allocates nothing. The returned *StepReport is
	// valid until the next Step call.
	sv      *lsSolver
	bg      *demandStore
	actives []scActiveJob
	rep     StepReport
}

// scActiveJob is the per-step record of one running SC/BG job.
type scActiveJob struct {
	run *scRun
	fn  int
	ph  workload.Phase
	ex  resources.Vector
}

// scRun tracks one running SC/BG job.
type scRun struct {
	id       int
	dep      *Deployment
	started  float64
	progress float64
	done     bool
}

// CompletedJob reports a finished SC/BG job.
type CompletedJob struct {
	ID   int
	Name string
	JCTS float64
}

// StepReport is the outcome of one Step.
type StepReport struct {
	Now       float64
	LS        []LSResult // aligned with LSDeployments()
	Completed []CompletedJob
	ActiveSC  int
	// ServerDemand[s] is the total resource demand exerted on server s
	// during the step (socket domains folded in) — the utilization
	// ground truth behind Figure 11(b).
	ServerDemand []resources.Vector
}

// NewStepper returns an empty stepper over the model's testbed.
func (m *Model) NewStepper() *Stepper {
	return &Stepper{m: m, dirty: true, sv: m.newSolver(), bg: newDemandStore(m.Testbed)}
}

// Now returns the current simulation time in seconds.
func (st *Stepper) Now() float64 { return st.now }

// AddLS registers a latency-sensitive deployment.
func (st *Stepper) AddLS(d *Deployment) error {
	if d.W.Class != workload.LS {
		return fmt.Errorf("perfmodel: AddLS on %v workload", d.W.Class)
	}
	if err := d.Validate(st.m.Testbed.NumServers()); err != nil {
		return err
	}
	st.ls = append(st.ls, d)
	st.dirty = true
	return nil
}

// RemoveLS removes the named LS deployment.
func (st *Stepper) RemoveLS(name string) bool {
	for i, d := range st.ls {
		if d.W.Name == name {
			st.ls = append(st.ls[:i], st.ls[i+1:]...)
			st.dirty = true
			return true
		}
	}
	return false
}

// LSDeployments exposes the registered LS deployments; callers may
// mutate QPS, Replicas and Placement but must call MarkDirty afterwards
// when placement or replica counts change.
func (st *Stepper) LSDeployments() []*Deployment { return st.ls }

// MarkDirty forces recomputation of the no-interference references
// (needed after placement or replica changes).
func (st *Stepper) MarkDirty() { st.dirty = true }

// AddSC starts an SC/BG job now and returns its id.
func (st *Stepper) AddSC(d *Deployment) (int, error) {
	if d.W.Class == workload.LS {
		return 0, fmt.Errorf("perfmodel: AddSC on LS workload")
	}
	if err := d.Validate(st.m.Testbed.NumServers()); err != nil {
		return 0, err
	}
	st.nextID++
	st.sc = append(st.sc, &scRun{id: st.nextID, dep: d, started: st.now})
	return st.nextID, nil
}

// ActiveSC returns the number of running SC/BG jobs.
func (st *Stepper) ActiveSC() int {
	n := 0
	for _, r := range st.sc {
		if !r.done {
			n++
		}
	}
	return n
}

// SCRunState is one running SC/BG job's checkpoint form; jobs are
// identified by the id AddSC returned.
type SCRunState struct {
	ID       int     `json:"id"`
	StartedS float64 `json:"started_s"`
	Progress float64 `json:"progress"`
}

// StepperState is the stepper's checkpoint form. LSRefs is serialized
// verbatim rather than recomputed on restore: the no-interference
// references are only refreshed when the dirty flag is set, so a
// resumed run recomputing them eagerly (under the current QPS instead
// of the QPS at the last MarkDirty) would diverge from the
// uninterrupted run.
type StepperState struct {
	NowS   float64      `json:"now_s"`
	NextID int          `json:"next_id"`
	Dirty  bool         `json:"dirty"`
	LSRefs []float64    `json:"ls_refs"`
	SC     []SCRunState `json:"sc"`
}

// ExportState snapshots the stepper's time, reference and job state.
// The LS deployments themselves are owned (and checkpointed) by the
// caller, which re-registers them via AddLS before RestoreState.
func (st *Stepper) ExportState() StepperState {
	out := StepperState{
		NowS:   st.now,
		NextID: st.nextID,
		Dirty:  st.dirty,
		LSRefs: append([]float64(nil), st.lsRefs...),
	}
	for _, run := range st.sc {
		if run.done {
			continue
		}
		out.SC = append(out.SC, SCRunState{ID: run.id, StartedS: run.started, Progress: run.progress})
	}
	return out
}

// RestoreState restores an ExportState snapshot. deps maps each job id
// to its (already restored) deployment; the caller must have AddLS'd
// the LS deployments in their original order first, so LSRefs lines up.
func (st *Stepper) RestoreState(s StepperState, deps map[int]*Deployment) error {
	if !s.Dirty && len(s.LSRefs) != len(st.ls) {
		return fmt.Errorf("perfmodel: stepper state has %d LS refs for %d deployments", len(s.LSRefs), len(st.ls))
	}
	runs := make([]*scRun, len(s.SC))
	for i, r := range s.SC {
		dep, ok := deps[r.ID]
		if !ok {
			return fmt.Errorf("perfmodel: stepper state job %d has no deployment", r.ID)
		}
		if r.ID > s.NextID {
			return fmt.Errorf("perfmodel: stepper state job id %d beyond next id %d", r.ID, s.NextID)
		}
		runs[i] = &scRun{id: r.ID, dep: dep, started: r.StartedS, progress: r.Progress}
	}
	st.now = s.NowS
	st.nextID = s.NextID
	st.dirty = s.Dirty
	st.lsRefs = append(st.lsRefs[:0], s.LSRefs...)
	st.sc = runs
	return nil
}

// Step advances the scenario by dt seconds and reports the LS QoS over
// the step plus any jobs that completed. A non-nil rnd adds measurement
// noise to the reported (not internal) values. The returned report and
// everything it references are scratch owned by the stepper, valid
// until the next Step call.
func (st *Stepper) Step(dt float64, rnd *rng.Rand) *StepReport {
	if st.dirty {
		st.lsRefs = st.m.idealRefsInto(st.sv, st.lsRefs[:0], st.ls)
		st.dirty = false
	}
	rep := &st.rep
	*rep = StepReport{
		Now:          st.now + dt,
		Completed:    rep.Completed[:0],
		ServerDemand: rep.ServerDemand,
	}

	// Demand from active SC jobs.
	bg := st.bg
	bg.reset()
	st.actives = st.actives[:0]
	extraInstances := 0
	for _, run := range st.sc {
		if run.done {
			continue
		}
		rep.ActiveSC++
		fn, ph, ex := scDemand(&scState{dep: run.dep, progress: run.progress})
		bg.add(run.dep.Placement[fn], st.m.resolveSocket(run.dep, fn), run.dep.Protected, &ex)
		st.actives = append(st.actives, scActiveJob{run, fn, ph, ex})
		for _, r := range run.dep.Replicas {
			extraInstances += r
		}
	}

	// LS solve against that background.
	var demand *demandStore
	if len(st.ls) > 0 {
		sol := st.m.solveLSWithRefs(st.sv, st.ls, bg, extraInstances, false, st.lsRefs)
		demand = sol.demand
		rep.LS = sol.results
		if rnd != nil {
			for i := range rep.LS {
				r := &rep.LS[i]
				r.IPC = rnd.Jitter(r.IPC, st.m.Cfg.NoiseIPC)
				r.E2EMeanMs = rnd.Jitter(r.E2EMeanMs, st.m.Cfg.NoiseMean)
				r.E2EP99Ms = rnd.Jitter(r.E2EP99Ms, st.m.Cfg.NoiseP99)
			}
		}
	} else {
		demand = bg
	}

	// Aggregate per-server demand for utilization reporting. The dense
	// store's ascending slot order IS the sorted domain order (server
	// asc, socket asc with the server-wide domain first, unprotected
	// before protected), so a linear walk folds the demand in the same
	// fixed order the map-era sort produced — float addition is not
	// associative, and untouched slots contribute exact zeros.
	rep.ServerDemand = resizeVec(rep.ServerDemand, st.m.Testbed.NumServers())
	for i := range rep.ServerDemand {
		rep.ServerDemand[i] = resources.Vector{}
	}
	stride2 := demand.sockStride * 2
	for idx := range demand.vecs {
		v := &demand.vecs[idx]
		server := idx / stride2
		serverWide := (idx/2)%demand.sockStride == 0
		cur := &rep.ServerDemand[server]
		for k := 0; k < int(resources.NumKinds); k++ {
			if socketScoped(resources.Kind(k)) != serverWide {
				cur[k] += v[k]
			}
		}
	}

	// Advance SC jobs.
	for _, a := range st.actives {
		d := a.run.dep
		fn := &d.W.Functions[a.fn]
		sc, sio := st.m.slowdown(d.Placement[a.fn], st.m.resolveSocket(d, a.fn),
			d.Protected, demand, &a.ex, &fn.Sensitivity, a.ph.SensScale)
		sigma := totalSlowdown(sc, sio)
		a.run.progress += dt / (d.W.SoloDurationS * sigma)
		if a.run.progress >= 1 {
			a.run.done = true
			jct := st.now + dt - a.run.started
			if rnd != nil {
				jct = rnd.Jitter(jct, st.m.Cfg.NoiseJCT)
			}
			rep.Completed = append(rep.Completed, CompletedJob{
				ID: a.run.id, Name: d.W.Name, JCTS: jct,
			})
		}
	}
	// Garbage-collect completed runs.
	alive := st.sc[:0]
	for _, run := range st.sc {
		if !run.done {
			alive = append(alive, run)
		}
	}
	st.sc = alive

	st.now += dt
	return rep
}
