package perfmodel

import (
	"math"

	"gsight/internal/resources"
	"gsight/internal/workload"
)

// FuncPerf is the modelled steady-state behaviour of one function of an
// LS workload.
type FuncPerf struct {
	Name        string
	IPC         float64 // instructions per cycle under the colocation
	Slowdown    float64 // service-time stretch from interference
	LocalMeanMs float64 // per-invocation latency incl. gateway + queueing
	LocalP99Ms  float64
	ArrivalQPS  float64 // effective invocation rate after throttling
	Rho         float64 // per-instance utilization
}

// lsState is the mutable fixed-point state of one LS deployment.
type lsState struct {
	dep     *Deployment
	effQPS  float64 // closed-loop damped offered load
	refE2E  float64 // ideal (no-interference) end-to-end mean, for damping
	arrival []float64
	rho     []float64
	sigma   []float64 // total service-time stretch
	sigmaC  []float64 // compute component (drives IPC)
	svcMs   []float64
	exerted []resources.Vector // per-function total exerted demand
}

// lsSolveResult carries the per-deployment outputs of one LS solve plus
// the demand the LS functions exert (needed by the SC co-execution).
type lsSolveResult struct {
	results []LSResult
	demand  demandMap
}

// LSResult is the modelled QoS of one LS deployment.
type LSResult struct {
	EffQPS        float64
	IPC           float64
	E2EMeanMs     float64
	E2EP99Ms      float64
	GatewayMeanMs float64
	PerFunc       []FuncPerf
}

// idealRefs returns each deployment's no-interference end-to-end mean,
// the reference for closed-loop damping. Callers that solve repeatedly
// (the SC co-execution) compute these once and pass them to solveLS.
func (m *Model) idealRefs(deps []*Deployment) []float64 {
	refs := make([]float64, len(deps))
	for i, d := range deps {
		sol := m.solveLSWithRefs([]*Deployment{d}, nil, 0, true, nil)
		refs[i] = sol.results[0].E2EMeanMs
	}
	return refs
}

// solveLS runs the coupled fixed point for all LS deployments against a
// background demand map (from SC/BG jobs). When ideal is true the solve
// models each deployment alone on an empty cluster with interference
// disabled — the reference used by the closed-loop damping and by SLA
// definitions (§6.3).
func (m *Model) solveLS(deps []*Deployment, bg demandMap, extraInstances int, ideal bool) lsSolveResult {
	var refs []float64
	if !ideal {
		refs = m.idealRefs(deps)
	}
	return m.solveLSWithRefs(deps, bg, extraInstances, ideal, refs)
}

// solveLSWithRefs is solveLS with precomputed ideal references.
func (m *Model) solveLSWithRefs(deps []*Deployment, bg demandMap, extraInstances int, ideal bool, refs []float64) lsSolveResult {
	states := make([]*lsState, len(deps))
	for i, d := range deps {
		n := len(d.W.Functions)
		st := &lsState{
			dep:     d,
			effQPS:  d.QPS,
			arrival: make([]float64, n),
			rho:     make([]float64, n),
			sigma:   make([]float64, n),
			sigmaC:  make([]float64, n),
			svcMs:   make([]float64, n),
			exerted: make([]resources.Vector, n),
		}
		for f := range st.rho {
			st.rho[f] = 0.5
			st.sigma[f] = 1
			st.sigmaC[f] = 1
			st.svcMs[f] = d.W.Functions[f].BaseServiceMs
		}
		states[i] = st
	}
	if refs != nil {
		for i := range states {
			states[i].refE2E = refs[i]
		}
	}

	totalInstances := extraInstances
	for _, d := range deps {
		for _, r := range d.Replicas {
			totalInstances += r
		}
	}

	var gwMean, gwP99 float64
	demand := demandMap{}
	for iter := 0; iter < m.Cfg.FixedPointIters; iter++ {
		// 1. Exerted demand per function, scaled by utilization.
		demand = demandMap{}
		for k, v := range bg {
			demand[k] = v
		}
		for _, st := range states {
			d := st.dep
			for f := range d.W.Functions {
				fn := &d.W.Functions[f]
				level := m.Cfg.IdleDemandFloor + (1-m.Cfg.IdleDemandFloor)*clamp01(st.rho[f])
				ex := fn.Demand.Scale(level * float64(d.Replicas[f]))
				st.exerted[f] = ex
				demand.add(d.Placement[f], m.resolveSocket(d, f), d.Protected, ex)
			}
		}

		// 2. Interference slowdowns and service times.
		for _, st := range states {
			d := st.dep
			for f := range d.W.Functions {
				fn := &d.W.Functions[f]
				sc, sio := 1.0, 1.0
				if !ideal {
					sc, sio = m.slowdown(d.Placement[f], m.resolveSocket(d, f),
						d.Protected, demand, st.exerted[f], fn.Sensitivity, 1)
				}
				st.sigmaC[f] = sc
				st.sigma[f] = totalSlowdown(sc, sio)
				st.svcMs[f] = fn.BaseServiceMs * st.sigma[f]
				if d.ColdStartFrac > 0 {
					// Cold invocations pay the startup latency (§5.2).
					st.svcMs[f] += fn.ColdStartMs * d.ColdStartFrac
				}
			}
		}

		// 3. Arrival propagation with saturation throttling.
		for _, st := range states {
			m.propagateArrivals(st)
		}

		// 4. Gateway load.
		gwMean, gwP99 = m.gateway(states, totalInstances, ideal)

		// 5. Utilizations and closed-loop damping. Both are relaxed
		// toward their new values so the fixed point converges
		// instead of oscillating between high- and low-pressure
		// states.
		const relax = 0.5
		for _, st := range states {
			d := st.dep
			for f := range d.W.Functions {
				if st.svcMs[f] <= 0 {
					st.rho[f] = 0
					continue
				}
				cap := float64(d.Replicas[f]) * 1000 / st.svcMs[f]
				st.rho[f] += relax * (st.arrival[f]/cap - st.rho[f])
			}
			if !ideal && st.refE2E > 0 {
				e2e, _ := m.composeE2E(st, gwMean, gwP99)
				excess := e2e/st.refE2E - 1
				if excess < 0 {
					excess = 0
				}
				target := st.dep.QPS / (1 + m.Cfg.ClosedLoopGamma*excess)
				st.effQPS += relax * (target - st.effQPS)
			}
		}
	}

	out := lsSolveResult{demand: demand}
	for _, st := range states {
		out.results = append(out.results, m.finishLS(st, gwMean, gwP99))
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// propagateArrivals walks the call DAG from the entry, throttling each
// callee's arrival rate by its caller's effective throughput — the
// mechanism of the paper's hotspot propagation (Observation 4): a
// saturated function starves its downstream functions, whose local
// latency therefore *drops*.
func (m *Model) propagateArrivals(st *lsState) {
	d := st.dep
	n := len(d.W.Functions)
	for f := 0; f < n; f++ {
		st.arrival[f] = 0
	}
	order := topoOrder(d.W)
	st.arrival[d.W.Entry] = st.effQPS
	for _, f := range order {
		lambda := st.arrival[f]
		cap := float64(d.Replicas[f]) * 1000 / st.svcMs[f]
		through := lambda
		if limit := 0.99 * cap; through > limit {
			through = limit
		}
		for _, c := range d.W.Functions[f].Calls {
			st.arrival[c.Callee] += through
		}
	}
}

// topoOrder returns the functions reachable from the entry in
// topological order (callers before callees).
func topoOrder(w *workload.Workload) []int {
	visited := make([]bool, len(w.Functions))
	var order []int
	var visit func(i int)
	visit = func(i int) {
		if visited[i] {
			return
		}
		visited[i] = true
		for _, c := range w.Functions[i].Calls {
			visit(c.Callee)
		}
		order = append(order, i)
	}
	visit(w.Entry)
	// reverse post-order = topological order
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// gateway models the shared OpenFaaS-style frontend: every invocation
// passes through it; its service time degrades past ~110 instances
// (Figure 14) and when it must manage the waiting queues of saturated
// functions (§2.1, the second propagation mechanism).
func (m *Model) gateway(states []*lsState, totalInstances int, ideal bool) (meanMs, p99Ms float64) {
	c := &m.Cfg
	var totalArrival, satLoad float64
	for _, st := range states {
		for f := range st.arrival {
			totalArrival += st.arrival[f]
			over := (st.rho[f] - 0.9) / 0.1
			satLoad += st.arrival[f] * clamp01(over)
		}
	}
	if totalArrival <= 0 {
		return c.GatewayBaseMs, c.GatewayBaseMs
	}
	svc := c.GatewayBaseMs
	if !ideal {
		if ex := (float64(totalInstances) - c.GatewayKneeInst) / c.GatewayInstSlope; ex > 0 {
			svc *= 1 + ex*ex
		}
		svc *= 1 + c.GatewaySatFactor*(satLoad/totalArrival)
	}
	rho := totalArrival * svc / 1000 / c.GatewayWorkers
	if rho > c.MaxRho {
		rho = c.MaxRho
	}
	meanMs = svc / (1 - rho)
	p99Ms = svc * (1 + c.QueueFactor*rho/(1-rho))
	return meanMs, p99Ms
}

// localMean returns function f's local mean latency: gateway wait plus
// M/M/1-style sojourn with an overload penalty.
func (m *Model) localMean(st *lsState, f int, gwMean float64) float64 {
	c := &m.Cfg
	rho := st.rho[f]
	rhat := rho
	if rhat > c.MaxRho {
		rhat = c.MaxRho
	}
	lat := st.svcMs[f] / (1 - rhat)
	if over := rho - 1; over > 0 {
		lat *= 1 + c.OverloadPenalty*over
	}
	return gwMean + lat
}

// localP99 returns function f's local 99th-percentile latency.
func (m *Model) localP99(st *lsState, f int, gwP99 float64) float64 {
	c := &m.Cfg
	rho := st.rho[f]
	rhat := rho
	if rhat > c.MaxRho {
		rhat = c.MaxRho
	}
	lat := st.svcMs[f] * (1 + c.QueueFactor*rhat/(1-rhat))
	if over := rho - 1; over > 0 {
		lat *= 1 + c.OverloadPenalty*over
	}
	return gwP99 + lat
}

// pathStats carries the mean latency and squared tail excess
// accumulated along a call path.
type pathStats struct {
	mean float64
	te2  float64 // sum of squared (p99 - mean) tail excesses
}

// composeE2E folds local latencies over the DAG: nested and sequence
// subtrees both extend the caller's end-to-end latency; async calls do
// not (they are the paper's non-critical path). Means add along the
// path; tail excesses compose in quadrature (independent stage tails),
// so the end-to-end p99 is mean + sqrt(sum of squared excesses).
func (m *Model) composeE2E(st *lsState, gwMean, gwP99 float64) (meanMs, p99Ms float64) {
	w := st.dep.W
	memo := make(map[int]pathStats)
	var e2e func(f int) pathStats
	e2e = func(f int) pathStats {
		if v, ok := memo[f]; ok {
			return v
		}
		var maxNested, maxSeq pathStats
		for _, c := range w.Functions[f].Calls {
			switch c.Mode {
			case workload.Nested:
				if v := e2e(c.Callee); v.mean > maxNested.mean {
					maxNested = v
				}
			case workload.Sequence:
				if v := e2e(c.Callee); v.mean > maxSeq.mean {
					maxSeq = v
				}
			}
		}
		mean := m.localMean(st, f, gwMean)
		te := m.localP99(st, f, gwP99) - mean
		v := pathStats{
			mean: mean + maxNested.mean + maxSeq.mean,
			te2:  te*te + maxNested.te2 + maxSeq.te2,
		}
		memo[f] = v
		return v
	}
	s := e2e(w.Entry)
	te := 0.0
	if s.te2 > 0 {
		te = math.Sqrt(s.te2)
	}
	return s.mean, s.mean + te
}

// finishLS assembles the LSResult from a converged state.
func (m *Model) finishLS(st *lsState, gwMean, gwP99 float64) LSResult {
	d := st.dep
	res := LSResult{
		EffQPS:        st.effQPS,
		GatewayMeanMs: gwMean,
		PerFunc:       make([]FuncPerf, len(d.W.Functions)),
	}
	var ipcSum, wSum float64
	// Cold-start executions run with cold caches: the startup phase
	// retires instructions inefficiently, dragging the observed IPC.
	coldPenalty := 1 + 0.5*d.ColdStartFrac
	for f := range d.W.Functions {
		fn := &d.W.Functions[f]
		ipc := fn.SoloIPC / (st.sigmaC[f] * coldPenalty)
		res.PerFunc[f] = FuncPerf{
			Name:        fn.Name,
			IPC:         ipc,
			Slowdown:    st.sigma[f],
			LocalMeanMs: m.localMean(st, f, gwMean),
			LocalP99Ms:  m.localP99(st, f, gwP99),
			ArrivalQPS:  st.arrival[f],
			Rho:         st.rho[f],
		}
		w := fn.Demand[resources.CPU]
		ipcSum += ipc * w
		wSum += w
	}
	if wSum > 0 {
		res.IPC = ipcSum / wSum
	}
	res.E2EMeanMs, res.E2EP99Ms = m.composeE2E(st, gwMean, gwP99)
	return res
}
