package perfmodel

import (
	"math"

	"gsight/internal/resources"
	"gsight/internal/workload"
)

// FuncPerf is the modelled steady-state behaviour of one function of an
// LS workload.
type FuncPerf struct {
	Name        string
	IPC         float64 // instructions per cycle under the colocation
	Slowdown    float64 // service-time stretch from interference
	LocalMeanMs float64 // per-invocation latency incl. gateway + queueing
	LocalP99Ms  float64
	ArrivalQPS  float64 // effective invocation rate after throttling
	Rho         float64 // per-instance utilization
}

// lsState is the mutable fixed-point state of one LS deployment.
type lsState struct {
	dep     *Deployment
	effQPS  float64 // closed-loop damped offered load
	refE2E  float64 // ideal (no-interference) end-to-end mean, for damping
	topo    []int   // call-DAG topological order, fixed for the solve
	reach   []bool  // sync-reachable closure of the entry, fixed for the solve
	arrival []float64
	rho     []float64
	sigma   []float64 // total service-time stretch
	sigmaC  []float64 // compute component (drives IPC)
	svcMs   []float64
	exerted []resources.Vector // per-function total exerted demand
	sctx    []slowCtx          // per-function slowdown constants, fixed per solve
	perFunc []FuncPerf         // backing storage for the result's PerFunc
}

// lsSolver is the reusable scratch of the LS fixed point: states,
// demand store, DAG walks and result buffers all live here so repeated
// solves (every platform step) allocate nothing. A solver is owned by
// one caller at a time — the Stepper keeps its own; Evaluate borrows
// one from the model's pool. Results returned from a solve alias the
// solver's buffers and stay valid only until its next solve.
type lsSolver struct {
	states  []lsState
	demand  *demandStore
	visited []bool
	memo    []pathStats
	results []LSResult
	refs    []float64
	depBuf  [1]*Deployment
}

func (m *Model) newSolver() *lsSolver {
	return &lsSolver{demand: newDemandStore(m.Testbed)}
}

// lsSolveResult carries the per-deployment outputs of one LS solve plus
// the demand the LS functions exert (needed by the SC co-execution).
// Both alias solver scratch: consume before the solver's next solve.
type lsSolveResult struct {
	results []LSResult
	demand  *demandStore
}

// LSResult is the modelled QoS of one LS deployment.
type LSResult struct {
	EffQPS        float64
	IPC           float64
	E2EMeanMs     float64
	E2EP99Ms      float64
	GatewayMeanMs float64
	PerFunc       []FuncPerf
}

// idealRefsInto computes each deployment's no-interference end-to-end
// mean — the reference for closed-loop damping — into dst. Callers
// that solve repeatedly (the stepper, the SC co-execution) compute
// these once and pass them to solveLSWithRefs.
func (m *Model) idealRefsInto(sv *lsSolver, dst []float64, deps []*Deployment) []float64 {
	dst = resizeF64(dst, len(deps))
	for i, d := range deps {
		sv.depBuf[0] = d
		sol := m.solveLSWithRefs(sv, sv.depBuf[:1], nil, 0, true, nil)
		dst[i] = sol.results[0].E2EMeanMs
	}
	return dst
}

// solveLS runs the coupled fixed point for all LS deployments against a
// background demand store (from SC/BG jobs). When ideal is true the
// solve models each deployment alone on an empty cluster with
// interference disabled — the reference used by the closed-loop damping
// and by SLA definitions (§6.3).
func (m *Model) solveLS(sv *lsSolver, deps []*Deployment, bg *demandStore, extraInstances int, ideal bool) lsSolveResult {
	var refs []float64
	if !ideal {
		sv.refs = m.idealRefsInto(sv, sv.refs[:0], deps)
		refs = sv.refs
	}
	return m.solveLSWithRefs(sv, deps, bg, extraInstances, ideal, refs)
}

// solveLSWithRefs is solveLS with precomputed ideal references.
func (m *Model) solveLSWithRefs(sv *lsSolver, deps []*Deployment, bg *demandStore, extraInstances int, ideal bool, refs []float64) lsSolveResult {
	if cap(sv.states) < len(deps) {
		sv.states = append(sv.states[:cap(sv.states)], make([]lsState, len(deps)-cap(sv.states))...)
	}
	sv.states = sv.states[:len(deps)]
	for i, d := range deps {
		n := len(d.W.Functions)
		st := &sv.states[i]
		st.dep = d
		st.effQPS = d.QPS
		st.refE2E = 0
		st.topo = sv.topoInto(st.topo[:0], d.W)
		// The sync-reachable closure of the entry (Nested/Sequence
		// edges only) is pure topology — computed once here so the
		// per-iteration composeE2E calls don't re-derive it. The topo
		// order lists callers before callees, so one forward pass
		// closes the set.
		if cap(st.reach) < n {
			st.reach = make([]bool, n)
		}
		st.reach = st.reach[:n]
		for f := range st.reach {
			st.reach[f] = false
		}
		st.reach[d.W.Entry] = true
		for _, f := range st.topo {
			if !st.reach[f] {
				continue
			}
			for _, c := range d.W.Functions[f].Calls {
				if c.Mode == workload.Nested || c.Mode == workload.Sequence {
					st.reach[c.Callee] = true
				}
			}
		}
		st.arrival = resizeF64(st.arrival, n)
		st.rho = resizeF64(st.rho, n)
		st.sigma = resizeF64(st.sigma, n)
		st.sigmaC = resizeF64(st.sigmaC, n)
		st.svcMs = resizeF64(st.svcMs, n)
		st.exerted = resizeVec(st.exerted, n)
		st.perFunc = resizePerf(st.perFunc, n)
		for f := 0; f < n; f++ {
			st.arrival[f] = 0
			st.rho[f] = 0.5
			st.sigma[f] = 1
			st.sigmaC[f] = 1
			st.svcMs[f] = d.W.Functions[f].BaseServiceMs
			st.exerted[f] = resources.Vector{}
		}
	}
	if refs != nil {
		for i := range sv.states {
			sv.states[i].refE2E = refs[i]
		}
	}

	totalInstances := extraInstances
	for _, d := range deps {
		for _, r := range d.Replicas {
			totalInstances += r
		}
	}

	var gwMean, gwP99 float64
	demand := sv.demand
	if ideal {
		// Ideal fast path. With interference off, sigma ≡ 1, so the
		// service times, the arrival propagation and the gateway
		// figures are invariant across fixed-point iterations — only
		// rho relaxes, and each rho relaxes toward a constant target
		// with no cross-function coupling. Running steps 2-4 once and
		// relaxing each rho in place applies bit-for-bit the same
		// float operations the full iteration loop would, in the same
		// order, so the results are byte-identical.
		for i := range sv.states {
			st := &sv.states[i]
			d := st.dep
			for f := range d.W.Functions {
				fn := &d.W.Functions[f]
				st.sigmaC[f] = 1
				st.sigma[f] = totalSlowdown(1, 1)
				st.svcMs[f] = fn.BaseServiceMs * st.sigma[f]
				if d.ColdStartFrac > 0 {
					st.svcMs[f] += fn.ColdStartMs * d.ColdStartFrac
				}
			}
		}
		for i := range sv.states {
			m.propagateArrivals(&sv.states[i])
		}
		gwMean, gwP99 = m.gateway(sv.states, totalInstances, true)
		const relax = 0.5
		for i := range sv.states {
			st := &sv.states[i]
			d := st.dep
			for f := range d.W.Functions {
				if st.svcMs[f] <= 0 {
					st.rho[f] = 0
					continue
				}
				cap := float64(d.Replicas[f]) * 1000 / st.svcMs[f]
				target := st.arrival[f] / cap
				rho := st.rho[f]
				for it := 0; it < m.Cfg.FixedPointIters; it++ {
					nr := rho + relax*(target-rho)
					if nr == rho {
						break
					}
					rho = nr
				}
				st.rho[f] = rho
			}
		}
		sv.results = sv.results[:0]
		if cap(sv.results) < len(sv.states) {
			sv.results = make([]LSResult, 0, len(sv.states))
		}
		out := lsSolveResult{demand: demand}
		for i := range sv.states {
			sv.results = append(sv.results, m.finishLS(sv, &sv.states[i], gwMean, gwP99))
		}
		out.results = sv.results
		return out
	}
	{
		// Pre-grow the demand store to its final stride, then freeze
		// the per-function slowdown contexts: placement, partitions and
		// capacity scales are constant for the whole solve, so the slot
		// indices and adjusted capacities are loop invariants of the
		// fixed point. Growing first matters — grow() remaps indices,
		// which would invalidate already-built contexts.
		if bg != nil && bg.sockStride > demand.sockStride {
			demand.grow(bg.sockStride)
		}
		for i := range sv.states {
			st := &sv.states[i]
			d := st.dep
			for f := range d.W.Functions {
				if s := m.resolveSocket(d, f); s+2 > demand.sockStride {
					demand.grow(s + 2)
				}
			}
		}
		for i := range sv.states {
			st := &sv.states[i]
			d := st.dep
			if cap(st.sctx) < len(d.W.Functions) {
				st.sctx = make([]slowCtx, len(d.W.Functions))
			}
			st.sctx = st.sctx[:len(d.W.Functions)]
			for f := range d.W.Functions {
				cx := &st.sctx[f]
				m.buildSlowCtx(cx, demand, d.Placement[f], m.resolveSocket(d, f), d.Protected)
				fn := &d.W.Functions[f]
				cx.dem = fn.Demand
				cx.sens = fn.Sensitivity
				cx.repF = float64(d.Replicas[f])
				cx.rep1000 = cx.repF * 1000
				cx.baseMs = fn.BaseServiceMs
				cx.coldMs = fn.ColdStartMs
			}
		}
	}
	for iter := 0; iter < m.Cfg.FixedPointIters; iter++ {
		// 1. Exerted demand per function, scaled by utilization.
		demand.reset()
		demand.copyFrom(bg)
		floor := m.Cfg.IdleDemandFloor
		span := 1 - floor
		for i := range sv.states {
			st := &sv.states[i]
			for f := range st.sctx {
				cx := &st.sctx[f]
				level := floor + span*clamp01(st.rho[f])
				ex := &st.exerted[f]
				*ex = cx.dem.Scale(level * cx.repF)
				demand.addAt(int(cx.ski), int(cx.svi), ex)
			}
		}

		// 2. Interference slowdowns and service times.
		for i := range sv.states {
			st := &sv.states[i]
			d := st.dep
			for f := range st.sctx {
				cx := &st.sctx[f]
				sc, sio := m.slowdownCtx(cx, demand, &st.exerted[f], &cx.sens, 1)
				st.sigmaC[f] = sc
				st.sigma[f] = totalSlowdown(sc, sio)
				st.svcMs[f] = cx.baseMs * st.sigma[f]
				if d.ColdStartFrac > 0 {
					// Cold invocations pay the startup latency (§5.2).
					st.svcMs[f] += cx.coldMs * d.ColdStartFrac
				}
			}
		}

		// 3. Arrival propagation with saturation throttling.
		for i := range sv.states {
			m.propagateArrivals(&sv.states[i])
		}

		// 4. Gateway load.
		gwMean, gwP99 = m.gateway(sv.states, totalInstances, false)

		// 5. Utilizations and closed-loop damping. Both are relaxed
		// toward their new values so the fixed point converges
		// instead of oscillating between high- and low-pressure
		// states.
		const relax = 0.5
		changed := false
		for i := range sv.states {
			st := &sv.states[i]
			for f := range st.sctx {
				if st.svcMs[f] <= 0 {
					if st.rho[f] != 0 {
						changed = true
					}
					st.rho[f] = 0
					continue
				}
				// rep1000/svcMs is the same multiply-then-divide the
				// inline form performed; the multiply is just hoisted
				// to context-build time.
				cap := st.sctx[f].rep1000 / st.svcMs[f]
				nr := st.rho[f] + relax*(st.arrival[f]/cap-st.rho[f])
				if nr != st.rho[f] {
					changed = true
					st.rho[f] = nr
				}
			}
			if st.refE2E > 0 {
				e2e, _ := m.composeE2E(sv, st, gwMean, gwP99)
				excess := e2e/st.refE2E - 1
				if excess < 0 {
					excess = 0
				}
				target := st.dep.QPS / (1 + m.Cfg.ClosedLoopGamma*excess)
				nq := st.effQPS + relax*(target-st.effQPS)
				if nq != st.effQPS {
					changed = true
					st.effQPS = nq
				}
			}
		}
		// The iteration is a pure function of (rho, effQPS): if both
		// came out bitwise identical to their inputs, every remaining
		// iteration would reproduce exactly this state and these
		// gateway figures, so stopping here returns byte-identical
		// results to running all FixedPointIters.
		if !changed {
			break
		}
	}

	sv.results = sv.results[:0]
	if cap(sv.results) < len(sv.states) {
		sv.results = make([]LSResult, 0, len(sv.states))
	}
	out := lsSolveResult{demand: demand}
	for i := range sv.states {
		sv.results = append(sv.results, m.finishLS(sv, &sv.states[i], gwMean, gwP99))
	}
	out.results = sv.results
	return out
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeVec(s []resources.Vector, n int) []resources.Vector {
	if cap(s) < n {
		return make([]resources.Vector, n)
	}
	return s[:n]
}

func resizePerf(s []FuncPerf, n int) []FuncPerf {
	if cap(s) < n {
		return make([]FuncPerf, n)
	}
	return s[:n]
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// propagateArrivals walks the call DAG from the entry, throttling each
// callee's arrival rate by its caller's effective throughput — the
// mechanism of the paper's hotspot propagation (Observation 4): a
// saturated function starves its downstream functions, whose local
// latency therefore *drops*.
func (m *Model) propagateArrivals(st *lsState) {
	d := st.dep
	for f := range st.arrival {
		st.arrival[f] = 0
	}
	st.arrival[d.W.Entry] = st.effQPS
	for _, f := range st.topo {
		calls := d.W.Functions[f].Calls
		if len(calls) == 0 {
			// Leaf functions forward nothing; their throughput is
			// only ever consumed by callees.
			continue
		}
		lambda := st.arrival[f]
		cap := float64(d.Replicas[f]) * 1000 / st.svcMs[f]
		through := lambda
		if limit := 0.99 * cap; through > limit {
			through = limit
		}
		for _, c := range calls {
			st.arrival[c.Callee] += through
		}
	}
}

// topoInto fills out with the functions reachable from the entry in
// topological order (callers before callees), reusing the solver's
// visited scratch. The order is identical to topoOrder's.
func (sv *lsSolver) topoInto(out []int, w *workload.Workload) []int {
	n := len(w.Functions)
	if cap(sv.visited) < n {
		sv.visited = make([]bool, n)
	}
	sv.visited = sv.visited[:n]
	for i := range sv.visited {
		sv.visited[i] = false
	}
	out = sv.topoVisit(out, w, w.Entry)
	// reverse post-order = topological order
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func (sv *lsSolver) topoVisit(out []int, w *workload.Workload, i int) []int {
	if sv.visited[i] {
		return out
	}
	sv.visited[i] = true
	for _, c := range w.Functions[i].Calls {
		out = sv.topoVisit(out, w, c.Callee)
	}
	return append(out, i)
}

// topoOrder returns the functions reachable from the entry in
// topological order (callers before callees) — the allocating
// reference form of topoInto, kept for tests and one-off callers.
func topoOrder(w *workload.Workload) []int {
	visited := make([]bool, len(w.Functions))
	var order []int
	var visit func(i int)
	visit = func(i int) {
		if visited[i] {
			return
		}
		visited[i] = true
		for _, c := range w.Functions[i].Calls {
			visit(c.Callee)
		}
		order = append(order, i)
	}
	visit(w.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// gateway models the shared OpenFaaS-style frontend: every invocation
// passes through it; its service time degrades past ~110 instances
// (Figure 14) and when it must manage the waiting queues of saturated
// functions (§2.1, the second propagation mechanism).
func (m *Model) gateway(states []lsState, totalInstances int, ideal bool) (meanMs, p99Ms float64) {
	c := &m.Cfg
	var totalArrival, satLoad float64
	for i := range states {
		st := &states[i]
		for f := range st.arrival {
			totalArrival += st.arrival[f]
			// Below 90% utilization the clamped term is exactly
			// zero; adding arrival*0 never changes a non-negative
			// accumulator, so skip the multiply.
			if over := (st.rho[f] - 0.9) / 0.1; over > 0 {
				satLoad += st.arrival[f] * clamp01(over)
			}
		}
	}
	if totalArrival <= 0 {
		return c.GatewayBaseMs, c.GatewayBaseMs
	}
	svc := c.GatewayBaseMs
	if !ideal {
		if ex := (float64(totalInstances) - c.GatewayKneeInst) / c.GatewayInstSlope; ex > 0 {
			svc *= 1 + ex*ex
		}
		svc *= 1 + c.GatewaySatFactor*(satLoad/totalArrival)
	}
	rho := totalArrival * svc / 1000 / c.GatewayWorkers
	if rho > c.MaxRho {
		rho = c.MaxRho
	}
	meanMs = svc / (1 - rho)
	p99Ms = svc * (1 + c.QueueFactor*rho/(1-rho))
	return meanMs, p99Ms
}

// localMean returns function f's local mean latency: gateway wait plus
// M/M/1-style sojourn with an overload penalty.
func (m *Model) localMean(st *lsState, f int, gwMean float64) float64 {
	c := &m.Cfg
	rho := st.rho[f]
	rhat := rho
	if rhat > c.MaxRho {
		rhat = c.MaxRho
	}
	lat := st.svcMs[f] / (1 - rhat)
	if over := rho - 1; over > 0 {
		lat *= 1 + c.OverloadPenalty*over
	}
	return gwMean + lat
}

// localP99 returns function f's local 99th-percentile latency.
func (m *Model) localP99(st *lsState, f int, gwP99 float64) float64 {
	c := &m.Cfg
	rho := st.rho[f]
	rhat := rho
	if rhat > c.MaxRho {
		rhat = c.MaxRho
	}
	lat := st.svcMs[f] * (1 + c.QueueFactor*rhat/(1-rhat))
	if over := rho - 1; over > 0 {
		lat *= 1 + c.OverloadPenalty*over
	}
	return gwP99 + lat
}

// pathStats carries the mean latency and squared tail excess
// accumulated along a call path.
type pathStats struct {
	mean float64
	te2  float64 // sum of squared (p99 - mean) tail excesses
}

// composeE2E folds local latencies over the DAG: nested and sequence
// subtrees both extend the caller's end-to-end latency; async calls do
// not (they are the paper's non-critical path). Means add along the
// path; tail excesses compose in quadrature (independent stage tails),
// so the end-to-end p99 is mean + sqrt(sum of squared excesses). The
// memo lives in the solver scratch.
func (m *Model) composeE2E(sv *lsSolver, st *lsState, gwMean, gwP99 float64) (meanMs, p99Ms float64) {
	w := st.dep.W
	n := len(w.Functions)
	if cap(sv.memo) < n {
		sv.memo = make([]pathStats, n)
	}
	sv.memo = sv.memo[:n]
	// Walk the topological order backwards (callees before callers),
	// visiting the precomputed sync-reachable closure (st.reach — the
	// functions the recursive walk would visit; async callees are off
	// the critical path and contribute nothing). A reachable caller's
	// Nested/Sequence callees are reachable by closure and later in
	// topo order, so their path stats are ready when the caller folds
	// them — the recursion unrolls into a loop. Each visited
	// function's computation — including the Calls-order max folds —
	// is the same as the recursive form's, so the results are
	// bit-identical.
	for i := len(st.topo) - 1; i >= 0; i-- {
		f := st.topo[i]
		if !st.reach[f] {
			continue
		}
		var maxNested, maxSeq pathStats
		for _, c := range w.Functions[f].Calls {
			switch c.Mode {
			case workload.Nested:
				if v := sv.memo[c.Callee]; v.mean > maxNested.mean {
					maxNested = v
				}
			case workload.Sequence:
				if v := sv.memo[c.Callee]; v.mean > maxSeq.mean {
					maxSeq = v
				}
			}
		}
		mean := m.localMean(st, f, gwMean)
		te := m.localP99(st, f, gwP99) - mean
		sv.memo[f] = pathStats{
			mean: mean + maxNested.mean + maxSeq.mean,
			te2:  te*te + maxNested.te2 + maxSeq.te2,
		}
	}
	s := sv.memo[w.Entry]
	te := 0.0
	if s.te2 > 0 {
		te = math.Sqrt(s.te2)
	}
	return s.mean, s.mean + te
}

// finishLS assembles the LSResult from a converged state. The PerFunc
// slice aliases the state's scratch.
func (m *Model) finishLS(sv *lsSolver, st *lsState, gwMean, gwP99 float64) LSResult {
	d := st.dep
	res := LSResult{
		EffQPS:        st.effQPS,
		GatewayMeanMs: gwMean,
		PerFunc:       st.perFunc,
	}
	var ipcSum, wSum float64
	// Cold-start executions run with cold caches: the startup phase
	// retires instructions inefficiently, dragging the observed IPC.
	coldPenalty := 1 + 0.5*d.ColdStartFrac
	for f := range d.W.Functions {
		fn := &d.W.Functions[f]
		ipc := fn.SoloIPC / (st.sigmaC[f] * coldPenalty)
		res.PerFunc[f] = FuncPerf{
			Name:        fn.Name,
			IPC:         ipc,
			Slowdown:    st.sigma[f],
			LocalMeanMs: m.localMean(st, f, gwMean),
			LocalP99Ms:  m.localP99(st, f, gwP99),
			ArrivalQPS:  st.arrival[f],
			Rho:         st.rho[f],
		}
		w := fn.Demand[resources.CPU]
		ipcSum += ipc * w
		wSum += w
	}
	if wSum > 0 {
		res.IPC = ipcSum / wSum
	}
	res.E2EMeanMs, res.E2EP99Ms = m.composeE2E(sv, st, gwMean, gwP99)
	return res
}
