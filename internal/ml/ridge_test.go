package ml

import (
	"math"
	"reflect"
	"testing"
)

// ridgeSample builds a deterministic synthetic sample x and label
// w*·x + tiny structured noise, with a constant-1 bias feature.
func ridgeSample(i, d int) ([]float64, float64) {
	wStar := func(j int) float64 { return 0.5 - 0.1*float64(j) }
	x := make([]float64, d)
	x[0] = 1
	for j := 1; j < d; j++ {
		x[j] = math.Sin(float64(i*j)*0.37) + 0.5*math.Cos(float64(i+j)*0.11)
	}
	y := 0.0
	for j := 0; j < d; j++ {
		y += wStar(j) * x[j]
	}
	y += 0.01 * math.Sin(float64(i)*1.7)
	return x, y
}

func TestRidgeFitsLinearTarget(t *testing.T) {
	const d = 6
	r := NewRidge(d, 256, 1e-6)
	for i := 0; i < 200; i++ {
		x, y := ridgeSample(i, d)
		r.Observe(x, y)
	}
	if !r.Refresh() {
		t.Fatal("refresh failed on well-conditioned data")
	}
	sum, n := 0.0, 0
	for i := 200; i < 260; i++ {
		x, y := ridgeSample(i, d)
		e := r.Predict(x) - y
		sum += e * e
		n++
	}
	if rmse := math.Sqrt(sum / float64(n)); rmse > 0.05 {
		t.Fatalf("held-out RMSE %.4f, want < 0.05", rmse)
	}
}

func TestRidgeUntrainedPredictsZero(t *testing.T) {
	r := NewRidge(4, 64, 1e-3)
	if got := r.Predict([]float64{1, 2, 3, 4}); got != 0 {
		t.Fatalf("untrained predict = %v, want 0", got)
	}
	// Below the sample gate Refresh must refuse to train.
	for i := 0; i < ridgeMinSamples-1; i++ {
		x, y := ridgeSample(i, 4)
		r.Observe(x, y)
	}
	if r.Refresh() {
		t.Fatalf("refresh trained on %d samples, gate is %d", r.Len(), ridgeMinSamples)
	}
}

// TestRidgeWindowDowndate checks the ring eviction path: after
// absorbing far more samples than the window holds, the Gram matrix
// must match one rebuilt from scratch over only the retained samples
// (same accumulation order: oldest first), up to rounding.
func TestRidgeWindowDowndate(t *testing.T) {
	const d, window = 5, 32
	r := NewRidge(d, window, 1e-6)
	total := 3*window + 7
	for i := 0; i < total; i++ {
		x, y := ridgeSample(i, d)
		r.Observe(x, y)
	}
	if r.Len() != window {
		t.Fatalf("retained %d samples, want %d", r.Len(), window)
	}
	fresh := NewRidge(d, window, 1e-6)
	for i := total - window; i < total; i++ {
		x, y := ridgeSample(i, d)
		fresh.Observe(x, y)
	}
	for i := range r.a {
		if diff := math.Abs(r.a[i] - fresh.a[i]); diff > 1e-8 {
			t.Fatalf("gram[%d] drifted %.3g after downdates", i, diff)
		}
	}
	for i := range r.b {
		if diff := math.Abs(r.b[i] - fresh.b[i]); diff > 1e-8 {
			t.Fatalf("b[%d] drifted %.3g after downdates", i, diff)
		}
	}
	if !r.Refresh() || !fresh.Refresh() {
		t.Fatal("refresh failed")
	}
	for i := range r.w {
		if diff := math.Abs(r.w[i] - fresh.w[i]); diff > 1e-6 {
			t.Fatalf("w[%d] drifted %.3g after downdates", i, diff)
		}
	}
}

// TestRidgeStateRoundTrip checks export/restore is exact: the restored
// model predicts bit-identically and keeps evolving bit-identically as
// further samples arrive (the seam position must be unobservable).
func TestRidgeStateRoundTrip(t *testing.T) {
	const d, window = 5, 32
	a := NewRidge(d, window, 1e-6)
	for i := 0; i < 2*window+5; i++ {
		x, y := ridgeSample(i, d)
		a.Observe(x, y)
	}
	a.Refresh()
	b := NewRidge(d, window, 1e-6)
	if err := b.RestoreState(a.ExportState()); err != nil {
		t.Fatal(err)
	}
	if b.Seen() != a.Seen() || b.Len() != a.Len() || b.Trained() != a.Trained() {
		t.Fatalf("restored counters diverge: seen %d/%d len %d/%d", b.Seen(), a.Seen(), b.Len(), a.Len())
	}
	probe, _ := ridgeSample(999, d)
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("restored model predicts differently")
	}
	// Continue both with identical samples through several evictions.
	for i := 0; i < 2*window; i++ {
		x, y := ridgeSample(1000+i, d)
		a.Observe(x, y)
		b.Observe(x, y)
	}
	a.Refresh()
	b.Refresh()
	if !reflect.DeepEqual(a.w, b.w) {
		t.Fatal("post-restore evolution diverged bit-wise")
	}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("post-restore predictions diverged")
	}
}

func TestRidgeRestoreRejectsCorrupt(t *testing.T) {
	r := NewRidge(4, 64, 1e-3)
	good := r.ExportState()
	cases := []func(st *RidgeState){
		func(st *RidgeState) { st.Version = 2 },
		func(st *RidgeState) { st.Dim = 5 },
		func(st *RidgeState) { st.A = st.A[:3] },
		func(st *RidgeState) { st.A[0] = math.NaN() },
		func(st *RidgeState) { st.RingX = [][]float64{{1, 2}}; st.RingY = []float64{1} },
		func(st *RidgeState) { st.RingY = []float64{1} },
	}
	for i, corrupt := range cases {
		st := good
		st.A = append([]float64(nil), good.A...)
		corrupt(&st)
		if err := NewRidge(4, 64, 1e-3).RestoreState(st); err == nil {
			t.Fatalf("case %d: corrupt state accepted", i)
		}
	}
}
