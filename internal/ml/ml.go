// Package ml implements the learning substrate of the reproduction from
// scratch, stdlib only: CART regression trees, random forests with
// impurity-based feature importance (the paper's RFR/IRFR), k-nearest
// neighbours, linear (ridge) regression, linear support-vector
// regression and a multilayer perceptron — each with an incremental
// variant (IRFR, IKNN, ILR, ISVR, IMLP) matching §3.4's comparison set.
package ml

import (
	"errors"
	"math"

	"gsight/internal/rng"
	"gsight/internal/telemetry"
)

// Regressor is a trainable model mapping feature vectors to a scalar.
type Regressor interface {
	// Fit trains the model from scratch on the dataset.
	Fit(X [][]float64, y []float64) error
	// Predict returns the model's estimate for x.
	Predict(x []float64) float64
}

// Incremental is a regressor that can absorb new samples online —
// the paper's incremental learning loop (§3.3): predict, observe, update.
type Incremental interface {
	Regressor
	// Update folds a new batch of samples into the model without a
	// full retrain.
	Update(X [][]float64, y []float64) error
}

// Instrumentable is implemented by models that accept the shared
// forest instrument set. Wrappers (LogTarget) forward to their inner
// model. Instrumenting with the zero value is a no-op.
type Instrumentable interface {
	Instrument(ins telemetry.ForestInstruments)
}

// BatchRegressor is implemented by models whose batched prediction path
// beats a per-sample Predict loop (shared traversal state, cache
// locality, goroutine fan-out). Implementations MUST return results
// bit-identical to per-sample Predict — callers rely on single and
// batched inference being interchangeable.
type BatchRegressor interface {
	// PredictBatchInto fills out[i] with the prediction for X[i];
	// len(out) must equal len(X).
	PredictBatchInto(X [][]float64, out []float64)
}

// ErrNoData is returned when fitting on an empty dataset.
var ErrNoData = errors.New("ml: empty training set")

// ErrDimMismatch is returned when feature dimensions are inconsistent.
var ErrDimMismatch = errors.New("ml: feature dimension mismatch")

func checkXY(X [][]float64, y []float64) error {
	if len(X) == 0 || len(y) == 0 {
		return ErrNoData
	}
	if len(X) != len(y) {
		return ErrDimMismatch
	}
	d := len(X[0])
	for _, x := range X {
		if len(x) != d {
			return ErrDimMismatch
		}
	}
	return nil
}

// Dataset is a growable design matrix with targets.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Append adds one sample. The feature slice is stored, not copied.
func (d *Dataset) Append(x []float64, y float64) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Reset empties the dataset, keeping its backing capacity for reuse.
// Stored feature slices are released to their consumers — callers that
// handed rows to a model must not mutate them afterwards.
func (d *Dataset) Reset() {
	for i := range d.X {
		d.X[i] = nil
	}
	d.X = d.X[:0]
	d.Y = d.Y[:0]
}

// Split shuffles and splits the dataset into train and test parts with
// the given training fraction.
func (d *Dataset) Split(trainFrac float64, rnd *rng.Rand) (train, test Dataset) {
	n := d.Len()
	perm := rnd.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	for i, p := range perm {
		if i < nTrain {
			train.Append(d.X[p], d.Y[p])
		} else {
			test.Append(d.X[p], d.Y[p])
		}
	}
	return train, test
}

// Tail returns a dataset view of the last n samples.
func (d *Dataset) Tail(n int) Dataset {
	if n >= d.Len() {
		return *d
	}
	return Dataset{X: d.X[d.Len()-n:], Y: d.Y[d.Len()-n:]}
}

// Scaler standardizes features to zero mean and unit variance, with
// incremental (Welford) statistics so online models can keep their
// normalization current.
type Scaler struct {
	n    float64
	mean []float64
	m2   []float64
}

// NewScaler returns an empty scaler.
func NewScaler() *Scaler { return &Scaler{} }

// Observe folds a sample into the running statistics.
func (s *Scaler) Observe(x []float64) {
	if s.mean == nil {
		s.mean = make([]float64, len(x))
		s.m2 = make([]float64, len(x))
	}
	s.n++
	for i, v := range x {
		d := v - s.mean[i]
		s.mean[i] += d / s.n
		s.m2[i] += d * (v - s.mean[i])
	}
}

// Transform returns the standardized copy of x.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	if s.mean == nil || s.n < 2 {
		copy(out, x)
		return out
	}
	for i, v := range x {
		sd := math.Sqrt(s.m2[i] / s.n)
		if sd < 1e-12 {
			out[i] = 0
			continue
		}
		out[i] = (v - s.mean[i]) / sd
	}
	return out
}

// MAPE is the paper's prediction error |ŷ-y|/y averaged over the test
// set, skipping zero targets.
func MAPE(model Regressor, X [][]float64, y []float64) float64 {
	sum, n := 0.0, 0
	for i, x := range X {
		if y[i] == 0 {
			continue
		}
		sum += math.Abs(model.Predict(x)-y[i]) / math.Abs(y[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Errors returns the per-sample relative errors (for the Figure 5
// violin distributions), skipping zero targets.
func Errors(model Regressor, X [][]float64, y []float64) []float64 {
	var out []float64
	for i, x := range X {
		if y[i] == 0 {
			continue
		}
		out = append(out, math.Abs(model.Predict(x)-y[i])/math.Abs(y[i]))
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}
