package ml

import (
	"math"

	"gsight/internal/rng"
)

// PCA is a principal component analysis transform, implemented from
// scratch with orthogonal (power) iteration on the covariance matrix.
// The paper names dimensionality reduction as the way to keep Gsight's
// 32nS+2n code tractable when workflows span hundreds of servers
// (§6.4, future work); PCAWrap below applies it in the predictor
// pipeline, and the ablation experiment measures the accuracy/latency
// trade.
type PCA struct {
	Components int // target dimensionality; <=0 means 64
	// MaxIter bounds the orthogonal-iteration sweeps; <=0 means 100.
	MaxIter int
	// Tol is the convergence tolerance on subspace rotation; <=0
	// means 1e-6.
	Tol float64

	mean   []float64
	comps  [][]float64 // [Components][dim] row-major principal axes
	evals  []float64   // explained variances, descending
	dim    int
	active []int // features with nonzero variance (the rest are dropped)
}

// NewPCA returns a PCA transform targeting k components.
func NewPCA(k int) *PCA { return &PCA{Components: k} }

func (p *PCA) defaults() {
	if p.Components <= 0 {
		p.Components = 64
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 100
	}
	if p.Tol <= 0 {
		p.Tol = 1e-6
	}
}

// Fit estimates the principal axes of X. Constant features are dropped
// before the eigen-solve (the colocation codes are mostly zero
// padding), which keeps the covariance small and well-conditioned.
func (p *PCA) Fit(X [][]float64) error {
	if len(X) == 0 {
		return ErrNoData
	}
	p.defaults()
	p.dim = len(X[0])
	n := float64(len(X))

	// mean + active set
	p.mean = make([]float64, p.dim)
	for _, x := range X {
		if len(x) != p.dim {
			return ErrDimMismatch
		}
		for j, v := range x {
			p.mean[j] += v
		}
	}
	for j := range p.mean {
		p.mean[j] /= n
	}
	p.active = p.active[:0]
	for j := 0; j < p.dim; j++ {
		for _, x := range X {
			if x[j] != X[0][j] {
				p.active = append(p.active, j)
				break
			}
		}
	}
	d := len(p.active)
	if d == 0 {
		p.comps = nil
		p.evals = nil
		return nil
	}
	k := p.Components
	if k > d {
		k = d
	}
	if k > len(X) {
		k = len(X)
	}

	// covariance over active features
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	centered := make([][]float64, len(X))
	for i, x := range X {
		c := make([]float64, d)
		for a, j := range p.active {
			c[a] = x[j] - p.mean[j]
		}
		centered[i] = c
	}
	for _, c := range centered {
		for i := 0; i < d; i++ {
			ci := c[i]
			if ci == 0 {
				continue
			}
			row := cov[i]
			for j := i; j < d; j++ {
				row[j] += ci * c[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= n
			cov[j][i] = cov[i][j]
		}
	}

	// orthogonal iteration for the top-k eigenvectors
	r := rng.New(0x9ca)
	Q := make([][]float64, k)
	for i := range Q {
		Q[i] = make([]float64, d)
		for j := range Q[i] {
			Q[i][j] = r.Norm(0, 1)
		}
	}
	orthonormalize(Q)
	prev := math.Inf(1)
	tmp := make([][]float64, k)
	for i := range tmp {
		tmp[i] = make([]float64, d)
	}
	for iter := 0; iter < p.MaxIter; iter++ {
		// tmp = cov * Q^T (per component)
		for c := 0; c < k; c++ {
			for i := 0; i < d; i++ {
				s := 0.0
				row := cov[i]
				qc := Q[c]
				for j := 0; j < d; j++ {
					s += row[j] * qc[j]
				}
				tmp[c][i] = s
			}
		}
		for c := 0; c < k; c++ {
			copy(Q[c], tmp[c])
		}
		orthonormalize(Q)
		// convergence: trace of Rayleigh quotients
		tr := 0.0
		for c := 0; c < k; c++ {
			tr += rayleigh(cov, Q[c])
		}
		if math.Abs(tr-prev) < p.Tol*(1+math.Abs(tr)) {
			break
		}
		prev = tr
	}

	// eigenvalues + sort descending
	p.evals = make([]float64, k)
	for c := 0; c < k; c++ {
		p.evals[c] = rayleigh(cov, Q[c])
	}
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if p.evals[order[j]] > p.evals[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	p.comps = make([][]float64, k)
	evs := make([]float64, k)
	for i, o := range order {
		p.comps[i] = Q[o]
		evs[i] = p.evals[o]
	}
	p.evals = evs
	return nil
}

func orthonormalize(Q [][]float64) {
	for i := range Q {
		for j := 0; j < i; j++ {
			dot := 0.0
			for t := range Q[i] {
				dot += Q[i][t] * Q[j][t]
			}
			for t := range Q[i] {
				Q[i][t] -= dot * Q[j][t]
			}
		}
		norm := 0.0
		for _, v := range Q[i] {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			continue
		}
		for t := range Q[i] {
			Q[i][t] /= norm
		}
	}
}

func rayleigh(cov [][]float64, q []float64) float64 {
	d := len(q)
	s := 0.0
	for i := 0; i < d; i++ {
		row := cov[i]
		qi := q[i]
		if qi == 0 {
			continue
		}
		dot := 0.0
		for j := 0; j < d; j++ {
			dot += row[j] * q[j]
		}
		s += qi * dot
	}
	return s
}

// Transform projects x onto the principal axes.
func (p *PCA) Transform(x []float64) []float64 {
	out := make([]float64, len(p.comps))
	for c, axis := range p.comps {
		s := 0.0
		for a, j := range p.active {
			s += axis[a] * (x[j] - p.mean[j])
		}
		out[c] = s
	}
	return out
}

// ExplainedVariance returns the per-component variances, descending.
func (p *PCA) ExplainedVariance() []float64 {
	return append([]float64(nil), p.evals...)
}

// NumComponents returns the fitted component count.
func (p *PCA) NumComponents() int { return len(p.comps) }

// PCAWrap composes a PCA transform with an incremental model: Fit
// learns the projection and trains the inner model in the reduced
// space; Update reuses the projection (re-fitting it would invalidate
// the inner model). This is the §6.4 dimensionality-reduction variant.
type PCAWrap struct {
	PCA   *PCA
	Inner Incremental
}

// NewPCAWrap wraps inner behind a k-component PCA.
func NewPCAWrap(k int, inner Incremental) *PCAWrap {
	return &PCAWrap{PCA: NewPCA(k), Inner: inner}
}

// Fit learns the projection and the inner model.
func (w *PCAWrap) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	if err := w.PCA.Fit(X); err != nil {
		return err
	}
	return w.Inner.Fit(w.transformAll(X), y)
}

// Update folds new samples through the frozen projection.
func (w *PCAWrap) Update(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	if w.PCA.NumComponents() == 0 {
		return w.Fit(X, y)
	}
	return w.Inner.Update(w.transformAll(X), y)
}

// Predict projects and delegates.
func (w *PCAWrap) Predict(x []float64) float64 {
	if w.PCA.NumComponents() == 0 {
		return 0
	}
	return w.Inner.Predict(w.PCA.Transform(x))
}

func (w *PCAWrap) transformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, x := range X {
		out[i] = w.PCA.Transform(x)
	}
	return out
}

var _ Incremental = (*PCAWrap)(nil)
