package ml

import (
	"sort"

	"gsight/internal/rng"
)

// TreeConfig parameterizes CART regression tree growth.
type TreeConfig struct {
	MaxDepth    int // maximum depth (root = 0); <=0 means 24
	MinLeaf     int // minimum samples per leaf; <=0 means 2
	MTry        int // features tried per split; <=0 means sqrt(d)
	MaxSplitVal int // cap on candidate thresholds per feature; <=0 means 32
}

func (c TreeConfig) withDefaults(d int) TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 24
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.MTry <= 0 {
		// Regression forests favour large feature subsamples
		// (scikit-learn defaults to all features); a third keeps
		// decorrelation while finding signal reliably.
		c.MTry = d / 3
		if c.MTry < 8 {
			c.MTry = 8
		}
	}
	if c.MaxSplitVal <= 0 {
		c.MaxSplitVal = 32
	}
	return c
}

// treeNode is one node of a CART regression tree, stored in a flat
// slice for cache-friendly prediction.
type treeNode struct {
	feature int     // split feature; -1 for leaves
	thresh  float64 // go left if x[feature] <= thresh
	left    int32   // child indices
	right   int32
	value   float64 // leaf prediction
}

// Tree is a CART regression tree.
type Tree struct {
	nodes      []treeNode
	cfg        TreeConfig
	dim        int
	active     []int     // features with any variance in the training set
	importance []float64 // accumulated impurity decrease per feature
}

// NewTree returns an untrained tree with the given configuration.
func NewTree(cfg TreeConfig) *Tree { return &Tree{cfg: cfg} }

// Fit grows the tree on (X, y). A nil rnd makes feature subsampling
// deterministic (all features considered).
func (t *Tree) Fit(X [][]float64, y []float64) error { return t.FitSeeded(X, y, nil) }

// FitSeeded grows the tree using rnd for feature subsampling.
func (t *Tree) FitSeeded(X [][]float64, y []float64, rnd *rng.Rand) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	return t.FitIndexed(X, y, idx, rnd)
}

// FitIndexed grows the tree on the samples X[idx[0]], X[idx[1]], ...
// (duplicates allowed): a bootstrap resample is just an index list into
// the shared training window, so forests never materialize per-tree row
// copies. FitSeeded is the identity-index special case. The tree does
// not retain idx.
func (t *Tree) FitIndexed(X [][]float64, y []float64, idx []int, rnd *rng.Rand) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	if len(idx) == 0 {
		return ErrNoData
	}
	t.dim = len(X[0])
	// Sparse colocation codes zero-pad unused workload slots and
	// servers; restricting split search to features that actually vary
	// makes the per-split feature subsample land on signal.
	t.active = t.active[:0]
	for j := 0; j < t.dim; j++ {
		v0 := X[idx[0]][j]
		for _, i := range idx[1:] {
			if X[i][j] != v0 {
				t.active = append(t.active, j)
				break
			}
		}
	}
	t.cfg = t.cfg.withDefaults(len(t.active))
	t.nodes = t.nodes[:0]
	t.importance = make([]float64, t.dim)
	t.grow(X, y, idx, 0, rnd)
	return nil
}

// grow builds the subtree over idx and returns its node index.
func (t *Tree) grow(X [][]float64, y []float64, idx []int, depth int, rnd *rng.Rand) int32 {
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1})

	sum := 0.0
	for _, i := range idx {
		sum += y[i]
	}
	m := sum / float64(len(idx))
	t.nodes[node].value = m

	if depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeaf {
		return node
	}
	imp := impurity(y, idx, m)
	if imp <= 1e-12 {
		return node
	}

	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	features := t.sampleFeatures(rnd)
	// scratch: (value, target) pairs sorted per feature
	type vt struct{ v, t float64 }
	pairs := make([]vt, 0, len(idx))
	for _, f := range features {
		pairs = pairs[:0]
		for _, i := range idx {
			pairs = append(pairs, vt{X[i][f], y[i]})
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue
		}
		// Prefix scan: total variance reduction for each cut point.
		var lSum, lSq float64
		var rSum, rSq float64
		for _, p := range pairs {
			rSum += p.t
			rSq += p.t * p.t
		}
		n := float64(len(pairs))
		total := rSq - rSum*rSum/n
		step := 1
		if t.cfg.MaxSplitVal > 0 && len(pairs) > t.cfg.MaxSplitVal {
			step = len(pairs) / t.cfg.MaxSplitVal
		}
		for i := 0; i < len(pairs)-1; i++ {
			lSum += pairs[i].t
			lSq += pairs[i].t * pairs[i].t
			rSum -= pairs[i].t
			rSq -= pairs[i].t * pairs[i].t
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			if step > 1 && i%step != 0 {
				continue
			}
			nl, nr := float64(i+1), n-float64(i+1)
			if int(nl) < t.cfg.MinLeaf || int(nr) < t.cfg.MinLeaf {
				continue
			}
			sse := (lSq - lSum*lSum/nl) + (rSq - rSum*rSum/nr)
			gain := total - sse
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (pairs[i].v + pairs[i+1].v) / 2
			}
		}
	}
	if bestFeat < 0 {
		return node
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return node
	}
	t.importance[bestFeat] += bestGain
	t.nodes[node].feature = bestFeat
	t.nodes[node].thresh = bestThresh
	t.nodes[node].left = t.grow(X, y, leftIdx, depth+1, rnd)
	t.nodes[node].right = t.grow(X, y, rightIdx, depth+1, rnd)
	return node
}

func (t *Tree) sampleFeatures(rnd *rng.Rand) []int {
	n := len(t.active)
	if n == 0 {
		return nil
	}
	if rnd == nil || t.cfg.MTry >= n {
		return t.active
	}
	// partial Fisher-Yates over a copy of the active set
	all := append([]int(nil), t.active...)
	for i := 0; i < t.cfg.MTry; i++ {
		j := i + rnd.Intn(n-i)
		all[i], all[j] = all[j], all[i]
	}
	return all[:t.cfg.MTry]
}

func impurity(y []float64, idx []int, mean float64) float64 {
	s := 0.0
	for _, i := range idx {
		d := y[i] - mean
		s += d * d
	}
	return s
}

// Predict returns the tree's estimate for x.
func (t *Tree) Predict(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	n := int32(0)
	for {
		node := &t.nodes[n]
		if node.feature < 0 {
			return node.value
		}
		if x[node.feature] <= node.thresh {
			n = node.left
		} else {
			n = node.right
		}
	}
}

// Importance returns the tree's accumulated impurity decrease per
// feature (unnormalized).
func (t *Tree) Importance() []float64 {
	out := make([]float64, len(t.importance))
	copy(out, t.importance)
	return out
}

// NumNodes returns the size of the grown tree.
func (t *Tree) NumNodes() int { return len(t.nodes) }
