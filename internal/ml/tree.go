package ml

import (
	"gsight/internal/rng"
)

// TreeConfig parameterizes CART regression tree growth.
type TreeConfig struct {
	MaxDepth    int // maximum depth (root = 0); <=0 means 24
	MinLeaf     int // minimum samples per leaf; <=0 means 2
	MTry        int // features tried per split; <=0 means sqrt(d)
	MaxSplitVal int // cap on candidate thresholds per feature; <=0 means 32
}

func (c TreeConfig) withDefaults(d int) TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 24
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.MTry <= 0 {
		// Regression forests favour large feature subsamples
		// (scikit-learn defaults to all features); a third keeps
		// decorrelation while finding signal reliably.
		c.MTry = d / 3
		if c.MTry < 8 {
			c.MTry = 8
		}
	}
	if c.MaxSplitVal <= 0 {
		c.MaxSplitVal = 32
	}
	return c
}

// treeNode is one node of a CART regression tree, stored in a flat
// slice for cache-friendly prediction.
type treeNode struct {
	feature int     // split feature; -1 for leaves
	thresh  float64 // go left if x[feature] <= thresh
	left    int32   // child indices
	right   int32
	value   float64 // leaf prediction
}

// Tree is a CART regression tree.
type Tree struct {
	nodes      []treeNode
	cfg        TreeConfig
	dim        int
	importance []float64 // accumulated impurity decrease per feature
}

// NewTree returns an untrained tree with the given configuration.
func NewTree(cfg TreeConfig) *Tree { return &Tree{cfg: cfg} }

// Fit grows the tree on (X, y). A nil rnd makes feature subsampling
// deterministic (all features considered).
func (t *Tree) Fit(X [][]float64, y []float64) error { return t.FitSeeded(X, y, nil) }

// FitSeeded grows the tree using rnd for feature subsampling.
func (t *Tree) FitSeeded(X [][]float64, y []float64, rnd *rng.Rand) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	return t.fit(X, y, nil, rnd)
}

// FitIndexed grows the tree on the samples X[idx[0]], X[idx[1]], ...
// (duplicates allowed): a bootstrap resample is just an index list into
// the shared training window, so forests never materialize per-tree row
// copies. FitSeeded is the identity-index special case. The tree does
// not retain idx.
func (t *Tree) FitIndexed(X [][]float64, y []float64, idx []int, rnd *rng.Rand) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	if len(idx) == 0 {
		return ErrNoData
	}
	return t.fit(X, y, idx, rnd)
}

// fit is the training kernel. A nil idx means the identity bootstrap
// (every row once, in order). All per-node working state lives in a
// pooled fitScratch, so growth allocates only what the tree retains.
func (t *Tree) fit(X [][]float64, y []float64, idx []int, rnd *rng.Rand) error {
	n := len(y)
	if idx != nil {
		n = len(idx)
	}
	t.dim = len(X[0])
	s := fitPool.Get().(*fitScratch)
	defer fitPool.Put(s)
	s.prepare(n, t.dim)

	// Sparse colocation codes zero-pad unused workload slots and
	// servers; restricting split search to features that actually vary
	// makes the per-split feature subsample land on signal. The scan
	// walks rows (cache-linear) and retires features from the undecided
	// set on their first mismatch against the base row — the same
	// comparisons as a per-feature scan with early exit, without the
	// column stride.
	base := X[0]
	if idx != nil {
		base = X[idx[0]]
	}
	und := s.undecided[:0]
	for j := 0; j < t.dim; j++ {
		und = append(und, j)
	}
	for i := 1; i < n && len(und) > 0; i++ {
		row := X[i]
		if idx != nil {
			row = X[idx[i]]
		}
		w := 0
		for _, j := range und {
			if row[j] != base[j] {
				s.vary[j] = true
			} else {
				und[w] = j
				w++
			}
		}
		und = und[:w]
	}
	s.undecided = und[:cap(und)]
	active := s.active[:0]
	for j := 0; j < t.dim; j++ {
		if s.vary[j] {
			active = append(active, j)
		}
	}
	s.active = active
	s.feat = grabInts(s.feat, len(active))

	t.cfg = t.cfg.withDefaults(len(active))

	// Transpose the bootstrap into contiguous columns (active features
	// only) and gather the targets, so every split scan below reads
	// sequential memory.
	s.cols = grabFloats(s.cols, len(active)*n)
	for j := range s.colOf {
		s.colOf[j] = -1
	}
	for c, f := range active {
		s.colOf[f] = int32(c)
	}
	for i := 0; i < n; i++ {
		row, yv := X[i], y[i]
		if idx != nil {
			row, yv = X[idx[i]], y[idx[i]]
		}
		s.ty[i] = yv
		for c, f := range active {
			s.cols[c*n+i] = row[f]
		}
	}

	t.nodes = t.nodes[:0]
	t.importance = make([]float64, t.dim)
	t.grow(s, n, 0, n, 0, rnd)
	return nil
}

// windowColumns is a training window transposed into contiguous
// columns, shared read-only by every tree grown on it: feats lists the
// features with any variance across the window (ascending), column c
// holds feats[c]'s values in logical (oldest-first) sample order, and y
// the targets in the same order.
type windowColumns struct {
	feats []int
	cols  []float64 // len(feats) × w
	y     []float64
	w     int // window length (column stride)
	dim   int
}

// fitFromWindow grows the tree on the bootstrap lid — logical window
// indices, duplicates allowed — over a pre-transposed window. It is the
// forest's fast path: a feature can only vary within the bootstrap if
// it varies within the window, so the active scan probes just the
// window's candidate columns (already contiguous) instead of re-walking
// every raw row, and the per-tree column cache gathers from the shared
// transpose. The grown tree is bit-identical to FitIndexed over the
// same samples.
func (t *Tree) fitFromWindow(wc *windowColumns, lid []int, rnd *rng.Rand) error {
	n := len(lid)
	if n == 0 {
		return ErrNoData
	}
	t.dim = wc.dim
	s := fitPool.Get().(*fitScratch)
	defer fitPool.Put(s)
	s.prepare(n, t.dim)

	w := wc.w
	active := s.active[:0]
	src := s.srcCol[:0]
	for c, f := range wc.feats {
		col := wc.cols[c*w : (c+1)*w]
		v0 := col[lid[0]]
		for _, li := range lid[1:] {
			if col[li] != v0 {
				active = append(active, f)
				src = append(src, int32(c))
				break
			}
		}
	}
	s.active, s.srcCol = active, src
	s.feat = grabInts(s.feat, len(active))

	t.cfg = t.cfg.withDefaults(len(active))

	for j := range s.colOf {
		s.colOf[j] = -1
	}
	s.cols = grabFloats(s.cols, len(active)*n)
	for cA, f := range active {
		s.colOf[f] = int32(cA)
		srcCol := wc.cols[int(src[cA])*w : (int(src[cA])+1)*w]
		dst := s.cols[cA*n : cA*n+n]
		for i, li := range lid {
			dst[i] = srcCol[li]
		}
	}
	for i, li := range lid {
		s.ty[i] = wc.y[li]
	}

	t.nodes = t.nodes[:0]
	t.importance = make([]float64, t.dim)
	t.grow(s, n, 0, n, 0, rnd)
	return nil
}

// grow builds the subtree over the samples arena[lo:hi] and returns its
// node index. n is the bootstrap size (the column stride of s.cols).
func (t *Tree) grow(s *fitScratch, n, lo, hi, depth int, rnd *rng.Rand) int32 {
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1})

	span := s.arena[lo:hi]
	sum := 0.0
	for _, p := range span {
		sum += s.ty[p]
	}
	m := sum / float64(len(span))
	t.nodes[node].value = m

	if depth >= t.cfg.MaxDepth || len(span) < 2*t.cfg.MinLeaf {
		return node
	}
	imp := 0.0
	for _, p := range span {
		d := s.ty[p] - m
		imp += d * d
	}
	if imp <= 1e-12 {
		return node
	}

	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	features := t.sampleFeatures(s, rnd)
	sv, st := s.sv[:len(span)], s.st[:len(span)]
	for _, f := range features {
		col := s.cols[int(s.colOf[f])*n:]
		minv := col[span[0]]
		maxv := minv
		for k, p := range span {
			v := col[p]
			sv[k] = v
			st[k] = s.ty[p]
			if v < minv {
				minv = v
			} else if v > maxv {
				maxv = v
			}
		}
		if minv == maxv {
			continue
		}
		sortPairs(sv, st)
		// Prefix scan: total variance reduction for each cut point.
		var lSum, lSq float64
		var rSum, rSq float64
		for _, tv := range st {
			rSum += tv
			rSq += tv * tv
		}
		nf := float64(len(sv))
		total := rSq - rSum*rSum/nf
		step := 1
		if t.cfg.MaxSplitVal > 0 && len(sv) > t.cfg.MaxSplitVal {
			step = len(sv) / t.cfg.MaxSplitVal
		}
		for i := 0; i < len(sv)-1; i++ {
			lSum += st[i]
			lSq += st[i] * st[i]
			rSum -= st[i]
			rSq -= st[i] * st[i]
			if sv[i] == sv[i+1] {
				continue
			}
			if step > 1 && i%step != 0 {
				continue
			}
			nl, nr := float64(i+1), nf-float64(i+1)
			if int(nl) < t.cfg.MinLeaf || int(nr) < t.cfg.MinLeaf {
				continue
			}
			sse := (lSq - lSum*lSum/nl) + (rSq - rSum*rSum/nr)
			gain := total - sse
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (sv[i] + sv[i+1]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return node
	}

	// Stable in-place partition of the arena: lefts compact forward in
	// order, rights spill and are copied back behind them, so both
	// children see their samples in the parent's order (the exact order
	// the old per-node index lists preserved).
	col := s.cols[int(s.colOf[bestFeat])*n:]
	spill := s.spill[:0]
	w := lo
	for _, p := range span {
		if col[p] <= bestThresh {
			s.arena[w] = p
			w++
		} else {
			spill = append(spill, p)
		}
	}
	copy(s.arena[w:hi], spill)
	s.spill = spill[:0]
	if w == lo || w == hi {
		return node
	}
	t.importance[bestFeat] += bestGain
	t.nodes[node].feature = bestFeat
	t.nodes[node].thresh = bestThresh
	t.nodes[node].left = t.grow(s, n, lo, w, depth+1, rnd)
	t.nodes[node].right = t.grow(s, n, w, hi, depth+1, rnd)
	return node
}

// sampleFeatures returns the features to try at one node: the full
// active set when no subsampling applies, otherwise an MTry-element
// partial Fisher-Yates draw. The shuffle runs in the reusable s.feat
// buffer, re-copied from the active set each node so the draw sequence
// and the selected features are identical to shuffling a fresh copy.
func (t *Tree) sampleFeatures(s *fitScratch, rnd *rng.Rand) []int {
	n := len(s.active)
	if n == 0 {
		return nil
	}
	if rnd == nil || t.cfg.MTry >= n {
		return s.active
	}
	feat := s.feat[:n]
	copy(feat, s.active)
	for i := 0; i < t.cfg.MTry; i++ {
		j := i + rnd.Intn(n-i)
		feat[i], feat[j] = feat[j], feat[i]
	}
	return feat[:t.cfg.MTry]
}

// Predict returns the tree's estimate for x.
func (t *Tree) Predict(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	n := int32(0)
	for {
		node := &t.nodes[n]
		if node.feature < 0 {
			return node.value
		}
		if x[node.feature] <= node.thresh {
			n = node.left
		} else {
			n = node.right
		}
	}
}

// predictInto fills out[i] with the tree's prediction for X[i] — the
// batched traversal kernel: one pass per tree keeps the node slice hot
// in cache across the whole batch. Results are bit-identical to calling
// Predict per sample.
func (t *Tree) predictInto(X [][]float64, out []float64) {
	if len(t.nodes) == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	for i, x := range X {
		n := int32(0)
		for {
			node := &t.nodes[n]
			if node.feature < 0 {
				out[i] = node.value
				break
			}
			if x[node.feature] <= node.thresh {
				n = node.left
			} else {
				n = node.right
			}
		}
	}
}

// accumulateInto adds the tree's prediction for X[lo:hi] into out[lo:hi]
// — the forest-averaging variant of the batched traversal kernel.
func (t *Tree) accumulateInto(X [][]float64, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] += t.Predict(X[i])
	}
}

// Importance returns the tree's accumulated impurity decrease per
// feature (unnormalized).
func (t *Tree) Importance() []float64 {
	out := make([]float64, len(t.importance))
	copy(out, t.importance)
	return out
}

// NumNodes returns the size of the grown tree.
func (t *Tree) NumNodes() int { return len(t.nodes) }
