package ml

import (
	"gsight/internal/rng"
)

// GBRT is a gradient-boosted regression-tree ensemble: shallow CART
// trees fit sequentially to the residuals, shrunk by a learning rate.
// It is not part of the paper's §3.4 comparison set — it exists as the
// natural modern alternative to the random forest and is exercised by
// the model-ablation benchmarks. Incremental updates continue boosting
// on the new batch (stagewise fitting is inherently incremental),
// bounded by MaxStages.
type GBRT struct {
	Stages    int     // trees grown by Fit; <=0 means 150
	LearnRate float64 // shrinkage; <=0 means 0.1
	Tree      TreeConfig
	Seed      uint64
	// UpdateStages are grown per incremental batch; <=0 means Stages/10.
	UpdateStages int
	// MaxStages bounds the ensemble; <=0 means 3*Stages.
	MaxStages int

	base   float64
	stages []*Tree
	rnd    *rng.Rand
	fitted bool
	dim    int
}

// NewGBRT returns an untrained gradient-boosted ensemble.
func NewGBRT(seed uint64) *GBRT {
	return &GBRT{Seed: seed}
}

func (g *GBRT) defaults() {
	if g.Stages <= 0 {
		g.Stages = 150
	}
	if g.LearnRate <= 0 {
		g.LearnRate = 0.1
	}
	if g.Tree.MaxDepth <= 0 {
		g.Tree.MaxDepth = 4 // boosting wants weak learners
	}
	if g.UpdateStages <= 0 {
		g.UpdateStages = g.Stages / 10
		if g.UpdateStages < 5 {
			g.UpdateStages = 5
		}
	}
	if g.MaxStages <= 0 {
		g.MaxStages = 3 * g.Stages
	}
	if g.rnd == nil {
		g.rnd = rng.New(g.Seed ^ 0x6b12)
	}
}

// Fit trains the ensemble from scratch.
func (g *GBRT) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	g.defaults()
	g.stages = g.stages[:0]
	g.dim = len(X[0])
	g.base = mean(y)
	g.fitted = true
	return g.boost(X, y, g.Stages)
}

// Update continues boosting on the new batch.
func (g *GBRT) Update(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	if !g.fitted {
		return g.Fit(X, y)
	}
	if len(X[0]) != g.dim {
		return ErrDimMismatch
	}
	if err := g.boost(X, y, g.UpdateStages); err != nil {
		return err
	}
	if excess := len(g.stages) - g.MaxStages; excess > 0 {
		// Dropping early stages would invalidate the additive model;
		// instead stop accepting new stages once saturated.
		g.stages = g.stages[:g.MaxStages]
	}
	return nil
}

// boost grows n stages against the current residuals of (X, y).
// Stages are inherently sequential (each fits the previous residuals),
// but every per-stage step is batched: residual seeding and the
// post-fit residual refresh run tree-outer through the batched
// traversal kernel, and each FitSeeded uses the shared scratch-buffer
// training kernel. Per-sample accumulation order is unchanged (base,
// then stages in order), so residuals — and the grown stages — are
// bit-identical to the scalar loop.
func (g *GBRT) boost(X [][]float64, y []float64, n int) error {
	resid := make([]float64, len(y))
	pred := make([]float64, len(y))
	g.predictBatchInto(X, resid)
	for i := range y {
		resid[i] = y[i] - resid[i]
	}
	for s := 0; s < n; s++ {
		t := NewTree(g.Tree)
		if err := t.FitSeeded(X, resid, g.rnd.Split()); err != nil {
			return err
		}
		g.stages = append(g.stages, t)
		t.predictInto(X, pred)
		for i := range resid {
			resid[i] -= g.LearnRate * pred[i]
		}
	}
	return nil
}

// predictBatchInto fills out[i] with the ensemble prediction for X[i],
// tree-outer so each stage's nodes stay cache-hot across the batch.
// Bit-identical to calling Predict per sample.
func (g *GBRT) predictBatchInto(X [][]float64, out []float64) {
	for i := range out {
		out[i] = g.base
	}
	for _, t := range g.stages {
		for i, x := range X {
			out[i] += g.LearnRate * t.Predict(x)
		}
	}
}

// Predict sums the shrunken stage outputs.
func (g *GBRT) Predict(x []float64) float64 {
	out := g.base
	for _, t := range g.stages {
		out += g.LearnRate * t.Predict(x)
	}
	return out
}

// NumStages returns the current ensemble size.
func (g *GBRT) NumStages() int { return len(g.stages) }

var _ Incremental = (*GBRT)(nil)
