package ml

import (
	"gsight/internal/rng"
)

// GBRT is a gradient-boosted regression-tree ensemble: shallow CART
// trees fit sequentially to the residuals, shrunk by a learning rate.
// It is not part of the paper's §3.4 comparison set — it exists as the
// natural modern alternative to the random forest and is exercised by
// the model-ablation benchmarks. Incremental updates continue boosting
// on the new batch (stagewise fitting is inherently incremental),
// bounded by MaxStages.
type GBRT struct {
	Stages    int     // trees grown by Fit; <=0 means 150
	LearnRate float64 // shrinkage; <=0 means 0.1
	Tree      TreeConfig
	Seed      uint64
	// UpdateStages are grown per incremental batch; <=0 means Stages/10.
	UpdateStages int
	// MaxStages bounds the ensemble; <=0 means 3*Stages.
	MaxStages int

	base   float64
	stages []*Tree
	rnd    *rng.Rand
	fitted bool
	dim    int
}

// NewGBRT returns an untrained gradient-boosted ensemble.
func NewGBRT(seed uint64) *GBRT {
	return &GBRT{Seed: seed}
}

func (g *GBRT) defaults() {
	if g.Stages <= 0 {
		g.Stages = 150
	}
	if g.LearnRate <= 0 {
		g.LearnRate = 0.1
	}
	if g.Tree.MaxDepth <= 0 {
		g.Tree.MaxDepth = 4 // boosting wants weak learners
	}
	if g.UpdateStages <= 0 {
		g.UpdateStages = g.Stages / 10
		if g.UpdateStages < 5 {
			g.UpdateStages = 5
		}
	}
	if g.MaxStages <= 0 {
		g.MaxStages = 3 * g.Stages
	}
	if g.rnd == nil {
		g.rnd = rng.New(g.Seed ^ 0x6b12)
	}
}

// Fit trains the ensemble from scratch.
func (g *GBRT) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	g.defaults()
	g.stages = g.stages[:0]
	g.dim = len(X[0])
	g.base = mean(y)
	g.fitted = true
	return g.boost(X, y, g.Stages)
}

// Update continues boosting on the new batch.
func (g *GBRT) Update(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	if !g.fitted {
		return g.Fit(X, y)
	}
	if len(X[0]) != g.dim {
		return ErrDimMismatch
	}
	if err := g.boost(X, y, g.UpdateStages); err != nil {
		return err
	}
	if excess := len(g.stages) - g.MaxStages; excess > 0 {
		// Dropping early stages would invalidate the additive model;
		// instead stop accepting new stages once saturated.
		g.stages = g.stages[:g.MaxStages]
	}
	return nil
}

// boost grows n stages against the current residuals of (X, y).
func (g *GBRT) boost(X [][]float64, y []float64, n int) error {
	resid := make([]float64, len(y))
	for i := range y {
		resid[i] = y[i] - g.Predict(X[i])
	}
	for s := 0; s < n; s++ {
		t := NewTree(g.Tree)
		if err := t.FitSeeded(X, resid, g.rnd.Split()); err != nil {
			return err
		}
		g.stages = append(g.stages, t)
		for i := range resid {
			resid[i] -= g.LearnRate * t.Predict(X[i])
		}
	}
	return nil
}

// Predict sums the shrunken stage outputs.
func (g *GBRT) Predict(x []float64) float64 {
	out := g.base
	for _, t := range g.stages {
		out += g.LearnRate * t.Predict(x)
	}
	return out
}

// NumStages returns the current ensemble size.
func (g *GBRT) NumStages() int { return len(g.stages) }

var _ Incremental = (*GBRT)(nil)
