package ml

import "gsight/internal/sortx"

// sortPairs sorts the parallel arrays (v, t) by v, ascending. It is the
// split-search sort of the training kernel: v holds the candidate
// feature's values and t the targets, gathered for one tree node.
//
// The pdqsort transcription itself lives in internal/sortx (it is
// shared with the schedulers' candidate ordering); this wrapper keeps
// the kernel's call site and its permutation contract: the sort
// performs the exact permutation sort.Slice with a `v[a] < v[b]`
// comparator would, so the floating-point prefix sums of the split
// scan stay bit-identical.
func sortPairs(v, t []float64) { sortx.Pairs(v, t) }
