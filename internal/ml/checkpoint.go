package ml

import (
	"fmt"
	"math"

	"gsight/internal/rng"
)

// ForestState is the full live state of a forest for crash-consistent
// checkpointing. Unlike ForestExport (a portable trained model), it
// captures everything a resumed controller needs to continue the exact
// incremental-learning stream: the trees, the ring training window in
// logical (oldest-first) order, and the RNG cursor the next update's
// bootstraps will draw from. Restoring it into a same-configured forest
// makes every subsequent Update/Predict byte-identical to the
// uninterrupted run.
type ForestState struct {
	Version int          `json:"version"`
	Dim     int          `json:"dim"`
	Fitted  bool         `json:"fitted"`
	Rng     [4]uint64    `json:"rng"`
	Trees   []TreeExport `json:"trees"`
	WindowX [][]float64  `json:"window_x"`
	WindowY []float64    `json:"window_y"`
}

// ExportState snapshots the forest's live state. Window rows are
// referenced, not copied — the caller serializes the state before the
// next Update.
func (f *Forest) ExportState() ForestState {
	st := ForestState{Version: 1, Dim: f.dim, Fitted: f.fitted, Rng: f.rnd.State()}
	for _, t := range f.trees {
		st.Trees = append(st.Trees, t.Export())
	}
	n := f.buf.Len()
	st.WindowX = make([][]float64, n)
	st.WindowY = make([]float64, n)
	for i := 0; i < n; i++ {
		p := f.buf.phys(i)
		st.WindowX[i] = f.buf.x[p]
		st.WindowY[i] = f.buf.y[p]
	}
	return st
}

// RestoreState replaces the forest's live state with a snapshot,
// validating structure and values so corrupt on-disk state is rejected
// instead of silently poisoning the model. The forest keeps its
// configuration — state carries data, code carries parameters.
//
// The restored window starts at ring position zero regardless of where
// the original seam sat: training reads the window in logical order
// only (prepWindow, bootstrap index draws), so the seam position is
// unobservable and the resumed stream stays byte-identical.
func (f *Forest) RestoreState(st ForestState) error {
	if st.Version != 1 {
		return fmt.Errorf("ml: unsupported forest state version %d", st.Version)
	}
	if st.Dim < 0 {
		return fmt.Errorf("ml: forest state dim %d negative", st.Dim)
	}
	if len(st.WindowX) != len(st.WindowY) {
		return fmt.Errorf("ml: forest state window X/Y length mismatch (%d vs %d)", len(st.WindowX), len(st.WindowY))
	}
	if len(st.WindowY) > f.cfg.Window {
		return fmt.Errorf("ml: forest state window %d exceeds configured capacity %d", len(st.WindowY), f.cfg.Window)
	}
	if st.Fitted && len(st.Trees) == 0 {
		return fmt.Errorf("ml: forest state fitted but has no trees")
	}
	if len(st.Trees) > f.cfg.MaxTrees {
		return fmt.Errorf("ml: forest state has %d trees, configured max is %d", len(st.Trees), f.cfg.MaxTrees)
	}
	rnd, err := rng.FromState(st.Rng)
	if err != nil {
		return fmt.Errorf("ml: forest state: %w", err)
	}
	trees := make([]*Tree, len(st.Trees))
	for i, te := range st.Trees {
		if te.Dim != st.Dim {
			return fmt.Errorf("ml: forest state tree %d dim %d != forest dim %d", i, te.Dim, st.Dim)
		}
		t, err := ImportTree(te)
		if err != nil {
			return fmt.Errorf("ml: forest state tree %d: %w", i, err)
		}
		trees[i] = t
	}
	for i, row := range st.WindowX {
		if len(row) != st.Dim {
			return fmt.Errorf("ml: forest state window row %d has %d features, dim is %d", i, len(row), st.Dim)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: forest state window row %d has non-finite features", i)
			}
		}
		if math.IsNaN(st.WindowY[i]) || math.IsInf(st.WindowY[i], 0) {
			return fmt.Errorf("ml: forest state window label %d non-finite", i)
		}
	}
	f.trees = trees
	f.rnd = rnd
	f.dim = st.Dim
	f.fitted = st.Fitted
	f.buf.reset(f.cfg.Window)
	for i := range st.WindowY {
		f.buf.push(st.WindowX[i], st.WindowY[i])
	}
	return nil
}
