package ml

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"gsight/internal/rng"
	"gsight/internal/telemetry"
)

// ForestConfig parameterizes random forest training.
type ForestConfig struct {
	Trees int // trees grown by Fit; <=0 means 40
	Tree  TreeConfig
	Seed  uint64
	// Incremental behaviour (IRFR): Update grows UpdateTrees fresh
	// trees on the recent window and retires the oldest so the forest
	// never exceeds MaxTrees.
	UpdateTrees int // <=0 means max(4, Trees/8)
	MaxTrees    int // <=0 means 2*Trees
	Window      int // samples kept for incremental training; <=0 means 12000
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.Trees <= 0 {
		c.Trees = 40
	}
	if c.UpdateTrees <= 0 {
		c.UpdateTrees = c.Trees / 4
		if c.UpdateTrees < 4 {
			c.UpdateTrees = 4
		}
	}
	if c.MaxTrees <= 0 {
		// Fixed capacity: every update grows fresh trees and culls the
		// worst-scoring ones, keeping the ensemble size constant.
		c.MaxTrees = c.Trees
	}
	if c.Window <= 0 {
		c.Window = 12000
	}
	return c
}

// Forest is a random-forest regressor: bootstrap-resampled CART trees
// with per-split feature subsampling. It satisfies Incremental via
// window-retraining of a rotating subset of trees — the IRFR model of
// §3.4.
type Forest struct {
	cfg    ForestConfig
	trees  []*Tree
	rnd    *rng.Rand
	buf    Dataset // retained window for incremental updates
	dim    int
	fitted bool
	ins    telemetry.ForestInstruments
}

// Instrument attaches the shared forest instrument set. The zero value
// disables instrumentation.
func (f *Forest) Instrument(ins telemetry.ForestInstruments) { f.ins = ins }

// NewForest returns an untrained forest.
func NewForest(cfg ForestConfig) *Forest {
	cfg = cfg.withDefaults()
	return &Forest{cfg: cfg, rnd: rng.New(cfg.Seed ^ 0x5eed0f0e57)}
}

// Fit trains cfg.Trees trees on bootstrap resamples of (X, y).
func (f *Forest) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	span := telemetry.StartSpan(f.ins.FitSeconds)
	f.dim = len(X[0])
	f.trees = f.trees[:0]
	f.buf = Dataset{}
	f.absorb(X, y)
	trees, err := f.growTrees(f.cfg.Trees)
	if err != nil {
		return err
	}
	f.trees = append(f.trees, trees...)
	f.fitted = true
	f.ins.Fits.Inc()
	f.ins.TreesGrown.Add(uint64(len(trees)))
	f.ins.WindowSize.SetInt(f.buf.Len())
	span.End()
	return nil
}

// Update folds a new batch in: the window advances, UpdateTrees fresh
// trees are grown on it, and the oldest trees are retired beyond
// MaxTrees. The forest therefore tracks workload drift (Figure 13)
// while past trees preserve stability (Figure 10(b)).
func (f *Forest) Update(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	if !f.fitted {
		return f.Fit(X, y)
	}
	if len(X[0]) != f.dim {
		return ErrDimMismatch
	}
	span := telemetry.StartSpan(f.ins.UpdateSeconds)
	f.absorb(X, y)
	trees, err := f.growTrees(f.cfg.UpdateTrees)
	if err != nil {
		return err
	}
	before := len(f.trees) + len(trees)
	f.trees = append(f.trees, trees...)
	f.prune(X, y)
	f.ins.Updates.Inc()
	f.ins.TreesGrown.Add(uint64(len(trees)))
	f.ins.TreesPruned.Add(uint64(before - len(f.trees)))
	f.ins.WindowSize.SetInt(f.buf.Len())
	span.End()
	return nil
}

// prune keeps the forest at MaxTrees by discarding the trees that score
// worst on the freshest batch. Under stationary workloads the scores
// are statistically indistinguishable, so pruning is harmless; after a
// concept shift (Figure 13) the stale-regime trees score terribly and
// are culled within a few updates.
//
// Each tree is scored once and the scores are sorted once; survivors
// keep their original order. A stable descending sort breaks SSE ties
// by tree age exactly like the previous repeated worst-scan did, so the
// surviving set is unchanged — just O(T log T) instead of O(excess*T).
func (f *Forest) prune(X [][]float64, y []float64) {
	excess := len(f.trees) - f.cfg.MaxTrees
	if excess <= 0 {
		return
	}
	sse := make([]float64, len(f.trees))
	for i, t := range f.trees {
		s := 0.0
		for j, x := range X {
			d := t.Predict(x) - y[j]
			s += d * d
		}
		sse[i] = s
	}
	order := make([]int, len(f.trees))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sse[order[a]] > sse[order[b]] })
	drop := make([]bool, len(f.trees))
	for _, i := range order[:excess] {
		drop[i] = true
	}
	kept := f.trees[:0]
	for i, t := range f.trees {
		if !drop[i] {
			kept = append(kept, t)
		}
	}
	f.trees = kept
}

func (f *Forest) absorb(X [][]float64, y []float64) {
	for i := range y {
		f.buf.Append(X[i], y[i])
	}
	if f.buf.Len() > f.cfg.Window {
		tail := f.buf.Tail(f.cfg.Window)
		f.buf = Dataset{
			X: append([][]float64(nil), tail.X...),
			Y: append([]float64(nil), tail.Y...),
		}
	}
}

// growTrees grows k trees, drawing each tree's bootstrap and split RNG
// sequentially from the forest's stream (determinism) and then fitting
// all trees concurrently across the available cores. Bootstraps are
// index lists into the shared window (FitIndexed) rather than
// materialized row copies.
func (f *Forest) growTrees(k int) ([]*Tree, error) {
	n := f.buf.Len()
	if n == 0 {
		return nil, ErrNoData
	}
	type job struct {
		idx []int
		rnd *rng.Rand
	}
	jobs := make([]job, k)
	for t := 0; t < k; t++ {
		idx := make([]int, n)
		for i := 0; i < n; i++ {
			// Recency-biased bootstrap: u^1.5 skews index draws
			// toward the newest window entries, so fresh trees track
			// drift.
			u := f.rnd.Float64()
			j := n - 1 - int(u*math.Sqrt(u)*float64(n))
			if j < 0 {
				j = 0
			}
			idx[i] = j
		}
		jobs[t] = job{idx, f.rnd.Split()}
	}

	trees := make([]*Tree, k)
	errs := make([]error, k)
	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				tree := NewTree(f.cfg.Tree)
				errs[t] = tree.FitIndexed(f.buf.X, f.buf.Y, jobs[t].idx, jobs[t].rnd)
				trees[t] = tree
			}
		}()
	}
	for t := 0; t < k; t++ {
		next <- t
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return trees, nil
}

// Predict averages the trees' estimates.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.Predict(x)
	}
	return sum / float64(len(f.trees))
}

// PredictBatch predicts every sample of X. Results are bit-identical to
// calling Predict per sample.
func (f *Forest) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	f.PredictBatchInto(X, out)
	return out
}

// batchParallelMin is the per-worker sample count below which goroutine
// fan-out costs more than it saves.
const batchParallelMin = 16

// PredictBatchInto predicts every sample of X into out (len(out) must
// equal len(X)). Large batches fan out over sample ranges; within each
// range the loop is tree-outer/sample-inner, so a tree's nodes stay hot
// in cache across the whole range. Because every sample still
// accumulates its tree sum in tree order, the results are bit-identical
// to per-sample Predict regardless of worker count.
func (f *Forest) PredictBatchInto(X [][]float64, out []float64) {
	n := len(X)
	if n == 0 {
		return
	}
	if len(f.trees) == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if max := n / batchParallelMin; workers > max {
		workers = max
	}
	if workers <= 1 {
		f.predictRange(X, out, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f.predictRange(X, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// predictRange fills out[lo:hi] with forest predictions for X[lo:hi].
func (f *Forest) predictRange(X [][]float64, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = 0
	}
	for _, t := range f.trees {
		for i := lo; i < hi; i++ {
			out[i] += t.Predict(X[i])
		}
	}
	n := float64(len(f.trees))
	for i := lo; i < hi; i++ {
		out[i] /= n
	}
}

// Importance returns the normalized impurity-based feature importances
// (summing to 1 when any split occurred) — Figure 8's metric.
func (f *Forest) Importance() []float64 {
	out := make([]float64, f.dim)
	for _, t := range f.trees {
		for i, v := range t.Importance() {
			out[i] += v
		}
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}

// NumTrees returns the current forest size.
func (f *Forest) NumTrees() int { return len(f.trees) }

var _ Incremental = (*Forest)(nil)
var _ BatchRegressor = (*Forest)(nil)
