package ml

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"gsight/internal/rng"
	"gsight/internal/telemetry"
)

// ForestConfig parameterizes random forest training.
type ForestConfig struct {
	Trees int // trees grown by Fit; <=0 means 40
	Tree  TreeConfig
	Seed  uint64
	// Incremental behaviour (IRFR): Update grows UpdateTrees fresh
	// trees on the recent window and retires the oldest so the forest
	// never exceeds MaxTrees.
	UpdateTrees int // <=0 means max(4, Trees/8)
	MaxTrees    int // <=0 means 2*Trees
	Window      int // samples kept for incremental training; <=0 means 12000
	// Workers bounds the tree-growing worker pool; <=0 means
	// GOMAXPROCS. Same-seed forests are byte-identical for every value:
	// each tree's bootstrap and split-RNG stream are drawn sequentially
	// before the fan-out. Excluded from serialization — it describes the
	// machine, not the model.
	Workers int `json:"-"`
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.Trees <= 0 {
		c.Trees = 40
	}
	if c.UpdateTrees <= 0 {
		c.UpdateTrees = c.Trees / 4
		if c.UpdateTrees < 4 {
			c.UpdateTrees = 4
		}
	}
	if c.MaxTrees <= 0 {
		// Fixed capacity: every update grows fresh trees and culls the
		// worst-scoring ones, keeping the ensemble size constant.
		c.MaxTrees = c.Trees
	}
	if c.Window <= 0 {
		c.Window = 12000
	}
	return c
}

// Forest is a random-forest regressor: bootstrap-resampled CART trees
// with per-split feature subsampling. It satisfies Incremental via
// window-retraining of a rotating subset of trees — the IRFR model of
// §3.4.
type Forest struct {
	cfg    ForestConfig
	trees  []*Tree
	rnd    *rng.Rand
	buf    window // ring of retained samples for incremental updates
	boot   []int  // reusable bootstrap index arena (k trees × window)
	dim    int
	fitted bool
	ins    telemetry.ForestInstruments

	// prune scratch, reused across updates.
	sse   []float64
	pred  []float64
	order []int
	drop  []bool

	// shared window transpose, rebuilt once per growTrees call and read
	// concurrently by the tree-growing workers.
	wc     windowColumns
	wcVary []bool
	wcUnd  []int
}

// Instrument attaches the shared forest instrument set. The zero value
// disables instrumentation.
func (f *Forest) Instrument(ins telemetry.ForestInstruments) { f.ins = ins }

// NewForest returns an untrained forest.
func NewForest(cfg ForestConfig) *Forest {
	cfg = cfg.withDefaults()
	f := &Forest{cfg: cfg, rnd: rng.New(cfg.Seed ^ 0x5eed0f0e57)}
	f.buf.reset(cfg.Window)
	return f
}

// Fit trains cfg.Trees trees on bootstrap resamples of (X, y).
func (f *Forest) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	span := telemetry.StartSpan(f.ins.FitSeconds)
	f.dim = len(X[0])
	f.trees = f.trees[:0]
	f.buf.reset(f.cfg.Window)
	f.absorb(X, y)
	trees, err := f.growTrees(f.cfg.Trees)
	if err != nil {
		return err
	}
	f.trees = append(f.trees, trees...)
	f.fitted = true
	f.ins.Fits.Inc()
	f.ins.TreesGrown.Add(uint64(len(trees)))
	f.ins.WindowSize.SetInt(f.buf.Len())
	span.End()
	return nil
}

// Update folds a new batch in: the window advances, UpdateTrees fresh
// trees are grown on it, and the oldest trees are retired beyond
// MaxTrees. The forest therefore tracks workload drift (Figure 13)
// while past trees preserve stability (Figure 10(b)).
func (f *Forest) Update(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	if !f.fitted {
		return f.Fit(X, y)
	}
	if len(X[0]) != f.dim {
		return ErrDimMismatch
	}
	span := telemetry.StartSpan(f.ins.UpdateSeconds)
	f.absorb(X, y)
	trees, err := f.growTrees(f.cfg.UpdateTrees)
	if err != nil {
		return err
	}
	before := len(f.trees) + len(trees)
	f.trees = append(f.trees, trees...)
	f.prune(X, y)
	f.ins.Updates.Inc()
	f.ins.TreesGrown.Add(uint64(len(trees)))
	f.ins.TreesPruned.Add(uint64(before - len(f.trees)))
	f.ins.WindowSize.SetInt(f.buf.Len())
	span.End()
	return nil
}

// sseOrder stably sorts tree indices by descending SSE. Stability
// breaks score ties by tree age, exactly like the repeated worst-scan
// this replaced, so the surviving set is unchanged.
type sseOrder struct {
	order []int
	sse   []float64
}

func (s *sseOrder) Len() int           { return len(s.order) }
func (s *sseOrder) Less(a, b int) bool { return s.sse[s.order[a]] > s.sse[s.order[b]] }
func (s *sseOrder) Swap(a, b int)      { s.order[a], s.order[b] = s.order[b], s.order[a] }

// prune keeps the forest at MaxTrees by discarding the trees that score
// worst on the freshest batch. Under stationary workloads the scores
// are statistically indistinguishable, so pruning is harmless; after a
// concept shift (Figure 13) the stale-regime trees score terribly and
// are culled within a few updates.
//
// Scoring runs through the batched traversal kernel (one pass per tree
// over the batch, predictInto) and all score/order/drop buffers are
// reused across updates, so pruning allocates nothing in steady state.
func (f *Forest) prune(X [][]float64, y []float64) {
	excess := len(f.trees) - f.cfg.MaxTrees
	if excess <= 0 {
		return
	}
	nt := len(f.trees)
	f.sse = grabFloats(f.sse, nt)
	f.pred = grabFloats(f.pred, len(X))
	for i, t := range f.trees {
		t.predictInto(X, f.pred)
		s := 0.0
		for j, p := range f.pred {
			d := p - y[j]
			s += d * d
		}
		f.sse[i] = s
	}
	f.order = grabInts(f.order, nt)
	for i := range f.order {
		f.order[i] = i
	}
	sort.Stable(&sseOrder{order: f.order, sse: f.sse})
	if cap(f.drop) < nt {
		f.drop = make([]bool, nt)
	}
	f.drop = f.drop[:nt]
	for i := range f.drop {
		f.drop[i] = false
	}
	for _, i := range f.order[:excess] {
		f.drop[i] = true
	}
	kept := f.trees[:0]
	for i, t := range f.trees {
		if !f.drop[i] {
			kept = append(kept, t)
		}
	}
	f.trees = kept
}

// absorb pushes the batch into the ring window: O(batch), regardless of
// how much history is retained.
func (f *Forest) absorb(X [][]float64, y []float64) {
	for i := range y {
		f.buf.push(X[i], y[i])
	}
}

// prepWindow rebuilds the shared window transpose: one candidate scan
// and one column gather per update, amortized over every tree grown on
// it. Candidates are the features with any variance across the window —
// an exact superset of any bootstrap's active set, since a bootstrap
// only ever sees window rows — so per-tree active scans probe just
// these columns. Rows are visited in logical (oldest-first) order, so
// the transpose is independent of where the ring's seam currently sits.
func (f *Forest) prepWindow() {
	w := f.buf.Len()
	d := f.dim
	if d == 0 && w > 0 {
		d = len(f.buf.x[f.buf.phys(0)])
	}
	if cap(f.wcVary) < d {
		f.wcVary = make([]bool, d)
	}
	f.wcVary = f.wcVary[:d]
	for j := range f.wcVary {
		f.wcVary[j] = false
	}
	f.wcUnd = grabInts(f.wcUnd, d)
	und := f.wcUnd
	for j := range und {
		und[j] = j
	}
	base := f.buf.x[f.buf.phys(0)]
	for i := 1; i < w && len(und) > 0; i++ {
		row := f.buf.x[f.buf.phys(i)]
		kept := und[:0]
		for _, j := range und {
			if row[j] != base[j] {
				f.wcVary[j] = true
			} else {
				kept = append(kept, j)
			}
		}
		und = kept
	}
	f.wc.feats = f.wc.feats[:0]
	for j := 0; j < d; j++ {
		if f.wcVary[j] {
			f.wc.feats = append(f.wc.feats, j)
		}
	}
	nc := len(f.wc.feats)
	f.wc.cols = grabFloats(f.wc.cols, nc*w)
	f.wc.y = grabFloats(f.wc.y, w)
	for i := 0; i < w; i++ {
		p := f.buf.phys(i)
		row := f.buf.x[p]
		f.wc.y[i] = f.buf.y[p]
		for c, j := range f.wc.feats {
			f.wc.cols[c*w+i] = row[j]
		}
	}
	f.wc.w = w
	f.wc.dim = d
}

// growTrees grows k trees, drawing each tree's bootstrap and split RNG
// sequentially from the forest's stream and then fitting the trees
// across a bounded worker pool (cfg.Workers wide, the pattern of the
// experiments harness). Because all randomness is fixed before the
// fan-out, the shared window transpose is read-only during it, and each
// worker writes only its own tree slot, the grown forest is
// byte-identical for every pool size. Bootstraps are logical index
// draws over the transposed window (fitFromWindow), never materialized
// row copies; the index arena is reused across updates.
func (f *Forest) growTrees(k int) ([]*Tree, error) {
	n := f.buf.Len()
	if n == 0 {
		return nil, ErrNoData
	}
	f.prepWindow()
	if cap(f.boot) < k*n {
		f.boot = make([]int, k*n)
	}
	f.boot = f.boot[:k*n]
	rnds := make([]*rng.Rand, k)
	for t := 0; t < k; t++ {
		idx := f.boot[t*n : (t+1)*n]
		for i := 0; i < n; i++ {
			// Recency-biased bootstrap: u^1.5 skews index draws
			// toward the newest window entries, so fresh trees track
			// drift.
			u := f.rnd.Float64()
			j := n - 1 - int(u*math.Sqrt(u)*float64(n))
			if j < 0 {
				j = 0
			}
			idx[i] = j
		}
		rnds[t] = f.rnd.Split()
	}

	trees := make([]*Tree, k)
	workers := f.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		for t := 0; t < k; t++ {
			tree := NewTree(f.cfg.Tree)
			if err := tree.fitFromWindow(&f.wc, f.boot[t*n:(t+1)*n], rnds[t]); err != nil {
				return nil, err
			}
			trees[t] = tree
		}
		return trees, nil
	}
	errs := make([]error, k)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				tree := NewTree(f.cfg.Tree)
				errs[t] = tree.fitFromWindow(&f.wc, f.boot[t*n:(t+1)*n], rnds[t])
				trees[t] = tree
			}
		}()
	}
	for t := 0; t < k; t++ {
		next <- t
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return trees, nil
}

// Predict averages the trees' estimates.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.Predict(x)
	}
	return sum / float64(len(f.trees))
}

// PredictBatch predicts every sample of X. Results are bit-identical to
// calling Predict per sample.
func (f *Forest) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	f.PredictBatchInto(X, out)
	return out
}

// batchParallelMin is the per-worker sample count below which goroutine
// fan-out costs more than it saves.
const batchParallelMin = 16

// PredictBatchInto predicts every sample of X into out (len(out) must
// equal len(X)). Large batches fan out over sample ranges; within each
// range the loop is tree-outer/sample-inner, so a tree's nodes stay hot
// in cache across the whole range. Because every sample still
// accumulates its tree sum in tree order, the results are bit-identical
// to per-sample Predict regardless of worker count.
func (f *Forest) PredictBatchInto(X [][]float64, out []float64) {
	n := len(X)
	if n == 0 {
		return
	}
	if len(f.trees) == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if max := n / batchParallelMin; workers > max {
		workers = max
	}
	if workers <= 1 {
		f.predictRange(X, out, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f.predictRange(X, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// predictRange fills out[lo:hi] with forest predictions for X[lo:hi].
func (f *Forest) predictRange(X [][]float64, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = 0
	}
	for _, t := range f.trees {
		t.accumulateInto(X, out, lo, hi)
	}
	n := float64(len(f.trees))
	for i := lo; i < hi; i++ {
		out[i] /= n
	}
}

// Importance returns the normalized impurity-based feature importances
// (summing to 1 when any split occurred) — Figure 8's metric.
func (f *Forest) Importance() []float64 {
	out := make([]float64, f.dim)
	for _, t := range f.trees {
		for i, v := range t.Importance() {
			out[i] += v
		}
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}

// NumTrees returns the current forest size.
func (f *Forest) NumTrees() int { return len(f.trees) }

var _ Incremental = (*Forest)(nil)
var _ BatchRegressor = (*Forest)(nil)
