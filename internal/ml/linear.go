package ml

import (
	"math"

	"gsight/internal/rng"
)

// sgdBase holds the state shared by the SGD-trained linear models (ILR
// and ISVR): standardized inputs, standardized target, weight vector
// trained by stochastic gradient descent.
type sgdBase struct {
	w       []float64
	b       float64
	xScaler *Scaler
	yMean   float64
	yM2     float64
	yN      float64
	epochs  int
	lr      float64
	l2      float64
	rnd     *rng.Rand
}

func newSGDBase(epochs int, lr, l2 float64, seed uint64) sgdBase {
	return sgdBase{
		xScaler: NewScaler(),
		epochs:  epochs,
		lr:      lr,
		l2:      l2,
		rnd:     rng.New(seed ^ 0x11ea4),
	}
}

func (s *sgdBase) observeY(y float64) {
	s.yN++
	d := y - s.yMean
	s.yMean += d / s.yN
	s.yM2 += d * (y - s.yMean)
}

func (s *sgdBase) yStd() float64 {
	if s.yN < 2 {
		return 1
	}
	v := s.yM2 / s.yN
	if v < 1e-12 {
		return 1
	}
	return math.Sqrt(v)
}

func (s *sgdBase) ensureDim(d int) {
	if s.w == nil {
		s.w = make([]float64, d)
	}
}

// raw returns the standardized-space linear output for standardized xs.
func (s *sgdBase) raw(xs []float64) float64 {
	v := s.b
	for i, x := range xs {
		v += s.w[i] * x
	}
	return v
}

// predict maps back to target space.
func (s *sgdBase) predict(x []float64) float64 {
	if s.w == nil {
		return 0
	}
	xs := s.xScaler.Transform(x)
	return s.raw(xs)*s.yStd() + s.yMean
}

// runEpochs performs SGD over the batch with the supplied per-sample
// gradient step. grad returns dLoss/dRaw for the standardized residual.
func (s *sgdBase) runEpochs(X [][]float64, y []float64, epochs int, grad func(raw, yStd float64) float64) {
	n := len(y)
	std := s.yStd()
	for e := 0; e < epochs; e++ {
		lr := s.lr / (1 + 0.1*float64(e))
		perm := s.rnd.Perm(n)
		for _, i := range perm {
			xs := s.xScaler.Transform(X[i])
			ys := (y[i] - s.yMean) / std
			g := grad(s.raw(xs), ys)
			// Clip the per-sample gradient: standardized residuals in
			// high dimension occasionally explode and a single clipped
			// step costs less than divergence.
			if g > 3 {
				g = 3
			} else if g < -3 {
				g = -3
			}
			for j, xj := range xs {
				s.w[j] -= lr * (g*xj + s.l2*s.w[j])
			}
			s.b -= lr * g
		}
	}
}

// Linear is an L2-regularized linear regressor trained by SGD — the
// paper's ILR comparison model (incremental logistic/linear
// regression). It underfits the strongly nonlinear interference
// surface, which is exactly its role in Figures 5 and 9.
type Linear struct {
	sgdBase
}

// NewLinear returns an untrained linear model.
func NewLinear(seed uint64) *Linear {
	return &Linear{newSGDBase(12, 0.005, 1e-4, seed)}
}

// Fit trains from scratch.
func (m *Linear) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	m.sgdBase = newSGDBase(m.epochs, m.lr, m.l2, 0)
	return m.Update(X, y)
}

// Update folds a batch in with a few SGD epochs.
func (m *Linear) Update(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	m.ensureDim(len(X[0]))
	if len(X[0]) != len(m.w) {
		return ErrDimMismatch
	}
	for i := range y {
		m.xScaler.Observe(X[i])
		m.observeY(y[i])
	}
	m.runEpochs(X, y, m.epochs, func(raw, ys float64) float64 {
		return raw - ys // squared loss gradient
	})
	return nil
}

// Predict returns the linear estimate.
func (m *Linear) Predict(x []float64) float64 { return m.predict(x) }

var _ Incremental = (*Linear)(nil)

// SVR is a linear support-vector regressor (epsilon-insensitive loss)
// trained by SGD — the paper's ISVR comparison model.
type SVR struct {
	sgdBase
	Epsilon float64 // insensitivity tube in standardized target units
}

// NewSVR returns an untrained SVR.
func NewSVR(seed uint64) *SVR {
	return &SVR{sgdBase: newSGDBase(12, 0.005, 1e-4, seed), Epsilon: 0.05}
}

// Fit trains from scratch.
func (m *SVR) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	eps := m.Epsilon
	m.sgdBase = newSGDBase(m.epochs, m.lr, m.l2, 1)
	m.Epsilon = eps
	return m.Update(X, y)
}

// Update folds a batch in.
func (m *SVR) Update(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	m.ensureDim(len(X[0]))
	if len(X[0]) != len(m.w) {
		return ErrDimMismatch
	}
	for i := range y {
		m.xScaler.Observe(X[i])
		m.observeY(y[i])
	}
	eps := m.Epsilon
	m.runEpochs(X, y, m.epochs, func(raw, ys float64) float64 {
		diff := raw - ys
		switch {
		case diff > eps:
			return 1
		case diff < -eps:
			return -1
		}
		return 0
	})
	return nil
}

// Predict returns the SVR estimate.
func (m *SVR) Predict(x []float64) float64 { return m.predict(x) }

var _ Incremental = (*SVR)(nil)
