package ml

import "testing"

// constTree fits a one-leaf tree predicting k everywhere.
func constTree(t *testing.T, k float64) *Tree {
	t.Helper()
	tr := NewTree(TreeConfig{})
	if err := tr.Fit([][]float64{{0}, {1}}, []float64{k, k}); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestPruneKeepsBestTrees pins the single-sort prune rewrite: the
// worst-SSE trees go (ties broken by age, oldest first, as the old
// repeated worst-scan did) and survivors keep their original order.
func TestPruneKeepsBestTrees(t *testing.T) {
	f := NewForest(ForestConfig{Trees: 2})
	// Constant trees predicting 3,1,3,0,2 scored against y=0: SSE
	// ranks 3(idx0)=3(idx2) > 2 > 1 > 0. MaxTrees=2 drops three trees:
	// both 3s (older first) and the 2.
	for _, k := range []float64{3, 1, 3, 0, 2} {
		f.trees = append(f.trees, constTree(t, k))
	}
	X := [][]float64{{0}, {1}}
	y := []float64{0, 0}
	f.prune(X, y)
	if len(f.trees) != 2 {
		t.Fatalf("kept %d trees, want 2", len(f.trees))
	}
	if got := f.trees[0].Predict(X[0]); got != 1 {
		t.Fatalf("first survivor predicts %v, want 1", got)
	}
	if got := f.trees[1].Predict(X[0]); got != 0 {
		t.Fatalf("second survivor predicts %v, want 0", got)
	}
}

func TestPruneNoExcessIsNoop(t *testing.T) {
	f := NewForest(ForestConfig{Trees: 8})
	for _, k := range []float64{2, 1} {
		f.trees = append(f.trees, constTree(t, k))
	}
	f.prune([][]float64{{0}}, []float64{0})
	if len(f.trees) != 2 {
		t.Fatalf("prune with no excess dropped trees: %d left", len(f.trees))
	}
}

// TestForestPredictBatchMatchesPredict: the batched path must be
// bit-identical to per-sample Predict on both the sequential (small
// batch) and fanned-out (large batch) code paths.
func TestForestPredictBatchMatchesPredict(t *testing.T) {
	X, y := synth(300, 6, 11, 0.1)
	f := NewForest(ForestConfig{Trees: 10, Seed: 3})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 7, 300} {
		got := f.PredictBatch(X[:n])
		if len(got) != n {
			t.Fatalf("batch size %d returned %d results", n, len(got))
		}
		for i := 0; i < n; i++ {
			if want := f.Predict(X[i]); got[i] != want {
				t.Fatalf("batch %d sample %d: %v != %v", n, i, got[i], want)
			}
		}
	}
}

func TestForestPredictBatchEmptyAndUntrained(t *testing.T) {
	f := NewForest(ForestConfig{Trees: 4})
	if out := f.PredictBatch(nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
	out := f.PredictBatch([][]float64{{1, 2}})
	if len(out) != 1 || out[0] != 0 {
		t.Fatalf("untrained forest batch = %v, want [0]", out)
	}
}

// TestForestFitUpdateDeterministic guards the index-based bootstrap
// refactor: identical config and data must grow identical forests,
// through Fit and incremental Update alike.
func TestForestFitUpdateDeterministic(t *testing.T) {
	X, y := synth(250, 5, 21, 0.2)
	probe, _ := synth(40, 5, 22, 0)
	build := func() *Forest {
		f := NewForest(ForestConfig{Trees: 8, Seed: 9, UpdateTrees: 4})
		if err := f.Fit(X[:200], y[:200]); err != nil {
			t.Fatal(err)
		}
		if err := f.Update(X[200:], y[200:]); err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := build(), build()
	if a.NumTrees() != b.NumTrees() {
		t.Fatalf("tree counts differ: %d vs %d", a.NumTrees(), b.NumTrees())
	}
	for i, x := range probe {
		if pa, pb := a.Predict(x), b.Predict(x); pa != pb {
			t.Fatalf("probe %d: %v vs %v", i, pa, pb)
		}
	}
}

// TestLogTargetPredictBatch covers the exponentiating wrapper's batch
// path over both a batch-capable and a plain inner model.
func TestLogTargetPredictBatch(t *testing.T) {
	X, y := synth(120, 4, 31, 0.1)
	for i := range y {
		if y[i] < 0 {
			y[i] = -y[i]
		}
		y[i] += 0.5
	}
	lt := NewLogTarget(NewForest(ForestConfig{Trees: 6, Seed: 5}))
	if err := lt.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(X))
	lt.PredictBatchInto(X, out)
	for i, x := range X {
		if want := lt.Predict(x); out[i] != want {
			t.Fatalf("sample %d: batch %v != single %v", i, out[i], want)
		}
	}
}
