package ml

import (
	"bytes"
	"sort"
	"testing"

	"gsight/internal/rng"
)

// forestBytes serializes f, failing the test on error.
func forestBytes(t *testing.T, f *Forest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteForest(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestForestParallelFitByteIdentical pins the central determinism claim
// of the parallel training path: because every tree's bootstrap and
// split-RNG stream are drawn sequentially before the worker fan-out,
// the serialized forest must be byte-for-byte identical for every pool
// size — through the initial Fit and incremental Updates alike. Under
// `make race` this test also exercises concurrent growth over the
// shared window transpose.
func TestForestParallelFitByteIdentical(t *testing.T) {
	X, y := synth(300, 8, 17, 0.2)
	build := func(workers int) *Forest {
		f := NewForest(ForestConfig{Trees: 12, Seed: 7, UpdateTrees: 4, Workers: workers})
		if err := f.Fit(X[:220], y[:220]); err != nil {
			t.Fatal(err)
		}
		for lo := 220; lo < 300; lo += 40 {
			if err := f.Update(X[lo:lo+40], y[lo:lo+40]); err != nil {
				t.Fatal(err)
			}
		}
		return f
	}
	serial := forestBytes(t, build(1))
	for _, workers := range []int{2, 4} {
		if got := forestBytes(t, build(workers)); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d forest differs from serial (%d vs %d bytes)",
				workers, len(got), len(serial))
		}
	}
}

// sortPairsCases enumerates the value shapes that drive pdqsort through
// its distinct strategies: random, heavy duplicates (partitionEqual),
// already sorted and reversed (partialInsertionSort), sawtooth
// (breakPatterns) and constant.
func sortPairsCases(n int, r *rng.Rand) [][]float64 {
	random := make([]float64, n)
	dups := make([]float64, n)
	asc := make([]float64, n)
	desc := make([]float64, n)
	saw := make([]float64, n)
	flat := make([]float64, n)
	for i := 0; i < n; i++ {
		random[i] = r.Range(-100, 100)
		dups[i] = float64(int(r.Range(0, 4)))
		asc[i] = float64(i)
		desc[i] = float64(n - i)
		saw[i] = float64(i % 7)
		flat[i] = 1.5
	}
	return [][]float64{random, dups, asc, desc, saw, flat}
}

// TestSortPairsMatchesSortSlice proves the pdqsort port produces the
// EXACT permutation of the sort.Slice call it replaced — not merely a
// sorted order. Equal values must land in the same relative positions,
// which the paired target array exposes: any permutation difference
// within a run of ties shows up as a target mismatch and would perturb
// the split scan's prefix sums.
func TestSortPairsMatchesSortSlice(t *testing.T) {
	r := rng.New(99)
	for _, n := range []int{0, 1, 2, 3, 7, 12, 13, 40, 100, 257, 1000, 2048} {
		for ci, vals := range sortPairsCases(n, r) {
			v1 := append([]float64(nil), vals...)
			t1 := make([]float64, n)
			for i := range t1 {
				t1[i] = float64(i) // unique tags expose the permutation
			}
			v2 := append([]float64(nil), v1...)
			t2 := append([]float64(nil), t1...)

			sortPairs(v1, t1)
			sort.Slice(t2, func(a, b int) bool { return v2[a] < v2[b] })
			sort.Slice(v2, func(a, b int) bool { return v2[a] < v2[b] })
			// Sorting t2 by v2's order requires re-deriving the
			// permutation, so do it the way the old kernel did: sort
			// (value, target) pairs together.
			type pair struct{ v, t float64 }
			pairs := make([]pair, n)
			for i := range pairs {
				pairs[i] = pair{vals[i], float64(i)}
			}
			sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })

			for i := 0; i < n; i++ {
				if v1[i] != pairs[i].v || t1[i] != pairs[i].t {
					t.Fatalf("n=%d case=%d pos=%d: sortPairs (%v,%v) != sort.Slice (%v,%v)",
						n, ci, i, v1[i], t1[i], pairs[i].v, pairs[i].t)
				}
			}
		}
	}
}

// TestWindowRing covers the ring buffer the forest trains from: logical
// order stays oldest-first across wrap, phys translates onto the seam,
// and capacity never grows.
func TestWindowRing(t *testing.T) {
	var w window
	w.reset(4)
	push := func(v float64) { w.push([]float64{v}, v) }
	logical := func() []float64 {
		out := make([]float64, w.Len())
		for i := range out {
			out[i] = w.y[w.phys(i)]
		}
		return out
	}
	eq := func(got, want []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("len %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("logical view %v, want %v", got, want)
			}
		}
	}

	for v := 1.0; v <= 3; v++ {
		push(v)
	}
	eq(logical(), []float64{1, 2, 3}) // filling: no eviction yet
	push(4)
	push(5) // evicts 1
	push(6) // evicts 2
	eq(logical(), []float64{3, 4, 5, 6})
	if w.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", w.Len())
	}
	// x stays in lockstep with y through the wrap.
	for i := 0; i < w.Len(); i++ {
		if w.x[w.phys(i)][0] != logical()[i] {
			t.Fatalf("x/y desync at logical %d", i)
		}
	}
	// Ten more pushes wrap the head multiple times.
	for v := 7.0; v <= 16; v++ {
		push(v)
	}
	eq(logical(), []float64{13, 14, 15, 16})

	w.reset(2)
	if w.Len() != 0 {
		t.Fatalf("reset left %d samples", w.Len())
	}
	push(8)
	eq(logical(), []float64{8})
}

// TestForestWindowWrapDeterministic checks that training depends only
// on the window's logical contents, not on where the ring seam sits:
// growing trees from a wrapped window must match growing them from an
// unwrapped window holding the same trailing samples.
func TestForestWindowWrapDeterministic(t *testing.T) {
	X, y := synth(240, 6, 41, 0.2)
	const win = 200
	grow := func(pushFrom int) *Forest {
		f := NewForest(ForestConfig{Trees: 4, Seed: 13, Window: win})
		f.dim = 6
		for i := pushFrom; i < len(y); i++ {
			f.buf.push(X[i], y[i])
		}
		trees, err := f.growTrees(4)
		if err != nil {
			t.Fatal(err)
		}
		f.trees = trees
		f.fitted = true
		return f
	}
	fresh := grow(40)  // exactly win samples: seam at 0
	wrapped := grow(0) // 240 pushes into capacity 200: seam mid-buffer
	if wrapped.buf.head == 0 || fresh.buf.head != 0 {
		t.Fatalf("expected distinct seams, got head %d vs %d",
			wrapped.buf.head, fresh.buf.head)
	}
	if got, want := forestBytes(t, wrapped), forestBytes(t, fresh); !bytes.Equal(got, want) {
		t.Fatal("same logical window trained different forests")
	}
}

// BenchmarkWindowAbsorb measures absorbing a 20-sample batch into an
// already-full window — the steady-state cost of Forest.absorb. The ring
// makes it O(batch); the Dataset-append window it replaced re-copied all
// retained rows on every overflow.
func BenchmarkWindowAbsorb(b *testing.B) {
	const win, batch, dim = 12000, 20, 64
	row := make([]float64, dim)
	var w window
	w.reset(win)
	for i := 0; i < win; i++ {
		w.push(row, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			w.push(row, 2)
		}
	}
}
