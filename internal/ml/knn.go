package ml

import (
	"container/heap"
	"math"
)

// KNN is a k-nearest-neighbour regressor with inverse-distance
// weighting. It is incremental by construction (IKNN): Update simply
// extends the reference set, bounded by Window.
type KNN struct {
	K      int // neighbours; <=0 means 8
	Window int // samples kept; <=0 means 20000
	scaler *Scaler
	data   Dataset
	// cache holds the reference set standardized under the current
	// scaler; it is rebuilt lazily after updates so queries cost one
	// transform instead of n.
	cache [][]float64
	dirty bool
}

// NewKNN returns an empty KNN regressor.
func NewKNN(k int) *KNN { return &KNN{K: k} }

func (k *KNN) defaults() {
	if k.K <= 0 {
		k.K = 8
	}
	if k.Window <= 0 {
		k.Window = 20000
	}
	if k.scaler == nil {
		k.scaler = NewScaler()
	}
}

// Fit replaces the reference set with (X, y).
func (k *KNN) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	k.data = Dataset{}
	k.scaler = nil
	k.defaults()
	return k.Update(X, y)
}

// Update appends samples to the reference set.
func (k *KNN) Update(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	k.defaults()
	if k.data.Len() > 0 && len(X[0]) != len(k.data.X[0]) {
		return ErrDimMismatch
	}
	for i := range y {
		k.scaler.Observe(X[i])
		k.data.Append(X[i], y[i])
	}
	if k.data.Len() > k.Window {
		tail := k.data.Tail(k.Window)
		k.data = Dataset{
			X: append([][]float64(nil), tail.X...),
			Y: append([]float64(nil), tail.Y...),
		}
	}
	k.dirty = true
	return nil
}

func (k *KNN) refresh() {
	if !k.dirty && len(k.cache) == k.data.Len() {
		return
	}
	k.cache = make([][]float64, k.data.Len())
	for i, xi := range k.data.X {
		k.cache[i] = k.scaler.Transform(xi)
	}
	k.dirty = false
}

// neighbour heap: max-heap on distance so the worst of the current k
// can be evicted in O(log k).
type nbr struct {
	dist float64
	y    float64
}
type nbrHeap []nbr

func (h nbrHeap) Len() int            { return len(h) }
func (h nbrHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h nbrHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nbrHeap) Push(x interface{}) { *h = append(*h, x.(nbr)) }
func (h *nbrHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Predict returns the inverse-distance-weighted mean of the k nearest
// stored samples (in standardized feature space).
func (k *KNN) Predict(x []float64) float64 {
	if k.data.Len() == 0 {
		return 0
	}
	k.defaults()
	k.refresh()
	q := k.scaler.Transform(x)
	h := make(nbrHeap, 0, k.K+1)
	for i, ti := range k.cache {
		d := 0.0
		for j := range q {
			diff := q[j] - ti[j]
			d += diff * diff
			if len(h) == k.K && d > h[0].dist {
				break // early abandon: already worse than the kth
			}
		}
		if len(h) < k.K {
			heap.Push(&h, nbr{d, k.data.Y[i]})
		} else if d < h[0].dist {
			h[0] = nbr{d, k.data.Y[i]}
			heap.Fix(&h, 0)
		}
	}
	var wsum, ysum float64
	for _, n := range h {
		w := 1 / (math.Sqrt(n.dist) + 1e-9)
		wsum += w
		ysum += w * n.y
	}
	if wsum == 0 {
		return 0
	}
	return ysum / wsum
}

var _ Incremental = (*KNN)(nil)
