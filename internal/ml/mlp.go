package ml

import (
	"math"

	"gsight/internal/rng"
)

// MLP is a one-hidden-layer perceptron regressor (ReLU activations)
// trained by SGD — the paper's IMLP comparison model. Deep models need
// more samples than the incremental loop provides early on, which is
// why the paper prefers IRFR (§3.4); the reproduction keeps the MLP
// honest but small.
type MLP struct {
	Hidden int // hidden units; <=0 means 32
	Epochs int
	LR     float64
	L2     float64

	w1      [][]float64 // [hidden][in]
	b1      []float64
	w2      []float64 // [hidden]
	b2      float64
	xScaler *Scaler
	yMean   float64
	yM2     float64
	yN      float64
	rnd     *rng.Rand
	dim     int
}

// NewMLP returns an untrained MLP.
func NewMLP(seed uint64) *MLP {
	return &MLP{
		Hidden: 32,
		Epochs: 16,
		LR:     0.01,
		L2:     1e-5,
		rnd:    rng.New(seed ^ 0x1e0),
	}
}

func (m *MLP) init(dim int) {
	m.dim = dim
	if m.Hidden <= 0 {
		m.Hidden = 32
	}
	m.xScaler = NewScaler()
	m.yMean, m.yM2, m.yN = 0, 0, 0
	scale := math.Sqrt(2 / float64(dim))
	m.w1 = make([][]float64, m.Hidden)
	m.b1 = make([]float64, m.Hidden)
	m.w2 = make([]float64, m.Hidden)
	for h := range m.w1 {
		m.w1[h] = make([]float64, dim)
		for j := range m.w1[h] {
			m.w1[h][j] = m.rnd.Norm(0, scale)
		}
		m.w2[h] = m.rnd.Norm(0, math.Sqrt(2/float64(m.Hidden)))
	}
	m.b2 = 0
}

func (m *MLP) observeY(y float64) {
	m.yN++
	d := y - m.yMean
	m.yMean += d / m.yN
	m.yM2 += d * (y - m.yMean)
}

func (m *MLP) yStd() float64 {
	if m.yN < 2 {
		return 1
	}
	v := m.yM2 / m.yN
	if v < 1e-12 {
		return 1
	}
	return math.Sqrt(v)
}

// Fit trains the network from scratch.
func (m *MLP) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	m.init(len(X[0]))
	return m.Update(X, y)
}

// Update folds a batch in with a few SGD epochs.
func (m *MLP) Update(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	if m.w1 == nil {
		m.init(len(X[0]))
	}
	if len(X[0]) != m.dim {
		return ErrDimMismatch
	}
	for i := range y {
		m.xScaler.Observe(X[i])
		m.observeY(y[i])
	}
	std := m.yStd()
	hid := make([]float64, m.Hidden)
	act := make([]float64, m.Hidden)
	for e := 0; e < m.Epochs; e++ {
		lr := m.LR / (1 + 0.1*float64(e))
		perm := m.rnd.Perm(len(y))
		for _, i := range perm {
			xs := m.xScaler.Transform(X[i])
			ys := (y[i] - m.yMean) / std
			// forward
			out := m.b2
			for h := 0; h < m.Hidden; h++ {
				z := m.b1[h]
				wh := m.w1[h]
				for j, xj := range xs {
					z += wh[j] * xj
				}
				hid[h] = z
				if z > 0 {
					act[h] = z
				} else {
					act[h] = 0
				}
				out += m.w2[h] * act[h]
			}
			// backward (squared loss, clipped against divergence)
			g := out - ys
			if g > 3 {
				g = 3
			} else if g < -3 {
				g = -3
			}
			m.b2 -= lr * g
			for h := 0; h < m.Hidden; h++ {
				gw2 := g * act[h]
				gh := g * m.w2[h]
				m.w2[h] -= lr * (gw2 + m.L2*m.w2[h])
				if hid[h] <= 0 {
					continue
				}
				wh := m.w1[h]
				for j, xj := range xs {
					wh[j] -= lr * (gh*xj + m.L2*wh[j])
				}
				m.b1[h] -= lr * gh
			}
		}
	}
	return nil
}

// Predict returns the network's estimate.
func (m *MLP) Predict(x []float64) float64 {
	if m.w1 == nil {
		return 0
	}
	xs := m.xScaler.Transform(x)
	out := m.b2
	for h := 0; h < m.Hidden; h++ {
		z := m.b1[h]
		wh := m.w1[h]
		for j, xj := range xs {
			z += wh[j] * xj
		}
		if z > 0 {
			out += m.w2[h] * z
		}
	}
	return out*m.yStd() + m.yMean
}

var _ Incremental = (*MLP)(nil)
