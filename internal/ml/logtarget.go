package ml

import (
	"math"

	"gsight/internal/telemetry"
)

// LogTarget wraps an incremental regressor so that it learns log(y)
// instead of y and exponentiates its predictions. Heavy-tailed QoS
// targets — tail latency and JCT, which span orders of magnitude across
// interference scenarios — become far better conditioned, and squared
// loss in log space approximates relative error, the paper's metric.
type LogTarget struct {
	Inner Incremental
}

// NewLogTarget wraps inner.
func NewLogTarget(inner Incremental) *LogTarget { return &LogTarget{Inner: inner} }

// Instrument forwards the instrument set to the inner model.
func (l *LogTarget) Instrument(ins telemetry.ForestInstruments) {
	if im, ok := l.Inner.(Instrumentable); ok {
		im.Instrument(ins)
	}
}

const logFloor = 1e-9

func logY(y []float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		if v < logFloor {
			v = logFloor
		}
		out[i] = math.Log(v)
	}
	return out
}

// Fit trains on log targets.
func (l *LogTarget) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	return l.Inner.Fit(X, logY(y))
}

// Update folds a batch in on log targets.
func (l *LogTarget) Update(X [][]float64, y []float64) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	return l.Inner.Update(X, logY(y))
}

// Predict exponentiates the inner model's log-space estimate.
func (l *LogTarget) Predict(x []float64) float64 {
	return math.Exp(l.Inner.Predict(x))
}

// PredictBatchInto predicts every sample of X into out, delegating to
// the inner model's batch path when it has one and exponentiating in
// place. Bit-identical to per-sample Predict.
func (l *LogTarget) PredictBatchInto(X [][]float64, out []float64) {
	if b, ok := l.Inner.(BatchRegressor); ok {
		b.PredictBatchInto(X, out)
	} else {
		for i, x := range X {
			out[i] = l.Inner.Predict(x)
		}
	}
	for i := range out {
		out[i] = math.Exp(out[i])
	}
}

var _ Incremental = (*LogTarget)(nil)
var _ BatchRegressor = (*LogTarget)(nil)
