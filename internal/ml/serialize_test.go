package ml

import (
	"bytes"
	"strings"
	"testing"
)

func TestTreeExportRoundTrip(t *testing.T) {
	X, y := synth(500, 6, 40, 0)
	tr := NewTree(TreeConfig{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	back, err := ImportTree(tr.Export())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got, want := back.Predict(X[i]), tr.Predict(X[i]); got != want {
			t.Fatalf("prediction changed after round trip: %v vs %v", got, want)
		}
	}
}

func TestImportTreeValidates(t *testing.T) {
	bad := TreeExport{Dim: 2, Nodes: []TreeNodeExport{{Feature: 5}}}
	if _, err := ImportTree(bad); err == nil {
		t.Fatal("feature beyond dim must error")
	}
	bad = TreeExport{Dim: 2, Nodes: []TreeNodeExport{{Feature: 0, Left: 9, Right: 0}}}
	if _, err := ImportTree(bad); err == nil {
		t.Fatal("child out of range must error")
	}
}

func TestForestRoundTrip(t *testing.T) {
	X, y := synth(600, 6, 41, 0.2)
	f := NewForest(ForestConfig{Trees: 12, Seed: 3})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteForest(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTrees() != f.NumTrees() {
		t.Fatalf("tree count changed: %d vs %d", back.NumTrees(), f.NumTrees())
	}
	for i := 0; i < 100; i++ {
		if got, want := back.Predict(X[i]), f.Predict(X[i]); got != want {
			t.Fatalf("prediction changed after round trip at %d: %v vs %v", i, got, want)
		}
	}
	// Importances survive too.
	a, b := f.Importance(), back.Importance()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("importances changed after round trip")
		}
	}
}

func TestImportedForestKeepsLearning(t *testing.T) {
	X, y := synth(500, 6, 42, 0.2)
	f := NewForest(ForestConfig{Trees: 8, Seed: 4})
	if err := f.Fit(X[:300], y[:300]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteForest(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded forest must accept incremental updates (rebuilding
	// its window from the new batch).
	if err := back.Update(X[300:], y[300:]); err != nil {
		t.Fatal(err)
	}
	Xt, yt := synth(200, 6, 43, 0)
	if e := rmse(back, Xt, yt); e > 2.0 {
		t.Fatalf("reloaded+updated forest RMSE = %v", e)
	}
}

func TestReadForestRejectsJunk(t *testing.T) {
	if _, err := ReadForest(strings.NewReader("junk")); err == nil {
		t.Fatal("junk must error")
	}
	if _, err := ReadForest(strings.NewReader(`{"version":7}`)); err == nil {
		t.Fatal("bad version must error")
	}
}
