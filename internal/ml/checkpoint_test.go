package ml

import (
	"math"
	"testing"

	"gsight/internal/rng"
)

func ckptForestData(seed uint64, n int) ([][]float64, []float64) {
	r := rng.New(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := []float64{r.Range(0, 10), r.Range(0, 5), r.Range(-1, 1)}
		X[i] = x
		y[i] = 2*x[0] - x[1] + 0.5*x[2] + r.Range(-0.1, 0.1)
	}
	return X, y
}

// TestForestStateRoundTrip: restoring an ExportState snapshot into a
// same-configured forest must make every subsequent update and
// prediction byte-identical to the original's — including updates that
// draw from the restored RNG cursor and window.
func TestForestStateRoundTrip(t *testing.T) {
	cfg := ForestConfig{Trees: 6, Seed: 9, Window: 64}
	a := NewForest(cfg)
	X, y := ckptForestData(1, 120)
	if err := a.Fit(X[:80], y[:80]); err != nil {
		t.Fatal(err)
	}
	if err := a.Update(X[80:100], y[80:100]); err != nil {
		t.Fatal(err)
	}

	b := NewForest(cfg)
	if err := b.RestoreState(a.ExportState()); err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		pa, pb := a.Predict(x), b.Predict(x)
		if pa != pb {
			t.Fatalf("restored prediction %d: %v != %v", i, pb, pa)
		}
	}
	// Continue the incremental stream on both: the RNG cursor and window
	// seam must have carried over exactly.
	if err := a.Update(X[100:], y[100:]); err != nil {
		t.Fatal(err)
	}
	if err := b.Update(X[100:], y[100:]); err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		pa, pb := a.Predict(x), b.Predict(x)
		if pa != pb {
			t.Fatalf("post-update prediction %d: %v != %v", i, pb, pa)
		}
	}
}

// TestForestRestoreRejectsCorruptState: structural and numeric
// corruption must be rejected before any state is applied.
func TestForestRestoreRejectsCorruptState(t *testing.T) {
	cfg := ForestConfig{Trees: 4, Seed: 3, Window: 32}
	src := NewForest(cfg)
	X, y := ckptForestData(2, 40)
	if err := src.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*ForestState)
	}{
		{"bad version", func(s *ForestState) { s.Version = 99 }},
		{"zero rng", func(s *ForestState) { s.Rng = [4]uint64{} }},
		{"window overflow", func(s *ForestState) {
			for len(s.WindowY) <= cfg.Window {
				s.WindowX = append(s.WindowX, s.WindowX[0])
				s.WindowY = append(s.WindowY, s.WindowY[0])
			}
		}},
		{"dim mismatch row", func(s *ForestState) { s.WindowX[0] = []float64{1} }},
		{"nan label", func(s *ForestState) { s.WindowY[0] = math.NaN() }},
		{"nan feature", func(s *ForestState) { s.WindowX[0] = []float64{math.Inf(1), 0, 0} }},
		{"fitted without trees", func(s *ForestState) { s.Trees = nil }},
		{"xy length mismatch", func(s *ForestState) { s.WindowY = s.WindowY[:len(s.WindowY)-1] }},
	}
	for _, tc := range cases {
		st := src.ExportState()
		tc.mutate(&st)
		dst := NewForest(cfg)
		if err := dst.RestoreState(st); err == nil {
			t.Errorf("%s: corrupt state accepted", tc.name)
		}
	}
}
