package ml

import (
	"math"
	"testing"
	"testing/quick"

	"gsight/internal/rng"
)

// synth generates n samples of a smooth nonlinear target over d dims.
func synth(n, d int, seed uint64, noise float64) ([][]float64, []float64) {
	r := rng.New(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = r.Range(-1, 1)
		}
		v := 3*x[0]*x[0] + 2*math.Sin(3*x[1]) + x[2]*x[0] + 0.5*x[3] + 5
		if noise > 0 {
			v += r.Norm(0, noise)
		}
		X[i] = x
		y[i] = v
	}
	return X, y
}

// linSynth generates a purely linear target.
func linSynth(n, d int, seed uint64) ([][]float64, []float64) {
	r := rng.New(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		v := 2.0
		for j := range x {
			x[j] = r.Range(-1, 1)
			v += float64(j%3-1) * x[j]
		}
		X[i] = x
		y[i] = v
	}
	return X, y
}

func rmse(m Regressor, X [][]float64, y []float64) float64 {
	s := 0.0
	for i, x := range X {
		d := m.Predict(x) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

func TestTreeFitsNonlinear(t *testing.T) {
	X, y := synth(2000, 6, 1, 0)
	Xt, yt := synth(500, 6, 2, 0)
	tr := NewTree(TreeConfig{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := rmse(tr, Xt, yt); e > 0.8 {
		t.Fatalf("tree RMSE = %v, want < 0.8", e)
	}
	if tr.NumNodes() < 10 {
		t.Fatalf("tree suspiciously small: %d nodes", tr.NumNodes())
	}
}

func TestTreePerfectOnConstant(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tr := NewTree(TreeConfig{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{2.5}); got != 7 {
		t.Fatalf("constant target prediction = %v", got)
	}
	if tr.NumNodes() != 1 {
		t.Fatalf("constant target should not split: %d nodes", tr.NumNodes())
	}
}

func TestTreeErrors(t *testing.T) {
	tr := NewTree(TreeConfig{})
	if err := tr.Fit(nil, nil); err == nil {
		t.Fatal("empty fit must error")
	}
	if err := tr.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := tr.Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged features must error")
	}
	if got := NewTree(TreeConfig{}).Predict([]float64{1}); got != 0 {
		t.Fatalf("unfitted tree predicts %v", got)
	}
}

func TestForestBeatsSingleTree(t *testing.T) {
	X, y := synth(1500, 6, 3, 0.5)
	Xt, yt := synth(500, 6, 4, 0)
	tr := NewTree(TreeConfig{MaxDepth: 6})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	f := NewForest(ForestConfig{Trees: 30, Tree: TreeConfig{MaxDepth: 6}})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	eTree, eForest := rmse(tr, Xt, yt), rmse(f, Xt, yt)
	if eForest >= eTree {
		t.Fatalf("forest RMSE %v not better than tree %v", eForest, eTree)
	}
}

func TestForestImportanceFindsSignal(t *testing.T) {
	// Only dims 0-3 carry signal; 4-5 are noise.
	X, y := synth(1500, 6, 5, 0)
	f := NewForest(ForestConfig{Trees: 20})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := f.Importance()
	total := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance: %v", imp)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importance sums to %v, want 1", total)
	}
	if imp[0] < imp[4] || imp[1] < imp[5] {
		t.Fatalf("signal dims should dominate noise dims: %v", imp)
	}
}

func TestForestIncrementalUpdate(t *testing.T) {
	X, y := synth(800, 6, 6, 0.3)
	f := NewForest(ForestConfig{Trees: 16})
	if err := f.Fit(X[:400], y[:400]); err != nil {
		t.Fatal(err)
	}
	if err := f.Update(X[400:], y[400:]); err != nil {
		t.Fatal(err)
	}
	// Fixed-capacity ensemble: updates churn trees, never grow the
	// forest past its configured size.
	if f.NumTrees() != 16 {
		t.Fatalf("forest size = %d, want fixed 16", f.NumTrees())
	}
	for i := 0; i < 20; i++ {
		if err := f.Update(X[:50], y[:50]); err != nil {
			t.Fatal(err)
		}
	}
	if f.NumTrees() != 16 {
		t.Fatalf("forest size drifted: %d trees", f.NumTrees())
	}
	Xt, yt := synth(300, 6, 7, 0)
	if e := rmse(f, Xt, yt); e > 1.2 {
		t.Fatalf("incrementally updated forest RMSE = %v", e)
	}
}

func TestForestUpdateBeforeFit(t *testing.T) {
	X, y := synth(300, 4, 8, 0)
	f := NewForest(ForestConfig{Trees: 8})
	if err := f.Update(X, y); err != nil {
		t.Fatal("Update before Fit should behave as Fit:", err)
	}
	if f.NumTrees() != 8 {
		t.Fatalf("trees = %d, want 8", f.NumTrees())
	}
}

func TestForestAdaptsToShift(t *testing.T) {
	// Figure 13's mechanism: train on one regime, shift the target,
	// update, and watch the error recover.
	X, y := synth(1000, 6, 9, 0.2)
	f := NewForest(ForestConfig{Trees: 20, Window: 1500})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// shifted regime: target scaled 1.6x (the paper's CPU- vs
	// IO-intensive IPC gap)
	Xs, ys := synth(1200, 6, 10, 0.2)
	for i := range ys {
		ys[i] *= 1.6
	}
	errBefore := rmse(f, Xs[:300], ys[:300])
	for b := 300; b < 1200; b += 300 {
		if err := f.Update(Xs[b:b+300], ys[b:b+300]); err != nil {
			t.Fatal(err)
		}
	}
	errAfter := rmse(f, Xs[:300], ys[:300])
	if errAfter >= errBefore*0.7 {
		t.Fatalf("forest did not adapt: %v -> %v", errBefore, errAfter)
	}
}

func TestKNNExactOnSeen(t *testing.T) {
	X, y := synth(500, 6, 11, 0)
	k := NewKNN(1)
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got := k.Predict(X[i]); math.Abs(got-y[i]) > 1e-6 {
			t.Fatalf("1-NN on training point = %v, want %v", got, y[i])
		}
	}
}

func TestKNNInterpolates(t *testing.T) {
	X, y := synth(3000, 6, 12, 0)
	Xt, yt := synth(300, 6, 13, 0)
	k := NewKNN(8)
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := rmse(k, Xt, yt); e > 1.0 {
		t.Fatalf("KNN RMSE = %v", e)
	}
}

func TestKNNWindow(t *testing.T) {
	k := NewKNN(2)
	k.Window = 100
	X, y := synth(300, 4, 14, 0)
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if k.data.Len() != 100 {
		t.Fatalf("window not enforced: %d", k.data.Len())
	}
}

func TestLinearRecoversLinearTarget(t *testing.T) {
	X, y := linSynth(2000, 8, 15)
	Xt, yt := linSynth(300, 8, 16)
	m := NewLinear(1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := rmse(m, Xt, yt); e > 0.1 {
		t.Fatalf("linear model RMSE on linear target = %v", e)
	}
}

func TestLinearUnderfitsNonlinear(t *testing.T) {
	X, y := synth(2000, 6, 17, 0)
	Xt, yt := synth(300, 6, 18, 0)
	lin := NewLinear(2)
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	f := NewForest(ForestConfig{Trees: 20})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if rmse(lin, Xt, yt) <= rmse(f, Xt, yt) {
		t.Fatal("linear model should underfit the nonlinear target vs forest")
	}
}

func TestSVRFitsLinearTarget(t *testing.T) {
	X, y := linSynth(2000, 8, 19)
	Xt, yt := linSynth(300, 8, 20)
	m := NewSVR(3)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := rmse(m, Xt, yt); e > 0.3 {
		t.Fatalf("SVR RMSE on linear target = %v", e)
	}
}

func TestMLPFitsNonlinear(t *testing.T) {
	X, y := synth(3000, 6, 21, 0.1)
	Xt, yt := synth(300, 6, 22, 0)
	m := NewMLP(4)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := rmse(m, Xt, yt); e > 1.0 {
		t.Fatalf("MLP RMSE = %v", e)
	}
}

func TestIncrementalInterfaces(t *testing.T) {
	models := []Incremental{
		NewForest(ForestConfig{Trees: 4}),
		NewKNN(3),
		NewLinear(5),
		NewSVR(6),
		NewMLP(7),
	}
	X, y := synth(200, 5, 23, 0)
	X2, y2 := synth(100, 5, 24, 0)
	for _, m := range models {
		if err := m.Fit(X, y); err != nil {
			t.Fatalf("%T.Fit: %v", m, err)
		}
		if err := m.Update(X2, y2); err != nil {
			t.Fatalf("%T.Update: %v", m, err)
		}
		// dimension mismatch must be rejected
		bad := [][]float64{{1, 2}}
		if err := m.Update(bad, []float64{1}); err == nil {
			t.Fatalf("%T accepted wrong dimension", m)
		}
		if v := m.Predict(X[0]); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%T predicted %v", m, v)
		}
	}
}

func TestScaler(t *testing.T) {
	s := NewScaler()
	r := rng.New(25)
	for i := 0; i < 1000; i++ {
		s.Observe([]float64{r.Norm(10, 2), r.Norm(-5, 0.5), 42})
	}
	z := s.Transform([]float64{10, -5, 42})
	if math.Abs(z[0]) > 0.2 || math.Abs(z[1]) > 0.2 {
		t.Fatalf("mean not centered: %v", z)
	}
	if z[2] != 0 {
		t.Fatalf("constant feature should map to 0, got %v", z[2])
	}
	hi := s.Transform([]float64{12, -5, 42})
	if hi[0] < 0.8 || hi[0] > 1.2 {
		t.Fatalf("unit variance violated: %v", hi[0])
	}
	// Unobserved scaler passes values through.
	fresh := NewScaler()
	if got := fresh.Transform([]float64{3}); got[0] != 3 {
		t.Fatalf("fresh scaler transform = %v", got)
	}
}

func TestDatasetSplit(t *testing.T) {
	var d Dataset
	for i := 0; i < 100; i++ {
		d.Append([]float64{float64(i)}, float64(i))
	}
	train, test := d.Split(0.8, rng.New(26))
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	seen := map[float64]bool{}
	for _, y := range append(append([]float64{}, train.Y...), test.Y...) {
		if seen[y] {
			t.Fatal("split duplicated a sample")
		}
		seen[y] = true
	}
	if len(seen) != 100 {
		t.Fatal("split lost samples")
	}
}

func TestMAPEAndErrors(t *testing.T) {
	f := NewForest(ForestConfig{Trees: 4})
	X, y := synth(300, 4, 27, 0)
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := MAPE(f, X, y); e < 0 || e > 0.5 {
		t.Fatalf("training MAPE = %v", e)
	}
	errs := Errors(f, X, y)
	if len(errs) != len(y) {
		t.Fatalf("Errors length = %d", len(errs))
	}
	for _, e := range errs {
		if e < 0 {
			t.Fatal("negative error")
		}
	}
}

func TestTreePredictConsistencyProperty(t *testing.T) {
	X, y := synth(500, 5, 28, 0)
	tr := NewTree(TreeConfig{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	lo, hi := y[0], y[0]
	for _, v := range y {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	r := rng.New(29)
	if err := quick.Check(func(_ uint64) bool {
		x := make([]float64, 5)
		for j := range x {
			x[j] = r.Range(-2, 2)
		}
		p := tr.Predict(x)
		// Tree predictions are means of training targets: always
		// within the target range.
		return p >= lo-1e-9 && p <= hi+1e-9
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
