package ml

import "sync"

// fitScratch is the reusable working state of one tree fit. Everything
// the old kernel allocated per node — the (value, target) pairs of the
// split search, the sort closure, the left/right index lists, the
// feature-subsample copy — lives here instead, sized once per fit and
// recycled across fits through fitPool. The kernel is therefore
// allocation-free per node; the only per-tree allocations left are the
// structures the tree retains after fitting (nodes, importance).
//
// Ownership rule: a fitScratch belongs to exactly one Tree fit at a
// time. Trees never retain scratch state; FitIndexed returns it to the
// pool before returning. Concurrent tree growth (Forest.growTrees) is
// safe because each worker draws its own scratch from the pool.
type fitScratch struct {
	// arena holds the bootstrap positions 0..n-1 of the samples reaching
	// the current subtree, stably partitioned in place as the recursion
	// descends: a node owns arena[lo:hi].
	arena []int
	// spill is the right-half buffer of the stable partition.
	spill []int
	// cols is the column-major feature cache: column c (the c-th active
	// feature) occupies cols[c*n : (c+1)*n], indexed by bootstrap
	// position, so split scans read contiguous memory instead of
	// striding row pointers.
	cols []float64
	// colOf maps a feature id to its column index in cols (-1 when the
	// feature is inactive and has no column).
	colOf []int32
	// ty holds the targets gathered into bootstrap-position order.
	ty []float64
	// sv/st are the per-(node, feature) sort scratch: values and targets
	// of the node's samples, sorted together by sortPairs.
	sv, st []float64
	// active lists the features with any variance in the bootstrap,
	// ascending; feat is the per-node partial-shuffle buffer of
	// sampleFeatures.
	active, feat []int
	// srcCol maps each active feature to its column in a shared window
	// transpose (fitFromWindow only).
	srcCol []int32
	// vary and undecided are the active-feature scan's scratch: vary[j]
	// flags features seen to vary, undecided the features still matching
	// the base row.
	vary      []bool
	undecided []int
}

var fitPool = sync.Pool{New: func() interface{} { return new(fitScratch) }}

// grabInts returns s[:n] reusing capacity.
func grabInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// grabFloats returns s[:n] reusing capacity.
func grabFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// prepare sizes the scratch for a fit over n bootstrap samples of
// dimension d. Column and feature buffers are sized later, once the
// active set is known.
func (s *fitScratch) prepare(n, d int) {
	s.arena = grabInts(s.arena, n)
	for i := range s.arena {
		s.arena[i] = i
	}
	s.ty = grabFloats(s.ty, n)
	s.sv = grabFloats(s.sv, n)
	s.st = grabFloats(s.st, n)
	s.undecided = grabInts(s.undecided, d)
	if cap(s.vary) < d {
		s.vary = make([]bool, d)
	}
	s.vary = s.vary[:d]
	for i := range s.vary {
		s.vary[i] = false
	}
	if cap(s.colOf) < d {
		s.colOf = make([]int32, d)
	}
	s.colOf = s.colOf[:d]
}
