package ml

// window is the forest's incremental training buffer: a fixed-capacity
// ring over the most recent samples. Absorbing a batch is O(batch) —
// the oldest rows are overwritten in place — where the previous
// Dataset-based window re-copied all retained rows every time it
// overflowed. Rows are stored by reference, never copied.
//
// Logical order is oldest-first: logical index i maps to the backing
// slot phys(i), and once the ring is full head points at the oldest
// sample. Training code draws logical indices (so the recency bias and
// the RNG stream are independent of where the ring happens to wrap) and
// translates them with phys.
type window struct {
	x    [][]float64
	y    []float64
	max  int // capacity; push overwrites the oldest beyond this
	head int // backing index of the oldest sample once full
}

// reset empties the window and sets its capacity.
func (w *window) reset(max int) {
	w.x = w.x[:0]
	w.y = w.y[:0]
	w.max = max
	w.head = 0
}

// push appends one sample, evicting the oldest when full.
func (w *window) push(xi []float64, yi float64) {
	if len(w.y) < w.max {
		w.x = append(w.x, xi)
		w.y = append(w.y, yi)
		return
	}
	w.x[w.head] = xi
	w.y[w.head] = yi
	w.head++
	if w.head == w.max {
		w.head = 0
	}
}

// Len returns the number of retained samples.
func (w *window) Len() int { return len(w.y) }

// phys maps a logical (oldest-first) index to its backing slot.
func (w *window) phys(i int) int {
	p := w.head + i
	if p >= len(w.y) {
		p -= len(w.y)
	}
	return p
}
