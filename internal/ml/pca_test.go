package ml

import (
	"math"
	"testing"

	"gsight/internal/rng"
)

// anisotropic generates data with variance concentrated in a few known
// directions.
func anisotropic(n, d int, seed uint64) [][]float64 {
	r := rng.New(seed)
	X := make([][]float64, n)
	for i := range X {
		x := make([]float64, d)
		a := r.Norm(0, 5) // dominant latent factor
		b := r.Norm(0, 2) // secondary
		for j := range x {
			switch j % 3 {
			case 0:
				x[j] = a + r.Norm(0, 0.1)
			case 1:
				x[j] = b + r.Norm(0, 0.1)
			default:
				x[j] = r.Norm(0, 0.1)
			}
		}
		X[i] = x
	}
	return X
}

func TestPCAFindsDominantDirections(t *testing.T) {
	X := anisotropic(500, 9, 1)
	p := NewPCA(3)
	if err := p.Fit(X); err != nil {
		t.Fatal(err)
	}
	ev := p.ExplainedVariance()
	if len(ev) != 3 {
		t.Fatalf("components = %d", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i] > ev[i-1]+1e-9 {
			t.Fatalf("explained variance not descending: %v", ev)
		}
	}
	// The dominant factor has variance ~25 spread over 3 coordinates
	// (~75 along its axis); the leading eigenvalue must dwarf the third.
	if ev[0] < 5*ev[2] {
		t.Fatalf("leading component not dominant: %v", ev)
	}
}

func TestPCAReconstructionOrdering(t *testing.T) {
	// Projections onto more components preserve more variance:
	// distances in 3-component space upper-bound 1-component space.
	X := anisotropic(300, 6, 2)
	p1 := NewPCA(1)
	p3 := NewPCA(3)
	if err := p1.Fit(X); err != nil {
		t.Fatal(err)
	}
	if err := p3.Fit(X); err != nil {
		t.Fatal(err)
	}
	var v1, v3 float64
	for _, x := range X {
		for _, c := range p1.Transform(x) {
			v1 += c * c
		}
		for _, c := range p3.Transform(x) {
			v3 += c * c
		}
	}
	if v3 <= v1 {
		t.Fatalf("3 components carry %v variance, 1 component %v", v3, v1)
	}
}

func TestPCADropsConstantFeatures(t *testing.T) {
	r := rng.New(3)
	X := make([][]float64, 200)
	for i := range X {
		X[i] = []float64{r.Norm(0, 1), 7, 0, r.Norm(0, 2)}
	}
	p := NewPCA(4)
	if err := p.Fit(X); err != nil {
		t.Fatal(err)
	}
	// Only two features vary: at most two meaningful components.
	if p.NumComponents() > 2 {
		t.Fatalf("components = %d, want <= 2", p.NumComponents())
	}
	z := p.Transform([]float64{0, 7, 0, 0})
	for _, v := range z {
		if math.IsNaN(v) {
			t.Fatal("NaN in transform")
		}
	}
}

func TestPCAErrors(t *testing.T) {
	p := NewPCA(2)
	if err := p.Fit(nil); err == nil {
		t.Fatal("empty fit must error")
	}
	if err := p.Fit([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged input must error")
	}
	// all-constant input: zero components, zero transform
	allSame := [][]float64{{1, 1}, {1, 1}}
	if err := p.Fit(allSame); err != nil {
		t.Fatal(err)
	}
	if p.NumComponents() != 0 {
		t.Fatal("constant data should yield no components")
	}
}

func TestPCAAxesOrthonormal(t *testing.T) {
	X := anisotropic(400, 8, 4)
	p := NewPCA(4)
	if err := p.Fit(X); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.NumComponents(); i++ {
		for j := i; j < p.NumComponents(); j++ {
			dot := 0.0
			for t2 := range p.comps[i] {
				dot += p.comps[i][t2] * p.comps[j][t2]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Fatalf("axes %d,%d dot = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestPCAWrapLifecycle(t *testing.T) {
	X, y := synth(800, 6, 5, 0.2)
	w := NewPCAWrap(4, NewForest(ForestConfig{Trees: 10}))
	if err := w.Fit(X[:600], y[:600]); err != nil {
		t.Fatal(err)
	}
	if err := w.Update(X[600:], y[600:]); err != nil {
		t.Fatal(err)
	}
	Xt, yt := synth(200, 6, 6, 0)
	e := rmse(w, Xt, yt)
	if e > 2.5 {
		t.Fatalf("PCA-wrapped forest RMSE = %v", e)
	}
	// Update before Fit behaves as Fit.
	w2 := NewPCAWrap(4, NewForest(ForestConfig{Trees: 6}))
	if err := w2.Update(X[:200], y[:200]); err != nil {
		t.Fatal(err)
	}
	if v := w2.Predict(X[0]); math.IsNaN(v) {
		t.Fatal("NaN prediction")
	}
	// Unfitted wrap predicts zero.
	if v := NewPCAWrap(2, NewKNN(1)).Predict(X[0]); v != 0 {
		t.Fatalf("unfitted predict = %v", v)
	}
}
