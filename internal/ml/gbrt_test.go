package ml

import (
	"math"
	"testing"
)

func TestGBRTFitsNonlinear(t *testing.T) {
	X, y := synth(2000, 6, 60, 0.2)
	Xt, yt := synth(400, 6, 61, 0)
	g := NewGBRT(1)
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := rmse(g, Xt, yt); e > 0.8 {
		t.Fatalf("GBRT RMSE = %v, want < 0.8", e)
	}
	if g.NumStages() != 150 {
		t.Fatalf("stages = %d, want 150", g.NumStages())
	}
}

func TestGBRTBeatsSingleTree(t *testing.T) {
	X, y := synth(1500, 6, 62, 0.3)
	Xt, yt := synth(300, 6, 63, 0)
	tr := NewTree(TreeConfig{MaxDepth: 4})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	g := NewGBRT(2)
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if rmse(g, Xt, yt) >= rmse(tr, Xt, yt) {
		t.Fatal("boosting should beat its weak learner")
	}
}

func TestGBRTIncrementalUpdate(t *testing.T) {
	X, y := synth(1200, 6, 64, 0.2)
	g := NewGBRT(3)
	if err := g.Fit(X[:600], y[:600]); err != nil {
		t.Fatal(err)
	}
	before := g.NumStages()
	Xt, yt := synth(300, 6, 65, 0)
	errBefore := rmse(g, Xt, yt)
	if err := g.Update(X[600:], y[600:]); err != nil {
		t.Fatal(err)
	}
	if g.NumStages() <= before {
		t.Fatal("update should add stages")
	}
	errAfter := rmse(g, Xt, yt)
	if errAfter > errBefore*1.2 {
		t.Fatalf("update degraded the model: %v -> %v", errBefore, errAfter)
	}
	// Saturation: repeated updates never exceed MaxStages.
	for i := 0; i < 60; i++ {
		if err := g.Update(X[:100], y[:100]); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumStages() > g.MaxStages {
		t.Fatalf("stages %d exceed MaxStages %d", g.NumStages(), g.MaxStages)
	}
}

func TestGBRTUpdateBeforeFit(t *testing.T) {
	X, y := synth(300, 4, 66, 0)
	g := NewGBRT(4)
	if err := g.Update(X, y); err != nil {
		t.Fatal(err)
	}
	if v := g.Predict(X[0]); math.IsNaN(v) {
		t.Fatal("NaN prediction")
	}
	if err := g.Update([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestGBRTErrors(t *testing.T) {
	g := NewGBRT(5)
	if err := g.Fit(nil, nil); err == nil {
		t.Fatal("empty fit must error")
	}
}
