package ml

import (
	"fmt"
	"math"
)

// Ridge is a deterministic incremental ridge regressor over a small,
// fixed feature dimension. It is the tier-0 interference scorer's
// model: where the forest sees the full ~2.6k-dim colocation code, the
// ridge sees a handful of projected features and answers in a few
// dozen flops, cheap enough to score every candidate server before the
// forest is consulted at all.
//
// Samples live in a fixed-capacity ring mirroring the forest's
// incremental window: absorbing a sample beyond capacity evicts the
// oldest by downdating the Gram matrix, so the model always reflects
// the same recency horizon the forest trains on. There is no RNG and
// no wall-clock input anywhere — given the same observation stream the
// coefficients are bit-identical, which is what lets cached tier-0
// scores survive checkpoint/resume byte-for-byte.
type Ridge struct {
	d      int
	window int
	lambda float64

	a []float64 // d×d Gram XᵀX over the retained ring (λ added at solve)
	b []float64 // Xᵀy
	w []float64 // solved coefficients, valid when trained

	ringX []float64 // flat ring storage, window rows × d
	ringY []float64
	n     int // retained samples (≤ window)
	head  int // slot of the oldest row once full
	seen  uint64

	trained bool
	chol    []float64 // solve scratch
	rhs     []float64
}

// ridgeMinSamples gates solving: with fewer rows than features the fit
// is pure regularizer and ranks nothing.
const ridgeMinSamples = 24

// NewRidge returns an empty ridge model of dimension d with the given
// ring-window capacity and L2 strength. The caller supplies any bias
// term as a constant-1 feature.
func NewRidge(d, window int, lambda float64) *Ridge {
	if d <= 0 {
		panic("ml: ridge dimension must be positive")
	}
	if window < ridgeMinSamples {
		window = ridgeMinSamples
	}
	return &Ridge{
		d:      d,
		window: window,
		lambda: lambda,
		a:      make([]float64, d*d),
		b:      make([]float64, d),
		w:      make([]float64, d),
		chol:   make([]float64, d*d),
		rhs:    make([]float64, d),
	}
}

// Dim returns the feature dimension.
func (r *Ridge) Dim() int { return r.d }

// Len returns the number of retained samples.
func (r *Ridge) Len() int { return r.n }

// Seen returns the total number of samples ever absorbed.
func (r *Ridge) Seen() uint64 { return r.seen }

// Trained reports whether Predict is backed by a solved fit.
func (r *Ridge) Trained() bool { return r.trained }

// Reset drops all samples and coefficients.
func (r *Ridge) Reset() {
	for i := range r.a {
		r.a[i] = 0
	}
	for i := range r.b {
		r.b[i] = 0
	}
	for i := range r.w {
		r.w[i] = 0
	}
	r.ringX = r.ringX[:0]
	r.ringY = r.ringY[:0]
	r.n, r.head, r.seen = 0, 0, 0
	r.trained = false
}

// Observe absorbs one sample, evicting the oldest when the ring is
// full. O(d²); allocation-free once the ring has grown to capacity.
// Coefficients do not move until the next Refresh.
func (r *Ridge) Observe(x []float64, y float64) {
	if len(x) != r.d {
		panic(fmt.Sprintf("ml: ridge observe dim %d != %d", len(x), r.d))
	}
	slot := r.n
	if r.n == r.window {
		// Downdate: subtract the evicted row's contribution, then
		// overwrite its slot.
		slot = r.head
		old := r.ringX[slot*r.d : (slot+1)*r.d]
		oldY := r.ringY[slot]
		for i := 0; i < r.d; i++ {
			oi := old[i]
			row := r.a[i*r.d:]
			for j := 0; j < r.d; j++ {
				row[j] -= oi * old[j]
			}
			r.b[i] -= oldY * oi
		}
		r.head++
		if r.head == r.window {
			r.head = 0
		}
	} else {
		r.ringX = append(r.ringX, make([]float64, r.d)...)
		r.ringY = append(r.ringY, 0)
		r.n++
	}
	copy(r.ringX[slot*r.d:(slot+1)*r.d], x)
	r.ringY[slot] = y
	for i := 0; i < r.d; i++ {
		xi := x[i]
		row := r.a[i*r.d:]
		for j := 0; j < r.d; j++ {
			row[j] += xi * x[j]
		}
		r.b[i] += y * xi
	}
	r.seen++
}

// Refresh re-solves the normal equations (A + λI)w = b by Cholesky
// factorization, bumping λ deterministically if accumulated rounding
// has pushed A off positive-definite. Reports whether the model is now
// trained.
func (r *Ridge) Refresh() bool {
	if r.n < ridgeMinSamples {
		r.trained = false
		return false
	}
	lam := r.lambda
	for attempt := 0; attempt < 4; attempt++ {
		if r.solve(lam) {
			r.trained = true
			return true
		}
		lam *= 100
	}
	r.trained = false
	return false
}

// solve runs one Cholesky factorize-and-backsolve with the given λ.
func (r *Ridge) solve(lam float64) bool {
	d := r.d
	copy(r.chol, r.a)
	for i := 0; i < d; i++ {
		r.chol[i*d+i] += lam
	}
	// In-place lower Cholesky.
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			sum := r.chol[i*d+j]
			for k := 0; k < j; k++ {
				sum -= r.chol[i*d+k] * r.chol[j*d+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return false
				}
				r.chol[i*d+i] = math.Sqrt(sum)
			} else {
				r.chol[i*d+j] = sum / r.chol[j*d+j]
			}
		}
	}
	// Forward substitution L·z = b, then back substitution Lᵀ·w = z.
	for i := 0; i < d; i++ {
		sum := r.b[i]
		for k := 0; k < i; k++ {
			sum -= r.chol[i*d+k] * r.rhs[k]
		}
		r.rhs[i] = sum / r.chol[i*d+i]
	}
	for i := d - 1; i >= 0; i-- {
		sum := r.rhs[i]
		for k := i + 1; k < d; k++ {
			sum -= r.chol[k*d+i] * r.w[k]
		}
		r.w[i] = sum / r.chol[i*d+i]
	}
	for _, v := range r.w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Predict returns the linear estimate w·x. Zero until trained.
func (r *Ridge) Predict(x []float64) float64 {
	if !r.trained {
		return 0
	}
	v := 0.0
	for i, xi := range x {
		v += r.w[i] * xi
	}
	return v
}

// RidgeState is the full live state of a ridge model for
// crash-consistent checkpointing, mirroring ForestState: the Gram
// accumulators are carried verbatim (rebuilding them from the ring
// would change float accumulation order), and ring rows are carried in
// logical oldest-first order so the seam position is unobservable.
type RidgeState struct {
	Version int         `json:"version"`
	Dim     int         `json:"dim"`
	Seen    uint64      `json:"seen"`
	Trained bool        `json:"trained"`
	A       []float64   `json:"a,omitempty"`
	B       []float64   `json:"b,omitempty"`
	W       []float64   `json:"w,omitempty"`
	RingX   [][]float64 `json:"ring_x,omitempty"`
	RingY   []float64   `json:"ring_y,omitempty"`
}

// ExportState snapshots the live state. Ring rows are copied so the
// snapshot stays stable across subsequent Observes.
func (r *Ridge) ExportState() RidgeState {
	st := RidgeState{
		Version: 1,
		Dim:     r.d,
		Seen:    r.seen,
		Trained: r.trained,
		A:       append([]float64(nil), r.a...),
		B:       append([]float64(nil), r.b...),
		W:       append([]float64(nil), r.w...),
		RingX:   make([][]float64, r.n),
		RingY:   make([]float64, r.n),
	}
	for i := 0; i < r.n; i++ {
		p := r.head + i
		if p >= r.n {
			p -= r.n
		}
		st.RingX[i] = append([]float64(nil), r.ringX[p*r.d:(p+1)*r.d]...)
		st.RingY[i] = r.ringY[p]
	}
	return st
}

// RestoreState replaces the live state with a snapshot, validating
// dimensions and finiteness so corrupt on-disk state is rejected.
func (r *Ridge) RestoreState(st RidgeState) error {
	if st.Version != 1 {
		return fmt.Errorf("ml: unsupported ridge state version %d", st.Version)
	}
	if st.Dim != r.d {
		return fmt.Errorf("ml: ridge state dim %d != configured %d", st.Dim, r.d)
	}
	if len(st.A) != r.d*r.d || len(st.B) != r.d || len(st.W) != r.d {
		return fmt.Errorf("ml: ridge state accumulator sizes %d/%d/%d do not match dim %d", len(st.A), len(st.B), len(st.W), r.d)
	}
	if len(st.RingX) != len(st.RingY) {
		return fmt.Errorf("ml: ridge state ring X/Y length mismatch (%d vs %d)", len(st.RingX), len(st.RingY))
	}
	if len(st.RingY) > r.window {
		return fmt.Errorf("ml: ridge state ring %d exceeds capacity %d", len(st.RingY), r.window)
	}
	for _, s := range [][]float64{st.A, st.B, st.W, st.RingY} {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: ridge state has non-finite values")
			}
		}
	}
	for i, row := range st.RingX {
		if len(row) != r.d {
			return fmt.Errorf("ml: ridge state ring row %d has %d features, dim is %d", i, len(row), r.d)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: ridge state ring row %d has non-finite features", i)
			}
		}
	}
	copy(r.a, st.A)
	copy(r.b, st.B)
	copy(r.w, st.W)
	r.ringX = r.ringX[:0]
	r.ringY = r.ringY[:0]
	r.n, r.head = 0, 0
	for i, row := range st.RingX {
		r.ringX = append(r.ringX, row...)
		r.ringY = append(r.ringY, st.RingY[i])
		r.n++
	}
	r.seen = st.Seen
	r.trained = st.Trained
	return nil
}
