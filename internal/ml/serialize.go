package ml

import (
	"encoding/json"
	"fmt"
	"io"
)

// Serialization of trained tree models: a production predictor trains
// once on the bootstrap dataset (a ~2-person-hour artifact in the
// paper, §6.4) and must survive controller restarts without retraining.

// TreeNodeExport is the stable form of one CART node.
type TreeNodeExport struct {
	Feature int     `json:"f"`
	Thresh  float64 `json:"t,omitempty"`
	Left    int32   `json:"l,omitempty"`
	Right   int32   `json:"r,omitempty"`
	Value   float64 `json:"v"`
}

// TreeExport is the stable form of a trained tree.
type TreeExport struct {
	Dim        int              `json:"dim"`
	Nodes      []TreeNodeExport `json:"nodes"`
	Importance []float64        `json:"importance,omitempty"`
}

// Export snapshots the trained tree.
func (t *Tree) Export() TreeExport {
	out := TreeExport{
		Dim:        t.dim,
		Nodes:      make([]TreeNodeExport, len(t.nodes)),
		Importance: append([]float64(nil), t.importance...),
	}
	for i, n := range t.nodes {
		out.Nodes[i] = TreeNodeExport{
			Feature: n.feature, Thresh: n.thresh,
			Left: n.left, Right: n.right, Value: n.value,
		}
	}
	return out
}

// ImportTree reconstructs a tree from its export.
func ImportTree(e TreeExport) (*Tree, error) {
	t := &Tree{dim: e.Dim}
	t.nodes = make([]treeNode, len(e.Nodes))
	for i, n := range e.Nodes {
		if n.Feature >= e.Dim {
			return nil, fmt.Errorf("ml: node %d splits on feature %d beyond dim %d", i, n.Feature, e.Dim)
		}
		if int(n.Left) >= len(e.Nodes) || int(n.Right) >= len(e.Nodes) {
			return nil, fmt.Errorf("ml: node %d has child out of range", i)
		}
		t.nodes[i] = treeNode{
			feature: n.Feature, thresh: n.Thresh,
			left: n.Left, right: n.Right, value: n.Value,
		}
	}
	t.importance = append([]float64(nil), e.Importance...)
	return t, nil
}

// ForestExport is the stable form of a trained forest. The incremental
// window is deliberately not persisted: a reloaded forest predicts
// immediately and rebuilds its window from fresh observations.
type ForestExport struct {
	Version int          `json:"version"`
	Config  ForestConfig `json:"config"`
	Dim     int          `json:"dim"`
	Trees   []TreeExport `json:"trees"`
}

// Export snapshots the trained forest.
func (f *Forest) Export() ForestExport {
	out := ForestExport{Version: 1, Config: f.cfg, Dim: f.dim}
	for _, t := range f.trees {
		out.Trees = append(out.Trees, t.Export())
	}
	return out
}

// ImportForest reconstructs a forest from its export. The forest is
// immediately usable for prediction; the first Update after import
// rebuilds the training window from the new batch alone.
func ImportForest(e ForestExport) (*Forest, error) {
	if e.Version != 1 {
		return nil, fmt.Errorf("ml: unsupported forest version %d", e.Version)
	}
	f := NewForest(e.Config)
	f.dim = e.Dim
	for i, te := range e.Trees {
		t, err := ImportTree(te)
		if err != nil {
			return nil, fmt.Errorf("ml: tree %d: %w", i, err)
		}
		f.trees = append(f.trees, t)
	}
	f.fitted = len(f.trees) > 0
	return f, nil
}

// WriteForest serializes a forest as JSON.
func WriteForest(w io.Writer, f *Forest) error {
	return json.NewEncoder(w).Encode(f.Export())
}

// ReadForest deserializes a forest from JSON.
func ReadForest(r io.Reader) (*Forest, error) {
	var e ForestExport
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("ml: decode forest: %w", err)
	}
	return ImportForest(e)
}
