// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by every stochastic component in the repository.
//
// All experiments derive their randomness from a single seed through
// named streams, so every table and figure regenerates bit-identically.
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64; both are implemented here so the module stays stdlib-only
// and independent of math/rand's evolving default source.
package rng

import (
	"errors"
	"hash/fnv"
	"math"
)

// Rand is a deterministic xoshiro256** generator. It is NOT safe for
// concurrent use; derive one stream per goroutine with Split or Stream.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Stream returns a generator whose seed combines seed and a stream name,
// so independent components of one experiment draw from independent
// sequences regardless of call order.
func Stream(seed uint64, name string) *Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(seed ^ h.Sum64())
}

// Split returns a new generator seeded from this one. The parent advances,
// so successive Splits yield independent children.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

// SplitInto re-seeds dst in place with exactly the state Split would
// give a fresh child (the parent advances identically), so hot loops
// can derive per-step streams without allocating.
func (r *Rand) SplitInto(dst *Rand) {
	x := r.Uint64() ^ 0xd1342543de82ef95
	for i := range dst.s {
		dst.s[i] = splitmix64(&x)
	}
	if dst.s[0]|dst.s[1]|dst.s[2]|dst.s[3] == 0 {
		dst.s[0] = 0x9e3779b97f4a7c15
	}
}

// State exposes the generator's xoshiro256** state for checkpointing:
// a restored stream resumes exactly where the snapshot left off, which
// is what keeps resumed runs byte-identical to uninterrupted ones.
func (r *Rand) State() [4]uint64 { return r.s }

// FromState reconstructs a generator from a State snapshot. The
// all-zero state is rejected — xoshiro can never reach it, so it only
// appears in corrupt or hand-forged snapshots.
func FromState(s [4]uint64) (*Rand, error) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return nil, errors.New("rng: invalid all-zero state")
	}
	return &Rand{s: s}, nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// simple rejection keeps the distribution exact.
	max := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Marsaglia polar method.
func (r *Rand) Norm(mean, std float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + std*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(Norm(mu, sigma)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Jitter returns x multiplied by a lognormal factor with multiplicative
// standard deviation roughly rel (e.g. 0.02 for ~2% measurement noise).
func (r *Rand) Jitter(x, rel float64) float64 {
	if rel <= 0 {
		return x
	}
	return x * r.LogNormal(0, rel)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Poisson returns a Poisson-distributed count with the given mean,
// using Knuth's method for small means and normal approximation for
// large ones.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := r.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
