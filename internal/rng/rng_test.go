package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := Stream(7, "alpha")
	b := Stream(7, "beta")
	if a.Uint64() == b.Uint64() {
		t.Fatal("named streams with same seed should differ")
	}
	c := Stream(7, "alpha")
	a2 := Stream(7, "alpha")
	if c.Uint64() != a2.Uint64() {
		t.Fatal("same stream name and seed must reproduce")
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("Norm std = %v, want ~2", std)
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(9)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Fatal("Poisson(0) must be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitter(t *testing.T) {
	r := New(11)
	if got := r.Jitter(5, 0); got != 5 {
		t.Fatalf("Jitter with rel=0 should be identity, got %v", got)
	}
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Jitter(100, 0.02)
		if v <= 0 {
			t.Fatalf("Jitter produced non-positive %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-100) > 1 {
		t.Fatalf("Jitter mean = %v, want ~100", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(42)
	a := parent.Split()
	b := parent.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("successive splits should differ")
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Range(3, 9)
		if v < 3 || v >= 9 {
			t.Fatalf("Range(3,9) out of bounds: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(14)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			count++
		}
	}
	if got := float64(count) / n; math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
}

func TestShuffle(t *testing.T) {
	r := New(15)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 45 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := Stream(42, "checkpoint")
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	restored, err := FromState(r.State())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a, b := r.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("draw %d diverged: %d != %d", i, b, a)
		}
	}
	// Splits from the same cursor must also agree.
	if a, b := r.Split().Uint64(), restored.Split().Uint64(); a != b {
		t.Fatalf("split diverged: %d != %d", b, a)
	}
}

func TestFromStateRejectsAllZero(t *testing.T) {
	if _, err := FromState([4]uint64{}); err == nil {
		t.Fatal("all-zero state accepted")
	}
}
