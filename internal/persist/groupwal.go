package persist

import (
	"errors"
	"sync"
	"time"
)

// GroupWAL wraps a WAL with group commit: concurrent appenders enqueue
// records and block until an fsync covers them, while a single
// committer goroutine drains the queue, writes everything pending and
// issues ONE fsync for the whole batch. Under concurrent ingest the
// natural pile-up during each fsync forms the next batch, so the
// per-record cost amortizes to (fsync latency / batch size) instead of
// serializing every append behind its own disk flush. An optional
// flush window adds bounded extra coalescing for low-concurrency
// callers at the price of that much acknowledgement latency.
//
// Durability contract: when Append (or AppendBatch) returns nil, the
// record's bytes — checksummed line framing included — have been
// fsynced. A write or sync failure is sticky: it is delivered to every
// waiter of the failed batch and every later call, because a WAL whose
// tail state is unknown must not accept more acknowledgements.
type GroupWAL struct {
	mu      sync.Mutex
	cond    *sync.Cond
	wal     *WAL
	queue   []groupEntry
	err     error // sticky; set by the first failed flush
	closing bool
	done    chan struct{}
	window  time.Duration
}

// groupEntry is one queued record. A nil payload is a sync barrier:
// the flusher skips the write but the waiter still observes the
// batch's fsync result.
type groupEntry struct {
	payload []byte
	done    chan error // nil for all but the last record of a batch
}

// ErrWALClosed reports an append against a closed GroupWAL.
var ErrWALClosed = errors.New("persist: group wal closed")

// NewGroupWAL starts group commit over an open WAL, taking ownership
// of it (Close closes the underlying log). window bounds how long the
// flusher waits for more records after waking with a non-empty queue;
// 0 flushes as soon as the flusher is free, which is already group
// commit under load.
func NewGroupWAL(w *WAL, window time.Duration) *GroupWAL {
	g := &GroupWAL{wal: w, window: window, done: make(chan struct{})}
	g.cond = sync.NewCond(&g.mu)
	go g.flusher()
	return g
}

// Append writes one record and blocks until a group fsync covers it.
// The payload must not contain a newline and must stay unmodified
// until Append returns (it is not copied — the call blocks anyway).
func (g *GroupWAL) Append(payload []byte) error {
	return g.enqueue([][]byte{payload})
}

// AppendBatch writes the payloads contiguously, in order, covered by a
// single group fsync. An empty batch is a sync barrier: it returns
// after every previously-queued record is durable.
func (g *GroupWAL) AppendBatch(payloads [][]byte) error {
	return g.enqueue(payloads)
}

// Sync blocks until everything queued before it is fsynced.
func (g *GroupWAL) Sync() error {
	return g.enqueue(nil)
}

func (g *GroupWAL) enqueue(payloads [][]byte) error {
	ch := make(chan error, 1)
	g.mu.Lock()
	if g.err != nil {
		err := g.err
		g.mu.Unlock()
		return err
	}
	if g.closing {
		g.mu.Unlock()
		return ErrWALClosed
	}
	for i, p := range payloads {
		e := groupEntry{payload: p}
		if i == len(payloads)-1 {
			e.done = ch
		}
		g.queue = append(g.queue, e)
	}
	if len(payloads) == 0 {
		g.queue = append(g.queue, groupEntry{done: ch})
	}
	g.cond.Signal()
	g.mu.Unlock()
	return <-ch
}

// flusher is the single committer goroutine: it drains the queue in
// batches, writes each batch and fsyncs once per batch.
func (g *GroupWAL) flusher() {
	defer close(g.done)
	for {
		g.mu.Lock()
		for len(g.queue) == 0 && !g.closing {
			g.cond.Wait()
		}
		if len(g.queue) == 0 && g.closing {
			g.mu.Unlock()
			return
		}
		if g.window > 0 {
			// Bounded coalescing: let stragglers join the batch.
			g.mu.Unlock()
			time.Sleep(g.window)
			g.mu.Lock()
		}
		batch := g.queue
		g.queue = nil
		sticky := g.err
		g.mu.Unlock()

		err := sticky
		if err == nil {
			for i := range batch {
				if batch[i].payload == nil {
					continue
				}
				if err = g.wal.Append(batch[i].payload); err != nil {
					break
				}
			}
			if err == nil {
				err = g.wal.Sync()
			}
		}
		if err != nil && sticky == nil {
			g.mu.Lock()
			g.err = err
			g.mu.Unlock()
		}
		for i := range batch {
			if batch[i].done != nil {
				batch[i].done <- err
			}
		}
	}
}

// Close drains the queue, stops the flusher and closes the underlying
// WAL. Appends racing with Close either complete durably or fail with
// ErrWALClosed.
func (g *GroupWAL) Close() error {
	g.mu.Lock()
	if g.closing {
		g.mu.Unlock()
		<-g.done
		return g.err
	}
	g.closing = true
	g.cond.Signal()
	g.mu.Unlock()
	<-g.done
	err := g.wal.Close()
	g.mu.Lock()
	if g.err == nil {
		g.err = ErrWALClosed
	} else {
		err = g.err
	}
	g.mu.Unlock()
	return err
}
