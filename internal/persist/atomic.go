package persist

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path crash-consistently: the bytes go
// to a temporary file in the same directory, are fsynced, and the temp
// file is renamed over path, followed by a directory fsync so the new
// entry survives a power cut. A crash at any instant leaves either the
// old file or the complete new one on disk — never a torn mix.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op once the rename has happened
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %s: sync: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("persist: %s: %w", path, err)
	}
	return syncDir(dir)
}

// writeFileWith renders content into memory via render and writes it
// atomically — the file-path save helpers all funnel through here so no
// writer in the package can tear a file on crash.
func writeFileWith(path string, render func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: sync %s: %w", dir, err)
	}
	return nil
}
