package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gsight/internal/ml"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/sched"
	"gsight/internal/workload"
)

func TestStoreRoundTrip(t *testing.T) {
	spec := resources.DefaultServerSpec("t")
	s := profile.NewStore()
	s.ProfileWorkload(workload.SocialNetwork(), spec, nil)
	s.ProfileWorkload(workload.MatMul(), spec, nil)

	var buf bytes.Buffer
	if err := SaveStore(&buf, s, []string{"social-network", "matmul"}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := s.Get("social-network")
	loaded, ok := got.Get("social-network")
	if !ok || len(loaded) != len(orig) {
		t.Fatalf("round trip lost profiles: %d vs %d", len(loaded), len(orig))
	}
	for i := range orig {
		if orig[i].Metrics != loaded[i].Metrics {
			t.Fatalf("profile %d metrics differ after round trip", i)
		}
		if orig[i].Alloc != loaded[i].Alloc || orig[i].Demand != loaded[i].Demand {
			t.Fatalf("profile %d resources differ after round trip", i)
		}
	}
}

func TestSaveStoreMissingWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveStore(&buf, profile.NewStore(), []string{"ghost"}); err == nil {
		t.Fatal("missing workload must error")
	}
}

func TestLoadStoreRejectsMalformed(t *testing.T) {
	cases := []string{
		`not json`,
		`{"version": 2, "workloads": {}}`,
		`{"version": 1, "workloads": {"x": [{"workload":"x","function":"f","metrics":[1,2],"demand":[],"alloc":[]}]}}`,
	}
	for _, c := range cases {
		if _, err := LoadStore(strings.NewReader(c)); err == nil {
			t.Fatalf("malformed store %q accepted", c[:20])
		}
	}
}

func TestStoreFileHelpers(t *testing.T) {
	spec := resources.DefaultServerSpec("t")
	s := profile.NewStore()
	s.ProfileWorkload(workload.DD(), spec, nil)
	path := filepath.Join(t.TempDir(), "store.json")
	if err := SaveStoreFile(path, s, []string{"dd"}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Get("dd"); !ok {
		t.Fatal("file round trip lost workload")
	}
	if _, err := LoadStoreFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestCurveRoundTrip(t *testing.T) {
	c := sched.NewCurve([]sched.CurvePoint{
		{IPC: 1.0, P99Ms: 300}, {IPC: 1.1, P99Ms: 150}, {IPC: 1.2, P99Ms: 100},
	})
	var buf bytes.Buffer
	if err := SaveCurve(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCurve(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points()) != 3 {
		t.Fatalf("points = %d", len(got.Points()))
	}
	a, okA := c.MinIPCFor(200)
	b, okB := got.MinIPCFor(200)
	if okA != okB || a != b {
		t.Fatalf("curve behaviour changed after round trip: %v/%v vs %v/%v", a, okA, b, okB)
	}
	if _, err := LoadCurve(strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("bad version must error")
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	ds := &ml.Dataset{}
	r := rng.New(1)
	for i := 0; i < 50; i++ {
		ds.Append([]float64{r.Float64(), r.Float64()}, r.Float64())
	}
	var buf bytes.Buffer
	if err := SaveDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50 {
		t.Fatalf("dataset length = %d", got.Len())
	}
	for i := range ds.Y {
		if ds.Y[i] != got.Y[i] || ds.X[i][0] != got.X[i][0] {
			t.Fatal("dataset contents changed")
		}
	}
	if _, err := LoadDataset(strings.NewReader(`{"version":1,"x":[[1]],"y":[]}`)); err == nil {
		t.Fatal("mismatched X/Y must error")
	}
}

func TestOpenAppendTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.log")
	if err := os.WriteFile(path, []byte("keep|cut off by the crash"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenAppendTruncated(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("resumed"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "keep|resumed" {
		t.Fatalf("stream after truncated reopen = %q", got)
	}
	// A missing file resumes only from offset 0 (fresh stream).
	fresh := filepath.Join(t.TempDir(), "fresh.log")
	f, err = OpenAppendTruncated(fresh, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	// A file shorter than the recorded offset is corruption, not
	// something to zero-extend.
	if _, err := OpenAppendTruncated(fresh, 99); err == nil {
		t.Fatal("short file must be rejected, not zero-extended")
	}
}
