package persist

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Append-only write-ahead log: one record per line, each line carrying
// its own CRC-32C so replay can stop exactly at the first torn or
// corrupt byte. The format is
//
//	crc32c(payload) as 8 hex digits, one space, payload, '\n'
//
// Payloads are opaque single-line byte strings (the platform writes
// compact JSON). A record only counts as valid when its newline made it
// to disk and its checksum matches, so a crash mid-append loses at most
// the record being written — never the prefix before it.

var walTable = crc32.MakeTable(crc32.Castagnoli)

// WAL is an open write-ahead log. Appends are buffered; Sync flushes
// and fsyncs. Not goroutine-safe — the platform appends from its
// single-threaded event loop.
type WAL struct {
	f   *os.File
	w   *bufio.Writer
	buf []byte
}

// CreateWAL creates (or truncates) the log at path.
func CreateWAL(path string) (*WAL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("persist: wal %s: %w", path, err)
	}
	return &WAL{f: f, w: bufio.NewWriter(f)}, nil
}

// OpenWALAppend opens the log at path for appending after its valid
// prefix: the file is truncated to validLen (discarding any torn tail
// ReplayWAL rejected) and positioned at the end.
func OpenWALAppend(path string, validLen int64) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: wal %s: %w", path, err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: wal %s: truncate: %w", path, err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: wal %s: %w", path, err)
	}
	return &WAL{f: f, w: bufio.NewWriter(f)}, nil
}

// Append writes one record. The payload must not contain a newline.
func (w *WAL) Append(payload []byte) error {
	if bytes.IndexByte(payload, '\n') >= 0 {
		return fmt.Errorf("persist: wal record contains newline")
	}
	b := w.buf[:0]
	b = appendCRCHex(b, crc32.Checksum(payload, walTable))
	b = append(b, ' ')
	b = append(b, payload...)
	b = append(b, '\n')
	w.buf = b
	_, err := w.w.Write(b)
	return err
}

// Sync flushes buffered records and fsyncs the file.
func (w *WAL) Sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// appendCRCHex appends the checksum as exactly 8 lowercase hex digits.
func appendCRCHex(b []byte, crc uint32) []byte {
	const hexdig = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		b = append(b, hexdig[(crc>>uint(shift))&0xf])
	}
	return b
}

// ReplayWAL reads the longest valid prefix of the log at path: records
// are returned in order and validLen is the byte offset where the
// prefix ends (pass it to OpenWALAppend to continue the log). A torn
// tail — a half-written line, a checksum mismatch, a missing final
// newline — ends the prefix silently; that is the expected shape of a
// crash. A missing file is an empty log.
func ReplayWAL(path string) (records [][]byte, validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("persist: wal %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: the last append was torn.
			return records, off, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("persist: wal %s: %w", path, err)
		}
		rec, ok := parseWALLine(line)
		if !ok {
			return records, off, nil
		}
		// Copy: the reader's buffer is reused across lines.
		records = append(records, append([]byte(nil), rec...))
		off += int64(len(line))
	}
}

// parseWALLine validates one "crc payload\n" line and returns the
// payload.
func parseWALLine(line []byte) ([]byte, bool) {
	// 8 hex digits + space + newline is the minimum frame.
	if len(line) < 10 || line[8] != ' ' || line[len(line)-1] != '\n' {
		return nil, false
	}
	var crc uint32
	for _, c := range line[:8] {
		var v byte
		switch {
		case c >= '0' && c <= '9':
			v = c - '0'
		case c >= 'a' && c <= 'f':
			v = c - 'a' + 10
		default:
			return nil, false
		}
		crc = crc<<4 | uint32(v)
	}
	payload := line[9 : len(line)-1]
	if crc32.Checksum(payload, walTable) != crc {
		return nil, false
	}
	return payload, true
}
