// Package persist serializes the artifacts a production deployment of
// Gsight keeps across restarts: solo-run profile stores (profiling is
// a one-time cost the paper amortizes, §6.4), calibrated latency-IPC
// curves, labeled datasets, and trained random-forest models. Formats
// are plain JSON — inspectable, diffable, stdlib-only.
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"gsight/internal/metrics"
	"gsight/internal/ml"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/sched"
)

// allFinite reports whether every value is a real number. Loaders
// reject NaN/Inf rather than letting a silently corrupt model poison
// every downstream prediction.
func allFinite(vs []float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// profileJSON is the stable on-disk form of a profile.
type profileJSON struct {
	Workload string    `json:"workload"`
	Function string    `json:"function"`
	Metrics  []float64 `json:"metrics"`
	Demand   []float64 `json:"demand"`
	Alloc    []float64 `json:"alloc"`
}

func toProfileJSON(p profile.Profile) profileJSON {
	return profileJSON{
		Workload: p.Workload,
		Function: p.Function,
		Metrics:  p.Metrics[:],
		Demand:   p.Demand[:],
		Alloc:    p.Alloc[:],
	}
}

func fromProfileJSON(j profileJSON) (profile.Profile, error) {
	var p profile.Profile
	if len(j.Metrics) != int(metrics.NumCandidates) {
		return p, fmt.Errorf("persist: profile %s/%s has %d metrics, want %d",
			j.Workload, j.Function, len(j.Metrics), metrics.NumCandidates)
	}
	if len(j.Demand) != int(resources.NumKinds) || len(j.Alloc) != int(resources.NumKinds) {
		return p, fmt.Errorf("persist: profile %s/%s has malformed resource vectors", j.Workload, j.Function)
	}
	if !allFinite(j.Metrics) || !allFinite(j.Demand) || !allFinite(j.Alloc) {
		return p, fmt.Errorf("persist: profile %s/%s has non-finite values", j.Workload, j.Function)
	}
	p.Workload = j.Workload
	p.Function = j.Function
	copy(p.Metrics[:], j.Metrics)
	copy(p.Demand[:], j.Demand)
	copy(p.Alloc[:], j.Alloc)
	return p, nil
}

// storeJSON is the on-disk profile store.
type storeJSON struct {
	Version   int                      `json:"version"`
	Workloads map[string][]profileJSON `json:"workloads"`
}

// SaveStore writes a profile store as JSON.
func SaveStore(w io.Writer, s *profile.Store, workloads []string) error {
	out := storeJSON{Version: 1, Workloads: map[string][]profileJSON{}}
	for _, name := range workloads {
		ps, ok := s.Get(name)
		if !ok {
			return fmt.Errorf("persist: workload %q not in store", name)
		}
		js := make([]profileJSON, len(ps))
		for i, p := range ps {
			js[i] = toProfileJSON(p)
		}
		out.Workloads[name] = js
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadStore reads a profile store from JSON.
func LoadStore(r io.Reader) (*profile.Store, error) {
	var in storeJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("persist: decode store: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("persist: unsupported store version %d", in.Version)
	}
	s := profile.NewStore()
	for name, js := range in.Workloads {
		ps := make([]profile.Profile, len(js))
		for i, j := range js {
			p, err := fromProfileJSON(j)
			if err != nil {
				return nil, err
			}
			ps[i] = p
		}
		s.Put(name, ps)
	}
	return s, nil
}

// SaveStoreFile writes a profile store to path atomically (temp file +
// fsync + rename): a crash mid-save leaves the previous store intact,
// never a torn file.
func SaveStoreFile(path string, s *profile.Store, workloads []string) error {
	return writeFileWith(path, func(w io.Writer) error {
		return SaveStore(w, s, workloads)
	})
}

// LoadStoreFile reads a profile store from a file.
func LoadStoreFile(path string) (*profile.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := LoadStore(f)
	if err != nil {
		return nil, fmt.Errorf("persist: %s: %w", path, err)
	}
	return s, nil
}

// curveJSON is the on-disk latency-IPC curve.
type curveJSON struct {
	Version int                `json:"version"`
	Points  []sched.CurvePoint `json:"points"`
}

// SaveCurve writes a calibrated curve as JSON.
func SaveCurve(w io.Writer, c *sched.Curve) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(curveJSON{Version: 1, Points: c.Points()})
}

// LoadCurve reads a curve from JSON.
func LoadCurve(r io.Reader) (*sched.Curve, error) {
	var in curveJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("persist: decode curve: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("persist: unsupported curve version %d", in.Version)
	}
	for i, p := range in.Points {
		if math.IsNaN(p.IPC) || math.IsInf(p.IPC, 0) || math.IsNaN(p.P99Ms) || math.IsInf(p.P99Ms, 0) {
			return nil, fmt.Errorf("persist: curve point %d has non-finite values", i)
		}
	}
	return sched.NewCurve(in.Points), nil
}

// datasetJSON is the on-disk labeled dataset.
type datasetJSON struct {
	Version int         `json:"version"`
	X       [][]float64 `json:"x"`
	Y       []float64   `json:"y"`
}

// SaveDataset writes a labeled dataset as JSON.
func SaveDataset(w io.Writer, ds *ml.Dataset) error {
	return json.NewEncoder(w).Encode(datasetJSON{Version: 1, X: ds.X, Y: ds.Y})
}

// LoadDataset reads a labeled dataset from JSON.
func LoadDataset(r io.Reader) (*ml.Dataset, error) {
	var in datasetJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("persist: decode dataset: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("persist: unsupported dataset version %d", in.Version)
	}
	if len(in.X) != len(in.Y) {
		return nil, fmt.Errorf("persist: dataset X/Y length mismatch (%d vs %d)", len(in.X), len(in.Y))
	}
	if !allFinite(in.Y) {
		return nil, fmt.Errorf("persist: dataset labels have non-finite values")
	}
	for i, row := range in.X {
		if len(in.X) > 0 && len(row) != len(in.X[0]) {
			return nil, fmt.Errorf("persist: dataset row %d has %d features, row 0 has %d", i, len(row), len(in.X[0]))
		}
		if !allFinite(row) {
			return nil, fmt.Errorf("persist: dataset row %d has non-finite values", i)
		}
	}
	return &ml.Dataset{X: in.X, Y: in.Y}, nil
}
