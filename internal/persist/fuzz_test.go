package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadSnapshot throws arbitrary bytes at the snapshot decoder: it
// must reject or accept cleanly, and anything it accepts must be a
// checksum-consistent envelope that re-encodes to an equivalent one.
func FuzzLoadSnapshot(f *testing.F) {
	good, err := EncodeSnapshot(3, []byte(`{"state":{"step":42},"rnd":[1,2,3,4]}`))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"seq":1,"sha256":"","payload":{}}`))
	f.Add([]byte(`{"version":99,"seq":0,"sha256":"00","payload":null}`))
	f.Add([]byte("not json at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, payload, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Accepted: the payload must survive an encode/decode round trip.
		re, err := EncodeSnapshot(seq, payload)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		seq2, payload2, err := DecodeSnapshot(re)
		if err != nil || seq2 != seq || !bytes.Equal(payload, payload2) {
			t.Fatalf("round trip diverged: %v", err)
		}
	})
}

// FuzzReplayWAL feeds arbitrary bytes as a WAL file: replay must never
// error on content (only report a shorter valid prefix), the prefix must
// be stable, and continuing from validLen must preserve it.
func FuzzReplayWAL(f *testing.F) {
	dir := f.TempDir()
	wal, err := CreateWAL(filepath.Join(dir, "seed.jsonl"))
	if err != nil {
		f.Fatal(err)
	}
	wal.Append([]byte(`{"t":"place","sim_s":30,"name":"matmul","placement":[0,1]}`))
	wal.Append([]byte(`{"t":"obs","sim_s":60,"kind":"ipc","target":1,"label":1.25}`))
	wal.Append([]byte(`{"t":"crash","sim_s":95}`))
	if err := wal.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(dir, "seed.jsonl"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-7]) // torn tail
	f.Add([]byte(""))
	f.Add([]byte("deadbeef {}\n"))
	f.Add([]byte("zzzzzzzz {}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		records, validLen, err := ReplayWAL(path)
		if err != nil {
			t.Fatalf("replay errored on arbitrary content: %v", err)
		}
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [0,%d]", validLen, len(data))
		}
		// The valid prefix re-parses to the same records.
		if err := os.WriteFile(path, data[:validLen], 0o644); err != nil {
			t.Fatal(err)
		}
		again, againLen, err := ReplayWAL(path)
		if err != nil || againLen != validLen || len(again) != len(records) {
			t.Fatalf("prefix unstable: %d/%d records, len %d/%d, err %v",
				len(again), len(records), againLen, validLen, err)
		}
		for i := range records {
			if !bytes.Equal(again[i], records[i]) {
				t.Fatalf("record %d changed across replays", i)
			}
		}
		// Appending after the prefix keeps it intact.
		w, err := OpenWALAppend(path, validLen)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append([]byte(`{"t":"new"}`)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		final, _, err := ReplayWAL(path)
		if err != nil || len(final) != len(records)+1 {
			t.Fatalf("continuation lost records: %d vs %d+1, err %v", len(final), len(records), err)
		}
	})
}
