package persist

import (
	"fmt"
	"io"
	"os"
)

// OpenAppendTruncated reopens a checkpoint-aware output stream for a
// resumed run: it opens path read-write, truncates it to exactly size
// (the offset the snapshot recorded) and positions the cursor at the
// new end, so the resumed run re-emits precisely the records the crash
// cut off. Every resumable stream — the decision log, the lifecycle
// trace, the flight recording — reopens through this.
//
// A file shorter than size is rejected: truncate would zero-extend it
// and silently corrupt the recording instead of continuing it.
func OpenAppendTruncated(path string, size int64) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < size {
		f.Close()
		return nil, fmt.Errorf("persist: %s has %d bytes, shorter than the resume offset %d", path, st.Size(), size)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}
