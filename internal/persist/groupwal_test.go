package persist

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestGroupWALConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupWAL(w, 0)

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if err := g.Append([]byte(fmt.Sprintf(`{"w":%d,"j":%d}`, i, j))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	recs, _, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*perWorker {
		t.Fatalf("replayed %d records, want %d", len(recs), workers*perWorker)
	}
}

func TestGroupWALBatchOrderAndBarrier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupWAL(w, time.Millisecond)

	batch := [][]byte{[]byte(`{"seq":1}`), []byte(`{"seq":2}`), []byte(`{"seq":3}`)}
	if err := g.AppendBatch(batch); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if err := g.Sync(); err != nil {
		t.Fatalf("sync barrier: %v", err)
	}
	// The batch is durable before Close: replay the live file.
	recs, _, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(batch) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(batch))
	}
	for i, rec := range recs {
		if string(rec) != string(batch[i]) {
			t.Fatalf("record %d = %q, want %q (batch order broken)", i, rec, batch[i])
		}
	}
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := g.Append([]byte("late")); err != ErrWALClosed {
		t.Fatalf("append after close: %v, want ErrWALClosed", err)
	}
}

func TestGroupWALStickyError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupWAL(w, 0)
	// A payload with a newline is rejected by WAL.Append inside the
	// flusher; the error must reach the waiter and then stick.
	if err := g.Append([]byte("bad\nrecord")); err == nil {
		t.Fatal("append of newline payload succeeded")
	}
	if err := g.Append([]byte("good")); err == nil {
		t.Fatal("append after flush failure succeeded; error must be sticky")
	}
	g.Close()
}

// BenchmarkWALAppendGroup measures group-committed durable appends
// under concurrent ingest — the serving daemon's WAL-before-ack path.
// Compare BenchmarkWALAppendSyncEach: the same durability with one
// fsync per record, which group commit exists to amortize.
func BenchmarkWALAppendGroup(b *testing.B) {
	path := filepath.Join(b.TempDir(), "wal.jsonl")
	w, err := CreateWAL(path)
	if err != nil {
		b.Fatal(err)
	}
	g := NewGroupWAL(w, 0)
	defer g.Close()
	payload := []byte(`{"seq":123,"kind":"place","workload":"matmul","placement":[0,1,2,3]}`)
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := g.Append(payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkWALAppendSyncEach is the ungrouped baseline: every record
// pays its own fsync, appenders serialized behind a mutex.
func BenchmarkWALAppendSyncEach(b *testing.B) {
	path := filepath.Join(b.TempDir(), "wal.jsonl")
	w, err := CreateWAL(path)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	var mu sync.Mutex
	payload := []byte(`{"seq":123,"kind":"place","workload":"matmul","placement":[0,1,2,3]}`)
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			err := w.Append(payload)
			if err == nil {
				err = w.Sync()
			}
			mu.Unlock()
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}
