package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Crash-consistent snapshot envelope. A checkpoint directory holds a
// rolling set of generations, each a snapshot file plus the WAL of
// records appended after it:
//
//	snap-000000001.ckpt   wal-000000001.jsonl
//	snap-000000002.ckpt   wal-000000002.jsonl
//
// A snapshot file is one JSON object {version, seq, sha256, payload}:
// the sha256 is the hex digest of the payload's raw bytes, so any
// torn, truncated or bit-flipped snapshot is detected on load and the
// loader falls back to the previous generation. Snapshots are written
// via WriteFileAtomic, so a crash during a write never destroys the
// previous valid snapshot. The payload itself is opaque to this
// package — the platform owns its schema — which keeps persist free of
// import cycles.

// SnapshotVersion is the envelope format version.
const SnapshotVersion = 1

const (
	snapPrefix = "snap-"
	snapSuffix = ".ckpt"
	walPrefix  = "wal-"
	walSuffix  = ".jsonl"
)

// ErrNoSnapshot reports a checkpoint directory with no valid snapshot.
var ErrNoSnapshot = errors.New("persist: no valid snapshot")

// SnapshotPath returns the snapshot file name for a generation.
func SnapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%09d%s", snapPrefix, seq, snapSuffix))
}

// WALPath returns the WAL file name for a generation.
func WALPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%09d%s", walPrefix, seq, walSuffix))
}

type snapshotEnvelope struct {
	Version int             `json:"version"`
	Seq     uint64          `json:"seq"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// EncodeSnapshot wraps a payload in a checksummed envelope.
func EncodeSnapshot(seq uint64, payload []byte) ([]byte, error) {
	if !json.Valid(payload) {
		return nil, fmt.Errorf("persist: snapshot %d: payload is not valid JSON", seq)
	}
	sum := sha256.Sum256(payload)
	return json.Marshal(snapshotEnvelope{
		Version: SnapshotVersion,
		Seq:     seq,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload,
	})
}

// DecodeSnapshot validates an envelope and returns its sequence number
// and payload. Corruption anywhere — malformed JSON, a version skew, a
// checksum mismatch — is an error, never a silently wrong payload.
func DecodeSnapshot(data []byte) (uint64, []byte, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var env snapshotEnvelope
	if err := dec.Decode(&env); err != nil {
		return 0, nil, fmt.Errorf("persist: snapshot: %w", err)
	}
	if env.Version != SnapshotVersion {
		return 0, nil, fmt.Errorf("persist: unsupported snapshot version %d", env.Version)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return 0, nil, fmt.Errorf("persist: snapshot %d: checksum mismatch", env.Seq)
	}
	return env.Seq, env.Payload, nil
}

// WriteSnapshot writes generation seq's snapshot atomically and returns
// its path.
func WriteSnapshot(dir string, seq uint64, payload []byte) (string, error) {
	data, err := EncodeSnapshot(seq, payload)
	if err != nil {
		return "", err
	}
	path := SnapshotPath(dir, seq)
	if err := WriteFileAtomic(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// SnapshotInfo names one snapshot generation on disk.
type SnapshotInfo struct {
	Path string
	Seq  uint64
}

// Snapshots lists the snapshot generations in dir, ascending by
// sequence. Leftover temp files from interrupted writes are ignored.
// A directory that does not exist yet lists as empty: a run killed
// before its first snapshot landed looks exactly like a fresh start,
// so retry loops can pass -resume unconditionally.
func Snapshots(dir string) ([]SnapshotInfo, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: %s: %w", dir, err)
	}
	var out []SnapshotInfo
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue // temp file or foreign name
		}
		out = append(out, SnapshotInfo{Path: filepath.Join(dir, name), Seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// LatestSnapshot loads the newest valid snapshot in dir, falling back
// over corrupt or truncated generations: each rejected snapshot (and
// its WAL, which describes a future the fallback run will re-execute)
// is deleted so the directory converges back to a valid state. It
// returns ErrNoSnapshot when the directory holds no valid snapshot.
func LatestSnapshot(dir string) (payload []byte, seq uint64, err error) {
	infos, err := Snapshots(dir)
	if err != nil {
		return nil, 0, err
	}
	var lastErr error
	for i := len(infos) - 1; i >= 0; i-- {
		info := infos[i]
		data, err := os.ReadFile(info.Path)
		if err == nil {
			var gotSeq uint64
			gotSeq, payload, err = DecodeSnapshot(data)
			if err == nil && gotSeq != info.Seq {
				err = fmt.Errorf("persist: %s: envelope seq %d does not match file name", info.Path, gotSeq)
			}
			if err == nil {
				return payload, info.Seq, nil
			}
		}
		lastErr = fmt.Errorf("persist: %s: %w", info.Path, err)
		// The generation is unusable; remove it and its WAL so the
		// resumed run re-executes that span from the previous snapshot.
		os.Remove(info.Path)
		os.Remove(WALPath(dir, info.Seq))
	}
	if lastErr != nil {
		return nil, 0, fmt.Errorf("%w (newest rejected: %v)", ErrNoSnapshot, lastErr)
	}
	return nil, 0, ErrNoSnapshot
}

// PruneCheckpoints deletes generations older than keepFrom (snapshots
// and WALs with seq < keepFrom).
func PruneCheckpoints(dir string, keepFrom uint64) error {
	infos, err := Snapshots(dir)
	if err != nil {
		return err
	}
	for _, info := range infos {
		if info.Seq >= keepFrom {
			continue
		}
		if err := os.Remove(info.Path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("persist: prune %s: %w", info.Path, err)
		}
		if err := os.Remove(WALPath(dir, info.Seq)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("persist: prune wal %d: %w", info.Seq, err)
		}
	}
	return nil
}
