package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicReplacesWholeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first version, longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("got %q, want %q", got, "second")
	}
	// No temp debris left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

func TestSnapshotEnvelopeRoundTrip(t *testing.T) {
	payload := []byte(`{"hello":"world","n":42}`)
	data, err := EncodeSnapshot(7, payload)
	if err != nil {
		t.Fatal(err)
	}
	seq, got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: seq=%d payload=%s", seq, got)
	}
}

func TestDecodeSnapshotDetectsCorruption(t *testing.T) {
	data, err := EncodeSnapshot(1, []byte(`{"a":1}`))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the checksum must catch it.
	bad := append([]byte(nil), data...)
	i := bytes.LastIndexByte(bad, '1')
	bad[i] = '2'
	if _, _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("corrupted snapshot decoded without error")
	}
	if _, _, err := DecodeSnapshot(data[:len(data)/2]); err == nil {
		t.Fatal("truncated snapshot decoded without error")
	}
}

func TestEncodeSnapshotRejectsInvalidPayload(t *testing.T) {
	if _, err := EncodeSnapshot(1, []byte("not json")); err == nil {
		t.Fatal("non-JSON payload accepted")
	}
}

func TestLatestSnapshotFallsBackOverCorruptGenerations(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 3; seq++ {
		payload := []byte(fmt.Sprintf(`{"gen":%d}`, seq))
		if _, err := WriteSnapshot(dir, seq, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Give generation 3 a WAL, then corrupt its snapshot: fallback must
	// discard both.
	walPath := WALPath(dir, 3)
	if err := os.WriteFile(walPath, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap3 := SnapshotPath(dir, 3)
	data, err := os.ReadFile(snap3)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(snap3, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Plus leftover debris a crash mid-write could leave: a temp file
	// and a foreign name, both ignored.
	os.WriteFile(filepath.Join(dir, "snap-000000004.ckpt.tmp123"), []byte("partial"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644)

	payload, seq, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || string(payload) != `{"gen":2}` {
		t.Fatalf("fell back to seq=%d payload=%s, want generation 2", seq, payload)
	}
	if _, err := os.Stat(snap3); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot generation not removed")
	}
	if _, err := os.Stat(walPath); !os.IsNotExist(err) {
		t.Fatal("corrupt generation's WAL not removed")
	}
}

func TestLatestSnapshotEmptyOrAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LatestSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: got %v, want ErrNoSnapshot", err)
	}
	// A directory that was never created (run killed before the first
	// snapshot) must look the same as an empty one, not error.
	if _, _, err := LatestSnapshot(filepath.Join(dir, "never-created")); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing dir: got %v, want ErrNoSnapshot", err)
	}
	if _, err := WriteSnapshot(dir, 1, []byte(`{"gen":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(SnapshotPath(dir, 1), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LatestSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("all corrupt: got %v, want ErrNoSnapshot", err)
	}
}

func TestPruneCheckpoints(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 4; seq++ {
		if _, err := WriteSnapshot(dir, seq, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		os.WriteFile(WALPath(dir, seq), nil, 0o644)
	}
	if err := PruneCheckpoints(dir, 3); err != nil {
		t.Fatal(err)
	}
	snaps, err := Snapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].Seq != 3 || snaps[1].Seq != 4 {
		t.Fatalf("snapshots after prune: %+v", snaps)
	}
	for seq := uint64(1); seq <= 2; seq++ {
		if _, err := os.Stat(WALPath(dir, seq)); !os.IsNotExist(err) {
			t.Fatalf("wal %d survived pruning", seq)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte(`{"t":"a"}`), []byte(`{"t":"b","n":2}`), []byte(``)}
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	records, validLen, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if validLen != fi.Size() {
		t.Fatalf("validLen %d, file size %d", validLen, fi.Size())
	}
	if len(records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(records), len(want))
	}
	for i := range want {
		if !bytes.Equal(records[i], want[i]) {
			t.Fatalf("record %d: %q != %q", i, records[i], want[i])
		}
	}
}

func TestWALTornTailAndCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, prefixLen, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}

	// Torn tail: half a record appended without its newline.
	full, _ := os.ReadFile(path)
	torn := append(append([]byte(nil), full...), []byte("deadbeef {\"i\":3")...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	records, validLen, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || validLen != prefixLen {
		t.Fatalf("torn tail: %d records, validLen %d (want 3, %d)", len(records), validLen, prefixLen)
	}

	// Bit flip inside the second record: the valid prefix ends before it.
	flipped := append([]byte(nil), full...)
	lines := bytes.SplitAfter(full, []byte("\n"))
	flipped[len(lines[0])+12] ^= 0x01
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	records, validLen, err = ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || validLen != int64(len(lines[0])) {
		t.Fatalf("corrupt middle: %d records, validLen %d (want 1, %d)", len(records), validLen, len(lines[0]))
	}

	// Continuing after the valid prefix truncates the bad tail.
	w, err = OpenWALAppend(path, validLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte(`{"i":"new"}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	records, _, err = ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || string(records[1]) != `{"i":"new"}` {
		t.Fatalf("after reopen: %q", records)
	}
}

func TestWALRejectsNewlineInRecord(t *testing.T) {
	w, err := CreateWAL(filepath.Join(t.TempDir(), "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]byte("two\nlines")); err == nil {
		t.Fatal("newline in record accepted")
	}
}

func TestReplayWALMissingFileIsEmpty(t *testing.T) {
	records, validLen, err := ReplayWAL(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || len(records) != 0 || validLen != 0 {
		t.Fatalf("missing file: %d records, len %d, err %v", len(records), validLen, err)
	}
}

func BenchmarkCheckpointSnapshot(b *testing.B) {
	dir := b.TempDir()
	// A payload in the ballpark of a real platform snapshot.
	var buf bytes.Buffer
	buf.WriteString(`{"rows":[`)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"i":%d,"x":%g}`, i, float64(i)*1.618033988749895)
	}
	buf.WriteString(`]}`)
	payload := buf.Bytes()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WriteSnapshot(dir, uint64(i+1), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppend(b *testing.B) {
	w, err := CreateWAL(filepath.Join(b.TempDir(), "wal.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := []byte(`{"t":"place","sim_s":1234.5,"name":"matmul","placement":[0,3,5]}`)
	b.SetBytes(int64(len(rec)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
