package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts a background debug HTTP server on addr exposing
//
//	/metrics       — the registry in Prometheus text format
//	/healthz       — liveness probe (always OK without health state)
//	/readyz        — readiness probe (always OK without health state)
//	/debug/vars    — expvar
//	/debug/pprof/  — runtime profiling (net/http/pprof)
//
// It returns the bound address (useful with ":0") or an error if the
// listener cannot be created. The server lives until the process exits;
// batch tools serve while their run is in flight.
func ServeDebug(addr string, reg *Registry) (string, error) {
	return ServeDebugHealth(addr, reg, nil)
}

// ServeDebugHealth is ServeDebug with a health state backing the
// /healthz and /readyz probes — the serving daemon's variant, where
// readiness tracks snapshot load, WAL replay and drain.
func ServeDebugHealth(addr string, reg *Registry, h *Health) (string, error) {
	mux := http.NewServeMux()
	h.Handle(mux)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
