package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestFaultAndDegradedEvents(t *testing.T) {
	var buf bytes.Buffer
	l := NewDecisionLog(&buf)
	l.Fault(&FaultEvent{SimTimeS: 300, Kind: "node-down", Node: 2, DisplacedServices: 3, DisplacedJobs: 1})
	l.Fault(&FaultEvent{SimTimeS: 400, Kind: "slow-set", Node: 1, Factor: 0.5})
	l.Degraded(&DegradedTransition{SimTimeS: 500, Entered: true, Reason: "predictor-unavailable", Fallback: "WorstFit"})
	l.Degraded(&DegradedTransition{SimTimeS: 600, Entered: false, Reason: "predictor-unavailable", Fallback: "WorstFit"})
	if l.Events() != 5 { // schema header + 4 events
		t.Fatalf("events = %d", l.Events())
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for i, line := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i, err, line)
		}
		if int(m["seq"].(float64)) != i {
			t.Fatalf("line %d has seq %v", i, m["seq"])
		}
		// Determinism contract: no wall-clock fields, only sim time.
		for k := range m {
			if strings.Contains(k, "wall") || k == "time" || k == "timestamp" {
				t.Fatalf("wall-clock field %q in event: %s", k, line)
			}
		}
	}
	if !strings.Contains(lines[1], `"event":"fault"`) || !strings.Contains(lines[1], `"displaced_services":3`) {
		t.Fatalf("fault event malformed: %s", lines[1])
	}
	// Factor omitted when zero, present when set.
	if strings.Contains(lines[1], `"factor"`) {
		t.Fatalf("zero factor should be omitted: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"factor":0.5`) {
		t.Fatalf("factor missing: %s", lines[2])
	}
	if !strings.Contains(lines[3], `"entered":true`) || !strings.Contains(lines[4], `"entered":false`) {
		t.Fatalf("degraded transitions malformed:\n%s\n%s", lines[3], lines[4])
	}
}

func TestFaultEventsNilSafe(t *testing.T) {
	var l *DecisionLog
	l.Fault(&FaultEvent{Kind: "node-down"})
	l.Degraded(&DegradedTransition{Entered: true})
	if l.Events() != 0 {
		t.Fatal("nil log must absorb events")
	}
}

func TestFaultEventsByteIdentical(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		l := NewDecisionLog(&buf)
		for i := 0; i < 20; i++ {
			l.Fault(&FaultEvent{SimTimeS: float64(i * 100), Kind: "node-down", Node: i % 8, DisplacedServices: i})
			l.Degraded(&DegradedTransition{SimTimeS: float64(i*100 + 50), Entered: i%2 == 0, Reason: "predictor-untrained", Fallback: "WorstFit"})
		}
		return buf.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("identical fault sequences must serialize byte-identically")
	}
}

func TestPlatformResilienceInstrumentsRegistered(t *testing.T) {
	s := New()
	ins := s.Platform()
	for name, c := range map[string]*Counter{
		"platform_fault_events_total":        ins.FaultEvents,
		"platform_displaced_services_total":  ins.DisplacedServices,
		"platform_displaced_jobs_total":      ins.DisplacedJobs,
		"platform_degraded_placements_total": ins.DegradedPlacements,
		"platform_degraded_steps_total":      ins.DegradedSteps,
		"platform_placement_retries_total":   ins.PlacementRetries,
	} {
		if c == nil {
			t.Fatalf("%s not registered", name)
		}
		c.Inc()
	}
	// Nop sink leaves them nil and nil-safe.
	nop := Nop.Platform()
	nop.FaultEvents.Inc()
	nop.DegradedSteps.Add(3)
}
