package telemetry

import (
	"io"
	"strconv"
	"sync"
)

// DecisionLog writes structured JSONL decision traces: one JSON object
// per line, fields in a fixed order, monotonically increasing sequence
// numbers. Events are built by hand into a reusable buffer under a
// mutex, so steady-state logging allocates nothing and concurrent
// writers never interleave bytes.
//
// Determinism: events carry no wall-clock fields (timings belong to
// histograms), so a fixed-seed run emits a byte-identical log.
//
// The first line of every log is a header event carrying the format
// version ({"event":"header","seq":0,"schema":N}); readers reject
// schemas they do not understand instead of misparsing. The header is
// emitted lazily before the first event so a resumed run — which
// Rewinds to a non-zero offset — never duplicates it.
type DecisionLog struct {
	mu    sync.Mutex
	w     io.Writer
	buf   []byte
	seq   uint64
	bytes int64
	err   error
}

// DecisionLogSchema is the current decision-log format version,
// recorded in the header event. Bump it on any incompatible change to
// event shapes so gsight-inspect can reject logs it cannot read.
const DecisionLogSchema = 1

// NewDecisionLog logs events to w. Callers own w's lifecycle (and any
// buffering/flushing); the log only writes whole lines.
func NewDecisionLog(w io.Writer) *DecisionLog {
	return &DecisionLog{w: w}
}

// Events returns the number of events emitted so far.
func (l *DecisionLog) Events() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Err returns the first write error, if any — decision logging is
// best-effort and never fails the instrumented operation.
func (l *DecisionLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Offset returns the log position — events emitted and bytes written —
// for checkpointing. A resumed run that truncates its log file to the
// byte offset and calls Rewind continues the exact same line sequence.
func (l *DecisionLog) Offset() (seq uint64, bytes int64) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq, l.bytes
}

// Rewind resets the log position to a checkpointed Offset. It adjusts
// only the counters: the caller owns the underlying writer and must
// have truncated it to the matching byte offset.
func (l *DecisionLog) Rewind(seq uint64, bytes int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq = seq
	l.bytes = bytes
	l.mu.Unlock()
}

// emit finishes the line in l.buf and writes it. Callers hold l.mu.
func (l *DecisionLog) emit(b []byte) {
	b = append(b, '}', '\n')
	l.buf = b // retain grown capacity for the next event
	l.seq++
	l.bytes += int64(len(b))
	if _, err := l.w.Write(b); err != nil && l.err == nil {
		l.err = err
	}
}

// begin starts a new event line: {"event":"<kind>","seq":N — emitting
// the schema header first if this log has never written a byte (a
// Rewind to a non-zero offset leaves the on-disk header in place).
// Callers hold l.mu.
func (l *DecisionLog) begin(kind string) []byte {
	if l.seq == 0 && l.bytes == 0 {
		b := l.buf[:0]
		b = append(b, `{"event":"header","seq":0,"schema":`...)
		b = strconv.AppendInt(b, DecisionLogSchema, 10)
		l.emit(b)
	}
	b := l.buf[:0]
	b = append(b, `{"event":`...)
	b = strconv.AppendQuote(b, kind)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, l.seq, 10)
	return b
}

func appendStr(b []byte, key, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendQuote(b, v)
}

func appendInt(b []byte, key string, v int) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, int64(v), 10)
}

func appendFloat(b []byte, key string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendBool(b []byte, key string, v bool) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendBool(b, v)
}

func appendInts(b []byte, key string, vs []int) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':', '[')
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return append(b, ']')
}

// PlacementDecision records one scheduling decision: what was asked,
// how hard the scheduler searched, and what it decided.
type PlacementDecision struct {
	Scheduler string
	Workload  string
	Class     string
	Functions int // functions to place
	Servers   int // cluster size
	// SpreadLevels counts the binary-search iterations (candidate
	// spread levels tried); non-search schedulers report 1.
	SpreadLevels int
	// SLAChecks counts the QoS predictions issued while vetting
	// candidates (batched checks count each query).
	SLAChecks int
	// Outcome is "placed", "fallback" (placed by the full-spread last
	// resort after SLA rejections), "degraded" (placed by the fallback
	// policy after a predictor error), "rejected" or "error".
	Outcome string
	// Reason qualifies non-"placed" outcomes: "sla-violated", "no-fit"
	// or "predictor-error".
	Reason string
	// Placement is the chosen server per function (nil when rejected).
	Placement []int
	// ActiveServers is the cluster's active-server count before the
	// decision — the density denominator the scheduler optimizes.
	ActiveServers int
	// Tier0 marks decisions where the tier-0 scorer pruned the
	// candidate set; the fields below are emitted only then, so logs
	// from runs without pruning stay byte-identical to the legacy
	// format. All values are derived from deterministic scheduler state
	// (never wall clock).
	Tier0 bool
	// Tier0Kept/Tier0Pruned are the finalist and discarded candidate
	// counts for this decision.
	Tier0Kept   int
	Tier0Pruned int
	// Tier0Score is the tier-0 score of the accepted placement's
	// primary server (0 when the request was not placed).
	Tier0Score float64
}

// Placement emits a placement decision event.
func (l *DecisionLog) Placement(e *PlacementDecision) {
	if l == nil {
		return
	}
	l.mu.Lock()
	b := l.begin("placement")
	b = appendStr(b, "scheduler", e.Scheduler)
	b = appendStr(b, "workload", e.Workload)
	b = appendStr(b, "class", e.Class)
	b = appendInt(b, "functions", e.Functions)
	b = appendInt(b, "servers", e.Servers)
	b = appendInt(b, "active_servers", e.ActiveServers)
	b = appendInt(b, "spread_levels", e.SpreadLevels)
	b = appendInt(b, "sla_checks", e.SLAChecks)
	b = appendStr(b, "outcome", e.Outcome)
	if e.Reason != "" {
		b = appendStr(b, "reason", e.Reason)
	}
	if e.Placement != nil {
		b = appendInts(b, "placement", e.Placement)
	}
	if e.Tier0 {
		b = appendInt(b, "tier0_kept", e.Tier0Kept)
		b = appendInt(b, "tier0_pruned", e.Tier0Pruned)
		b = appendFloat(b, "tier0_score", e.Tier0Score)
	}
	l.emit(b)
	l.mu.Unlock()
}

// ExperimentRun records one experiment's outcome in a harness run.
// Events are emitted sequentially in id order after the (possibly
// parallel) runs finish, so the log stays deterministic; durations are
// deliberately absent (wall clock belongs to histograms).
type ExperimentRun struct {
	ID     string
	Status string // "ok", "failed" or "cancelled"
}

// Experiment emits an experiment-outcome event.
func (l *DecisionLog) Experiment(e *ExperimentRun) {
	if l == nil {
		return
	}
	l.mu.Lock()
	b := l.begin("experiment")
	b = appendStr(b, "id", e.ID)
	b = appendStr(b, "status", e.Status)
	l.emit(b)
	l.mu.Unlock()
}

// PredictorUpdate records one predictor training step: the offline
// bootstrap or an incremental window flush.
type PredictorUpdate struct {
	Predictor string
	Kind      string // QoS kind ("ipc", "p99", "jct")
	Phase     string // "train" (bootstrap fit) or "update" (incremental)
	Batch     int    // samples folded in by this step
	// SamplesSeen is the cumulative count after the step — the
	// incremental-update window position.
	SamplesSeen int
}

// PredictorUpdate emits a predictor training event.
func (l *DecisionLog) PredictorUpdate(e *PredictorUpdate) {
	if l == nil {
		return
	}
	l.mu.Lock()
	b := l.begin("predictor_update")
	b = appendStr(b, "predictor", e.Predictor)
	b = appendStr(b, "kind", e.Kind)
	b = appendStr(b, "phase", e.Phase)
	b = appendInt(b, "batch", e.Batch)
	b = appendInt(b, "samples_seen", e.SamplesSeen)
	l.emit(b)
	l.mu.Unlock()
}

// ReactiveAction records one runtime SLA-control action of the
// platform: a corunner eviction or a reactive spread of a violating
// service.
type ReactiveAction struct {
	SimTimeS float64
	Action   string // "evict-corunner" or "spread-service"
	Service  string
	Moved    int // functions/jobs moved
}

// Reactive emits a reactive-control event.
func (l *DecisionLog) Reactive(e *ReactiveAction) {
	if l == nil {
		return
	}
	l.mu.Lock()
	b := l.begin("reactive")
	b = appendFloat(b, "sim_time_s", e.SimTimeS)
	b = appendStr(b, "action", e.Action)
	b = appendStr(b, "service", e.Service)
	b = appendInt(b, "moved", e.Moved)
	l.emit(b)
	l.mu.Unlock()
}

// FaultEvent records one injected fault transition and what the
// platform displaced in response. Times are simulation time only —
// never wall clock — so same-seed faulty runs stay byte-identical.
type FaultEvent struct {
	SimTimeS float64
	Kind     string // "node-down", "node-up", "slow-set", "storm-start", ...
	Node     int    // -1 for cluster-wide faults
	Factor   float64
	// DisplacedServices/DisplacedJobs count the workloads the platform
	// re-placed off a crashed node while handling this transition.
	DisplacedServices int
	DisplacedJobs     int
}

// Fault emits a fault-injection event.
func (l *DecisionLog) Fault(e *FaultEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	b := l.begin("fault")
	b = appendFloat(b, "sim_time_s", e.SimTimeS)
	b = appendStr(b, "kind", e.Kind)
	b = appendInt(b, "node", e.Node)
	if e.Factor != 0 {
		b = appendFloat(b, "factor", e.Factor)
	}
	b = appendInt(b, "displaced_services", e.DisplacedServices)
	b = appendInt(b, "displaced_jobs", e.DisplacedJobs)
	l.emit(b)
	l.mu.Unlock()
}

// DegradedTransition records the platform entering or leaving degraded
// placement mode (predictor unavailable or untrained; placements go to
// the fallback policy).
type DegradedTransition struct {
	SimTimeS float64
	Entered  bool   // true on entry, false on exit
	Reason   string // "predictor-unavailable" or "predictor-untrained"
	Fallback string // the policy serving placements while degraded
}

// DriftEvent records a prediction-quality drift detection: the online
// residual tracker's Page–Hinkley statistic crossed its threshold for
// one archetype (or the overall stream), meaning the predictor's
// recent errors shifted from their running mean. The platform emits it
// so operators — or a future retraining policy — can react.
type DriftEvent struct {
	SimTimeS  float64
	QoS       string  // QoS kind the residuals are for ("ipc", "jct")
	Archetype string  // workload archetype, or "overall"
	Window    int     // rolling-window sample count behind the stats
	MeanErr   float64 // rolling mean signed relative error
	MAPE      float64 // rolling mean absolute percentage error
	PH        float64 // Page–Hinkley statistic at detection
}

// Drift emits a predictor-drift event.
func (l *DecisionLog) Drift(e *DriftEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	b := l.begin("predictor_drift")
	b = appendFloat(b, "sim_time_s", e.SimTimeS)
	b = appendStr(b, "qos", e.QoS)
	b = appendStr(b, "archetype", e.Archetype)
	b = appendInt(b, "window", e.Window)
	b = appendFloat(b, "mean_err", e.MeanErr)
	b = appendFloat(b, "mape", e.MAPE)
	b = appendFloat(b, "ph", e.PH)
	l.emit(b)
	l.mu.Unlock()
}

// Degraded emits a degraded-mode transition event.
func (l *DecisionLog) Degraded(e *DegradedTransition) {
	if l == nil {
		return
	}
	l.mu.Lock()
	b := l.begin("degraded")
	b = appendFloat(b, "sim_time_s", e.SimTimeS)
	b = appendBool(b, "entered", e.Entered)
	b = appendStr(b, "reason", e.Reason)
	b = appendStr(b, "fallback", e.Fallback)
	l.emit(b)
	l.mu.Unlock()
}
