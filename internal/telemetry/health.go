package telemetry

import (
	"net/http"
	"sync"
)

// Health is the process's liveness/readiness state, served as
// /healthz and /readyz by the debug server (and by any other mux via
// Handle). Liveness is true from construction until Down; readiness
// is explicitly toggled by the owner — a serving daemon flips it true
// only once its snapshot is loaded and the WAL replayed, and back to
// false the moment a drain begins, so load balancers stop routing to
// it before it stops accepting.
type Health struct {
	mu          sync.Mutex
	live        bool
	ready       bool
	liveReason  string
	readyReason string
}

// NewHealth returns a live, not-ready health state.
func NewHealth() *Health {
	return &Health{live: true, readyReason: "starting"}
}

// SetReady flips readiness. The reason is reported in the response
// body of a failing probe (ignored when ready is true).
func (h *Health) SetReady(ready bool, reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready, h.readyReason = ready, reason
	h.mu.Unlock()
}

// Down marks the process not-live (a fenced zombie, an unrecoverable
// internal error). Not-live implies not-ready.
func (h *Health) Down(reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.live, h.liveReason = false, reason
	h.ready, h.readyReason = false, reason
	h.mu.Unlock()
}

// Ready reports the current readiness and its reason.
func (h *Health) Ready() (bool, string) {
	if h == nil {
		return true, ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready, h.readyReason
}

// Live reports the current liveness and its reason.
func (h *Health) Live() (bool, string) {
	if h == nil {
		return true, ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.live, h.liveReason
}

// Handle mounts /healthz and /readyz on mux. A nil Health serves
// always-OK probes, so callers without health state still expose the
// endpoints.
func (h *Health) Handle(mux *http.ServeMux) {
	probe := func(check func() (bool, string)) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			ok, reason := check()
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
				if reason == "" {
					reason = "unavailable"
				}
				_, _ = w.Write([]byte(reason + "\n"))
				return
			}
			_, _ = w.Write([]byte("ok\n"))
		}
	}
	mux.Handle("/healthz", probe(h.Live))
	mux.Handle("/readyz", probe(h.Ready))
}
