package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format, in lexical name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.sortedNames() {
		switch m := r.byName[name].(type) {
		case *Counter:
			if err := writeHeader(w, name, m.help, "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if err := writeHeader(w, name, m.help, "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", name, fmtFloat(m.Value())); err != nil {
				return err
			}
		case *Histogram:
			if err := writeHeader(w, name, m.help, "histogram"); err != nil {
				return err
			}
			bounds, cum := m.snapshotBuckets()
			for i, b := range bounds {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, fmtFloat(m.Sum()), name, m.Count()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_min %s\n%s_max %s\n", name, fmtFloat(m.Min()), name, fmtFloat(m.Max())); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// HistogramSnapshot is a histogram's summary in a run report.
// Quantiles are exact while the sample count fits the histogram's
// raw-sample buffer, interpolated otherwise; min and max are always
// exact.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// snapshotQuantiles are the quantiles Snapshot exports, in
// HistogramSnapshot field order.
var snapshotQuantiles = []float64{0.50, 0.95, 0.99, 0.999}

// Snapshot is a point-in-time JSON-friendly view of a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, m := range r.byName {
		switch m := m.(type) {
		case *Counter:
			snap.Counters[name] = m.Value()
		case *Gauge:
			snap.Gauges[name] = m.Value()
		case *Histogram:
			var qbuf [4]float64
			qs := m.Quantiles(snapshotQuantiles, qbuf[:])
			snap.Histograms[name] = HistogramSnapshot{
				Count: m.Count(),
				Sum:   m.Sum(),
				Min:   m.Min(),
				Max:   m.Max(),
				P50:   qs[0],
				P95:   qs[1],
				P99:   qs[2],
				P999:  qs[3],
			}
		}
	}
	return snap
}

// RunReport is the exportable summary of one tool run: what ran, with
// which configuration, the headline results, and the full metrics
// snapshot. Written as indented JSON next to the experiment output.
type RunReport struct {
	Tool           string                 `json:"tool"`
	Config         map[string]interface{} `json:"config,omitempty"`
	Summary        map[string]interface{} `json:"summary,omitempty"`
	DecisionEvents uint64                 `json:"decision_events,omitempty"`
	Metrics        *Snapshot              `json:"metrics,omitempty"`
}

// Report builds a run report from the sink's registry and decision log.
func (s *Sink) Report(tool string, config, summary map[string]interface{}) *RunReport {
	rep := &RunReport{Tool: tool, Config: config, Summary: summary}
	if s != nil {
		rep.Metrics = s.Registry.Snapshot()
		rep.DecisionEvents = s.Decisions.Events()
	}
	return rep
}

// WriteRunReport marshals the report as indented JSON to path.
func WriteRunReport(path string, rep *RunReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
