package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// atomicFloat is a lock-free float64 accumulator (CAS on the bit
// pattern).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram with lock-free observation:
// bucket i counts values in (bounds[i-1], bounds[i]], with an implicit
// +Inf overflow bucket. Buckets are fixed at registration so the hot
// path is a binary search plus three atomic adds — no locks, no
// allocation. Quantiles (p50/p95/p99) are estimated by linear
// interpolation inside the covering bucket.
type Histogram struct {
	name, help string
	bounds     []float64 // strictly increasing upper bounds
	counts     []atomic.Uint64
	count      atomic.Uint64
	sum        atomicFloat
}

// newHistogram builds a histogram; nil/empty bounds get DurationBuckets.
func newHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets()
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		name:   name,
		help:   help,
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value. Safe on a nil receiver and for concurrent
// use; allocates nothing.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Name returns the registered metric name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the covering bucket. The overflow bucket clamps
// to the largest bound; an empty histogram returns 0. The estimate is
// exact to within one bucket's width, which is the resolution contract
// callers pick via the bucket layout.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper edge to
				// interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if lo > hi {
				lo = hi
			}
			return lo + (hi-lo)*((rank-cum)/c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshotBuckets returns the bucket bounds with cumulative counts —
// the Prometheus histogram shape.
func (h *Histogram) snapshotBuckets() (bounds []float64, cumulative []uint64) {
	bounds = h.bounds
	cumulative = make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced upper bounds.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// DurationBuckets spans 1µs to ~17s exponentially — the default layout
// for wall-clock spans (scheduling, inference, model updates).
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 2, 25) }

// CountBuckets spans 1 to 32768 in powers of two — for discrete sizes
// (binary-search iterations, SLA checks per placement, batch sizes).
func CountBuckets() []float64 { return ExpBuckets(1, 2, 16) }

// RatioBuckets spans (0, 1] in 5% steps — for utilization fractions.
func RatioBuckets() []float64 { return LinearBuckets(0.05, 0.05, 20) }
