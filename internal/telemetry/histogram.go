package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// atomicFloat is a lock-free float64 accumulator (CAS on the bit
// pattern).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// rawSampleCap is how many raw observations a histogram retains: while
// the total count is at or below it, quantiles are computed exactly
// from the retained samples instead of by bucket interpolation, so
// short runs report precise tails.
const rawSampleCap = 64

// Histogram is a fixed-bucket histogram with lock-free observation:
// bucket i counts values in (bounds[i-1], bounds[i]], with an implicit
// +Inf overflow bucket. Buckets are fixed at registration so the hot
// path is a binary search plus a handful of atomic updates — no locks,
// no allocation. Quantiles are exact while the sample count fits the
// raw-sample buffer and estimated by linear interpolation inside the
// covering bucket after that; min and max are tracked exactly always.
type Histogram struct {
	name, help string
	bounds     []float64 // strictly increasing upper bounds
	counts     []atomic.Uint64
	count      atomic.Uint64
	sum        atomicFloat
	minBits    atomic.Uint64 // float bits; +Inf while empty
	maxBits    atomic.Uint64 // float bits; -Inf while empty
	raw        [rawSampleCap]atomic.Uint64
}

// newHistogram builds a histogram; nil/empty bounds get DurationBuckets.
func newHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets()
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. Safe on a nil receiver and for concurrent
// use; allocates nothing.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	if n := h.count.Add(1); n <= rawSampleCap {
		h.raw[n-1].Store(math.Float64bits(v))
	}
	h.sum.Add(v)
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Min returns the smallest observed value (0 for nil or empty).
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observed value (0 for nil or empty).
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Name returns the registered metric name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Quantile returns the q-th quantile (0 < q <= 1). While the sample
// count fits the raw buffer the value is exact (nearest-rank on the
// retained samples); beyond that it is estimated by linear
// interpolation within the covering bucket — exact to within one
// bucket's width, which is the resolution contract callers pick via
// the bucket layout. The overflow bucket clamps to the largest bound;
// an empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if total <= rawSampleCap {
		return exactQuantile(h.sortedRaw(int(total)), q)
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper edge to
				// interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if lo > hi {
				lo = hi
			}
			return lo + (hi-lo)*((rank-cum)/c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Quantiles fills out with the quantile for each q in qs — the
// configurable-quantile API behind snapshots (callers pick the list,
// e.g. 0.5/0.95/0.99/0.999). out must be at least len(qs) long; the
// filled prefix is returned. Each quantile follows the same
// exact-then-interpolated contract as Quantile.
func (h *Histogram) Quantiles(qs, out []float64) []float64 {
	out = out[:len(qs)]
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// sortedRaw returns the first n retained raw samples, sorted.
func (h *Histogram) sortedRaw(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(h.raw[i].Load())
	}
	sort.Float64s(out)
	return out
}

// exactQuantile is the nearest-rank quantile of a sorted sample.
func exactQuantile(s []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// snapshotBuckets returns the bucket bounds with cumulative counts —
// the Prometheus histogram shape.
func (h *Histogram) snapshotBuckets() (bounds []float64, cumulative []uint64) {
	bounds = h.bounds
	cumulative = make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced upper bounds.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// DurationBuckets spans 1µs to ~17s exponentially — the default layout
// for wall-clock spans (scheduling, inference, model updates).
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 2, 25) }

// CountBuckets spans 1 to 32768 in powers of two — for discrete sizes
// (binary-search iterations, SLA checks per placement, batch sizes).
func CountBuckets() []float64 { return ExpBuckets(1, 2, 16) }

// RatioBuckets spans (0, 1] in 5% steps — for utilization fractions.
func RatioBuckets() []float64 { return LinearBuckets(0.05, 0.05, 20) }
