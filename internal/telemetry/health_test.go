package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"testing"
)

func probeStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("probe %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestHealthTransitions walks the serving lifecycle the daemon drives:
// starting (live, not ready) → serving (ready) → draining (not ready)
// → fenced (not live).
func TestHealthTransitions(t *testing.T) {
	h := NewHealth()
	reg := NewRegistry()
	addr, err := ServeDebugHealth("127.0.0.1:0", reg, h)
	if err != nil {
		t.Fatal(err)
	}
	base := fmt.Sprintf("http://%s", addr)

	// Starting: live but not ready (snapshot load + WAL replay pending).
	if code, _ := probeStatus(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while starting = %d, want 200", code)
	}
	if code, body := probeStatus(t, base+"/readyz"); code != http.StatusServiceUnavailable || body != "starting\n" {
		t.Fatalf("readyz while starting = %d %q, want 503 starting", code, body)
	}

	// Replay complete: ready flips true.
	h.SetReady(true, "")
	if code, body := probeStatus(t, base+"/readyz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("readyz while serving = %d %q, want 200 ok", code, body)
	}

	// Drain begins: ready flips false again, liveness stays.
	h.SetReady(false, "draining")
	if code, body := probeStatus(t, base+"/readyz"); code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("readyz while draining = %d %q, want 503 draining", code, body)
	}
	if code, _ := probeStatus(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (drain is not death)", code)
	}

	// Fenced: both probes fail.
	h.Down("lease lost")
	if code, body := probeStatus(t, base+"/healthz"); code != http.StatusServiceUnavailable || body != "lease lost\n" {
		t.Fatalf("healthz after Down = %d %q, want 503", code, body)
	}
	if code, _ := probeStatus(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after Down = %d, want 503", code)
	}
}

// TestHealthNilAlwaysOK: binaries without health state keep always-OK
// probes on the legacy ServeDebug path.
func TestHealthNilAlwaysOK(t *testing.T) {
	reg := NewRegistry()
	addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range []string{"/healthz", "/readyz"} {
		if code, body := probeStatus(t, fmt.Sprintf("http://%s%s", addr, ep)); code != http.StatusOK || body != "ok\n" {
			t.Fatalf("%s without health state = %d %q, want 200 ok", ep, code, body)
		}
	}
}
