package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
)

// exactPercentile returns the value at rank ceil(q*n) of the sorted
// sample — the reference the histogram estimate is compared against.
func exactPercentile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Fine linear buckets: the estimate must land within one bucket
	// width of the exact sample percentile.
	const width = 1.0
	h := newHistogram("t", "", LinearBuckets(width, width, 1000))
	rnd := rand.New(rand.NewSource(7))
	var vals []float64
	for i := 0; i < 20000; i++ {
		// Mix of uniform and heavy-tail values inside the bucket range.
		v := rnd.Float64() * 500
		if i%10 == 0 {
			v = 500 + rnd.Float64()*450
		}
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.50, 0.90, 0.95, 0.99} {
		got := h.Quantile(q)
		want := exactPercentile(vals, q)
		if math.Abs(got-want) > width {
			t.Errorf("q=%.2f: got %.3f, exact %.3f (tolerance %.1f)", q, got, want, width)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count = %d", h.Count())
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if math.Abs(h.Sum()-sum) > 1e-6*sum {
		t.Fatalf("sum = %v, want %v", h.Sum(), sum)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := newHistogram("t", "", []float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// Past the raw-sample window, overflow observations interpolate
	// within buckets and the top quantile clamps to the last bound.
	for i := 0; i <= rawSampleCap; i++ {
		h.Observe(100) // overflow
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("overflow quantile should clamp to last bound, got %v", got)
	}
	if h.Min() != 100 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v, want 100/100", h.Min(), h.Max())
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram accessors should be zero")
	}
	if nilH.Min() != 0 || nilH.Max() != 0 {
		t.Fatal("nil histogram min/max should be zero")
	}
}

func TestHistogramExactSmallSamples(t *testing.T) {
	// While the count fits the raw buffer, quantiles are exact — not
	// bucket-interpolated — even with absurdly coarse buckets.
	h := newHistogram("t", "", []float64{1000})
	vals := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 10}
	for _, v := range vals {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("exact p50 = %v, want 5", got)
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("exact p99 = %v, want 10", got)
	}
	if h.Min() != 1 || h.Max() != 10 {
		t.Fatalf("min/max = %v/%v, want 1/10", h.Min(), h.Max())
	}
	var out [4]float64
	qs := h.Quantiles([]float64{0.5, 0.95, 0.99, 0.999}, out[:])
	if qs[0] != 5 || qs[3] != 10 {
		t.Fatalf("Quantiles = %v", qs)
	}
	// Crossing the raw-sample capacity falls back to interpolation
	// without losing count/sum/min/max.
	for i := 0; i < rawSampleCap; i++ {
		h.Observe(0.5)
	}
	if h.Count() != uint64(len(vals)+rawSampleCap) || h.Min() != 0.5 || h.Max() != 10 {
		t.Fatalf("after overflow: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", CountBuckets())
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.SetInt(w)
				h.Observe(float64(i % 64))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Fatalf("counter lost updates: %d != %d", c.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Fatalf("histogram lost updates: %d != %d", h.Count(), workers*each)
	}
	if v := g.Value(); v < 0 || v >= workers {
		t.Fatalf("gauge out of range: %v", v)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.Gauge("x", "")
}

func TestDecisionLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewDecisionLog(&buf)
	l.Placement(&PlacementDecision{
		Scheduler: "Gsight", Workload: "social-network", Class: "LS",
		Functions: 3, Servers: 8, ActiveServers: 2, SpreadLevels: 2,
		SLAChecks: 5, Outcome: "placed", Placement: []int{0, 0, 1},
	})
	l.PredictorUpdate(&PredictorUpdate{Predictor: "Gsight", Kind: "ipc", Phase: "update", Batch: 100, SamplesSeen: 300})
	l.Reactive(&ReactiveAction{SimTimeS: 120, Action: "evict-corunner", Service: "e-commerce", Moved: 2})
	if l.Events() != 4 { // schema header + 3 events
		t.Fatalf("events = %d", l.Events())
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != fmt.Sprintf(`{"event":"header","seq":0,"schema":%d}`, DecisionLogSchema) {
		t.Fatalf("first line is not the schema header: %s", lines[0])
	}
	for i, line := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
		if int(m["seq"].(float64)) != i {
			t.Fatalf("line %d has seq %v", i, m["seq"])
		}
	}
	if !strings.Contains(lines[1], `"placement":[0,0,1]`) {
		t.Fatalf("placement array missing: %s", lines[1])
	}
	// Omitted optional fields stay omitted.
	if strings.Contains(lines[1], `"reason"`) {
		t.Fatalf("empty reason should be omitted: %s", lines[1])
	}
	// The drift event carries the full detector context.
	l.Drift(&DriftEvent{SimTimeS: 900, QoS: "jct", Archetype: "matmul", Window: 64, MeanErr: -0.2, MAPE: 0.35, PH: 2.5})
	if !strings.Contains(buf.String(), `{"event":"predictor_drift","seq":4,"sim_time_s":900,"qos":"jct","archetype":"matmul","window":64,"mean_err":-0.2,"mape":0.35,"ph":2.5}`) {
		t.Fatalf("drift event malformed:\n%s", buf.String())
	}
}

func TestDecisionLogDeterminism(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		l := NewDecisionLog(&buf)
		for i := 0; i < 50; i++ {
			l.Placement(&PlacementDecision{
				Scheduler: "Gsight", Workload: fmt.Sprintf("w%d", i), Class: "SC",
				Functions: i % 4, Servers: 8, SpreadLevels: 1 + i%3,
				Outcome: "placed", Placement: []int{i % 8},
			})
		}
		return buf.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("identical event sequences must serialize byte-identically")
	}
}

func TestDecisionLogConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	l := NewDecisionLog(&buf)
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Placement(&PlacementDecision{Scheduler: "s", Outcome: "placed", Placement: []int{1}})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != workers*each+1 { // +1 for the schema header
		t.Fatalf("lines = %d, want %d", len(lines), workers*each+1)
	}
	seqs := map[int]bool{}
	for _, line := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved write produced invalid JSON: %v", err)
		}
		seqs[int(m["seq"].(float64))] = true
	}
	if len(seqs) != workers*each+1 {
		t.Fatalf("duplicate sequence numbers: %d unique", len(seqs))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "a counter").Add(3)
	r.Gauge("a_gauge", "a gauge").Set(1.5)
	h := r.Histogram("c_hist", "a histogram", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(10) // overflow
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge\na_gauge 1.5\n",
		"# TYPE b_total counter\nb_total 3\n",
		`c_hist_bucket{le="1"} 1`,
		`c_hist_bucket{le="2"} 2`,
		`c_hist_bucket{le="+Inf"} 3`,
		"c_hist_count 3",
		"c_hist_min 0.5",
		"c_hist_max 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Lexical order: a_gauge before b_total before c_hist.
	if !(strings.Index(out, "a_gauge") < strings.Index(out, "b_total") &&
		strings.Index(out, "b_total") < strings.Index(out, "c_hist")) {
		t.Fatalf("metrics not in lexical order:\n%s", out)
	}
}

func TestSnapshotAndReport(t *testing.T) {
	s := New().WithDecisions(io.Discard)
	ins := s.Scheduler("Gsight")
	ins.Placements.Add(5)
	ins.PlaceSeconds.Observe(0.001)
	ins.Decisions.Placement(&PlacementDecision{Scheduler: "Gsight", Outcome: "placed"})
	rep := s.Report("test-tool", map[string]interface{}{"seed": 42}, map[string]interface{}{"ok": true})
	if rep.Tool != "test-tool" || rep.DecisionEvents != 2 { // header + placement
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.Metrics.Counters["sched_gsight_placements_total"] != 5 {
		t.Fatalf("snapshot missing counter: %+v", rep.Metrics.Counters)
	}
	hs, ok := rep.Metrics.Histograms["sched_gsight_place_seconds"]
	if !ok || hs.Count != 1 {
		t.Fatalf("snapshot missing histogram: %+v", rep.Metrics.Histograms)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not marshalable: %v", err)
	}
}

func TestNopSinkIsFullyDisabled(t *testing.T) {
	ins := Nop.Scheduler("x")
	ins.Placements.Inc()
	ins.PlaceSeconds.Observe(1)
	ins.Decisions.Placement(&PlacementDecision{})
	span := StartSpan(ins.PlaceSeconds)
	span.End()
	pi := Nop.Predictor()
	if pi.Enabled() {
		t.Fatal("Nop predictor instruments must be disabled")
	}
	if Nop.Report("t", nil, nil).DecisionEvents != 0 {
		t.Fatal("Nop report should be empty")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Snapshot() == nil {
		t.Fatal("nil registry must hand out nil instruments and empty snapshots")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil registry must export nothing")
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("up", "").Inc()
	addr, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up 1") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: code %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code %d", code)
	}
}

func TestDecisionLogOffsetAndRewind(t *testing.T) {
	var buf bytes.Buffer
	l := NewDecisionLog(&buf)
	emit := func(n int) {
		for i := 0; i < n; i++ {
			l.Reactive(&ReactiveAction{SimTimeS: float64(i), Action: "evict-corunner", Service: "svc", Moved: 1})
		}
	}
	emit(3)
	seq, bytesAt := l.Offset()
	if seq != 4 || bytesAt != int64(buf.Len()) { // header + 3 events
		t.Fatalf("offset = (%d, %d), want (4, %d)", seq, bytesAt, buf.Len())
	}
	prefix := append([]byte(nil), buf.Bytes()...)
	emit(2)

	// A resumed run truncates its log to the checkpointed offset,
	// rewinds, and re-emits: the bytes must line up exactly.
	var buf2 bytes.Buffer
	buf2.Write(prefix)
	l2 := NewDecisionLog(&buf2)
	l2.Rewind(seq, bytesAt)
	for i := 0; i < 2; i++ {
		l2.Reactive(&ReactiveAction{SimTimeS: float64(i), Action: "evict-corunner", Service: "svc", Moved: 1})
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("rewound log diverged:\n%q\n%q", buf.Bytes(), buf2.Bytes())
	}
	if s2, b2 := l2.Offset(); s2 != 6 || b2 != int64(buf2.Len()) {
		t.Fatalf("post-rewind offset = (%d, %d)", s2, b2)
	}
	// A rewind to a non-zero offset must not re-emit the header; only
	// a log rewound to zero (file truncated empty) writes it again.
	if strings.Count(buf2.String(), `"event":"header"`) != 1 {
		t.Fatalf("resumed log duplicated the header:\n%s", buf2.String())
	}
	// Nil log is inert.
	var nilLog *DecisionLog
	if s, b := nilLog.Offset(); s != 0 || b != 0 {
		t.Fatal("nil Offset not zero")
	}
	nilLog.Rewind(1, 1)
}
