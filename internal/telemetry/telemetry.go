// Package telemetry is the repository's observability subsystem: a
// zero-dependency, allocation-conscious metrics registry (atomic
// counters, gauges and fixed-bucket latency histograms), lightweight
// spans, a structured JSONL decision log, and exporters (Prometheus
// text format, JSON run reports, and an optional pprof/expvar debug
// server).
//
// Design contract — alloc-neutrality. Every hot-path operation
// (Counter.Add, Gauge.Set, Histogram.Observe, Span.End, the decision
// log's typed emit methods) is lock-free or amortized-alloc-free, and
// every instrument is nil-safe: a nil *Counter, *Gauge, *Histogram,
// *DecisionLog or *Sink turns the operation into a predictable branch
// and nothing else. Uninstrumented components therefore behave — in
// results, allocations and (to within a branch) time — exactly like
// they did before instrumentation existed. telemetry.Nop is the
// canonical disabled sink.
//
// Design contract — determinism. Decision-log events carry only
// deterministic fields (sequence numbers, simulation time, candidate
// counts, verdicts, placements); wall-clock timings live exclusively in
// histograms. A fixed-seed run therefore replays its decision log
// byte-identically, while timing distributions remain observable
// through the metrics registry.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-ops), making disabled telemetry free.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered metric name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an atomically settable float64. Safe on a nil receiver.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(n int) { g.Set(float64(n)) }

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the registered metric name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Span measures one timed section into a histogram. It is a value type:
// starting and ending a span allocates nothing, and a span over a nil
// histogram never reads the clock.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing into h. A nil histogram yields a no-op span.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed seconds. Safe to call on the zero Span.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.start).Seconds())
	}
}

// Registry is a named collection of instruments. Registration
// (Counter/Gauge/Histogram) takes a mutex and is meant for startup;
// updates through the returned instruments are lock-free. A nil
// *Registry hands out nil instruments, so a disabled registry costs
// nothing at runtime.
type Registry struct {
	mu     sync.Mutex
	byName map[string]interface{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]interface{}{}}
}

// Counter returns the counter registered under name, creating it on
// first use. Registering the same name as a different instrument type
// panics: metric names are a startup-time contract.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.byName[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.byName[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (see NewHistogram).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
		}
		return h
	}
	h := newHistogram(name, help, bounds)
	r.byName[name] = h
	return h
}

// sortedNames returns the registered metric names in lexical order —
// the deterministic export order.
func (r *Registry) sortedNames() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
