package telemetry

import "io"

// Sink bundles a metrics registry with an optional decision log — the
// single handle components are instrumented with. The nil sink (Nop)
// yields all-nil instruments, so uninstrumented use stays bit-identical
// and alloc-neutral; tests pin that contract.
type Sink struct {
	Registry  *Registry
	Decisions *DecisionLog
}

// Nop is the disabled sink: instrumenting a component with Nop is
// exactly equivalent to not instrumenting it at all.
var Nop *Sink

// New returns a live sink with a fresh registry and no decision log.
func New() *Sink { return &Sink{Registry: NewRegistry()} }

// WithDecisions attaches a JSONL decision log writing to w and returns
// the sink for chaining. The caller owns w (buffering, flushing,
// closing).
func (s *Sink) WithDecisions(w io.Writer) *Sink {
	s.Decisions = NewDecisionLog(w)
	return s
}

// reg returns the registry (nil for Nop).
func (s *Sink) reg() *Registry {
	if s == nil {
		return nil
	}
	return s.Registry
}

// dec returns the decision log (nil for Nop or when unattached).
func (s *Sink) dec() *DecisionLog {
	if s == nil {
		return nil
	}
	return s.Decisions
}

// sanitize lowercases a component name into a metric-name segment.
func sanitize(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out[i] = c + ('a' - 'A')
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// SchedulerInstruments is the scheduler's pre-registered instrument
// set. The zero value (from Nop) disables everything.
type SchedulerInstruments struct {
	Placements       *Counter   // placement requests handled
	Failures         *Counter   // requests that returned an error
	SLARejections    *Counter   // candidate placements rejected by SLA checks
	Fallbacks        *Counter   // placements by the full-spread last resort
	SearchIterations *Histogram // binary-search spread levels tried per request
	SLAChecks        *Histogram // QoS predictions issued per request
	PlaceSeconds     *Histogram // wall-clock per Place call
	Decisions        *DecisionLog
}

// Scheduler registers (or re-resolves) the instrument set for the named
// scheduler. Metric names are prefixed sched_<name>_.
func (s *Sink) Scheduler(name string) SchedulerInstruments {
	r := s.reg()
	p := "sched_" + sanitize(name) + "_"
	return SchedulerInstruments{
		Placements:       r.Counter(p+"placements_total", "placement requests handled"),
		Failures:         r.Counter(p+"failures_total", "placement requests that returned an error"),
		SLARejections:    r.Counter(p+"sla_rejections_total", "candidate placements rejected by SLA checks"),
		Fallbacks:        r.Counter(p+"fallbacks_total", "placements accepted by the full-spread last resort"),
		SearchIterations: r.Histogram(p+"search_iterations", "binary-search spread levels tried per request", CountBuckets()),
		SLAChecks:        r.Histogram(p+"sla_checks", "QoS predictions issued per request", CountBuckets()),
		PlaceSeconds:     r.Histogram(p+"place_seconds", "wall-clock seconds per Place call", DurationBuckets()),
		Decisions:        s.dec(),
	}
}

// Tier0Instruments counts the two-tier scheduler's candidate pruning.
// It is registered separately from SchedulerInstruments — only when a
// scheduler actually has tier-0 pruning configured — so runs without
// pruning keep a byte-identical metrics snapshot in their reports.
type Tier0Instruments struct {
	Kept   *Counter // finalist candidates passed to full prediction
	Pruned *Counter // candidates discarded by the tier-0 score
}

// SchedulerTier0 registers (or re-resolves) the tier-0 pruning counters
// for the named scheduler.
func (s *Sink) SchedulerTier0(name string) Tier0Instruments {
	r := s.reg()
	p := "sched_" + sanitize(name) + "_"
	return Tier0Instruments{
		Kept:   r.Counter(p+"tier0_kept_total", "candidate servers kept by tier-0 pruning"),
		Pruned: r.Counter(p+"tier0_pruned_total", "candidate servers pruned by the tier-0 score"),
	}
}

// PredictorInstruments instruments the QoS predictor's hot paths.
type PredictorInstruments struct {
	Predicts      *Counter   // single-query predictions served
	Batches       *Counter   // batched prediction calls served
	BatchQueries  *Counter   // queries served through the batch path
	EncodeSeconds *Histogram // interference-code encoding time
	InferSeconds  *Histogram // model inference time
	BatchSize     *Histogram // queries per batch call
	Observations  *Counter   // online observations absorbed
	Updates       *Counter   // incremental model updates applied
	UpdateSeconds *Histogram // wall-clock per train/update step
	PendingWindow *Gauge     // observations buffered toward the next update
	SamplesSeen   *Gauge     // cumulative samples folded into the model
	Decisions     *DecisionLog
}

// Enabled reports whether the instrument set is live — the hot path's
// single check before reading the clock.
func (i *PredictorInstruments) Enabled() bool { return i.Predicts != nil }

// Predictor registers the predictor instrument set (predictor_*).
func (s *Sink) Predictor() PredictorInstruments {
	r := s.reg()
	return PredictorInstruments{
		Predicts:      r.Counter("predictor_predicts_total", "single-query predictions served"),
		Batches:       r.Counter("predictor_batches_total", "batched prediction calls served"),
		BatchQueries:  r.Counter("predictor_batch_queries_total", "queries served through the batch path"),
		EncodeSeconds: r.Histogram("predictor_encode_seconds", "interference-code encoding seconds", DurationBuckets()),
		InferSeconds:  r.Histogram("predictor_infer_seconds", "model inference seconds", DurationBuckets()),
		BatchSize:     r.Histogram("predictor_batch_size", "queries per batched prediction call", CountBuckets()),
		Observations:  r.Counter("predictor_observations_total", "online observations absorbed"),
		Updates:       r.Counter("predictor_updates_total", "incremental model updates applied"),
		UpdateSeconds: r.Histogram("predictor_update_seconds", "seconds per train/update step", DurationBuckets()),
		PendingWindow: r.Gauge("predictor_pending_window", "observations buffered toward the next update"),
		SamplesSeen:   r.Gauge("predictor_samples_seen", "cumulative samples folded into the model"),
		Decisions:     s.dec(),
	}
}

// ForestInstruments instruments the IRFR substrate (fit, incremental
// update, pruning, window occupancy).
type ForestInstruments struct {
	Fits          *Counter
	Updates       *Counter
	TreesGrown    *Counter
	TreesPruned   *Counter
	FitSeconds    *Histogram
	UpdateSeconds *Histogram
	WindowSize    *Gauge // samples retained in the incremental window
}

// Forest registers the ml-layer instrument set (ml_forest_*). All
// instrumented forests (one per QoS kind) share it; counters aggregate.
func (s *Sink) Forest() ForestInstruments {
	r := s.reg()
	return ForestInstruments{
		Fits:          r.Counter("ml_forest_fits_total", "full forest fits"),
		Updates:       r.Counter("ml_forest_updates_total", "incremental forest updates"),
		TreesGrown:    r.Counter("ml_forest_trees_grown_total", "trees grown"),
		TreesPruned:   r.Counter("ml_forest_trees_pruned_total", "trees pruned after updates"),
		FitSeconds:    r.Histogram("ml_forest_fit_seconds", "seconds per full fit", DurationBuckets()),
		UpdateSeconds: r.Histogram("ml_forest_update_seconds", "seconds per incremental update", DurationBuckets()),
		WindowSize:    r.Gauge("ml_forest_window_size", "samples retained in the incremental window"),
	}
}

// SimInstruments instruments the discrete-event engine's queue.
type SimInstruments struct {
	Scheduled  *Counter // events pushed onto the queue
	Executed   *Counter // events executed
	QueueDepth *Gauge   // pending events after the last operation
}

// Sim registers the event-engine instrument set (sim_*).
func (s *Sink) Sim() SimInstruments {
	r := s.reg()
	return SimInstruments{
		Scheduled:  r.Counter("sim_events_scheduled_total", "events pushed onto the queue"),
		Executed:   r.Counter("sim_events_executed_total", "events executed"),
		QueueDepth: r.Gauge("sim_queue_depth", "pending events"),
	}
}

// PlatformInstruments instruments the platform step loop.
type PlatformInstruments struct {
	Steps         *Counter
	StepSeconds   *Histogram
	SLAViolations *Counter // service-steps outside their SLA
	Migrations    *Counter
	Reschedules   *Counter
	ColdStarts    *Counter
	RejectedJobs  *Counter
	ActiveServers *Gauge
	// Resilience counters (fault injection and graceful degradation).
	FaultEvents        *Counter // injected fault transitions applied
	DisplacedServices  *Counter // services re-placed off crashed nodes
	DisplacedJobs      *Counter // batch jobs moved off crashed nodes
	DegradedPlacements *Counter // placements served by the fallback policy
	DegradedSteps      *Counter // steps spent in degraded mode
	PlacementRetries   *Counter // placement attempts retried after transient errors
	// Checkpointing (crash recovery).
	Checkpoints       *Counter   // snapshots written
	CheckpointSeconds *Histogram // wall-clock seconds per snapshot write
	WALRecords        *Counter   // write-ahead-log records appended
	Resumes           *Counter   // runs resumed from a checkpoint
	Decisions         *DecisionLog
}

// Platform registers the platform instrument set (platform_*).
func (s *Sink) Platform() PlatformInstruments {
	r := s.reg()
	return PlatformInstruments{
		Steps:              r.Counter("platform_steps_total", "simulation steps executed"),
		StepSeconds:        r.Histogram("platform_step_seconds", "wall-clock seconds per simulation step", DurationBuckets()),
		SLAViolations:      r.Counter("platform_sla_violation_steps_total", "service-steps with measured p99 over SLA"),
		Migrations:         r.Counter("platform_migrations_total", "reactive migrations"),
		Reschedules:        r.Counter("platform_reschedules_total", "scale-out placement changes"),
		ColdStarts:         r.Counter("platform_cold_starts_total", "instances cold-started"),
		RejectedJobs:       r.Counter("platform_rejected_jobs_total", "batch jobs rejected"),
		ActiveServers:      r.Gauge("platform_active_servers", "servers with any load after the last step"),
		FaultEvents:        r.Counter("platform_fault_events_total", "injected fault transitions applied"),
		DisplacedServices:  r.Counter("platform_displaced_services_total", "services re-placed off crashed nodes"),
		DisplacedJobs:      r.Counter("platform_displaced_jobs_total", "batch jobs moved off crashed nodes"),
		DegradedPlacements: r.Counter("platform_degraded_placements_total", "placements served by the fallback policy"),
		DegradedSteps:      r.Counter("platform_degraded_steps_total", "steps spent in degraded mode"),
		PlacementRetries:   r.Counter("platform_placement_retries_total", "placement attempts retried after transient errors"),
		Checkpoints:        r.Counter("platform_checkpoints_total", "controller snapshots written"),
		CheckpointSeconds:  r.Histogram("platform_checkpoint_seconds", "wall-clock seconds per snapshot write", DurationBuckets()),
		WALRecords:         r.Counter("platform_wal_records_total", "write-ahead-log records appended"),
		Resumes:            r.Counter("platform_resumes_total", "runs resumed from a checkpoint"),
		Decisions:          s.dec(),
	}
}

// PoolInstruments instruments the experiments worker pool: how many
// replicas ran and how well the pool's workers were utilized.
type PoolInstruments struct {
	Runs        *Counter   // fan-out invocations
	Tasks       *Counter   // replica tasks executed
	Workers     *Gauge     // workers of the last fan-out
	TaskSeconds *Histogram // wall-clock per replica task
	Utilization *Histogram // busy-time / (workers x wall) per fan-out
}

// Pool registers the worker-pool instrument set (experiments_pool_*).
func (s *Sink) Pool() PoolInstruments {
	r := s.reg()
	return PoolInstruments{
		Runs:        r.Counter("experiments_pool_runs_total", "worker-pool fan-out invocations"),
		Tasks:       r.Counter("experiments_pool_tasks_total", "replica tasks executed"),
		Workers:     r.Gauge("experiments_pool_workers", "workers of the last fan-out"),
		TaskSeconds: r.Histogram("experiments_pool_task_seconds", "wall-clock seconds per replica task", DurationBuckets()),
		Utilization: r.Histogram("experiments_pool_utilization", "per-replica worker-pool utilization", RatioBuckets()),
	}
}
