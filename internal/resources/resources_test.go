package resources

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		CPU: "cpu", Memory: "memory", LLC: "llc",
		MemBW: "membw", Network: "network", Disk: "disk",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("invalid kind String = %q", got)
	}
}

func TestKinds(t *testing.T) {
	ks := Kinds()
	if len(ks) != int(NumKinds) {
		t.Fatalf("Kinds() length = %d, want %d", len(ks), NumKinds)
	}
	for i, k := range ks {
		if int(k) != i {
			t.Fatalf("Kinds()[%d] = %v", i, k)
		}
	}
}

func TestVectorArithmetic(t *testing.T) {
	v := Vector{1, 2, 3, 4, 5, 6}
	w := Vector{6, 5, 4, 3, 2, 1}
	sum := v.Add(w)
	for i := range sum {
		if sum[i] != 7 {
			t.Fatalf("Add[%d] = %v", i, sum[i])
		}
	}
	diff := v.Sub(w)
	want := Vector{-5, -3, -1, 1, 3, 5}
	if diff != want {
		t.Fatalf("Sub = %v", diff)
	}
	if got := v.Scale(2); got != (Vector{2, 4, 6, 8, 10, 12}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Mul(w); got != (Vector{6, 10, 12, 12, 10, 6}) {
		t.Fatalf("Mul = %v", got)
	}
}

func TestVectorDivZeroSafe(t *testing.T) {
	v := Vector{10, 10, 10, 10, 10, 10}
	w := Vector{2, 0, 5, 0, 10, 1}
	got := v.Div(w)
	want := Vector{5, 0, 2, 0, 1, 10}
	if got != want {
		t.Fatalf("Div = %v, want %v", got, want)
	}
}

func TestVectorPredicates(t *testing.T) {
	var zero Vector
	if !zero.IsZero() {
		t.Fatal("zero vector should be zero")
	}
	v := Vector{1, 0, 0, 0, 0, 0}
	if v.IsZero() {
		t.Fatal("non-zero vector reported zero")
	}
	if !v.Fits(Vector{1, 1, 1, 1, 1, 1}) {
		t.Fatal("Fits false negative")
	}
	if v.Fits(Vector{0.5, 1, 1, 1, 1, 1}) {
		t.Fatal("Fits false positive")
	}
	if got := (Vector{-1, 2, -3, 0, 0, 0}).Clamped(); got != (Vector{0, 2, 0, 0, 0, 0}) {
		t.Fatalf("Clamped = %v", got)
	}
	if got := (Vector{1, 2, 3, 9, 5, 6}).MaxElem(); got != 9 {
		t.Fatalf("MaxElem = %v", got)
	}
	if got := (Vector{1, 2, 3, 4, 5, 6}).Sum(); got != 21 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestVectorAddSubInverseProperty(t *testing.T) {
	if err := quick.Check(func(a, b [6]float64) bool {
		v, w := Vector(a), Vector(b)
		got := v.Add(w).Sub(w)
		for i := range got {
			d := got[i] - v[i]
			if d > 1e-9 || d < -1e-9 {
				// allow NaN/Inf fuzz inputs to pass through
				if v[i] != v[i] || w[i] != w[i] {
					return true
				}
				abs := v[i]
				if abs < 0 {
					abs = -abs
				}
				if abs > 1e15 {
					return true // float cancellation on huge inputs
				}
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultTestbedMatchesTable4(t *testing.T) {
	tb := DefaultTestbed()
	if tb.NumServers() != 8 {
		t.Fatalf("testbed nodes = %d, want 8 (Table 4)", tb.NumServers())
	}
	s := tb.Servers[0]
	if s.Capacity[CPU] != 40 {
		t.Errorf("cores = %v, want 40", s.Capacity[CPU])
	}
	if s.Capacity[Memory] != 256 {
		t.Errorf("memory = %v GB, want 256", s.Capacity[Memory])
	}
	if s.Capacity[LLC] != 25 {
		t.Errorf("LLC = %v MB, want 25", s.Capacity[LLC])
	}
	if s.Sockets != 4 {
		t.Errorf("sockets = %d, want 4", s.Sockets)
	}
	if s.BaseFreqGHz != 2.0 {
		t.Errorf("base freq = %v, want 2.0", s.BaseFreqGHz)
	}
}

func TestTotalCapacity(t *testing.T) {
	tb := NewTestbed(3)
	total := tb.TotalCapacity()
	if total[CPU] != 120 {
		t.Fatalf("total CPU = %v, want 120", total[CPU])
	}
	if total[Memory] != 768 {
		t.Fatalf("total memory = %v, want 768", total[Memory])
	}
}

func TestVectorString(t *testing.T) {
	s := Vector{1, 2, 3, 4, 5, 6}.String()
	if s == "" || s[0] != '{' {
		t.Fatalf("String() = %q", s)
	}
}
