// Package resources defines the shared hardware resources over which
// colocated serverless functions interfere, the demand/capacity vectors
// used by the contention model, and the testbed configuration of the
// paper's Table 4 (8 nodes, 40-core Xeon E7-4820v4, 256 GB RAM, 25 MB
// shared LLC, 960 GB SSD).
package resources

import (
	"fmt"
	"strings"
)

// Kind identifies one contended hardware resource.
type Kind int

// The six resource dimensions of the system layer (§3.2): CPU cores,
// memory capacity, last-level cache, memory bandwidth, network
// bandwidth, and disk I/O.
const (
	CPU Kind = iota
	Memory
	LLC
	MemBW
	Network
	Disk
	NumKinds // number of resource kinds; keep last
)

var kindNames = [NumKinds]string{
	CPU:     "cpu",
	Memory:  "memory",
	LLC:     "llc",
	MemBW:   "membw",
	Network: "network",
	Disk:    "disk",
}

// String returns the lowercase name of the resource kind.
func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds returns all resource kinds in order.
func Kinds() []Kind {
	ks := make([]Kind, NumKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Vector holds one value per resource kind. Units by convention:
// CPU in cores, Memory in GB, LLC in MB of working set / occupancy,
// MemBW in GB/s, Network in Gb/s, Disk in MB/s.
type Vector [NumKinds]float64

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// Scale returns v scaled by f.
func (v Vector) Scale(f float64) Vector {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Mul returns the element-wise product of v and w.
func (v Vector) Mul(w Vector) Vector {
	for i := range v {
		v[i] *= w[i]
	}
	return v
}

// Div returns the element-wise quotient v/w; entries where w is zero
// yield zero rather than infinity, which is the right behaviour for
// "utilization of an absent resource".
func (v Vector) Div(w Vector) Vector {
	for i := range v {
		if w[i] == 0 {
			v[i] = 0
		} else {
			v[i] /= w[i]
		}
	}
	return v
}

// MaxElem returns the largest element of v.
func (v Vector) MaxElem() float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of all elements of v.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Fits reports whether v <= w element-wise.
func (v Vector) Fits(w Vector) bool {
	for i := range v {
		if v[i] > w[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every element of v is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Clamped returns v with negative entries replaced by zero.
func (v Vector) Clamped() Vector {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
	}
	return v
}

// String renders the vector with kind labels, for logs and CLIs.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%.3g", Kind(i), x)
	}
	b.WriteByte('}')
	return b.String()
}

// ServerSpec describes one physical server of the cluster.
type ServerSpec struct {
	Name     string
	Capacity Vector
	// Sockets is the number of CPU sockets; moving a corunner to
	// another socket (Observation 5's "local control") removes LLC and
	// memory-bandwidth contention between them.
	Sockets int
	// BaseFreqGHz is the nominal core frequency, used to synthesize the
	// "CPU frequency" metric of Table 3.
	BaseFreqGHz float64
}

// Testbed describes the simulated cluster.
type Testbed struct {
	Servers []ServerSpec
}

// NumServers returns the number of servers in the testbed.
func (t *Testbed) NumServers() int { return len(t.Servers) }

// TotalCapacity returns the sum of all server capacities.
func (t *Testbed) TotalCapacity() Vector {
	var total Vector
	for _, s := range t.Servers {
		total = total.Add(s.Capacity)
	}
	return total
}

// DefaultServerSpec returns the per-node configuration of Table 4:
// Intel Xeon E7-4820v4 (40 physical cores over 4 sockets, 2.0 GHz),
// 256 GB memory, 25 MB shared LLC, 960 GB SSD. Memory bandwidth,
// network and disk throughput are calibrated to that platform class
// (~68 GB/s aggregate DDR4, 10 Gb/s NIC, ~500 MB/s SATA SSD).
func DefaultServerSpec(name string) ServerSpec {
	return ServerSpec{
		Name: name,
		Capacity: Vector{
			CPU:     40,  // physical cores
			Memory:  256, // GB
			LLC:     25,  // MB shared L3
			MemBW:   68,  // GB/s
			Network: 10,  // Gb/s
			Disk:    500, // MB/s
		},
		Sockets:     4,
		BaseFreqGHz: 2.0,
	}
}

// DefaultTestbed returns the 8-node cluster of Table 4.
func DefaultTestbed() *Testbed {
	t := &Testbed{Servers: make([]ServerSpec, 8)}
	for i := range t.Servers {
		t.Servers[i] = DefaultServerSpec(fmt.Sprintf("node%d", i))
	}
	return t
}

// NewTestbed returns a cluster of n default nodes; useful for scaled
// experiments and tests.
func NewTestbed(n int) *Testbed {
	t := &Testbed{Servers: make([]ServerSpec, n)}
	for i := range t.Servers {
		t.Servers[i] = DefaultServerSpec(fmt.Sprintf("node%d", i))
	}
	return t
}
