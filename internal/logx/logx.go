// Package logx is the small leveled logger shared by the cmd binaries.
// Progress and diagnostics go to stderr so the reports the tools print
// on stdout stay pipeable; -v and -quiet map onto the Debug and Quiet
// levels. Fatalf exits with status 1 — the binaries' one error code.
package logx

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Level filters log output.
type Level int

const (
	// Quiet suppresses everything but errors.
	Quiet Level = iota
	// Info shows progress messages (the default).
	Info
	// Debug additionally shows detailed diagnostics (-v).
	Debug
)

// LevelFor maps the conventional -v/-quiet flag pair to a level; -quiet
// wins when both are set.
func LevelFor(verbose, quiet bool) Level {
	switch {
	case quiet:
		return Quiet
	case verbose:
		return Debug
	}
	return Info
}

// Logger writes leveled, line-oriented messages. Safe for concurrent
// use.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	lvl Level
}

// New returns a logger writing to w at the given level.
func New(w io.Writer, lvl Level) *Logger { return &Logger{w: w, lvl: lvl} }

// Default returns the conventional cmd logger: stderr at LevelFor's
// level.
func Default(verbose, quiet bool) *Logger {
	return New(os.Stderr, LevelFor(verbose, quiet))
}

// Level returns the logger's level.
func (l *Logger) Level() Level { return l.lvl }

func (l *Logger) printf(format string, args ...interface{}) {
	l.mu.Lock()
	fmt.Fprintf(l.w, format+"\n", args...)
	l.mu.Unlock()
}

// Infof logs a progress message (Info and Debug levels).
func (l *Logger) Infof(format string, args ...interface{}) {
	if l.lvl >= Info {
		l.printf(format, args...)
	}
}

// Debugf logs a diagnostic message (Debug level only).
func (l *Logger) Debugf(format string, args ...interface{}) {
	if l.lvl >= Debug {
		l.printf(format, args...)
	}
}

// Errorf logs an error unconditionally, prefixed "error: ".
func (l *Logger) Errorf(format string, args ...interface{}) {
	l.printf("error: "+format, args...)
}

// Fatalf logs the error and exits with status 1.
func (l *Logger) Fatalf(format string, args ...interface{}) {
	l.Errorf(format, args...)
	os.Exit(1)
}
