package sched

import (
	"errors"
	"fmt"
	"math"

	"gsight/internal/core"
	"gsight/internal/resources"
	"gsight/internal/sortx"
	"gsight/internal/telemetry"
	"gsight/internal/workload"
)

// SLA is a workload's quality-of-service contract for admission. The
// scheduler checks IPC floors (transformed from latency targets via the
// Figure 7 curve, §6.3) because the IPC model predicts more accurately
// than the tail-latency model.
type SLA struct {
	// MinIPC is the IPC floor; 0 means no requirement (BG jobs).
	MinIPC float64
	// MaxJCTFactor bounds an SC job's predicted JCT relative to its
	// solo duration; 0 means no requirement.
	MaxJCTFactor float64
}

// Request asks for a placement of a workload's functions.
type Request struct {
	// Input describes the workload (profiles, class, load); its
	// Placement field is ignored and replaced by the scheduler.
	Input core.WorkloadInput
	SLA   SLA
	// SoloDurationS supports the JCT SLA check for SC jobs.
	SoloDurationS float64
	// Detail, when non-nil, is filled by the scheduler with how the
	// decision went — the observability layer points it at a reusable
	// struct to get candidate-search context into the lifecycle trace.
	// Leaving it nil (the default) costs nothing.
	Detail *PlacementDetail
}

// PlacementDetail is a scheduler's account of one decision, written
// through Request.Detail: the search effort, the outcome, and the
// predictions that vetted the accepted candidate.
type PlacementDetail struct {
	Outcome      string // "placed", "fallback", "degraded", "rejected", "error"
	Reason       string // qualifies non-"placed" outcomes
	SpreadLevels int    // candidate spread levels tried
	SLAChecks    int    // QoS predictions issued vetting candidates
	// PredIPC/PredJCTS are the predictor's estimates for the accepted
	// candidate's own workload; 0 when the decision was not vetted by
	// a prediction (non-"placed" outcomes, no-SLA requests, or
	// capacity-only schedulers).
	PredIPC  float64
	PredJCTS float64
}

// Deployed is a running workload the scheduler must not regress.
type Deployed struct {
	Input core.WorkloadInput
	SLA   SLA
}

// State is the scheduler's view of the cluster. Its exported fields
// remain directly addressable (tests and the platform's recovery path
// build and patch states by hand), so the O(1) bookkeeping below is
// opt-in: Recount() snapshots the counts and keeps them maintained
// through the mutating methods. A state whose fields were mutated
// directly must call Recount() again before the cached counts are
// trusted — states that never opt in keep the legacy scan behavior.
type State struct {
	// Caps[s] is server s's capacity.
	Caps []resources.Vector
	// Used[s] is server s's currently allocated resources.
	Used []resources.Vector
	// Running workloads with their placements and SLAs.
	Running []Deployed
	// Offline[s] excludes server s from placement (crashed or
	// cordoned); nil means every server is schedulable.
	Offline []bool

	// counted enables the cached bookkeeping: online/active server
	// counts (OnlineServers and ActiveServers are called per placement
	// and would otherwise scan all servers — ruinous at 10k) and the
	// name→index map that spares Release its linear scan over Running.
	counted bool
	online  int
	active  int
	// nameIdx maps a workload name to its first index in Running,
	// matching Release's first-match semantics when names repeat.
	nameIdx map[string]int
}

// Recount rebuilds the cached online/active counts and the
// name→index map from the current field values and enables their
// maintenance through SetOffline/Commit/Release. Call it after
// mutating Used, Running or Offline directly (checkpoint restore,
// state refresh); Caps may always be patched in place.
func (st *State) Recount() {
	st.online = 0
	for s := range st.Caps {
		if st.Offline == nil || !st.Offline[s] {
			st.online++
		}
	}
	st.active = 0
	for s := range st.Used {
		if !st.Used[s].IsZero() {
			st.active++
		}
	}
	if st.nameIdx == nil {
		st.nameIdx = make(map[string]int, len(st.Running))
	} else {
		clear(st.nameIdx)
	}
	for i := range st.Running {
		nm := st.Running[i].Input.Name
		if _, ok := st.nameIdx[nm]; !ok {
			st.nameIdx[nm] = i
		}
	}
	st.counted = true
}

// NumServers returns the cluster size.
func (st *State) NumServers() int { return len(st.Caps) }

// SetOffline marks server s as excluded from (or restored to)
// placement. Existing allocations on an offline server are untouched —
// evacuating them is the platform's job, not the scheduler's.
func (st *State) SetOffline(s int, down bool) {
	if st.Offline == nil {
		if !down {
			return
		}
		st.Offline = make([]bool, len(st.Caps))
	}
	if st.counted && st.Offline[s] != down {
		if down {
			st.online--
		} else {
			st.online++
		}
	}
	st.Offline[s] = down
}

// Online reports whether server s accepts placements.
func (st *State) Online(s int) bool {
	return st.Offline == nil || !st.Offline[s]
}

// OnlineServers counts the servers accepting placements — O(1) after
// Recount, a scan otherwise.
func (st *State) OnlineServers() int {
	if st.counted {
		return st.online
	}
	if st.Offline == nil {
		return len(st.Caps)
	}
	n := 0
	for s := range st.Caps {
		if !st.Offline[s] {
			n++
		}
	}
	return n
}

// ErrNoPlacement marks deterministic rejections: the cluster cannot
// host the request (no fit, or every feasible spread violates an SLA).
// Callers must not retry these — the same state yields the same answer.
var ErrNoPlacement = errors.New("sched: no feasible placement")

// Free returns server s's unallocated resources.
func (st *State) Free(s int) resources.Vector {
	return st.Caps[s].Sub(st.Used[s]).Clamped()
}

// AllocOf returns the total allocation a workload input requires per
// placed function (alloc x replicas).
func AllocOf(in *core.WorkloadInput, f int) resources.Vector {
	r := 1.0
	if in.Replicas != nil {
		r = float64(in.Replicas[f])
	}
	return in.Profiles[f].Alloc.Scale(r)
}

// Commit applies a placement to the state's bookkeeping.
func (st *State) Commit(in core.WorkloadInput, sla SLA) {
	for f := range in.Profiles {
		s := in.Placement[f]
		next := st.Used[s].Add(AllocOf(&in, f))
		if st.counted && st.Used[s].IsZero() && !next.IsZero() {
			st.active++
		}
		st.Used[s] = next
	}
	if st.counted {
		if _, ok := st.nameIdx[in.Name]; !ok {
			st.nameIdx[in.Name] = len(st.Running)
		}
	}
	st.Running = append(st.Running, Deployed{Input: in, SLA: sla})
}

// Release removes the named workload from the state. With the cached
// bookkeeping the name lookup is a map hit instead of a scan over
// Running; the splice stays ordered either way because the running
// set's iteration order feeds the predictor's colocation queries.
func (st *State) Release(name string) bool {
	i := -1
	if st.counted {
		idx, ok := st.nameIdx[name]
		if !ok {
			return false
		}
		i = idx
	} else {
		for j := range st.Running {
			if st.Running[j].Input.Name == name {
				i = j
				break
			}
		}
		if i == -1 {
			return false
		}
	}
	d := &st.Running[i]
	for f := range d.Input.Profiles {
		s := d.Input.Placement[f]
		next := st.Used[s].Sub(AllocOf(&d.Input, f)).Clamped()
		if st.counted && !st.Used[s].IsZero() && next.IsZero() {
			st.active--
		}
		st.Used[s] = next
	}
	st.Running = append(st.Running[:i], st.Running[i+1:]...)
	if st.counted {
		delete(st.nameIdx, name)
		// Indices past the splice shifted down by one; restore the
		// first-occurrence invariant for the moved entries (a name
		// repeated across the seam must keep its earliest index).
		for j := i; j < len(st.Running); j++ {
			nm := st.Running[j].Input.Name
			if cur, ok := st.nameIdx[nm]; !ok || cur > j {
				st.nameIdx[nm] = j
			}
		}
	}
	return true
}

// ActiveServers counts servers with any allocation — the denominator of
// the paper's density objective ("minimum number of active servers").
// O(1) after Recount, a scan otherwise.
func (st *State) ActiveServers() int {
	if st.counted {
		return st.active
	}
	n := 0
	for s := range st.Used {
		if !st.Used[s].IsZero() {
			n++
		}
	}
	return n
}

// Scheduler decides placements. Place consumes a read-only
// ClusterView and must not mutate the cluster — applying the returned
// placement is the caller's job (State.Commit directly, or a Txn
// commit under concurrent placers).
type Scheduler interface {
	Name() string
	// Place returns a server index per function of req's workload.
	Place(v ClusterView, req *Request) ([]int, error)
}

// memFits checks the incompressible resource: memory must fit; CPU may
// oversubscribe (interference absorbs it) up to the given factor.
// Offline servers never fit.
func fits(st *State, s int, add resources.Vector, cpuOversub float64) bool {
	if !st.Online(s) {
		return false
	}
	used := st.Used[s].Add(add)
	if used[resources.Memory] > st.Caps[s][resources.Memory] {
		return false
	}
	if used[resources.CPU] > st.Caps[s][resources.CPU]*cpuOversub {
		return false
	}
	return true
}

// insertionSort stably sorts ids in place with the given element-wise
// ordering — the same result as sort.SliceStable (a stable sort is
// uniquely determined by its comparator) without the reflection and
// closure allocations on the placement hot path.
func insertionSort(ids []int, less func(a, b int) bool) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && less(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// sortCutoff is the list length above which the schedulers switch from
// insertion sort (O(n²), but fastest on the paper's 8-server lists) to
// the sortx pdqsort port. Testbed-size clusters never cross it, so the
// legacy paths are untouched instruction for instruction.
const sortCutoff = 32

// sortIDs orders ids like insertionSort would, at any length. Above
// the cutoff it runs pdqsort — an unstable sort — under the comparator
// extended with an id tie-break. The call sites enumerate ids in
// ascending order before sorting, so stable-sort-on-ties and
// total-order-by-id are the same permutation; TestSortIDsMatchesInsertionSort
// pins the equivalence.
func sortIDs(ids []int, less func(a, b int) bool) {
	if len(ids) <= sortCutoff {
		insertionSort(ids, less)
		return
	}
	sortx.Ints(ids, func(a, b int) bool {
		if less(a, b) {
			return true
		}
		if less(b, a) {
			return false
		}
		return a < b
	})
}

// selectIDs partially sorts ids so that ids[:k] holds the k smallest
// elements in exactly the order a full sortIDs pass would leave them.
// less must be a strict total order over distinct ids (the two-tier
// comparator ends with an id tie-break, matching sortIDs' own tie
// rule, which is what makes the prefix identical to sort-then-
// truncate). Quickselect narrows the window containing the k-boundary
// in O(n) comparisons and only the k-prefix pays a sort — at 10k
// servers and K=32 this removes the O(n log n) candidate sort that
// dominated the pruned path's remaining shared cost.
func selectIDs(ids []int, k int, less func(a, b int) bool) {
	lo, hi := 0, len(ids)
	if k >= hi {
		sortIDs(ids, less)
		return
	}
	for hi-lo > sortCutoff {
		// Median-of-three pivot parked at hi-1. Pivot choice depends
		// only on element values and window positions, so the whole
		// selection is deterministic for a deterministic input.
		m := lo + (hi-lo)/2
		if less(ids[m], ids[lo]) {
			ids[m], ids[lo] = ids[lo], ids[m]
		}
		if less(ids[hi-1], ids[lo]) {
			ids[hi-1], ids[lo] = ids[lo], ids[hi-1]
		}
		if less(ids[m], ids[hi-1]) {
			ids[m], ids[hi-1] = ids[hi-1], ids[m]
		}
		p := ids[hi-1]
		i := lo
		for j := lo; j < hi-1; j++ {
			if less(ids[j], p) {
				ids[i], ids[j] = ids[j], ids[i]
				i++
			}
		}
		ids[i], ids[hi-1] = ids[hi-1], ids[i]
		switch {
		case i == k:
			// The pivot landed on the boundary: ids[:k] is exactly
			// the k smallest, membership settled.
			lo, hi = k, k
		case k < i:
			hi = i
		default:
			lo = i + 1
		}
	}
	// The window always straddles k (hi only shrinks to a partition
	// point > k, lo only grows to one <= k). If any of it lies below
	// the boundary, sorting the window settles prefix membership.
	if lo < k && lo < hi {
		insertionSort(ids[lo:hi], less)
	}
	sortIDs(ids[:k], less)
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func resizeVecs(s []resources.Vector, n int) []resources.Vector {
	if cap(s) < n {
		return make([]resources.Vector, n)
	}
	return s[:n]
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// batchPredictor is the optional fast path of a QoSPredictor: all SLA
// checks of one candidate placement issued as a single batch. Results
// must be bit-identical to per-query Predict calls (core.Predictor's
// contract), so schedulers may use whichever path is available.
type batchPredictor interface {
	PredictBatchInto(kind core.QoSKind, queries []core.Query, out []float64) error
}

// ---- Gsight binary-search scheduler (§4) ----

// Gsight schedules with the predictor: it tries the densest placement
// (full overlap on the fewest active servers) and binary-searches the
// spatial overlap — doubling the spread whenever the predicted QoS of
// the new workload or any running workload violates its SLA. Per
// overlap level it evaluates exactly one candidate (max-demand function
// onto max-headroom server), giving the paper's O(MP log S) complexity.
//
// A Gsight value owns reusable placement scratch: it must not be copied
// after first use, and a single value must not serve concurrent Place
// calls. Give each goroutine its own scheduler (they may share the
// predictor, whose hot path is goroutine-safe).
type Gsight struct {
	Predictor core.QoSPredictor
	// CPUOversub bounds how far CPU allocation may exceed capacity.
	CPUOversub float64
	// Fallback, when set, serves requests the predictor cannot vet:
	// if the SLA checks fail with a predictor error (untrained model,
	// unavailable predictor), Place delegates to Fallback instead of
	// failing, recording the decision with outcome "degraded".
	Fallback Scheduler
	// Tier0 and TopK enable two-tier placement: when both are set and
	// the online-server count exceeds TopK, the tier-0 scorer ranks
	// candidates and the binary-search ladder runs over only the top-K
	// finalists. TopK <= 0 (K=∞) disables pruning entirely — the legacy
	// code path runs instruction for instruction. Set both before
	// Instrument so the prune counters register.
	Tier0 *core.Tier0
	TopK  int

	scratch placeScratch
	t0      tier0Scratch
	ins     telemetry.SchedulerInstruments
	t0ins   telemetry.Tier0Instruments
	ev      telemetry.PlacementDecision // reusable decision event
}

// placeScratch is the per-scheduler reusable state of one Place call:
// every slice is overwritten before use, so nothing leaks between
// requests, and steady-state placement allocates only the returned
// placement slice.
type placeScratch struct {
	order      []int              // candidate server order
	free       []resources.Vector // headroom per server id during candidate()
	sortCPU    []float64          // free-CPU sort key per server id
	sortActive []bool             // activity sort key per server id
	candServer []bool             // servers touched by the candidate placement
	fnOrder    []int              // functions in descending CPU demand
	placement  []int              // candidate placement under construction
	inputs     []core.WorkloadInput
	slas       []SLA
	durations  []float64
	queries    []core.Query
	preds      []float64
	// candIPC/candJCT hold the latest SLA check's predictions for the
	// candidate workload itself (inputs[0]); finish copies them into
	// Request.Detail on an accepted placement.
	candIPC float64
	candJCT float64
}

// NewGsight returns the predictor-guided scheduler. Its accurate
// interference predictions let it oversubscribe CPU well past nominal
// requests — the headroom request-based packers cannot safely use.
func NewGsight(p core.QoSPredictor) *Gsight {
	return &Gsight{Predictor: p, CPUOversub: 2.0}
}

// Name implements Scheduler.
func (g *Gsight) Name() string { return "Gsight" }

// Instrument attaches a telemetry sink. Passing telemetry.Nop (or never
// calling Instrument) leaves every decision and allocation
// bit-identical to the uninstrumented scheduler. The tier-0 prune
// counters register only when two-tier placement is configured, so
// reports from runs without pruning keep their legacy metrics snapshot.
func (g *Gsight) Instrument(s *telemetry.Sink) {
	g.ins = s.Scheduler(g.Name())
	if g.Tier0 != nil && g.TopK > 0 {
		g.t0ins = s.SchedulerTier0(g.Name())
	}
}

// finish records one decision into the instruments; a no-op when
// uninstrumented. The event struct is scheduler-owned scratch so
// logging allocates nothing.
func (g *Gsight) finish(span telemetry.Span, st *State, req *Request, placement []int, iters, checks int, outcome, reason string) {
	g.ins.Placements.Inc()
	if placement == nil {
		g.ins.Failures.Inc()
	}
	if outcome == "fallback" {
		g.ins.Fallbacks.Inc()
	}
	g.ins.SearchIterations.Observe(float64(iters))
	g.ins.SLAChecks.Observe(float64(checks))
	if g.ins.Decisions != nil {
		g.ev = telemetry.PlacementDecision{
			Scheduler:     g.Name(),
			Workload:      req.Input.Name,
			Class:         req.Input.Class.String(),
			Functions:     len(req.Input.Profiles),
			Servers:       st.NumServers(),
			ActiveServers: st.ActiveServers(),
			SpreadLevels:  iters,
			SLAChecks:     checks,
			Outcome:       outcome,
			Reason:        reason,
			Placement:     placement,
		}
		if g.t0.active {
			g.ev.Tier0 = true
			g.ev.Tier0Kept = g.t0.kept
			g.ev.Tier0Pruned = g.t0.pruned
			if len(placement) > 0 {
				g.ev.Tier0Score = g.t0.score[placement[0]]
			}
		}
		g.ins.Decisions.Placement(&g.ev)
	}
	if req.Detail != nil {
		*req.Detail = PlacementDetail{Outcome: outcome, Reason: reason, SpreadLevels: iters, SLAChecks: checks}
		if outcome == "placed" {
			req.Detail.PredIPC = g.scratch.candIPC
			req.Detail.PredJCTS = g.scratch.candJCT
		}
	}
	span.End()
}

// Place implements Scheduler.
func (g *Gsight) Place(v ClusterView, req *Request) ([]int, error) {
	st := viewState(v)
	s := st.NumServers()
	if s == 0 {
		return nil, fmt.Errorf("sched: empty cluster")
	}
	span := telemetry.StartSpan(g.ins.PlaceSeconds)
	// Candidate server order: online servers only, busiest (least free
	// CPU) first — packing onto already-active servers minimizes
	// active-server count.
	sc := &g.scratch
	sc.order = sc.order[:0]
	for i := 0; i < s; i++ {
		if st.Online(i) {
			sc.order = append(sc.order, i)
		}
	}
	g.t0.active = false
	if len(sc.order) == 0 {
		g.finish(span, st, req, nil, 0, 0, "rejected", "no-fit")
		return nil, fmt.Errorf("%w: no online servers", ErrNoPlacement)
	}
	// Sort keys are cached per server id before sorting: Free() costs a
	// full vector subtract-and-clamp, and an O(n log n) comparator that
	// recomputes it dominates large-cluster placement. The keys are pure
	// per-server functions of the immutable snapshot, so the cached
	// comparison results — and the resulting permutation — are exactly
	// the legacy ones.
	sc.sortCPU = resizeFloats(sc.sortCPU, s)
	sc.sortActive = resizeBools(sc.sortActive, s)
	for _, i := range sc.order {
		sc.sortCPU[i] = st.Free(i)[resources.CPU]
		sc.sortActive[i] = !st.Used[i].IsZero()
	}
	if g.Tier0 != nil && g.TopK > 0 && g.TopK < len(sc.order) {
		// Two-tier path: rank every candidate with the tier-0 score and
		// keep only the top-K finalists for the ladder below. The
		// composite comparator extends the legacy order with the tier-0
		// band, so K=∞ (or a K no smaller than the online count, which
		// skips this branch) reproduces the legacy permutation exactly.
		g.tier0Rank(st, req)
		t0 := &g.t0
		selectIDs(sc.order, g.TopK, func(a, b int) bool {
			if t0.rank[a] != t0.rank[b] {
				return t0.rank[a] < t0.rank[b]
			}
			if sc.sortActive[a] != sc.sortActive[b] {
				return sc.sortActive[a] // active servers first
			}
			if sc.sortCPU[a] != sc.sortCPU[b] {
				return sc.sortCPU[a] < sc.sortCPU[b]
			}
			return a < b
		})
		t0.active = true
		t0.kept = g.TopK
		t0.pruned = len(sc.order) - g.TopK
		sc.order = sc.order[:g.TopK]
		g.t0ins.Kept.Add(uint64(t0.kept))
		g.t0ins.Pruned.Add(uint64(t0.pruned))
	} else {
		sortIDs(sc.order, func(a, b int) bool {
			if sc.sortActive[a] != sc.sortActive[b] {
				return sc.sortActive[a] // active servers first
			}
			return sc.sortCPU[a] < sc.sortCPU[b]
		})
	}

	online := len(sc.order)
	var lastErr, fullErr error
	iters, checks := 0, 0
	reason := ""
	for k := 1; ; k *= 2 {
		if k > online {
			k = online
		}
		iters++
		placement, err := g.candidate(st, req, sc.order[:k])
		if k == online {
			fullErr = err
		}
		if err == nil {
			ok, n, err := g.satisfies(st, req, placement)
			checks += n
			if err != nil {
				// The predictor cannot vet the candidate. With a
				// fallback policy the request is still served —
				// degraded, capacity-based — instead of failing the
				// caller's run.
				if g.Fallback != nil {
					out, ferr := fallbackPlace(g.Fallback, st, req)
					if ferr == nil {
						g.ins.Fallbacks.Inc()
						g.finish(span, st, req, out, iters, checks, "degraded", "predictor-error")
						return out, nil
					}
				}
				g.finish(span, st, req, nil, iters, checks, "error", "predictor-error")
				return nil, err
			}
			if ok {
				out := append([]int(nil), placement...)
				g.finish(span, st, req, out, iters, checks, "placed", "")
				return out, nil
			}
			g.ins.SLARejections.Inc()
			reason = "sla-violated"
			lastErr = fmt.Errorf("SLA violated at spread %d", k)
		} else {
			reason = "no-fit"
			lastErr = err
		}
		if k == online {
			break
		}
	}
	// Full spread as last resort. The loop's final iteration already
	// built (or failed to build) the candidate over the complete order —
	// its verdict is fullErr and, on success, sc.placement still holds
	// that candidate (satisfies never mutates it) — so the legacy
	// re-evaluation of the same server set is skipped: degraded paths no
	// longer pay a second headroom scan for a result that cannot differ.
	if fullErr != nil {
		g.finish(span, st, req, nil, iters, checks, "rejected", reason)
		return nil, fmt.Errorf("%w: %v", ErrNoPlacement, lastErr)
	}
	out := append([]int(nil), sc.placement...)
	g.finish(span, st, req, out, iters, checks, "fallback", reason)
	return out, nil
}

// fallbackPlace dispatches a degraded-mode placement. The stock
// policies are devirtualized: calling Place through the Scheduler
// interface forces every caller's State and Request to escape (the
// compiler must assume the callee retains them), which costs three
// heap allocations per placement on the hot path even when no fallback
// ever runs. Unknown implementations still work through the interface;
// they get shallow copies so the poison stays inside this function.
// Place implementations read but never restructure the state, so the
// copies (sharing every backing array) behave identically.
func fallbackPlace(s Scheduler, st *State, req *Request) ([]int, error) {
	switch f := s.(type) {
	case *WorstFit:
		return f.Place(st, req)
	case *BestFit:
		return f.Place(st, req)
	default:
		// Deep-copy the state's own slices (not just the struct): a
		// shallow copy would still leak the caller's backing arrays
		// into the interface call. This branch only runs during an
		// actual degraded-mode placement, so the copies are off the
		// hot path.
		stc := State{
			Caps:    append([]resources.Vector(nil), st.Caps...),
			Used:    append([]resources.Vector(nil), st.Used...),
			Running: append([]Deployed(nil), st.Running...),
			Offline: append([]bool(nil), st.Offline...),
		}
		reqc := *req
		return s.Place(&stc, &reqc)
	}
}

// candidate builds one placement over the given servers: functions in
// descending allocation order onto the candidate server with the most
// remaining headroom. The returned slice is g.scratch.placement — valid
// until the next candidate call.
func (g *Gsight) candidate(st *State, req *Request, servers []int) ([]int, error) {
	in := &req.Input
	n := len(in.Profiles)
	sc := &g.scratch
	sc.placement = resizeInts(sc.placement, n)
	sc.free = resizeVecs(sc.free, st.NumServers())
	for _, s := range servers {
		sc.free[s] = st.Free(s)
	}
	sc.fnOrder = resizeInts(sc.fnOrder, n)
	for i := range sc.fnOrder {
		sc.fnOrder[i] = i
	}
	sortIDs(sc.fnOrder, func(a, b int) bool {
		return AllocOf(in, a)[resources.CPU] > AllocOf(in, b)[resources.CPU]
	})
	for _, f := range sc.fnOrder {
		alloc := AllocOf(in, f)
		best, bestFree := -1, -1.0
		for _, s := range servers {
			fr := sc.free[s]
			tryUsed := st.Caps[s].Sub(fr).Add(alloc)
			if tryUsed[resources.Memory] > st.Caps[s][resources.Memory] {
				continue
			}
			if tryUsed[resources.CPU] > st.Caps[s][resources.CPU]*g.CPUOversub {
				continue
			}
			if fr[resources.CPU] > bestFree {
				best, bestFree = s, fr[resources.CPU]
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("sched: function %d does not fit on %d servers", f, len(servers))
		}
		sc.placement[f] = best
		sc.free[best] = sc.free[best].Sub(alloc).Clamped()
	}
	return sc.placement, nil
}

// satisfies predicts the QoS of the new workload and of every running
// workload under the candidate placement and checks all SLAs. It also
// reports how many QoS predictions were issued (the decision trace's
// SLA-check count).
func (g *Gsight) satisfies(st *State, req *Request, placement []int) (bool, int, error) {
	sc := &g.scratch
	cand := req.Input
	cand.Placement = placement
	sc.candServer = sc.candServer[:0]
	for len(sc.candServer) < st.NumServers() {
		sc.candServer = append(sc.candServer, false)
	}
	for _, s := range placement {
		sc.candServer[s] = true
	}
	sc.inputs = append(sc.inputs[:0], cand)
	sc.slas = append(sc.slas[:0], req.SLA)
	sc.durations = append(sc.durations[:0], req.SoloDurationS)
	// Interference is local: only running workloads that share a server
	// with the candidate can be affected by (or affect) it. Filtering
	// keeps the colocation code small on large clusters.
	for _, d := range st.Running {
		overlaps := false
		for _, s := range d.Input.Placement {
			if sc.candServer[s] {
				overlaps = true
				break
			}
		}
		if !overlaps {
			continue
		}
		sc.inputs = append(sc.inputs, d.Input)
		sc.slas = append(sc.slas, d.SLA)
		sc.durations = append(sc.durations, d.Input.LifetimeS)
	}
	return g.checkAll(sc.inputs, sc.slas, sc.durations)
}

// needsJCT reports whether target i's JCT SLA applies.
func needsJCT(inputs []core.WorkloadInput, slas []SLA, durations []float64, i int) bool {
	return slas[i].MaxJCTFactor > 0 && durations[i] > 0 && inputs[i].Class != workload.LS
}

// checkAll verifies every workload's SLA under the colocation described
// by inputs, reporting the verdict and the number of QoS predictions
// issued. With a batch-capable predictor all IPC checks (then all JCT
// checks) go out as one PredictBatchInto call each; predictions are
// bit-identical to the sequential path, so the verdict is too. A batch
// error other than ErrTooManyServers falls back to the sequential loop
// so error values keep their legacy shape.
func (g *Gsight) checkAll(inputs []core.WorkloadInput, slas []SLA, durations []float64) (bool, int, error) {
	bp, ok := g.Predictor.(batchPredictor)
	if !ok {
		return g.checkSequential(inputs, slas, durations)
	}
	sc := &g.scratch
	sc.candIPC, sc.candJCT = 0, 0
	sc.queries = sc.queries[:0]
	for i := range inputs {
		if slas[i].MinIPC > 0 {
			sc.queries = append(sc.queries, core.Query{Target: i, Inputs: inputs})
		}
	}
	nIPC := len(sc.queries)
	for i := range inputs {
		if needsJCT(inputs, slas, durations, i) {
			sc.queries = append(sc.queries, core.Query{Target: i, Inputs: inputs})
		}
	}
	checks := len(sc.queries)
	sc.preds = resizeFloats(sc.preds, len(sc.queries))
	if nIPC > 0 {
		if err := bp.PredictBatchInto(core.IPCQoS, sc.queries[:nIPC], sc.preds[:nIPC]); err != nil {
			if errors.Is(err, core.ErrTooManyServers) {
				// Beyond the code's spatial rows the predictor cannot
				// see the whole colocation (§6.4's scaling limit); fall
				// back to capacity-based acceptance for this candidate.
				return true, checks, nil
			}
			return g.checkSequential(inputs, slas, durations)
		}
	}
	if n := len(sc.queries); n > nIPC {
		if err := bp.PredictBatchInto(core.JCTQoS, sc.queries[nIPC:n], sc.preds[nIPC:n]); err != nil {
			if errors.Is(err, core.ErrTooManyServers) {
				return true, checks, nil
			}
			return g.checkSequential(inputs, slas, durations)
		}
	}
	// The candidate workload is always inputs[0], so when it carries
	// an SLA its predictions head each batch section.
	if slas[0].MinIPC > 0 {
		sc.candIPC = sc.preds[0]
	}
	if needsJCT(inputs, slas, durations, 0) {
		sc.candJCT = sc.preds[nIPC]
	}
	k := 0
	for i := range inputs {
		if slas[i].MinIPC > 0 {
			if sc.preds[k] < slas[i].MinIPC {
				return false, checks, nil
			}
			k++
		}
	}
	for i := range inputs {
		if needsJCT(inputs, slas, durations, i) {
			if sc.preds[k] > durations[i]*slas[i].MaxJCTFactor {
				return false, checks, nil
			}
			k++
		}
	}
	return true, checks, nil
}

// checkSequential is the one-Predict-per-check path, kept for
// predictors without a batch interface and as the error-path fallback.
func (g *Gsight) checkSequential(inputs []core.WorkloadInput, slas []SLA, durations []float64) (bool, int, error) {
	g.scratch.candIPC, g.scratch.candJCT = 0, 0
	checks := 0
	for i := range inputs {
		ok, n, err := g.checkOne(i, inputs, slas[i], durations[i])
		checks += n
		if errors.Is(err, core.ErrTooManyServers) {
			return true, checks, nil
		}
		if err != nil {
			return false, checks, err
		}
		if !ok {
			return false, checks, nil
		}
	}
	return true, checks, nil
}

func (g *Gsight) checkOne(target int, inputs []core.WorkloadInput, sla SLA, soloDur float64) (bool, int, error) {
	checks := 0
	if sla.MinIPC > 0 {
		checks++
		ipc, err := g.Predictor.Predict(core.IPCQoS, target, inputs)
		if err != nil {
			return false, checks, err
		}
		if target == 0 {
			g.scratch.candIPC = ipc
		}
		if ipc < sla.MinIPC {
			return false, checks, nil
		}
	}
	if sla.MaxJCTFactor > 0 && soloDur > 0 && inputs[target].Class != workload.LS {
		checks++
		jct, err := g.Predictor.Predict(core.JCTQoS, target, inputs)
		if err != nil {
			return false, checks, err
		}
		if target == 0 {
			g.scratch.candJCT = jct
		}
		if jct > soloDur*sla.MaxJCTFactor {
			return false, checks, nil
		}
	}
	return true, checks, nil
}

// ---- Best Fit (Pythia's policy) ----

// BestFit places each function on the feasible server with the least
// headroom ("smallest amount of headroom", §6.1), optionally checking
// an SLA with its predictor first. Like Gsight it owns reusable
// scratch: do not share one value across goroutines.
type BestFit struct {
	Predictor  core.QoSPredictor // may be nil: pure bin-packing
	CPUOversub float64

	free   []resources.Vector
	inputs []core.WorkloadInput
	spread WorstFit // SLA-violation fallback, reused across calls
	ins    telemetry.SchedulerInstruments
	ev     telemetry.PlacementDecision
}

// NewBestFit returns Pythia's placement policy around a predictor:
// Kubernetes-style request-based packing (no CPU oversubscription) —
// without trustworthy interference predictions, exceeding requests is
// unsafe.
func NewBestFit(p core.QoSPredictor) *BestFit {
	return &BestFit{Predictor: p, CPUOversub: 1.0}
}

// Name implements Scheduler.
func (b *BestFit) Name() string { return "BestFit" }

// Instrument attaches a telemetry sink (Nop-safe, decision-neutral).
func (b *BestFit) Instrument(s *telemetry.Sink) { b.ins = s.Scheduler(b.Name()) }

// finish records one decision; a no-op when uninstrumented.
func (b *BestFit) finish(span telemetry.Span, st *State, req *Request, placement []int, checks int, outcome, reason string) {
	b.ins.Placements.Inc()
	if placement == nil {
		b.ins.Failures.Inc()
	}
	if outcome == "fallback" {
		b.ins.Fallbacks.Inc()
	}
	b.ins.SearchIterations.Observe(1)
	b.ins.SLAChecks.Observe(float64(checks))
	if b.ins.Decisions != nil {
		b.ev = telemetry.PlacementDecision{
			Scheduler:     b.Name(),
			Workload:      req.Input.Name,
			Class:         req.Input.Class.String(),
			Functions:     len(req.Input.Profiles),
			Servers:       st.NumServers(),
			ActiveServers: st.ActiveServers(),
			SpreadLevels:  1,
			SLAChecks:     checks,
			Outcome:       outcome,
			Reason:        reason,
			Placement:     placement,
		}
		b.ins.Decisions.Placement(&b.ev)
	}
	if req.Detail != nil {
		*req.Detail = PlacementDetail{Outcome: outcome, Reason: reason, SpreadLevels: 1, SLAChecks: checks}
	}
	span.End()
}

// Place implements Scheduler.
func (b *BestFit) Place(v ClusterView, req *Request) ([]int, error) {
	st := viewState(v)
	span := telemetry.StartSpan(b.ins.PlaceSeconds)
	in := &req.Input
	n := len(in.Profiles)
	placement := make([]int, n)
	b.free = resizeVecs(b.free, st.NumServers())
	for s := range b.free {
		b.free[s] = st.Free(s)
	}
	for f := 0; f < n; f++ {
		alloc := AllocOf(in, f)
		best, bestFree := -1, math.MaxFloat64
		for s := range b.free {
			if !st.Online(s) {
				continue
			}
			used := st.Caps[s].Sub(b.free[s]).Add(alloc)
			if used[resources.Memory] > st.Caps[s][resources.Memory] {
				continue
			}
			if used[resources.CPU] > st.Caps[s][resources.CPU]*b.CPUOversub {
				continue
			}
			if b.free[s][resources.CPU] < bestFree {
				best, bestFree = s, b.free[s][resources.CPU]
			}
		}
		if best == -1 {
			b.finish(span, st, req, nil, 0, "rejected", "no-fit")
			return nil, fmt.Errorf("%w: best fit found no server for function %d", ErrNoPlacement, f)
		}
		placement[f] = best
		b.free[best] = b.free[best].Sub(alloc).Clamped()
	}
	if b.Predictor != nil && req.SLA.MinIPC > 0 {
		cand := req.Input
		cand.Placement = placement
		b.inputs = append(b.inputs[:0], cand)
		for _, d := range st.Running {
			b.inputs = append(b.inputs, d.Input)
		}
		ipc, err := b.Predictor.Predict(core.IPCQoS, 0, b.inputs)
		if err == nil && ipc < req.SLA.MinIPC {
			// Pythia's reaction: spread to the emptiest servers.
			b.ins.SLARejections.Inc()
			b.spread.CPUOversub = b.CPUOversub
			spreadPlacement, err := b.spread.Place(st, req)
			if err != nil {
				b.finish(span, st, req, nil, 1, "rejected", "sla-violated")
			} else {
				b.finish(span, st, req, spreadPlacement, 1, "fallback", "sla-violated")
			}
			return spreadPlacement, err
		}
		b.finish(span, st, req, placement, 1, "placed", "")
		return placement, nil
	}
	b.finish(span, st, req, placement, 0, "placed", "")
	return placement, nil
}

// ---- Worst Fit (the paper's strawman) ----

// WorstFit always schedules the function with the maximum resource
// requirement to the server with the maximum available resources.
type WorstFit struct {
	CPUOversub float64

	free    []resources.Vector
	fnOrder []int
	ins     telemetry.SchedulerInstruments
	ev      telemetry.PlacementDecision
}

// NewWorstFit returns the spreading strawman (request-based capacity).
func NewWorstFit() *WorstFit { return &WorstFit{CPUOversub: 1.0} }

// Name implements Scheduler.
func (w *WorstFit) Name() string { return "WorstFit" }

// Instrument attaches a telemetry sink (Nop-safe, decision-neutral).
func (w *WorstFit) Instrument(s *telemetry.Sink) { w.ins = s.Scheduler(w.Name()) }

// finish records one decision; a no-op when uninstrumented.
func (w *WorstFit) finish(span telemetry.Span, st *State, req *Request, placement []int, outcome, reason string) {
	w.ins.Placements.Inc()
	if placement == nil {
		w.ins.Failures.Inc()
	}
	w.ins.SearchIterations.Observe(1)
	w.ins.SLAChecks.Observe(0)
	if w.ins.Decisions != nil {
		w.ev = telemetry.PlacementDecision{
			Scheduler:     w.Name(),
			Workload:      req.Input.Name,
			Class:         req.Input.Class.String(),
			Functions:     len(req.Input.Profiles),
			Servers:       st.NumServers(),
			ActiveServers: st.ActiveServers(),
			SpreadLevels:  1,
			Outcome:       outcome,
			Reason:        reason,
			Placement:     placement,
		}
		w.ins.Decisions.Placement(&w.ev)
	}
	if req.Detail != nil {
		*req.Detail = PlacementDetail{Outcome: outcome, Reason: reason, SpreadLevels: 1}
	}
	span.End()
}

// Place implements Scheduler.
func (w *WorstFit) Place(v ClusterView, req *Request) ([]int, error) {
	st := viewState(v)
	span := telemetry.StartSpan(w.ins.PlaceSeconds)
	in := &req.Input
	n := len(in.Profiles)
	placement := make([]int, n)
	w.free = resizeVecs(w.free, st.NumServers())
	for s := range w.free {
		w.free[s] = st.Free(s)
	}
	w.fnOrder = resizeInts(w.fnOrder, n)
	for i := range w.fnOrder {
		w.fnOrder[i] = i
	}
	sortIDs(w.fnOrder, func(a, b int) bool {
		return AllocOf(in, a)[resources.CPU] > AllocOf(in, b)[resources.CPU]
	})
	oversub := w.CPUOversub
	if oversub == 0 {
		oversub = 1.5
	}
	for _, f := range w.fnOrder {
		alloc := AllocOf(in, f)
		best, bestFree := -1, -1.0
		for s := range w.free {
			if !st.Online(s) {
				continue
			}
			used := st.Caps[s].Sub(w.free[s]).Add(alloc)
			if used[resources.Memory] > st.Caps[s][resources.Memory] {
				continue
			}
			if used[resources.CPU] > st.Caps[s][resources.CPU]*oversub {
				continue
			}
			if w.free[s][resources.CPU] > bestFree {
				best, bestFree = s, w.free[s][resources.CPU]
			}
		}
		if best == -1 {
			w.finish(span, st, req, nil, "rejected", "no-fit")
			return nil, fmt.Errorf("%w: worst fit found no server for function %d", ErrNoPlacement, f)
		}
		placement[f] = best
		w.free[best] = w.free[best].Sub(alloc).Clamped()
	}
	w.finish(span, st, req, placement, "placed", "")
	return placement, nil
}

// NewState builds a State over n default servers.
func NewState(caps []resources.Vector) *State {
	st := &State{
		Caps: append([]resources.Vector(nil), caps...),
		Used: make([]resources.Vector, len(caps)),
	}
	return st
}

// StateFromProfiles is a convenience: capacity vectors from a profile
// spec repeated n times.
func StateFromProfiles(spec resources.ServerSpec, n int) *State {
	caps := make([]resources.Vector, n)
	for i := range caps {
		caps[i] = spec.Capacity
	}
	return NewState(caps)
}
