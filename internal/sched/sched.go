package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gsight/internal/core"
	"gsight/internal/resources"
	"gsight/internal/workload"
)

// SLA is a workload's quality-of-service contract for admission. The
// scheduler checks IPC floors (transformed from latency targets via the
// Figure 7 curve, §6.3) because the IPC model predicts more accurately
// than the tail-latency model.
type SLA struct {
	// MinIPC is the IPC floor; 0 means no requirement (BG jobs).
	MinIPC float64
	// MaxJCTFactor bounds an SC job's predicted JCT relative to its
	// solo duration; 0 means no requirement.
	MaxJCTFactor float64
}

// Request asks for a placement of a workload's functions.
type Request struct {
	// Input describes the workload (profiles, class, load); its
	// Placement field is ignored and replaced by the scheduler.
	Input core.WorkloadInput
	SLA   SLA
	// SoloDurationS supports the JCT SLA check for SC jobs.
	SoloDurationS float64
}

// Deployed is a running workload the scheduler must not regress.
type Deployed struct {
	Input core.WorkloadInput
	SLA   SLA
}

// State is the scheduler's view of the cluster.
type State struct {
	// Caps[s] is server s's capacity.
	Caps []resources.Vector
	// Used[s] is server s's currently allocated resources.
	Used []resources.Vector
	// Running workloads with their placements and SLAs.
	Running []Deployed
}

// NumServers returns the cluster size.
func (st *State) NumServers() int { return len(st.Caps) }

// Free returns server s's unallocated resources.
func (st *State) Free(s int) resources.Vector {
	return st.Caps[s].Sub(st.Used[s]).Clamped()
}

// AllocOf returns the total allocation a workload input requires per
// placed function (alloc x replicas).
func AllocOf(in *core.WorkloadInput, f int) resources.Vector {
	r := 1.0
	if in.Replicas != nil {
		r = float64(in.Replicas[f])
	}
	return in.Profiles[f].Alloc.Scale(r)
}

// Commit applies a placement to the state's bookkeeping.
func (st *State) Commit(in core.WorkloadInput, sla SLA) {
	for f := range in.Profiles {
		st.Used[in.Placement[f]] = st.Used[in.Placement[f]].Add(AllocOf(&in, f))
	}
	st.Running = append(st.Running, Deployed{Input: in, SLA: sla})
}

// Release removes the named workload from the state.
func (st *State) Release(name string) bool {
	for i, d := range st.Running {
		if d.Input.Name == name {
			for f := range d.Input.Profiles {
				st.Used[d.Input.Placement[f]] = st.Used[d.Input.Placement[f]].Sub(AllocOf(&d.Input, f)).Clamped()
			}
			st.Running = append(st.Running[:i], st.Running[i+1:]...)
			return true
		}
	}
	return false
}

// ActiveServers counts servers with any allocation — the denominator of
// the paper's density objective ("minimum number of active servers").
func (st *State) ActiveServers() int {
	n := 0
	for s := range st.Used {
		if !st.Used[s].IsZero() {
			n++
		}
	}
	return n
}

// Scheduler decides placements.
type Scheduler interface {
	Name() string
	// Place returns a server index per function of req's workload.
	Place(st *State, req *Request) ([]int, error)
}

// memFits checks the incompressible resource: memory must fit; CPU may
// oversubscribe (interference absorbs it) up to the given factor.
func fits(st *State, s int, add resources.Vector, cpuOversub float64) bool {
	used := st.Used[s].Add(add)
	if used[resources.Memory] > st.Caps[s][resources.Memory] {
		return false
	}
	if used[resources.CPU] > st.Caps[s][resources.CPU]*cpuOversub {
		return false
	}
	return true
}

// ---- Gsight binary-search scheduler (§4) ----

// Gsight schedules with the predictor: it tries the densest placement
// (full overlap on the fewest active servers) and binary-searches the
// spatial overlap — doubling the spread whenever the predicted QoS of
// the new workload or any running workload violates its SLA. Per
// overlap level it evaluates exactly one candidate (max-demand function
// onto max-headroom server), giving the paper's O(MP log S) complexity.
type Gsight struct {
	Predictor core.QoSPredictor
	// CPUOversub bounds how far CPU allocation may exceed capacity.
	CPUOversub float64
}

// NewGsight returns the predictor-guided scheduler. Its accurate
// interference predictions let it oversubscribe CPU well past nominal
// requests — the headroom request-based packers cannot safely use.
func NewGsight(p core.QoSPredictor) *Gsight {
	return &Gsight{Predictor: p, CPUOversub: 2.0}
}

// Name implements Scheduler.
func (g *Gsight) Name() string { return "Gsight" }

// Place implements Scheduler.
func (g *Gsight) Place(st *State, req *Request) ([]int, error) {
	s := st.NumServers()
	if s == 0 {
		return nil, fmt.Errorf("sched: empty cluster")
	}
	// Candidate server order: busiest (least free CPU) first but only
	// servers that can hold at least the smallest function — packing
	// onto already-active servers minimizes active-server count.
	order := make([]int, s)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua, ub := st.Used[order[a]], st.Used[order[b]]
		activeA, activeB := !ua.IsZero(), !ub.IsZero()
		if activeA != activeB {
			return activeA // active servers first
		}
		return st.Free(order[a])[resources.CPU] < st.Free(order[b])[resources.CPU]
	})

	var lastErr error
	for k := 1; ; k *= 2 {
		if k > s {
			k = s
		}
		placement, err := g.candidate(st, req, order[:k])
		if err == nil {
			ok, err := g.satisfies(st, req, placement)
			if err != nil {
				return nil, err
			}
			if ok {
				return placement, nil
			}
			lastErr = fmt.Errorf("sched: SLA violated at spread %d", k)
		} else {
			lastErr = err
		}
		if k == s {
			break
		}
	}
	// Full spread as last resort: one more candidate over all servers.
	placement, err := g.candidate(st, req, order)
	if err != nil {
		return nil, fmt.Errorf("sched: no feasible placement: %w", lastErr)
	}
	return placement, nil
}

// candidate builds one placement over the given servers: functions in
// descending allocation order onto the candidate server with the most
// remaining headroom.
func (g *Gsight) candidate(st *State, req *Request, servers []int) ([]int, error) {
	in := &req.Input
	n := len(in.Profiles)
	placement := make([]int, n)
	free := make(map[int]resources.Vector, len(servers))
	for _, s := range servers {
		free[s] = st.Free(s)
	}
	fnOrder := make([]int, n)
	for i := range fnOrder {
		fnOrder[i] = i
	}
	sort.SliceStable(fnOrder, func(a, b int) bool {
		return AllocOf(in, fnOrder[a])[resources.CPU] > AllocOf(in, fnOrder[b])[resources.CPU]
	})
	for _, f := range fnOrder {
		alloc := AllocOf(in, f)
		best, bestFree := -1, -1.0
		for _, s := range servers {
			fr := free[s]
			tryUsed := st.Caps[s].Sub(fr).Add(alloc)
			if tryUsed[resources.Memory] > st.Caps[s][resources.Memory] {
				continue
			}
			if tryUsed[resources.CPU] > st.Caps[s][resources.CPU]*g.CPUOversub {
				continue
			}
			if fr[resources.CPU] > bestFree {
				best, bestFree = s, fr[resources.CPU]
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("sched: function %d does not fit on %d servers", f, len(servers))
		}
		placement[f] = best
		free[best] = free[best].Sub(alloc).Clamped()
	}
	return placement, nil
}

// satisfies predicts the QoS of the new workload and of every running
// workload under the candidate placement and checks all SLAs.
func (g *Gsight) satisfies(st *State, req *Request, placement []int) (bool, error) {
	cand := req.Input
	cand.Placement = placement
	candServers := map[int]bool{}
	for _, s := range placement {
		candServers[s] = true
	}
	inputs := make([]core.WorkloadInput, 0, len(st.Running)+1)
	slas := make([]SLA, 0, len(st.Running)+1)
	durations := make([]float64, 0, len(st.Running)+1)
	inputs = append(inputs, cand)
	slas = append(slas, req.SLA)
	durations = append(durations, req.SoloDurationS)
	// Interference is local: only running workloads that share a server
	// with the candidate can be affected by (or affect) it. Filtering
	// keeps the colocation code small on large clusters.
	for _, d := range st.Running {
		overlaps := false
		for _, s := range d.Input.Placement {
			if candServers[s] {
				overlaps = true
				break
			}
		}
		if !overlaps {
			continue
		}
		inputs = append(inputs, d.Input)
		slas = append(slas, d.SLA)
		durations = append(durations, d.Input.LifetimeS)
	}
	for i := range inputs {
		ok, err := g.checkOne(i, inputs, slas[i], durations[i])
		if errors.Is(err, core.ErrTooManyServers) {
			// Beyond the code's spatial rows the predictor cannot see
			// the whole colocation (§6.4's scaling limit); fall back
			// to capacity-based acceptance for this candidate.
			return true, nil
		}
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func (g *Gsight) checkOne(target int, inputs []core.WorkloadInput, sla SLA, soloDur float64) (bool, error) {
	if sla.MinIPC > 0 {
		ipc, err := g.Predictor.Predict(core.IPCQoS, target, inputs)
		if err != nil {
			return false, err
		}
		if ipc < sla.MinIPC {
			return false, nil
		}
	}
	if sla.MaxJCTFactor > 0 && soloDur > 0 && inputs[target].Class != workload.LS {
		jct, err := g.Predictor.Predict(core.JCTQoS, target, inputs)
		if err != nil {
			return false, err
		}
		if jct > soloDur*sla.MaxJCTFactor {
			return false, nil
		}
	}
	return true, nil
}

// ---- Best Fit (Pythia's policy) ----

// BestFit places each function on the feasible server with the least
// headroom ("smallest amount of headroom", §6.1), optionally checking
// an SLA with its predictor first.
type BestFit struct {
	Predictor  core.QoSPredictor // may be nil: pure bin-packing
	CPUOversub float64
}

// NewBestFit returns Pythia's placement policy around a predictor:
// Kubernetes-style request-based packing (no CPU oversubscription) —
// without trustworthy interference predictions, exceeding requests is
// unsafe.
func NewBestFit(p core.QoSPredictor) *BestFit {
	return &BestFit{Predictor: p, CPUOversub: 1.0}
}

// Name implements Scheduler.
func (b *BestFit) Name() string { return "BestFit" }

// Place implements Scheduler.
func (b *BestFit) Place(st *State, req *Request) ([]int, error) {
	in := &req.Input
	n := len(in.Profiles)
	placement := make([]int, n)
	free := make([]resources.Vector, st.NumServers())
	for s := range free {
		free[s] = st.Free(s)
	}
	for f := 0; f < n; f++ {
		alloc := AllocOf(in, f)
		best, bestFree := -1, math.MaxFloat64
		for s := range free {
			used := st.Caps[s].Sub(free[s]).Add(alloc)
			if used[resources.Memory] > st.Caps[s][resources.Memory] {
				continue
			}
			if used[resources.CPU] > st.Caps[s][resources.CPU]*b.CPUOversub {
				continue
			}
			if free[s][resources.CPU] < bestFree {
				best, bestFree = s, free[s][resources.CPU]
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("sched: best fit found no server for function %d", f)
		}
		placement[f] = best
		free[best] = free[best].Sub(alloc).Clamped()
	}
	if b.Predictor != nil && req.SLA.MinIPC > 0 {
		cand := req.Input
		cand.Placement = placement
		inputs := []core.WorkloadInput{cand}
		for _, d := range st.Running {
			inputs = append(inputs, d.Input)
		}
		ipc, err := b.Predictor.Predict(core.IPCQoS, 0, inputs)
		if err == nil && ipc < req.SLA.MinIPC {
			// Pythia's reaction: spread to the emptiest servers.
			wf := &WorstFit{CPUOversub: b.CPUOversub}
			return wf.Place(st, req)
		}
	}
	return placement, nil
}

// ---- Worst Fit (the paper's strawman) ----

// WorstFit always schedules the function with the maximum resource
// requirement to the server with the maximum available resources.
type WorstFit struct {
	CPUOversub float64
}

// NewWorstFit returns the spreading strawman (request-based capacity).
func NewWorstFit() *WorstFit { return &WorstFit{CPUOversub: 1.0} }

// Name implements Scheduler.
func (w *WorstFit) Name() string { return "WorstFit" }

// Place implements Scheduler.
func (w *WorstFit) Place(st *State, req *Request) ([]int, error) {
	in := &req.Input
	n := len(in.Profiles)
	placement := make([]int, n)
	free := make([]resources.Vector, st.NumServers())
	for s := range free {
		free[s] = st.Free(s)
	}
	fnOrder := make([]int, n)
	for i := range fnOrder {
		fnOrder[i] = i
	}
	sort.SliceStable(fnOrder, func(a, b int) bool {
		return AllocOf(in, fnOrder[a])[resources.CPU] > AllocOf(in, fnOrder[b])[resources.CPU]
	})
	oversub := w.CPUOversub
	if oversub == 0 {
		oversub = 1.5
	}
	for _, f := range fnOrder {
		alloc := AllocOf(in, f)
		best, bestFree := -1, -1.0
		for s := range free {
			used := st.Caps[s].Sub(free[s]).Add(alloc)
			if used[resources.Memory] > st.Caps[s][resources.Memory] {
				continue
			}
			if used[resources.CPU] > st.Caps[s][resources.CPU]*oversub {
				continue
			}
			if free[s][resources.CPU] > bestFree {
				best, bestFree = s, free[s][resources.CPU]
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("sched: worst fit found no server for function %d", f)
		}
		placement[f] = best
		free[best] = free[best].Sub(alloc).Clamped()
	}
	return placement, nil
}

// NewState builds a State over n default servers.
func NewState(caps []resources.Vector) *State {
	st := &State{
		Caps: append([]resources.Vector(nil), caps...),
		Used: make([]resources.Vector, len(caps)),
	}
	return st
}

// StateFromProfiles is a convenience: capacity vectors from a profile
// spec repeated n times.
func StateFromProfiles(spec resources.ServerSpec, n int) *State {
	caps := make([]resources.Vector, n)
	for i := range caps {
		caps[i] = spec.Capacity
	}
	return NewState(caps)
}
