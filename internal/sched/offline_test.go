package sched

import (
	"errors"
	"fmt"
	"testing"

	"gsight/internal/core"
	"gsight/internal/workload"
)

// errPredictor fails every prediction with a fixed error.
type errPredictor struct{ err error }

func (e *errPredictor) TrainObservations(core.QoSKind, []core.Observation) error { return nil }
func (e *errPredictor) Predict(core.QoSKind, int, []core.WorkloadInput) (float64, error) {
	return 0, e.err
}
func (e *errPredictor) Observe(core.QoSKind, int, []core.WorkloadInput, float64) error { return nil }
func (e *errPredictor) Flush(core.QoSKind) error                                       { return nil }
func (e *errPredictor) Name() string                                                   { return "err" }

func TestOfflineStateBookkeeping(t *testing.T) {
	st := StateFromProfiles(spec, 4)
	if st.OnlineServers() != 4 {
		t.Fatalf("online = %d, want 4", st.OnlineServers())
	}
	st.SetOffline(2, true)
	if st.Online(2) || st.OnlineServers() != 3 {
		t.Fatal("SetOffline did not cordon server 2")
	}
	if !st.Online(0) {
		t.Fatal("other servers must stay online")
	}
	st.SetOffline(2, false)
	if !st.Online(2) || st.OnlineServers() != 4 {
		t.Fatal("SetOffline(false) did not restore server 2")
	}
}

func TestSchedulersSkipOfflineServers(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Scheduler
	}{
		{"gsight", NewGsight(&stubPredictor{ipc: 99})},
		{"bestfit", NewBestFit(&stubPredictor{ipc: 99})},
		{"worstfit", NewWorstFit()},
	} {
		st := StateFromProfiles(spec, 4)
		st.SetOffline(0, true)
		st.SetOffline(2, true)
		req := &Request{Input: inputFor(workload.DD(), 0), SLA: SLA{MinIPC: 1}}
		placement, err := tc.s.Place(st, req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, srv := range placement {
			if srv == 0 || srv == 2 {
				t.Fatalf("%s: placed on offline server %d (%v)", tc.name, srv, placement)
			}
		}
	}
}

func TestAllOfflineIsNoPlacement(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Scheduler
	}{
		{"gsight", NewGsight(&stubPredictor{ipc: 99})},
		{"bestfit", NewBestFit(&stubPredictor{ipc: 99})},
		{"worstfit", NewWorstFit()},
	} {
		st := StateFromProfiles(spec, 2)
		st.SetOffline(0, true)
		st.SetOffline(1, true)
		req := &Request{Input: inputFor(workload.DD(), 0), SLA: SLA{}}
		if _, err := tc.s.Place(st, req); !errors.Is(err, ErrNoPlacement) {
			t.Fatalf("%s: err = %v, want ErrNoPlacement", tc.name, err)
		}
	}
}

func TestGsightFallbackOnPredictorError(t *testing.T) {
	g := NewGsight(&errPredictor{err: fmt.Errorf("%w: ipc", core.ErrNotTrained)})
	g.Fallback = NewWorstFit()
	st := StateFromProfiles(spec, 4)
	req := &Request{Input: inputFor(workload.DD(), 0), SLA: SLA{MinIPC: 1}}
	placement, err := g.Place(st, req)
	if err != nil {
		t.Fatalf("fallback should have served the placement: %v", err)
	}
	if len(placement) == 0 {
		t.Fatal("empty placement")
	}
}

func TestGsightPredictorErrorWithoutFallback(t *testing.T) {
	base := fmt.Errorf("%w: ipc", core.ErrNotTrained)
	g := NewGsight(&errPredictor{err: base})
	st := StateFromProfiles(spec, 4)
	req := &Request{Input: inputFor(workload.DD(), 0), SLA: SLA{MinIPC: 1}}
	if _, err := g.Place(st, req); !errors.Is(err, core.ErrNotTrained) {
		t.Fatalf("err = %v, want the predictor error preserved", err)
	}
}

func TestGsightFallbackRespectsOffline(t *testing.T) {
	g := NewGsight(&errPredictor{err: errors.New("boom")})
	g.Fallback = NewWorstFit()
	st := StateFromProfiles(spec, 3)
	st.SetOffline(1, true)
	req := &Request{Input: inputFor(workload.DD(), 0), SLA: SLA{MinIPC: 1}}
	placement, err := g.Place(st, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, srv := range placement {
		if srv == 1 {
			t.Fatalf("fallback placed on offline server: %v", placement)
		}
	}
}
