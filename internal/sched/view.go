package sched

import "gsight/internal/resources"

// ClusterView is the read-only cluster surface a Scheduler consumes:
// capacities, current usage, the running set and the online mask.
// Schedulers never mutate the cluster through it — placements are
// applied by the owner of the underlying state (directly via
// State.Commit on the serial path, or through the Txn protocol under
// concurrent placers).
//
// The interface is sealed (note the unexported method): *State and
// *ShardedState are its only implementations. Sealing is what keeps
// the placement hot path allocation-free — schedulers resolve the
// view to its backing State with a type switch whose arms are
// exhaustive, so escape analysis sees no path on which the view
// leaks, and a caller's stack-constructed State stays on the stack.
// An open interface would force a materialize fallback into Place,
// and that one (never-taken) branch is enough to heap-allocate every
// caller's state.
type ClusterView interface {
	// NumServers returns the cluster size.
	NumServers() int
	// Capacity returns server s's capacity vector.
	Capacity(s int) resources.Vector
	// Allocated returns server s's currently allocated resources.
	Allocated(s int) resources.Vector
	// Free returns server s's unallocated resources.
	Free(s int) resources.Vector
	// Online reports whether server s accepts placements.
	Online(s int) bool
	// OnlineServers counts the servers accepting placements.
	OnlineServers() int
	// ActiveServers counts servers with any allocation.
	ActiveServers() int
	// NumRunning returns the number of deployed workloads.
	NumRunning() int
	// RunningAt returns deployed workload i.
	RunningAt(i int) Deployed

	// sealed restricts implementations to this package (see the type
	// comment for why that is load-bearing, not gatekeeping).
	sealed()
}

// Capacity implements ClusterView.
func (st *State) Capacity(s int) resources.Vector { return st.Caps[s] }

// Allocated implements ClusterView.
func (st *State) Allocated(s int) resources.Vector { return st.Used[s] }

// NumRunning implements ClusterView.
func (st *State) NumRunning() int { return len(st.Running) }

// RunningAt implements ClusterView.
func (st *State) RunningAt(i int) Deployed { return st.Running[i] }

func (st *State) sealed() {}

// viewState resolves a ClusterView to the *State the schedulers index
// directly — a type switch, not interface calls (one dynamic call per
// server per placement would dominate at 10k servers). The switch is
// exhaustive because the interface is sealed; the panic arm is
// unreachable and exists so the switch has no flow that would leak v.
func viewState(v ClusterView) *State {
	switch x := v.(type) {
	case *State:
		return x
	case *ShardedState:
		return &x.st
	}
	panic("sched: ClusterView is sealed; only *State and *ShardedState implement it")
}
