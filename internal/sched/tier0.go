package sched

import (
	"gsight/internal/core"
	"gsight/internal/metrics"
	"gsight/internal/resources"
)

// Two-tier placement: before the binary-search ladder pays for full
// IRFR prediction, the tier-0 scorer ranks every online server and the
// ladder then runs over only the top-K finalists. Scores come from a
// per-(archetype, server-load-bucket) cache keyed on the scorer's
// ingest generation — an observation batch absorbed by the predictor
// invalidates every cached score at once.
//
// Candidate ranking is a composite order: feasible servers whose
// tier-0 score clears the request's SLA threshold first, then feasible
// servers below it, then servers where not even the smallest function
// fits; within each band the legacy order (active first, least free
// CPU, id) is preserved, so pruning keeps the densest viable candidates
// and K=∞ remains exactly the legacy permutation.
//
// Everything here is a pure function of (archetype profiles, scorer
// generation, server load) — no wall clock, no RNG, no iteration over
// map order — so placements are byte-identical at any shard/placer
// count and across checkpoint/resume.

// tier0Buckets quantizes a server's CPU allocation (as a fraction of
// the oversubscription ceiling) for the score cache. 16 buckets over
// the full range keeps the table tiny while separating idle, busy and
// saturated servers.
const tier0Buckets = 16

// tier0Margin is the leniency factor on the SLA threshold: candidates
// scoring within 5% below it are demoted, not discarded — the full
// predictor still sees them if the pass band is smaller than K.
const tier0Margin = 0.95

// Candidate bands of the composite order.
const (
	tier0Pass   = 0 // fits and clears the SLA-derived score threshold
	tier0Demote = 1 // fits, but tier-0 predicts an SLA violation
	tier0NoFit  = 2 // not even the smallest function fits
)

// tier0Entry caches one archetype's reduced features and its per-load-
// bucket scores at one scorer generation.
type tier0Entry struct {
	gen    uint64
	capRef float64 // per-server CPU capacity the buckets were scaled by
	filled bool
	refIPC float64
	mix    [metrics.NumSelected]float64
	scores [tier0Buckets]float64
}

// tier0Scratch is the per-scheduler reusable state of tier-0 pruning.
// The entry cache persists across requests (archetype features are
// pure); rank/score are per-request, indexed by server id.
type tier0Scratch struct {
	cache map[string]*tier0Entry
	rank  []uint8
	score []float64
	// Per-request decision context for telemetry.
	active bool
	kept   int
	pruned int
}

func resizeBytes(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

// tier0Entry resolves (filling or refreshing) the score-cache entry for
// the request's archetype. capRef is the per-server CPU capacity the
// load buckets span; entries refresh whenever the scorer generation or
// the capacity reference moves.
func (g *Gsight) tier0Entry(req *Request, capRef float64) *tier0Entry {
	t0 := &g.t0
	if t0.cache == nil {
		t0.cache = make(map[string]*tier0Entry)
	}
	key, _ := core.BaseName(req.Input.Name)
	e := t0.cache[key]
	if e == nil {
		e = &tier0Entry{}
		e.mix, e.refIPC = core.Tier0TargetStats(req.Input.Profiles)
		t0.cache[key] = e
	}
	gen := g.Tier0.Gen()
	if !e.filled || e.gen != gen || e.capRef != capRef {
		for b := 0; b < tier0Buckets; b++ {
			load := (float64(b) + 0.5) / tier0Buckets * capRef * g.CPUOversub
			e.scores[b] = g.Tier0.Score(&e.mix, load)
		}
		e.gen, e.capRef, e.filled = gen, capRef, true
	}
	return e
}

// tier0Rank fills the per-server band and score arrays for every
// candidate in g.scratch.order. Allocation-free in steady state: the
// arrays are pooled scratch and the cache entry is reused until the
// scorer's generation moves.
func (g *Gsight) tier0Rank(st *State, req *Request) {
	t0 := &g.t0
	sc := &g.scratch
	n := st.NumServers()
	t0.rank = resizeBytes(t0.rank, n)
	t0.score = resizeFloats(t0.score, n)

	capRef := st.Caps[sc.order[0]][resources.CPU]
	e := g.tier0Entry(req, capRef)

	// SLA threshold in the scorer's solo-normalized ratio space. A
	// request without an IPC floor (or an unready scorer) passes every
	// feasible server — pruning then just truncates the legacy order.
	theta := 0.0
	if g.Tier0.Ready() && req.SLA.MinIPC > 0 && e.refIPC > 0 {
		theta = req.SLA.MinIPC / e.refIPC * tier0Margin
	}

	// Feasibility floor: the element-wise minimum allocation over the
	// request's functions. A server that cannot host even that much is
	// useless at any spread level (every function needs at least the
	// minimum in each dimension), so the test is exactly conservative —
	// it never demotes a server candidate() could still use.
	in := &req.Input
	minCPU, minMem := 0.0, 0.0
	for f := range in.Profiles {
		a := AllocOf(in, f)
		if f == 0 || a[resources.CPU] < minCPU {
			minCPU = a[resources.CPU]
		}
		if f == 0 || a[resources.Memory] < minMem {
			minMem = a[resources.Memory]
		}
	}

	for _, s := range sc.order {
		used := st.Used[s]
		capCPU := st.Caps[s][resources.CPU]
		frac := 0.0
		if ceil := capCPU * g.CPUOversub; ceil > 0 {
			frac = used[resources.CPU] / ceil
		}
		b := int(frac * tier0Buckets)
		if b >= tier0Buckets {
			b = tier0Buckets - 1
		}
		if b < 0 {
			b = 0
		}
		score := e.scores[b]
		t0.score[s] = score
		band := uint8(tier0Pass)
		if theta > 0 && score < theta {
			band = tier0Demote
		}
		if used[resources.Memory]+minMem > st.Caps[s][resources.Memory] ||
			used[resources.CPU]+minCPU > capCPU*g.CPUOversub {
			band = tier0NoFit
		}
		t0.rank[s] = band
	}
}
