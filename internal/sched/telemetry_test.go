package sched

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gsight/internal/telemetry"
	"gsight/internal/workload"
)

// placeSequence drives a scheduler through a fixed request sequence and
// returns every placement (nil entries for rejections).
func placeSequence(s Scheduler) [][]int {
	st := StateFromProfiles(spec, 6)
	var out [][]int
	reqs := []*Request{
		{Input: inputFor(workload.MatMul(), 0), SLA: SLA{}},
		{Input: inputFor(workload.DD(), 0), SLA: SLA{MinIPC: 0.5}},
		{Input: inputFor(workload.ECommerce(), 0.5), SLA: SLA{MinIPC: 1}},
		{Input: inputFor(workload.SocialNetwork(), 0.4), SLA: SLA{MinIPC: 0.2}},
	}
	for _, req := range reqs {
		placement, err := s.Place(st, req)
		if err != nil {
			out = append(out, nil)
			continue
		}
		cp := append([]int(nil), placement...)
		out = append(out, cp)
		in := req.Input
		in.Placement = cp
		st.Commit(in, req.SLA)
	}
	return out
}

// TestTelemetryNopEquivalence pins the tentpole contract: instrumenting
// a scheduler — with Nop or with a live sink — must leave every
// placement bit-identical to the uninstrumented scheduler.
func TestTelemetryNopEquivalence(t *testing.T) {
	build := func(name string) func() Scheduler {
		switch name {
		case "Gsight":
			return func() Scheduler { return NewGsight(&stubPredictor{ipc: 0.8}) }
		case "BestFit":
			return func() Scheduler { return NewBestFit(&stubPredictor{ipc: 0.8}) }
		default:
			return func() Scheduler { return NewWorstFit() }
		}
	}
	for _, name := range []string{"Gsight", "BestFit", "WorstFit"} {
		mk := build(name)
		plain := placeSequence(mk())

		nop := mk()
		nop.(interface{ Instrument(*telemetry.Sink) }).Instrument(telemetry.Nop)
		if got := placeSequence(nop); !reflect.DeepEqual(got, plain) {
			t.Errorf("%s: Nop-instrumented placements differ: %v vs %v", name, got, plain)
		}

		live := mk()
		var buf bytes.Buffer
		sink := telemetry.New().WithDecisions(&buf)
		live.(interface{ Instrument(*telemetry.Sink) }).Instrument(sink)
		if got := placeSequence(live); !reflect.DeepEqual(got, plain) {
			t.Errorf("%s: live-instrumented placements differ: %v vs %v", name, got, plain)
		}
		if sink.Decisions.Events() == 0 {
			t.Errorf("%s: live sink recorded no decisions", name)
		}
	}
}

// TestDecisionLogReplaysDeterministically pins the satellite contract:
// a fixed request sequence emits a byte-identical JSONL decision log.
func TestDecisionLogReplaysDeterministically(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		g := NewGsight(&stubPredictor{ipc: 0.8})
		g.Instrument(telemetry.New().WithDecisions(&buf))
		placeSequence(g)
		return buf.Bytes()
	}
	a, b := emit(), emit()
	if len(a) == 0 {
		t.Fatal("no decision events emitted")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("decision logs differ:\n%s\n---\n%s", a, b)
	}
	// Every line after the schema header is one valid placement event
	// with the scheduler's name.
	lines := strings.Split(strings.TrimRight(string(a), "\n"), "\n")
	if !strings.Contains(lines[0], `"event":"header"`) {
		t.Fatalf("log must open with the schema header: %s", lines[0])
	}
	for _, line := range lines[1:] {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL line: %v\n%s", err, line)
		}
		if m["event"] != "placement" || m["scheduler"] != "Gsight" {
			t.Fatalf("unexpected event: %s", line)
		}
	}
}

// TestDecisionOutcomes checks the outcome taxonomy: SLA-driven
// fallbacks and clean placements are labeled as such, and the counters
// agree with the decision stream.
func TestDecisionOutcomes(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.New().WithDecisions(&buf)
	g := NewGsight(&stubPredictor{ipc: 0.1}) // SLA always violated
	g.Instrument(sink)
	st := StateFromProfiles(spec, 4)
	if _, err := g.Place(st, &Request{Input: inputFor(workload.ECommerce(), 0.5), SLA: SLA{MinIPC: 1}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	line := lines[len(lines)-1] // last line: the placement after the header
	var m map[string]interface{}
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatal(err)
	}
	if m["outcome"] != "fallback" || m["reason"] != "sla-violated" {
		t.Fatalf("expected SLA fallback decision, got %s", line)
	}
	snap := sink.Registry.Snapshot()
	if snap.Counters["sched_gsight_fallbacks_total"] != 1 {
		t.Fatalf("fallback counter = %d", snap.Counters["sched_gsight_fallbacks_total"])
	}
	if snap.Counters["sched_gsight_sla_rejections_total"] == 0 {
		t.Fatal("SLA rejections not counted")
	}
	if snap.Histograms["sched_gsight_sla_checks"].Count != 1 {
		t.Fatal("SLA-check histogram not observed")
	}
}
