package sched

import (
	"reflect"
	"testing"

	"gsight/internal/core"
	"gsight/internal/workload"
)

// tier0Reqs is a mixed request sequence exercising LS (MinIPC) and SC
// (JCT) SLAs — the two threshold modes of the tier-0 ranker.
func tier0Reqs() []*Request {
	return []*Request{
		{Input: inputFor(workload.SocialNetwork(), 0.5), SLA: SLA{MinIPC: 0.4}},
		{Input: inputFor(workload.MatMul(), 0), SLA: SLA{MaxJCTFactor: 3}, SoloDurationS: 60},
		{Input: inputFor(workload.ECommerce(), 0.4), SLA: SLA{MinIPC: 0.4}},
		{Input: inputFor(workload.DD(), 0), SLA: SLA{MinIPC: 0.3, MaxJCTFactor: 4}, SoloDurationS: 45},
		{Input: inputFor(workload.MLServing(), 0.3), SLA: SLA{MinIPC: 0.4}},
		{Input: inputFor(workload.VideoProcessing(), 0), SLA: SLA{MaxJCTFactor: 3}, SoloDurationS: 30},
		{Input: inputFor(workload.FloatOp(), 0), SLA: SLA{MaxJCTFactor: 4}, SoloDurationS: 20},
		{Input: inputFor(workload.WebSearch(), 0.4), SLA: SLA{MinIPC: 0.4}},
	}
}

// runTwoTier drives one scheduler through the sequence on a fresh
// state, committing successes, and returns the placements (nil row for
// a rejected request).
func runTwoTier(t *testing.T, g *Gsight, servers int) [][]int {
	t.Helper()
	st := StateFromProfiles(spec, servers)
	var out [][]int
	for _, req := range tier0Reqs() {
		r := *req // Place mutates nothing, but keep requests reusable
		placement, err := g.Place(st, &r)
		if err != nil {
			out = append(out, nil)
			continue
		}
		in := r.Input
		in.Placement = placement
		st.Commit(in, r.SLA)
		out = append(out, placement)
	}
	return out
}

// TestTwoTierInfinityEquivalence is the tentpole invariant: with
// pruning disabled (K=0) or K at least the online server count, the
// two-tier scheduler's placements are byte-identical to the legacy
// scheduler's.
func TestTwoTierInfinityEquivalence(t *testing.T) {
	p := trainedSchedPredictor(t)
	legacy := runTwoTier(t, NewGsight(p), 16)
	for _, k := range []int{0, 16, 1000} {
		g := NewGsight(p)
		g.Tier0 = p.Tier0()
		g.TopK = k
		if got := runTwoTier(t, g, 16); !reflect.DeepEqual(got, legacy) {
			t.Fatalf("K=%d diverged from legacy:\n%v\nvs\n%v", k, got, legacy)
		}
	}
}

// TestTwoTierDeterministicAtEveryK: at every prune depth, repeated
// same-sequence runs place identically — and a warm score cache (second
// run on the same scheduler instance) must not change any decision
// versus a cold one (fresh instance).
func TestTwoTierDeterministicAtEveryK(t *testing.T) {
	p := trainedSchedPredictor(t)
	for _, k := range []int{2, 4, 8} {
		mk := func() *Gsight {
			g := NewGsight(p)
			g.Tier0 = p.Tier0()
			g.TopK = k
			return g
		}
		g := mk()
		cold := runTwoTier(t, g, 16)
		warm := runTwoTier(t, g, 16)
		fresh := runTwoTier(t, mk(), 16)
		if !reflect.DeepEqual(warm, cold) {
			t.Fatalf("K=%d: warm-cache run diverged:\n%v\nvs\n%v", k, warm, cold)
		}
		if !reflect.DeepEqual(fresh, cold) {
			t.Fatalf("K=%d: fresh scheduler diverged:\n%v\nvs\n%v", k, fresh, cold)
		}
		for i, row := range cold {
			if row == nil {
				t.Fatalf("K=%d: request %d rejected on a 16-server cluster", k, i)
			}
		}
	}
}

// TestTwoTierPruneBookkeeping checks the per-request decision context:
// kept+pruned covers every online server, and the prune branch engages
// only when K is actually below the online count.
func TestTwoTierPruneBookkeeping(t *testing.T) {
	p := trainedSchedPredictor(t)
	g := NewGsight(p)
	g.Tier0 = p.Tier0()
	g.TopK = 4
	st := StateFromProfiles(spec, 16)
	req := &Request{Input: inputFor(workload.SocialNetwork(), 0.5), SLA: SLA{MinIPC: 0.4}}
	if _, err := g.Place(st, req); err != nil {
		t.Fatal(err)
	}
	if !g.t0.active || g.t0.kept != 4 || g.t0.pruned != 12 {
		t.Fatalf("prune bookkeeping active=%v kept=%d pruned=%d, want true/4/12",
			g.t0.active, g.t0.kept, g.t0.pruned)
	}
	g.TopK = 16 // K == online: prune branch must not engage
	if _, err := g.Place(st, req); err != nil {
		t.Fatal(err)
	}
	if g.t0.active {
		t.Fatal("prune engaged with K == online count")
	}
}

// TestTwoTierCacheInvalidationOnIngest: absorbing a new observation
// batch bumps the scorer generation, and the next placement refreshes
// the cached per-archetype scores.
func TestTwoTierCacheInvalidationOnIngest(t *testing.T) {
	p := trainedSchedPredictor(t)
	g := NewGsight(p)
	g.Tier0 = p.Tier0()
	g.TopK = 4
	st := StateFromProfiles(spec, 16)
	req := &Request{Input: inputFor(workload.SocialNetwork(), 0.5), SLA: SLA{MinIPC: 0.4}}
	if _, err := g.Place(st, req); err != nil {
		t.Fatal(err)
	}
	key, _ := core.BaseName(req.Input.Name)
	e := g.t0.cache[key]
	if e == nil || !e.filled {
		t.Fatal("placement did not fill the archetype's score-cache entry")
	}
	genBefore := e.gen
	if genBefore != p.Tier0().Gen() {
		t.Fatalf("cached generation %d, scorer at %d", genBefore, p.Tier0().Gen())
	}

	// Ingest: retraining absorbs a batch and must invalidate the cache.
	obs := []core.Observation{}
	in := []core.WorkloadInput{inputFor(workload.MatMul(), 0), inputFor(workload.DD(), 0)}
	for i := 0; i < 30; i++ {
		obs = append(obs, core.Observation{Target: 0, Inputs: in, Label: 1.5 - 0.01*float64(i%4)})
	}
	if err := p.TrainObservations(core.IPCQoS, obs); err != nil {
		t.Fatal(err)
	}
	if p.Tier0().Gen() == genBefore {
		t.Fatal("observation ingest did not bump the scorer generation")
	}
	if _, err := g.Place(st, req); err != nil {
		t.Fatal(err)
	}
	if e.gen != p.Tier0().Gen() {
		t.Fatalf("entry still at generation %d after ingest moved the scorer to %d",
			e.gen, p.Tier0().Gen())
	}
}

// TestTwoTierCacheKeysPerArchetype: run-numbered names ("name#7") must
// share one cache entry per archetype.
func TestTwoTierCacheKeysPerArchetype(t *testing.T) {
	p := trainedSchedPredictor(t)
	g := NewGsight(p)
	g.Tier0 = p.Tier0()
	g.TopK = 4
	st := StateFromProfiles(spec, 16)
	for i := 0; i < 6; i++ {
		in := inputFor(workload.MatMul(), 0)
		in.Name = "matmul#" + string(rune('0'+i))
		req := &Request{Input: in, SLA: SLA{MaxJCTFactor: 3}, SoloDurationS: 60}
		if _, err := g.Place(st, req); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(g.t0.cache); n != 1 {
		t.Fatalf("6 runs of one archetype filled %d cache entries, want 1", n)
	}
}
