package sched

import (
	"fmt"
	"sort"

	"gsight/internal/resources"
)

// Hierarchical wraps a scheduler behind a two-level zone hierarchy —
// the paper's §6.4 future-work answer to large clusters ("policies
// like ... hierarchy scheduling can be explored"): first pick the zone
// by aggregate headroom and activity, then run the inner scheduler
// against that zone's servers only. Placement work (and, for Gsight,
// the prediction search space S in O(MP log S)) shrinks from the
// cluster size to the zone size.
type Hierarchical struct {
	Inner Scheduler
	// ZoneSize is the number of servers per zone; <=0 means 8.
	ZoneSize int
}

// NewHierarchical wraps inner with zone-level pre-selection.
func NewHierarchical(inner Scheduler, zoneSize int) *Hierarchical {
	if zoneSize <= 0 {
		zoneSize = 8
	}
	return &Hierarchical{Inner: inner, ZoneSize: zoneSize}
}

// Name implements Scheduler.
func (h *Hierarchical) Name() string {
	return fmt.Sprintf("Hierarchical(%s)", h.Inner.Name())
}

// Place implements Scheduler: it scores zones (active first, then most
// allocated CPU — the densest zone that can still hold the request),
// projects the state onto the chosen zone, delegates to the inner
// scheduler, and maps the placement back to global server indices. If
// the best zone cannot host the request the next zone is tried.
func (h *Hierarchical) Place(v ClusterView, req *Request) ([]int, error) {
	st := viewState(v)
	s := st.NumServers()
	if s == 0 {
		return nil, fmt.Errorf("sched: empty cluster")
	}
	nz := (s + h.ZoneSize - 1) / h.ZoneSize
	type zone struct {
		id      int
		servers []int
		active  bool
		usedCPU float64
		freeCPU float64
	}
	zones := make([]zone, 0, nz)
	for z := 0; z < nz; z++ {
		lo := z * h.ZoneSize
		hi := lo + h.ZoneSize
		if hi > s {
			hi = s
		}
		zn := zone{id: z}
		for srv := lo; srv < hi; srv++ {
			zn.servers = append(zn.servers, srv)
			if !st.Used[srv].IsZero() {
				zn.active = true
			}
			zn.usedCPU += st.Used[srv][resources.CPU]
			zn.freeCPU += st.Free(srv)[resources.CPU]
		}
		zones = append(zones, zn)
	}
	// Need: the request's total CPU allocation must plausibly fit.
	needCPU := 0.0
	for f := range req.Input.Profiles {
		needCPU += AllocOf(&req.Input, f)[resources.CPU]
	}
	sort.SliceStable(zones, func(a, b int) bool {
		if zones[a].active != zones[b].active {
			return zones[a].active // densify active zones first
		}
		return zones[a].usedCPU > zones[b].usedCPU
	})
	var lastErr error
	for _, zn := range zones {
		if zn.freeCPU < needCPU*0.5 {
			// even generous oversubscription cannot host it here
			continue
		}
		placement, err := h.placeInZone(st, req, zn.servers)
		if err == nil {
			return placement, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("sched: no zone can host the request")
	}
	return nil, lastErr
}

// placeInZone projects the state onto the zone, delegates, and maps the
// result back.
func (h *Hierarchical) placeInZone(st *State, req *Request, servers []int) ([]int, error) {
	sub := &State{
		Caps: make([]resources.Vector, len(servers)),
		Used: make([]resources.Vector, len(servers)),
	}
	toLocal := make(map[int]int, len(servers))
	for i, srv := range servers {
		sub.Caps[i] = st.Caps[srv]
		sub.Used[i] = st.Used[srv]
		toLocal[srv] = i
	}
	if st.Offline != nil {
		sub.Offline = make([]bool, len(servers))
		for i, srv := range servers {
			sub.Offline[i] = st.Offline[srv]
		}
	}
	// Project the running workloads whose functions live in this zone:
	// the inner scheduler's SLA checks must still see them.
	for _, d := range st.Running {
		inZone := true
		for _, srv := range d.Input.Placement {
			if _, ok := toLocal[srv]; !ok {
				inZone = false
				break
			}
		}
		if !inZone {
			continue
		}
		in := d.Input
		in.Placement = make([]int, len(d.Input.Placement))
		for f, srv := range d.Input.Placement {
			in.Placement[f] = toLocal[srv]
		}
		sub.Running = append(sub.Running, Deployed{Input: in, SLA: d.SLA})
	}
	placement, err := h.Inner.Place(sub, req)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(placement))
	for f, local := range placement {
		out[f] = servers[local]
	}
	return out, nil
}

var _ Scheduler = (*Hierarchical)(nil)
