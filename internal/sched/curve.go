// Package sched implements the scheduling case study of §4: a
// density-maximizing, SLA-guarding scheduler that searches placements
// with Gsight's predictor (binary-search spatial overlap), plus the
// Best Fit policy Pythia pairs with and the Worst Fit strawman.
package sched

import (
	"sort"

	"gsight/internal/perfmodel"
	"gsight/internal/rng"
	"gsight/internal/workload"
)

// CurvePoint is one (IPC, p99) observation of an LS workload.
type CurvePoint struct {
	IPC   float64
	P99Ms float64
}

// Curve is the latency-IPC correlation of one LS workload (Figure 7).
// Above the knee, tail latency correlates strongly (and monotonically
// decreasing) with IPC; the scheduler uses the inverse mapping to turn
// a p99 SLA into an IPC floor (§6.3).
type Curve struct {
	points []CurvePoint // sorted by IPC ascending
}

// NewCurve builds a curve from raw observations.
func NewCurve(pts []CurvePoint) *Curve {
	sorted := append([]CurvePoint(nil), pts...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].IPC < sorted[b].IPC })
	return &Curve{points: sorted}
}

// MinIPCFor returns the lowest IPC at which the SLA remains attainable
// — the SLA transformation of §6.3 ("transforming the tail latency in
// SLA into IPC according to their correlation curve; using the average
// if there are multiple IPCs"). The curve mixes operating loads, so
// the floor uses the lower quartile of each IPC window: an IPC is
// admissible while typical operating points at that IPC still honour
// the SLA. The boolean is false when even the best observed IPC
// violates it.
func (c *Curve) MinIPCFor(slaMs float64) (float64, bool) {
	if len(c.points) == 0 {
		return 0, false
	}
	const window = 9
	ok := false
	minIPC := 0.0
	buf := make([]float64, 0, window)
	for i := len(c.points) - 1; i >= 0; i-- {
		lo := i - window/2
		hi := i + window/2
		if lo < 0 {
			lo = 0
		}
		if hi >= len(c.points) {
			hi = len(c.points) - 1
		}
		buf = buf[:0]
		for j := lo; j <= hi; j++ {
			buf = append(buf, c.points[j].P99Ms)
		}
		sort.Float64s(buf)
		q25 := buf[len(buf)/4]
		if q25 <= slaMs {
			ok = true
			minIPC = c.points[i].IPC
		} else if ok {
			break
		}
	}
	return minIPC, ok
}

// P99At estimates the expected p99 at the given IPC by nearest-point
// window averaging.
func (c *Curve) P99At(ipc float64) float64 {
	if len(c.points) == 0 {
		return 0
	}
	i := sort.Search(len(c.points), func(j int) bool { return c.points[j].IPC >= ipc })
	lo := i - 2
	hi := i + 2
	if lo < 0 {
		lo = 0
	}
	if hi >= len(c.points) {
		hi = len(c.points) - 1
	}
	sum, n := 0.0, 0
	for j := lo; j <= hi; j++ {
		sum += c.points[j].P99Ms
		n++
	}
	return sum / float64(n)
}

// Points returns the curve's observations (for plotting Figure 7).
func (c *Curve) Points() []CurvePoint {
	return append([]CurvePoint(nil), c.points...)
}

// BuildCurve calibrates a workload's latency-IPC curve offline by
// sweeping the request load and synthetic corunner pressure on the
// model testbed — the reproduction's analogue of the paper's 30-minute
// per-workload calibration run.
func BuildCurve(m *perfmodel.Model, w *workload.Workload, samples int, seed uint64) *Curve {
	rnd := rng.Stream(seed, "curve-"+w.Name)
	noise := rng.Stream(seed, "curve-noise-"+w.Name)
	corunners := []*workload.Workload{
		workload.MatMul(), workload.VideoProcessing(), workload.DD(), workload.Iperf(),
	}
	var pts []CurvePoint
	for i := 0; i < samples; i++ {
		d := perfmodel.SpreadDeployment(w, m.Testbed)
		// Sweep the operating-load band, not the saturation edge: the
		// paper defines the SLA at a fixed reference load, so the
		// latency-IPC relation must isolate interference, not load.
		d.QPS = w.MaxQPS * rnd.Range(0.35, 0.75)
		deps := []*perfmodel.Deployment{d}
		// Sometimes add pressure beside a random function to reach
		// the low-IPC regime left of the knee.
		n := rnd.Intn(4)
		for j := 0; j < n; j++ {
			c := perfmodel.NewDeployment(corunners[rnd.Intn(len(corunners))].Clone())
			target := rnd.Intn(len(w.Functions))
			for f := range c.Placement {
				c.Placement[f] = d.Placement[target]
				c.Socket[f] = d.Socket[target]
			}
			deps = append(deps, c)
		}
		res, err := m.Evaluate(&perfmodel.Scenario{Deployments: deps}, noise.Split())
		if err != nil {
			continue
		}
		r := res.Deployments[0]
		pts = append(pts, CurvePoint{IPC: r.IPC, P99Ms: r.E2EP99Ms})
	}
	return NewCurve(pts)
}
