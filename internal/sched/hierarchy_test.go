package sched

import (
	"testing"

	"gsight/internal/workload"
)

func TestHierarchicalPlacesInOneZone(t *testing.T) {
	st := StateFromProfiles(spec, 32)
	// Activate a server in zone 2 (servers 16..23) so zone scoring has
	// a dense zone to prefer.
	seed := inputFor(workload.MatMul(), 0)
	seed.Placement = []int{17}
	st.Commit(seed, SLA{})

	h := NewHierarchical(NewGsight(&stubPredictor{ipc: 99}), 8)
	req := &Request{Input: inputFor(workload.ECommerce(), 0.4), SLA: SLA{MinIPC: 1}}
	placement, err := h.Place(st, req)
	if err != nil {
		t.Fatal(err)
	}
	zone := placement[0] / 8
	for f, s := range placement {
		if s/8 != zone {
			t.Fatalf("function %d left zone %d: placement %v", f, zone, placement)
		}
	}
	if zone != 2 {
		t.Fatalf("expected the active zone 2, got zone %d", zone)
	}
}

func TestHierarchicalFallsToNextZone(t *testing.T) {
	// Tiny zone capacity: the preferred zone cannot host the request,
	// the wrapper must try another.
	smallSpec := spec
	st := StateFromProfiles(smallSpec, 16)
	// Fill zone 0 servers' memory completely.
	for s := 0; s < 8; s++ {
		in := inputFor(workload.MatMul(), 0)
		in.Name = "filler"
		in.Placement = []int{s}
		// inflate the memory allocation to fill the server
		in.Profiles[0].Alloc[1] = smallSpec.Capacity[1]
		st.Commit(in, SLA{})
	}
	h := NewHierarchical(NewWorstFit(), 8)
	req := &Request{Input: inputFor(workload.DD(), 0)}
	placement, err := h.Place(st, req)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] < 8 {
		t.Fatalf("placed into the full zone: %v", placement)
	}
}

func TestHierarchicalName(t *testing.T) {
	h := NewHierarchical(NewWorstFit(), 4)
	if h.Name() != "Hierarchical(WorstFit)" {
		t.Fatalf("name = %q", h.Name())
	}
}

func TestHierarchicalEmptyCluster(t *testing.T) {
	h := NewHierarchical(NewWorstFit(), 8)
	if _, err := h.Place(&State{}, &Request{Input: inputFor(workload.DD(), 0)}); err == nil {
		t.Fatal("empty cluster must error")
	}
}

func TestHierarchicalProjectsRunningWorkloads(t *testing.T) {
	// A running workload inside the chosen zone must be visible to the
	// inner scheduler's SLA checks (via sub-state Running).
	st := StateFromProfiles(spec, 16)
	running := inputFor(workload.SocialNetwork(), 0.5)
	for f := range running.Placement {
		running.Placement[f] = 8 + f%8 // zone 1
	}
	st.Commit(running, SLA{MinIPC: 1})

	p := &targetAware{}
	h := NewHierarchical(NewGsight(p), 8)
	req := &Request{Input: inputFor(workload.MatMul(), 0), SLA: SLA{}}
	if _, err := h.Place(st, req); err != nil {
		t.Fatal(err)
	}
	if !p.sawRunningCheck {
		t.Fatal("running workload not projected into the zone sub-state")
	}
}
